# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race race-fast serve bench tables figures coverage clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full race-detector run. race-fast covers the concurrency-heavy
# packages (the server's job store/pool/cache and the parallel routing
# stages) without the slow experiment reproductions.
race:
	$(GO) test -race ./...

race-fast:
	$(GO) test -race -short ./internal/server/ ./internal/core/ ./internal/detail/ ./internal/global/

serve:
	$(GO) run ./cmd/meblserved

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's tables on the fast subset (use CIRCUITS=all for
# the full 14-circuit suite; that takes ~15 minutes).
CIRCUITS ?= small
tables:
	$(GO) run ./cmd/tablegen -circuits $(CIRCUITS)

figures:
	$(GO) run ./cmd/layoutviz -circuit S38417 -out fig15.svg
	$(GO) run ./cmd/layoutviz -fig16 -circuit S9234 -out fig16
	$(GO) run ./examples/rasterdefect

coverage:
	$(GO) test -short -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f fig15.svg fig16a.svg fig16b.svg cover.out
