# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race race-fast serve bench tables figures coverage fuzz soak clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full race-detector run. race-fast covers the concurrency-heavy
# packages (the server's job store/pool/cache and the parallel routing
# stages) without the slow experiment reproductions.
race:
	$(GO) test -race ./...

race-fast:
	$(GO) test -race -short ./internal/server/ ./internal/core/ ./internal/detail/ ./internal/global/

serve:
	$(GO) run ./cmd/meblserved

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's tables on the fast subset (use CIRCUITS=all for
# the full 14-circuit suite; that takes ~15 minutes).
CIRCUITS ?= small
tables:
	$(GO) run ./cmd/tablegen -circuits $(CIRCUITS)

figures:
	$(GO) run ./cmd/layoutviz -circuit S38417 -out fig15.svg
	$(GO) run ./cmd/layoutviz -fig16 -circuit S9234 -out fig16
	$(GO) run ./examples/rasterdefect

# Coverage gate: total short-mode statement coverage of internal/... must
# stay at or above COVER_FLOOR (recorded at 87.4% when the gate landed).
COVER_FLOOR ?= 86.0
coverage:
	$(GO) test -short -coverprofile=cover.out ./internal/...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	ok=$$(awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN {print (t+0 >= f+0) ? 1 : 0}'); \
	if [ "$$ok" != "1" ]; then \
		echo "coverage gate FAILED: $$total% < floor $(COVER_FLOOR)%"; exit 1; \
	else \
		echo "coverage gate ok: $$total% >= floor $(COVER_FLOOR)%"; \
	fi

# Short fuzz session over the routing pipeline; CI-sized by default.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzRoute -fuzztime=$(FUZZTIME) -run '^$$' ./internal/harness/

# Multi-seed end-to-end correctness soak (full invariant battery over the
# harness parameter grid).
SOAK_SEEDS ?= 25
soak:
	$(GO) run ./cmd/routecheck -seeds $(SOAK_SEEDS)

clean:
	rm -f fig15.svg fig16a.svg fig16b.svg cover.out
