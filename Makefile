# Convenience targets; everything is plain `go` underneath.
# `make help` lists every target with its one-line description.

GO ?= go

.PHONY: all build vet lint stitchvet lint-fix lint-audit lint-bench lint-fixtures test test-short race race-fast serve bench bench-json bench-fracture-json bench-eco-json bench-smoke tables figures coverage fuzz fuzz-eco soak fracture-golden eco-golden clean help

all: build vet test ## build + vet + full tests

build: ## compile every package and command
	$(GO) build ./...

vet: ## go vet over the whole repo
	$(GO) vet ./...

# Static-analysis gate. stitchvet is the repo's own go/analysis-style
# linter (cmd/stitchvet, see docs/LINTING.md): four syntactic analyzers
# (mapiterorder, ctxflow, lockdiscipline, floateq), three flow-sensitive
# ones built on the CFG + dataflow engine (nondeterm, hotalloc,
# leakcheck), and five interprocedural ones built on the whole-module
# call graph (lockorder, narrowconv, errflow, confine, racecheck). It
# exits nonzero on any unsuppressed diagnostic. Runs against the on-disk
# findings cache in .stitchvet-cache: an unchanged tree replays instantly.
# staticcheck runs too when installed (CI installs a pinned version; the
# offline dev container may not have it).
lint: vet stitchvet ## vet + stitchvet + staticcheck (if installed)
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipped (CI runs it pinned)"; \
	fi

stitchvet: ## build and run the repo's invariant linter (cached)
	$(GO) build -o bin/stitchvet ./cmd/stitchvet
	./bin/stitchvet -cache .stitchvet-cache ./...

# Applies every suggested fix carried by an unsuppressed finding
# (atomic per-file edits + gofmt), then the driver re-analyzes; the
# second plain run proves the tree converged to clean.
lint-fix: ## apply stitchvet suggested fixes, then verify a clean re-run
	$(GO) build -o bin/stitchvet ./cmd/stitchvet
	./bin/stitchvet -fix ./...
	./bin/stitchvet ./...

lint-audit: ## check every //lint:ignore directive for name, reason, and staleness
	$(GO) build -o bin/stitchvet ./cmd/stitchvet
	./bin/stitchvet -audit

# Regenerate the checked-in incremental-lint benchmark report: cold
# analysis vs best-of-N warm cache replay vs -diff against HEAD, with the
# warm>=5x, diff-only-changed, and byte-identical-findings gates wired in
# as hard failures (see docs/LINTING.md).
lint-bench: ## regenerate BENCH_lint.json (incremental analysis driver)
	$(GO) run ./cmd/benchjson -stage lint -runs $(BENCH_RUNS) -out BENCH_lint.json

# The analyzers' own regression suite: fixture expectations for all
# twelve analyzers, the CFG builder's structural tests, the dataflow
# lattice and call-summary unit tests, the call-graph tests, and the
# driver's suppression/JSON/SARIF/fix/audit/cache/diff semantics.
lint-fixtures: ## test the analyzers themselves (fixtures, CFG, dataflow)
	$(GO) test ./internal/analysis/...

test: ## full test suite
	$(GO) test ./...

test-short: ## short-mode tests
	$(GO) test -short ./...

# Full race-detector run. race-fast covers the concurrency-heavy
# packages (the server's job store/pool/cache and the parallel routing
# stages) without the slow experiment reproductions.
race: ## full test suite under the race detector
	$(GO) test -race ./...

race-fast: ## race detector on the concurrency-heavy packages
	$(GO) test -race -short ./internal/server/ ./internal/core/ ./internal/detail/ ./internal/global/

serve: ## run the routing job server
	$(GO) run ./cmd/meblserved

bench: ## run all benchmarks
	$(GO) test -bench=. -benchmem ./...

# Regenerate the checked-in detailed-routing benchmark report. The seed
# baselines are measured separately against a pre-optimization binary;
# see docs/PERFORMANCE.md for the full protocol (BASELINE/BASELINE_NOTE
# pass through to benchjson's -baseline/-baseline-note).
BENCH_RUNS ?= 7
bench-json: ## regenerate BENCH_detail.json (see docs/PERFORMANCE.md)
	$(GO) run ./cmd/benchjson -runs $(BENCH_RUNS) \
		$(if $(BASELINE),-baseline "$(BASELINE)") \
		$(if $(BASELINE_NOTE),-baseline-note "$(BASELINE_NOTE)") \
		-out BENCH_detail.json

# Regenerate the checked-in write-prep fracturing benchmark report
# (shot throughput per mode plus the L-shape shot-count reduction).
bench-fracture-json: ## regenerate BENCH_fracture.json (write-prep stage)
	$(GO) run ./cmd/benchjson -stage fracture -runs $(BENCH_RUNS) -out BENCH_fracture.json

# Regenerate the checked-in incremental-rerouting benchmark report
# (per-edit cold/replay/patch timings with the replay hash-equality and
# patch determinism gates wired in as hard failures; see docs/ECO.md).
bench-eco-json: ## regenerate BENCH_eco.json (incremental ECO stage)
	$(GO) run ./cmd/benchjson -stage eco -runs $(BENCH_RUNS) -out BENCH_eco.json

# One-iteration benchmark smoke: proves the worker-count benchmarks (and
# their cross-worker routes-hash assertion) still run; takes seconds.
# The second line reruns Workers 1 and 8 under the race detector — the
# benchmark shares one reference hash across sub-benchmarks, so this is
# the speculative scheduler's cross-worker hash-equality gate with the
# concurrency instrumented, on the golden circuit rather than the
# harness grids race-fast covers.
bench-smoke: ## run BenchmarkDetailWorkers once per worker count (+ 1 vs 8 under -race)
	$(GO) test -run '^$$' -bench BenchmarkDetailWorkers -benchtime 1x ./internal/detail/
	$(GO) test -race -run '^$$' -bench 'BenchmarkDetailWorkers/(1|8)$$' -benchtime 1x ./internal/detail/

# Regenerate the paper's tables on the fast subset (use CIRCUITS=all for
# the full 14-circuit suite; that takes ~15 minutes).
CIRCUITS ?= small
tables: ## regenerate the paper's tables (CIRCUITS=all for the full suite)
	$(GO) run ./cmd/tablegen -circuits $(CIRCUITS)

figures: ## regenerate the paper's figures
	$(GO) run ./cmd/layoutviz -circuit S38417 -out fig15.svg
	$(GO) run ./cmd/layoutviz -fig16 -circuit S9234 -out fig16
	$(GO) run ./examples/rasterdefect

# Coverage gate: total short-mode statement coverage of internal/... must
# stay at or above COVER_FLOOR (recorded at 87.4% when the gate landed).
COVER_FLOOR ?= 86.0
coverage: ## short-mode coverage with the COVER_FLOOR gate
	$(GO) test -short -coverprofile=cover.out ./internal/...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	ok=$$(awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN {print (t+0 >= f+0) ? 1 : 0}'); \
	if [ "$$ok" != "1" ]; then \
		echo "coverage gate FAILED: $$total% < floor $(COVER_FLOOR)%"; exit 1; \
	else \
		echo "coverage gate ok: $$total% >= floor $(COVER_FLOOR)%"; \
	fi

# Short fuzz session over the routing pipeline; CI-sized by default.
FUZZTIME ?= 30s
fuzz: ## short fuzz session over the routing pipeline
	$(GO) test -fuzz=FuzzRoute -fuzztime=$(FUZZTIME) -run '^$$' ./internal/harness/

# Fuzz the ECO edit-script surface: arbitrary scripts against a fixed
# committed circuit, asserting replay==cold byte equality, patch
# determinism, and the DRC battery (docs/ECO.md).
fuzz-eco: ## short fuzz session over ECO edit scripts
	$(GO) test -fuzz=FuzzECO -fuzztime=$(FUZZTIME) -run '^$$' ./internal/harness/

# Write-prep regression gate: shot-count goldens plus the raster
# differential (fractured shots must rasterize identically to the
# unfractured geometry). UPDATE=1 refreshes the golden file.
fracture-golden: ## run the write-prep golden + raster differential gate (UPDATE=1 to refresh)
	$(GO) test ./internal/harness/ -run 'TestFracture(Golden|RasterDifferential)' $(if $(UPDATE),-update)

# Incremental-rerouting regression gate: exact cold/replay/patch hashes
# and reuse counters on the golden benchmarks, plus the replay==cold
# equivalence invariant (docs/ECO.md). UPDATE=1 refreshes the snapshot.
eco-golden: ## run the ECO golden gate (UPDATE=1 to refresh)
	$(GO) test ./internal/harness/ -run TestECOGolden $(if $(UPDATE),-update)

# Multi-seed end-to-end correctness soak (full invariant battery over the
# harness parameter grid).
SOAK_SEEDS ?= 25
soak: ## multi-seed end-to-end correctness soak
	$(GO) run ./cmd/routecheck -seeds $(SOAK_SEEDS)

clean: ## remove generated figures, coverage, lint binaries, and lint cache
	rm -f fig15.svg fig16a.svg fig16b.svg cover.out
	rm -rf bin .stitchvet-cache

help: ## list targets with their descriptions
	@awk -F':.*## ' '/^[a-zA-Z_-]+:.*## / {printf "  %-12s %s\n", $$1, $$2}' $(MAKEFILE_LIST)
