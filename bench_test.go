// Benchmark harness: one testing.B entry per table and figure of the
// paper's evaluation (§IV). Each benchmark runs the corresponding
// experiment from internal/experiments on a representative circuit; run
// the full suites with cmd/tablegen -circuits all.
package stitchroute

import (
	"io"
	"strings"
	"testing"

	"stitchroute/internal/bench"
	"stitchroute/internal/experiments"
)

// BenchmarkTable1 generates every MCNC circuit (Table I).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range bench.MCNC() {
			c := bench.Generate(s)
			if len(c.Nets) != s.Nets {
				b.Fatal("net count mismatch")
			}
		}
	}
}

// BenchmarkTable2 generates every Faraday circuit (Table II).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range bench.Faraday() {
			c := bench.Generate(s)
			if len(c.Nets) != s.Nets {
				b.Fatal("net count mismatch")
			}
		}
	}
}

// BenchmarkTable3 runs the baseline-vs-stitch-aware comparison on a small
// MCNC circuit (Table III).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3([]string{"S9234"})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Ours.SP > rows[0].Baseline.SP {
			b.Fatalf("SP regression: %d > %d", rows[0].Ours.SP, rows[0].Baseline.SP)
		}
	}
}

// BenchmarkTable4 runs the global-routing line-end ablation on one hard
// circuit (Table IV).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4([]string{"S13207"})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].With.TVOF > rows[0].Without.TVOF {
			b.Fatal("line-end cost increased overflow")
		}
	}
}

// BenchmarkTable5 computes the instance statistics (Table V).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := experiments.DefaultInstanceSet().Table5()
		if st.Instances != 50 {
			b.Fatal("instance count")
		}
	}
}

// BenchmarkTable6 runs the layer-assignment comparison (Table VI).
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.DefaultInstanceSet().Table6()
		if rows[len(rows)-1].Ours > rows[len(rows)-1].MST {
			b.Fatal("ours worse than MST at k=5")
		}
	}
}

// BenchmarkTable7 compares the three track-assignment algorithms
// (Table VII).
func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table7([]string{"S9234"})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Graph.SP > rows[0].Conv.SP {
			b.Fatal("graph-based worse than conventional")
		}
	}
}

// BenchmarkTable8 runs the detailed-routing ablation (Table VIII).
func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table8([]string{"S9234"})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].With.SP > rows[0].Without.SP {
			b.Fatal("stitch-aware detail worse")
		}
	}
}

// BenchmarkFig4 runs the rasterization-defect sweep (Fig. 4).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig15 renders the full-chip SVG of a routed circuit (Fig. 15;
// the paper uses S38417 — the harness uses a smaller circuit so the
// benchmark stays minutes-free, cmd/layoutviz renders the real one).
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := experiments.Fig15(&sb, "S9234"); err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(sb.String(), "</svg>") {
			b.Fatal("incomplete SVG")
		}
	}
}

// BenchmarkFig16 renders the zoomed with/without comparison (Fig. 16).
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig16(io.Discard, io.Discard, "S9234"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the design-choice ablation suite (escape cost,
// via-SUR cost, net ordering, global refinement, placement) on one
// circuit.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations("S9234")
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) < 6 {
			b.Fatal("missing ablation variants")
		}
	}
}

// BenchmarkPhysicalValidation rasterizes the stitch cuts of both routers'
// solutions and compares simulated dithering damage (the §II-A physical
// story, applied to real routed geometry).
func BenchmarkPhysicalValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, ours, err := experiments.Physical("S9234")
		if err != nil {
			b.Fatal(err)
		}
		if ours.ViaCuts > base.ViaCuts {
			b.Fatal("stitch-aware regression in via cuts")
		}
	}
}

// BenchmarkTable6Gap runs the optimality-gap extension of the
// layer-assignment study (exact branch-and-bound on small instances).
func BenchmarkTable6Gap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table6Gap(7, 8, 8, 12, 2_000_000)
		if len(rows) != 4 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkVariance runs the seed-variance robustness study: the Table III
// headline on independent synthetic instances.
func BenchmarkVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum, err := experiments.Variance("S9234", 2)
		if err != nil {
			b.Fatal(err)
		}
		if sum.SPRatioMean > 0.2 {
			b.Fatalf("SP ratio regression: %.3f", sum.SPRatioMean)
		}
	}
}
