package stitchroute_test

import (
	"fmt"

	"stitchroute"
)

// ExampleRoute routes a two-net circuit across a stitching line and
// prints the DRC summary.
func ExampleRoute() {
	fabric := stitchroute.NewFabric(60, 45, 3) // stitching lines at x = 0, 15, 30, 45
	pin := func(x, y int) stitchroute.Pin {
		return stitchroute.Pin{Point: stitchroute.Point{X: x, Y: y}, Layer: 1}
	}
	circuit := &stitchroute.Circuit{
		Name:   "example",
		Fabric: fabric,
		Nets: []*stitchroute.Net{
			{ID: 0, Name: "a", Pins: []stitchroute.Pin{pin(8, 10), pin(25, 12)}},
			{ID: 1, Name: "b", Pins: []stitchroute.Pin{pin(5, 30), pin(40, 35)}},
		},
	}
	result, err := stitchroute.Route(circuit, stitchroute.StitchAware())
	if err != nil {
		panic(err)
	}
	fmt.Printf("routed %d/%d nets\n", result.Report.RoutedNets, result.Report.TotalNets)
	fmt.Printf("short polygons: %d\n", result.Report.ShortPolygons)
	fmt.Printf("vertical-routing violations: %d\n", result.Report.VertRouteViolations)
	// Output:
	// routed 2/2 nets
	// short polygons: 0
	// vertical-routing violations: 0
}

// ExampleGenerate builds one of the paper's benchmark circuits.
func ExampleGenerate() {
	spec, _ := stitchroute.BenchmarkByName("S9234")
	circuit := stitchroute.Generate(spec)
	fmt.Printf("%s: %d nets, %d pins\n", circuit.Name, len(circuit.Nets), circuit.NumPins())
	// Output:
	// S9234: 1486 nets, 4260 pins
}

// ExampleRefinePlacement removes the via violations forced by pins that
// sit on stitching lines (the paper's proposed future work).
func ExampleRefinePlacement() {
	fabric := stitchroute.NewFabric(60, 45, 3)
	circuit := &stitchroute.Circuit{
		Name:   "p",
		Fabric: fabric,
		Nets: []*stitchroute.Net{{
			ID: 0, Name: "n",
			Pins: []stitchroute.Pin{
				{Point: stitchroute.Point{X: 15, Y: 10}, Layer: 1}, // on a stitching line
				{Point: stitchroute.Point{X: 40, Y: 20}, Layer: 1},
			},
		}},
	}
	refined, stats := stitchroute.RefinePlacement(circuit)
	fmt.Printf("moved %d of %d stitch-column pins\n", stats.Moved, stats.OnStitch)
	fmt.Printf("remaining pin via violations: %d\n", refined.PinViaViolations())
	// Output:
	// moved 1 of 1 stitch-column pins
	// remaining pin via violations: 0
}
