// Command stitchvet is the repo's domain-specific linter: a multichecker
// that enforces the router's determinism, cancellation, and concurrency
// invariants at compile time instead of rediscovering them in soak runs.
//
// Usage:
//
//	stitchvet [-only name,name] [-json] [-v] [packages...]
//
// Packages default to ./.... Exit status is 1 if any unsuppressed
// diagnostic is reported, 2 on driver errors. With -json, diagnostics
// are emitted one JSON object per line (including suppressed ones,
// marked as such); the schema is documented in docs/LINTING.md, along
// with what each analyzer guards and how to suppress a false positive
// with //lint:ignore.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/ctxflow"
	"stitchroute/internal/analysis/driver"
	"stitchroute/internal/analysis/floateq"
	"stitchroute/internal/analysis/hotalloc"
	"stitchroute/internal/analysis/leakcheck"
	"stitchroute/internal/analysis/lockdiscipline"
	"stitchroute/internal/analysis/mapiterorder"
	"stitchroute/internal/analysis/nondeterm"
)

var analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	floateq.Analyzer,
	hotalloc.Analyzer,
	leakcheck.Analyzer,
	lockdiscipline.Analyzer,
	mapiterorder.Analyzer,
	nondeterm.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per diagnostic line (see docs/LINTING.md)")
	verbose := flag.Bool("v", false, "print each package as it is checked")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stitchvet [-only name,name] [-json] [-v] [packages...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	opts := driver.Options{Verbose: *verbose, JSON: *jsonOut}
	if *only != "" {
		opts.Only = strings.Split(*only, ",")
	}
	n, err := driver.Run(analyzers, patterns, os.Stdout, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stitchvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "stitchvet: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
