// Command stitchvet is the repo's domain-specific linter: a multichecker
// that enforces the router's determinism, cancellation, and concurrency
// invariants at compile time instead of rediscovering them in soak runs.
//
// Usage:
//
//	stitchvet [-only name,name] [-cache dir] [-diff ref] [-jobs n] [-json|-sarif] [-fix] [-audit] [-v] [packages...]
//
// Packages default to ./.... Exit status is 1 if any unsuppressed
// diagnostic is reported, 2 on driver errors. With -json, diagnostics
// are emitted one JSON object per line (including suppressed ones,
// marked as such); with -sarif a single SARIF 2.1.0 document is emitted
// for CI annotation; the schemas are documented in docs/LINTING.md,
// along with what each analyzer guards and how to suppress a false
// positive with //lint:ignore.
//
// -cache dir enables the on-disk findings cache: a warm re-run with no
// source changes replays findings without loading or type-checking a
// single package, and -diff ref re-analyzes only the packages with .go
// changes since the git ref, serving the rest from the cache. Findings
// are byte-identical across cold, warm, and diff paths. -jobs bounds
// per-package analysis parallelism (default GOMAXPROCS).
//
// -fix applies each finding's suggested fix (where the analyzer attached
// one), formats the touched files, and re-analyzes: the exit status
// reflects what is left AFTER the fixes.
//
// -audit walks the tree and fails on any //lint:ignore directive that
// has no reason text or names an unknown analyzer, then runs a fresh
// analysis and fails on any directive that no finding matched: a stale
// suppression is a future bug report with the evidence deleted.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stitchroute/internal/analysis/driver"
	"stitchroute/internal/analysis/registry"
)

var analyzers = registry.All()

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per diagnostic line (see docs/LINTING.md)")
	sarifOut := flag.Bool("sarif", false, "emit a SARIF 2.1.0 document (for CI annotation)")
	fix := flag.Bool("fix", false, "apply suggested fixes, gofmt the touched files, and re-analyze")
	audit := flag.Bool("audit", false, "audit //lint:ignore directives (missing reasons, unknown analyzers, stale suppressions), then exit")
	fingerprint := flag.Bool("fingerprint", false, "print the analyzer-set cache fingerprint and exit (CI keys its cache on it)")
	cacheDir := flag.String("cache", "", "findings cache directory (enables warm replay and -diff)")
	diffRef := flag.String("diff", "", "git ref: re-analyze only packages changed since it (requires -cache)")
	jobs := flag.Int("jobs", 0, "max packages analyzed in parallel (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print each package as it is checked")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stitchvet [-only name,name] [-cache dir] [-diff ref] [-jobs n] [-json|-sarif] [-fix] [-audit] [-v] [packages...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	if *fingerprint {
		fmt.Println(registry.Fingerprint())
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *audit {
		valid := map[string]bool{}
		for _, a := range analyzers {
			valid[a.Name] = true
		}
		n, err := driver.AuditIgnores(".", valid, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stitchvet:", err)
			os.Exit(2)
		}
		stale, err := driver.StaleIgnores(analyzers, patterns, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stitchvet:", err)
			os.Exit(2)
		}
		if n+stale > 0 {
			fmt.Fprintf(os.Stderr, "stitchvet: %d unjustified and %d stale suppression(s)\n", n, stale)
			os.Exit(1)
		}
		return
	}

	opts := driver.Options{
		Verbose:  *verbose,
		JSON:     *jsonOut,
		SARIF:    *sarifOut,
		Fix:      *fix,
		CacheDir: *cacheDir,
		Diff:     *diffRef,
		Jobs:     *jobs,
	}
	if *only != "" {
		opts.Only = strings.Split(*only, ",")
	}
	n, err := driver.Run(analyzers, patterns, os.Stdout, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stitchvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "stitchvet: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
