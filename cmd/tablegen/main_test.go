package main

import "testing"

func TestPickCircuits(t *testing.T) {
	if got := pickCircuits("small"); len(got) == 0 {
		t.Error("small set empty")
	}
	if got := pickCircuits("all"); len(got) != 14 {
		t.Errorf("all = %d circuits, want 14", len(got))
	}
	if got := pickCircuits("hard"); len(got) != 6 {
		t.Errorf("hard = %d circuits, want 6", len(got))
	}
	got := pickCircuits("S9234, DMA")
	if len(got) != 2 || got[0] != "S9234" || got[1] != "DMA" {
		t.Errorf("explicit list = %v", got)
	}
}
