// Command tablegen regenerates the paper's evaluation tables (§IV).
//
// Usage:
//
//	tablegen                  # all tables on the fast circuit subset
//	tablegen -table 3         # one table
//	tablegen -circuits all    # full 14-circuit suite (minutes of CPU)
//	tablegen -circuits S9234,DMA
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"stitchroute/internal/bench"
	"stitchroute/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tablegen: ")
	var (
		table    = flag.Int("table", 0, "table number 1-9 (0 = all)")
		circuits = flag.String("circuits", "small", `"small", "all", "hard", or a comma-separated list`)
		ablation = flag.String("ablation", "", "run the design-choice ablation on the named circuit instead of tables")
		physical = flag.String("physical", "", "run the rasterization-level validation on the named circuit")
		sweep    = flag.String("sweep", "", "run the β/γ cost-weight sweep on the named circuit")
		variance = flag.String("variance", "", "run the seed-variance robustness study on the named circuit")
		seeds    = flag.Int("seeds", 5, "number of independent instances for -variance")
	)
	flag.Parse()

	names := pickCircuits(*circuits)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	run := func(n int) {
		switch n {
		case 1:
			fmt.Fprintln(w, "Table I — MCNC benchmark circuits")
			experiments.FprintTable12(w, bench.MCNC())
		case 2:
			fmt.Fprintln(w, "Table II — Faraday benchmark circuits")
			experiments.FprintTable12(w, bench.Faraday())
		case 3:
			fmt.Fprintln(w, "Table III — stitch-aware framework vs baseline router")
			rows, err := experiments.Table3(names)
			check(err)
			experiments.FprintTable3(w, rows)
		case 4:
			fmt.Fprintln(w, "Table IV — global routing w/o vs w/ line-end consideration (hard circuits)")
			rows, err := experiments.Table4(experiments.HardCircuits())
			check(err)
			experiments.FprintTable4(w, rows)
		case 5:
			fmt.Fprintln(w, "Table V — layer assignment instance characteristics")
			experiments.FprintTable5(w, experiments.DefaultInstanceSet().Table5())
		case 6:
			fmt.Fprintln(w, "Table VI — layer assignment: max spanning tree [4] vs ours")
			experiments.FprintTable6(w, experiments.DefaultInstanceSet().Table6())
			fmt.Fprintln(w)
			fmt.Fprintln(w, "Optimality gap on small instances (extension; exact branch-and-bound)")
			experiments.FprintTable6Gap(w, experiments.DefaultTable6Gap())
		case 7:
			fmt.Fprintln(w, "Table VII — track assignment algorithms")
			rows, err := experiments.Table7(names)
			check(err)
			experiments.FprintTable7(w, rows)
		case 8:
			fmt.Fprintln(w, "Table VIII — detailed routing w/o vs w/ stitch consideration")
			rows, err := experiments.Table8(names)
			check(err)
			experiments.FprintTable8(w, rows)
		case 9:
			fmt.Fprintln(w, "Table IX — MEBL write-prep: fracturing + stencil planning (extension)")
			rows, err := experiments.Table9(names)
			check(err)
			experiments.FprintTable9(w, rows)
		default:
			log.Fatalf("unknown table %d", n)
		}
		fmt.Fprintln(w)
		w.Flush()
	}

	if *variance != "" {
		sum, err := experiments.Variance(*variance, *seeds)
		check(err)
		experiments.FprintVariance(w, *variance, sum)
		return
	}
	if *sweep != "" {
		betas, gammas := experiments.DefaultSweep()
		rows, err := experiments.SweepBetaGamma(*sweep, betas, gammas)
		check(err)
		experiments.FprintSweep(w, *sweep, rows)
		return
	}
	if *physical != "" {
		base, ours, err := experiments.Physical(*physical)
		check(err)
		experiments.FprintPhysical(w, *physical, base, ours)
		return
	}
	if *ablation != "" {
		rows, err := experiments.Ablations(*ablation)
		check(err)
		experiments.FprintAblations(w, *ablation, rows)
		return
	}
	if *table != 0 {
		run(*table)
		return
	}
	for n := 1; n <= 9; n++ {
		run(n)
	}
}

func pickCircuits(arg string) []string {
	switch arg {
	case "small":
		return experiments.SmallCircuits()
	case "all":
		return experiments.AllCircuits()
	case "hard":
		return experiments.HardCircuits()
	}
	var names []string
	for _, n := range strings.Split(arg, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, err := bench.ByName(n); err != nil {
			log.Fatal(err)
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		log.Fatal("no circuits selected")
	}
	return names
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
