// Command routecheck is the end-to-end correctness soak runner: it sweeps
// the harness parameter grid across many seeds, routing every circuit
// under both the stitch-aware and baseline configurations and running the
// full invariant battery — hard DRC invariants, stitch-aware-vs-baseline
// dominance, determinism, and the translate/mirror metamorphic properties.
// It exits nonzero if any circuit violates any invariant.
//
// Usage:
//
//	routecheck [-seeds N] [-grid short|full] [-j workers] [-no-transforms] [-no-determinism] [-par-workers N] [-v]
//
// Typical soak: routecheck -seeds 25. Build with -race for a combined
// correctness+race soak: go run -race ./cmd/routecheck -seeds 5.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"stitchroute/internal/harness"
	"stitchroute/internal/netlist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("routecheck: ")
	var (
		seeds    = flag.Int("seeds", 5, "seeds per grid point")
		gridName = flag.String("grid", "full", "parameter grid: short or full")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent circuits")
		noTrans  = flag.Bool("no-transforms", false, "skip the translate/mirror metamorphic checks")
		noDet    = flag.Bool("no-determinism", false, "skip the byte-identical reroute check")
		spTol    = flag.Int("sp-tol", harness.DefaultOptions().SPTolerance, "allowed short-polygon drift under transforms")
		parWork  = flag.Int("par-workers", harness.DefaultOptions().ParallelWorkers, "worker count for the parallel-equivalence reroute (0 disables)")
		verbose  = flag.Bool("v", false, "print every circuit, not just failures")
	)
	flag.Parse()

	var specs []harness.GenSpec
	switch *gridName {
	case "short":
		specs = harness.ShortGrid()
	case "full":
		specs = harness.FullGrid()
	default:
		log.Fatalf("unknown grid %q (want short or full)", *gridName)
	}
	opt := harness.Options{
		Determinism:     !*noDet,
		Transforms:      !*noTrans,
		SPTolerance:     *spTol,
		ParallelWorkers: *parWork,
	}

	type job struct{ spec harness.GenSpec }
	jobs := make(chan job)
	// A soak whose output went nowhere proves nothing: every stdout write
	// is checked (via the buffered writer's sticky error on Flush) and a
	// failed write makes the exit nonzero. stdout is shared between
	// workers and only touched under mu.
	stdout := bufio.NewWriter(os.Stdout)
	var (
		mu       sync.Mutex
		ran      int
		failed   int
		routed   int
		totalSP  [2]int // stitch, baseline
		start    = time.Now()
		failures []string
		writeErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < max(*workers, 1); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				spec := j.spec
				o, err := harness.Verify(spec.String(), func() *netlist.Circuit { return harness.Generate(spec) }, opt)
				mu.Lock()
				ran++
				if err != nil {
					failed++
					failures = append(failures, fmt.Sprintf("%s: %v", spec.String(), err))
					mu.Unlock()
					continue
				}
				routed += o.Stitch.Report.RoutedNets
				totalSP[0] += o.Stitch.Report.ShortPolygons
				totalSP[1] += o.Baseline.Report.ShortPolygons
				if !o.Ok() {
					failed++
					for _, v := range o.Violations {
						failures = append(failures, fmt.Sprintf("%s: %s", o.Name, v))
					}
				} else if *verbose {
					fmt.Fprintf(stdout, "ok   %-42s rout %6.2f%%  SP %d/%d  WL %d\n",
						o.Name, o.Stitch.Report.Routability(),
						o.Stitch.Report.ShortPolygons, o.Baseline.Report.ShortPolygons,
						o.Stitch.Report.Wirelength)
					if err := stdout.Flush(); err != nil && writeErr == nil {
						writeErr = err
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, base := range specs {
		for s := 0; s < *seeds; s++ {
			spec := base
			spec.Seed = int64(s + 1)
			jobs <- job{spec}
		}
	}
	close(jobs)
	wg.Wait()

	for _, f := range failures {
		if _, err := fmt.Fprintf(os.Stderr, "FAIL %s\n", f); err != nil && writeErr == nil {
			writeErr = err
		}
	}
	fmt.Fprintf(stdout, "%d circuits (%d grid points x %d seeds) in %.1fs: %d failed; %d nets routed; SP stitch/baseline %d/%d\n",
		ran, len(specs), *seeds, time.Since(start).Seconds(), failed, routed, totalSP[0], totalSP[1])
	if err := stdout.Flush(); err != nil && writeErr == nil {
		writeErr = err
	}
	if writeErr != nil {
		log.Printf("writing results: %v", writeErr)
		os.Exit(1)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
