// Command layoutviz renders the paper's layout figures as SVG files:
// the full-chip routed view of Fig. 15 and the zoomed with/without
// comparison of Fig. 16.
//
// Usage:
//
//	layoutviz -circuit S38417 -out fig15.svg          # Fig. 15
//	layoutviz -fig16 -circuit S9234 -out fig16        # writes fig16a.svg, fig16b.svg
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"stitchroute/internal/core"
	"stitchroute/internal/experiments"
	"stitchroute/internal/gds"
	"stitchroute/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("layoutviz: ")
	var (
		circuit = flag.String("circuit", "S38417", "benchmark circuit")
		fig16   = flag.Bool("fig16", false, "render the Fig. 16 local comparison instead of Fig. 15")
		heat    = flag.Bool("heatmap", false, "render a tile congestion heatmap instead of the layout")
		gdsOut  = flag.String("gds", "", "also export the routed geometry as a GDSII file")
		out     = flag.String("out", "fig15.svg", "output file (Fig. 16 appends a.svg/b.svg)")
	)
	flag.Parse()

	if *heat {
		c, res, err := experiments.RouteCircuit(*circuit, core.StitchAware())
		check(err)
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		check(viz.WriteHeatmap(f, c.Fabric, res.Routes,
			fmt.Sprintf("%s tile congestion", *circuit)))
		for _, u := range viz.Utilizations(c.Fabric, res.Routes) {
			fmt.Printf("layer %d: %.1f%% of tracks used\n", u.Layer, 100*u.Fill())
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}

	if *fig16 {
		fa, err := os.Create(*out + "a.svg")
		check(err)
		defer fa.Close()
		fb, err := os.Create(*out + "b.svg")
		check(err)
		defer fb.Close()
		spWithout, spWith, err := experiments.Fig16(fa, fb, *circuit)
		check(err)
		fmt.Printf("Fig. 16 on %s: %d short polygons without stitch awareness, %d with\n",
			*circuit, spWithout, spWith)
		fmt.Printf("wrote %sa.svg and %sb.svg\n", *out, *out)
		return
	}

	c, res, err := experiments.RouteCircuit(*circuit, core.StitchAware())
	check(err)
	f, err := os.Create(*out)
	check(err)
	defer f.Close()
	check(viz.WriteSVG(f, c.Fabric, res.Routes, viz.Options{
		Scale: 1.4,
		Title: fmt.Sprintf("Fig. 15 - stitch-aware routing of %s (%.2f%% routed, %d short polygons)",
			*circuit, res.Report.Routability(), res.Report.ShortPolygons),
	}))
	fmt.Printf("wrote %s\n", *out)
	if *gdsOut != "" {
		g, err := os.Create(*gdsOut)
		check(err)
		defer g.Close()
		check(gds.Write(g, res.Routes, gds.Options{LibName: "STITCHROUTE", CellName: *circuit}))
		fmt.Printf("wrote %s\n", *gdsOut)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
