// Command meblroute routes one benchmark circuit with the stitch-aware
// framework (or the conventional baseline) and prints the Table III-style
// summary row: routability, via violations, short polygons, and CPU time.
//
// Usage:
//
//	meblroute -circuit S9234 [-mode stitch|baseline] [-track graph|ilp|conventional] [-workers N] [-fracture rect|lshape] [-stencil] [-timeout 30s] [-cpuprofile f] [-memprofile f] [-v]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"stitchroute/internal/bench"
	"stitchroute/internal/core"
	"stitchroute/internal/drc"
	"stitchroute/internal/eco"
	"stitchroute/internal/fracture"
	"stitchroute/internal/geom"
	"stitchroute/internal/netlist"
	"stitchroute/internal/nlio"
	"stitchroute/internal/place"
	"stitchroute/internal/stencil"
	"stitchroute/internal/track"
	"stitchroute/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meblroute: ")
	os.Exit(run())
}

// run holds the whole CLI body so deferred profile writers flush before
// the process exits with a nonzero status.
func run() int {
	var (
		circuit  = flag.String("circuit", "S9234", "benchmark circuit name (see cmd/benchgen -list)")
		inFile   = flag.String("in", "", "route a circuit from an nlio text file instead of a benchmark")
		doPlace  = flag.Bool("place", false, "run stitch-aware placement refinement before routing")
		mode     = flag.String("mode", "stitch", "router mode: stitch or baseline")
		trk      = flag.String("track", "", "override track assignment: conventional, ilp, or graph")
		workers  = flag.Int("workers", 0, "detailed-routing workers (0 = auto: NumCPU; 1 = sequential; capped at 256); results are identical for every value")
		verbose  = flag.Bool("v", false, "print per-stage detail")
		outFile  = flag.String("routes", "", "write the routed geometry to this file (nlio routes format)")
		jsonOut  = flag.Bool("json", false, "print the result summary as JSON (machine-readable)")
		svgOut   = flag.String("svg", "", "write the routed layout as SVG to this file")
		checkIn  = flag.String("check", "", "skip routing: DRC-check this routes file against the circuit")
		ecoFile  = flag.String("eco", "", "after routing, apply this JSON edit script ({\"edits\":[...]}) and reroute incrementally")
		ecoMode  = flag.String("eco-mode", "replay", "ECO engine: replay (byte-equal to a cold reroute) or patch (graft, fastest)")
		fracMode = flag.String("fracture", "", "run write-prep fracturing on the routed geometry: rect or lshape")
		doSten   = flag.Bool("stencil", false, "plan a CP stencil from the fractured shots (requires -fracture)")
		timeout  = flag.Duration("timeout", 0, "abort routing after this long (0 = no limit)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	cfg := core.StitchAware()
	if *mode == "baseline" {
		cfg = core.Baseline()
	} else if *mode != "stitch" {
		log.Printf("unknown mode %q", *mode)
		return 2
	}
	switch *trk {
	case "":
	case "conventional":
		cfg.TrackAlgo = track.Conventional
	case "ilp":
		cfg.TrackAlgo = track.ILPBased
	case "graph":
		cfg.TrackAlgo = track.GraphBased
	default:
		log.Printf("unknown track algorithm %q", *trk)
		return 2
	}
	if *workers < 0 {
		log.Printf("-workers must be >= 0, got %d", *workers)
		return 2
	}
	cfg.Detail.Workers = *workers
	var fmode fracture.Mode
	if *fracMode != "" {
		var err error
		if fmode, err = fracture.ParseMode(*fracMode); err != nil {
			log.Print(err)
			return 2
		}
	} else if *doSten {
		log.Print("-stencil requires -fracture")
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Print(err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Print(err)
				return
			}
			runtime.GC() // measure live heap, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
			f.Close()
		}()
	}

	var c *netlist.Circuit
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			log.Print(err)
			return 1
		}
		c, err = nlio.Read(f)
		f.Close()
		if err != nil {
			log.Print(err)
			return 1
		}
	} else {
		spec, err := bench.ByName(*circuit)
		if err != nil {
			log.Print(err)
			return 1
		}
		c = bench.Generate(spec)
	}
	// In -json mode stdout carries only the JSON document; status lines
	// go to stderr so the output stays machine-readable.
	status := os.Stdout
	if *jsonOut {
		status = os.Stderr
	}
	if *doPlace {
		var st place.Stats
		c, st = place.Refine(c)
		fmt.Fprintf(status, "placement refinement: %d stitch-column pins, %d moved, %d stuck\n",
			st.OnStitch, st.Moved, st.Stuck)
	}
	fmt.Fprintf(status, "%s: %d nets, %d pins, %d layers, grid %dx%d (%dx%d tiles)\n",
		c.Name, len(c.Nets), c.NumPins(), c.Fabric.Layers,
		c.Fabric.XTracks, c.Fabric.YTracks,
		c.Fabric.TilesX(), c.Fabric.TilesY())

	if *checkIn != "" {
		f, err := os.Open(*checkIn)
		if err != nil {
			log.Print(err)
			return 1
		}
		routes, err := nlio.ReadRoutes(f)
		f.Close()
		if err != nil {
			log.Print(err)
			return 1
		}
		rep := drc.Check(c, routes)
		fmt.Printf("Rout. %.2f%%  #VV %d (off-pin %d)  #SP %d  vert-violations %d  WL %d  vias %d\n",
			rep.Routability(), rep.ViaViolations, rep.ViaViolationsOffPin,
			rep.ShortPolygons, rep.VertRouteViolations, rep.Wirelength, rep.Vias)
		if shorts := drc.CheckShorts(routes); shorts > 0 {
			fmt.Printf("cross-net shorts: %d\n", shorts)
			return 1
		}
		if bad := drc.CheckConnectivity(c, routes); bad > 0 {
			fmt.Printf("disconnected routed nets: %d\n", bad)
			return 1
		}
		if rep.VertRouteViolations > 0 || rep.ViaViolationsOffPin > 0 {
			return 1
		}
		return 0
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := core.RouteContext(ctx, c, cfg)
	if err != nil {
		if errors.Is(err, core.ErrCancelled) {
			log.Printf("routing aborted after %v: %v", *timeout, err)
			return 1
		}
		log.Print(err)
		return 1
	}
	rep := res.Report
	var ecoRes *eco.Result
	if *ecoFile != "" {
		f, err := os.Open(*ecoFile)
		if err != nil {
			log.Print(err)
			return 1
		}
		script, err := eco.ParseScript(f)
		f.Close()
		if err != nil {
			log.Print(err)
			return 1
		}
		coldTime := res.Times.Total()
		switch *ecoMode {
		case "replay":
			ecoRes, err = eco.RerouteContext(ctx, res, c, script, cfg)
		case "patch":
			ecoRes, err = eco.ReroutePatchContext(ctx, res, c, script, cfg)
		default:
			log.Printf("unknown -eco-mode %q (want replay or patch)", *ecoMode)
			return 2
		}
		if err != nil {
			log.Print(err)
			return 1
		}
		fmt.Fprintf(status, "eco (%s): %d edits, %d/%d nets rerouted, %.1fms vs %.1fms cold (%.1fx)\n",
			*ecoMode, len(script.Edits), ecoRes.Stats.DetailRouted, len(ecoRes.Edited.Nets),
			float64(ecoRes.Times.Total().Microseconds())/1000,
			float64(coldTime.Microseconds())/1000,
			float64(coldTime)/float64(ecoRes.Times.Total()))
		// Downstream output (-json, -routes, -svg, -fracture) describes
		// the edited circuit's routing.
		c = ecoRes.Edited
		res = ecoRes.Result
		rep = res.Report
	}
	var fres *fracture.Result
	var splan *stencil.Plan
	if *fracMode != "" {
		fres = fracture.Fracture(res.Routes, c.Fabric.Layers, fmode, fracture.Options{})
		if *doSten {
			splan = stencil.Build(fres.Shots, stencil.Options{})
		}
	}
	if *jsonOut {
		summary := map[string]any{
			"circuit":             c.Name,
			"nets":                len(c.Nets),
			"pins":                c.NumPins(),
			"routability":         rep.Routability(),
			"routedNets":          rep.RoutedNets,
			"viaViolations":       rep.ViaViolations,
			"viaViolationsOffPin": rep.ViaViolationsOffPin,
			"vertRouteViolations": rep.VertRouteViolations,
			"shortPolygons":       rep.ShortPolygons,
			"wirelength":          rep.Wirelength,
			"tvof":                res.TVOF,
			"mvof":                res.MVOF,
			"badEnds":             res.TrackStats.BadEnds,
			"rippedNets":          res.RippedNets,
			"failedNets":          res.FailedNets,
			"detailConnects":      res.DetailConnects,
			"detailExpansions":    res.DetailExpansions,
			"detailSeconds":       res.Times.Detail.Seconds(),
			"cpuSeconds":          res.Times.Total().Seconds(),
		}
		if ecoRes != nil {
			summary["eco"] = map[string]any{
				"mode":         *ecoMode,
				"editedNets":   ecoRes.Stats.EditedNets,
				"fallback":     ecoRes.Stats.Fallback,
				"detailReused": ecoRes.Stats.DetailReused,
				"detailRouted": ecoRes.Stats.DetailRouted,
				"globalReused": ecoRes.Stats.GlobalReused,
				"ecoSeconds":   ecoRes.Times.Total().Seconds(),
			}
		}
		if fres != nil {
			hash, err := fracture.ShotsHash(fres.Shots)
			if err != nil {
				log.Print(err)
				return 1
			}
			summary["fracture"] = map[string]any{
				"mode":      fres.Mode.String(),
				"shots":     fres.ShotCount,
				"rectShots": fres.RectShots,
				"lShots":    fres.LShots,
				"slivers":   fres.Slivers,
				"area":      fres.Area,
				"reduction": fres.LShapeReduction(),
				"shotsHash": hash,
			}
		}
		if splan != nil {
			summary["stencil"] = map[string]any{
				"characters": len(splan.Placements),
				"candidates": splan.Candidates,
				"cpFlashes":  splan.CPFlashes,
				"vsbTime":    splan.VSBTime,
				"cpTime":     splan.CPTime,
				"saving":     splan.Saving,
				"reduction":  splan.Reduction(),
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			log.Print(err)
			return 1
		}
	} else {
		fmt.Printf("Rout. %.2f%%  #VV %d  #SP %d  WL %d  CPU %.2fs\n",
			rep.Routability(), rep.ViaViolations, rep.ShortPolygons, rep.Wirelength,
			res.Times.Total().Seconds())
		if fres != nil {
			fmt.Printf("fracture (%s): %d shots", fres.Mode, fres.ShotCount)
			if fres.Mode == fracture.ModeLShape {
				fmt.Printf(" (%d rect baseline, %.1f%% saved)", fres.RectShots, 100*fres.LShapeReduction())
			}
			fmt.Printf(", %d slivers\n", fres.Slivers)
		}
		if splan != nil {
			fmt.Printf("stencil: %d characters, %d CP flashes, write time %.1f -> %.1f (%.1f%% saved)\n",
				len(splan.Placements), splan.CPFlashes, splan.VSBTime, splan.CPTime,
				100*splan.Reduction())
		}
		if *verbose {
			fmt.Printf("  global:  %8.2fs  WL %d  TVOF %d  MVOF %d  edge-overflow %d\n",
				res.Times.Global.Seconds(), res.GlobalWL, res.TVOF, res.MVOF, res.EdgeOverflow)
			fmt.Printf("  layer:   %8.2fs\n", res.Times.Layer.Seconds())
			fmt.Printf("  track:   %8.2fs  bad-ends %d  ripped %d  doglegs %d\n",
				res.Times.Track.Seconds(), res.TrackStats.BadEnds, res.TrackStats.Ripped, res.TrackStats.Doglegs)
			fmt.Printf("  detail:  %8.2fs  ripped-nets %d  failed %d  searches %d  expansions %d\n",
				res.Times.Detail.Seconds(), res.RippedNets, res.FailedNets,
				res.DetailConnects, res.DetailExpansions)
			fmt.Printf("  checks:  vert-violations %d  off-pin VV %d\n",
				rep.VertRouteViolations, rep.ViaViolationsOffPin)
		}
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			log.Print(err)
			return 1
		}
		var pins []geom.Point
		for _, n := range c.Nets {
			for _, p := range n.Pins {
				pins = append(pins, p.Point)
			}
		}
		err = viz.WriteSVG(f, c.Fabric, res.Routes, viz.Options{
			Scale: 4, ShowSUR: true, Pins: pins,
			Title: fmt.Sprintf("%s — %s", c.Name, *mode),
		})
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := f.Close(); err != nil {
			log.Print(err)
			return 1
		}
		fmt.Fprintf(status, "wrote %s\n", *svgOut)
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := nlio.WriteRoutes(f, res.Routes); err != nil {
			log.Print(err)
			return 1
		}
		if err := f.Close(); err != nil {
			log.Print(err)
			return 1
		}
		fmt.Fprintf(status, "wrote %s\n", *outFile)
	}
	if rep.VertRouteViolations > 0 || rep.ViaViolationsOffPin > 0 {
		return 1
	}
	return 0
}
