// Command meblserved serves the stitch-aware router as an HTTP JSON API:
// routing jobs run on a bounded worker pool, identical submissions are
// served from a content-addressed result cache, and jobs can be
// cancelled or time-bounded mid-route.
//
// Usage:
//
//	meblserved [-addr :8080] [-workers N] [-queue 64] [-cache 64] [-retain 512] [-job-timeout 10m] [-pprof]
//
// See docs/API.md for the endpoint contract and README.md for a curl
// walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"stitchroute/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meblserved: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "max queued jobs before submissions get 503")
		cacheSize   = flag.Int("cache", 64, "result cache entries (negative disables)")
		retain      = flag.Int("retain", 512, "finished jobs kept before oldest are evicted (negative = unbounded)")
		jobTimeout  = flag.Duration("job-timeout", 0, "default per-job timeout (0 = unbounded)")
		maxTimeout  = flag.Duration("max-timeout", 0, "cap on any requested per-job timeout (0 = uncapped)")
		grace       = flag.Duration("grace", 30*time.Second, "shutdown grace period before running jobs are cancelled")
		enablePprof = flag.Bool("pprof", false, "serve Go pprof profiling endpoints under /debug/pprof/")
	)
	flag.Parse()

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		MaxFinished:    *retain,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
	})
	// Compose an explicit outer mux instead of leaning on http.DefaultServeMux
	// so profiling endpoints exist only when asked for, and nothing else
	// registered against the default mux leaks onto this listener.
	handler := srv.Handler()
	if *enablePprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (grace %v)", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("grace period expired; running jobs were cancelled")
		} else {
			log.Printf("pool shutdown: %v", err)
		}
	}
	log.Printf("bye")
}
