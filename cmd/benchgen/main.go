// Command benchgen lists the benchmark suite (Tables I–II) and optionally
// dumps a generated circuit's netlist as text for inspection.
//
// Usage:
//
//	benchgen -list
//	benchgen -circuit S9234 [-dump]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"stitchroute/internal/bench"
	"stitchroute/internal/experiments"
	"stitchroute/internal/nlio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")
	var (
		list    = flag.Bool("list", false, "print Tables I and II (benchmark statistics)")
		circuit = flag.String("circuit", "", "generate the named circuit and print summary stats")
		dump    = flag.Bool("dump", false, "with -circuit: dump every net and pin")
		stats   = flag.Bool("stats", false, "with -circuit: print netlist shape statistics")
		outDir  = flag.String("write", "", "write every benchmark circuit as an nlio file into this directory")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, spec := range bench.All() {
			c := bench.Generate(spec)
			path := filepath.Join(*outDir, spec.Name+".nl")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := nlio.Write(f, c); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "wrote %s (%d nets)\n", path, len(c.Nets))
		}
		return
	}

	if *list || *circuit == "" {
		fmt.Fprintln(w, "Table I — MCNC benchmark circuits")
		experiments.FprintTable12(w, bench.MCNC())
		fmt.Fprintln(w)
		fmt.Fprintln(w, "Table II — Faraday benchmark circuits")
		experiments.FprintTable12(w, bench.Faraday())
		return
	}

	spec, err := bench.ByName(*circuit)
	if err != nil {
		log.Fatal(err)
	}
	c := bench.Generate(spec)
	if err := c.Validate(); err != nil {
		log.Fatalf("generated circuit invalid: %v", err)
	}
	fmt.Fprintf(w, "%s: fabric %dx%d tracks, %d layers, %d tiles, %d nets, %d pins, %d pin via violations\n",
		c.Name, c.Fabric.XTracks, c.Fabric.YTracks, c.Fabric.Layers,
		c.Fabric.TilesX()*c.Fabric.TilesY(), len(c.Nets), c.NumPins(), c.PinViaViolations())
	if *stats {
		st := bench.Measure(c)
		fmt.Fprintf(w, "degree: min %d, mean %.2f, max %d\n", st.MinDegree, st.MeanDegree, st.MaxDegree)
		fmt.Fprintf(w, "HPWL: mean %.1f, max %d tracks\n", st.MeanHPWL, st.MaxHPWL)
		fmt.Fprintf(w, "pin density: %.3f pins per layer-1 cell\n", st.PinDensity)
		fmt.Fprintf(w, "tile-local nets: %.1f%%\n", 100*st.LocalFrac)
		fmt.Fprintf(w, "pins on stitching lines: %d\n", st.StitchPins)
	}
	if *dump {
		for _, n := range c.Nets {
			fmt.Fprintf(w, "net %d %s:", n.ID, n.Name)
			for _, p := range n.Pins {
				fmt.Fprintf(w, " (%d,%d,L%d)", p.X, p.Y, p.Layer)
			}
			fmt.Fprintln(w)
		}
	}
}
