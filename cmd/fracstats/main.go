// Command fracstats routes one benchmark circuit and reports the
// write-prep fracturing statistics in depth: both fracturing modes side
// by side, the per-layer shot breakdown, and (optionally) the CP stencil
// plan the shot library admits.
//
// Usage:
//
//	fracstats -circuit S9234 [-workers N] [-stencil] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"stitchroute/internal/bench"
	"stitchroute/internal/core"
	"stitchroute/internal/fracture"
	"stitchroute/internal/netlist"
	"stitchroute/internal/nlio"
	"stitchroute/internal/stencil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fracstats: ")
	os.Exit(run())
}

func run() int {
	var (
		circuit = flag.String("circuit", "S9234", "benchmark circuit name (see cmd/benchgen -list)")
		inFile  = flag.String("in", "", "fracture a circuit from an nlio text file instead of a benchmark")
		workers = flag.Int("workers", 0, "detailed-routing workers (0 = auto: NumCPU; capped at 256)")
		doSten  = flag.Bool("stencil", false, "also plan a CP stencil from the L-shape shot library")
		jsonOut = flag.Bool("json", false, "print the statistics as JSON (machine-readable)")
	)
	flag.Parse()
	if *workers < 0 {
		log.Printf("-workers must be >= 0, got %d", *workers)
		return 2
	}

	c, err := loadCircuit(*inFile, *circuit)
	if err != nil {
		log.Print(err)
		return 1
	}
	cfg := core.StitchAware()
	cfg.Detail.Workers = *workers
	res, err := core.Route(c, cfg)
	if err != nil {
		log.Print(err)
		return 1
	}

	rect := fracture.Fracture(res.Routes, c.Fabric.Layers, fracture.ModeRect, fracture.Options{})
	lshape := fracture.Fracture(res.Routes, c.Fabric.Layers, fracture.ModeLShape, fracture.Options{})
	hash, err := fracture.ShotsHash(lshape.Shots)
	if err != nil {
		log.Print(err)
		return 1
	}
	var plan *stencil.Plan
	if *doSten {
		plan = stencil.Build(lshape.Shots, stencil.Options{})
	}

	if *jsonOut {
		doc := map[string]any{
			"circuit":         c.Name,
			"rect":            rect,
			"lshape":          lshape,
			"lshapeShotsHash": hash,
		}
		if plan != nil {
			doc["stencil"] = plan
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Print(err)
			return 1
		}
		return 0
	}

	fmt.Printf("%s: %d routed nets, %d layers\n", c.Name, res.Report.RoutedNets, c.Fabric.Layers)
	fmt.Printf("rect:   %6d shots  %4d slivers  area %d\n", rect.ShotCount, rect.Slivers, rect.Area)
	fmt.Printf("lshape: %6d shots  %4d slivers  %4d L  (%.1f%% saved, %d greedy comps, %d bnb nodes)\n",
		lshape.ShotCount, lshape.Slivers, lshape.LShots,
		100*lshape.LShapeReduction(), lshape.GreedyComponents, lshape.MatchNodes)
	fmt.Printf("lshape shots hash: %s\n", hash)
	fmt.Println("layer   rects   shots  L-shots  slivers      area")
	for _, ls := range lshape.Layers {
		fmt.Printf("%5d  %6d  %6d   %6d   %6d  %8d\n",
			ls.Layer, ls.Rects, ls.Shots, ls.LShots, ls.Slivers, ls.Area)
	}
	if plan != nil {
		fmt.Printf("stencil: %d/%d characters packed (%d dropped), %d/%d clusters as CP\n",
			len(plan.Placements), plan.Selected, plan.Dropped, plan.CPFlashes, plan.Clusters)
		fmt.Printf("write time: VSB %.1f -> CP %.1f (%.1f%% saved, shared blank %d)\n",
			plan.VSBTime, plan.CPTime, 100*plan.Reduction(), plan.SharedBlank)
	}
	return 0
}

func loadCircuit(inFile, name string) (*netlist.Circuit, error) {
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return nlio.Read(f)
	}
	spec, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return bench.Generate(spec), nil
}
