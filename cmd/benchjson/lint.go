package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"stitchroute/internal/analysis/driver"
	"stitchroute/internal/analysis/registry"
)

// lintReport is the top-level JSON document for -stage lint: the
// incremental analysis driver's performance contract, measured in-process
// over the whole module with a fresh cache.
type lintReport struct {
	Generated    string `json:"generated"`
	GoVersion    string `json:"goVersion"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	NumCPU       int    `json:"numCPU"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	RunsPerPoint int    `json:"runsPerPoint"`
	Methodology  string `json:"methodology"`

	// Analyzers is the registry's name@version list and Fingerprint the
	// cache key derived from it (the same one CI keys its cache on).
	Analyzers   []string `json:"analyzers"`
	Fingerprint string   `json:"fingerprint"`

	// Packages is the first-party package count the cold run analyzed;
	// Findings the unsuppressed diagnostic count (identical on every
	// path, and expected to be 0 on a clean tree).
	Packages int `json:"packages"`
	Findings int `json:"findings"`

	ColdSeconds float64 `json:"coldSeconds"`
	// WarmSeconds is the best-of-N whole-run replay: no go list, no
	// type-checking, findings served from one tree-hash entry.
	WarmSeconds float64 `json:"warmSeconds"`
	WarmSpeedup float64 `json:"warmSpeedup"`

	// Diff describes the -diff path against DiffRef: only the packages
	// with .go changes since the ref re-analyze (diffAnalyzed ==
	// diffChangedPackages is a hard gate), the rest replay from
	// per-package cache entries.
	DiffRef             string  `json:"diffRef"`
	DiffSeconds         float64 `json:"diffSeconds"`
	DiffChangedPackages int     `json:"diffChangedPackages"`
	DiffAnalyzed        int     `json:"diffAnalyzed"`

	// Gates are the pass/fail contract benchjson enforces before writing
	// the report; a false value here never reaches a checked-in file
	// because the run exits nonzero instead.
	WarmReplayed  bool `json:"warmReplayed"`
	ByteIdentical bool `json:"byteIdentical"`
}

const lintMethodology = "From the module root with a fresh cache directory: one cold stitchvet run " +
	"over ./... (go list + type-check + all analyzers, cache populated), then -runs warm " +
	"runs keeping the fastest (each must replay the whole invocation from the tree-hash " +
	"entry without listing a package), then one -diff run against diffRef (only packages " +
	"with .go changes since the ref may re-analyze; the rest replay from per-package " +
	"entries). The run fails unless the warm path replayed, the diff path analyzed " +
	"exactly the changed packages, cold/warm/diff emitted byte-identical findings, and " +
	"warm was at least 5x faster than cold — the numbers can never describe divergent " +
	"or non-incremental runs."

// runLint measures the incremental analysis driver (-stage lint) and
// enforces its contract: warm replay, diff minimality, byte-identical
// findings, and the warm >= 5x cold floor.
func runLint(runs int, diffRef, out string) int {
	cacheDir, err := os.MkdirTemp("", "stitchvet-bench-")
	if err != nil {
		log.Print(err)
		return 1
	}
	defer os.RemoveAll(cacheDir)

	analyzers := registry.All()
	rep := lintReport{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		RunsPerPoint: runs,
		Methodology:  lintMethodology,
		Fingerprint:  registry.Fingerprint(),
		DiffRef:      diffRef,
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, fmt.Sprintf("%s@%d", a.Name, a.Version))
	}
	patterns := []string{"./..."}

	timeRun := func(opts driver.Options) (float64, int, *driver.Stats, []byte, error) {
		var buf bytes.Buffer
		stats := &driver.Stats{}
		opts.Stats = stats
		start := time.Now()
		n, err := driver.Run(analyzers, patterns, &buf, opts)
		return time.Since(start).Seconds(), n, stats, buf.Bytes(), err
	}

	coldSecs, coldN, coldStats, coldOut, err := timeRun(driver.Options{CacheDir: cacheDir})
	if err != nil {
		log.Printf("cold run: %v", err)
		return 1
	}
	if coldStats.RunReplayed || coldStats.Packages == 0 {
		log.Printf("cold run took a cache path on a fresh cache (stats %+v)", *coldStats)
		return 1
	}
	rep.Packages = coldStats.Packages
	rep.Findings = coldN
	rep.ColdSeconds = coldSecs

	rep.WarmReplayed = true
	rep.ByteIdentical = true
	for i := 0; i < runs; i++ {
		secs, n, stats, warmOut, err := timeRun(driver.Options{CacheDir: cacheDir})
		if err != nil {
			log.Printf("warm run %d: %v", i, err)
			return 1
		}
		if !stats.RunReplayed {
			log.Printf("warm run %d did not replay (stats %+v)", i, *stats)
			rep.WarmReplayed = false
		}
		if n != coldN || !bytes.Equal(warmOut, coldOut) {
			log.Printf("warm run %d findings differ from cold (%d vs %d)", i, n, coldN)
			rep.ByteIdentical = false
		}
		if i == 0 || secs < rep.WarmSeconds {
			rep.WarmSeconds = secs
		}
	}

	diffSecs, diffN, diffStats, diffOut, err := timeRun(driver.Options{CacheDir: cacheDir, Diff: diffRef})
	if err != nil {
		log.Printf("diff run: %v", err)
		return 1
	}
	rep.DiffSeconds = diffSecs
	rep.DiffChangedPackages = diffStats.ChangedPackages
	rep.DiffAnalyzed = diffStats.Analyzed
	if diffN != coldN || !bytes.Equal(diffOut, coldOut) {
		log.Printf("diff run findings differ from cold (%d vs %d)", diffN, coldN)
		rep.ByteIdentical = false
	}

	if rep.WarmSeconds > 0 {
		rep.WarmSpeedup = round3(rep.ColdSeconds / rep.WarmSeconds)
	}
	rep.ColdSeconds = round3(rep.ColdSeconds)
	rep.WarmSeconds = round3(rep.WarmSeconds)
	rep.DiffSeconds = round3(rep.DiffSeconds)

	failed := false
	if !rep.WarmReplayed {
		log.Print("GATE: warm runs must replay the whole invocation from the cache")
		failed = true
	}
	if !rep.ByteIdentical {
		log.Print("GATE: cold, warm, and diff findings must be byte-identical")
		failed = true
	}
	if rep.WarmSpeedup < 5 {
		log.Printf("GATE: warm speedup %.3fx is below the 5x floor (cold %.3fs, warm %.3fs)",
			rep.WarmSpeedup, rep.ColdSeconds, rep.WarmSeconds)
		failed = true
	}
	if rep.DiffAnalyzed != rep.DiffChangedPackages {
		log.Printf("GATE: -diff analyzed %d package(s) but %d changed since %s; diff must analyze exactly the changed set",
			rep.DiffAnalyzed, rep.DiffChangedPackages, diffRef)
		failed = true
	}
	if failed {
		return 1
	}
	return writeReport(&rep, out)
}
