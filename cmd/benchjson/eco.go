package main

import (
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"stitchroute/internal/bench"
	"stitchroute/internal/core"
	"stitchroute/internal/eco"
	"stitchroute/internal/geom"
	"stitchroute/internal/netlist"
	"stitchroute/internal/nlio"
)

// ecoReport is the top-level JSON document for -stage eco.
type ecoReport struct {
	Generated    string       `json:"generated"`
	GoVersion    string       `json:"goVersion"`
	GOOS         string       `json:"goos"`
	GOARCH       string       `json:"goarch"`
	NumCPU       int          `json:"numCPU"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	RunsPerPoint int          `json:"runsPerPoint"`
	Methodology  string       `json:"methodology"`
	Circuits     []ecoCircuit `json:"circuits"`
}

type ecoCircuit struct {
	Circuit       string `json:"circuit"`
	Nets          int    `json:"nets"`
	EditsMeasured int    `json:"editsMeasured"`
	// ColdMsPerEdit is the mean best-of-N wall time of routing each
	// edited circuit from scratch — the baseline both engines divide.
	ColdMsPerEdit float64 `json:"coldMsPerEdit"`
	// Replay engine: byte-for-byte the cold reroute. ReplayHashEqual is
	// the hash-equality gate — every replayed edit's route hash matched
	// the cold rehash, or the report fails.
	ReplayMsPerEdit float64 `json:"replayMsPerEdit"`
	ReplaySpeedup   float64 `json:"replaySpeedup"`
	ReplayHashEqual bool    `json:"replayHashEqual"`
	// Patch engine: graft onto the parent grid. PatchDeterministic is
	// the reproducibility gate — every repetition of an edit produced
	// the identical route hash, or the report fails.
	PatchMsPerEdit     float64        `json:"patchMsPerEdit"`
	PatchSpeedup       float64        `json:"patchSpeedup"`
	PatchDeterministic bool           `json:"patchDeterministic"`
	Edits              []ecoEditPoint `json:"edits"`
}

type ecoEditPoint struct {
	// Net is the edited net's ID (a single-pin move to a free cell).
	Net           int     `json:"net"`
	ColdMs        float64 `json:"coldMs"`
	ReplayMs      float64 `json:"replayMs"`
	ReplaySpeedup float64 `json:"replaySpeedup"`
	PatchMs       float64 `json:"patchMs"`
	PatchSpeedup  float64 `json:"patchSpeedup"`
	// PatchRerouted is how many nets the graft ripped up and re-ran —
	// the working set the ms/edit cost scales with.
	PatchRerouted int `json:"patchRerouted"`
}

const ecoMethodology = "Per circuit: the stitch-aware router commits a parent route once (untimed), " +
	"then each representative single-net edit (one pin moved to the nearest free cell — an ECO is " +
	"a local engineering change) is rerouted three " +
	"ways, best-of-N each: cold (full pipeline on the edited circuit), eco replay, and eco patch. " +
	"The hash-equality gate requires every replay run's route hash to equal the cold rehash of the " +
	"same edited circuit (the equivalence guarantee, replayHashEqual); patch runs must reproduce " +
	"their own hash exactly across repetitions (patchDeterministic) — either failure aborts the " +
	"report. msPerEdit averages the per-edit best times; speedups divide the cold mean by the " +
	"engine mean. Patch cost scales with the dirty working set (patchRerouted), not the circuit."

// ecoEditNets picks the representative nets to edit: fixed indices
// spread across the net list, deduplicated for small circuits.
var ecoEditIndices = []int{3, 10, 50, 100, 200}

// runECO measures the incremental-rerouting stage (-stage eco).
func runECO(circuitsFlag string, runs int, out string) int {
	rep := ecoReport{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		RunsPerPoint: runs,
		Methodology:  ecoMethodology,
	}
	for _, name := range strings.Split(circuitsFlag, ",") {
		name = strings.TrimSpace(name)
		ec, err := measureECO(name, runs)
		if err != nil {
			log.Print(err)
			return 1
		}
		rep.Circuits = append(rep.Circuits, *ec)
		log.Printf("%s done: cold %.1fms, replay %.1fms (%.1fx), patch %.1fms (%.1fx)",
			name, ec.ColdMsPerEdit, ec.ReplayMsPerEdit, ec.ReplaySpeedup,
			ec.PatchMsPerEdit, ec.PatchSpeedup)
	}
	return writeReport(&rep, out)
}

// ecoFreeCell returns the pin-free cell nearest (px, py) in a
// deterministic ring scan — the target the measured pin move lands on.
// An ECO edit is a local engineering change, so the representative edit
// moves a pin a few tracks, not across the chip.
func ecoFreeCell(c *netlist.Circuit, px, py int) (int, int) {
	used := make(map[geom.Point]bool)
	for _, n := range c.Nets {
		for _, p := range n.Pins {
			used[p.Point] = true
		}
	}
	inb := func(x, y int) bool {
		return x >= 0 && x < c.Fabric.XTracks && y >= 0 && y < c.Fabric.YTracks
	}
	for r := 1; r < c.Fabric.XTracks+c.Fabric.YTracks; r++ {
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if max(abs(dx), abs(dy)) != r {
					continue
				}
				x, y := px+dx, py+dy
				if inb(x, y) && !used[geom.Point{X: x, Y: y}] {
					return x, y
				}
			}
		}
	}
	return c.Fabric.XTracks / 2, c.Fabric.YTracks / 2
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// measureECO commits a parent route for the named circuit, then times
// cold / replay / patch rerouting for each representative single-net
// edit, enforcing the hash-equality and determinism gates.
func measureECO(name string, runs int) (*ecoCircuit, error) {
	spec, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	c := bench.Generate(spec)
	cfg := core.StitchAware()
	parent, err := core.Route(c, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: parent route: %w", name, err)
	}

	ec := &ecoCircuit{Circuit: name, Nets: len(c.Nets), ReplayHashEqual: true, PatchDeterministic: true}
	var coldSum, replaySum, patchSum float64
	picked := make(map[int]bool)
	for _, idx := range ecoEditIndices {
		i := idx % len(c.Nets)
		if picked[i] {
			continue
		}
		picked[i] = true
		p0 := c.Nets[i].Pins[0]
		x, y := ecoFreeCell(c, p0.X, p0.Y)
		script := &eco.Script{Edits: []eco.Edit{
			{Op: eco.OpMovePin, ID: c.Nets[i].ID, Pin: 0, X: x, Y: y},
		}}
		pt := ecoEditPoint{Net: c.Nets[i].ID}

		// Cold baseline: full pipeline on the edited circuit.
		var coldHash string
		for r := 0; r < runs; r++ {
			edited, err := script.Apply(c)
			if err != nil {
				return nil, fmt.Errorf("%s net %d: apply: %w", name, pt.Net, err)
			}
			start := time.Now()
			cold, err := core.Route(edited, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s net %d: cold route: %w", name, pt.Net, err)
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			h, err := nlio.RoutesHash(cold.Routes)
			if err != nil {
				return nil, err
			}
			if coldHash == "" {
				coldHash = h
			} else if h != coldHash {
				return nil, fmt.Errorf("%s net %d: cold reroute nondeterministic", name, pt.Net)
			}
			if r == 0 || ms < pt.ColdMs {
				pt.ColdMs = ms
			}
		}

		// Replay engine, gated on byte equality with the cold rehash.
		for r := 0; r < runs; r++ {
			start := time.Now()
			er, err := eco.Reroute(parent, c, script, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s net %d: replay: %w", name, pt.Net, err)
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			h, err := nlio.RoutesHash(er.Result.Routes)
			if err != nil {
				return nil, err
			}
			if h != coldHash {
				return nil, fmt.Errorf("%s net %d run %d: HASH GATE FAILED: replay hash %.12s != cold rehash %.12s",
					name, pt.Net, r, h, coldHash)
			}
			if r == 0 || ms < pt.ReplayMs {
				pt.ReplayMs = ms
			}
		}

		// Patch engine, gated on run-to-run determinism.
		var patchHash string
		for r := 0; r < runs; r++ {
			start := time.Now()
			pr, err := eco.ReroutePatch(parent, c, script, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s net %d: patch: %w", name, pt.Net, err)
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			h, err := nlio.RoutesHash(pr.Result.Routes)
			if err != nil {
				return nil, err
			}
			if patchHash == "" {
				patchHash = h
			} else if h != patchHash {
				return nil, fmt.Errorf("%s net %d run %d: DETERMINISM GATE FAILED: patch hash %.12s != %.12s",
					name, pt.Net, r, h, patchHash)
			}
			if r == 0 || ms < pt.PatchMs {
				pt.PatchMs = ms
			}
			pt.PatchRerouted = pr.Stats.DetailRouted
		}

		pt.ReplaySpeedup = round3(pt.ColdMs / pt.ReplayMs)
		pt.PatchSpeedup = round3(pt.ColdMs / pt.PatchMs)
		coldSum += pt.ColdMs
		replaySum += pt.ReplayMs
		patchSum += pt.PatchMs
		pt.ColdMs = round3(pt.ColdMs)
		pt.ReplayMs = round3(pt.ReplayMs)
		pt.PatchMs = round3(pt.PatchMs)
		ec.Edits = append(ec.Edits, pt)
	}
	n := float64(len(ec.Edits))
	ec.EditsMeasured = len(ec.Edits)
	ec.ColdMsPerEdit = round3(coldSum / n)
	ec.ReplayMsPerEdit = round3(replaySum / n)
	ec.PatchMsPerEdit = round3(patchSum / n)
	ec.ReplaySpeedup = round3(coldSum / replaySum)
	ec.PatchSpeedup = round3(coldSum / patchSum)
	return ec, nil
}
