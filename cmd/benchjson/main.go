// Command benchjson measures one pipeline stage on golden benchmark
// circuits and writes a machine-readable JSON report. -stage selects
// the stage:
//
//   - detail (default): the detailed-routing stage across worker
//     counts. BENCH_detail.json at the repository root is the
//     checked-in copy; docs/PERFORMANCE.md documents the regeneration
//     protocol, including how the seed baselines passed via -baseline
//     are measured.
//   - fracture: the write-prep fracturing stage in both modes (rect
//     and lshape) on the already-routed geometry, reporting shot
//     throughput (shots/s) and the L-shape shot-count reduction.
//     BENCH_fracture.json is the checked-in copy.
//   - eco: incremental (ECO) rerouting of representative single-net
//     edits, comparing both engines (replay, patch) against a cold
//     reroute of the edited circuit — ms/edit, ECO-vs-cold speedup,
//     and the hash-equality gate (the replay route hash must match the
//     cold rehash). BENCH_eco.json is the checked-in copy.
//   - lint: the incremental stitchvet driver over the whole module with
//     a fresh cache — cold analysis, best-of-N warm replay, and a -diff
//     run against -diff-ref. The run fails unless warm replayed without
//     listing a package, warm was at least 5x faster than cold, -diff
//     analyzed exactly the changed packages, and all three paths
//     produced byte-identical findings. BENCH_lint.json is the
//     checked-in copy. Run it from the module root.
//
// Every measured point runs -runs times and keeps the fastest wall
// time (best-of-N absorbs scheduler noise on shared machines). The
// report fails unless every run produced byte-identical output —
// routed geometry for detail, canonical shot lists for fracture — so
// the numbers can never come from divergent results.
//
// Usage:
//
//	benchjson [-stage detail|fracture|eco|lint] [-circuits Primary1,S5378,S9234]
//	          [-workers 1,4] [-runs 5]
//	          [-baseline Primary1=0.18,S5378=0.63,S9234=0.55] [-baseline-note ...]
//	          [-out BENCH_detail.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"stitchroute/internal/bench"
	"stitchroute/internal/core"
	"stitchroute/internal/fracture"
	"stitchroute/internal/netlist"
	"stitchroute/internal/nlio"
)

// report is the top-level JSON document.
type report struct {
	Generated string `json:"generated"`
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU and GOMAXPROCS are the host provenance: parallelSpeedup is
	// only meaningful relative to the cores the run actually had. On a
	// single-CPU host a speculative scheduler cannot go faster than
	// sequential, and the report says so rather than hiding it.
	NumCPU       int             `json:"numCPU"`
	GOMAXPROCS   int             `json:"gomaxprocs"`
	RunsPerPoint int             `json:"runsPerPoint"`
	Methodology  string          `json:"methodology"`
	BaselineNote string          `json:"baselineNote,omitempty"`
	Circuits     []circuitReport `json:"circuits"`
}

type circuitReport struct {
	Circuit    string  `json:"circuit"`
	Nets       int     `json:"nets"`
	RoutesHash string  `json:"routesHash"`
	Points     []point `json:"points"`
	// ParallelSpeedup is detail time at the first worker count over the
	// last (typically Workers=1 over the highest count). It scales with
	// the host's cores (numCPU/gomaxprocs above): on a single-CPU host
	// speculation adds overhead without parallel execution, so the ratio
	// is ≤ 1.0 there; see Methodology.
	ParallelSpeedup float64 `json:"parallelSpeedup"`
	// SeedDetailSeconds is the externally measured seed-binary baseline
	// (see BaselineNote); SpeedupVsSeed divides it by the best point's
	// detail time — on a single-CPU host that is Workers=1, so the seed
	// comparison never mixes in speculation overhead the seed binary
	// never paid. Present only when -baseline names this circuit.
	SeedDetailSeconds float64 `json:"seedDetailSeconds,omitempty"`
	SpeedupVsSeed     float64 `json:"speedupVsSeed,omitempty"`
}

type point struct {
	Workers          int     `json:"workers"`
	DetailSeconds    float64 `json:"detailSeconds"`
	TotalSeconds     float64 `json:"totalSeconds"`
	DetailConnects   int     `json:"detailConnects"`
	DetailExpansions int64   `json:"detailExpansions"`
	FailedNets       int     `json:"failedNets"`
	// ExpansionsPerSecond is detailExpansions over the best detail wall
	// time — the throughput figure the scheduler is optimizing.
	ExpansionsPerSecond float64 `json:"expansionsPerSecond"`
	// Speculative-scheduler telemetry from the best run at this worker
	// count (all zero at Workers=1, which routes sequentially).
	// speculated counts net attempts routed against the frozen snapshot,
	// committed those accepted by the deterministic commit loop,
	// conflicts those rejected because an earlier commit touched their
	// read footprint, replays the re-queued reroutes that followed, and
	// laneNets the nets that needed the sequential lane (negotiation).
	Speculated int `json:"speculated,omitempty"`
	Committed  int `json:"committed,omitempty"`
	Conflicts  int `json:"conflicts,omitempty"`
	Replays    int `json:"replays,omitempty"`
	LaneNets   int `json:"laneNets,omitempty"`
}

// fractureReport is the top-level JSON document for -stage fracture.
type fractureReport struct {
	Generated    string            `json:"generated"`
	GoVersion    string            `json:"goVersion"`
	GOOS         string            `json:"goos"`
	GOARCH       string            `json:"goarch"`
	NumCPU       int               `json:"numCPU"`
	GOMAXPROCS   int               `json:"gomaxprocs"`
	RunsPerPoint int               `json:"runsPerPoint"`
	Methodology  string            `json:"methodology"`
	Circuits     []fractureCircuit `json:"circuits"`
}

type fractureCircuit struct {
	Circuit    string `json:"circuit"`
	Nets       int    `json:"nets"`
	RoutesHash string `json:"routesHash"`
	// ShotsHash is the canonical hash of the L-shape shot list; every
	// timed repetition must reproduce it.
	ShotsHash   string `json:"shotsHash"`
	RectShots   int    `json:"rectShots"`
	LShapeShots int    `json:"lshapeShots"`
	// LShapeReduction is 1 − lshapeShots/rectShots: the fraction of VSB
	// shots the L-shape mode removes.
	LShapeReduction float64         `json:"lshapeReduction"`
	Points          []fracturePoint `json:"points"`
}

type fracturePoint struct {
	Mode            string  `json:"mode"`
	Shots           int     `json:"shots"`
	FractureSeconds float64 `json:"fractureSeconds"`
	ShotsPerSecond  float64 `json:"shotsPerSecond"`
}

const methodology = "Per point: the full stitch-aware router runs -runs times on a freshly " +
	"generated circuit and the fastest detail-stage wall time is kept (best-of-N). " +
	"All runs of a circuit must produce byte-identical routed geometry (routesHash) " +
	"or the report fails — the speculative scheduler routes ready nets concurrently " +
	"against a frozen grid snapshot and a deterministic commit loop accepts or replays " +
	"each attempt in net order, so every worker count reproduces the sequential result " +
	"exactly (the per-point speculated/conflicts/replays/laneNets fields show how much " +
	"rework that cost). parallelSpeedup compares the first and last worker counts on " +
	"this binary and is bounded by the host's cores (numCPU/gomaxprocs): on a " +
	"single-CPU host speculation cannot overlap work, so the ratio is at or below 1.0 " +
	"there, and the wall-clock win over the seed (speedupVsSeed) comes from the " +
	"per-worker search arenas and allocation-free scratch instead."

const fractureMethodology = "Per circuit: the stitch-aware router produces routed geometry once " +
	"(untimed), then each fracturing mode (rect, lshape) runs -runs times on that geometry " +
	"and the fastest wall time is kept (best-of-N). Every repetition must produce the " +
	"byte-identical canonical shot list (shotsHash checked per mode) or the report fails. " +
	"shotsPerSecond divides the mode's emitted shot count by its best wall time; " +
	"lshapeReduction is the fraction of VSB shots the L-shape pairing removes versus " +
	"the rectangle baseline."

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	os.Exit(run())
}

func run() int {
	var (
		stage        = flag.String("stage", "detail", "pipeline stage to measure: detail, fracture, eco, or lint")
		diffRef      = flag.String("diff-ref", "HEAD", "git ref the lint stage's -diff path is measured against")
		circuitsFlag = flag.String("circuits", "Primary1,S5378,S9234", "comma-separated benchmark circuits")
		workersFlag  = flag.String("workers", "1,4", "comma-separated detailed-routing worker counts (detail stage)")
		runs         = flag.Int("runs", 5, "runs per measured point; fastest is kept")
		baselineFlag = flag.String("baseline", "", "comma-separated name=seconds seed detail baselines (detail stage)")
		baselineNote = flag.String("baseline-note", "", "provenance of the -baseline numbers, recorded verbatim")
		out          = flag.String("out", "-", "output file (- = stdout)")
	)
	flag.Parse()
	if *runs < 1 {
		log.Printf("runs must be >= 1, got %d", *runs)
		return 2
	}
	switch *stage {
	case "detail":
	case "fracture":
		return runFracture(*circuitsFlag, *runs, *out)
	case "eco":
		return runECO(*circuitsFlag, *runs, *out)
	case "lint":
		return runLint(*runs, *diffRef, *out)
	default:
		log.Printf("unknown -stage %q (want detail, fracture, eco, or lint)", *stage)
		return 2
	}

	var workerCounts []int
	for _, s := range strings.Split(*workersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 1 {
			log.Printf("bad -workers entry %q", s)
			return 2
		}
		workerCounts = append(workerCounts, w)
	}
	baselines, err := parseBaselines(*baselineFlag)
	if err != nil {
		log.Print(err)
		return 2
	}

	rep := report{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		RunsPerPoint: *runs,
		Methodology:  methodology,
		BaselineNote: *baselineNote,
	}

	for _, name := range strings.Split(*circuitsFlag, ",") {
		name = strings.TrimSpace(name)
		cr, err := measureCircuit(name, workerCounts, *runs)
		if err != nil {
			log.Print(err)
			return 1
		}
		if secs, ok := baselines[name]; ok {
			cr.SeedDetailSeconds = secs
			bestSecs := cr.Points[0].DetailSeconds
			for _, p := range cr.Points[1:] {
				if p.DetailSeconds < bestSecs {
					bestSecs = p.DetailSeconds
				}
			}
			cr.SpeedupVsSeed = round3(secs / bestSecs)
		}
		rep.Circuits = append(rep.Circuits, *cr)
		log.Printf("%s done", name)
	}

	return writeReport(&rep, *out)
}

// writeReport marshals the report and writes it to out ("-" = stdout).
func writeReport(rep any, out string) int {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Print(err)
		return 1
	}
	buf = append(buf, '\n')
	if out == "-" {
		// A report nobody received is a failed run: a broken pipe or a
		// full disk downstream must surface as a nonzero exit, not as a
		// silently truncated JSON document.
		if _, err := os.Stdout.Write(buf); err != nil {
			log.Print(err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("wrote %s", out)
	return 0
}

// runFracture measures the write-prep fracturing stage (-stage fracture).
func runFracture(circuitsFlag string, runs int, out string) int {
	rep := fractureReport{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		RunsPerPoint: runs,
		Methodology:  fractureMethodology,
	}
	for _, name := range strings.Split(circuitsFlag, ",") {
		name = strings.TrimSpace(name)
		fc, err := measureFracture(name, runs)
		if err != nil {
			log.Print(err)
			return 1
		}
		rep.Circuits = append(rep.Circuits, *fc)
		log.Printf("%s done", name)
	}
	return writeReport(&rep, out)
}

// measureFracture routes the named circuit once, then times both
// fracturing modes best-of-N on the routed geometry, verifying every
// repetition reproduces the identical canonical shot list.
func measureFracture(name string, runs int) (*fractureCircuit, error) {
	spec, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	c := bench.Generate(spec)
	res, err := core.Route(c, core.StitchAware())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	fc := &fractureCircuit{Circuit: name, Nets: len(c.Nets)}
	if fc.RoutesHash, err = nlio.RoutesHash(res.Routes); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	for _, mode := range []fracture.Mode{fracture.ModeRect, fracture.ModeLShape} {
		// One untimed warm-up so the first measured repetition does not
		// pay for heap growth.
		warm := fracture.Fracture(res.Routes, c.Fabric.Layers, mode, fracture.Options{})
		hash, err := fracture.ShotsHash(warm.Shots)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, mode, err)
		}
		p := fracturePoint{Mode: mode.String(), Shots: warm.ShotCount}
		for i := 0; i < runs; i++ {
			start := time.Now()
			fr := fracture.Fracture(res.Routes, c.Fabric.Layers, mode, fracture.Options{})
			secs := time.Since(start).Seconds()
			h, err := fracture.ShotsHash(fr.Shots)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, mode, err)
			}
			if h != hash {
				return nil, fmt.Errorf("%s/%s run %d: shots hash %s differs from %s",
					name, mode, i, h, hash)
			}
			if i == 0 || secs < p.FractureSeconds {
				p.FractureSeconds = secs
			}
		}
		if p.FractureSeconds > 0 {
			p.ShotsPerSecond = round3(float64(p.Shots) / p.FractureSeconds)
		}
		p.FractureSeconds = round3(p.FractureSeconds)
		switch mode {
		case fracture.ModeRect:
			fc.RectShots = p.Shots
		case fracture.ModeLShape:
			fc.LShapeShots = p.Shots
			fc.ShotsHash = hash
		}
		fc.Points = append(fc.Points, p)
	}
	if fc.RectShots > 0 {
		fc.LShapeReduction = round3(1 - float64(fc.LShapeShots)/float64(fc.RectShots))
	}
	return fc, nil
}

// measureCircuit runs every worker count on the named circuit and checks
// that all runs routed identical geometry.
func measureCircuit(name string, workerCounts []int, runs int) (*circuitReport, error) {
	spec, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	cr := &circuitReport{Circuit: name}
	// One untimed warm-up route so the first measured point does not pay
	// for heap growth and page faults, then the worker counts interleave
	// across run iterations so no count is systematically colder.
	if _, _, err := routeOnce(spec, workerCounts[0]); err != nil {
		return nil, fmt.Errorf("%s warmup: %w", name, err)
	}
	best := make([]*point, len(workerCounts))
	for i := 0; i < runs; i++ {
		for wi, w := range workerCounts {
			res, c, err := routeOnce(spec, w)
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", name, w, err)
			}
			cr.Nets = len(c.Nets)
			hash, err := nlio.RoutesHash(res.Routes)
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", name, w, err)
			}
			if cr.RoutesHash == "" {
				cr.RoutesHash = hash
			} else if hash != cr.RoutesHash {
				return nil, fmt.Errorf("%s workers=%d run %d: routes hash %s differs from %s",
					name, w, i, hash, cr.RoutesHash)
			}
			p := point{
				Workers:          w,
				DetailSeconds:    res.Times.Detail.Seconds(),
				TotalSeconds:     res.Times.Total().Seconds(),
				DetailConnects:   res.DetailConnects,
				DetailExpansions: res.DetailExpansions,
				FailedNets:       res.FailedNets,
				Speculated:       res.DetailSched.Speculated,
				Committed:        res.DetailSched.Committed,
				Conflicts:        res.DetailSched.Conflicts,
				Replays:          res.DetailSched.Replays,
				LaneNets:         res.DetailSched.LaneNets,
			}
			if best[wi] == nil || p.DetailSeconds < best[wi].DetailSeconds {
				cp := p
				best[wi] = &cp
			}
		}
	}
	for _, b := range best {
		if b.DetailSeconds > 0 {
			b.ExpansionsPerSecond = round3(float64(b.DetailExpansions) / b.DetailSeconds)
		}
		b.DetailSeconds = round3(b.DetailSeconds)
		b.TotalSeconds = round3(b.TotalSeconds)
		cr.Points = append(cr.Points, *b)
	}
	if n := len(cr.Points); n > 1 {
		cr.ParallelSpeedup = round3(cr.Points[0].DetailSeconds / cr.Points[n-1].DetailSeconds)
	}
	return cr, nil
}

// routeOnce generates a fresh circuit from spec and routes it with the
// given detailed-routing worker count.
func routeOnce(spec bench.Spec, workers int) (*core.Result, *netlist.Circuit, error) {
	c := bench.Generate(spec)
	cfg := core.StitchAware()
	cfg.Detail.Workers = workers
	res, err := core.Route(c, cfg)
	return res, c, err
}

// parseBaselines parses "name=seconds,name=seconds".
func parseBaselines(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -baseline entry %q (want name=seconds)", part)
		}
		secs, err := strconv.ParseFloat(val, 64)
		if err != nil || secs <= 0 {
			return nil, fmt.Errorf("bad -baseline seconds in %q", part)
		}
		out[name] = secs
	}
	return out, nil
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
