// Rasterdefect reproduces the paper's Figs. 3–4: MEBL data preparation
// renders a layout to gray-level pixels and dithers it with error
// diffusion; on a short polygon (a stitch-cut wire stub) the error pixels
// are a large fraction of the feature, so the printed pattern distorts —
// the physical reason the router must avoid short polygons.
package main

import (
	"fmt"
	"log"
	"os"

	"stitchroute/internal/experiments"
	"stitchroute/internal/raster"
)

func main() {
	// Fig. 3: dithering an off-grid wire produces irregular edge pixels.
	gray := raster.Render(24, 8, []raster.RectF{{X0: 1.4, Y0: 2.45, X1: 22.6, Y1: 5.55}})
	dithered := raster.Dither(gray)
	fmt.Println("Fig. 3 — gray-level rendering of a wire (rows are pixels):")
	fmt.Print(gray.String())
	fmt.Println("after dithering with error diffusion:")
	fmt.Print(dithered.String())
	fmt.Printf("defect score: %.4f of feature pixels flipped\n\n", raster.DefectScore(gray, dithered))

	// Fig. 4: a short stitch-cut stub vs a long wire under the same
	// overlay misalignment.
	fmt.Println("Fig. 4 — dithering defect vs cut-stub length (misalignment 0.45 px):")
	rows, err := experiments.Fig4()
	if err != nil {
		log.Fatal(err)
	}
	experiments.FprintFig4(os.Stdout, rows)
	fmt.Println("\nShort stubs distort hardest: that is the short-polygon constraint.")
}
