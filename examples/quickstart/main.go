// Quickstart: route one MCNC-style benchmark with the stitch-aware
// framework and print the Table III-style summary.
package main

import (
	"fmt"
	"log"

	"stitchroute"
)

func main() {
	spec, err := stitchroute.BenchmarkByName("S9234")
	if err != nil {
		log.Fatal(err)
	}
	circuit := stitchroute.Generate(spec)
	fmt.Printf("%s: %d nets, %d pins on a %dx%d-track fabric with %d layers\n",
		circuit.Name, len(circuit.Nets), circuit.NumPins(),
		circuit.Fabric.XTracks, circuit.Fabric.YTracks, circuit.Fabric.Layers)

	result, err := stitchroute.Route(circuit, stitchroute.StitchAware())
	if err != nil {
		log.Fatal(err)
	}
	rep := result.Report
	fmt.Printf("routability   %.2f%%\n", rep.Routability())
	fmt.Printf("short polygons %d\n", rep.ShortPolygons)
	fmt.Printf("via violations %d (all at fixed pins: off-pin = %d)\n",
		rep.ViaViolations, rep.ViaViolationsOffPin)
	fmt.Printf("vertical-routing violations %d\n", rep.VertRouteViolations)
	fmt.Printf("wirelength    %d tracks\n", rep.Wirelength)
	fmt.Printf("CPU           %.2fs (global %.2fs, layer %.2fs, track %.2fs, detail %.2fs)\n",
		result.Times.Total().Seconds(), result.Times.Global.Seconds(),
		result.Times.Layer.Seconds(), result.Times.Track.Seconds(),
		result.Times.Detail.Seconds())
}
