// Customcircuit shows the netlist-building API: construct a small circuit
// by hand, route it stitch-aware, and inspect the geometry — the path a
// downstream user takes to route their own design instead of the bundled
// benchmarks.
package main

import (
	"fmt"
	"log"
	"os"

	"stitchroute"
)

func main() {
	// A 90x90-track fabric (6x6 tiles) with 3 layers; stitching lines at
	// x = 0, 15, 30, 45, 60, 75.
	fabric := stitchroute.NewFabric(90, 90, 3)

	pin := func(x, y int) stitchroute.Pin {
		return stitchroute.Pin{Point: stitchroute.Point{X: x, Y: y}, Layer: 1}
	}
	circuit := &stitchroute.Circuit{
		Name:   "custom",
		Fabric: fabric,
		Nets: []*stitchroute.Net{
			{ID: 0, Name: "clk", Pins: []stitchroute.Pin{pin(3, 5), pin(72, 5), pin(40, 80)}},
			{ID: 1, Name: "d0", Pins: []stitchroute.Pin{pin(10, 20), pin(50, 22)}},
			{ID: 2, Name: "d1", Pins: []stitchroute.Pin{pin(14, 40), pin(16, 70)}}, // crosses stitch at 15
			{ID: 3, Name: "en", Pins: []stitchroute.Pin{pin(30, 33), pin(33, 60)}}, // pin on stitch col
		},
	}
	if err := circuit.Validate(); err != nil {
		log.Fatal(err)
	}

	res, err := stitchroute.Route(circuit, stitchroute.StitchAware())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed %d/%d nets, %d short polygons, %d via violations (off-pin %d)\n",
		res.Report.RoutedNets, res.Report.TotalNets, res.Report.ShortPolygons,
		res.Report.ViaViolations, res.Report.ViaViolationsOffPin)

	for _, rt := range res.Routes {
		fmt.Printf("net %d (%s): %d wires, %d vias\n",
			rt.NetID, circuit.Nets[rt.NetID].Name, len(rt.Wires), len(rt.Vias))
		for _, w := range rt.Wires {
			fmt.Printf("   %v\n", w)
		}
	}

	f, err := os.Create("custom.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := stitchroute.WriteSVG(f, fabric, res.Routes, stitchroute.SVGOptions{
		Scale: 8, ShowSUR: true, Title: "custom circuit, stitch-aware",
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote custom.svg")
}
