// Fullchip routes an industrial-style Faraday benchmark with both the
// baseline and the stitch-aware router, prints the Table III comparison
// row, and writes the routed layout as SVG (Fig. 15 style).
package main

import (
	"fmt"
	"log"
	"os"

	"stitchroute"
)

func main() {
	spec, err := stitchroute.BenchmarkByName("DMA")
	if err != nil {
		log.Fatal(err)
	}

	type arm struct {
		name string
		cfg  stitchroute.Config
	}
	arms := []arm{
		{"baseline", stitchroute.Baseline()},
		{"stitch-aware", stitchroute.StitchAware()},
	}
	var last *stitchroute.Result
	var lastCircuit *stitchroute.Circuit
	for _, a := range arms {
		circuit := stitchroute.Generate(spec)
		res, err := stitchroute.Route(circuit, a.cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report
		fmt.Printf("%-13s Rout. %6.2f%%  #VV %5d  #SP %5d  WL %8d  CPU %6.2fs\n",
			a.name, rep.Routability(), rep.ViaViolations, rep.ShortPolygons,
			rep.Wirelength, res.Times.Total().Seconds())
		last, lastCircuit = res, circuit
	}

	f, err := os.Create("dma_routed.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := stitchroute.WriteSVG(f, lastCircuit.Fabric, last.Routes, stitchroute.SVGOptions{
		Scale: 1.2,
		Title: "DMA, stitch-aware routing",
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote dma_routed.svg")
}
