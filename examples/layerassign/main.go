// Layerassign demonstrates the paper's layer-assignment contribution
// (§III-B, Tables V–VI): on random panel instances, the iterative
// maximum-weight-k-colorable-subset algorithm beats the maximum-spanning-
// tree heuristic of [4], and the gap widens as more routing layers are
// available.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"stitchroute/internal/experiments"
	"stitchroute/internal/layer"
)

func main() {
	set := experiments.DefaultInstanceSet()

	fmt.Println("Table V — instance characteristics (50 random panels):")
	experiments.FprintTable5(os.Stdout, set.Table5())
	fmt.Println()

	fmt.Println("Table VI — average layer-assignment cost (lower is better):")
	experiments.FprintTable6(os.Stdout, set.Table6())
	fmt.Println()

	// A single small instance, end to end, for inspection.
	rng := rand.New(rand.NewSource(7))
	in := layer.RandomInstance(rng, 8, 12)
	fmt.Printf("one instance: %d segments, %d conflict edges\n", in.N(), len(in.Edges))
	for _, k := range []int{2, 3} {
		mst := in.Cost(layer.Assign(in, k, layer.MaxSpanningTree))
		ours := in.Cost(layer.Assign(in, k, layer.KColorableSubset))
		fmt.Printf("  k=%d: max-spanning-tree cost %d, ours %d\n", k, mst, ours)
	}
}
