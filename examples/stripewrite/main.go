// Stripewrite simulates the MEBL writing process on real routed geometry:
// it routes a small custom circuit, writes the die as stripes with
// per-beam overlay error (Fig. 1), and prints the ideal vs
// written-and-dithered bitmaps with the defect score — showing why the
// router keeps critical patterns away from stitching lines.
package main

import (
	"fmt"
	"log"

	"stitchroute"
	"stitchroute/internal/raster"
)

func main() {
	fabric := stitchroute.NewFabric(60, 45, 3)
	pin := func(x, y int) stitchroute.Pin {
		return stitchroute.Pin{Point: stitchroute.Point{X: x, Y: y}, Layer: 1}
	}
	circuit := &stitchroute.Circuit{
		Name:   "stripe-demo",
		Fabric: fabric,
		Nets: []*stitchroute.Net{
			{ID: 0, Name: "a", Pins: []stitchroute.Pin{pin(8, 10), pin(25, 10)}},  // crosses x=15
			{ID: 1, Name: "b", Pins: []stitchroute.Pin{pin(5, 20), pin(28, 30)}},  // crosses with a bend
			{ID: 2, Name: "c", Pins: []stitchroute.Pin{pin(18, 38), pin(27, 38)}}, // inside stripe 2
		},
	}
	res, err := stitchroute.Route(circuit, stitchroute.StitchAware())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed %d/%d nets, %d short polygons\n\n",
		res.Report.RoutedNets, res.Report.TotalNets, res.Report.ShortPolygons)

	var geo []stitchroute.Segment
	for i := range res.Routes {
		geo = append(geo, res.Routes[i].Wires...)
	}
	writer := raster.NewStripeWriter(fabric.StitchCols(), 1, 0.45, 42)
	wPix, hPix := fabric.XTracks+2, fabric.YTracks+2

	ideal := writer.Ideal(geo, wPix, hPix)
	written := raster.Dither(writer.Write(geo, wPix, hPix))
	fmt.Println("ideal pattern (all layers projected):")
	fmt.Print(ideal.String())
	fmt.Println("\nwritten by misaligned beams, after dithering:")
	fmt.Print(written.String())
	fmt.Printf("\nwindow defect score: %.4f of feature pixels flipped\n",
		raster.DefectScore(ideal, written))
}
