package stitchroute

import (
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	fabric := NewFabric(90, 90, 3)
	pin := func(x, y int) Pin { return Pin{Point: Point{X: x, Y: y}, Layer: 1} }
	c := &Circuit{
		Name:   "facade",
		Fabric: fabric,
		Nets: []*Net{
			{ID: 0, Name: "a", Pins: []Pin{pin(2, 2), pin(70, 60)}},
			{ID: 1, Name: "b", Pins: []Pin{pin(14, 40), pin(16, 70)}},
		},
	}
	res, err := Route(c, StitchAware())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.RoutedNets != 2 {
		t.Fatalf("routed %d/2", res.Report.RoutedNets)
	}
	// Re-check through the facade DRC.
	rep := Check(c, res.Routes)
	if rep.ShortPolygons != res.Report.ShortPolygons {
		t.Error("facade Check disagrees with Route's report")
	}
	var svg strings.Builder
	if err := WriteSVG(&svg, fabric, res.Routes, SVGOptions{ShowSUR: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "</svg>") {
		t.Error("bad SVG")
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if len(Benchmarks()) != 14 {
		t.Errorf("%d benchmarks, want 14", len(Benchmarks()))
	}
	if _, err := BenchmarkByName("S9234"); err != nil {
		t.Error(err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	spec, _ := BenchmarkByName("Primary1")
	c := Generate(spec)
	if c.NumPins() != spec.Pins {
		t.Error("generate pin count mismatch")
	}
}

func TestFacadeCircuitIO(t *testing.T) {
	spec, _ := BenchmarkByName("Primary1")
	c := Generate(spec)
	var sb strings.Builder
	if err := WriteCircuit(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadCircuit(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Nets) != len(c.Nets) {
		t.Error("IO round trip changed net count")
	}
}

func TestFacadePlacement(t *testing.T) {
	spec, _ := BenchmarkByName("S5378")
	c := Generate(spec)
	refined, st := RefinePlacement(c)
	if st.OnStitch > 0 && refined.PinViaViolations() >= c.PinViaViolations() {
		t.Error("placement refinement did not help")
	}
	if c.PinViaViolations() != c.PinViaViolations() {
		t.Error("input circuit modified")
	}
}

func TestBaselineConfigDiffers(t *testing.T) {
	a, b := StitchAware(), Baseline()
	if a.TrackAlgo == b.TrackAlgo {
		t.Error("configs identical")
	}
	if !a.Detail.StitchAware || b.Detail.StitchAware {
		t.Error("detail stitch-aware flags wrong")
	}
}
