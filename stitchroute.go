// Package stitchroute is a stitch-aware routing framework for multiple
// e-beam lithography (MEBL), reproducing "Stitch-Aware Routing for Multiple
// E-Beam Lithography" (Liu, Fang, Chang — DAC 2013 / TCAD 2015).
//
// In MEBL a layout is written by thousands of parallel beams; the stripe
// boundaries between beams are stitching lines, and overlay error between
// beams distorts any critical pattern they cut. This package routes
// netlists so that no via sits on a stitching line, no wire runs along one
// vertically, and almost no short polygons (stitch-cut wire stubs with
// landing vias) remain — via a two-pass bottom-up multilevel flow with
// stitch-aware global routing, layer assignment, track assignment, and
// detailed routing.
//
// Quick start:
//
//	spec, _ := stitchroute.BenchmarkByName("S9234")
//	circuit := stitchroute.Generate(spec)
//	result, err := stitchroute.Route(circuit, stitchroute.StitchAware())
//	fmt.Println(result.Report.ShortPolygons)
//
// The implementation lives in internal/ packages (core, global, layer,
// track, detail, drc, raster, viz, ...); this package is the stable facade
// over them.
package stitchroute

import (
	"context"
	"io"

	"stitchroute/internal/bench"
	"stitchroute/internal/core"
	"stitchroute/internal/drc"
	"stitchroute/internal/eco"
	"stitchroute/internal/fracture"
	"stitchroute/internal/gds"
	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/netlist"
	"stitchroute/internal/nlio"
	"stitchroute/internal/place"
	"stitchroute/internal/plan"
	"stitchroute/internal/stencil"
	"stitchroute/internal/viz"
)

// Core model types.
type (
	// Circuit is a routing problem: a fabric plus a netlist.
	Circuit = netlist.Circuit
	// Net is a set of pins to connect.
	Net = netlist.Net
	// Pin is a fixed terminal on a layer.
	Pin = netlist.Pin
	// Fabric is the gridded multi-layer routing plane with stitching lines.
	Fabric = grid.Fabric
	// Point is an integer track location.
	Point = geom.Point
	// Segment is an axis-parallel wire on a routing layer.
	Segment = geom.Segment
	// Config selects the algorithm for every routing stage.
	Config = core.Config
	// Result is the complete routing outcome, including the DRC report
	// and per-stage timings.
	Result = core.Result
	// Report is the stitch-constraint violation summary.
	Report = drc.Report
	// NetRoute is one net's final geometry.
	NetRoute = plan.NetRoute
	// Spec describes one benchmark circuit of the paper's Tables I–II.
	Spec = bench.Spec
	// SVGOptions controls layout rendering.
	SVGOptions = viz.Options
)

// NewFabric returns a routing fabric with the paper's stitch parameters:
// stitching lines every 15 tracks, one-track stitch-unfriendly regions,
// and two-track escape regions. Layer 1 is horizontal-preferred.
func NewFabric(xTracks, yTracks, layers int) *Fabric {
	return grid.New(xTracks, yTracks, layers)
}

// StitchAware returns the full stitch-aware framework configuration
// (α=1, β=10, γ=5, graph-based track assignment).
func StitchAware() Config { return core.StitchAware() }

// Baseline returns the conventional router the paper compares against.
func Baseline() Config { return core.Baseline() }

// Route runs the two-pass bottom-up multilevel routing flow.
//
// cfg.Detail.Workers sets the detailed-routing worker count (0 =
// GOMAXPROCS, 1 = sequential); the routed geometry is byte-identical for
// every value — see docs/PERFORMANCE.md for how and for what parallelism
// buys.
func Route(c *Circuit, cfg Config) (*Result, error) { return core.Route(c, cfg) }

// RouteContext is Route with cancellation and deadlines: the run aborts
// at the next stage boundary or net-loop iteration after ctx is done,
// returning an error that wraps ErrCancelled and the context's error.
func RouteContext(ctx context.Context, c *Circuit, cfg Config) (*Result, error) {
	return core.RouteContext(ctx, c, cfg)
}

// ErrCancelled is wrapped into RouteContext's error when a run is
// abandoned due to context cancellation or deadline expiry, so callers
// can distinguish it from a routing failure with errors.Is.
var ErrCancelled = core.ErrCancelled

// Check re-runs the stitch DRC on routed geometry.
func Check(c *Circuit, routes []NetRoute) Report { return drc.Check(c, routes) }

// Benchmarks returns every benchmark spec (MCNC then Faraday).
func Benchmarks() []Spec { return bench.All() }

// BenchmarkByName looks up one benchmark spec.
func BenchmarkByName(name string) (Spec, error) { return bench.ByName(name) }

// Generate builds the deterministic synthetic circuit for a spec.
func Generate(s Spec) *Circuit { return bench.Generate(s) }

// WriteSVG renders routed geometry as SVG.
func WriteSVG(w io.Writer, f *Fabric, routes []NetRoute, opt SVGOptions) error {
	return viz.WriteSVG(w, f, routes, opt)
}

// PlaceStats reports what RefinePlacement did.
type PlaceStats = place.Stats

// RefinePlacement nudges stitch-column pins off the stitching lines — the
// stitch-aware placement stage the paper proposes as future work (§V). It
// returns a new circuit; the input is unmodified.
func RefinePlacement(c *Circuit) (*Circuit, PlaceStats) { return place.Refine(c) }

// WriteGDS exports routed geometry as a GDSII stream file viewable in
// standard layout tools (KLayout etc.).
func WriteGDS(w io.Writer, routes []NetRoute, libName, cellName string) error {
	return gds.Write(w, routes, gds.Options{LibName: libName, CellName: cellName})
}

// Write-prep types: the downstream MEBL mask-data-preparation pipeline
// that turns routed geometry into e-beam shots and a CP stencil plan.
type (
	// FractureMode selects rectangle-only or L-shape fracturing.
	FractureMode = fracture.Mode
	// FractureOptions tunes fracturing.
	FractureOptions = fracture.Options
	// FractureResult is the fractured shot list with its statistics.
	FractureResult = fracture.Result
	// Shot is one e-beam exposure (a rectangle or an L-shape).
	Shot = fracture.Shot
	// StencilOptions tunes CP stencil planning.
	StencilOptions = stencil.Options
	// StencilPlan is the packed character set and its write-time model.
	StencilPlan = stencil.Plan
)

// Fracturing modes.
const (
	// FractureRect is the rectangle-only sweep baseline.
	FractureRect = fracture.ModeRect
	// FractureLShape merges rectangle pairs into L-shape shots.
	FractureLShape = fracture.ModeLShape
)

// ParseFractureMode maps the CLI/API spelling ("rect" or "lshape").
func ParseFractureMode(s string) (FractureMode, error) { return fracture.ParseMode(s) }

// Fracture converts routed geometry into e-beam shots: the per-layer
// union of wires and via pads is decomposed into rectangle shots (and,
// in FractureLShape mode, L-shape shots via maximum matching). The shot
// list is deterministic and area-exact — it rasterizes identically to
// the unfractured geometry.
func Fracture(routes []NetRoute, layers int, mode FractureMode, opts FractureOptions) *FractureResult {
	return fracture.Fracture(routes, layers, mode, opts)
}

// FractureContext is Fracture with cancellation.
func FractureContext(ctx context.Context, routes []NetRoute, layers int, mode FractureMode, opts FractureOptions) (*FractureResult, error) {
	return fracture.FractureContext(ctx, routes, layers, mode, opts)
}

// PlanStencil plans a CP stencil for a fractured shot list: repeated
// shot patterns become characters, selected and packed overlapping-aware
// to minimize write time under the plate capacity.
func PlanStencil(shots []Shot, opts StencilOptions) *StencilPlan {
	return stencil.Build(shots, opts)
}

// PlanStencilContext is PlanStencil with cancellation.
func PlanStencilContext(ctx context.Context, shots []Shot, opts StencilOptions) (*StencilPlan, error) {
	return stencil.BuildContext(ctx, shots, opts)
}

// ECO types: incremental rerouting of an already-routed circuit under a
// small edit script — see docs/ECO.md.
type (
	// ECOEdit is one edit operation (add/delete/move/movepin).
	ECOEdit = eco.Edit
	// ECOScript is an ordered edit list with an optional patch margin.
	ECOScript = eco.Script
	// ECOPin is a pin location inside an edit.
	ECOPin = eco.Pin
	// ECOResult is an incremental reroute's outcome: a full Result for
	// the edited circuit plus replay statistics.
	ECOResult = eco.Result
	// ECOStats summarizes how much of the parent result was reused.
	ECOStats = eco.Stats
)

// ECO edit ops.
const (
	ECOAdd     = eco.OpAdd
	ECODelete  = eco.OpDelete
	ECOMove    = eco.OpMove
	ECOMovePin = eco.OpMovePin
)

// ParseECOScript decodes a JSON edit script ({"edits":[...]}).
func ParseECOScript(r io.Reader) (*ECOScript, error) { return eco.ParseScript(r) }

// RouteECO incrementally reroutes the parent result's circuit under the
// edit script by replaying the committed searches everywhere the edit
// provably cannot have changed them. The result is byte-for-byte the
// cold reroute of the edited circuit (same routes, plans, DRC report) —
// see docs/ECO.md for the equivalence argument. When the parent carries
// no usable recording the call falls back to a cold route
// (ECOResult.Stats.Fallback).
func RouteECO(parent *Result, c *Circuit, s *ECOScript, cfg Config) (*ECOResult, error) {
	return eco.Reroute(parent, c, s, cfg)
}

// RouteECOContext is RouteECO with cancellation (stage boundaries and
// per-net loop checks, like RouteContext).
func RouteECOContext(ctx context.Context, parent *Result, c *Circuit, s *ECOScript, cfg Config) (*ECOResult, error) {
	return eco.RerouteContext(ctx, parent, c, s, cfg)
}

// RouteECOPatch incrementally reroutes by grafting: the parent's
// committed grid is kept verbatim and only the edited nets plus the
// nets whose routes intersect the edit's dirty region (inflated by the
// script's margin) are ripped up and rerouted. The cost scales with the
// edit, not the circuit — typically well over 10x faster than a cold
// reroute — and the result is deterministic and re-checked by the full
// DRC battery, but NOT byte-identical to a cold reroute; use RouteECO
// for the provably-equivalent replay.
func RouteECOPatch(parent *Result, c *Circuit, s *ECOScript, cfg Config) (*ECOResult, error) {
	return eco.ReroutePatch(parent, c, s, cfg)
}

// RouteECOPatchContext is RouteECOPatch with cancellation.
func RouteECOPatchContext(ctx context.Context, parent *Result, c *Circuit, s *ECOScript, cfg Config) (*ECOResult, error) {
	return eco.ReroutePatchContext(ctx, parent, c, s, cfg)
}

// ReadCircuit parses a circuit in the nlio text format.
func ReadCircuit(r io.Reader) (*Circuit, error) { return nlio.Read(r) }

// WriteCircuit serializes a circuit in the nlio text format.
func WriteCircuit(w io.Writer, c *Circuit) error { return nlio.Write(w, c) }
