module stitchroute

go 1.22
