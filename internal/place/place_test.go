package place

import (
	"testing"

	"stitchroute/internal/bench"
	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/netlist"
)

func circuit(pins ...geom.Point) *netlist.Circuit {
	f := grid.New(60, 60, 3)
	n := &netlist.Net{ID: 0, Name: "n"}
	for _, p := range pins {
		n.Pins = append(n.Pins, netlist.Pin{Point: p, Layer: 1})
	}
	return &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{n}}
}

func TestMovesStitchPin(t *testing.T) {
	c := circuit(geom.Point{X: 15, Y: 5}, geom.Point{X: 40, Y: 40})
	out, st := Refine(c)
	if st.OnStitch != 1 || st.Moved != 1 || st.Stuck != 0 {
		t.Fatalf("stats = %+v", st)
	}
	p := out.Nets[0].Pins[0]
	if out.Fabric.IsStitchCol(p.X) {
		t.Errorf("pin still on stitch column: %v", p.Point)
	}
	// Prefers non-SUR: x=15±1 are SUR (eps 1), so the best move is ±2.
	if out.Fabric.InSUR(p.X) {
		t.Errorf("pin moved into SUR at %v when non-SUR was available", p.Point)
	}
	if geom.Abs(p.X-15) > MaxShift {
		t.Errorf("pin displaced too far: %v", p.Point)
	}
	if st.TotalDisplacement != geom.Abs(p.X-15) {
		t.Errorf("displacement accounting wrong: %+v", st)
	}
}

func TestInputNotModified(t *testing.T) {
	c := circuit(geom.Point{X: 15, Y: 5}, geom.Point{X: 40, Y: 40})
	Refine(c)
	if c.Nets[0].Pins[0].X != 15 {
		t.Error("Refine modified its input")
	}
}

func TestOccupiedNeighboursBlockMove(t *testing.T) {
	// Surround the stitch pin's alternatives on both sides.
	var pins []geom.Point
	pins = append(pins, geom.Point{X: 15, Y: 5})
	for d := 1; d <= MaxShift; d++ {
		pins = append(pins, geom.Point{X: 15 + d, Y: 5}, geom.Point{X: 15 - d, Y: 5})
	}
	c := circuit(pins...)
	out, st := Refine(c)
	if st.Stuck != 1 || st.Moved != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if out.Nets[0].Pins[0].X != 15 {
		t.Error("stuck pin moved anyway")
	}
}

func TestNoOpOnCleanCircuit(t *testing.T) {
	c := circuit(geom.Point{X: 3, Y: 5}, geom.Point{X: 40, Y: 40})
	out, st := Refine(c)
	if st != (Stats{}) {
		t.Errorf("stats = %+v, want zero", st)
	}
	for i, p := range out.Nets[0].Pins {
		if p != c.Nets[0].Pins[i] {
			t.Error("clean pin moved")
		}
	}
}

func TestBenchmarkCircuitViaViolationsEliminated(t *testing.T) {
	spec, err := bench.ByName("S9234")
	if err != nil {
		t.Fatal(err)
	}
	c := bench.Generate(spec)
	before := c.PinViaViolations()
	if before == 0 {
		t.Skip("generator placed no pins on stitch columns")
	}
	out, st := Refine(c)
	after := out.PinViaViolations()
	if after >= before {
		t.Fatalf("pin via violations not reduced: %d -> %d", before, after)
	}
	if st.Moved != before-after {
		t.Errorf("moved %d but violations dropped by %d", st.Moved, before-after)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("refined circuit invalid: %v", err)
	}
	// Pin uniqueness must be preserved.
	seen := map[geom.Point]map[int]bool{}
	for _, n := range out.Nets {
		for _, p := range n.Pins {
			if seen[p.Point] == nil {
				seen[p.Point] = map[int]bool{}
			}
			seen[p.Point][n.ID] = true
			if len(seen[p.Point]) > 1 {
				t.Fatalf("two nets share pin cell %v", p.Point)
			}
		}
	}
}
