// Package place implements stitch-aware placement refinement — the future
// work the paper proposes in its conclusion (§V): via violations remain
// only because fixed pins sit on stitching lines, so a placement stage
// that keeps pins off stitching lines removes them at the source.
//
// The refiner performs a legal local perturbation: every pin lying on a
// stitching-line column is nudged to the nearest free track column within
// a window, preferring moves that do not enter a stitch-unfriendly region
// and that minimize displacement. Pin-to-pin overlap stays forbidden. The
// result is a new circuit; the input is never modified.
package place

import (
	"sort"

	"stitchroute/internal/geom"
	"stitchroute/internal/netlist"
)

// Stats reports what the refiner did.
type Stats struct {
	OnStitch int // pins found on stitching-line columns
	Moved    int // pins successfully nudged off
	Stuck    int // pins with no legal nearby cell
	// TotalDisplacement is the summed |Δx| over moved pins, in tracks.
	TotalDisplacement int
}

// MaxShift is how far (in tracks) a pin may be nudged from its original
// column.
const MaxShift = 3

// Refine returns a copy of the circuit with stitch-column pins nudged off
// the stitching lines, plus the refinement stats.
func Refine(c *netlist.Circuit) (*netlist.Circuit, Stats) {
	f := c.Fabric
	out := &netlist.Circuit{Name: c.Name, Fabric: f}
	used := make(map[geom.Point]bool, c.NumPins())
	for _, n := range c.Nets {
		for _, p := range n.Pins {
			used[p.Point] = true
		}
	}

	var st Stats
	for _, n := range c.Nets {
		nn := &netlist.Net{ID: n.ID, Name: n.Name, Pins: make([]netlist.Pin, len(n.Pins))}
		copy(nn.Pins, n.Pins)
		out.Nets = append(out.Nets, nn)
		for i := range nn.Pins {
			p := &nn.Pins[i]
			if !f.IsStitchCol(p.X) {
				continue
			}
			st.OnStitch++
			if nx, ok := bestShift(c, used, p.Point); ok {
				used[p.Point] = false
				st.TotalDisplacement += geom.Abs(nx - p.X)
				p.X = nx
				used[p.Point] = true
				st.Moved++
			} else {
				st.Stuck++
			}
		}
	}
	return out, st
}

// bestShift finds the best replacement column for a stitch-column pin:
// smallest displacement first, non-SUR columns preferred over SUR ones,
// and the target cell must be free and in bounds.
func bestShift(c *netlist.Circuit, used map[geom.Point]bool, p geom.Point) (int, bool) {
	f := c.Fabric
	type cand struct {
		x     int
		inSUR bool
		dist  int
	}
	var cands []cand
	for d := 1; d <= MaxShift; d++ {
		for _, nx := range [2]int{p.X + d, p.X - d} {
			if nx < 0 || nx >= f.XTracks || f.IsStitchCol(nx) {
				continue
			}
			if used[geom.Point{X: nx, Y: p.Y}] {
				continue
			}
			cands = append(cands, cand{nx, f.InSUR(nx), d})
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].inSUR != cands[j].inSUR {
			return !cands[i].inSUR
		}
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].x < cands[j].x
	})
	return cands[0].x, true
}
