// Package grid models the MEBL routing fabric: a gridded multi-layer
// routing plane with alternating preferred directions, global tiles, and the
// vertical stitching lines induced by parallel e-beam writing.
//
// All coordinates are integer track indices. Vertical tracks sit at x = 0,
// 1, 2, ...; horizontal tracks at y = 0, 1, 2, .... Stitching lines are
// vertical and occur every StitchPitch vertical tracks, at x ≡ 0 (mod
// StitchPitch), which is also the boundary between two global tile columns:
// tile column k covers x in [k·StitchPitch, (k+1)·StitchPitch).
package grid

import (
	"fmt"

	"stitchroute/internal/geom"
)

// Default fabric parameters from the paper's experimental setup (§IV):
// stitching lines every 15 routing pitches, and the tracks adjacent to a
// stitching line fall in its stitch-unfriendly region.
const (
	DefaultStitchPitch = 15
	DefaultSUREps      = 1
	DefaultEscapeWidth = 2 // tracks per side; "four tracks nearest a stitching line" (§III-D1)
)

// Fabric describes one routing fabric instance.
type Fabric struct {
	// XTracks and YTracks are the number of vertical tracks (distinct x
	// positions) and horizontal tracks (distinct y positions).
	XTracks, YTracks int
	// Layers is the number of routing layers, numbered 1..Layers.
	// Layer 1 is horizontal-preferred; directions alternate upward.
	Layers int
	// StitchPitch is the spacing of vertical stitching lines in tracks.
	StitchPitch int
	// SUREps is the stitch-unfriendly-region half width ε in tracks: a
	// vertical track x is stitch-unfriendly if 0 < |x - s| <= SUREps for
	// some stitching line s.
	SUREps int
	// EscapeWidth is the escape-region half width in tracks: the
	// 2·EscapeWidth tracks nearest a stitching line (excluding the
	// stitching track itself) form its escape region.
	EscapeWidth int
}

// New returns a fabric with the paper's default stitch parameters.
func New(xTracks, yTracks, layers int) *Fabric {
	f := &Fabric{
		XTracks:     xTracks,
		YTracks:     yTracks,
		Layers:      layers,
		StitchPitch: DefaultStitchPitch,
		SUREps:      DefaultSUREps,
		EscapeWidth: DefaultEscapeWidth,
	}
	return f
}

// Validate checks that the fabric parameters are self-consistent.
func (f *Fabric) Validate() error {
	switch {
	case f.XTracks < 2 || f.YTracks < 2:
		return fmt.Errorf("grid: fabric %dx%d too small", f.XTracks, f.YTracks)
	case f.Layers < 1:
		return fmt.Errorf("grid: need at least 1 layer, have %d", f.Layers)
	case f.StitchPitch < 4:
		return fmt.Errorf("grid: stitch pitch %d too small", f.StitchPitch)
	case f.SUREps < 0 || f.SUREps*2+1 >= f.StitchPitch:
		return fmt.Errorf("grid: SUR eps %d incompatible with stitch pitch %d", f.SUREps, f.StitchPitch)
	case f.EscapeWidth < f.SUREps || f.EscapeWidth*2+1 >= f.StitchPitch:
		return fmt.Errorf("grid: escape width %d incompatible with stitch pitch %d", f.EscapeWidth, f.StitchPitch)
	}
	return nil
}

// Dir is a layer's preferred routing direction.
type Dir = geom.Orientation

// LayerDir returns the preferred direction of layer l (1-based).
// Layer 1 is horizontal; directions alternate.
func (f *Fabric) LayerDir(l int) Dir {
	if l%2 == 1 {
		return geom.Horizontal
	}
	return geom.Vertical
}

// Bounds returns the full track rectangle of the fabric.
func (f *Fabric) Bounds() geom.Rect {
	return geom.Rect{X0: 0, Y0: 0, X1: f.XTracks - 1, Y1: f.YTracks - 1}
}

// InBounds reports whether point p lies on the fabric.
func (f *Fabric) InBounds(p geom.Point) bool {
	return p.X >= 0 && p.X < f.XTracks && p.Y >= 0 && p.Y < f.YTracks
}

// IsStitchCol reports whether vertical track x coincides with a stitching
// line. Stitching lines are at x ≡ 0 (mod StitchPitch). The x = 0 layout
// edge is treated as a stitching line too (the boundary of the first
// stripe).
func (f *Fabric) IsStitchCol(x int) bool {
	return x >= 0 && x < f.XTracks && x%f.StitchPitch == 0
}

// StitchCols returns all stitching-line x positions on the fabric, in
// increasing order.
func (f *Fabric) StitchCols() []int {
	var cols []int
	for x := 0; x < f.XTracks; x += f.StitchPitch {
		cols = append(cols, x)
	}
	return cols
}

// NearestStitch returns the stitching line position nearest to vertical
// track x (ties resolve to the left line) and the distance to it.
func (f *Fabric) NearestStitch(x int) (pos, dist int) {
	k := x / f.StitchPitch
	left := k * f.StitchPitch
	right := left + f.StitchPitch
	if right >= f.XTracks { // no stitching line at/after the right edge
		return left, x - left
	}
	if x-left <= right-x {
		return left, x - left
	}
	return right, right - x
}

// InSUR reports whether vertical track x lies in the stitch-unfriendly
// region of some stitching line: within SUREps tracks of it but not on it.
func (f *Fabric) InSUR(x int) bool {
	_, d := f.NearestStitch(x)
	return d > 0 && d <= f.SUREps
}

// SURStitch returns the stitching line whose SUR contains track x, or
// (-1, false) if x is not in any SUR.
func (f *Fabric) SURStitch(x int) (int, bool) {
	s, d := f.NearestStitch(x)
	if d > 0 && d <= f.SUREps {
		return s, true
	}
	return -1, false
}

// InEscape reports whether vertical track x lies in the escape region of
// some stitching line (within EscapeWidth tracks of it, excluding the
// stitching track itself).
func (f *Fabric) InEscape(x int) bool {
	_, d := f.NearestStitch(x)
	return d > 0 && d <= f.EscapeWidth
}

// TilesX returns the number of global tile columns. Tile column k covers
// x in [k·StitchPitch, (k+1)·StitchPitch); a ragged final column is kept.
func (f *Fabric) TilesX() int {
	return (f.XTracks + f.StitchPitch - 1) / f.StitchPitch
}

// TilesY returns the number of global tile rows (tiles are square in
// tracks: StitchPitch × StitchPitch).
func (f *Fabric) TilesY() int {
	return (f.YTracks + f.StitchPitch - 1) / f.StitchPitch
}

// TileOfX returns the tile column containing vertical track x.
func (f *Fabric) TileOfX(x int) int { return x / f.StitchPitch }

// TileOfY returns the tile row containing horizontal track y.
func (f *Fabric) TileOfY(y int) int { return y / f.StitchPitch }

// TileOf returns the tile (column, row) containing point p.
func (f *Fabric) TileOf(p geom.Point) (tx, ty int) {
	return f.TileOfX(p.X), f.TileOfY(p.Y)
}

// TileRect returns the track rectangle of tile (tx, ty), clipped to the
// fabric bounds.
func (f *Fabric) TileRect(tx, ty int) geom.Rect {
	r := geom.Rect{
		X0: tx * f.StitchPitch,
		Y0: ty * f.StitchPitch,
		X1: (tx+1)*f.StitchPitch - 1,
		Y1: (ty+1)*f.StitchPitch - 1,
	}
	return r.Intersect(f.Bounds())
}

// TileCenter returns the track point at the center of tile (tx, ty).
func (f *Fabric) TileCenter(tx, ty int) geom.Point {
	r := f.TileRect(tx, ty)
	return geom.Point{X: (r.X0 + r.X1) / 2, Y: (r.Y0 + r.Y1) / 2}
}

// VertTrackClasses counts, for one tile column, how many vertical tracks
// fall into each class: on a stitching line, in a SUR, or free. It is the
// basis of the global-routing resource estimation for MEBL (§III-A):
// boundary capacity excludes stitch tracks, and the tile's line-end
// (vertex) capacity is the number of free tracks.
type VertTrackClasses struct {
	Stitch, SUR, Free int
}

// ClassifyTileCol classifies the vertical tracks of tile column tx.
func (f *Fabric) ClassifyTileCol(tx int) VertTrackClasses {
	r := f.TileRect(tx, 0)
	var c VertTrackClasses
	for x := r.X0; x <= r.X1; x++ {
		switch {
		case f.IsStitchCol(x):
			c.Stitch++
		case f.InSUR(x):
			c.SUR++
		default:
			c.Free++
		}
	}
	return c
}

// VertCapacity returns the number of vertical tracks usable for routing in
// tile column tx (all tracks not on a stitching line).
func (f *Fabric) VertCapacity(tx int) int {
	c := f.ClassifyTileCol(tx)
	return c.SUR + c.Free
}

// LineEndCapacity returns the number of vertical tracks in tile column tx
// that are outside every stitch-unfriendly region — the vertex capacity
// c_v of the stitch-aware global routing graph (§III-A).
func (f *Fabric) LineEndCapacity(tx int) int {
	return f.ClassifyTileCol(tx).Free
}

// HorizCapacity returns the number of horizontal tracks crossing a vertical
// tile boundary in tile row ty (horizontal wires may cross stitching
// lines, so no reduction applies).
func (f *Fabric) HorizCapacity(ty int) int {
	r := geom.Rect{X0: 0, Y0: ty * f.StitchPitch, X1: 0, Y1: (ty+1)*f.StitchPitch - 1}
	return r.Intersect(f.Bounds()).H()
}
