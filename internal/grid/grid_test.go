package grid

import (
	"testing"
	"testing/quick"

	"stitchroute/internal/geom"
)

func testFabric() *Fabric { return New(60, 45, 3) }

func TestValidate(t *testing.T) {
	if err := testFabric().Validate(); err != nil {
		t.Fatalf("default fabric invalid: %v", err)
	}
	bad := []*Fabric{
		{XTracks: 1, YTracks: 10, Layers: 3, StitchPitch: 15, SUREps: 1, EscapeWidth: 2},
		{XTracks: 10, YTracks: 10, Layers: 0, StitchPitch: 15, SUREps: 1, EscapeWidth: 2},
		{XTracks: 10, YTracks: 10, Layers: 3, StitchPitch: 2, SUREps: 1, EscapeWidth: 2},
		{XTracks: 10, YTracks: 10, Layers: 3, StitchPitch: 15, SUREps: 8, EscapeWidth: 8},
		{XTracks: 10, YTracks: 10, Layers: 3, StitchPitch: 15, SUREps: 2, EscapeWidth: 1},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad fabric %d validated", i)
		}
	}
}

func TestLayerDir(t *testing.T) {
	f := testFabric()
	want := []Dir{geom.Horizontal, geom.Vertical, geom.Horizontal, geom.Vertical}
	for l := 1; l <= 4; l++ {
		if got := f.LayerDir(l); got != want[l-1] {
			t.Errorf("LayerDir(%d) = %v, want %v", l, got, want[l-1])
		}
	}
}

func TestStitchCols(t *testing.T) {
	f := testFabric() // 60 tracks, pitch 15 -> stitch at 0,15,30,45
	want := []int{0, 15, 30, 45}
	got := f.StitchCols()
	if len(got) != len(want) {
		t.Fatalf("StitchCols = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StitchCols = %v, want %v", got, want)
		}
	}
	for _, x := range want {
		if !f.IsStitchCol(x) {
			t.Errorf("IsStitchCol(%d) = false", x)
		}
	}
	for _, x := range []int{1, 14, 16, 44, 59} {
		if f.IsStitchCol(x) {
			t.Errorf("IsStitchCol(%d) = true", x)
		}
	}
}

func TestNearestStitch(t *testing.T) {
	f := testFabric()
	cases := []struct{ x, pos, dist int }{
		{0, 0, 0}, {1, 0, 1}, {7, 0, 7}, {8, 15, 7}, {14, 15, 1},
		{15, 15, 0}, {16, 15, 1}, {50, 45, 5},
		{55, 45, 10}, // right neighbor 60 is off-fabric, so left line wins
		{59, 45, 14},
	}
	for _, c := range cases {
		pos, dist := f.NearestStitch(c.x)
		if pos != c.pos || dist != c.dist {
			t.Errorf("NearestStitch(%d) = (%d,%d), want (%d,%d)", c.x, pos, dist, c.pos, c.dist)
		}
	}
}

func TestSURAndEscape(t *testing.T) {
	f := testFabric() // eps=1, escape=2
	surTrue := []int{1, 14, 16, 29, 31, 44, 46}
	for _, x := range surTrue {
		if !f.InSUR(x) {
			t.Errorf("InSUR(%d) = false", x)
		}
		if s, ok := f.SURStitch(x); !ok || s%15 != 0 {
			t.Errorf("SURStitch(%d) = %d,%v", x, s, ok)
		}
	}
	surFalse := []int{0, 2, 7, 13, 15, 30}
	for _, x := range surFalse {
		if f.InSUR(x) {
			t.Errorf("InSUR(%d) = true", x)
		}
		if _, ok := f.SURStitch(x); ok {
			t.Errorf("SURStitch(%d) ok for non-SUR track", x)
		}
	}
	for _, x := range []int{1, 2, 13, 14, 16, 17} {
		if !f.InEscape(x) {
			t.Errorf("InEscape(%d) = false", x)
		}
	}
	for _, x := range []int{0, 3, 12, 15} {
		if f.InEscape(x) {
			t.Errorf("InEscape(%d) = true", x)
		}
	}
}

func TestSURSubsetOfEscape(t *testing.T) {
	f := testFabric()
	for x := 0; x < f.XTracks; x++ {
		if f.InSUR(x) && !f.InEscape(x) {
			t.Errorf("track %d in SUR but not escape region", x)
		}
		if f.IsStitchCol(x) && (f.InSUR(x) || f.InEscape(x)) {
			t.Errorf("stitch track %d classified as SUR/escape", x)
		}
	}
}

func TestTiles(t *testing.T) {
	f := testFabric() // 60x45, pitch 15 -> 4x3 tiles
	if f.TilesX() != 4 || f.TilesY() != 3 {
		t.Fatalf("tiles = %dx%d, want 4x3", f.TilesX(), f.TilesY())
	}
	if tx, ty := f.TileOf(geom.Point{X: 31, Y: 29}); tx != 2 || ty != 1 {
		t.Errorf("TileOf(31,29) = %d,%d", tx, ty)
	}
	r := f.TileRect(3, 2)
	if r != (geom.Rect{X0: 45, Y0: 30, X1: 59, Y1: 44}) {
		t.Errorf("TileRect(3,2) = %+v", r)
	}
	c := f.TileCenter(0, 0)
	if c != (geom.Point{X: 7, Y: 7}) {
		t.Errorf("TileCenter(0,0) = %v", c)
	}
}

func TestRaggedTiles(t *testing.T) {
	f := New(50, 40, 3) // last column 45..49, last row 30..39
	if f.TilesX() != 4 || f.TilesY() != 3 {
		t.Fatalf("tiles = %dx%d, want 4x3", f.TilesX(), f.TilesY())
	}
	r := f.TileRect(3, 2)
	if r != (geom.Rect{X0: 45, Y0: 30, X1: 49, Y1: 39}) {
		t.Errorf("ragged TileRect = %+v", r)
	}
}

func TestCapacities(t *testing.T) {
	f := testFabric()
	// Tile column 0: tracks 0..14. Stitch: 0. SUR: 1 and 14. Free: 12.
	c := f.ClassifyTileCol(0)
	if c.Stitch != 1 || c.SUR != 2 || c.Free != 12 {
		t.Fatalf("ClassifyTileCol(0) = %+v", c)
	}
	if f.VertCapacity(0) != 14 {
		t.Errorf("VertCapacity = %d, want 14", f.VertCapacity(0))
	}
	if f.LineEndCapacity(0) != 12 {
		t.Errorf("LineEndCapacity = %d, want 12", f.LineEndCapacity(0))
	}
	if f.HorizCapacity(0) != 15 {
		t.Errorf("HorizCapacity = %d, want 15", f.HorizCapacity(0))
	}
	// Ragged last row of a 45-track-high fabric: 45..44? rows 30..44 full.
	if f.HorizCapacity(2) != 15 {
		t.Errorf("HorizCapacity(2) = %d, want 15", f.HorizCapacity(2))
	}
}

func TestClassesPartitionTileColumn(t *testing.T) {
	f := testFabric()
	for tx := 0; tx < f.TilesX(); tx++ {
		c := f.ClassifyTileCol(tx)
		if c.Stitch+c.SUR+c.Free != f.TileRect(tx, 0).W() {
			t.Errorf("tile col %d classes %+v don't partition width %d", tx, c, f.TileRect(tx, 0).W())
		}
	}
}

func TestTileOfInverseOfTileRect(t *testing.T) {
	f := testFabric()
	check := func(x, y uint16) bool {
		p := geom.Point{X: int(x) % f.XTracks, Y: int(y) % f.YTracks}
		tx, ty := f.TileOf(p)
		return f.TileRect(tx, ty).Contains(p)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundsInBounds(t *testing.T) {
	f := testFabric()
	b := f.Bounds()
	if b != (geom.Rect{X0: 0, Y0: 0, X1: 59, Y1: 44}) {
		t.Fatalf("Bounds = %+v", b)
	}
	if !f.InBounds(geom.Point{X: 0, Y: 0}) || !f.InBounds(geom.Point{X: 59, Y: 44}) {
		t.Error("corners not in bounds")
	}
	if f.InBounds(geom.Point{X: 60, Y: 0}) || f.InBounds(geom.Point{X: -1, Y: 3}) {
		t.Error("out-of-range points in bounds")
	}
}

func TestNearestStitchProperty(t *testing.T) {
	f := testFabric()
	check := func(raw uint16) bool {
		x := int(raw) % f.XTracks
		pos, dist := f.NearestStitch(x)
		if pos%f.StitchPitch != 0 {
			return false
		}
		if geom.Abs(x-pos) != dist {
			return false
		}
		// No on-fabric stitch line is strictly closer.
		for _, s := range f.StitchCols() {
			if geom.Abs(x-s) < dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
