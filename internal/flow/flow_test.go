package flow

import (
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	g := NewNetwork(3)
	a := g.AddArc(0, 1, 5, 2)
	b := g.AddArc(1, 2, 3, 1)
	sent, cost := g.MinCostFlow(0, 2, 10, false)
	if sent != 3 || cost != 9 {
		t.Fatalf("sent=%d cost=%d, want 3, 9", sent, cost)
	}
	if g.Flow(a) != 3 || g.Flow(b) != 3 {
		t.Errorf("arc flows %d,%d want 3,3", g.Flow(a), g.Flow(b))
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel 0->1 arcs: cost 1 cap 2, cost 5 cap 2. Send 3 units.
	g := NewNetwork(2)
	cheap := g.AddArc(0, 1, 2, 1)
	dear := g.AddArc(0, 1, 2, 5)
	sent, cost := g.MinCostFlow(0, 1, 3, false)
	if sent != 3 || cost != 2*1+1*5 {
		t.Fatalf("sent=%d cost=%d, want 3, 7", sent, cost)
	}
	if g.Flow(cheap) != 2 || g.Flow(dear) != 1 {
		t.Errorf("flows %d,%d want 2,1", g.Flow(cheap), g.Flow(dear))
	}
}

func TestNegativeCosts(t *testing.T) {
	// Selecting the negative-cost arc should be preferred.
	g := NewNetwork(4)
	g.AddArc(0, 1, 1, 0)
	neg := g.AddArc(1, 2, 1, -10)
	bypass := g.AddArc(1, 2, 1, 0)
	g.AddArc(2, 3, 2, 0)
	sent, cost := g.MinCostFlow(0, 3, 2, false)
	if sent != 1 { // bottleneck 0->1 cap 1
		t.Fatalf("sent=%d, want 1", sent)
	}
	if cost != -10 {
		t.Errorf("cost=%d, want -10", cost)
	}
	if g.Flow(neg) != 1 || g.Flow(bypass) != 0 {
		t.Errorf("neg=%d bypass=%d", g.Flow(neg), g.Flow(bypass))
	}
}

func TestStopAtPositive(t *testing.T) {
	g := NewNetwork(2)
	g.AddArc(0, 1, 1, -3)
	g.AddArc(0, 1, 5, 4)
	sent, cost := g.MinCostFlow(0, 1, 6, true)
	if sent != 1 || cost != -3 {
		t.Errorf("sent=%d cost=%d, want 1, -3", sent, cost)
	}
}

func TestRerouteThroughResidual(t *testing.T) {
	// Classic example where optimality needs the residual arc:
	// s->a (1, cap1), s->b (10, cap1), a->b (-20, cap1) wait keep it simple:
	// s->a cap1 cost1; a->t cap1 cost1; s->b cap1 cost2; b->t cap1 cost2;
	// a->b cap1 cost-5. Max flow 2: optimal uses s->a->b->t and s->b? no,
	// b->t cap 1. Optimal = s->a->b->t (1+(-5)+2=-2) + s->b? b->t full.
	// Second path must be s->b->a->t via residual of a->b: 2+5+1=8.
	// Total = 6. Greedy without residual would do s->a->t (2) + s->b->t (4) = 6 too.
	// Use distinct costs so residual matters:
	g := NewNetwork(4)
	s, a, b, tt := 0, 1, 2, 3
	g.AddArc(s, a, 1, 1)
	g.AddArc(a, tt, 1, 10)
	g.AddArc(s, b, 1, 2)
	g.AddArc(b, tt, 1, 2)
	g.AddArc(a, b, 1, -9)
	sent, cost := g.MinCostFlow(s, tt, 2, false)
	if sent != 2 {
		t.Fatalf("sent=%d, want 2", sent)
	}
	// Optimal: path1 s->a->b->t = 1-9+2=-6; path2 s->b->(residual b->a +9)->a->t = 2+9+10=21; total 15.
	// Alternative without residual: s->a->t=11, s->b->t=4 => 15. Equal here; just assert value.
	if cost != 15 {
		t.Errorf("cost=%d, want 15", cost)
	}
}

func TestAgainstBruteForceAssignment(t *testing.T) {
	// Random small assignment problems: flow result must match brute-force
	// minimum over permutations.
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 40; iter++ {
		n := 2 + rng.Intn(4)
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(20))
			}
		}
		// Build assignment network.
		g := NewNetwork(2*n + 2)
		s, t2 := 2*n, 2*n+1
		for i := 0; i < n; i++ {
			g.AddArc(s, i, 1, 0)
			g.AddArc(n+i, t2, 1, 0)
			for j := 0; j < n; j++ {
				g.AddArc(i, n+j, 1, cost[i][j])
			}
		}
		sent, got := g.MinCostFlow(s, t2, int64(n), false)
		if sent != int64(n) {
			t.Fatalf("iter %d: sent %d of %d", iter, sent, n)
		}
		want := bruteAssign(cost)
		if got != want {
			t.Fatalf("iter %d: flow cost %d, brute force %d", iter, got, want)
		}
	}
}

func bruteAssign(cost [][]int64) int64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := int64(1) << 62
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			var s int64
			for r, c := range perm {
				s += cost[r][c]
			}
			if s < best {
				best = s
			}
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

func TestPanics(t *testing.T) {
	g := NewNetwork(2)
	mustPanic(t, "range", func() { g.AddArc(0, 5, 1, 0) })
	mustPanic(t, "negative cap", func() { g.AddArc(0, 1, -1, 0) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

func TestSourceEqualsSink(t *testing.T) {
	g := NewNetwork(1)
	sent, cost := g.MinCostFlow(0, 0, 5, false)
	if sent != 0 || cost != 0 {
		t.Errorf("s==t gave %d,%d", sent, cost)
	}
}
