// Package flow implements min-cost max-flow by successive shortest paths
// with Bellman–Ford (SPFA) path finding, supporting negative arc costs as
// long as there is no negative cycle. The paper solves its
// layer-assignment min-cost flow with LEDA (§IV); this package is the
// from-scratch substitute.
package flow

import "fmt"

// Network is a directed flow network under construction. Vertices are
// dense integers 0..N-1.
type Network struct {
	n     int
	heads []int32 // head of adjacency list per vertex, -1 terminated
	next  []int32
	to    []int32
	cap   []int64
	cost  []int64
}

// NewNetwork returns an empty network with n vertices.
func NewNetwork(n int) *Network {
	heads := make([]int32, n)
	for i := range heads {
		heads[i] = -1
	}
	return &Network{n: n, heads: heads}
}

// N returns the number of vertices.
func (g *Network) N() int { return g.n }

// AddArc adds a directed arc u->v with the given capacity and per-unit
// cost, plus its residual reverse arc. It returns the arc's index, usable
// with Flow after solving.
func (g *Network) AddArc(u, v int, capacity, cost int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("flow: arc %d->%d out of range (n=%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	id := len(g.to)
	g.to = append(g.to, int32(v), int32(u))
	g.cap = append(g.cap, capacity, 0)
	g.cost = append(g.cost, cost, -cost)
	g.next = append(g.next, g.heads[u], g.heads[v])
	g.heads[u] = int32(id)
	g.heads[v] = int32(id + 1)
	return id
}

// Flow returns the flow routed on arc id after MinCostFlow.
func (g *Network) Flow(id int) int64 { return g.cap[id^1] }

// MinCostFlow sends up to maxFlow units from s to t, augmenting only along
// cost-minimal paths, and stops early once the cheapest augmenting path has
// positive cost if stopAtPositive is set. It returns the flow sent and its
// total cost.
func (g *Network) MinCostFlow(s, t int, maxFlow int64, stopAtPositive bool) (sent, total int64) {
	if s == t {
		return 0, 0
	}
	dist := make([]int64, g.n)
	inQueue := make([]bool, g.n)
	prevArc := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	const inf = int64(1) << 62
	for sent < maxFlow {
		for i := range dist {
			dist[i] = inf
			prevArc[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		inQueue[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			for e := g.heads[u]; e != -1; e = g.next[e] {
				if g.cap[e] == 0 {
					continue
				}
				v := g.to[e]
				if d := dist[u] + g.cost[e]; d < dist[v] {
					dist[v] = d
					prevArc[v] = e
					if !inQueue[v] {
						inQueue[v] = true
						queue = append(queue, v)
					}
				}
			}
		}
		if dist[t] == inf || (stopAtPositive && dist[t] > 0) {
			break
		}
		// Find bottleneck along the shortest path.
		push := maxFlow - sent
		for v := int32(t); v != int32(s); {
			e := prevArc[v]
			if g.cap[e] < push {
				push = g.cap[e]
			}
			v = g.to[e^1]
		}
		for v := int32(t); v != int32(s); {
			e := prevArc[v]
			g.cap[e] -= push
			g.cap[e^1] += push
			v = g.to[e^1]
		}
		sent += push
		total += push * dist[t]
	}
	return sent, total
}
