package flow

import (
	"math/rand"
	"testing"
)

// BenchmarkAssignment measures min-cost flow on n×n assignment problems,
// the shape the layer-assignment stage solves.
func BenchmarkAssignment(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
		for j := range cost[i] {
			cost[i][j] = int64(rng.Intn(100))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewNetwork(2*n + 2)
		s, t := 2*n, 2*n+1
		for r := 0; r < n; r++ {
			g.AddArc(s, r, 1, 0)
			g.AddArc(n+r, t, 1, 0)
			for c := 0; c < n; c++ {
				g.AddArc(r, n+c, 1, cost[r][c])
			}
		}
		if sent, _ := g.MinCostFlow(s, t, int64(n), false); sent != int64(n) {
			b.Fatal("incomplete flow")
		}
	}
}
