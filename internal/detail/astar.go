package detail

import (
	"time"

	"stitchroute/internal/geom"
)

// retryMargins are the growing search-window margins connect tries before
// giving up. The first entry doubles as the margin of a net's expected
// working region when the speculative scheduler partitions a round by
// congestion (see taskRegion in sched.go).
var retryMargins = [...]int{8, 24, 64}

// nodeState is one window cell's search state, packed into 16 bytes so a
// visit or a pop touches a single cache line instead of four parallel
// arrays, and the arena for a wide window stays a third smaller than the
// 24-byte layout.
type nodeState struct {
	dist float64
	// stamp marks cells reached by the current search; tstamp marks
	// target cells: cell i is a target iff tstamp == curStamp. The
	// stamped fields replace per-call map builds and array clears.
	// int16 keeps the struct at 16 bytes; searchCtx resets the arena
	// when the stamp counter would wrap (see astar).
	stamp  int16
	tstamp int16
	prevMv int8
}

// searchCtx is a per-worker search arena: all mutable scratch an A* run
// touches — the per-cell search states, the target marks, the open-list
// heap — plus the search statistics it accumulates. Concurrent
// speculation workers each own one arena, so no A* state is ever shared;
// the Router (the committed occupancy grid included) is read-only during
// the parallel phase, with every speculative write buffered in the
// arena's overlay (see sched.go for the determinism argument).
type searchCtx struct {
	nodes    []nodeState
	curStamp int32
	heap     cellHeap
	rev      []cell // path-reconstruction scratch

	// Write overlay for speculative attempts (setOcc/getOcc in
	// detail.go). While ovOn, occupancy writes record {index, value}
	// here instead of mutating the shared grid: ovStamp[i] == ovEpoch
	// marks cell i as written this attempt, ovVal[i] holds its pending
	// value, and ovLog lists each written index once, in first-write
	// order, so the commit loop can both apply and enumerate the write
	// set without scanning the grid. Bumping ovEpoch clears the overlay
	// in O(1).
	ovOn    bool
	ovEpoch int32
	ovStamp []int32
	ovVal   []int32
	ovLog   []int32

	// Backward-search arena for the bidirectional A* (bidi.go): the
	// backward frontier's node states, heap, and heuristic tables. The
	// forward frontier uses the primary fields above; both share
	// curStamp so one epoch bump invalidates both directions.
	nodesB []nodeState
	heapB  cellHeap
	hxB    []int32
	hyB    []int32

	// patA/patBest are the pattern fast path's candidate buffers
	// (fastpath.go): the shape being walked and the cheapest legal one
	// so far, swapped by slice header so neither is reallocated.
	patA    []cell
	patBest []cell

	// mark and mark2 are chip-sized stamped scratch grids for per-net
	// geometry analysis: components' cell-owner index, commitPath's
	// metal-coverage set, and trimNet's coverage counts (mark) and
	// anchors (mark2). Each use bumps mcur, so no clearing is needed and
	// uses cannot observe one another.
	mark  []stampVal
	mark2 []stampVal
	mcur  int32
	// parent is union-find scratch for components.
	parent []int32
	// compCnt/compCur/compBuf/comps are components' output scratch: cell
	// counts and write cursors per union-find root, the flat cell buffer
	// the groups are packed into, and the group headers. Reused across
	// calls; callers consume the result before the next call.
	compCnt []int32
	compCur []int32
	compBuf []cell
	comps   [][]cell

	// costXl/costYl are per-layer axis move costs, filled at the start
	// of each search (they depend only on the layer's preferred
	// direction and the config, not on the search itself).
	costXl []float64
	costYl []float64
	// hx/hy are the heuristic's per-column and per-row Manhattan gaps to
	// the target bounding box, filled at the start of each search so h
	// is two loads instead of four compares.
	hx []int32
	hy []int32

	// statistics accumulated by this arena; merged into the Router's
	// totals only for searches whose results are kept (accepted
	// speculative attempts and sequential-lane work), so the reported
	// totals match a Workers=1 run exactly.
	connects   int
	expansions int64
	patterns   int // pattern fast-path hits (subset of connects)

	// busyTime is scheduler telemetry: wall time this arena's worker
	// spent routing during parallel phases. Reported through
	// SchedStats.WorkerTime; never read by any routing decision.
	busyTime time.Duration
}

// grow ensures the arena covers n window states.
func (sc *searchCtx) grow(n int) {
	if len(sc.nodes) >= n {
		return
	}
	sc.nodes = make([]nodeState, n)
}

// growB ensures the backward-search arena covers n window states.
func (sc *searchCtx) growB(n int) {
	if len(sc.nodesB) >= n {
		return
	}
	sc.nodesB = make([]nodeState, n)
}

// ovBegin activates the write overlay for one speculative attempt on a
// grid of n occupancy cells, clearing any previous attempt's writes.
func (sc *searchCtx) ovBegin(n int) {
	if len(sc.ovStamp) < n {
		sc.ovStamp = make([]int32, n)
		sc.ovVal = make([]int32, n)
	}
	sc.ovEpoch++
	sc.ovLog = sc.ovLog[:0]
	sc.ovOn = true
}

// ovEnd deactivates the overlay; the recorded writes stay readable in
// ovLog/ovVal until the next ovBegin.
func (sc *searchCtx) ovEnd() { sc.ovOn = false }

// stampVal is one cell of a stamped scratch grid: val is meaningful only
// when stamp matches the grid's current stamp.
type stampVal struct {
	stamp int32
	val   int32
}

// growMark sizes the stamped scratch grids to n chip cells and starts a
// fresh stamp epoch, returning it.
func (sc *searchCtx) growMark(n int) int32 {
	if len(sc.mark) < n {
		sc.mark = make([]stampVal, n)
		sc.mark2 = make([]stampVal, n)
	}
	sc.mcur++
	return sc.mcur
}

// arena returns the i-th per-worker search arena, allocating it on first
// use. Callers must fetch arenas before spawning workers; the slice is
// not goroutine-safe.
func (r *Router) arena(i int) *searchCtx {
	for len(r.arenas) <= i {
		r.arenas = append(r.arenas, &searchCtx{})
	}
	return r.arenas[i]
}

// connect runs the stitch-aware A* (eq. 10) from the source component to
// the nearest target cell. It retries with growing search windows before
// giving up. With Config.Pattern it first tries the L/Z pattern fast
// path for single-cell-to-single-cell connections (fastpath.go); with
// Config.Bidi the window search is the bidirectional A* (bidi.go).
//
// region is the caller's declared search region: a retry window that is
// not fully contained in it makes connect return escaped=true without
// searching. Every current caller passes the chip bounds (the
// speculative scheduler detects collisions by read-set conflict, not by
// region containment), so nothing escapes; the parameter remains the
// contract that a bounded caller could rely on.
func (r *Router) connect(sc *searchCtx, t *routeTask, src, targets []cell, region geom.Rect) (path []cell, ok, escaped bool) {
	if r.cfg.Pattern && len(src) == 1 && len(targets) == 1 &&
		region.ContainsRect(extendBBox(cellBBox(src), targets)) {
		if path, ok := r.patternRoute(sc, t, src[0], targets[0]); ok {
			return path, true, false
		}
	}
	box := extendBBox(cellBBox(src), targets)
	for _, margin := range retryMargins[:] {
		win := box.Expand(margin).Intersect(r.f.Bounds())
		if !region.ContainsRect(win) {
			return nil, false, true
		}
		if r.cfg.Bidi {
			if path, ok := r.bidiAstar(sc, t, src, targets, win); ok {
				return path, true, false
			}
		} else if path, ok := r.astar(sc, t, src, targets, win); ok {
			return path, true, false
		}
		// If the window already covers the chip, a retry cannot help.
		if win == r.f.Bounds() {
			break
		}
	}
	return nil, false, false
}

// rectDist is the Manhattan gap between two rectangles (0 if they touch).
func rectDist(a, b geom.Rect) int {
	dx, dy := 0, 0
	if a.X1 < b.X0 {
		dx = b.X0 - a.X1
	} else if b.X1 < a.X0 {
		dx = a.X0 - b.X1
	}
	if a.Y1 < b.Y0 {
		dy = b.Y0 - a.Y1
	} else if b.Y1 < a.Y0 {
		dy = a.Y0 - b.Y1
	}
	return dx + dy
}

func cellBBox(cs []cell) geom.Rect {
	b := geom.Rect{X0: cs[0].x, Y0: cs[0].y, X1: cs[0].x, Y1: cs[0].y}
	return extendBBox(b, cs[1:])
}

// extendBBox grows b to cover every cell in cs.
func extendBBox(b geom.Rect, cs []cell) geom.Rect {
	for _, c := range cs {
		if c.x < b.X0 {
			b.X0 = c.x
		}
		if c.x > b.X1 {
			b.X1 = c.x
		}
		if c.y < b.Y0 {
			b.Y0 = c.y
		}
		if c.y > b.Y1 {
			b.Y1 = c.y
		}
	}
	return b
}

// move encodings for path reconstruction.
const (
	mvNone int8 = iota
	mvXPos
	mvXNeg
	mvYPos
	mvYNeg
	mvZPos
	mvZNeg
)

// astar searches inside the window using the arena sc. States are cells
// of the window × all layers. Returns the path from a source cell to the
// first target reached.
func (r *Router) astar(sc *searchCtx, t *routeTask, src, targets []cell, win geom.Rect) ([]cell, bool) {
	sc.connects++
	W := win.W()
	H := win.H()
	L := r.L
	sc.grow(W * H * L)
	sc.curStamp++
	if sc.curStamp > 0x7fff {
		// The 16-bit node stamps would wrap: clear the arena and restart
		// the epoch. The reset point depends only on how many searches
		// this arena has run, which is deterministic, and a cleared
		// arena is indistinguishable from a fresh one.
		for i := range sc.nodes {
			sc.nodes[i] = nodeState{}
		}
		sc.curStamp = 1
	}
	stamp := int16(sc.curStamp)
	id := int32(t.net.ID)
	f := r.f
	cfg := &r.cfg

	lidx := func(c cell) int { return (c.l*H+(c.y-win.Y0))*W + (c.x - win.X0) }
	inWin := func(x, y int) bool { return x >= win.X0 && x <= win.X1 && y >= win.Y0 && y <= win.Y1 }
	nodes := sc.nodes

	// Mark targets in the stamped arena.
	nTargets := 0
	tb := cellBBox(targets)
	for _, c := range targets {
		if inWin(c.x, c.y) {
			if i := lidx(c); nodes[i].tstamp != stamp {
				nodes[i].tstamp = stamp
				nTargets++
			}
		}
	}
	if nTargets == 0 {
		return nil, false
	}
	// Tabulate the heuristic's per-column and per-row Manhattan gaps to
	// the target bounding box. h then computes the same
	// cfg.Alpha * float64(dx+dy) it always did — same sum, same
	// conversion, same multiply — from two table loads.
	if len(sc.hx) < W {
		sc.hx = make([]int32, W)
	}
	if len(sc.hy) < H {
		sc.hy = make([]int32, H)
	}
	for wx := 0; wx < W; wx++ {
		x, dx := wx+win.X0, 0
		if x < tb.X0 {
			dx = tb.X0 - x
		} else if x > tb.X1 {
			dx = x - tb.X1
		}
		sc.hx[wx] = int32(dx)
	}
	for wy := 0; wy < H; wy++ {
		y, dy := wy+win.Y0, 0
		if y < tb.Y0 {
			dy = tb.Y0 - y
		} else if y > tb.Y1 {
			dy = y - tb.Y1
		}
		sc.hy[wy] = int32(dy)
	}
	hx, hy := sc.hx, sc.hy
	h := func(x, y int) float64 {
		return cfg.Alpha * float64(hx[x-win.X0]+hy[y-win.Y0])
	}

	// Per-layer axis move costs: the same multiplications the expansion
	// loop used to run per pop, hoisted to one pass over the layers.
	if len(sc.costXl) < L {
		sc.costXl = make([]float64, L)
		sc.costYl = make([]float64, L)
	}
	for l := 0; l < L; l++ {
		preferred := f.LayerDir(l + 1)
		cx, cy := cfg.Alpha, cfg.Alpha
		if preferred != geom.Horizontal {
			cx *= cfg.WrongWay
		}
		if preferred != geom.Vertical {
			cy *= cfg.WrongWay
		}
		sc.costXl[l] = cx
		sc.costYl[l] = cy
	}
	costXl, costYl := sc.costXl, sc.costYl

	// When the window coordinates fit, each heap entry carries its cell's
	// packed (wx, wy, l) in otherwise-padding bytes, so the pop loop
	// needs no divisions to unpack the window index. Priorities and heap
	// structure are unchanged either way.
	packOK := W <= 1<<12 && H <= 1<<12 && L <= 1<<8
	pack := func(x, y, l int) uint32 {
		if !packOK {
			return 0
		}
		return uint32(x-win.X0) | uint32(y-win.Y0)<<12 | uint32(l)<<24
	}

	pq := &sc.heap
	pq.reset()
	// visit relaxes window cell i (= coordinates x, y, l) to distance d.
	visit := func(i, x, y, l int, d float64, mv int8) {
		n := &nodes[i]
		if n.stamp != stamp || d < n.dist-1e-12 {
			n.stamp = stamp
			n.dist = d
			n.prevMv = mv
			pq.push(i, pack(x, y, l), d+h(x, y))
		}
	}
	for _, c := range src {
		if inWin(c.x, c.y) {
			visit(lidx(c), c.x, c.y, c.l, 0, mvNone)
		}
	}

	pinCells := t.pinCells
	colFlags := r.colFlags
	// Neighbor indices are the popped cell's plus a fixed stride, in both
	// the window arena (i, strides 1/W/W*H) and the global occupancy grid
	// (gi, strides 1/X/X*Y) — no per-neighbor index arithmetic.
	occ := r.occ
	costZCol := r.costZCol
	X, XY := r.X, r.X*r.Y
	id1 := id + 1
	free := func(g int) bool { o := occ[g]; return o == 0 || o == id1 }

	expansions := 0
	var goal cell
	found := false
	for pq.len() > 0 {
		i, pos, fval := pq.pop()
		// Unpack cell coordinates: from the packed entry when windows are
		// small enough, from the window index otherwise.
		var x, y, l int
		if packOK {
			x = int(pos&0xfff) + win.X0
			y = int(pos>>12&0xfff) + win.Y0
			l = int(pos >> 24)
		} else {
			x = i%W + win.X0
			y = (i/W)%H + win.Y0
			l = i / (W * H)
		}
		c := cell{x, y, l}
		n := &nodes[i]
		if n.stamp != stamp || fval-h(x, y) > n.dist+1e-9 {
			continue
		}
		// ECO act: the search reads occupancy only at popped cells'
		// neighbors, so the popped tiles (dilated by one tile when the
		// recording is folded — see collectECO) bound its read set far
		// tighter than the whole window. Tasks built outside prepare
		// (tests) carry no bitset.
		if t.sact != nil {
			ab := (y>>actTileShift)*r.atw + x>>actTileShift
			t.sact[ab>>6] |= 1 << (uint(ab) & 63)
		}
		if n.tstamp == stamp {
			goal = c
			found = true
			break
		}
		expansions++
		sc.expansions++
		if expansions > cfg.MaxExpansions {
			break
		}
		d := n.dist
		flags := colFlags[x]
		gi := (l*r.Y+y)*X + x

		// x moves
		costX := costXl[l]
		if x+1 <= win.X1 && free(gi+1) {
			visit(i+1, x+1, y, l, d+costX, mvXPos)
		}
		if x-1 >= win.X0 && free(gi-1) {
			visit(i-1, x-1, y, l, d+costX, mvXNeg)
		}
		// y moves: forbidden along stitching columns (hard constraint).
		if flags&colStitch == 0 {
			costY := costYl[l]
			if cfg.StitchAware && flags&colEscape != 0 {
				costY += cfg.Gamma
			}
			if y+1 <= win.Y1 && free(gi+X) {
				visit(i+W, x, y+1, l, d+costY, mvYPos)
			}
			if y-1 >= win.Y0 && free(gi-X) {
				visit(i-W, x, y-1, l, d+costY, mvYNeg)
			}
		}
		// z moves: vias forbidden on stitching columns except at pins.
		if flags&colStitch == 0 || pinCells.has(x, y) {
			costZ := costZCol[x]
			if l+1 < L && free(gi+XY) {
				visit(i+W*H, x, y, l+1, d+costZ, mvZPos)
			}
			if l-1 >= 0 && free(gi-XY) {
				visit(i-W*H, x, y, l-1, d+costZ, mvZNeg)
			}
		}
	}
	if !found {
		return nil, false
	}
	// Reconstruct goal-first into the arena's path scratch, then reverse
	// in place. The returned path aliases the arena: callers consume it
	// before the next search on this arena (routeNet commits it
	// immediately), so the steady-state search allocates nothing.
	rev := sc.rev[:0]
	c := goal
	for {
		rev = append(rev, c)
		mv := nodes[lidx(c)].prevMv
		if mv == mvNone {
			break // reached a source cell
		}
		switch mv {
		case mvXPos:
			c.x--
		case mvXNeg:
			c.x++
		case mvYPos:
			c.y--
		case mvYNeg:
			c.y++
		case mvZPos:
			c.l--
		case mvZNeg:
			c.l++
		}
		if len(rev) > 4*(W*H*L+4) {
			sc.rev = rev
			return nil, false // corrupt backtrace; fail safe
		}
	}
	sc.rev = rev
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// pinSet is a net's pin (x, y) set, packed for the A* via rule. Nets
// have at most a handful of pins, so a linear scan over packed keys
// beats a map lookup in the expansion loop.
type pinSet []uint64

func pinKey(x, y int) uint64 { return uint64(uint32(x))<<32 | uint64(uint32(y)) }

func (s pinSet) has(x, y int) bool {
	k := pinKey(x, y)
	for _, p := range s {
		if p == k {
			return true
		}
	}
	return false
}

// Column classification bits, precomputed per x track in Router.colFlags.
const (
	colStitch = 1 << iota // on a stitching line
	colSUR                // in a stitch-unfriendly region
	colEscape             // in an escape region
)

// cellHeap is a binary min-heap of (window index, priority). It is owned
// by a searchCtx and reused across searches via reset. The sift loops
// move a hole instead of swapping (half the writes of a swap-based
// heap), but run the exact comparison sequence of the classic swap
// formulation, so the pop order — including among equal priorities,
// which the router's tie-breaks depend on — is unchanged.
type cellHeap struct {
	e []heapEntry
}

// heapEntry is 16 bytes: pos rides in what would otherwise be padding
// after idx, so carrying the packed cell coordinates costs no space.
type heapEntry struct {
	prio float64
	idx  int32
	pos  uint32
}

func (h *cellHeap) reset() { h.e = h.e[:0] }

func (h *cellHeap) len() int { return len(h.e) }

func (h *cellHeap) push(i int, pos uint32, p float64) {
	h.e = append(h.e, heapEntry{})
	j := len(h.e) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if h.e[parent].prio <= p {
			break
		}
		h.e[j] = h.e[parent]
		j = parent
	}
	h.e[j] = heapEntry{prio: p, idx: int32(i), pos: pos}
}

func (h *cellHeap) pop() (int, uint32, float64) {
	top := h.e[0]
	last := len(h.e) - 1
	v := h.e[last]
	h.e = h.e[:last]
	j := 0
	for {
		l, rr := 2*j+1, 2*j+2
		small, sp := j, v.prio
		if l < last && h.e[l].prio < sp {
			small, sp = l, h.e[l].prio
		}
		if rr < last && h.e[rr].prio < sp {
			small, sp = rr, h.e[rr].prio
		}
		if small == j {
			break
		}
		h.e[j] = h.e[small]
		j = small
	}
	if last > 0 {
		h.e[j] = v
	}
	return int(top.idx), top.pos, top.prio
}
