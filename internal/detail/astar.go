package detail

import "stitchroute/internal/geom"

// connect runs the stitch-aware A* (eq. 10) from the source component to
// the nearest target cell. It retries with growing search windows before
// giving up.
func (r *Router) connect(t *routeTask, src, targets []cell) ([]cell, bool) {
	box := cellBBox(append(append([]cell(nil), src...), targets...))
	for _, margin := range []int{8, 24, 64} {
		win := box.Expand(margin).Intersect(r.f.Bounds())
		if path, ok := r.astar(t, src, targets, win); ok {
			return path, true
		}
		// If the window already covers the chip, a retry cannot help.
		if win == r.f.Bounds() {
			break
		}
	}
	return nil, false
}

// rectDist is the Manhattan gap between two rectangles (0 if they touch).
func rectDist(a, b geom.Rect) int {
	dx, dy := 0, 0
	if a.X1 < b.X0 {
		dx = b.X0 - a.X1
	} else if b.X1 < a.X0 {
		dx = a.X0 - b.X1
	}
	if a.Y1 < b.Y0 {
		dy = b.Y0 - a.Y1
	} else if b.Y1 < a.Y0 {
		dy = a.Y0 - b.Y1
	}
	return dx + dy
}

func cellBBox(cs []cell) geom.Rect {
	b := geom.Rect{X0: cs[0].x, Y0: cs[0].y, X1: cs[0].x, Y1: cs[0].y}
	for _, c := range cs[1:] {
		if c.x < b.X0 {
			b.X0 = c.x
		}
		if c.x > b.X1 {
			b.X1 = c.x
		}
		if c.y < b.Y0 {
			b.Y0 = c.y
		}
		if c.y > b.Y1 {
			b.Y1 = c.y
		}
	}
	return b
}

// move encodings for path reconstruction.
const (
	mvNone int8 = iota
	mvXPos
	mvXNeg
	mvYPos
	mvYNeg
	mvZPos
	mvZNeg
)

// astar searches inside the window. States are cells of the window × all
// layers. Returns the path from a source cell to the first target reached.
func (r *Router) astar(t *routeTask, src, targets []cell, win geom.Rect) ([]cell, bool) {
	r.connects++
	W := win.W()
	H := win.H()
	L := r.L
	n := W * H * L
	if len(r.dist) < n {
		r.dist = make([]float64, n)
		r.prevMv = make([]int8, n)
		r.stamp = make([]int32, n)
	}
	r.curStamp++
	stamp := r.curStamp
	id := int32(t.net.ID)
	f := r.f
	cfg := &r.cfg

	lidx := func(c cell) int { return (c.l*H+(c.y-win.Y0))*W + (c.x - win.X0) }
	inWin := func(x, y int) bool { return x >= win.X0 && x <= win.X1 && y >= win.Y0 && y <= win.Y1 }

	// Mark targets.
	isTarget := make(map[cell]bool, len(targets))
	tb := cellBBox(targets)
	for _, c := range targets {
		if inWin(c.x, c.y) {
			isTarget[c] = true
		}
	}
	if len(isTarget) == 0 {
		return nil, false
	}
	h := func(x, y int) float64 {
		dx, dy := 0, 0
		if x < tb.X0 {
			dx = tb.X0 - x
		} else if x > tb.X1 {
			dx = x - tb.X1
		}
		if y < tb.Y0 {
			dy = tb.Y0 - y
		} else if y > tb.Y1 {
			dy = y - tb.Y1
		}
		return cfg.Alpha * float64(dx+dy)
	}

	pq := newCellHeap()
	visit := func(c cell, d float64, mv int8) {
		i := lidx(c)
		if r.stamp[i] != stamp || d < r.dist[i]-1e-12 {
			r.stamp[i] = stamp
			r.dist[i] = d
			r.prevMv[i] = mv
			pq.push(i, d+h(c.x, c.y))
		}
	}
	for _, c := range src {
		if inWin(c.x, c.y) {
			visit(c, 0, mvNone)
		}
	}

	pinCells := make(map[[2]int]bool, len(t.net.Pins))
	for _, p := range t.net.Pins {
		pinCells[[2]int{p.X, p.Y}] = true
	}

	expansions := 0
	var goal cell
	found := false
	for pq.len() > 0 {
		i, fval := pq.pop()
		// Unpack cell from window index.
		x := i%W + win.X0
		y := (i/W)%H + win.Y0
		l := i / (W * H)
		c := cell{x, y, l}
		if r.stamp[i] != stamp || fval-h(x, y) > r.dist[i]+1e-9 {
			continue
		}
		if isTarget[c] {
			goal = c
			found = true
			break
		}
		expansions++
		r.expansions++
		if expansions > cfg.MaxExpansions {
			break
		}
		d := r.dist[i]
		preferred := f.LayerDir(l + 1)

		// x moves
		for _, step := range [2]struct {
			dx int
			mv int8
		}{{1, mvXPos}, {-1, mvXNeg}} {
			nx := x + step.dx
			if nx < win.X0 || nx > win.X1 || !r.cellFree(nx, y, l, id) {
				continue
			}
			cost := cfg.Alpha
			if preferred != geom.Horizontal {
				cost *= cfg.WrongWay
			}
			visit(cell{nx, y, l}, d+cost, step.mv)
		}
		// y moves: forbidden along stitching columns (hard constraint).
		if !f.IsStitchCol(x) {
			for _, step := range [2]struct {
				dy int
				mv int8
			}{{1, mvYPos}, {-1, mvYNeg}} {
				ny := y + step.dy
				if ny < win.Y0 || ny > win.Y1 || !r.cellFree(x, ny, l, id) {
					continue
				}
				cost := cfg.Alpha
				if preferred != geom.Vertical {
					cost *= cfg.WrongWay
				}
				if cfg.StitchAware && f.InEscape(x) {
					cost += cfg.Gamma
				}
				visit(cell{x, ny, l}, d+cost, step.mv)
			}
		}
		// z moves: vias forbidden on stitching columns except at pins.
		if !f.IsStitchCol(x) || pinCells[[2]int{x, y}] {
			for _, step := range [2]struct {
				dl int
				mv int8
			}{{1, mvZPos}, {-1, mvZNeg}} {
				nl := l + step.dl
				if nl < 0 || nl >= L || !r.cellFree(x, y, nl, id) {
					continue
				}
				cost := cfg.ViaCost
				if cfg.StitchAware {
					switch {
					case f.IsStitchCol(x):
						// Allowed only at a fixed pin, but it is still a
						// via violation: take it only as a last resort.
						cost += 2 * cfg.Beta
					case f.InSUR(x):
						cost += cfg.Beta
					}
					if f.InEscape(x) {
						cost += cfg.Gamma
					}
				}
				visit(cell{x, y, nl}, d+cost, step.mv)
			}
		}
	}
	if !found {
		return nil, false
	}
	// Reconstruct.
	var rev []cell
	c := goal
	for {
		rev = append(rev, c)
		mv := r.prevMv[lidx(c)]
		switch mv {
		case mvNone:
			// reached a source cell
			path := make([]cell, len(rev))
			for i := range rev {
				path[i] = rev[len(rev)-1-i]
			}
			return path, true
		case mvXPos:
			c.x--
		case mvXNeg:
			c.x++
		case mvYPos:
			c.y--
		case mvYNeg:
			c.y++
		case mvZPos:
			c.l--
		case mvZNeg:
			c.l++
		}
		if len(rev) > 4*(W*H*L+4) {
			return nil, false // corrupt backtrace; fail safe
		}
	}
}

// cellHeap is a binary min-heap of (window index, priority).
type cellHeap struct {
	idx  []int32
	prio []float64
}

func newCellHeap() *cellHeap { return &cellHeap{} }

func (h *cellHeap) len() int { return len(h.idx) }

func (h *cellHeap) push(i int, p float64) {
	h.idx = append(h.idx, int32(i))
	h.prio = append(h.prio, p)
	j := len(h.idx) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if h.prio[parent] <= h.prio[j] {
			break
		}
		h.swap(parent, j)
		j = parent
	}
}

func (h *cellHeap) pop() (int, float64) {
	i, p := h.idx[0], h.prio[0]
	last := len(h.idx) - 1
	h.swap(0, last)
	h.idx = h.idx[:last]
	h.prio = h.prio[:last]
	j := 0
	for {
		l, rr := 2*j+1, 2*j+2
		small := j
		if l < last && h.prio[l] < h.prio[small] {
			small = l
		}
		if rr < last && h.prio[rr] < h.prio[small] {
			small = rr
		}
		if small == j {
			break
		}
		h.swap(j, small)
		j = small
	}
	return int(i), p
}

func (h *cellHeap) swap(i, j int) {
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
}
