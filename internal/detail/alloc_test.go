package detail

import (
	"testing"

	"stitchroute/internal/geom"
)

// TestRouteNetSteadyStateAllocs pins the arena discipline with the
// runtime's own allocation counter: once the searchCtx and the task's
// wire/via slices have grown to size, a per-net search — components,
// connect, A*, commit — performs zero heap allocations. This is the
// dynamic twin of the hotalloc analyzer: the analyzer proves no
// allocation site is reachable from the search loop, this test proves
// the claim holds at runtime, so a regression trips whichever guard
// sees it first.
func TestRouteNetSteadyStateAllocs(t *testing.T) {
	f := fabric()
	r := NewRouter(f, DefaultConfig(true))
	net := mkNet(0, geom.Point{X: 2, Y: 2}, geom.Point{X: 40, Y: 30})
	task := &routeTask{net: net, slot: 0}
	for _, pin := range net.Pins {
		if !task.pinCells.has(pin.X, pin.Y) {
			task.pinCells = append(task.pinCells, pinKey(pin.X, pin.Y))
		}
	}
	sc := r.arena(0)
	region := f.Bounds()

	route := func() {
		if r.routeNet(sc, task, region) != netRouted {
			t.Fatal("route failed")
		}
		// Undo the route so the next iteration searches the same
		// problem: clear occupancy, then reslice the commit buffers to
		// keep their capacity.
		r.clearNet(nil, task)
		task.wires = task.wires[:0]
		task.vias = task.vias[:0]
	}
	// Warm-up grows the arena and the task's commit slices.
	route()

	if avg := testing.AllocsPerRun(100, route); avg != 0 {
		t.Errorf("steady-state routeNet: %.2f allocs/run, want 0", avg)
	}
}
