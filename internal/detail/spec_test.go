package detail_test

// Tests for the speculative scheduler's satellite surfaces: worker-count
// resolution, scheduler telemetry, the high-congestion replay path, and
// the opt-in algorithmic fast paths (bidirectional A*, pattern routing).
// The byte-identity core is covered by parallel_test.go; these tests pin
// the contracts around it.

import (
	"runtime"
	"testing"

	"stitchroute/internal/core"
	"stitchroute/internal/detail"
	"stitchroute/internal/drc"
	"stitchroute/internal/harness"
)

// TestResolveWorkers pins the "auto" rule: non-positive means NumCPU,
// absurd values clamp, everything in between passes through.
func TestResolveWorkers(t *testing.T) {
	ncpu := runtime.NumCPU()
	cases := []struct{ in, want int }{
		{0, ncpu},
		{-1, ncpu},
		{1, 1},
		{5, 5},
		{256, 256},
		{1 << 20, 256},
	}
	for _, c := range cases {
		if got := detail.ResolveWorkers(c.in); got != c.want {
			t.Errorf("ResolveWorkers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestCongestedWorkersEquivalence runs the full pipeline on the
// high-congestion harness grid across Workers ∈ {1, 2, 4, 8} and asserts
// byte-identical routed geometry and identical search statistics. On
// these circuits speculative attempts collide, so the assertion at the
// bottom — that the scheduler observed at least one conflict or replay
// somewhere in the battery — certifies the equivalence held *through*
// the replay machinery, not around it.
func TestCongestedWorkersEquivalence(t *testing.T) {
	conflicts := 0
	for _, spec := range harness.CongestedGrid() {
		spec := spec
		spec.Seed = 13
		t.Run(spec.String(), func(t *testing.T) {
			route := func(workers int) (*core.Result, string) {
				cfg := core.StitchAware()
				cfg.Detail.Workers = workers
				res, err := core.Route(harness.Generate(spec), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res, routesHash(t, res.Routes)
			}
			seq, seqHash := route(1)
			for _, workers := range []int{2, 4, 8} {
				par, parHash := route(workers)
				if parHash != seqHash {
					t.Errorf("Workers=%d diverged from Workers=1: %s vs %s", workers, parHash[:12], seqHash[:12])
				}
				if seq.DetailConnects != par.DetailConnects || seq.DetailExpansions != par.DetailExpansions {
					t.Errorf("Workers=%d stats diverged: %d/%d vs %d/%d connects/expansions",
						workers, par.DetailConnects, par.DetailExpansions, seq.DetailConnects, seq.DetailExpansions)
				}
				if seq.FailedNets != par.FailedNets || seq.RippedNets != par.RippedNets {
					t.Errorf("Workers=%d failure accounting diverged: failed=%d ripped=%d vs failed=%d ripped=%d",
						workers, par.FailedNets, par.RippedNets, seq.FailedNets, seq.RippedNets)
				}
				conflicts += par.DetailSched.Conflicts + par.DetailSched.Replays
			}
		})
	}
	if !t.Failed() && conflicts == 0 {
		t.Error("no conflicts or replays across the congested battery: the replay path was never exercised")
	}
}

// TestSchedTelemetry checks the accounting identities of one speculative
// run: every net retires exactly once (committed or lane-routed), and
// the per-worker busy-time vector matches the worker count.
func TestSchedTelemetry(t *testing.T) {
	spec := harness.CongestedGrid()[0]
	spec.Seed = 5
	c := harness.Generate(spec)
	cfg := detail.DefaultConfig(true)
	const workers = 4
	res := runDetail(c, nil, cfg, workers)

	sd := res.Sched
	if sd.Rounds == 0 || sd.Speculated == 0 {
		t.Fatalf("speculative run reported no scheduling: %+v", sd)
	}
	if sd.Committed+sd.LaneNets != len(c.Nets) {
		t.Errorf("committed (%d) + lane (%d) != nets (%d)", sd.Committed, sd.LaneNets, len(c.Nets))
	}
	if sd.Committed > sd.Speculated {
		t.Errorf("committed (%d) exceeds speculated (%d)", sd.Committed, sd.Speculated)
	}
	if len(sd.WorkerTime) != workers {
		t.Errorf("WorkerTime has %d entries, want %d", len(sd.WorkerTime), workers)
	}

	// A sequential run reports no scheduling activity but the same routes.
	seq := runDetail(harness.Generate(spec), nil, cfg, 1)
	if seq.Sched.Speculated != 0 || seq.Sched.Rounds != 0 {
		t.Errorf("sequential run reported speculation: %+v", seq.Sched)
	}
	if routesHash(t, seq.Routes) != routesHash(t, res.Routes) {
		t.Error("telemetry circuit diverged between Workers=1 and Workers=4")
	}
}

// fastPathEquivalence routes the circuit with the given config across
// worker counts, asserting determinism (same config → same hash),
// worker invariance, and clean stitch DRC (no off-pin via violations,
// no vertical wires on stitching lines).
func fastPathEquivalence(t *testing.T, spec harness.GenSpec, cfg detail.Config) *detail.Result {
	t.Helper()
	c := harness.Generate(spec)
	ref := runDetail(c, nil, cfg, 1)
	refHash := routesHash(t, ref.Routes)
	if again := runDetail(harness.Generate(spec), nil, cfg, 1); routesHash(t, again.Routes) != refHash {
		t.Error("two identical sequential runs diverged")
	}
	for _, workers := range []int{2, 8} {
		got := runDetail(harness.Generate(spec), nil, cfg, workers)
		if h := routesHash(t, got.Routes); h != refHash {
			t.Errorf("Workers=%d diverged from Workers=1: %s vs %s", workers, h[:12], refHash[:12])
		}
	}
	rep := drc.Check(c, ref.Routes)
	if rep.RoutedNets == 0 {
		t.Error("no nets routed")
	}
	if rep.ViaViolationsOffPin != 0 || rep.VertRouteViolations != 0 {
		t.Errorf("stitch DRC violations: %d off-pin vias, %d vertical stitch wires",
			rep.ViaViolationsOffPin, rep.VertRouteViolations)
	}
	return ref
}

// TestBidiWorkersEquivalence: the bidirectional A* is deterministic,
// worker-invariant, and stitch-legal.
func TestBidiWorkersEquivalence(t *testing.T) {
	spec := harness.ShortGrid()[0]
	spec.Seed = 17
	cfg := detail.DefaultConfig(true)
	cfg.Bidi = true
	fastPathEquivalence(t, spec, cfg)
}

// TestPatternWorkersEquivalence: the L/Z pattern fast path is
// deterministic, worker-invariant, stitch-legal, and actually fires.
func TestPatternWorkersEquivalence(t *testing.T) {
	spec := harness.ShortGrid()[0]
	spec.Seed = 17
	cfg := detail.DefaultConfig(true)
	cfg.Pattern = true
	res := fastPathEquivalence(t, spec, cfg)
	if res.Sched.PatternRoutes == 0 {
		t.Error("pattern fast path never fired on a lightly congested circuit")
	}
}
