package detail_test

// Behavioral tests mirroring the paper's illustrative figures: the
// via-in-SUR cost (Fig. 13), stitch-aware net ordering (Fig. 14), and the
// escape-region reservation (Fig. 12). They live in an external test
// package so they can use the DRC, which itself depends on detail.

import (
	"testing"

	"stitchroute/internal/detail"
	"stitchroute/internal/drc"
	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/netlist"
	"stitchroute/internal/plan"
)

func shortPolygons(t *testing.T, c *netlist.Circuit, plans []*plan.NetPlan, cfg detail.Config) int {
	t.Helper()
	r := detail.NewRouter(c.Fabric, cfg)
	res := r.Run(c, plans)
	for i := range res.Routes {
		if !res.Routes[i].Routed {
			t.Fatalf("net %d failed", i)
		}
	}
	return drc.Check(c, res.Routes).ShortPolygons
}

// TestViaSURCostReducesShortPolygons mirrors Fig. 13: with β active, vias
// shift out of stitch-unfriendly regions, so a segment pinned to a SUR
// track produces no short polygon.
func TestViaSURCostReducesShortPolygons(t *testing.T) {
	build := func() (*netlist.Circuit, []*plan.NetPlan) {
		f := grid.New(60, 60, 3)
		n := &netlist.Net{ID: 0, Name: "a", Pins: []netlist.Pin{
			{Point: geom.Point{X: 10, Y: 20}, Layer: 1},
			{Point: geom.Point{X: 20, Y: 40}, Layer: 1},
		}}
		c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{n}}
		seg := &plan.GSeg{
			NetID: 0, Dir: geom.Vertical, Panel: 1,
			Span: geom.Interval{Lo: 1, Hi: 2}, Layer: 2,
			Tracks: []int{1, 1}, // SUR track x=16
		}
		return c, []*plan.NetPlan{{NetID: 0, Segs: []*plan.GSeg{seg}}}
	}
	c1, p1 := build()
	withBeta := shortPolygons(t, c1, p1, detail.DefaultConfig(true))
	c2, p2 := build()
	cfg := detail.DefaultConfig(true)
	cfg.Beta = 0
	cfg.Gamma = 0
	withoutBeta := shortPolygons(t, c2, p2, cfg)
	if withBeta > withoutBeta {
		t.Errorf("β increased SPs: %d vs %d", withBeta, withoutBeta)
	}
}

// TestNetOrderingConfigRespected mirrors Fig. 14: with bad-end ordering
// on, the net with recorded bad ends routes first and both still succeed.
func TestNetOrderingConfigRespected(t *testing.T) {
	f := grid.New(60, 60, 3)
	mk := func(id, x, badEnds int) (*netlist.Net, *plan.NetPlan) {
		n := &netlist.Net{ID: id, Name: "n", Pins: []netlist.Pin{
			{Point: geom.Point{X: x, Y: 5}, Layer: 1},
			{Point: geom.Point{X: x, Y: 50}, Layer: 1},
		}}
		return n, &plan.NetPlan{NetID: id, BadEnds: badEnds}
	}
	n0, p0 := mk(0, 5, 0)
	n1, p1 := mk(1, 9, 2)
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{n0, n1}}
	for _, ordered := range []bool{true, false} {
		cfg := detail.DefaultConfig(true)
		cfg.OrderByBadEnds = ordered
		r := detail.NewRouter(f, cfg)
		res := r.Run(c, []*plan.NetPlan{p0, p1})
		if !res.Routes[0].Routed || !res.Routes[1].Routed {
			t.Fatalf("ordered=%v: nets failed", ordered)
		}
	}
}

// TestEscapeRegionAvoidedWhenFree mirrors Fig. 12's resource reservation:
// with γ on, a net running parallel to a stitching line detours out of
// the escape region when a free track outside exists.
func TestEscapeRegionAvoidedWhenFree(t *testing.T) {
	f := grid.New(60, 60, 3)
	n := &netlist.Net{ID: 0, Name: "a", Pins: []netlist.Pin{
		{Point: geom.Point{X: 13, Y: 5}, Layer: 1},
		{Point: geom.Point{X: 13, Y: 50}, Layer: 1},
	}}
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{n}}
	r := detail.NewRouter(f, detail.DefaultConfig(true))
	res := r.Run(c, nil)
	if !res.Routes[0].Routed {
		t.Fatal("net failed")
	}
	for _, w := range res.Routes[0].Wires {
		if w.Orient == geom.Vertical && w.Span.Len() > 10 && f.InEscape(w.Fixed) {
			t.Errorf("long vertical run in escape region at x=%d", w.Fixed)
		}
	}
}

// TestEscapeCostCrossingScenario builds the two-pin-pair scenario of
// Fig. 12: pair A parallel to the stitch line, pair B crossing it. The
// stitch-aware router must route both without a short polygon.
func TestEscapeCostCrossingScenario(t *testing.T) {
	f := grid.New(60, 60, 3)
	a := &netlist.Net{ID: 0, Name: "A", Pins: []netlist.Pin{
		{Point: geom.Point{X: 17, Y: 10}, Layer: 1},
		{Point: geom.Point{X: 17, Y: 40}, Layer: 1},
	}}
	b := &netlist.Net{ID: 1, Name: "B", Pins: []netlist.Pin{
		{Point: geom.Point{X: 10, Y: 25}, Layer: 1},
		{Point: geom.Point{X: 25, Y: 25}, Layer: 1},
	}}
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{a, b}}
	r := detail.NewRouter(f, detail.DefaultConfig(true))
	res := r.Run(c, nil)
	rep := drc.Check(c, res.Routes)
	if rep.RoutedNets != 2 {
		t.Fatalf("routed %d/2", rep.RoutedNets)
	}
	if rep.ShortPolygons != 0 {
		t.Errorf("crossing scenario produced %d short polygons", rep.ShortPolygons)
	}
}
