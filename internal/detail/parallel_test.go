package detail_test

// Parallel-vs-sequential equivalence tests for the speculative
// scheduler (sched.go): Workers=1 and Workers=8 must produce
// byte-identical routed geometry — at the detail-router level (pure A*,
// no plans) and through the full pipeline on seeded harness circuits.
// Run these under the race detector (`make race-fast`) to also certify
// the frozen-grid/overlay concurrency argument; spec_test.go adds the
// high-congestion battery that forces the conflict-replay path.

import (
	"context"
	"fmt"
	"testing"

	"stitchroute/internal/bench"
	"stitchroute/internal/core"
	"stitchroute/internal/detail"
	"stitchroute/internal/global"
	"stitchroute/internal/harness"
	"stitchroute/internal/netlist"
	"stitchroute/internal/nlio"
	"stitchroute/internal/plan"
)

// routesHash hashes routed geometry, failing the test on error.
func routesHash(t testing.TB, routes []plan.NetRoute) string {
	t.Helper()
	h, err := nlio.RoutesHash(routes)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// detailInputs runs the pipeline up to detailed routing so the detail
// stage can be re-run in isolation with different worker counts.
func detailInputs(t testing.TB, c *netlist.Circuit, cfg core.Config) []*plan.NetPlan {
	t.Helper()
	gr := global.NewRouter(c.Fabric, cfg.Global)
	plans, err := gr.RouteAllContext(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := gr.RefineContext(context.Background(), c, plans, cfg.RefinePasses); err != nil {
		t.Fatal(err)
	}
	core.AssignLayers(c, plans, cfg.LayerAlgo)
	core.AssignTracks(c, plans, cfg.TrackAlgo)
	return plans
}

// runDetail routes the circuit's detail stage with the given worker count
// on a fresh router.
func runDetail(c *netlist.Circuit, plans []*plan.NetPlan, cfg detail.Config, workers int) *detail.Result {
	cfg.Workers = workers
	return detail.NewRouter(c.Fabric, cfg).Run(c, plans)
}

// TestParallelWorkersEquivalence asserts the tentpole property on seeded
// harness circuits: the full pipeline with Detail.Workers=8 produces the
// same nlio.RoutesHash as Detail.Workers=1, and the same search totals.
func TestParallelWorkersEquivalence(t *testing.T) {
	specs := harness.ShortGrid()
	if testing.Short() {
		specs = specs[:2]
	}
	for _, spec := range specs {
		spec := spec
		spec.Seed = 7
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			route := func(workers int) (*core.Result, string) {
				cfg := core.StitchAware()
				cfg.Detail.Workers = workers
				res, err := core.Route(harness.Generate(spec), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res, routesHash(t, res.Routes)
			}
			seq, seqHash := route(1)
			par, parHash := route(8)
			if seqHash != parHash {
				t.Errorf("Workers=8 diverged from Workers=1: %s vs %s", parHash[:12], seqHash[:12])
			}
			if seq.DetailConnects != par.DetailConnects || seq.DetailExpansions != par.DetailExpansions {
				t.Errorf("search statistics diverged: seq %d/%d vs par %d/%d connects/expansions",
					seq.DetailConnects, seq.DetailExpansions, par.DetailConnects, par.DetailExpansions)
			}
			if seq.FailedNets != par.FailedNets || seq.RippedNets != par.RippedNets {
				t.Errorf("failure accounting diverged: seq failed=%d ripped=%d, par failed=%d ripped=%d",
					seq.FailedNets, seq.RippedNets, par.FailedNets, par.RippedNets)
			}
		})
	}
}

// TestParallelDetailOnlyEquivalence drives the detail router directly
// (plans=nil, pure rip-up A* routing) across worker counts, including
// counts above the batch cap's worker fan-out, on a denser circuit than
// the full-pipeline test can afford under -race.
func TestParallelDetailOnlyEquivalence(t *testing.T) {
	spec := harness.ShortGrid()[0]
	spec.Seed = 11
	spec.Nets = 40
	c := harness.Generate(spec)
	cfg := detail.DefaultConfig(true)

	ref := runDetail(c, nil, cfg, 1)
	refHash := routesHash(t, ref.Routes)
	for _, workers := range []int{2, 3, 8, 16} {
		got := runDetail(harness.Generate(spec), nil, cfg, workers)
		if h := routesHash(t, got.Routes); h != refHash {
			t.Errorf("Workers=%d diverged from Workers=1: %s vs %s", workers, h[:12], refHash[:12])
		}
		if got.Expansions != ref.Expansions || got.Connects != ref.Connects {
			t.Errorf("Workers=%d stats diverged: %d/%d vs %d/%d connects/expansions",
				workers, got.Connects, got.Expansions, ref.Connects, ref.Expansions)
		}
	}
}

// TestParallelCancellation checks the per-batch cancellation contract: a
// pre-cancelled context routes nothing, and every net is recorded
// unrouted rather than dropped.
func TestParallelCancellation(t *testing.T) {
	spec := harness.ShortGrid()[0]
	spec.Seed = 3
	c := harness.Generate(spec)
	cfg := detail.DefaultConfig(true)
	cfg.Workers = 8
	r := detail.NewRouter(c.Fabric, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := r.RunContext(ctx, c, nil)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if len(res.Routes) != len(c.Nets) {
		t.Fatalf("cancelled run recorded %d routes for %d nets", len(res.Routes), len(c.Nets))
	}
	for i := range res.Routes {
		if res.Routes[i].Routed {
			t.Fatalf("net %d marked routed under a pre-cancelled context", i)
		}
	}
}

// BenchmarkDetailWorkers measures the detailed-routing stage of a golden
// circuit at 1/2/4/8 workers, reporting A* expansions per second. CI runs
// it with -benchtime=1x as a smoke test so the parallel path is exercised
// on every push.
func BenchmarkDetailWorkers(b *testing.B) {
	spec, err := bench.ByName("S9234")
	if err != nil {
		b.Fatal(err)
	}
	c := bench.Generate(spec)
	cfg := core.StitchAware()
	plans := detailInputs(b, c, cfg)

	var refHash string
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", workers), func(b *testing.B) {
			var expansions int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := runDetail(c, plans, cfg.Detail, workers)
				expansions += res.Expansions
				if h := routesHash(b, res.Routes); refHash == "" {
					refHash = h
				} else if h != refHash {
					b.Fatalf("Workers=%d diverged from reference geometry", workers)
				}
			}
			b.ReportMetric(float64(expansions)/b.Elapsed().Seconds(), "expansions/s")
		})
	}
}
