package detail

import (
	"testing"

	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/netlist"
	"stitchroute/internal/plan"
)

func fabric() *grid.Fabric { return grid.New(60, 60, 3) }

func mkNet(id int, pts ...geom.Point) *netlist.Net {
	n := &netlist.Net{ID: id, Name: "n"}
	for _, p := range pts {
		n.Pins = append(n.Pins, netlist.Pin{Point: p, Layer: 1})
	}
	return n
}

// connected reports whether all pins of the net are connected by its
// routed geometry (wires sharing cells on a layer, vias linking layers).
func connected(rt plan.NetRoute, net *netlist.Net) bool {
	cells := map[cell]int{} // cell -> component (DSU over ints)
	parent := []int{}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	touch := func(c cell) int {
		if id, ok := cells[c]; ok {
			return id
		}
		id := len(parent)
		parent = append(parent, id)
		cells[c] = id
		return id
	}
	for _, w := range rt.Wires {
		var prev = -1
		forEachCell(w, func(c cell) {
			id := touch(c)
			if prev >= 0 {
				union(prev, id)
			}
			prev = id
		})
	}
	for _, v := range rt.Vias {
		a, okA := cells[cell{v.X, v.Y, v.Layer - 1}]
		b, okB := cells[cell{v.X, v.Y, v.Layer}]
		if okA && okB {
			union(a, b)
		}
	}
	root := -1
	for _, p := range net.Pins {
		id, ok := cells[cell{p.X, p.Y, p.Layer - 1}]
		if !ok {
			return len(net.Pins) == 1
		}
		if root == -1 {
			root = find(id)
		} else if find(id) != root {
			return false
		}
	}
	return true
}

func TestSimpleTwoPin(t *testing.T) {
	f := fabric()
	r := NewRouter(f, DefaultConfig(true))
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{
		mkNet(0, geom.Point{X: 2, Y: 2}, geom.Point{X: 12, Y: 9}),
	}}
	res := r.Run(c, nil)
	if res.Failed != 0 {
		t.Fatalf("failed = %d", res.Failed)
	}
	if !res.Routes[0].Routed {
		t.Fatal("net not routed")
	}
	if !connected(res.Routes[0], c.Nets[0]) {
		t.Error("pins not connected")
	}
}

func TestCrossStitchNet(t *testing.T) {
	f := fabric()
	r := NewRouter(f, DefaultConfig(true))
	// Pins on opposite sides of the stitching line at x=15.
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{
		mkNet(0, geom.Point{X: 10, Y: 5}, geom.Point{X: 20, Y: 25}),
	}}
	res := r.Run(c, nil)
	if !res.Routes[0].Routed || !connected(res.Routes[0], c.Nets[0]) {
		t.Fatal("cross-stitch net not routed")
	}
	// Hard constraints on the result.
	for _, w := range res.Routes[0].Wires {
		if w.Orient == geom.Vertical && f.IsStitchCol(w.Fixed) && w.Span.Len() > 1 {
			t.Errorf("vertical wire on stitching column: %v", w)
		}
	}
	for _, v := range res.Routes[0].Vias {
		if f.IsStitchCol(v.X) {
			t.Errorf("via on stitching column: %+v", v)
		}
	}
}

func TestPinOnStitchColumnEscapes(t *testing.T) {
	f := fabric()
	r := NewRouter(f, DefaultConfig(true))
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{
		mkNet(0, geom.Point{X: 15, Y: 5}, geom.Point{X: 25, Y: 40}),
	}}
	res := r.Run(c, nil)
	if !res.Routes[0].Routed || !connected(res.Routes[0], c.Nets[0]) {
		t.Fatal("net with stitch-column pin not routed")
	}
	// Any via on the stitch column must be at the pin itself.
	for _, v := range res.Routes[0].Vias {
		if f.IsStitchCol(v.X) && !(v.X == 15 && v.Y == 5) {
			t.Errorf("via violation away from pin: %+v", v)
		}
	}
}

func TestPlannedSegmentsUsed(t *testing.T) {
	f := fabric()
	r := NewRouter(f, DefaultConfig(true))
	net := mkNet(3, geom.Point{X: 5, Y: 5}, geom.Point{X: 5, Y: 50})
	// Planned vertical segment in panel 0 layer 2 track 5 covering tile
	// rows 0..3 (y 0..59).
	seg := &plan.GSeg{
		NetID: 3, Dir: geom.Vertical, Panel: 0,
		Span: geom.Interval{Lo: 0, Hi: 3}, Layer: 2,
		Tracks: []int{5, 5, 5, 5},
	}
	p := &plan.NetPlan{NetID: 3, Segs: []*plan.GSeg{seg}}
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{net}}
	res := r.Run(c, []*plan.NetPlan{p})
	if !res.Routes[0].Routed || !connected(res.Routes[0], net) {
		t.Fatal("planned net not routed")
	}
	// The planned x=5 vertical wire should appear in the geometry.
	foundPlanned := false
	for _, w := range res.Routes[0].Wires {
		if w.Orient == geom.Vertical && w.Layer == 2 && w.Fixed == 5 && w.Span.Len() > 20 {
			foundPlanned = true
		}
	}
	if !foundPlanned {
		t.Error("planned segment not present in final geometry")
	}
	if res.Ripped != 0 {
		t.Errorf("ripped = %d", res.Ripped)
	}
}

func TestDoglegMaterialization(t *testing.T) {
	f := fabric()
	r := NewRouter(f, DefaultConfig(true))
	net := mkNet(0, geom.Point{X: 3, Y: 3}, geom.Point{X: 9, Y: 55})
	seg := &plan.GSeg{
		NetID: 0, Dir: geom.Vertical, Panel: 0,
		Span: geom.Interval{Lo: 0, Hi: 3}, Layer: 2,
		Tracks: []int{3, 3, 9, 9}, // dogleg between rows 1 and 2
	}
	p := &plan.NetPlan{NetID: 0, Segs: []*plan.GSeg{seg}}
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{net}}
	res := r.Run(c, []*plan.NetPlan{p})
	if !res.Routes[0].Routed || !connected(res.Routes[0], net) {
		t.Fatal("dogleg net not routed")
	}
}

func TestBlockedNetRipsAndReroutes(t *testing.T) {
	f := fabric()
	r := NewRouter(f, DefaultConfig(true))
	// Net 0's planned segment collides with net 1's (same panel, same
	// track, overlapping rows): the second materialization drops the wire;
	// both nets must still route.
	mk := func(id int) (*netlist.Net, *plan.NetPlan) {
		n := mkNet(id, geom.Point{X: 3 + id, Y: 3}, geom.Point{X: 3 + id, Y: 40})
		seg := &plan.GSeg{
			NetID: id, Dir: geom.Vertical, Panel: 0,
			Span: geom.Interval{Lo: 0, Hi: 2}, Layer: 2,
			Tracks: []int{7, 7, 7},
		}
		return n, &plan.NetPlan{NetID: id, Segs: []*plan.GSeg{seg}}
	}
	n0, p0 := mk(0)
	n1, p1 := mk(1)
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{n0, n1}}
	res := r.Run(c, []*plan.NetPlan{p0, p1})
	for i := range res.Routes {
		if !res.Routes[i].Routed || !connected(res.Routes[i], c.Nets[i]) {
			t.Fatalf("net %d not routed after conflict", i)
		}
	}
}

func TestTrimRemovesDanglingEnds(t *testing.T) {
	f := fabric()
	r := NewRouter(f, DefaultConfig(true))
	// Planned segment spans 4 tile rows (y up to 59) but both pins sit in
	// the middle; trim should cut the tails.
	net := mkNet(0, geom.Point{X: 4, Y: 20}, geom.Point{X: 8, Y: 33})
	seg := &plan.GSeg{
		NetID: 0, Dir: geom.Vertical, Panel: 0,
		Span: geom.Interval{Lo: 0, Hi: 3}, Layer: 2,
		Tracks: []int{6, 6, 6, 6},
	}
	p := &plan.NetPlan{NetID: 0, Segs: []*plan.GSeg{seg}}
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{net}}
	res := r.Run(c, []*plan.NetPlan{p})
	if !res.Routes[0].Routed {
		t.Fatal("not routed")
	}
	for _, w := range res.Routes[0].Wires {
		if w.Orient == geom.Vertical && w.Fixed == 6 && w.Layer == 2 {
			if w.Span.Lo < 15 || w.Span.Hi > 38 {
				t.Errorf("dangling tail not trimmed: %v", w)
			}
		}
	}
	if !connected(res.Routes[0], net) {
		t.Error("trim disconnected the net")
	}
}

func TestOccupancyConsistentAfterRun(t *testing.T) {
	f := fabric()
	r := NewRouter(f, DefaultConfig(true))
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{
		mkNet(0, geom.Point{X: 2, Y: 2}, geom.Point{X: 40, Y: 40}),
		mkNet(1, geom.Point{X: 2, Y: 40}, geom.Point{X: 40, Y: 2}),
		mkNet(2, geom.Point{X: 20, Y: 2}, geom.Point{X: 20, Y: 55}),
	}}
	res := r.Run(c, nil)
	// Rebuild expected occupancy from the reported geometry and compare:
	// every wire cell must be owned by its net.
	for i := range res.Routes {
		id := int32(res.Routes[i].NetID)
		for _, w := range res.Routes[i].Wires {
			forEachCell(w, func(cl cell) {
				got := r.occ[r.idx(cl.x, cl.y, cl.l)]
				if got != id+1 {
					t.Fatalf("cell %v of net %d owned by %d", cl, id, got-1)
				}
			})
		}
	}
	// No two nets share a cell (implied by the above since occ is single-
	// valued, but check wires pairwise for overlap anyway).
	seen := map[cell]int{}
	for i := range res.Routes {
		for _, w := range res.Routes[i].Wires {
			forEachCell(w, func(cl cell) {
				if prev, ok := seen[cl]; ok && prev != i {
					t.Fatalf("nets %d and %d overlap at %v", prev, i, cl)
				}
				seen[cl] = i
			})
		}
	}
}

func TestMergedWires(t *testing.T) {
	wires := []geom.Segment{
		geom.HSeg(1, 5, 0, 4),
		geom.HSeg(1, 5, 5, 9),   // touching -> merge
		geom.HSeg(1, 5, 20, 25), // separate
		geom.VSeg(2, 3, 0, 4),
	}
	m := MergedWires(wires)
	if len(m) != 3 {
		t.Fatalf("merged to %d wires, want 3: %v", len(m), m)
	}
	var found bool
	for _, w := range m {
		if w.Orient == geom.Horizontal && w.Span == (geom.Interval{Lo: 0, Hi: 9}) {
			found = true
		}
	}
	if !found {
		t.Error("touching wires not merged")
	}
}

func TestWirelength(t *testing.T) {
	routes := []plan.NetRoute{{
		Wires: []geom.Segment{
			geom.HSeg(1, 5, 0, 4),  // length 4
			geom.HSeg(1, 5, 2, 8),  // overlaps -> merged to 0..8 (length 8)
			geom.VSeg(2, 3, 0, 10), // length 10
		},
	}}
	if got := Wirelength(routes); got != 18 {
		t.Errorf("wirelength = %d, want 18", got)
	}
}

func TestUnroutableNetReported(t *testing.T) {
	f := grid.New(30, 30, 1) // single layer: no via escape
	r := NewRouter(f, DefaultConfig(true))
	// A wall of pins across row 10 splits the chip; net 0 cannot cross.
	var wallPts []geom.Point
	for x := 0; x < 30; x++ {
		wallPts = append(wallPts, geom.Point{X: x, Y: 10})
	}
	blocker := mkNet(1, wallPts...)
	target := mkNet(0, geom.Point{X: 5, Y: 2}, geom.Point{X: 5, Y: 25})
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{target, blocker}}
	res := r.Run(c, nil)
	if res.Routes[0].Routed {
		t.Error("impossible net reported routed")
	}
	if res.Failed != 1 {
		t.Errorf("failed = %d, want 1", res.Failed)
	}
	if len(res.Routes[0].Wires) != 0 {
		t.Error("failed net left geometry behind")
	}
	if !res.Routes[1].Routed {
		t.Error("wall net should route along itself")
	}
}

func TestSearchStatsReported(t *testing.T) {
	f := fabric()
	r := NewRouter(f, DefaultConfig(true))
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{
		mkNet(0, geom.Point{X: 2, Y: 2}, geom.Point{X: 40, Y: 40}),
	}}
	res := r.Run(c, nil)
	if res.Connects == 0 {
		t.Error("no connects counted")
	}
	if res.Expansions == 0 {
		t.Error("no expansions counted")
	}
}

func TestNegotiationRecoversFailedNet(t *testing.T) {
	// One horizontal layer. The blocker (smaller HPWL, routed first)
	// snakes across the target's only corridor; plain rip-up cannot fix
	// the target, negotiation evicts the blocker and reroutes both.
	f := grid.New(30, 30, 1)
	// Blocker: a short net whose direct route crosses column 5 rows 2..25.
	blocker := mkNet(1, geom.Point{X: 4, Y: 14}, geom.Point{X: 7, Y: 14})
	target := mkNet(0, geom.Point{X: 5, Y: 2}, geom.Point{X: 5, Y: 25})
	// Wall pins force the target through column 4..7 at row 14: block
	// every other column at that row with reserved pins of a third net.
	var wallPts []geom.Point
	for x := 0; x < 30; x++ {
		if x < 4 || x > 7 {
			wallPts = append(wallPts, geom.Point{X: x, Y: 14})
		}
	}
	wall := mkNet(2, wallPts...)
	run := func(negotiate bool) *Result {
		cfg := DefaultConfig(true)
		cfg.Negotiate = negotiate
		r := NewRouter(f, cfg)
		c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{target, blocker, wall}}
		return r.Run(c, nil)
	}
	without := run(false)
	with := run(true)
	if with.Failed > without.Failed {
		t.Errorf("negotiation increased failures: %d > %d", with.Failed, without.Failed)
	}
	// Consistency: every net's final record matches its geometry.
	for i, rt := range with.Routes {
		if rt.Routed && len(rt.Wires) == 0 {
			t.Errorf("net %d marked routed without geometry", i)
		}
		if !rt.Routed && len(rt.Wires) != 0 {
			t.Errorf("net %d marked failed with geometry", i)
		}
	}
}

func TestNegotiationConsistencyUnderPressure(t *testing.T) {
	// Saturated single-layer instance: negotiation must keep occupancy and
	// result records consistent even when swaps fail.
	// 20 horizontal nets on a single layer with only 10 distinct rows:
	// at least half must fail, exercising negotiation heavily.
	f := grid.New(45, 30, 1)
	var nets []*netlist.Net
	for i := 0; i < 20; i++ {
		nets = append(nets, mkNet(i,
			geom.Point{X: 1 + i/10, Y: 2 * (i % 10)}, geom.Point{X: 40 + i/10, Y: 2*(i%10) + 1}))
	}
	cfg := DefaultConfig(true)
	cfg.Negotiate = true
	r := NewRouter(f, cfg)
	c := &netlist.Circuit{Name: "press", Fabric: f, Nets: nets}
	res := r.Run(c, nil)
	// Geometry of routed nets must still be mutually exclusive.
	seen := map[cell]int{}
	for i := range res.Routes {
		for _, w := range res.Routes[i].Wires {
			forEachCell(w, func(cl cell) {
				if prev, ok := seen[cl]; ok && prev != i {
					t.Fatalf("nets %d and %d overlap at %v after negotiation", prev, i, cl)
				}
				seen[cl] = i
			})
		}
	}
	routed := 0
	for _, rt := range res.Routes {
		if rt.Routed {
			routed++
		}
	}
	if routed+res.Failed != len(nets) {
		t.Errorf("routed %d + failed %d != %d", routed, res.Failed, len(nets))
	}
}
