package detail

import (
	"context"
	"sort"

	"stitchroute/internal/netlist"
	"stitchroute/internal/plan"
)

// Patch describes a graft reroute: the parent run's final per-net
// geometry for the nets kept verbatim, and the set of net IDs to rip up
// and route afresh against that committed grid. Unlike the memoized
// replay (RunMemo), a patch does not re-execute the cold pipeline — it
// reconstructs the parent's final occupancy, removes only the dirty
// nets, and routes them in the leftover space, so its cost scales with
// the edit, not the circuit. The result is deterministic and
// DRC-checkable but not byte-identical to a cold reroute in general.
type Patch struct {
	// Dirty is the set of net IDs to rip up and re-route. Every net of
	// the circuit not in Dirty must have an entry in Keep.
	Dirty map[int]bool
	// Keep maps net ID to the parent's final route, grafted verbatim.
	Keep map[int]plan.NetRoute
	// FreedPins maps net ID to the parent's freed-pin record: pin
	// reservations the parent run released (covered by another net or
	// by a ripped transient path). Kept nets do not re-reserve them.
	FreedPins map[int][]Cell
}

// RunPatch stamps the kept nets' committed geometry into a fresh grid,
// reserves pins and candidates for the dirty nets only, and routes the
// dirty nets sequentially in the stitch-aware order. The second return
// is the number of nets grafted without a search.
func (r *Router) RunPatch(ctx context.Context, c *netlist.Circuit, plans []*plan.NetPlan, p *Patch) (*Result, int, error) {
	res := &Result{Routes: make([]plan.NetRoute, len(c.Nets))}

	nets := make([]*routeTask, len(c.Nets))
	var dirtyTasks []*routeTask
	for i, n := range c.Nets {
		var np *plan.NetPlan
		if plans != nil {
			np = plans[i]
		}
		t := &routeTask{net: n, plan: np, slot: i}
		for _, pin := range n.Pins {
			if !t.pinCells.has(pin.X, pin.Y) {
				t.pinCells = append(t.pinCells, pinKey(pin.X, pin.Y))
			}
		}
		nets[i] = t
		if p.Dirty[n.ID] {
			dirtyTasks = append(dirtyTasks, t)
		} else if _, ok := p.Keep[n.ID]; !ok {
			// No committed geometry to graft — route it live.
			p.Dirty[n.ID] = true
			dirtyTasks = append(dirtyTasks, t)
		}
	}

	// Stamp the kept nets' final geometry: wires first, then the pin
	// reservations the parent still held at the end (freed pins stay
	// free — their release is part of the committed state).
	for _, t := range nets {
		id := t.net.ID
		if p.Dirty[id] {
			continue
		}
		kr := p.Keep[id]
		for _, w := range kr.Wires {
			r.markWire(nil, w, int32(id))
		}
		freed := p.FreedPins[id]
		for _, pin := range t.net.Pins {
			cl := Cell{X: pin.X, Y: pin.Y, L: pin.Layer - 1}
			wasFreed := false
			for _, f := range freed {
				if f == cl {
					wasFreed = true
					break
				}
			}
			if !wasFreed {
				if i := r.idx(cl.X, cl.Y, cl.L); r.occ[i] == 0 {
					r.occ[i] = int32(id) + 1
				}
			}
		}
		t.wires = kr.Wires
		t.vias = kr.Vias
		t.freedPins = append([]Cell(nil), freed...)
		res.Routes[t.slot] = kr
	}

	// Dirty nets go through the normal cold prepare: pin + escape
	// reservation, then candidate materialization, both against the
	// grafted grid.
	for _, t := range dirtyTasks {
		for _, pin := range t.net.Pins {
			i := r.idx(pin.X, pin.Y, pin.Layer-1)
			if r.occ[i] == 0 {
				r.occ[i] = int32(t.net.ID) + 1
			}
			if pin.Layer < r.L {
				up := r.idx(pin.X, pin.Y, pin.Layer)
				if r.occ[up] == 0 {
					r.occ[up] = int32(t.net.ID) + 1
					t.escapes = append(t.escapes, cell{pin.X, pin.Y, pin.Layer})
				}
			}
		}
	}
	for _, t := range dirtyTasks {
		r.materialize(t)
	}

	order := make([]*routeTask, len(dirtyTasks))
	copy(order, dirtyTasks)
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := order[a], order[b]
		la, lb := ta.level(), tb.level()
		if la != lb {
			return la < lb
		}
		if r.cfg.OrderByBadEnds {
			ba, bb := ta.badEnds(), tb.badEnds()
			if ba != bb {
				return ba > bb
			}
		}
		ha, hb := ta.net.HPWL(), tb.net.HPWL()
		if ha != hb {
			return ha < hb
		}
		return ta.net.ID < tb.net.ID
	})

	record := func(t *routeTask, routed bool) {
		res.Routes[t.slot] = plan.NetRoute{
			NetID:  t.net.ID,
			Routed: routed,
			Wires:  t.wires,
			Vias:   t.vias,
		}
	}
	sc := r.arena(0)
	for oi, t := range order {
		if err := ctx.Err(); err != nil {
			for _, rest := range order[oi:] {
				record(rest, false)
			}
			r.finish(res, nets)
			return res, len(nets) - len(dirtyTasks), err
		}
		// Negotiation victims are restricted to the dirty set: a graft
		// must not disturb kept geometry.
		r.routeOne(sc, t, dirtyTasks, res, record)
	}
	r.finish(res, nets)
	return res, len(nets) - len(dirtyTasks), nil
}
