package detail

// Bidirectional A* (Config.Bidi). Two frontiers — forward from the
// source component, backward from the target component — expand in
// lockstep inside the same window, each with its own node arena and
// heap, and meet in the middle. The move costs of eq. (10) are
// symmetric (x/y move costs depend only on the layer and the shared
// column, via costs only on the column), so the search graph is
// undirected and the backward search explores the same edge weights the
// forward one would.
//
// Meeting rule: whenever one direction improves a node the other
// direction has already reached, the concatenated cost dF(v) + dB(v) is
// a candidate path; μ tracks the best candidate and its meet node.
// Termination: with both per-direction heuristics admissible and
// consistent, once the chosen frontier's minimum f-value reaches μ no
// unexpanded node of that frontier can lie on a cheaper path, and every
// undiscovered s–t path crosses each frontier — so μ is optimal and the
// search stops. Within-tie meet choices can differ from the
// unidirectional search's tie-breaks, which is exactly why Bidi is an
// opt-in mode (see Config).
//
// Like astar, the function allocates nothing in steady state: both node
// arenas, both heaps, and both heuristic tables live in the searchCtx.

import (
	"math"

	"stitchroute/internal/geom"
)

// bidiAstar searches the window from both ends using the arena sc.
// Returns the source-to-target path on success.
func (r *Router) bidiAstar(sc *searchCtx, t *routeTask, src, targets []cell, win geom.Rect) ([]cell, bool) {
	sc.connects++
	W := win.W()
	H := win.H()
	L := r.L
	n := W * H * L
	sc.grow(n)
	sc.growB(n)
	sc.curStamp++
	if sc.curStamp > 0x7fff {
		// Same epoch-wrap reset as astar, over both direction arenas.
		for i := range sc.nodes {
			sc.nodes[i] = nodeState{}
		}
		for i := range sc.nodesB {
			sc.nodesB[i] = nodeState{}
		}
		sc.curStamp = 1
	}
	stamp := int16(sc.curStamp)
	id := int32(t.net.ID)
	f := r.f
	cfg := &r.cfg

	lidx := func(c cell) int { return (c.l*H+(c.y-win.Y0))*W + (c.x - win.X0) }
	inWin := func(x, y int) bool { return x >= win.X0 && x <= win.X1 && y >= win.Y0 && y <= win.Y1 }
	nodesF, nodesB := sc.nodes, sc.nodesB

	// Per-direction heuristic tables: the forward search aims at the
	// target bounding box, the backward search at the source box.
	tb := cellBBox(targets)
	sb := cellBBox(src)
	if len(sc.hx) < W {
		sc.hx = make([]int32, W)
	}
	if len(sc.hy) < H {
		sc.hy = make([]int32, H)
	}
	if len(sc.hxB) < W {
		sc.hxB = make([]int32, W)
	}
	if len(sc.hyB) < H {
		sc.hyB = make([]int32, H)
	}
	for wx := 0; wx < W; wx++ {
		x := wx + win.X0
		df, db := 0, 0
		if x < tb.X0 {
			df = tb.X0 - x
		} else if x > tb.X1 {
			df = x - tb.X1
		}
		if x < sb.X0 {
			db = sb.X0 - x
		} else if x > sb.X1 {
			db = x - sb.X1
		}
		sc.hx[wx] = int32(df)
		sc.hxB[wx] = int32(db)
	}
	for wy := 0; wy < H; wy++ {
		y := wy + win.Y0
		df, db := 0, 0
		if y < tb.Y0 {
			df = tb.Y0 - y
		} else if y > tb.Y1 {
			df = y - tb.Y1
		}
		if y < sb.Y0 {
			db = sb.Y0 - y
		} else if y > sb.Y1 {
			db = y - sb.Y1
		}
		sc.hy[wy] = int32(df)
		sc.hyB[wy] = int32(db)
	}
	hxF, hyF, hxB, hyB := sc.hx, sc.hy, sc.hxB, sc.hyB

	// Per-layer axis move costs, shared by both directions (symmetric).
	if len(sc.costXl) < L {
		sc.costXl = make([]float64, L)
		sc.costYl = make([]float64, L)
	}
	for l := 0; l < L; l++ {
		preferred := f.LayerDir(l + 1)
		cx, cy := cfg.Alpha, cfg.Alpha
		if preferred != geom.Horizontal {
			cx *= cfg.WrongWay
		}
		if preferred != geom.Vertical {
			cy *= cfg.WrongWay
		}
		sc.costXl[l] = cx
		sc.costYl[l] = cy
	}
	costXl, costYl := sc.costXl, sc.costYl

	packOK := W <= 1<<12 && H <= 1<<12 && L <= 1<<8
	pack := func(x, y, l int) uint32 {
		if !packOK {
			return 0
		}
		return uint32(x-win.X0) | uint32(y-win.Y0)<<12 | uint32(l)<<24
	}

	pqF, pqB := &sc.heap, &sc.heapB
	pqF.reset()
	pqB.reset()

	mu := math.Inf(1)
	var meet cell
	found := false
	// tryMeet records a candidate path through a node both directions
	// have reached. Strict improvement keeps the meet choice
	// deterministic under the fixed relaxation order.
	tryMeet := func(i, x, y, l int) {
		if nodesF[i].stamp == stamp && nodesB[i].stamp == stamp {
			if cand := nodesF[i].dist + nodesB[i].dist; cand < mu-1e-12 {
				mu = cand
				meet = cell{x, y, l}
				found = true
			}
		}
	}
	// visit relaxes window cell i for one direction.
	visit := func(fwd bool, i, x, y, l int, d float64, mv int8) {
		nodes, pq, hx, hy := nodesF, pqF, hxF, hyF
		if !fwd {
			nodes, pq, hx, hy = nodesB, pqB, hxB, hyB
		}
		nd := &nodes[i]
		if nd.stamp != stamp || d < nd.dist-1e-12 {
			nd.stamp = stamp
			nd.dist = d
			nd.prevMv = mv
			pq.push(i, pack(x, y, l), d+cfg.Alpha*float64(hx[x-win.X0]+hy[y-win.Y0]))
			tryMeet(i, x, y, l)
		}
	}
	// Seed the backward frontier first so forward seeding can already
	// meet it (a source cell adjacent to — or identical to — a target).
	for _, c := range targets {
		if inWin(c.x, c.y) {
			visit(false, lidx(c), c.x, c.y, c.l, 0, mvNone)
		}
	}
	if pqB.len() == 0 {
		return nil, false
	}
	for _, c := range src {
		if inWin(c.x, c.y) {
			visit(true, lidx(c), c.x, c.y, c.l, 0, mvNone)
		}
	}

	pinCells := t.pinCells
	colFlags := r.colFlags
	occ := r.occ
	costZCol := r.costZCol
	X, XY := r.X, r.X*r.Y
	id1 := id + 1
	free := func(g int) bool { o := occ[g]; return o == 0 || o == id1 }

	expansions := 0
	for pqF.len() > 0 || pqB.len() > 0 {
		// Expand the frontier with the smaller minimum f (forward on
		// ties) — a deterministic alternation that keeps both searches
		// balanced without depending on node counts.
		fwd := pqF.len() > 0
		if fwd && pqB.len() > 0 && pqB.e[0].prio < pqF.e[0].prio {
			fwd = false
		}
		pq, nodes, hx, hy := pqF, nodesF, hxF, hyF
		if !fwd {
			pq, nodes, hx, hy = pqB, nodesB, hxB, hyB
		}
		i, pos, fval := pq.pop()
		var x, y, l int
		if packOK {
			x = int(pos&0xfff) + win.X0
			y = int(pos>>12&0xfff) + win.Y0
			l = int(pos >> 24)
		} else {
			x = i%W + win.X0
			y = (i/W)%H + win.Y0
			l = i / (W * H)
		}
		nd := &nodes[i]
		hv := cfg.Alpha * float64(hx[x-win.X0]+hy[y-win.Y0])
		if nd.stamp != stamp || fval-hv > nd.dist+1e-9 {
			continue
		}
		// Termination: the chosen frontier's minimum f has reached μ, so
		// no remaining node of this frontier — and a fortiori none of
		// the other, larger-f frontier when it was the smaller one — can
		// improve on the recorded meet.
		if found && fval >= mu-1e-12 {
			break
		}
		// ECO act: both frontiers' pops read occupancy at neighbours.
		if t.sact != nil {
			ab := (y>>actTileShift)*r.atw + x>>actTileShift
			t.sact[ab>>6] |= 1 << (uint(ab) & 63)
		}
		expansions++
		sc.expansions++
		if expansions > cfg.MaxExpansions {
			break
		}
		d := nd.dist
		flags := colFlags[x]
		gi := (l*r.Y+y)*X + x

		costX := costXl[l]
		if x+1 <= win.X1 && free(gi+1) {
			visit(fwd, i+1, x+1, y, l, d+costX, mvXPos)
		}
		if x-1 >= win.X0 && free(gi-1) {
			visit(fwd, i-1, x-1, y, l, d+costX, mvXNeg)
		}
		if flags&colStitch == 0 {
			costY := costYl[l]
			if cfg.StitchAware && flags&colEscape != 0 {
				costY += cfg.Gamma
			}
			if y+1 <= win.Y1 && free(gi+X) {
				visit(fwd, i+W, x, y+1, l, d+costY, mvYPos)
			}
			if y-1 >= win.Y0 && free(gi-X) {
				visit(fwd, i-W, x, y-1, l, d+costY, mvYNeg)
			}
		}
		if flags&colStitch == 0 || pinCells.has(x, y) {
			costZ := costZCol[x]
			if l+1 < L && free(gi+XY) {
				visit(fwd, i+W*H, x, y, l+1, d+costZ, mvZPos)
			}
			if l-1 >= 0 && free(gi-XY) {
				visit(fwd, i-W*H, x, y, l-1, d+costZ, mvZNeg)
			}
		}
	}
	if !found {
		return nil, false
	}

	// Reconstruction. Both directions record the move taken into a cell
	// from its predecessor (which lies toward that direction's seeds),
	// so undoing forward moves from the meet walks to a source cell, and
	// undoing backward moves walks to a target cell.
	rev := sc.rev[:0]
	c := meet
	for {
		rev = append(rev, c)
		mv := nodesF[lidx(c)].prevMv
		if mv == mvNone {
			break
		}
		switch mv {
		case mvXPos:
			c.x--
		case mvXNeg:
			c.x++
		case mvYPos:
			c.y--
		case mvYNeg:
			c.y++
		case mvZPos:
			c.l--
		case mvZNeg:
			c.l++
		}
		if len(rev) > 4*(n+4) {
			sc.rev = rev
			return nil, false // corrupt backtrace; fail safe
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	c = meet
	for {
		mv := nodesB[lidx(c)].prevMv
		if mv == mvNone {
			break
		}
		switch mv {
		case mvXPos:
			c.x--
		case mvXNeg:
			c.x++
		case mvYPos:
			c.y--
		case mvYNeg:
			c.y++
		case mvZPos:
			c.l--
		case mvZNeg:
			c.l++
		}
		rev = append(rev, c)
		if len(rev) > 4*(n+4) {
			sc.rev = rev
			return nil, false
		}
	}
	sc.rev = rev
	return rev, true
}
