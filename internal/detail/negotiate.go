package detail

import (
	"sort"

	"stitchroute/internal/geom"
)

// Negotiation: when a net still fails after its own rip-up, the router
// may evict a few small nets blocking its bounding box, route the failed
// net, and then reroute the victims. This trades a little CPU for the
// last fraction of routability; it is optional (Config.Negotiate) and
// bounded (maxVictims per failed net, one round).

// maxVictims bounds how many blocking nets one failed net may evict.
const maxVictims = 3

// negotiate tries to place the failed net t by evicting up to maxVictims
// small nets inside its region, then rerouting them. It returns whether t
// ended up routed, plus every victim whose geometry changed (the caller
// refreshes their result entries).
func (r *Router) negotiate(sc *searchCtx, t *routeTask, tasks []*routeTask) (bool, []*routeTask) {
	region := t.pinBBox().Expand(8).Intersect(r.f.Bounds())

	// Collect candidate victims: routed nets with geometry in the region,
	// smallest wirelength first (cheapest to move).
	type victim struct {
		task *routeTask
		size int
	}
	var victims []victim
	seen := map[int]bool{t.net.ID: true}
	for _, o := range tasks {
		if seen[o.net.ID] || len(o.wires) == 0 {
			continue
		}
		inRegion := false
		size := 0
		for _, w := range o.wires {
			size += w.Span.Len()
			if w.Bounds().Overlaps(region) {
				inRegion = true
			}
		}
		if inRegion {
			seen[o.net.ID] = true
			victims = append(victims, victim{o, size})
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].size != victims[j].size {
			return victims[i].size < victims[j].size
		}
		return victims[i].task.net.ID < victims[j].task.net.ID
	})
	if len(victims) > maxVictims {
		victims = victims[:maxVictims]
	}
	if len(victims) == 0 {
		return false, nil
	}
	var affected []*routeTask
	for _, v := range victims {
		affected = append(affected, v.task)
	}

	// Evict, place the failed net, reroute the victims. Negotiation runs
	// only on the sequential lane (the scheduler never speculates it —
	// it mutates other nets' tasks), so sc's overlay is off and these
	// writes hit the grid directly.
	for _, v := range victims {
		r.clearNet(sc, v.task)
		v.task.wires = nil
		v.task.vias = nil
	}
	restore := func() {
		for _, v := range victims {
			if len(v.task.wires) == 0 {
				if r.routeNet(sc, v.task, r.f.Bounds()) == netRouted {
					r.trimNet(sc, v.task)
				} else {
					r.clearNet(sc, v.task)
					v.task.wires = nil
					v.task.vias = nil
				}
			}
		}
	}
	if r.routeNet(sc, t, r.f.Bounds()) != netRouted {
		r.clearNet(sc, t)
		t.wires = nil
		t.vias = nil
		restore()
		return false, affected
	}
	r.trimNet(sc, t)
	restore()
	return true, affected
}

func (t *routeTask) pinBBox() geom.Rect {
	pts := make([]geom.Point, len(t.net.Pins))
	for i, p := range t.net.Pins {
		pts[i] = p.Point
	}
	return geom.BoundingRect(pts)
}
