// Package detail implements stitch-aware detailed routing (§III-D).
//
// The detailed router works on the full track grid (x, y, layer). It first
// materializes the wires planned by layer/track assignment, then connects
// each net's pins and planned segments with A* searches (pin-to-segment and
// segment-to-segment routing); nets that fail are ripped up and routed
// directly, completing the second bottom-up pass of the framework.
//
// The grid cost follows eq. (10):
//
//	C(j) = C(i) + α·C_wl + β·C_vsu + γ·C_esc
//
// where C_vsu charges vias (z-moves) inside stitch-unfriendly regions and
// C_esc charges vertical occupation of the escape region — the four tracks
// nearest a stitching line, reserved for paths that must cross it. Hard
// constraints always hold: wires may cross stitching lines only in the
// x-direction, and vias may sit on a stitching line only at fixed pins.
// Stitch-aware net ordering routes nets with more bad ends first, giving
// them the resources to escape their stitch-unfriendly line ends.
package detail

import (
	"context"
	"runtime"
	"sort"

	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/netlist"
	"stitchroute/internal/plan"
)

// Config controls the detailed router.
type Config struct {
	// StitchAware enables the β/γ cost terms and bad-end net ordering.
	// Hard constraints (no vertical routing and no vias on stitching
	// lines) hold in both modes, as in the paper's baseline.
	StitchAware bool
	// Alpha, Beta, Gamma are the eq. (10) weights (paper: 1, 10, 5).
	Alpha, Beta, Gamma float64
	// ViaCost is the base cost of a z-move.
	ViaCost float64
	// WrongWay multiplies Alpha for moves against a layer's preferred
	// direction.
	WrongWay float64
	// OrderByBadEnds routes nets with more unavoidable bad ends first
	// (§III-D2). On by default in stitch-aware mode; exposed separately
	// for the net-ordering ablation.
	OrderByBadEnds bool
	// MaxExpansions bounds each A* attempt.
	MaxExpansions int
	// Negotiate lets a failed net evict a few small blocking nets and
	// reroute them (bounded rip-up negotiation). Off by default; the
	// recorded experiment tables use the paper's plain rip-up.
	Negotiate bool
	// Bidi replaces every connection search with the bidirectional A*
	// (bidi.go): a forward search from the source component and a
	// backward search from the target run in lockstep and meet in the
	// middle. Off by default: within cost ties the meeting point can
	// pick a different optimal path than the unidirectional search, and
	// the recorded experiment artifacts use the unidirectional router.
	// Like every search it is deterministic and worker-count-invariant.
	Bidi bool
	// Pattern tries the L/Z pattern fast path (fastpath.go) before the
	// full search when a connection joins two single-cell components —
	// the 2-pin-net case — mirroring the global router's Config.Pattern.
	// Off by default for the same artifact-stability reason as Bidi.
	Pattern bool
	// Workers bounds the number of concurrent detailed-routing workers.
	// 0 means "auto" and resolves to runtime.NumCPU (see ResolveWorkers);
	// 1 forces the plain sequential router. Values above NumCPU are
	// allowed — extra workers cost only idle goroutines, which the
	// cross-worker equivalence tests exploit on small hosts — and clamp
	// at maxWorkers. Every value produces byte-identical routes: workers
	// route speculatively against a read snapshot of the committed grid,
	// and a strictly ordered commit loop accepts only attempts whose
	// read footprint no earlier commit touched (see sched.go and
	// docs/PERFORMANCE.md for the determinism argument).
	Workers int
}

// maxWorkers caps resolved Config.Workers values: beyond a small
// multiple of any real host's core count extra workers only add
// goroutine-scheduling overhead to the speculation phase.
const maxWorkers = 256

// ResolveWorkers maps a Config.Workers value to the worker count the
// router actually uses: values <= 0 ("auto") resolve to runtime.NumCPU
// — deliberately not GOMAXPROCS, so a capped GOMAXPROCS cannot silently
// degrade "auto" to a single worker — values above maxWorkers clamp,
// and everything else passes through. meblroute, the facade, and the
// server all funnel through this one resolution.
func ResolveWorkers(w int) int {
	if w <= 0 {
		return runtime.NumCPU()
	}
	if w > maxWorkers {
		return maxWorkers
	}
	return w
}

// DefaultConfig returns the paper's detailed-routing parameters.
func DefaultConfig(stitchAware bool) Config {
	return Config{
		StitchAware:    stitchAware,
		Alpha:          1,
		Beta:           10,
		Gamma:          5,
		ViaCost:        2,
		WrongWay:       2,
		OrderByBadEnds: stitchAware,
		MaxExpansions:  400_000,
	}
}

// Result is the detailed routing outcome for a circuit.
type Result struct {
	Routes []plan.NetRoute // indexed like the circuit's net slice
	Failed int             // nets that could not be fully connected
	Ripped int             // nets whose planned segments were ripped up
	// Search statistics.
	Connects   int   // A* connection searches run
	Expansions int64 // total A* node expansions

	// Sched is the speculative scheduler's telemetry (sched.go). Purely
	// observational: it reports how the work was scheduled, never what
	// was routed — routes are identical for every Workers value. Zero
	// for sequential runs except PatternRoutes, which counts for every
	// scheduler.
	Sched SchedStats

	// ECO recording (memo.go), indexed like Routes. Acts is each net's
	// activity rect: the union of its pin bbox, every planned-wire
	// candidate it materialized (accepted or conflicted — both read
	// cells), and every search window it ran — i.e. a superset of every
	// occupancy cell the net's processing read or wrote, as an actTile
	// bucket bitset (memo.go). WActs is the write footprint alone: pin
	// bbox, accepted candidates, and committed wires (including ones a
	// later rip-up cleared) — every cell whose occupancy the net's
	// processing ever changed. NetRipped marks nets whose planned
	// geometry was ripped up, and FreedPins lists pin cells whose
	// reservation ended up released (see replayNet in memo.go for why
	// that is the one non-local bit of rip-up state).
	Acts      [][]uint64
	WActs     [][]uint64
	NetRipped []bool
	FreedPins [][]Cell
	// MatWires is each net's post-materialization candidate set (the
	// planned wires that survived the conflict check), recorded so an
	// ECO run can detect prepare-phase divergence.
	MatWires [][]geom.Segment
}

// Cell is an exported grid coordinate (0-based layer), used by the ECO
// recording fields.
type Cell struct {
	X, Y, L int
}

// Router carries the occupancy grid.
type Router struct {
	f       *grid.Fabric
	cfg     Config
	X, Y, L int
	occ     []int32 // net ID + 1 per cell; 0 = free
	// ECO footprint-bitset geometry: the fabric divided into actTile ×
	// actTile buckets, atw × ath of them, awords uint64 words per bitset
	// (see memo.go). Read-only after NewRouter.
	atw, ath, awords int
	// colFlags caches the per-x-track stitch/SUR/escape classification
	// (pure functions of x), replacing repeated integer divisions in the
	// A* expansion loop. Read-only after NewRouter.
	colFlags []uint8
	// costZCol caches the per-x-track via cost (cfg.ViaCost plus the
	// stitch-aware column penalties of eq. 10). Computed with the same
	// floating-point operation sequence the expansion loop used inline,
	// so the cached values are bit-identical. Read-only after NewRouter.
	costZCol []float64

	// arenas holds the per-worker search contexts (scratch + per-worker
	// statistics); arenas[0] doubles as the sequential router's scratch.
	arenas []*searchCtx

	// cong is the optional global-router congestion map (SetCongestion):
	// a speculation-partitioning hint only, never consulted by any
	// search, so it cannot affect routes.
	cong *plan.Congestion

	// search statistics accumulated across the run, merged from accepted
	// speculative attempts and sequential-lane work only, so the totals
	// always equal what a Workers=1 run reports.
	connects   int
	expansions int64
	patterns   int // pattern fast-path hits (subset of connects)
}

// NewRouter allocates the occupancy grid for the fabric.
func NewRouter(f *grid.Fabric, cfg Config) *Router {
	r := &Router{f: f, cfg: cfg, X: f.XTracks, Y: f.YTracks, L: f.Layers}
	r.occ = make([]int32, r.X*r.Y*r.L)
	r.atw = (r.X + actTile - 1) / actTile
	r.ath = (r.Y + actTile - 1) / actTile
	r.awords = (r.atw*r.ath + 63) / 64
	r.colFlags = make([]uint8, r.X)
	for x := 0; x < r.X; x++ {
		var fl uint8
		if f.IsStitchCol(x) {
			fl |= colStitch
		}
		if f.InSUR(x) {
			fl |= colSUR
		}
		if f.InEscape(x) {
			fl |= colEscape
		}
		r.colFlags[x] = fl
	}
	r.costZCol = make([]float64, r.X)
	for x := 0; x < r.X; x++ {
		fl := r.colFlags[x]
		costZ := cfg.ViaCost
		if cfg.StitchAware {
			switch {
			case fl&colStitch != 0:
				// Allowed only at a fixed pin, but it is still a via
				// violation: take it only as a last resort.
				costZ += 2 * cfg.Beta
			case fl&colSUR != 0:
				costZ += cfg.Beta
			}
			if fl&colEscape != 0 {
				costZ += cfg.Gamma
			}
		}
		r.costZCol[x] = costZ
	}
	return r
}

func (r *Router) idx(x, y, l int) int { return (l*r.Y+y)*r.X + x }

// cellFree reports whether the cell is free or owned by net id.
func (r *Router) cellFree(x, y, l int, id int32) bool {
	o := r.occ[r.idx(x, y, l)]
	return o == 0 || o == id+1
}

// setOcc writes one occupancy cell through the arena's write overlay
// when a speculative attempt is active (ovBegin), and directly to the
// shared grid otherwise. Speculation never mutates r.occ: all writes
// land in the overlay and are applied by commitAttempt only if the
// deterministic commit loop accepts the attempt.
//
// The A* availability check deliberately does NOT read the overlay: a
// net's own writes are all 0↔id+1 transitions on cells already free to
// itself, so they are invisible to its own free() predicate, and the
// shared grid is frozen during the parallel phase. Only the two
// overlay-exact readers below (getOcc callers: releaseEscapes and
// recordFreedPins) can observe a speculative write.
func (r *Router) setOcc(sc *searchCtx, i int, v int32) {
	if sc != nil && sc.ovOn {
		if sc.ovStamp[i] != sc.ovEpoch {
			sc.ovStamp[i] = sc.ovEpoch
			sc.ovLog = append(sc.ovLog, int32(i))
		}
		sc.ovVal[i] = v
		return
	}
	r.occ[i] = v
}

// getOcc reads one occupancy cell overlay-exactly: the speculative
// attempt's own pending write if there is one, the shared grid
// otherwise. See setOcc for when the overlay is active.
func (r *Router) getOcc(sc *searchCtx, i int) int32 {
	if sc != nil && sc.ovOn && sc.ovStamp[i] == sc.ovEpoch {
		return sc.ovVal[i]
	}
	return r.occ[i]
}

// Run routes every net. plans must be indexed like c.Nets; nil entries are
// treated as unplanned local nets.
func (r *Router) Run(c *netlist.Circuit, plans []*plan.NetPlan) *Result {
	res, _ := r.RunContext(context.Background(), c, plans)
	return res
}

// RunContext is Run with cancellation: ctx is checked at the top of the
// per-net routing loop (per speculation round when Workers > 1), so a
// cancelled run returns after at most one more net's (or round's) worth
// of A* work. On cancellation it returns the partial result (nets not
// reached are recorded as unrouted) together with ctx's error.
func (r *Router) RunContext(ctx context.Context, c *netlist.Circuit, plans []*plan.NetPlan) (*Result, error) {
	res, nets, order, record := r.prepare(c, plans)
	workers := ResolveWorkers(r.cfg.Workers)
	var ctxErr error
	if workers > 1 && len(order) > 1 {
		ctxErr = r.runSpeculative(ctx, order, nets, res, record, workers)
	} else {
		ctxErr = r.runSequential(ctx, order, nets, res, record)
	}
	r.finish(res, nets)
	return res, ctxErr
}

// SetCongestion hands the router the global router's congestion map
// (global.Router.Congestion). It is a pure scheduling hint: the
// speculative scheduler avoids speculating two nets into the same
// congested tile neighbourhood in one round, cutting the conflict rate
// on dense circuits. It never influences any route — equivalence with
// the sequential router holds with or without it — which is why it is
// not part of Config (ECO config comparison must not see it).
func (r *Router) SetCongestion(cg *plan.Congestion) { r.cong = cg }

// prepare runs everything that precedes the per-net routing loop: task
// construction, pin + escape reservation, planned-wire materialization,
// and the stitch-aware net ordering. It is shared verbatim by the cold
// run (RunContext) and the memoized ECO run (RunMemo) — the ECO
// equivalence argument relies on this phase being identical.
func (r *Router) prepare(c *netlist.Circuit, plans []*plan.NetPlan) (res *Result, nets, order []*routeTask, record func(*routeTask, bool)) {
	res = &Result{Routes: make([]plan.NetRoute, len(c.Nets))}

	nets = make([]*routeTask, len(c.Nets))
	for i, n := range c.Nets {
		var p *plan.NetPlan
		if plans != nil {
			p = plans[i]
		}
		t := &routeTask{net: n, plan: p, slot: i}
		// Hoisted from the per-astar-call path: the pin-cell set is a
		// property of the net, built once instead of once per connect
		// attempt (read-only afterwards, so safe to share across workers).
		for _, pin := range n.Pins {
			if !t.pinCells.has(pin.X, pin.Y) {
				t.pinCells = append(t.pinCells, pinKey(pin.X, pin.Y))
			}
		}
		t.act = make([]uint64, r.awords)
		t.wact = make([]uint64, r.awords)
		t.sact = make([]uint64, r.awords)
		// Prepare touches occupancy only at each pin cell and its via
		// escape directly above (same x,y) — mark those tiles, not the
		// whole multi-pin bounding box, which for a spread net would
		// blanket the fabric and defeat the ECO overlap test.
		for _, pin := range n.Pins {
			pr := geom.Rect{X0: pin.X, Y0: pin.Y, X1: pin.X, Y1: pin.Y}
			r.markAct(t.act, pr)
			r.markAct(t.wact, pr)
		}
		nets[i] = t
	}

	// Reserve pin cells first so no planned wire or route of another net
	// can cover a pin and strand it, plus the cell directly above each pin
	// as a guaranteed via escape (otherwise dense neighbours can entomb a
	// pin on its own layer). Unused escape cells are released after the
	// owning net is routed.
	for _, t := range nets {
		for _, p := range t.net.Pins {
			i := r.idx(p.X, p.Y, p.Layer-1)
			if r.occ[i] == 0 {
				r.occ[i] = int32(t.net.ID) + 1
			}
			if p.Layer < r.L {
				up := r.idx(p.X, p.Y, p.Layer)
				if r.occ[up] == 0 {
					r.occ[up] = int32(t.net.ID) + 1
					t.escapes = append(t.escapes, cell{p.X, p.Y, p.Layer})
				}
			}
		}
	}
	// Materialize planned wires for all nets: track assignment reserved
	// those resources, and detailed routing connects to them. Wires that
	// would cover another net's pin are dropped by the conflict check.
	for _, t := range nets {
		r.materialize(t)
	}
	// ECO recording: each net's materialization outcome. A conflict
	// check's verdict depends on other nets' cells, so an edit can flip
	// it — RunMemo compares these against the edited run's post-prepare
	// candidates to catch divergence that happens before the routing
	// loop's clean checks (see the pre-loop seeding in memo.go).
	res.MatWires = make([][]geom.Segment, len(nets))
	for i, t := range nets {
		res.MatWires[i] = append([]geom.Segment(nil), t.wires...)
	}

	order = make([]*routeTask, len(nets))
	copy(order, nets)
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := order[a], order[b]
		la, lb := ta.level(), tb.level()
		if la != lb {
			return la < lb
		}
		if r.cfg.OrderByBadEnds {
			ba, bb := ta.badEnds(), tb.badEnds()
			if ba != bb {
				return ba > bb // more bad ends first (§III-D2)
			}
		}
		ha, hb := ta.net.HPWL(), tb.net.HPWL()
		if ha != hb {
			return ha < hb
		}
		return ta.net.ID < tb.net.ID
	})

	record = func(t *routeTask, routed bool) {
		res.Routes[t.slot] = plan.NetRoute{
			NetID:  t.net.ID,
			Routed: routed,
			Wires:  t.wires,
			Vias:   t.vias,
		}
	}
	return res, nets, order, record
}

// finish fills the result fields derived after the routing loop. A
// negotiation can change earlier nets' status; count failures from the
// final record.
func (r *Router) finish(res *Result, nets []*routeTask) {
	res.Failed = 0
	for i := range res.Routes {
		if !res.Routes[i].Routed {
			res.Failed++
		}
	}
	res.Connects = r.connects
	res.Expansions = r.expansions
	res.Sched.PatternRoutes = r.patterns
	r.collectECO(res, nets)
}

// collectECO copies the per-task ECO recording into the result.
func (r *Router) collectECO(res *Result, nets []*routeTask) {
	res.Acts = make([][]uint64, len(nets))
	res.WActs = make([][]uint64, len(nets))
	res.NetRipped = make([]bool, len(nets))
	res.FreedPins = make([][]Cell, len(nets))
	for i, t := range nets {
		res.Acts[i] = r.foldAct(t.act, t.sact)
		res.WActs[i] = t.wact
		res.NetRipped[i] = t.ripped
		res.FreedPins[i] = t.freedPins
	}
}

// recordFreedPins notes which of the net's pin cells it does not own
// after routing: cells another net held at reserve time, or reservations
// a rip-up's clearNet released and no final wire re-covered. The read
// must be overlay-exact (getOcc): under speculation a rip-up's release
// lives only in the overlay.
func (r *Router) recordFreedPins(sc *searchCtx, t *routeTask) {
	id := int32(t.net.ID) + 1
	for _, p := range t.net.Pins {
		if r.getOcc(sc, r.idx(p.X, p.Y, p.Layer-1)) != id {
			t.freedPins = append(t.freedPins, Cell{X: p.X, Y: p.Y, L: p.Layer - 1})
		}
	}
}

// runSequential is the Workers=1 net loop: every net runs the full
// sequential body in stitch-aware order.
func (r *Router) runSequential(ctx context.Context, order, nets []*routeTask, res *Result, record func(*routeTask, bool)) error {
	sc := r.arena(0)
	for oi, t := range order {
		if err := ctx.Err(); err != nil {
			// Record the nets not reached as unrouted and stop.
			for _, rest := range order[oi:] {
				record(rest, false)
			}
			return err
		}
		r.routeOne(sc, t, nets, res, record)
	}
	return nil
}

// routeBody is the search-only part of the per-net loop body: first
// attempt, then rip-up and direct reroute on failure. It is shared
// verbatim between the sequential lane (overlay off, writes hit the
// grid) and a speculative attempt (overlay on, writes buffered) — the
// determinism argument needs both paths to run the same code against
// the same reads.
func (r *Router) routeBody(sc *searchCtx, t *routeTask) (ok, ripped bool) {
	if r.routeNet(sc, t, r.f.Bounds()) == netRouted {
		r.trimNet(sc, t)
		return true, false
	}
	// Rip up the planned geometry and route the net directly.
	r.clearNet(sc, t)
	t.wires = nil
	t.vias = nil
	if r.routeNet(sc, t, r.f.Bounds()) == netRouted {
		r.trimNet(sc, t)
		return true, true
	}
	r.clearNet(sc, t)
	t.wires = nil
	t.vias = nil
	return false, true
}

// routeOne is the full sequential loop body for one net: routeBody,
// optional negotiation, escape release, and result recording. Its
// arena's statistics delta is folded into the Router totals —
// sequential work always counts.
func (r *Router) routeOne(sc *searchCtx, t *routeTask, nets []*routeTask, res *Result, record func(*routeTask, bool)) {
	c0, e0, p0 := sc.connects, sc.expansions, sc.patterns
	ok, ripped := r.routeBody(sc, t)
	if ripped {
		res.Ripped++
		t.ripped = true
	}
	if !ok && r.cfg.Negotiate {
		var affected []*routeTask
		ok, affected = r.negotiate(sc, t, nets)
		for _, v := range affected {
			record(v, len(v.wires) > 0)
		}
	}
	r.releaseEscapes(sc, t)
	r.recordFreedPins(sc, t)
	record(t, ok)
	r.connects += sc.connects - c0
	r.expansions += sc.expansions - e0
	r.patterns += sc.patterns - p0
}

// routeTask is the per-net routing state.
type routeTask struct {
	net     *netlist.Net
	plan    *plan.NetPlan
	slot    int
	wires   []geom.Segment
	vias    []plan.Via
	escapes []cell // reserved via-escape cells above pins
	// pinCells is the net's pin (x, y) set, used by the A* via rule.
	// Built once per net at task creation; read-only afterwards.
	pinCells pinSet
	// ECO recording: act is the net's activity bitset — every cell its
	// processing read or wrote (pin bbox, materialized candidates, search
	// windows), rounded up to actTile buckets; wact the write footprint
	// only — every cell it ever occupied or released (pin bbox, accepted
	// candidates, committed wires, including ones a later rip-up
	// cleared). act certifies a net clean; wact is what a changed net
	// dirties for others. ripped and freedPins record the rip-up outcome.
	// See Result's ECO fields and memo.go.
	// sact collects the tiles of cells the net's A* searches popped;
	// folded into the activity footprint with a one-tile dilation at
	// collectECO time (a popped cell reads its neighbours' occupancy, so
	// the dilated popped tiles bound the search's true read set far
	// tighter than the retry windows).
	act       []uint64
	wact      []uint64
	sact      []uint64
	ripped    bool
	freedPins []Cell
}

// releaseEscapes frees reserved pin-escape cells the routed net did not
// end up covering with metal, returning them to the routing pool. Both
// the ownership read and the release must go through the overlay
// (getOcc/setOcc): under speculation a rip-up may already have cleared
// the cell in the overlay, and the release itself must stay buffered
// until commit.
func (r *Router) releaseEscapes(sc *searchCtx, t *routeTask) {
	if len(t.escapes) == 0 {
		return
	}
	covered := map[cell]bool{}
	for _, w := range t.wires {
		forEachCell(w, func(c cell) { covered[c] = true })
	}
	for _, c := range t.escapes {
		if !covered[c] && r.getOcc(sc, r.idx(c.x, c.y, c.l)) == int32(t.net.ID)+1 {
			r.setOcc(sc, r.idx(c.x, c.y, c.l), 0)
		}
	}
	t.escapes = nil
}

func (t *routeTask) level() int {
	if t.plan != nil {
		return t.plan.Level
	}
	return 0
}

func (t *routeTask) badEnds() int {
	if t.plan == nil {
		return 0
	}
	return t.plan.BadEnds
}

// materialize converts the net's assigned global segments into grid wires
// and occupancy. Conflicting or unassigned (ripped) segments are skipped.
func (r *Router) materialize(t *routeTask) {
	if t.plan == nil {
		return
	}
	sp := r.f.StitchPitch
	id := int32(t.net.ID)
	add := func(w geom.Segment) {
		w = clipSegment(w, r.f)
		if w.Span.Empty() {
			return
		}
		// ECO act: the conflict check below reads every candidate cell,
		// so rejected candidates are part of the footprint too.
		r.markAct(t.act, w.Bounds())
		// Check conflicts cell by cell; drop the wire if any cell is taken.
		l := w.Layer - 1
		if w.Orient == geom.Horizontal {
			for x := w.Span.Lo; x <= w.Span.Hi; x++ {
				if !r.cellFree(x, w.Fixed, l, id) {
					return
				}
			}
			r.markAct(t.wact, w.Bounds())
			for x := w.Span.Lo; x <= w.Span.Hi; x++ {
				r.occ[r.idx(x, w.Fixed, l)] = id + 1
			}
		} else {
			for y := w.Span.Lo; y <= w.Span.Hi; y++ {
				if !r.cellFree(w.Fixed, y, l, id) {
					return
				}
			}
			r.markAct(t.wact, w.Bounds())
			for y := w.Span.Lo; y <= w.Span.Hi; y++ {
				r.occ[r.idx(w.Fixed, y, l)] = id + 1
			}
		}
		t.wires = append(t.wires, w)
	}

	for _, s := range t.plan.Segs {
		if s.Ripped || s.Tracks == nil || s.Layer == 0 {
			continue
		}
		if s.Dir == geom.Vertical {
			panelX := s.Panel * sp
			// Merge consecutive rows on the same track into one wire. The
			// segment's end tiles are clipped to the tile center: the
			// connection searches extend the wire exactly as far as the
			// pins or crossing segments need, without overcommitting
			// routing resources.
			runLo := s.Span.Lo
			cur := s.Tracks[0]
			flush := func(lo, hi, track int) {
				x := panelX + track
				y0 := lo * sp
				y1 := (hi+1)*sp - 1
				if lo == s.Span.Lo {
					y0 = lo*sp + sp/2
				}
				if hi == s.Span.Hi {
					y1 = hi*sp + sp/2
				}
				add(geom.VSeg(s.Layer, x, y0, y1))
			}
			for ri := 1; ri < s.Span.Len(); ri++ {
				if s.Tracks[ri] != cur {
					flush(runLo, s.Span.Lo+ri-1, cur)
					// Dogleg jog at the boundary row.
					yJog := (s.Span.Lo + ri) * sp
					if yJog > 0 {
						yJog--
					}
					add(geom.HSeg(s.Layer, yJog, panelX+cur, panelX+s.Tracks[ri]))
					runLo = s.Span.Lo + ri
					cur = s.Tracks[ri]
				}
			}
			flush(runLo, s.Span.Hi, cur)
		} else {
			y := s.Panel*sp + s.Tracks[0]
			x0 := s.Span.Lo*sp + sp/2
			x1 := s.Span.Hi*sp + sp/2
			add(geom.HSeg(s.Layer, y, x0, x1))
		}
	}
}

func clipSegment(w geom.Segment, f *grid.Fabric) geom.Segment {
	if w.Orient == geom.Horizontal {
		w.Span = w.Span.Intersect(geom.Interval{Lo: 0, Hi: f.XTracks - 1})
		if w.Fixed < 0 || w.Fixed >= f.YTracks {
			w.Span = geom.Interval{Lo: 1, Hi: 0}
		}
	} else {
		w.Span = w.Span.Intersect(geom.Interval{Lo: 0, Hi: f.YTracks - 1})
		if w.Fixed < 0 || w.Fixed >= f.XTracks {
			w.Span = geom.Interval{Lo: 1, Hi: 0}
		}
	}
	return w
}

// clearNet removes all of the net's geometry from the occupancy grid
// (buffered in the overlay under speculation; see setOcc).
func (r *Router) clearNet(sc *searchCtx, t *routeTask) {
	for _, w := range t.wires {
		l := w.Layer - 1
		if w.Orient == geom.Horizontal {
			for x := w.Span.Lo; x <= w.Span.Hi; x++ {
				r.setOcc(sc, r.idx(x, w.Fixed, l), 0)
			}
		} else {
			for y := w.Span.Lo; y <= w.Span.Hi; y++ {
				r.setOcc(sc, r.idx(w.Fixed, y, l), 0)
			}
		}
	}
}

// cell is a packed grid coordinate.
type cell struct {
	x, y, l int // l is 0-based layer index
}

// components groups the net's current geometry (wires and pins) into
// connected components; vias connect adjacent layers. It runs once per
// connection search, so the cell-sharing analysis uses the arena's
// stamped scratch grid instead of maps.
func (r *Router) components(sc *searchCtx, t *routeTask) [][]cell {
	// Items are the net's wires (in order) followed by its pins; an item's
	// cells enumerate in the same order the old slice materialization
	// produced, so the union sequence — and therefore the component
	// grouping — is unchanged. Everything lives in the arena: no per-call
	// slices, no per-item slices.
	nw := len(t.wires)
	nItems := nw + len(t.net.Pins)
	if cap(sc.parent) < nItems {
		sc.parent = make([]int32, nItems)
	}
	parent := sc.parent[:nItems]
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int) int {
		for int(parent[x]) != x {
			parent[x] = parent[parent[x]]
			x = int(parent[x])
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = int32(find(b)) }

	// Pass 1: union items sharing a chip cell. owner[gi] holds the first
	// item that covered chip cell gi this epoch.
	stamp := sc.growMark(r.X * r.Y * r.L)
	owner := sc.mark
	visit := func(i int, c cell) {
		gi := r.idx(c.x, c.y, c.l)
		if owner[gi].stamp == stamp {
			union(i, int(owner[gi].val))
		} else {
			owner[gi] = stampVal{stamp: stamp, val: int32(i)}
		}
	}
	for i := 0; i < nw; i++ {
		w := t.wires[i]
		l := w.Layer - 1
		if w.Orient == geom.Horizontal {
			for x := w.Span.Lo; x <= w.Span.Hi; x++ {
				visit(i, cell{x, w.Fixed, l})
			}
		} else {
			for y := w.Span.Lo; y <= w.Span.Hi; y++ {
				visit(i, cell{w.Fixed, y, l})
			}
		}
	}
	for pi, p := range t.net.Pins {
		visit(nw+pi, cell{p.X, p.Y, p.Layer - 1})
	}
	for _, v := range t.vias {
		if v.Layer < 1 || v.Layer >= r.L {
			continue // no cell on one side; the map version missed too
		}
		a := owner[r.idx(v.X, v.Y, v.Layer-1)]
		b := owner[r.idx(v.X, v.Y, v.Layer)]
		if a.stamp == stamp && b.stamp == stamp {
			union(int(a.val), int(b.val))
		}
	}

	// Pass 2: per-root cell counts.
	if cap(sc.compCnt) < nItems {
		sc.compCnt = make([]int32, nItems)
		sc.compCur = make([]int32, nItems)
	}
	cnt := sc.compCnt[:nItems]
	cur := sc.compCur[:nItems]
	for i := range cnt {
		cnt[i] = 0
	}
	total := 0
	for i := 0; i < nw; i++ {
		n := t.wires[i].Span.Len()
		cnt[find(i)] += int32(n)
		total += n
	}
	for pi := range t.net.Pins {
		cnt[find(nw+pi)]++
		total++
	}

	// Pass 3: contiguous regions in ascending root order; cur is the
	// per-root write cursor.
	if cap(sc.compBuf) < total {
		sc.compBuf = make([]cell, total)
	}
	buf := sc.compBuf[:total]
	off := int32(0)
	for i := range cnt {
		cur[i] = off
		off += cnt[i]
	}

	// Pass 4: fill cells in item order, so each root's region holds its
	// items' cells in the order the old bucket concatenation produced.
	place := func(i int, c cell) {
		root := find(i)
		buf[cur[root]] = c
		cur[root]++
	}
	for i := 0; i < nw; i++ {
		w := t.wires[i]
		l := w.Layer - 1
		if w.Orient == geom.Horizontal {
			for x := w.Span.Lo; x <= w.Span.Hi; x++ {
				place(i, cell{x, w.Fixed, l})
			}
		} else {
			for y := w.Span.Lo; y <= w.Span.Hi; y++ {
				place(i, cell{w.Fixed, y, l})
			}
		}
	}
	for pi, p := range t.net.Pins {
		place(nw+pi, cell{p.X, p.Y, p.Layer - 1})
	}

	// Emit groups in ascending root order, cells in item order — the same
	// ordering the sorted-map formulation produced. The group headers and
	// the cells alias the arena; routeNet consumes them before the next
	// components call on this arena.
	out := sc.comps[:0]
	for i := range cnt {
		if cnt[i] > 0 {
			end := cur[i]
			out = append(out, buf[end-cnt[i]:end:end])
		}
	}
	sc.comps = out
	return out
}

// routeStatus is the outcome of one routeNet attempt.
type routeStatus int8

const (
	// netRouted: every component connected.
	netRouted routeStatus = iota
	// netFailed: an A* search found no path (rip-up territory).
	netFailed
	// netEscaped: a retry window left the caller's declared region, so
	// the attempt was abandoned before searching outside it. Only batch
	// attempts can see this; the net re-routes in the sequential lane.
	netEscaped
)

// routeNet connects all components of the net, keeping every search
// window inside region. Partial geometry stays recorded on failure (the
// caller rips it or rolls it back).
func (r *Router) routeNet(sc *searchCtx, t *routeTask, region geom.Rect) routeStatus {
	for {
		comps := r.components(sc, t)
		if len(comps) <= 1 {
			return netRouted
		}
		// Connect the first component to the nearest other component
		// (tight target boxes keep the A* heuristic sharp).
		src := comps[0]
		srcBox := cellBBox(src)
		best, bestD := 1, 1<<30
		for ci := 1; ci < len(comps); ci++ {
			if d := rectDist(srcBox, cellBBox(comps[ci])); d < bestD {
				best, bestD = ci, d
			}
		}
		path, ok, escaped := r.connect(sc, t, src, comps[best], region)
		if escaped {
			return netEscaped
		}
		if !ok {
			return netFailed
		}
		r.commitPath(sc, t, path)
	}
}

// commitPath converts an A* cell path into wires and vias. Every cell the
// path touches ends up covered by metal: straight runs become wires, and
// cells a via stack merely passes through get single-cell pads, so the
// occupancy grid and the geometric connectivity stay exact.
func (r *Router) commitPath(sc *searchCtx, t *routeTask, path []cell) {
	id := int32(t.net.ID)
	stamp := sc.growMark(r.X * r.Y * r.L)
	metal := sc.mark
	addWire := func(w geom.Segment) {
		//lint:ignore hotalloc the committed wire list is the route's output, not scratch: it outlives the search, so it cannot live in the per-search arena
		t.wires = append(t.wires, w)
		r.markAct(t.wact, w.Bounds())
		r.markWire(sc, w, id)
		forEachCell(w, func(c cell) { metal[r.idx(c.x, c.y, c.l)].stamp = stamp })
	}
	for i := 0; i+1 < len(path); {
		a, b := path[i], path[i+1]
		if a.l != b.l { // via
			lo := a.l
			if b.l < lo {
				lo = b.l
			}
			//lint:ignore hotalloc the committed via list is the route's output, not scratch: it outlives the search, so it cannot live in the per-search arena
			t.vias = append(t.vias, plan.Via{X: a.x, Y: a.y, Layer: lo + 1})
			i++
			continue
		}
		// Extend the straight run as far as it goes.
		dx, dy := sign(b.x-a.x), sign(b.y-a.y)
		j := i + 1
		for j+1 < len(path) && path[j+1].l == a.l &&
			sign(path[j+1].x-path[j].x) == dx && sign(path[j+1].y-path[j].y) == dy {
			j++
		}
		if dy == 0 {
			addWire(geom.HSeg(a.l+1, a.y, a.x, path[j].x))
		} else {
			addWire(geom.VSeg(a.l+1, a.x, a.y, path[j].y))
		}
		i = j
	}
	// Pad cells traversed without metal (via endpoints, lone terminals).
	for _, c := range path {
		if metal[r.idx(c.x, c.y, c.l)].stamp != stamp {
			addWire(geom.HSeg(c.l+1, c.y, c.x, c.x))
		}
	}
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

func (r *Router) markWire(sc *searchCtx, w geom.Segment, id int32) {
	l := w.Layer - 1
	if w.Orient == geom.Horizontal {
		for x := w.Span.Lo; x <= w.Span.Hi; x++ {
			r.setOcc(sc, r.idx(x, w.Fixed, l), id+1)
		}
	} else {
		for y := w.Span.Lo; y <= w.Span.Hi; y++ {
			r.setOcc(sc, r.idx(w.Fixed, y, l), id+1)
		}
	}
}
