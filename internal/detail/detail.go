// Package detail implements stitch-aware detailed routing (§III-D).
//
// The detailed router works on the full track grid (x, y, layer). It first
// materializes the wires planned by layer/track assignment, then connects
// each net's pins and planned segments with A* searches (pin-to-segment and
// segment-to-segment routing); nets that fail are ripped up and routed
// directly, completing the second bottom-up pass of the framework.
//
// The grid cost follows eq. (10):
//
//	C(j) = C(i) + α·C_wl + β·C_vsu + γ·C_esc
//
// where C_vsu charges vias (z-moves) inside stitch-unfriendly regions and
// C_esc charges vertical occupation of the escape region — the four tracks
// nearest a stitching line, reserved for paths that must cross it. Hard
// constraints always hold: wires may cross stitching lines only in the
// x-direction, and vias may sit on a stitching line only at fixed pins.
// Stitch-aware net ordering routes nets with more bad ends first, giving
// them the resources to escape their stitch-unfriendly line ends.
package detail

import (
	"context"
	"sort"

	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/netlist"
	"stitchroute/internal/plan"
)

// Config controls the detailed router.
type Config struct {
	// StitchAware enables the β/γ cost terms and bad-end net ordering.
	// Hard constraints (no vertical routing and no vias on stitching
	// lines) hold in both modes, as in the paper's baseline.
	StitchAware bool
	// Alpha, Beta, Gamma are the eq. (10) weights (paper: 1, 10, 5).
	Alpha, Beta, Gamma float64
	// ViaCost is the base cost of a z-move.
	ViaCost float64
	// WrongWay multiplies Alpha for moves against a layer's preferred
	// direction.
	WrongWay float64
	// OrderByBadEnds routes nets with more unavoidable bad ends first
	// (§III-D2). On by default in stitch-aware mode; exposed separately
	// for the net-ordering ablation.
	OrderByBadEnds bool
	// MaxExpansions bounds each A* attempt.
	MaxExpansions int
	// Negotiate lets a failed net evict a few small blocking nets and
	// reroute them (bounded rip-up negotiation). Off by default; the
	// recorded experiment tables use the paper's plain rip-up.
	Negotiate bool
}

// DefaultConfig returns the paper's detailed-routing parameters.
func DefaultConfig(stitchAware bool) Config {
	return Config{
		StitchAware:    stitchAware,
		Alpha:          1,
		Beta:           10,
		Gamma:          5,
		ViaCost:        2,
		WrongWay:       2,
		OrderByBadEnds: stitchAware,
		MaxExpansions:  400_000,
	}
}

// Result is the detailed routing outcome for a circuit.
type Result struct {
	Routes []plan.NetRoute // indexed like the circuit's net slice
	Failed int             // nets that could not be fully connected
	Ripped int             // nets whose planned segments were ripped up
	// Search statistics.
	Connects   int   // A* connection searches run
	Expansions int64 // total A* node expansions
}

// Router carries the occupancy grid.
type Router struct {
	f       *grid.Fabric
	cfg     Config
	X, Y, L int
	occ     []int32 // net ID + 1 per cell; 0 = free

	// scratch buffers for the A* over a search box
	dist     []float64
	prevMv   []int8
	stamp    []int32
	curStamp int32

	// search statistics accumulated across the run
	connects   int
	expansions int64
}

// NewRouter allocates the occupancy grid for the fabric.
func NewRouter(f *grid.Fabric, cfg Config) *Router {
	r := &Router{f: f, cfg: cfg, X: f.XTracks, Y: f.YTracks, L: f.Layers}
	r.occ = make([]int32, r.X*r.Y*r.L)
	return r
}

func (r *Router) idx(x, y, l int) int { return (l*r.Y+y)*r.X + x }

// cellFree reports whether the cell is free or owned by net id.
func (r *Router) cellFree(x, y, l int, id int32) bool {
	o := r.occ[r.idx(x, y, l)]
	return o == 0 || o == id+1
}

// Run routes every net. plans must be indexed like c.Nets; nil entries are
// treated as unplanned local nets.
func (r *Router) Run(c *netlist.Circuit, plans []*plan.NetPlan) *Result {
	res, _ := r.RunContext(context.Background(), c, plans)
	return res
}

// RunContext is Run with cancellation: ctx is checked at the top of the
// per-net routing loop, so a cancelled run returns after at most one more
// net's worth of A* work. On cancellation it returns the partial result
// (nets not reached are recorded as unrouted) together with ctx's error.
func (r *Router) RunContext(ctx context.Context, c *netlist.Circuit, plans []*plan.NetPlan) (*Result, error) {
	res := &Result{Routes: make([]plan.NetRoute, len(c.Nets))}

	nets := make([]*routeTask, len(c.Nets))
	for i, n := range c.Nets {
		var p *plan.NetPlan
		if plans != nil {
			p = plans[i]
		}
		nets[i] = &routeTask{net: n, plan: p, slot: i}
	}

	// Reserve pin cells first so no planned wire or route of another net
	// can cover a pin and strand it, plus the cell directly above each pin
	// as a guaranteed via escape (otherwise dense neighbours can entomb a
	// pin on its own layer). Unused escape cells are released after the
	// owning net is routed.
	for _, t := range nets {
		for _, p := range t.net.Pins {
			i := r.idx(p.X, p.Y, p.Layer-1)
			if r.occ[i] == 0 {
				r.occ[i] = int32(t.net.ID) + 1
			}
			if p.Layer < r.L {
				up := r.idx(p.X, p.Y, p.Layer)
				if r.occ[up] == 0 {
					r.occ[up] = int32(t.net.ID) + 1
					t.escapes = append(t.escapes, cell{p.X, p.Y, p.Layer})
				}
			}
		}
	}
	// Materialize planned wires for all nets: track assignment reserved
	// those resources, and detailed routing connects to them. Wires that
	// would cover another net's pin are dropped by the conflict check.
	for _, t := range nets {
		r.materialize(t)
	}

	order := make([]*routeTask, len(nets))
	copy(order, nets)
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := order[a], order[b]
		la, lb := ta.level(), tb.level()
		if la != lb {
			return la < lb
		}
		if r.cfg.OrderByBadEnds {
			ba, bb := ta.badEnds(), tb.badEnds()
			if ba != bb {
				return ba > bb // more bad ends first (§III-D2)
			}
		}
		ha, hb := ta.net.HPWL(), tb.net.HPWL()
		if ha != hb {
			return ha < hb
		}
		return ta.net.ID < tb.net.ID
	})

	record := func(t *routeTask, routed bool) {
		res.Routes[t.slot] = plan.NetRoute{
			NetID:  t.net.ID,
			Routed: routed,
			Wires:  t.wires,
			Vias:   t.vias,
		}
	}
	var ctxErr error
	for oi, t := range order {
		if err := ctx.Err(); err != nil {
			// Record the nets not reached as unrouted and stop.
			ctxErr = err
			for _, rest := range order[oi:] {
				record(rest, false)
			}
			break
		}
		ok := r.routeNet(t)
		if !ok {
			// Rip up the planned geometry and route the net directly.
			r.clearNet(t)
			t.wires = nil
			t.vias = nil
			res.Ripped++
			ok = r.routeNet(t)
			if !ok {
				r.clearNet(t)
				t.wires = nil
				t.vias = nil
				if r.cfg.Negotiate {
					var affected []*routeTask
					ok, affected = r.negotiate(t, nets)
					for _, v := range affected {
						record(v, len(v.wires) > 0)
					}
				}
			} else {
				r.trimNet(t)
			}
		} else {
			r.trimNet(t)
		}
		r.releaseEscapes(t)
		record(t, ok)
	}
	// A negotiation can change earlier nets' status; count failures from
	// the final record.
	res.Failed = 0
	for i := range res.Routes {
		if !res.Routes[i].Routed {
			res.Failed++
		}
	}
	res.Connects = r.connects
	res.Expansions = r.expansions
	return res, ctxErr
}

// routeTask is the per-net routing state.
type routeTask struct {
	net     *netlist.Net
	plan    *plan.NetPlan
	slot    int
	wires   []geom.Segment
	vias    []plan.Via
	escapes []cell // reserved via-escape cells above pins
}

// releaseEscapes frees reserved pin-escape cells the routed net did not
// end up covering with metal, returning them to the routing pool.
func (r *Router) releaseEscapes(t *routeTask) {
	if len(t.escapes) == 0 {
		return
	}
	covered := map[cell]bool{}
	for _, w := range t.wires {
		forEachCell(w, func(c cell) { covered[c] = true })
	}
	for _, c := range t.escapes {
		if !covered[c] && r.occ[r.idx(c.x, c.y, c.l)] == int32(t.net.ID)+1 {
			r.occ[r.idx(c.x, c.y, c.l)] = 0
		}
	}
	t.escapes = nil
}

func (t *routeTask) level() int {
	if t.plan != nil {
		return t.plan.Level
	}
	return 0
}

func (t *routeTask) badEnds() int {
	if t.plan == nil {
		return 0
	}
	return t.plan.BadEnds
}

// materialize converts the net's assigned global segments into grid wires
// and occupancy. Conflicting or unassigned (ripped) segments are skipped.
func (r *Router) materialize(t *routeTask) {
	if t.plan == nil {
		return
	}
	sp := r.f.StitchPitch
	id := int32(t.net.ID)
	add := func(w geom.Segment) {
		w = clipSegment(w, r.f)
		if w.Span.Empty() {
			return
		}
		// Check conflicts cell by cell; drop the wire if any cell is taken.
		l := w.Layer - 1
		if w.Orient == geom.Horizontal {
			for x := w.Span.Lo; x <= w.Span.Hi; x++ {
				if !r.cellFree(x, w.Fixed, l, id) {
					return
				}
			}
			for x := w.Span.Lo; x <= w.Span.Hi; x++ {
				r.occ[r.idx(x, w.Fixed, l)] = id + 1
			}
		} else {
			for y := w.Span.Lo; y <= w.Span.Hi; y++ {
				if !r.cellFree(w.Fixed, y, l, id) {
					return
				}
			}
			for y := w.Span.Lo; y <= w.Span.Hi; y++ {
				r.occ[r.idx(w.Fixed, y, l)] = id + 1
			}
		}
		t.wires = append(t.wires, w)
	}

	for _, s := range t.plan.Segs {
		if s.Ripped || s.Tracks == nil || s.Layer == 0 {
			continue
		}
		if s.Dir == geom.Vertical {
			panelX := s.Panel * sp
			// Merge consecutive rows on the same track into one wire. The
			// segment's end tiles are clipped to the tile center: the
			// connection searches extend the wire exactly as far as the
			// pins or crossing segments need, without overcommitting
			// routing resources.
			runLo := s.Span.Lo
			cur := s.Tracks[0]
			flush := func(lo, hi, track int) {
				x := panelX + track
				y0 := lo * sp
				y1 := (hi+1)*sp - 1
				if lo == s.Span.Lo {
					y0 = lo*sp + sp/2
				}
				if hi == s.Span.Hi {
					y1 = hi*sp + sp/2
				}
				add(geom.VSeg(s.Layer, x, y0, y1))
			}
			for ri := 1; ri < s.Span.Len(); ri++ {
				if s.Tracks[ri] != cur {
					flush(runLo, s.Span.Lo+ri-1, cur)
					// Dogleg jog at the boundary row.
					yJog := (s.Span.Lo + ri) * sp
					if yJog > 0 {
						yJog--
					}
					add(geom.HSeg(s.Layer, yJog, panelX+cur, panelX+s.Tracks[ri]))
					runLo = s.Span.Lo + ri
					cur = s.Tracks[ri]
				}
			}
			flush(runLo, s.Span.Hi, cur)
		} else {
			y := s.Panel*sp + s.Tracks[0]
			x0 := s.Span.Lo*sp + sp/2
			x1 := s.Span.Hi*sp + sp/2
			add(geom.HSeg(s.Layer, y, x0, x1))
		}
	}
}

func clipSegment(w geom.Segment, f *grid.Fabric) geom.Segment {
	if w.Orient == geom.Horizontal {
		w.Span = w.Span.Intersect(geom.Interval{Lo: 0, Hi: f.XTracks - 1})
		if w.Fixed < 0 || w.Fixed >= f.YTracks {
			w.Span = geom.Interval{Lo: 1, Hi: 0}
		}
	} else {
		w.Span = w.Span.Intersect(geom.Interval{Lo: 0, Hi: f.YTracks - 1})
		if w.Fixed < 0 || w.Fixed >= f.XTracks {
			w.Span = geom.Interval{Lo: 1, Hi: 0}
		}
	}
	return w
}

// clearNet removes all of the net's geometry from the occupancy grid.
func (r *Router) clearNet(t *routeTask) {
	for _, w := range t.wires {
		l := w.Layer - 1
		if w.Orient == geom.Horizontal {
			for x := w.Span.Lo; x <= w.Span.Hi; x++ {
				r.occ[r.idx(x, w.Fixed, l)] = 0
			}
		} else {
			for y := w.Span.Lo; y <= w.Span.Hi; y++ {
				r.occ[r.idx(w.Fixed, y, l)] = 0
			}
		}
	}
}

// cell is a packed grid coordinate.
type cell struct {
	x, y, l int // l is 0-based layer index
}

// components groups the net's current geometry (wires and pins) into
// connected components; vias connect adjacent layers.
func (t *routeTask) components() [][]cell {
	type item struct {
		cells []cell
	}
	var items []item
	for _, w := range t.wires {
		var cs []cell
		if w.Orient == geom.Horizontal {
			for x := w.Span.Lo; x <= w.Span.Hi; x++ {
				cs = append(cs, cell{x, w.Fixed, w.Layer - 1})
			}
		} else {
			for y := w.Span.Lo; y <= w.Span.Hi; y++ {
				cs = append(cs, cell{w.Fixed, y, w.Layer - 1})
			}
		}
		items = append(items, item{cs})
	}
	for _, p := range t.net.Pins {
		items = append(items, item{[]cell{{p.X, p.Y, p.Layer - 1}}})
	}
	// Union by shared cell or via link.
	parent := make([]int, len(items))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	owner := map[cell]int{}
	for i, it := range items {
		for _, c := range it.cells {
			if j, ok := owner[c]; ok {
				union(i, j)
			} else {
				owner[c] = i
			}
		}
	}
	for _, v := range t.vias {
		a, okA := owner[cell{v.X, v.Y, v.Layer - 1}]
		b, okB := owner[cell{v.X, v.Y, v.Layer}]
		if okA && okB {
			union(a, b)
		}
	}
	groups := map[int][]cell{}
	for i, it := range items {
		root := find(i)
		groups[root] = append(groups[root], it.cells...)
	}
	var out [][]cell
	roots := make([]int, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	for _, root := range roots {
		out = append(out, groups[root])
	}
	return out
}

// routeNet connects all components of the net. Returns false on failure;
// partial geometry stays recorded (the caller rips it).
func (r *Router) routeNet(t *routeTask) bool {
	for {
		comps := t.components()
		if len(comps) <= 1 {
			return true
		}
		// Connect the first component to the nearest other component
		// (tight target boxes keep the A* heuristic sharp).
		src := comps[0]
		srcBox := cellBBox(src)
		best, bestD := 1, 1<<30
		for ci := 1; ci < len(comps); ci++ {
			if d := rectDist(srcBox, cellBBox(comps[ci])); d < bestD {
				best, bestD = ci, d
			}
		}
		path, ok := r.connect(t, src, comps[best])
		if !ok {
			return false
		}
		r.commitPath(t, path)
	}
}

// commitPath converts an A* cell path into wires and vias. Every cell the
// path touches ends up covered by metal: straight runs become wires, and
// cells a via stack merely passes through get single-cell pads, so the
// occupancy grid and the geometric connectivity stay exact.
func (r *Router) commitPath(t *routeTask, path []cell) {
	id := int32(t.net.ID)
	metal := make(map[cell]bool, len(path))
	addWire := func(w geom.Segment) {
		t.wires = append(t.wires, w)
		r.markWire(w, id)
		forEachCell(w, func(c cell) { metal[c] = true })
	}
	for i := 0; i+1 < len(path); {
		a, b := path[i], path[i+1]
		if a.l != b.l { // via
			lo := a.l
			if b.l < lo {
				lo = b.l
			}
			t.vias = append(t.vias, plan.Via{X: a.x, Y: a.y, Layer: lo + 1})
			i++
			continue
		}
		// Extend the straight run as far as it goes.
		dx, dy := sign(b.x-a.x), sign(b.y-a.y)
		j := i + 1
		for j+1 < len(path) && path[j+1].l == a.l &&
			sign(path[j+1].x-path[j].x) == dx && sign(path[j+1].y-path[j].y) == dy {
			j++
		}
		if dy == 0 {
			addWire(geom.HSeg(a.l+1, a.y, a.x, path[j].x))
		} else {
			addWire(geom.VSeg(a.l+1, a.x, a.y, path[j].y))
		}
		i = j
	}
	// Pad cells traversed without metal (via endpoints, lone terminals).
	for _, c := range path {
		if !metal[c] {
			addWire(geom.HSeg(c.l+1, c.y, c.x, c.x))
		}
	}
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

func (r *Router) markWire(w geom.Segment, id int32) {
	l := w.Layer - 1
	if w.Orient == geom.Horizontal {
		for x := w.Span.Lo; x <= w.Span.Hi; x++ {
			r.occ[r.idx(x, w.Fixed, l)] = id + 1
		}
	} else {
		for y := w.Span.Lo; y <= w.Span.Hi; y++ {
			r.occ[r.idx(w.Fixed, y, l)] = id + 1
		}
	}
}
