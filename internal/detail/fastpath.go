package detail

// Pattern-route fast path (Config.Pattern). For a single-cell-to-
// single-cell connection — the common case once multi-pin nets have been
// reduced to component joins — most optimal routes are an L or a Z on
// one routing layer with via stacks at the ends, the same shape
// vocabulary the global router's pattern stage enumerates
// (internal/global/pattern.go). Enumerating those few shapes against
// the occupancy grid and taking the cheapest legal one costs a handful
// of cell probes, versus thousands of heap operations for a full window
// search, and never misses: on failure connect falls through to the
// regular (or bidirectional) A*.
//
// Every candidate uses the exact move costs of eq. (10) — per-layer
// preferred-direction costs, the Gamma escape penalty, per-column via
// costs — and the exact legality rules (no y-moves on stitching
// columns, vias on stitching columns only at pins, cells free or owned
// by the net), so a hit is a route the A* could have produced; it is
// just not guaranteed to be the global optimum, which is why Pattern is
// an opt-in mode (see Config).
//
// Like the searches, the fast path allocates nothing in steady state:
// both candidate buffers live in the searchCtx arena.

import (
	"math"

	"stitchroute/internal/geom"
)

// Candidate shapes. patXY/patYX are the two L bend orders; patZX/patZY
// are Zs with the jog at the midpoint of the long axis.
const (
	patXY = iota // x-leg, then y-leg
	patYX        // y-leg, then x-leg
	patZX        // x to mid, y-leg at mid, x to target
	patZY        // y to mid, x-leg at mid, y to target
)

// patternRoute tries the pattern shapes between the single source cell a
// and the single target cell b, returning the cheapest legal candidate
// as a cell path (aliasing the arena, like astar's). The read footprint
// — every cell any candidate probes lies in the a–b bounding box — is
// recorded in t.act even on a miss, so ECO memoization and speculative
// conflict detection see the probes the fast path made.
func (r *Router) patternRoute(sc *searchCtx, t *routeTask, a, b cell) ([]cell, bool) {
	box := geom.Rect{X0: a.x, Y0: a.y, X1: a.x, Y1: a.y}
	if b.x < box.X0 {
		box.X0 = b.x
	}
	if b.x > box.X1 {
		box.X1 = b.x
	}
	if b.y < box.Y0 {
		box.Y0 = b.y
	}
	if b.y > box.Y1 {
		box.Y1 = b.y
	}
	r.markAct(t.act, box)

	best := math.Inf(1)
	found := false
	keep := func(cost float64, ok bool) {
		if ok && cost < best-1e-12 {
			best = cost
			sc.patA, sc.patBest = sc.patBest, sc.patA
			found = true
		}
	}
	if a.x == b.x && a.y == b.y {
		// Pure via stack; any mode with the target's layer degenerates
		// to it.
		keep(r.patBuild(sc, t, a, b, b.l, patXY, 0))
	} else {
		for l := 0; l < r.L; l++ {
			keep(r.patBuild(sc, t, a, b, l, patXY, 0))
			keep(r.patBuild(sc, t, a, b, l, patYX, 0))
		}
		if dx := a.x - b.x; dx > 1 || dx < -1 {
			mid := (a.x + b.x) / 2
			for l := 0; l < r.L; l++ {
				keep(r.patBuild(sc, t, a, b, l, patZX, mid))
			}
		}
		if dy := a.y - b.y; dy > 1 || dy < -1 {
			mid := (a.y + b.y) / 2
			for l := 0; l < r.L; l++ {
				keep(r.patBuild(sc, t, a, b, l, patZY, mid))
			}
		}
	}
	if !found {
		return nil, false
	}
	sc.connects++
	sc.patterns++
	return sc.patBest, true
}

// patBuild walks one candidate shape from a to b with its x/y legs on
// layer l, appending each traversed cell to sc.patA and accumulating
// the exact eq. (10) cost. Returns (cost, true) iff every step is
// legal.
func (r *Router) patBuild(sc *searchCtx, t *routeTask, a, b cell, l, mode, mid int) (float64, bool) {
	sc.patA = append(sc.patA[:0], a)
	cur := a
	cost := 0.0
	if !r.patZ(sc, t, &cur, l, &cost) {
		return 0, false
	}
	ok := false
	switch mode {
	case patXY:
		ok = r.patX(sc, t, &cur, b.x, &cost) && r.patY(sc, t, &cur, b.y, &cost)
	case patYX:
		ok = r.patY(sc, t, &cur, b.y, &cost) && r.patX(sc, t, &cur, b.x, &cost)
	case patZX:
		ok = r.patX(sc, t, &cur, mid, &cost) && r.patY(sc, t, &cur, b.y, &cost) &&
			r.patX(sc, t, &cur, b.x, &cost)
	case patZY:
		ok = r.patY(sc, t, &cur, mid, &cost) && r.patX(sc, t, &cur, b.x, &cost) &&
			r.patY(sc, t, &cur, b.y, &cost)
	}
	if !ok {
		return 0, false
	}
	if !r.patZ(sc, t, &cur, b.l, &cost) {
		return 0, false
	}
	return cost, true
}

// patX extends the candidate along x to x1 on cur's layer.
func (r *Router) patX(sc *searchCtx, t *routeTask, cur *cell, x1 int, cost *float64) bool {
	if cur.x == x1 {
		return true
	}
	cx := r.cfg.Alpha
	if r.f.LayerDir(cur.l+1) != geom.Horizontal {
		cx *= r.cfg.WrongWay
	}
	step := 1
	if x1 < cur.x {
		step = -1
	}
	id1 := int32(t.net.ID) + 1
	for cur.x != x1 {
		nx := cur.x + step
		if o := r.occ[r.idx(nx, cur.y, cur.l)]; o != 0 && o != id1 {
			return false
		}
		cur.x = nx
		*cost += cx
		sc.patA = append(sc.patA, *cur)
	}
	return true
}

// patY extends the candidate along y to y1 on cur's layer. The whole
// run shares cur's column, so one stitching-column check covers it.
func (r *Router) patY(sc *searchCtx, t *routeTask, cur *cell, y1 int, cost *float64) bool {
	if cur.y == y1 {
		return true
	}
	flags := r.colFlags[cur.x]
	if flags&colStitch != 0 {
		return false
	}
	cy := r.cfg.Alpha
	if r.f.LayerDir(cur.l+1) != geom.Vertical {
		cy *= r.cfg.WrongWay
	}
	if r.cfg.StitchAware && flags&colEscape != 0 {
		cy += r.cfg.Gamma
	}
	step := 1
	if y1 < cur.y {
		step = -1
	}
	id1 := int32(t.net.ID) + 1
	for cur.y != y1 {
		ny := cur.y + step
		if o := r.occ[r.idx(cur.x, ny, cur.l)]; o != 0 && o != id1 {
			return false
		}
		cur.y = ny
		*cost += cy
		sc.patA = append(sc.patA, *cur)
	}
	return true
}

// patZ extends the candidate's via stack at cur's (x, y) to layer l1.
func (r *Router) patZ(sc *searchCtx, t *routeTask, cur *cell, l1 int, cost *float64) bool {
	if cur.l == l1 {
		return true
	}
	if r.colFlags[cur.x]&colStitch != 0 && !t.pinCells.has(cur.x, cur.y) {
		return false
	}
	cz := r.costZCol[cur.x]
	step := 1
	if l1 < cur.l {
		step = -1
	}
	id1 := int32(t.net.ID) + 1
	for cur.l != l1 {
		nl := cur.l + step
		if o := r.occ[r.idx(cur.x, cur.y, nl)]; o != 0 && o != id1 {
			return false
		}
		cur.l = nl
		*cost += cz
		sc.patA = append(sc.patA, *cur)
	}
	return true
}
