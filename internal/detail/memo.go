package detail

// Memoized detailed routing for the incremental ECO engine.
//
// RunMemo re-runs the detailed router on an edited circuit against a
// previous run's recording. The preparation phase (pin + escape
// reservation, planned-wire materialization, stitch-aware ordering) is
// executed for real — it is cheap, linear work — and only the per-net
// connection searches are memoized: a net whose plan is unchanged, whose
// parent attempt succeeded, and whose recorded footprint misses the
// dirty region replays the parent's final geometry without searching.
//
// Footprints are bitsets over the fabric divided into actTile × actTile
// buckets, not bounding boxes: a long L-shaped route plus a handful of
// localized retry windows covers a sliver of the fabric but a huge bbox,
// and bbox-based dirty tests were measured to kill most of the reuse on
// the bundled benchmarks.
//
// Soundness. A net's processing reads and writes occupancy cells only
// inside its activity footprint (pin bbox ∪ materialize candidates ∪
// search windows — recorded in detail.go/astar.go), and changes cells
// only inside its write footprint (pin bbox ∪ accepted candidates ∪
// committed wires, including ones a later rip-up cleared). The dirty
// bitset covers, before any net's clean check, every cell where the
// edited run's occupancy can differ from the parent run's: the parent
// write footprints of all edited/deleted/replan nets, the post-prepare
// write footprints of those nets' new geometry, and — grown stickily as
// the loop runs — the write footprint of every net that routed live and
// diverged. Reads never enter the dirty region: a net's searches depend
// on what it reads, but only its writes can change what other nets
// read. A clean intersection (of the net's parent activity ∪ current
// footprint against the dirty bitset) therefore certifies the net's
// searches would read byte-identical occupancy and commit
// byte-identical geometry, so stamping the recorded geometry reproduces
// the cold run's state exactly; by induction the whole run is
// byte-identical to RunContext on the edited circuit.

import (
	"context"
	mbits "math/bits"
	"time"

	"stitchroute/internal/geom"
	"stitchroute/internal/netlist"
	"stitchroute/internal/plan"
)

// timeNow is indirected for the DebugMemo timing only.
var timeNow = time.Now

// actTile is the footprint-bitset bucket edge in tracks. 8 keeps the
// bitsets a few dozen words on the bundled benchmarks while staying fine
// enough that thin routes do not blanket their bounding box.
const (
	actTile      = 8
	actTileShift = 3 // log2(actTile), for the per-pop marking in astar
)

// markAct sets the footprint bits covered by rc (clamped to the fabric).
// Tasks built outside prepare (tests) carry no bitsets; nil is a no-op.
func (r *Router) markAct(bits []uint64, rc geom.Rect) {
	if bits == nil {
		return
	}
	x0, y0, x1, y1 := rc.X0, rc.Y0, rc.X1, rc.Y1
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= r.X {
		x1 = r.X - 1
	}
	if y1 >= r.Y {
		y1 = r.Y - 1
	}
	if x0 > x1 || y0 > y1 {
		return
	}
	for ty := y0 / actTile; ty <= y1/actTile; ty++ {
		base := ty * r.atw
		for tx := x0 / actTile; tx <= x1/actTile; tx++ {
			b := base + tx
			bits[b>>6] |= 1 << (uint(b) & 63)
		}
	}
}

// foldAct ORs the search read-set tiles (sact), dilated by one tile in
// every direction, into act and returns it. A popped cell's expansion
// reads occupancy only at its face neighbours, so the dilated popped
// tiles cover every cell a search read; dilating at fold time (instead
// of marking neighbours per pop) keeps the astar hot loop to one
// bit-set per expansion. Replayed nets inherit the parent's already
// folded footprint with an empty sact, so footprints do not grow by a
// tile per ECO generation.
func (r *Router) foldAct(act, sact []uint64) []uint64 {
	for w, word := range sact {
		for word != 0 {
			b := w<<6 + mbits.TrailingZeros64(word)
			word &= word - 1
			tx, ty := b%r.atw, b/r.atw
			for dy := -1; dy <= 1; dy++ {
				ny := ty + dy
				if ny < 0 || ny >= r.ath {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					nx := tx + dx
					if nx < 0 || nx >= r.atw {
						continue
					}
					nb := ny*r.atw + nx
					act[nb>>6] |= 1 << (uint(nb) & 63)
				}
			}
		}
	}
	return act
}

func orBits(dst, src []uint64) {
	for i, w := range src {
		dst[i] |= w
	}
}

func segsEqual(a, b []geom.Segment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cellsEqual(a, b []Cell) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func bitsIntersect(a, b []uint64) bool {
	for i, w := range a {
		if w&b[i] != 0 {
			return true
		}
	}
	return false
}

// Memo is a previous run's recording, keyed by net ID (slot numbers
// shift when nets are added or deleted).
type Memo struct {
	// Dirty marks nets that must route live regardless of their
	// footprints AND whose write footprints seed the dirty region
	// unconditionally: edited nets and nets whose plan changed (their
	// ordering key — level, bad ends, HPWL — may have changed, so their
	// commit timing relative to other nets can shift even if their
	// geometry would not), plus deleted nets (their absence changes what
	// everyone reads in their footprint; they have no task, but their
	// parent write footprint still seeds the bitset).
	//
	// Parent-failed nets are NOT dirty: the ordering sort is stable, so
	// a net with an unchanged key keeps its position relative to every
	// other unchanged-key net, and a re-search that reproduces the
	// parent's final state (routes + retained pin reservations) is
	// invisible to everyone else. They replay like routed nets when
	// their reads are clean (an empty-geometry replay), and when they do
	// re-search they grow the dirty region only on divergence.
	Dirty map[int]bool
	// Parent per-net records (footprints are actTile bucket bitsets).
	Acts      map[int][]uint64
	WActs     map[int][]uint64
	Routes    map[int]plan.NetRoute
	Ripped    map[int]bool
	FreedPins map[int][]Cell
	MatWires  map[int][]geom.Segment
}

// DebugMemo, when non-nil, collects replay-decision counts (test-only).
var DebugMemo map[string]int

// canReplay verifies every cell of the parent's final geometry is free
// or already owned by the net. The soundness argument says this cannot
// fail for a clean net; it is a cheap O(route cells) guard that turns a
// reasoning bug into a live reroute instead of a corrupted grid.
func (r *Router) canReplay(t *routeTask, pr plan.NetRoute) bool {
	id := int32(t.net.ID)
	for _, w := range pr.Wires {
		l := w.Layer - 1
		if w.Orient == geom.Horizontal {
			for x := w.Span.Lo; x <= w.Span.Hi; x++ {
				if !r.cellFree(x, w.Fixed, l, id) {
					return false
				}
			}
		} else {
			for y := w.Span.Lo; y <= w.Span.Hi; y++ {
				if !r.cellFree(w.Fixed, y, l, id) {
					return false
				}
			}
		}
	}
	return true
}

// replayNet reproduces the parent run's net effect on the grid without
// searching: clear the materialized candidates, stamp the recorded
// final geometry, restore the pin reservations the parent kept (a
// rip-up's clearNet can release a pin cell that a materialized wire
// covered; FreedPins records which reservations ended up released), and
// release unused escapes exactly like the real path does.
func (r *Router) replayNet(t *routeTask, pr plan.NetRoute, pw []uint64, freed []Cell) {
	id := int32(t.net.ID)
	r.clearNet(nil, t)
	t.wires = append([]geom.Segment(nil), pr.Wires...)
	t.vias = append([]plan.Via(nil), pr.Vias...)
	for _, w := range t.wires {
		r.markWire(nil, w, id)
	}
	for _, p := range t.net.Pins {
		c := Cell{X: p.X, Y: p.Y, L: p.Layer - 1}
		wasFreed := false
		for _, f := range freed {
			if f == c {
				wasFreed = true
				break
			}
		}
		if !wasFreed {
			if i := r.idx(c.X, c.Y, c.L); r.occ[i] == 0 {
				r.occ[i] = id + 1
			}
		}
	}
	// Freed pin reservations must end up free even when no current wire
	// covers them: in the parent run the release can come from a
	// transient committed path that the final clearNet wiped — geometry
	// the recording does not keep. A freed pin is never covered by a
	// final wire (recordFreedPins would not have listed it), so zeroing
	// here reproduces the parent's end state exactly.
	for _, f := range freed {
		if i := r.idx(f.X, f.Y, f.L); r.occ[i] == id+1 {
			r.occ[i] = 0
		}
	}
	r.releaseEscapes(nil, t)
	t.freedPins = append(t.freedPins[:0], freed...)
	orBits(t.wact, pw)
}

// RunMemo is RunContext against a previous run's recording; see the
// package comment above for the replay rule and its soundness. The run
// is strictly sequential (the stitch-aware order), matching what every
// Workers value produces. The second return is the number of nets
// replayed without a search.
func (r *Router) RunMemo(ctx context.Context, c *netlist.Circuit, plans []*plan.NetPlan, m *Memo) (*Result, int, error) {
	res, nets, order, record := r.prepare(c, plans)

	// Dirty bitset: the parent write footprints of every dirty net
	// (deleted nets included — the map is keyed by ID, not slot) plus
	// the post-prepare write footprint of every dirty net's new
	// geometry — both in place before the first clean check.
	dirty := make([]uint64, r.awords)
	for id := range m.Dirty {
		if pw, ok := m.WActs[id]; ok && len(pw) == r.awords {
			orBits(dirty, pw)
		}
	}
	for _, t := range nets {
		if m.Dirty[t.net.ID] {
			orBits(dirty, t.wact)
		}
	}
	// Prepare-phase divergence: materialize's conflict check reads other
	// nets' cells, so an edit can flip a candidate's verdict — the net
	// then writes (or stops writing) cells during prepare, before any
	// clean check runs. Comparing each net's post-prepare candidate set
	// against the parent's catches exactly the nets whose prepare
	// writes changed; seeding both their parent and current write
	// footprints makes those writes dirty from the start (the net also
	// routes live — its pin bbox sits in both footprints). Detection is
	// outcome-based, so no fixpoint is needed: a flipped verdict further
	// down the slot order shows up in that net's own comparison.
	for _, t := range nets {
		id := t.net.ID
		if m.Dirty[id] {
			continue
		}
		if pmw, ok := m.MatWires[id]; !ok || !segsEqual(pmw, t.wires) {
			if DebugMemo != nil {
				DebugMemo["matdiverge"]++
			}
			if pw := m.WActs[id]; len(pw) == r.awords {
				orBits(dirty, pw)
			}
			orBits(dirty, t.wact)
		}
	}

	sc := r.arena(0)
	reused := 0
	for oi, t := range order {
		if err := ctx.Err(); err != nil {
			for _, rest := range order[oi:] {
				record(rest, false)
			}
			r.finish(res, nets)
			return res, reused, err
		}
		id := t.net.ID
		pr, hasRec := m.Routes[id]
		pa := m.Acts[id]
		pw := m.WActs[id]
		hasBits := len(pa) == r.awords && len(pw) == r.awords
		if DebugMemo != nil {
			switch {
			case m.Dirty[id]:
				DebugMemo["dirty"]++
			case !hasRec || !hasBits:
				DebugMemo["norec"]++
			case bitsIntersect(dirty, pa) || bitsIntersect(dirty, t.act):
				DebugMemo["overlap"]++
			case !r.canReplay(t, pr):
				DebugMemo["canreplay"]++
				DebugMemo["canreplay-net"] = id
			default:
				DebugMemo["clean"]++
			}
		}
		if !m.Dirty[id] && hasRec && hasBits &&
			!bitsIntersect(dirty, pa) && !bitsIntersect(dirty, t.act) &&
			r.canReplay(t, pr) {
			// Failed parents replay too: empty geometry, cleared
			// candidates, released reservations — the same end state a
			// live re-search would reproduce, minus the search.
			r.replayNet(t, pr, pw, m.FreedPins[id])
			orBits(t.act, pa)
			if m.Ripped[id] {
				res.Ripped++
				t.ripped = true
			}
			record(t, pr.Routed)
			reused++
			continue
		}
		if DebugMemo != nil {
			t0 := timeNow()
			r.routeOne(sc, t, nets, res, record)
			key := "live-ms-routed"
			if !pr.Routed {
				key = "live-ms-failed"
			}
			DebugMemo[key] += int(timeNow().Sub(t0).Milliseconds())
		} else {
			r.routeOne(sc, t, nets, res, record)
		}
		// Divergence: dirty nets grow the region unconditionally (their
		// commit timing may have moved); a key-stable net that ended in
		// its recorded final state — same routes AND same retained pin
		// reservations — changed no cell anyone else can observe. Only
		// write footprints grow the region: a diverged net's reads
		// cannot invalidate another net's state.
		if m.Dirty[id] || !hasRec || !pr.Equal(res.Routes[t.slot]) ||
			!cellsEqual(m.FreedPins[id], t.freedPins) {
			if DebugMemo != nil && !m.Dirty[id] {
				DebugMemo["diverged"]++
			}
			if len(pw) == r.awords {
				orBits(dirty, pw)
			}
			orBits(dirty, t.wact)
		}
	}
	r.finish(res, nets)
	return res, reused, nil
}
