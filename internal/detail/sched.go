package detail

// Speculative parallel detailed routing with deterministic conflict
// replay.
//
// The scheduler keeps the pending nets in the stitch-aware order and
// repeats rounds of speculate → commit until the list drains:
//
//  1. Window selection picks a bounded window of pending nets to
//     speculate this round, partitioned by the global router's
//     congestion map: two nets whose expected working regions overlap
//     inside a congested neighbourhood are not speculated together
//     (one of them would almost surely conflict and be thrown away).
//  2. Speculation routes every window net concurrently. Each worker
//     owns an arena; the attempt runs the exact sequential per-net body
//     (routeBody: first attempt, rip-up, direct reroute, then escape
//     release and freed-pin recording) against the committed occupancy
//     grid, with every occupancy write buffered in the arena's overlay
//     (setOcc in detail.go). The shared grid is frozen for the whole
//     phase, so attempts read a consistent snapshot and never see each
//     other.
//  3. Commit walks the pending list in order. The head-most net's
//     attempt is accepted, its buffered writes are applied, and its
//     write tiles are added to the round's dirty set; each subsequent
//     attempt is accepted only if its read footprint does not intersect
//     the dirty set. The first net that cannot be accepted — a read
//     conflict, or an attempt that needs the sequential lane — stops
//     the commit walk; it and everything behind it replay in a later
//     round. Attempts that survive behind the stop point stay cached
//     and are revalidated against the final dirty set, so a round's
//     work is only discarded where a commit actually invalidated it.
//
// Why the output is byte-identical to sequential routing for every
// Workers value — by induction over the commit sequence: assume the
// grid and every task's state equal the sequential run's just before
// the k-th committed net (true for k = 0: both equal the post-prepare
// state). The k-th accepted attempt read only cells inside its recorded
// read footprint — the activity bitset (pin boxes, materialize
// candidates, pattern boxes), the search-popped tiles dilated by one
// tile (a popped cell's expansion reads only its face neighbours), and
// its own write tiles — and the acceptance test proved no earlier
// commit wrote any of those tiles since the attempt's snapshot. Every
// cell the attempt read therefore held its sequential value, the
// attempt ran the sequential body on sequentially-correct inputs, and
// committing its buffered writes reproduces the sequential grid and
// task state for k+1. Accepted attempts cannot clobber each other
// within a round either: an attempt's write tiles are part of its read
// footprint, so disjointness-from-dirty covers writes too.
//
// Progress is guaranteed: the round's dirty set is empty when the
// commit walk starts, so the head of the pending list — which window
// selection always speculates (it is the first net scanned, when the
// active set is still empty) — always commits or drains through the
// lane. Every round retires at least one net; there is no livelock.
//
// The sequential lane (arena 0) handles what speculation must not:
// negotiation mutates other nets' tasks and is not captured by the
// overlay, so an attempt that would negotiate is discarded and its net
// runs the full sequential body against the real grid, after every
// later cached attempt is invalidated.
//
// Statistics from discarded attempts are dropped and accepted attempts
// fold the exact per-attempt deltas, so Connects/Expansions match a
// Workers=1 run; scheduler telemetry (SchedStats) reports how the work
// was scheduled and is the only worker-count-dependent output.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"stitchroute/internal/geom"
	"stitchroute/internal/plan"
)

// specCongestionThreshold is the congestion-map level at or above which
// a tile neighbourhood counts as congested for window partitioning.
const specCongestionThreshold = 0.75

// maxCongestionSkips bounds how many rounds the congestion partition
// may defer one net before admitting it regardless. Without the bound a
// chip whose whole congestion map sits above the threshold would
// serialize every overlapping net pair one per round.
const maxCongestionSkips = 2

// SchedStats is the speculative scheduler's telemetry. It describes
// scheduling, never routing: routes, Connects, and Expansions are
// byte-identical for every Workers value, while these counters (and
// wall-clock WorkerTime) legitimately vary with the worker count.
type SchedStats struct {
	// Rounds is the number of speculate→commit rounds run.
	Rounds int
	// Speculated counts speculative attempts launched; Committed the
	// attempts accepted by the in-order commit walk.
	Speculated int
	Committed  int
	// Conflicts counts attempts discarded because a committed net wrote
	// into their read footprint; Replays counts re-speculations of nets
	// that already had at least one discarded attempt.
	Conflicts int
	Replays   int
	// LaneNets counts nets routed on the strictly ordered sequential
	// lane (single-net rounds and negotiation fallbacks).
	LaneNets int
	// CongestionSkips counts window admissions deferred by the
	// congestion partition (the net speculated in a later round).
	CongestionSkips int
	// PatternRoutes counts connections resolved by the L/Z pattern fast
	// path (fastpath.go); it is filled for every scheduler, sequential
	// included, and is worker-count-invariant.
	PatternRoutes int
	// WorkerTime is wall-clock busy time per speculation worker.
	WorkerTime []time.Duration
}

// gridWrite is one buffered occupancy write of a speculative attempt.
type gridWrite struct {
	idx, val int32
}

// specAttempt is the outcome of one speculative routing attempt: the
// task snapshot taken before the attempt (for discard), the buffered
// grid writes (for commit), and the read/write tile footprints the
// commit walk tests for conflicts.
type specAttempt struct {
	ok        bool // routeBody connected every component
	ripped    bool // planned geometry was ripped up
	needsLane bool // failed with negotiation enabled: lane-only work

	// Arena-statistics deltas of this attempt, folded into the Router
	// totals only on acceptance.
	connects   int
	expansions int64
	patterns   int

	// Pre-attempt task snapshot. Deep copies: trimNet edits wire spans
	// in place and commitPath appends, so slice headers alone would
	// alias mutated backing arrays.
	preWires []geom.Segment
	preVias  []plan.Via
	preEsc   []cell
	preAct   []uint64
	preWact  []uint64
	preSact  []uint64
	preFreed []Cell

	// writes is the overlay log: every occupancy cell the attempt wrote
	// (first-write order) with its final value. wtiles is the same
	// write set as an actTile bitset; reads is the attempt's full read
	// footprint (activity ∪ dilated search pops ∪ write footprint).
	writes []gridWrite
	wtiles []uint64
	reads  []uint64
}

// specState is one pending net's scheduling state.
type specState struct {
	t *routeTask
	// att is the net's cached attempt, valid against the current
	// committed grid; nil when the net needs (re-)speculation.
	att *specAttempt
	// region is the net's expected working region (pins ∪ materialized
	// geometry, expanded by the first-attempt retry margin); congested
	// marks regions that touch a congested tile of the global congestion
	// map. Both are window-partitioning hints only.
	region    geom.Rect
	congested bool
	// tried marks nets that have been speculated at least once, so
	// re-speculations count as replays.
	tried bool
	// skips counts rounds the congestion partition deferred this net;
	// past maxCongestionSkips the partition stops deferring it, so a
	// globally congested chip degrades to plain speculation instead of
	// serializing behind the partition.
	skips int
}

// taskRegion is the region a net's routing is expected to work in: the
// bounding box of its pins and current geometry, expanded by the
// first-attempt retry margin and clipped to the chip. Unlike the
// regions of the old prefix-batch scheduler this is a heuristic, not a
// proof obligation — conflicts are detected exactly from read/write
// footprints — so a search that widens beyond it (a retry, a rip-up)
// costs at most a replay, never correctness. The first-attempt margin
// keeps the regions tight enough that the partition still distinguishes
// nets on small chips, where the widest retry margin would cover
// everything.
func (r *Router) taskRegion(t *routeTask) geom.Rect {
	b := t.pinBBox()
	for _, w := range t.wires {
		b = b.Union(w.Bounds())
	}
	return b.Expand(retryMargins[0]).Intersect(r.f.Bounds())
}

// regionCongested reports whether any congestion-map tile overlapping
// the region is at or above the partition threshold.
func (r *Router) regionCongested(reg geom.Rect) bool {
	cg := r.cong
	if cg == nil || cg.Pitch <= 0 || len(cg.Level) == 0 {
		return false
	}
	tx0, ty0 := reg.X0/cg.Pitch, reg.Y0/cg.Pitch
	tx1, ty1 := reg.X1/cg.Pitch, reg.Y1/cg.Pitch
	if tx0 < 0 {
		tx0 = 0
	}
	if ty0 < 0 {
		ty0 = 0
	}
	if tx1 >= cg.TW {
		tx1 = cg.TW - 1
	}
	if ty1 >= cg.TH {
		ty1 = cg.TH - 1
	}
	for ty := ty0; ty <= ty1; ty++ {
		for tx := tx0; tx <= tx1; tx++ {
			if cg.Level[ty*cg.TW+tx] >= specCongestionThreshold {
				return true
			}
		}
	}
	return false
}

// speculate runs one net's full per-net body against the committed grid
// with every occupancy write buffered in sc's overlay, and returns the
// attempt with its snapshots, buffered writes, and footprints. It never
// mutates the shared grid.
func (r *Router) speculate(sc *searchCtx, t *routeTask) *specAttempt {
	att := &specAttempt{
		preWires: append([]geom.Segment(nil), t.wires...),
		preVias:  append([]plan.Via(nil), t.vias...),
		preEsc:   append([]cell(nil), t.escapes...),
		preAct:   append([]uint64(nil), t.act...),
		preWact:  append([]uint64(nil), t.wact...),
		preSact:  append([]uint64(nil), t.sact...),
		preFreed: append([]Cell(nil), t.freedPins...),
	}
	c0, e0, p0 := sc.connects, sc.expansions, sc.patterns
	sc.ovBegin(len(r.occ))
	att.ok, att.ripped = r.routeBody(sc, t)
	if !att.ok && r.cfg.Negotiate {
		// Negotiation would mutate other nets' tasks; the lane handles
		// the whole body (routeBody included) against the real grid.
		att.needsLane = true
	} else {
		r.releaseEscapes(sc, t)
		r.recordFreedPins(sc, t)
	}
	sc.ovEnd()
	att.connects = sc.connects - c0
	att.expansions = sc.expansions - e0
	att.patterns = sc.patterns - p0

	att.writes = make([]gridWrite, len(sc.ovLog))
	att.wtiles = make([]uint64, r.awords)
	for i, gi := range sc.ovLog {
		att.writes[i] = gridWrite{idx: gi, val: sc.ovVal[gi]}
		x := int(gi) % r.X
		y := (int(gi) / r.X) % r.Y
		ab := (y>>actTileShift)*r.atw + x>>actTileShift
		att.wtiles[ab>>6] |= 1 << (uint(ab) & 63)
	}
	att.reads = make([]uint64, r.awords)
	copy(att.reads, t.act)
	r.foldAct(att.reads, t.sact)
	orBits(att.reads, t.wact)
	orBits(att.reads, att.wtiles)
	return att
}

// discardAttempt restores the task to its pre-attempt state. The shared
// grid needs no restoration — the attempt never wrote it.
func (r *Router) discardAttempt(t *routeTask, att *specAttempt) {
	t.wires = att.preWires
	t.vias = att.preVias
	t.escapes = att.preEsc
	copy(t.act, att.preAct)
	copy(t.wact, att.preWact)
	copy(t.sact, att.preSact)
	t.freedPins = att.preFreed
}

// commitAttempt applies an accepted attempt: buffered writes to the
// grid, rip-up accounting, result recording, and the attempt's exact
// statistics deltas — the same effects the sequential body would have
// had at this position in the net order.
func (r *Router) commitAttempt(t *routeTask, att *specAttempt, res *Result, record func(*routeTask, bool)) {
	for _, w := range att.writes {
		r.occ[w.idx] = w.val
	}
	if att.ripped {
		res.Ripped++
		t.ripped = true
	}
	record(t, att.ok)
	r.connects += att.connects
	r.expansions += att.expansions
	r.patterns += att.patterns
}

// runSpeculative is the parallel net loop: rounds of window selection,
// concurrent speculation, and in-order commit with conflict replay (see
// the package comment for the determinism argument). Cancellation is
// honored at round granularity; nets not reached are recorded as
// unrouted, exactly like the sequential loop.
func (r *Router) runSpeculative(ctx context.Context, order, nets []*routeTask, res *Result, record func(*routeTask, bool), workers int) error {
	// Allocate every arena up front: r.arenas is not goroutine-safe.
	laneSC := r.arena(0)
	for w := 0; w < workers; w++ {
		r.arena(w + 1)
	}
	st := &res.Sched

	pend := make([]*specState, len(order))
	for i, t := range order {
		s := &specState{t: t, region: r.taskRegion(t)}
		s.congested = r.regionCongested(s.region)
		pend[i] = s
	}

	// The window budget scales with the worker count (more workers keep
	// more speculation in flight) within fixed bounds, and adapts to the
	// observed conflict rate: rounds that throw most of their attempts
	// away halve the next window (down to 2, keeping the head plus one
	// speculation in flight), and rounds that commit most of theirs
	// double it back. On a heavily contended chip the scheduler thus
	// converges to near-sequential speculation instead of burning CPU on
	// attempts that cannot commit. The budget affects only which nets
	// are speculated when — never what any attempt computes or the
	// commit order — so neither the worker-count dependence nor the
	// adaptation breaks cross-worker equivalence.
	maxBudget := 4 * workers
	if maxBudget < 8 {
		maxBudget = 8
	}
	if maxBudget > 128 {
		maxBudget = 128
	}
	budget := maxBudget
	maxScan := 4 * maxBudget

	roundDirty := make([]uint64, r.awords)
	var work, active []*specState

	for len(pend) > 0 {
		if err := ctx.Err(); err != nil {
			// Restore every cached attempt's task state, then record the
			// nets not reached as unrouted and stop.
			for _, s := range pend {
				if s.att != nil {
					r.discardAttempt(s.t, s.att)
					s.att = nil
				}
			}
			for _, s := range pend {
				record(s.t, false)
			}
			return err
		}
		st.Rounds++

		// Window selection: admit pending nets in order until the budget
		// fills, skipping nets whose region overlaps an already-admitted
		// net's region when either side is congested. The head is always
		// admitted (the active set is empty when it is scanned), which is
		// what guarantees per-round progress.
		work = work[:0]
		active = active[:0]
		cached := 0
		for i, s := range pend {
			if i >= maxScan || len(work)+cached >= budget {
				break
			}
			if s.att != nil {
				cached++
				active = append(active, s)
				continue
			}
			skip := false
			if s.skips < maxCongestionSkips {
				for _, a := range active {
					if (s.congested || a.congested) && s.region.Overlaps(a.region) {
						skip = true
						break
					}
				}
			}
			if skip {
				s.skips++
				st.CongestionSkips++
				continue
			}
			active = append(active, s)
			work = append(work, s)
		}

		// Single-net fast path: one new attempt and nothing cached means
		// the head would commit unconditionally — route it on the lane
		// and skip the overlay round-trip.
		if len(work) == 1 && cached == 0 && work[0] == pend[0] {
			r.routeOne(laneSC, pend[0].t, nets, res, record)
			st.LaneNets++
			pend = pend[1:]
			continue
		}

		// Speculation phase: workers pull attempts off a shared counter.
		// Assignment order is scheduling-dependent, results are not — an
		// attempt depends only on the frozen grid and its own task.
		if len(work) > 0 {
			st.Speculated += len(work)
			for _, s := range work {
				if s.tried {
					st.Replays++
				}
				s.tried = true
			}
			nw := workers
			if nw > len(work) {
				nw = len(work)
			}
			var next int64
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				sc := r.arenas[w+1]
				wg.Add(1)
				go func(sc *searchCtx) {
					defer wg.Done()
					t0 := time.Now()
					for {
						k := int(atomic.AddInt64(&next, 1)) - 1
						if k >= len(work) {
							break
						}
						work[k].att = r.speculate(sc, work[k].t)
					}
					sc.busyTime += time.Since(t0)
				}(sc)
			}
			wg.Wait()
		}

		// Commit phase: accept attempts in net order while their read
		// footprints stay clear of this round's committed writes.
		for i := range roundDirty {
			roundDirty[i] = 0
		}
		laneRan := false
		roundCommitted := 0
		for len(pend) > 0 {
			s := pend[0]
			if s.att == nil {
				break // not speculated this round (window bound)
			}
			if bitsIntersect(s.att.reads, roundDirty) {
				st.Conflicts++
				r.discardAttempt(s.t, s.att)
				s.att = nil
				break // replay next round against the updated grid
			}
			if s.att.needsLane {
				// Negotiation writes the grid directly and edits other
				// nets' tasks: invalidate every cached attempt, then run
				// the full sequential body on the lane.
				r.discardAttempt(s.t, s.att)
				s.att = nil
				for _, o := range pend[1:] {
					if o.att != nil {
						r.discardAttempt(o.t, o.att)
						o.att = nil
					}
				}
				r.routeOne(laneSC, s.t, nets, res, record)
				st.LaneNets++
				pend = pend[1:]
				laneRan = true
				break
			}
			r.commitAttempt(s.t, s.att, res, record)
			orBits(roundDirty, s.att.wtiles)
			s.att = nil
			pend = pend[1:]
			st.Committed++
			roundCommitted++
		}

		// Revalidate surviving cached attempts against this round's
		// writes; survivors commit in a later round without re-routing.
		if !laneRan {
			for _, s := range pend {
				if s.att != nil && bitsIntersect(s.att.reads, roundDirty) {
					st.Conflicts++
					r.discardAttempt(s.t, s.att)
					s.att = nil
				}
			}
		}

		// Adapt the window to this round's commit rate.
		if len(work) > 0 {
			if 2*roundCommitted >= len(work) {
				if budget *= 2; budget > maxBudget {
					budget = maxBudget
				}
			} else {
				if budget /= 2; budget < 2 {
					budget = 2
				}
			}
		}
	}

	for w := 0; w < workers; w++ {
		res.Sched.WorkerTime = append(res.Sched.WorkerTime, r.arenas[w+1].busyTime)
	}
	return nil
}
