package detail

// Deterministic parallel detailed routing.
//
// The scheduler walks the stitch-aware net order and greedily forms a
// batch: the longest prefix (capped at maxBatch) of not-yet-routed nets
// whose declared search regions are pairwise disjoint. A net's declared
// region is the bounding box of everything it currently owns — pins,
// materialized planned wires, reserved escape cells — expanded by the
// largest connect retry margin (maxRetryMargin) and clipped to the chip.
//
// Why in-batch order cannot matter: a first routing attempt only ever
// reads and writes occupancy cells inside its search windows; connect
// aborts an attempt (netEscaped) before running any window that is not
// contained in the declared region, so an attempt's entire footprint is
// inside its region. Disjoint regions therefore mean no attempt can
// observe another in-flight attempt, and every attempt sees exactly the
// occupancy a sequential run would have shown it — by induction, every
// accepted attempt commits exactly the geometry the sequential router
// would have committed.
//
// Anything outside that proof drains through a strictly ordered
// sequential lane: when a batch member fails its attempt (A* failure that
// needs rip-up/negotiation, or a window escape), that net and every later
// batch member are rolled back to their pre-batch state, the failed net
// runs the full sequential body (unbounded windows, rip-up semantics
// unchanged), and batching resumes after it. Rolled-back members are
// re-attempted in a later batch against the then-current occupancy — the
// same state a sequential run would show them. Statistics from discarded
// attempts are dropped, so Connects/Expansions also match Workers=1.
//
// Batch formation depends only on net order and geometry — never on the
// worker count or goroutine scheduling — so Workers=2 and Workers=64
// take the identical sequence of batches and produce byte-identical
// routes (asserted by the harness's parallel-equivalence property).

import (
	"context"
	"sync"
	"sync/atomic"

	"stitchroute/internal/geom"
	"stitchroute/internal/plan"
)

// maxBatch caps one batch. The cap is a fixed constant (independent of
// the worker count, keeping batch formation worker-count-invariant) that
// bounds how much accepted work one sequential-lane fallback can roll
// back.
const maxBatch = 64

// attempt is one net's speculative routing state within a batch.
type attempt struct {
	t      *routeTask
	region geom.Rect
	// pre-batch snapshots for rollback
	preWires []geom.Segment
	preVias  []plan.Via
	// outcome
	status     routeStatus
	connects   int
	expansions int64
}

// taskRegion declares the region a first routing attempt for t may
// touch: the bounding box of the net's pins and current geometry,
// expanded by the largest retry margin and clipped to the chip. Escape
// cells share their pin's (x, y), so the pin box covers them.
func (r *Router) taskRegion(t *routeTask) geom.Rect {
	b := t.pinBBox()
	for _, w := range t.wires {
		b = b.Union(w.Bounds())
	}
	return b.Expand(maxRetryMargin).Intersect(r.f.Bounds())
}

// formBatch returns the longest disjoint-region prefix of pending
// (capped at maxBatch), with pre-batch snapshots taken.
func (r *Router) formBatch(pending []*routeTask) []*attempt {
	batch := make([]*attempt, 0, min(maxBatch, len(pending)))
	for _, t := range pending {
		if len(batch) == maxBatch {
			break
		}
		reg := r.taskRegion(t)
		conflict := false
		for _, a := range batch {
			if a.region.Overlaps(reg) {
				conflict = true
				break
			}
		}
		if conflict {
			break // prefix rule: the batch ends at the first overlap
		}
		batch = append(batch, &attempt{
			t:        t,
			region:   reg,
			preWires: append([]geom.Segment(nil), t.wires...),
			preVias:  append([]plan.Via(nil), t.vias...),
		})
	}
	return batch
}

// attemptNet runs one net's speculative first attempt inside its declared
// region, recording the outcome and the arena-statistics delta.
func (r *Router) attemptNet(sc *searchCtx, a *attempt) {
	c0, e0 := sc.connects, sc.expansions
	a.status = r.routeNet(sc, a.t, a.region)
	if a.status == netRouted {
		r.trimNet(sc, a.t)
	}
	a.connects = sc.connects - c0
	a.expansions = sc.expansions - e0
}

// rollback restores a task to its pre-batch state: the attempt's commits
// are erased from the occupancy grid, the snapshot geometry is re-marked,
// and the pin/escape reservations are restored. Sound because the
// attempt only ever wrote cells inside the task's declared region, and
// it never freed or overwrote cells owned by other nets.
func (r *Router) rollback(a *attempt) {
	t := a.t
	r.clearNet(t)
	t.wires = a.preWires
	t.vias = a.preVias
	id := int32(t.net.ID)
	for _, w := range t.wires {
		r.markWire(w, id)
	}
	for _, p := range t.net.Pins {
		if i := r.idx(p.X, p.Y, p.Layer-1); r.occ[i] == 0 {
			r.occ[i] = id + 1
		}
	}
	for _, c := range t.escapes {
		if i := r.idx(c.x, c.y, c.l); r.occ[i] == 0 {
			r.occ[i] = id + 1
		}
	}
}

// runBatches is the parallel net loop. Cancellation is honored at batch
// granularity: ctx is checked before each batch (and each sequential-lane
// net); nets not reached are recorded as unrouted.
func (r *Router) runBatches(ctx context.Context, order, nets []*routeTask, res *Result, record func(*routeTask, bool), workers int) error {
	// Allocate every arena up front: r.arenas is not goroutine-safe.
	laneSC := r.arena(0)
	for w := 0; w < workers; w++ {
		r.arena(w + 1)
	}
	pos := 0
	for pos < len(order) {
		if err := ctx.Err(); err != nil {
			for _, rest := range order[pos:] {
				record(rest, false)
			}
			return err
		}
		batch := r.formBatch(order[pos:])
		if len(batch) == 1 {
			// Nothing to overlap with: route it on the lane directly.
			r.routeOne(laneSC, batch[0].t, nets, res, record)
			pos++
			continue
		}

		// Speculative phase: workers pull attempts off a shared counter.
		// Assignment order is scheduling-dependent, results are not — the
		// attempts touch pairwise-disjoint state.
		var next int64
		var wg sync.WaitGroup
		nw := min(workers, len(batch))
		for w := 0; w < nw; w++ {
			sc := r.arenas[w+1]
			wg.Add(1)
			go func(sc *searchCtx) {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= len(batch) {
						return
					}
					r.attemptNet(sc, batch[i])
				}
			}(sc)
		}
		wg.Wait()

		// Commit phase: accept the successful prefix in net order.
		acc := 0
		for acc < len(batch) && batch[acc].status == netRouted {
			a := batch[acc]
			r.releaseEscapes(a.t)
			r.recordFreedPins(a.t)
			record(a.t, true)
			r.connects += a.connects
			r.expansions += a.expansions
			acc++
		}
		pos += acc
		if acc < len(batch) {
			// The first failed net drains through the sequential lane with
			// full rip-up semantics. Its unbounded windows may touch state
			// the later members' attempts were proven against, so those
			// attempts are discarded too (in reverse order; rollbacks only
			// touch their own disjoint regions, so order is cosmetic).
			for i := len(batch) - 1; i >= acc; i-- {
				r.rollback(batch[i])
			}
			r.routeOne(laneSC, batch[acc].t, nets, res, record)
			pos++
		}
	}
	return nil
}
