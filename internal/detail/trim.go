package detail

import (
	"stitchroute/internal/geom"
	"stitchroute/internal/plan"
)

// trimNet removes dangling wire ends from a routed net: planned segments
// span whole global tiles, so after the connections are made their unused
// tails carry no current. An end cell can be trimmed when it is not a pin,
// not under a via, and not shared with another wire of the net. Trimming
// never disconnects the net because only leaf cells are removed.
func (r *Router) trimNet(sc *searchCtx, t *routeTask) {
	id := int32(t.net.ID)

	// Coverage counts per cell over the net's wires (stamped scratch
	// grids replace per-call maps — trimming runs once per routed net).
	stamp := sc.growMark(r.X * r.Y * r.L)
	cover := sc.mark
	coverAt := func(c cell) int32 {
		if s := cover[r.idx(c.x, c.y, c.l)]; s.stamp == stamp {
			return s.val
		}
		return 0
	}
	for _, w := range t.wires {
		forEachCell(w, func(c cell) {
			i := r.idx(c.x, c.y, c.l)
			if cover[i].stamp != stamp {
				cover[i] = stampVal{stamp: stamp, val: 0}
			}
			cover[i].val++
		})
	}
	anchor := sc.mark2
	mark := func(x, y, l int) { anchor[r.idx(x, y, l)].stamp = stamp }
	isAnchor := func(c cell) bool { return anchor[r.idx(c.x, c.y, c.l)].stamp == stamp }
	for _, p := range t.net.Pins {
		mark(p.X, p.Y, p.Layer-1)
	}
	for _, v := range t.vias {
		mark(v.X, v.Y, v.Layer-1)
		mark(v.X, v.Y, v.Layer)
	}

	free := func(c cell) { r.setOcc(sc, r.idx(c.x, c.y, c.l), 0) }

	changed := true
	for changed {
		changed = false
		for i := range t.wires {
			w := &t.wires[i]
			if w.Span.Empty() {
				continue
			}
			for {
				lo := endCell(*w, true)
				if w.Span.Empty() || isAnchor(lo) || coverAt(lo) > 1 {
					break
				}
				cover[r.idx(lo.x, lo.y, lo.l)].val--
				free(lo)
				w.Span.Lo++
				changed = true
			}
			for {
				if w.Span.Empty() {
					break
				}
				hi := endCell(*w, false)
				if isAnchor(hi) || coverAt(hi) > 1 {
					break
				}
				cover[r.idx(hi.x, hi.y, hi.l)].val--
				free(hi)
				w.Span.Hi--
				changed = true
			}
		}
	}
	// Drop emptied wires.
	out := t.wires[:0]
	for _, w := range t.wires {
		if !w.Span.Empty() {
			out = append(out, w)
		}
	}
	t.wires = out

	// Re-mark remaining cells (freeing above may have cleared shared cells
	// that surviving wires still cover).
	for _, w := range t.wires {
		r.markWire(sc, w, id)
	}
	for _, v := range t.vias {
		_ = v // vias occupy no routing cell beyond their wires
	}
}

func endCell(w geom.Segment, low bool) cell {
	v := w.Span.Lo
	if !low {
		v = w.Span.Hi
	}
	if w.Orient == geom.Horizontal {
		return cell{v, w.Fixed, w.Layer - 1}
	}
	return cell{w.Fixed, v, w.Layer - 1}
}

func forEachCell(w geom.Segment, fn func(cell)) {
	if w.Orient == geom.Horizontal {
		for x := w.Span.Lo; x <= w.Span.Hi; x++ {
			fn(cell{x, w.Fixed, w.Layer - 1})
		}
	} else {
		for y := w.Span.Lo; y <= w.Span.Hi; y++ {
			fn(cell{w.Fixed, y, w.Layer - 1})
		}
	}
}

// Wirelength returns the total geometric length (in track units) of a
// route's wires after merging overlaps per layer/track.
func Wirelength(routes []plan.NetRoute) int64 {
	var total int64
	for i := range routes {
		for _, w := range MergedWires(routes[i].Wires) {
			total += int64(w.Span.Len() - 1)
		}
	}
	return total
}

// MergedWires merges a net's collinear overlapping/touching wires into
// maximal segments — the polygons the DRC inspects.
func MergedWires(wires []geom.Segment) []geom.Segment {
	type key struct {
		orient geom.Orientation
		layer  int
		fixed  int
	}
	groups := map[key][]geom.Interval{}
	var keys []key
	for _, w := range wires {
		if w.Span.Empty() {
			continue
		}
		k := key{w.Orient, w.Layer, w.Fixed}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], w.Span)
	}
	var out []geom.Segment
	for _, k := range keys {
		for _, span := range mergeIntervals(groups[k]) {
			out = append(out, geom.Segment{Orient: k.orient, Layer: k.layer, Fixed: k.fixed, Span: span})
		}
	}
	return out
}

// mergeIntervals merges overlapping or cell-adjacent closed intervals.
func mergeIntervals(ivs []geom.Interval) []geom.Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]geom.Interval(nil), ivs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Lo < sorted[j-1].Lo; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := []geom.Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi+1 {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}
