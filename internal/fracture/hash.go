package fracture

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// WriteShots serializes the shot list in a canonical text form: one shot
// per line, layer then rectangle(s), in list order. Fracture emits shots
// in a canonical order, so two fracturing runs are byte-identical exactly
// when their serializations (and hence ShotsHash values) match.
func WriteShots(w io.Writer, shots []Shot) error {
	bw := bufio.NewWriter(w)
	for _, s := range shots {
		if s.IsL() {
			fmt.Fprintf(bw, "L %d %d %d %d %d %d %d %d %d\n", s.Layer,
				s.A.X0, s.A.Y0, s.A.X1, s.A.Y1, s.B.X0, s.B.Y0, s.B.X1, s.B.Y1)
		} else {
			fmt.Fprintf(bw, "R %d %d %d %d %d\n", s.Layer,
				s.A.X0, s.A.Y0, s.A.X1, s.A.Y1)
		}
	}
	return bw.Flush()
}

// ShotsHash returns the SHA-256 of the canonical shot serialization —
// the write-prep analog of nlio.RoutesHash, used by the harness to
// assert that fracturing is deterministic.
func ShotsHash(shots []Shot) (string, error) {
	h := sha256.New()
	if err := WriteShots(h, shots); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
