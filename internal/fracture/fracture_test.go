package fracture

import (
	"context"
	"testing"

	"stitchroute/internal/geom"
	"stitchroute/internal/plan"
)

// routesFromWires wraps wire segments (and optional vias) as one routed net.
func routesFromWires(wires []geom.Segment, vias ...plan.Via) []plan.NetRoute {
	return []plan.NetRoute{{NetID: 1, Routed: true, Wires: wires, Vias: vias}}
}

// cellSet expands rectangles into their covered cells, failing on overlap
// when disjoint is set.
func cellSet(t *testing.T, rects []geom.Rect, disjoint bool) map[geom.Point]bool {
	t.Helper()
	cells := map[geom.Point]bool{}
	for _, r := range rects {
		for y := r.Y0; y <= r.Y1; y++ {
			for x := r.X0; x <= r.X1; x++ {
				p := geom.Point{X: x, Y: y}
				if disjoint && cells[p] {
					t.Fatalf("cell %v covered twice", p)
				}
				cells[p] = true
			}
		}
	}
	return cells
}

// checkExact asserts the fracturing invariants for one layer: the shot
// rectangles are pairwise disjoint and cover exactly the cells of the
// input geometry.
func checkExact(t *testing.T, routes []plan.NetRoute, res *Result, layer int) {
	t.Helper()
	want := cellSet(t, InputRects(routes, layer), false)
	got := cellSet(t, ShotRects(nil, res.Shots, layer), true)
	if len(got) != len(want) {
		t.Fatalf("layer %d: shots cover %d cells, input covers %d", layer, len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("layer %d: input cell %v not covered by any shot", layer, p)
		}
	}
}

func TestRectFractureSimpleWire(t *testing.T) {
	routes := routesFromWires([]geom.Segment{geom.HSeg(1, 5, 0, 9)})
	res := Fracture(routes, 1, ModeRect, Options{})
	if res.ShotCount != 1 || res.RectShots != 1 {
		t.Fatalf("single wire fractured into %d shots (%d rects)", res.ShotCount, res.RectShots)
	}
	if res.Area != 10 {
		t.Errorf("area = %d, want 10", res.Area)
	}
	checkExact(t, routes, res, 1)
}

// TestLShapeCorner is the canonical L: a horizontal arm meeting a
// vertical arm. Rectangle fracturing needs two shots; L-shape needs one.
func TestLShapeCorner(t *testing.T) {
	routes := routesFromWires([]geom.Segment{
		geom.HSeg(1, 0, 0, 9), // horizontal arm along y=0
		geom.VSeg(1, 0, 0, 9), // vertical arm along x=0
	})
	rect := Fracture(routes, 1, ModeRect, Options{})
	if rect.ShotCount != 2 {
		t.Fatalf("rect mode: %d shots, want 2", rect.ShotCount)
	}
	l := Fracture(routes, 1, ModeLShape, Options{})
	if l.ShotCount != 1 || l.LShots != 1 {
		t.Fatalf("lshape mode: %d shots (%d L), want 1 (1 L)", l.ShotCount, l.LShots)
	}
	if l.RectShots != 2 {
		t.Errorf("lshape baseline count = %d, want 2", l.RectShots)
	}
	checkExact(t, routes, rect, 1)
	checkExact(t, routes, l, 1)
}

// TestLShapeBeatsRect is the hand-built fixture where L-shape fracturing
// provably beats the rectangle baseline: a comb of four L-corners. Each
// corner costs two rectangle shots but one L shot, so the counts are 8
// vs 4 — a strict, structural win, not a tie-break.
func TestLShapeBeatsRect(t *testing.T) {
	var wires []geom.Segment
	for i := 0; i < 4; i++ {
		x := i * 20
		wires = append(wires,
			geom.HSeg(1, 0, x, x+9), // foot
			geom.VSeg(1, x, 0, 9),   // leg, sharing the corner cell
		)
	}
	routes := routesFromWires(wires)
	rect := Fracture(routes, 1, ModeRect, Options{})
	l := Fracture(routes, 1, ModeLShape, Options{})
	if rect.ShotCount != 8 {
		t.Fatalf("rect mode: %d shots, want 8", rect.ShotCount)
	}
	if l.ShotCount != 4 {
		t.Fatalf("lshape mode: %d shots, want 4", l.ShotCount)
	}
	if l.ShotCount >= rect.ShotCount {
		t.Fatalf("L-shape (%d) does not beat rectangles (%d)", l.ShotCount, rect.ShotCount)
	}
	checkExact(t, routes, l, 1)
}

// TestTShapeNotMerged: a vertical stub landing mid-span of a horizontal
// wire forms a T — an 8-corner union that must NOT become one shot.
func TestTShapeNotMerged(t *testing.T) {
	routes := routesFromWires([]geom.Segment{
		geom.HSeg(1, 0, 0, 10),
		geom.VSeg(1, 5, 0, 6), // lands mid-span: T, not L
	})
	l := Fracture(routes, 1, ModeLShape, Options{})
	if l.LShots != 0 {
		t.Fatalf("T junction produced %d L shots, want 0", l.LShots)
	}
	if l.ShotCount != 2 {
		t.Fatalf("T junction: %d shots, want 2", l.ShotCount)
	}
	checkExact(t, routes, l, 1)
}

// TestViaPads: vias pad both layers they join, and overlapping geometry
// (via pad under a wire) must not double-cover cells.
func TestViaPads(t *testing.T) {
	routes := routesFromWires(
		[]geom.Segment{geom.HSeg(1, 3, 0, 5), geom.VSeg(2, 5, 3, 8)},
		plan.Via{X: 5, Y: 3, Layer: 1},
	)
	res := Fracture(routes, 2, ModeRect, Options{})
	checkExact(t, routes, res, 1)
	checkExact(t, routes, res, 2)
	if len(res.Layers) != 2 {
		t.Fatalf("layer stats: %d entries, want 2", len(res.Layers))
	}
	// Layer 1: the wire already covers the via pad cell, so the union is
	// just the wire.
	if res.Layers[0].Area != 6 {
		t.Errorf("layer 1 area = %d, want 6", res.Layers[0].Area)
	}
}

func TestSliverCount(t *testing.T) {
	routes := routesFromWires(
		nil,
		plan.Via{X: 50, Y: 50, Layer: 1}, // isolated pad: 1x1 sliver on layers 1 and 2
	)
	res := Fracture(routes, 2, ModeRect, Options{})
	if res.Slivers != 2 {
		t.Errorf("slivers = %d, want 2 (one isolated pad per layer)", res.Slivers)
	}
}

// TestCrossingWiresExact: two crossing wires overlap on one cell; the
// union must count it once and fracturing must stay exact.
func TestCrossingWiresExact(t *testing.T) {
	routes := routesFromWires([]geom.Segment{
		geom.HSeg(1, 5, 0, 10),
		geom.VSeg(1, 5, 0, 10),
	})
	res := Fracture(routes, 1, ModeLShape, Options{})
	if res.Area != 21 {
		t.Fatalf("area = %d, want 21 (22 cells minus 1 overlap)", res.Area)
	}
	checkExact(t, routes, res, 1)
}

// TestDeterministicHash: fracturing the same geometry twice (built in a
// different wire order) yields byte-identical shot lists.
func TestDeterministicHash(t *testing.T) {
	wires := []geom.Segment{
		geom.HSeg(1, 0, 0, 9),
		geom.VSeg(1, 0, 0, 9),
		geom.HSeg(1, 9, 3, 12),
		geom.VSeg(1, 12, 9, 14),
	}
	rev := make([]geom.Segment, len(wires))
	for i, w := range wires {
		rev[len(wires)-1-i] = w
	}
	h1, err := ShotsHash(Fracture(routesFromWires(wires), 1, ModeLShape, Options{}).Shots)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ShotsHash(Fracture(routesFromWires(rev), 1, ModeLShape, Options{}).Shots)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("shot hash depends on input order: %s vs %s", h1[:12], h2[:12])
	}
}

// TestHShapeEvenCycle: an H builds a 4-cycle in the pairing graph (both
// uprights mergeable with top and bottom bars through aligned corners).
// The exact matching must still save two shots.
func TestHShapeEvenCycle(t *testing.T) {
	routes := routesFromWires([]geom.Segment{
		geom.HSeg(1, 0, 0, 10), // bottom bar
		geom.HSeg(1, 9, 0, 10), // top bar
		geom.VSeg(1, 0, 0, 9),  // left upright (corner-aligned with both bars)
		geom.VSeg(1, 10, 0, 9), // right upright
	})
	res := Fracture(routes, 1, ModeLShape, Options{})
	if res.RectShots != 4 {
		t.Fatalf("rect baseline = %d, want 4", res.RectShots)
	}
	if res.ShotCount != 2 || res.LShots != 2 {
		t.Fatalf("H: %d shots (%d L), want 2 (2 L)", res.ShotCount, res.LShots)
	}
	if res.GreedyComponents != 0 {
		t.Errorf("H component fell back to greedy")
	}
	checkExact(t, routes, res, 1)
}

// TestFractureContextCancelled: a cancelled context aborts fracturing.
func TestFractureContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	routes := routesFromWires([]geom.Segment{geom.HSeg(1, 0, 0, 9)})
	if _, err := FractureContext(ctx, routes, 1, ModeLShape, Options{}); err == nil {
		t.Fatal("cancelled fracture returned nil error")
	}
}

// TestOddComponentBnB drives the branch-and-bound path with a forced
// odd-cycle pairing graph via the internal matcher. The 5-cycle's
// maximum matching has 2 pairs (5 shots -> 3).
func TestOddComponentBnB(t *testing.T) {
	adj := [][]int{
		{1, 4},
		{0, 2},
		{1, 3},
		{2, 4},
		{3, 0},
	}
	nodes := []int{0, 1, 2, 3, 4}
	pairing := []int{-1, -1, -1, -1, -1}
	res := &Result{}
	if err := matchBnB(context.Background(), nodes, adj, pairing, res); err != nil {
		t.Fatal(err)
	}
	pairs := 0
	for v, u := range pairing {
		if u >= 0 {
			if pairing[u] != v {
				t.Fatalf("pairing not mutual: %v", pairing)
			}
			pairs++
		}
	}
	if pairs != 4 { // 2 pairs, counted from both ends
		t.Fatalf("odd 5-cycle matched %d endpoints, want 4 (pairing %v)", pairs, pairing)
	}
	if res.MatchNodes == 0 {
		t.Error("branch and bound expanded no nodes")
	}
}

// TestEmptyRoutes: no geometry, no shots, no layer stats.
func TestEmptyRoutes(t *testing.T) {
	res := Fracture(nil, 3, ModeLShape, Options{})
	if res.ShotCount != 0 || len(res.Layers) != 0 || len(res.Shots) != 0 {
		t.Fatalf("empty input produced %+v", res)
	}
}

func TestParseMode(t *testing.T) {
	if m, err := ParseMode("rect"); err != nil || m != ModeRect {
		t.Errorf("ParseMode(rect) = %v, %v", m, err)
	}
	if m, err := ParseMode("lshape"); err != nil || m != ModeLShape {
		t.Errorf("ParseMode(lshape) = %v, %v", m, err)
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) succeeded")
	}
}
