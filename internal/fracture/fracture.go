// Package fracture implements the first stage of the MEBL write-prep
// pipeline: converting committed routed geometry into e-beam shots.
//
// A variable-shaped-beam (VSB) or character-projection (CP) writer cannot
// expose arbitrary rectilinear polygons; mask data preparation fractures
// each layer's polygons into shots, and the shot count is the dominant
// term of write time. This package provides two fracturing modes over the
// per-layer union of routed wires and via pads:
//
//   - ModeRect — the rectangle-only baseline: a horizontal sweep
//     decomposition that emits one maximal-height rectangle per maximal
//     run of identical row coverage.
//   - ModeLShape — L-shape fracturing after "L-Shape Based Layout
//     Fracturing for E-Beam Lithography" (arXiv 1402.2420): vertically
//     adjacent sweep rectangles whose union is an L-shape (exactly one
//     aligned side, six corners) are paired, and a maximum matching over
//     the pairing graph merges each matched pair into a single two-
//     rectangle L shot, strictly reducing the shot count.
//
// The pairing graph is solved exactly per connected component: bipartite
// components through the Hungarian assignment (internal/matching), odd
// components through the branch-and-bound solver (internal/ilp). Only
// components beyond the exact-size caps fall back to a deterministic
// greedy matching, and Result.GreedyComponents reports when that
// happened.
//
// All input orderings are explicit and every tie is broken by geometry,
// so fracturing the same routes twice yields byte-identical shot lists —
// the same determinism contract the router itself carries.
package fracture

import (
	"context"
	"fmt"
	"sort"

	"stitchroute/internal/geom"
	"stitchroute/internal/plan"
)

// Mode selects the fracturing algorithm.
type Mode int

const (
	// ModeRect is the rectangle-only horizontal sweep baseline.
	ModeRect Mode = iota
	// ModeLShape additionally merges rectangle pairs into L-shape shots.
	ModeLShape
)

// ParseMode maps the CLI/API spelling of a mode ("rect" or "lshape").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "rect":
		return ModeRect, nil
	case "lshape":
		return ModeLShape, nil
	}
	return 0, fmt.Errorf("fracture: unknown mode %q (want \"rect\" or \"lshape\")", s)
}

func (m Mode) String() string {
	if m == ModeLShape {
		return "lshape"
	}
	return "rect"
}

// Shot is one e-beam exposure. A rectangle shot has only A and an empty
// B; an L-shape shot is the union of the two disjoint rectangles A and B
// (A is the one with the smaller (Y0, X0)). Note the zero Rect is the
// 1×1 cell at the origin, not empty, so rectangle shots carry noRect.
type Shot struct {
	Layer int
	A     geom.Rect
	B     geom.Rect
}

// noRect is the canonical empty B of a rectangle shot.
var noRect = geom.Rect{X0: 0, Y0: 0, X1: -1, Y1: -1}

// IsL reports whether the shot is an L-shape (two-rectangle) shot.
func (s Shot) IsL() bool { return !s.B.Empty() }

// Area returns the number of grid cells the shot exposes.
func (s Shot) Area() int {
	a := s.A.Area()
	if s.IsL() {
		a += s.B.Area()
	}
	return a
}

// longest returns the longer bounding dimension of the shot's union.
func (s Shot) longest() int {
	r := s.A
	if s.IsL() {
		r = r.Union(s.B)
	}
	if w, h := r.W(), r.H(); w > h {
		return w
	} else {
		return h
	}
}

// Options tunes fracturing.
type Options struct {
	// SliverLen is the sliver threshold: a shot whose union spans fewer
	// than SliverLen tracks in its longer dimension counts as a sliver
	// (the write-prep analog of the router's short polygons: tiny
	// exposures whose edge dose error is a large fraction of the
	// feature). 0 means DefaultSliverLen.
	SliverLen int
	// MaxHungarian caps the component size solved exactly with the
	// Hungarian assignment; 0 means DefaultMaxHungarian.
	MaxHungarian int
	// MaxOddExact caps the (non-bipartite) component size solved exactly
	// with branch and bound; 0 means DefaultMaxOddExact.
	MaxOddExact int
}

// Defaults for Options.
const (
	DefaultSliverLen    = 3
	DefaultMaxHungarian = 256
	DefaultMaxOddExact  = 24
)

func (o Options) withDefaults() Options {
	if o.SliverLen <= 0 {
		o.SliverLen = DefaultSliverLen
	}
	if o.MaxHungarian <= 0 {
		o.MaxHungarian = DefaultMaxHungarian
	}
	if o.MaxOddExact <= 0 {
		o.MaxOddExact = DefaultMaxOddExact
	}
	return o
}

// LayerStats is the per-layer fracturing summary.
type LayerStats struct {
	Layer   int   `json:"layer"`
	Rects   int   `json:"rects"`   // sweep rectangles (= rect-only shots)
	Shots   int   `json:"shots"`   // shots emitted in the selected mode
	LShots  int   `json:"lShots"`  // L-shape shots among them
	Slivers int   `json:"slivers"` // shots under the sliver threshold
	Area    int64 `json:"area"`    // exposed cells (equals the union area)
}

// Result is the fractured shot list with its statistics.
type Result struct {
	Mode  Mode
	Shots []Shot
	// Layers holds per-layer stats, ascending by layer; layers with no
	// geometry are omitted.
	Layers []LayerStats

	// RectShots is the rectangle-only baseline count (the sweep
	// rectangle total); in ModeRect it equals ShotCount.
	RectShots int
	ShotCount int
	LShots    int
	Slivers   int
	Area      int64

	// GreedyComponents counts pairing components beyond the exact-size
	// caps that were matched greedily; 0 means the matching is a proven
	// maximum. MatchNodes is the total branch-and-bound node count.
	GreedyComponents int
	MatchNodes       int
}

// LShapeReduction returns the fractional shot-count reduction of the
// result against its rectangle-only baseline (0 for ModeRect).
func (r *Result) LShapeReduction() float64 {
	if r.RectShots == 0 {
		return 0
	}
	return float64(r.RectShots-r.ShotCount) / float64(r.RectShots)
}

// Fracture fractures the routed geometry of layers 1..layers.
func Fracture(routes []plan.NetRoute, layers int, mode Mode, opts Options) *Result {
	res, err := FractureContext(context.Background(), routes, layers, mode, opts)
	if err != nil {
		// Only context cancellation produces an error, and the background
		// context cannot be cancelled.
		panic("fracture: background context cancelled: " + err.Error())
	}
	return res
}

// FractureContext is Fracture under a context: cancellation is observed
// between layers and inside the branch-and-bound pairing search, and a
// cancelled run returns the context's error.
func FractureContext(ctx context.Context, routes []plan.NetRoute, layers int, mode Mode, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{Mode: mode}
	for l := 1; l <= layers; l++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fracture: %w", err)
		}
		rows := layerRows(routes, l)
		if len(rows) == 0 {
			continue
		}
		rects := sweep(rows)
		ls := LayerStats{Layer: l, Rects: len(rects)}
		for _, r := range rects {
			ls.Area += int64(r.Area())
		}

		var shots []Shot
		if mode == ModeLShape {
			pairing, err := matchLPairs(ctx, rects, opts, res)
			if err != nil {
				return nil, err
			}
			shots = emitShots(l, rects, pairing)
		} else {
			shots = emitShots(l, rects, nil)
		}
		for _, s := range shots {
			if s.IsL() {
				ls.LShots++
			}
			if s.longest() < opts.SliverLen {
				ls.Slivers++
			}
		}
		ls.Shots = len(shots)

		res.Shots = append(res.Shots, shots...)
		res.Layers = append(res.Layers, ls)
		res.RectShots += ls.Rects
		res.ShotCount += ls.Shots
		res.LShots += ls.LShots
		res.Slivers += ls.Slivers
		res.Area += ls.Area
	}
	return res, nil
}

// emitShots converts the sweep rectangles and the pairing (pairing[i] = j
// means rects i and j merge into one L shot; -1 or nil pairing = single)
// into the canonical shot list, ordered by (A.Y0, A.X0, A.Y1, A.X1).
func emitShots(layer int, rects []geom.Rect, pairing []int) []Shot {
	shots := make([]Shot, 0, len(rects))
	for i, r := range rects {
		if pairing != nil && pairing[i] >= 0 {
			j := pairing[i]
			if j < i {
				continue // emitted with its partner
			}
			shots = append(shots, Shot{Layer: layer, A: r, B: rects[j]})
			continue
		}
		shots = append(shots, Shot{Layer: layer, A: r, B: noRect})
	}
	sort.Slice(shots, func(i, j int) bool {
		a, b := shots[i], shots[j]
		if a.A.Y0 != b.A.Y0 {
			return a.A.Y0 < b.A.Y0
		}
		if a.A.X0 != b.A.X0 {
			return a.A.X0 < b.A.X0
		}
		if a.A.Y1 != b.A.Y1 {
			return a.A.Y1 < b.A.Y1
		}
		return a.A.X1 < b.A.X1
	})
	return shots
}

// InputRects returns the raw, possibly overlapping rectangles of the
// routed geometry on one layer: every wire as a one-track-wide rectangle
// and every via as a 1×1 landing pad on both layers it joins. This is
// the exact geometry Fracture decomposes, exposed so the raster
// differential gate can render the unfractured reference.
func InputRects(routes []plan.NetRoute, layer int) []geom.Rect {
	var out []geom.Rect
	for i := range routes {
		for _, w := range routes[i].Wires {
			if w.Layer != layer {
				continue
			}
			a, b := w.Ends()
			out = append(out, geom.NewRect(a, b))
		}
		for _, v := range routes[i].Vias {
			if v.Layer == layer || v.Layer+1 == layer {
				p := geom.Point{X: v.X, Y: v.Y}
				out = append(out, geom.NewRect(p, p))
			}
		}
	}
	return out
}

// ShotRects appends the rectangles of every shot on the layer to dst:
// one per rectangle shot, two per L shot. The rectangles of a correct
// fracturing are pairwise disjoint and cover exactly the layer's union.
func ShotRects(dst []geom.Rect, shots []Shot, layer int) []geom.Rect {
	for _, s := range shots {
		if s.Layer != layer {
			continue
		}
		dst = append(dst, s.A)
		if s.IsL() {
			dst = append(dst, s.B)
		}
	}
	return dst
}

// layerRows builds the exact cell coverage of one layer as maximal
// horizontal runs: rows[k] is row ys[k]'s sorted, disjoint, non-adjacent
// interval list. Wires contribute their one-track-wide footprint and
// vias a 1×1 pad on both layers they join.
func layerRows(routes []plan.NetRoute, layer int) []row {
	raw := map[int][]geom.Interval{}
	add := func(y int, iv geom.Interval) { raw[y] = append(raw[y], iv) }
	for i := range routes {
		for _, w := range routes[i].Wires {
			if w.Layer != layer {
				continue
			}
			if w.Orient == geom.Horizontal {
				add(w.Fixed, w.Span)
			} else {
				for y := w.Span.Lo; y <= w.Span.Hi; y++ {
					add(y, geom.Interval{Lo: w.Fixed, Hi: w.Fixed})
				}
			}
		}
		for _, v := range routes[i].Vias {
			if v.Layer == layer || v.Layer+1 == layer {
				add(v.Y, geom.Interval{Lo: v.X, Hi: v.X})
			}
		}
	}
	ys := make([]int, 0, len(raw))
	for y := range raw {
		ys = append(ys, y)
	}
	sort.Ints(ys)
	rows := make([]row, 0, len(ys))
	for _, y := range ys {
		rows = append(rows, row{y: y, runs: mergeRuns(raw[y])})
	}
	return rows
}

// row is one grid row's coverage: sorted maximal runs.
type row struct {
	y    int
	runs []geom.Interval
}

// mergeRuns sorts the intervals and merges overlapping or cell-adjacent
// ones in place, returning the maximal-run list.
func mergeRuns(ivs []geom.Interval) []geom.Interval {
	if len(ivs) == 0 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		return ivs[i].Hi < ivs[j].Hi
	})
	out := 0
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Lo <= ivs[out].Hi+1 {
			if ivs[i].Hi > ivs[out].Hi {
				ivs[out].Hi = ivs[i].Hi
			}
			continue
		}
		out++
		ivs[out] = ivs[i]
	}
	return ivs[:out+1]
}

// sweep decomposes the row coverage into maximal-height rectangles: a
// run that repeats with the identical span on the next row extends the
// open rectangle; any other transition closes it. The result is sorted
// by (Y0, X0) and is exactly the rectangle-only shot list.
func sweep(rows []row) []geom.Rect {
	type open struct {
		span geom.Interval
		y0   int
	}
	var rects []geom.Rect
	var active []open
	closeAll := func(y1 int) {
		for _, a := range active {
			rects = append(rects, geom.Rect{X0: a.span.Lo, Y0: a.y0, X1: a.span.Hi, Y1: y1})
		}
		active = active[:0]
	}
	prevY := 0
	var next []open
	for ri, r := range rows {
		if ri > 0 && r.y != prevY+1 {
			closeAll(prevY)
		}
		// Merge-join the sorted open rectangles against the sorted runs:
		// identical spans extend, everything else closes/opens.
		next = next[:0]
		ai := 0
		for _, run := range r.runs {
			for ai < len(active) && active[ai].span.Lo < run.Lo {
				rects = append(rects, geom.Rect{X0: active[ai].span.Lo, Y0: active[ai].y0, X1: active[ai].span.Hi, Y1: prevY})
				ai++
			}
			if ai < len(active) && active[ai].span == run {
				next = append(next, open{span: run, y0: active[ai].y0})
				ai++
			} else {
				next = append(next, open{span: run, y0: r.y})
			}
		}
		for ; ai < len(active); ai++ {
			rects = append(rects, geom.Rect{X0: active[ai].span.Lo, Y0: active[ai].y0, X1: active[ai].span.Hi, Y1: prevY})
		}
		active, next = next, active
		prevY = r.y
	}
	closeAll(prevY)
	sort.Slice(rects, func(i, j int) bool {
		if rects[i].Y0 != rects[j].Y0 {
			return rects[i].Y0 < rects[j].Y0
		}
		return rects[i].X0 < rects[j].X0
	})
	return rects
}
