// L-shape pairing: which sweep rectangles merge into two-rectangle L
// shots, and the maximum matching that picks a best disjoint set of
// merges. Every matched pair saves exactly one shot, so maximizing the
// matching minimizes the shot count over this merge family — the
// rectangle-pairing view of arXiv 1402.2420's concave-vertex matching.
package fracture

import (
	"context"
	"fmt"
	"sort"

	"stitchroute/internal/geom"
	"stitchroute/internal/ilp"
	"stitchroute/internal/matching"
)

// lMergeable reports whether the union of two sweep rectangles is an
// L-shape shot. In a horizontal sweep decomposition two distinct
// rectangles can only touch across a row boundary, so the condition is:
// vertically adjacent, x-spans sharing at least one column, and exactly
// one vertical side aligned (both aligned would be a plain rectangle,
// which the sweep already merged; neither aligned is an 8-corner T/Z).
func lMergeable(a, b geom.Rect) bool {
	if a.Y1+1 != b.Y0 && b.Y1+1 != a.Y0 {
		return false
	}
	if a.X0 > b.X1 || b.X0 > a.X1 {
		return false
	}
	return (a.X0 == b.X0) != (a.X1 == b.X1)
}

// matchLPairs builds the pairing graph over the sweep rectangles and
// returns pairing[i] = j for matched pairs (mutual; -1 for unmatched).
// Components are solved exactly where the size caps allow — bipartite
// ones with the Hungarian assignment, odd ones with branch and bound —
// and greedily beyond the caps; res accumulates the solver statistics.
func matchLPairs(ctx context.Context, rects []geom.Rect, opts Options, res *Result) ([]int, error) {
	n := len(rects)
	pairing := make([]int, n)
	for i := range pairing {
		pairing[i] = -1
	}
	if n < 2 {
		return pairing, nil
	}

	// Candidate edges: rects is sorted by (Y0, X0), so bucket rectangle
	// indices by their starting row and probe each rectangle's ending
	// boundary. Adjacency lists come out sorted by construction.
	startRow := map[int][]int{}
	for i, r := range rects {
		startRow[r.Y0] = append(startRow[r.Y0], i)
	}
	adj := make([][]int, n)
	for i, r := range rects {
		for _, j := range startRow[r.Y1+1] {
			if lMergeable(r, rects[j]) {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}

	// Connected components over the pairing graph, in index order.
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int
	for i := 0; i < n; i++ {
		if comp[i] >= 0 || len(adj[i]) == 0 {
			continue
		}
		var nodes []int
		comp[i] = i
		queue = append(queue[:0], i)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			nodes = append(nodes, v)
			for _, u := range adj[v] {
				if comp[u] < 0 {
					comp[u] = i
					queue = append(queue, u)
				}
			}
		}
		sort.Ints(nodes)
		if err := matchComponent(ctx, nodes, adj, pairing, opts, res); err != nil {
			return nil, err
		}
	}
	return pairing, nil
}

// matchComponent maximum-matches one connected component and writes the
// result into pairing.
func matchComponent(ctx context.Context, nodes []int, adj [][]int, pairing []int, opts Options, res *Result) error {
	if len(nodes) == 2 {
		pairing[nodes[0]] = nodes[1]
		pairing[nodes[1]] = nodes[0]
		return nil
	}
	if sideA, sideB, ok := twoColor(nodes, adj); ok {
		if len(nodes) <= opts.MaxHungarian {
			matchBipartite(sideA, sideB, adj, pairing)
			return nil
		}
	} else if len(nodes) <= opts.MaxOddExact {
		return matchBnB(ctx, nodes, adj, pairing, res)
	}
	res.GreedyComponents++
	matchGreedy(nodes, adj, pairing)
	return nil
}

// twoColor attempts to 2-color the component; on success it returns the
// two color classes in ascending index order.
func twoColor(nodes []int, adj [][]int) (sideA, sideB []int, ok bool) {
	color := make(map[int]int, len(nodes))
	queue := []int{nodes[0]}
	color[nodes[0]] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if c, seen := color[u]; seen {
				if c == color[v] {
					return nil, nil, false
				}
				continue
			}
			color[u] = 1 - color[v]
			queue = append(queue, u)
		}
	}
	for _, v := range nodes {
		if color[v] == 0 {
			sideA = append(sideA, v)
		} else {
			sideB = append(sideB, v)
		}
	}
	return sideA, sideB, true
}

// matchBipartite solves maximum matching on a bipartite component as a
// min-cost perfect assignment: pad both sides to equal size, charge 0
// for a real mergeable pair and 1 for anything else; the Hungarian
// minimum then uses as many real pairs as possible.
func matchBipartite(sideA, sideB []int, adj [][]int, pairing []int) {
	n := len(sideA)
	if len(sideB) > n {
		n = len(sideB)
	}
	posB := make(map[int]int, len(sideB))
	for bi, v := range sideB {
		posB[v] = bi
	}
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
		for j := range cost[i] {
			cost[i][j] = 1
		}
	}
	for ai, v := range sideA {
		for _, u := range adj[v] {
			cost[ai][posB[u]] = 0
		}
	}
	assign, _ := matching.MinCostPerfect(cost)
	for ai, bi := range assign {
		if ai < len(sideA) && bi < len(sideB) && cost[ai][bi] == 0 {
			a, b := sideA[ai], sideB[bi]
			pairing[a] = b
			pairing[b] = a
		}
	}
}

// matchProblem is the branch-and-bound model for exact maximum matching
// on a small odd component: variables are the component's rectangles in
// index order; each is either covered by an earlier pair (cost 0), left
// single (cost 1 — one shot), or paired with a later unmatched neighbor
// (cost 1 — one shot for two rectangles). The minimum total cost is the
// component's minimum shot count.
type matchProblem struct {
	nodes   []int       // sorted rectangle indices
	pos     map[int]int // rectangle index -> variable
	nbrs    [][]int     // per variable: neighbor variables, ascending
	matched []bool      // by variable, maintained via Apply/Undo
}

// Candidate values: -2 = covered by an earlier pair, -1 = single,
// >= 0 = the partner variable of a new pair.
func (p *matchProblem) NumVars() int { return len(p.nodes) }

func (p *matchProblem) Candidates(v int, dst []ilp.Candidate) []ilp.Candidate {
	if p.matched[v] {
		return append(dst, ilp.Candidate{Value: -2, Cost: 0})
	}
	for _, u := range p.nbrs[v] {
		if u > v && !p.matched[u] {
			dst = append(dst, ilp.Candidate{Value: u, Cost: 1})
		}
	}
	return append(dst, ilp.Candidate{Value: -1, Cost: 1})
}

func (p *matchProblem) Apply(v, val int) {
	if val >= 0 {
		p.matched[v] = true
		p.matched[val] = true
	}
}

func (p *matchProblem) Undo(v, val int) {
	if val >= 0 {
		p.matched[v] = false
		p.matched[val] = false
	}
}

// bnbNodeBudget bounds the branch-and-bound search per component. The
// cap exists only as a backstop: components at MaxOddExact size stay far
// below it, so the matching remains exact in practice.
const bnbNodeBudget = 1 << 20

func matchBnB(ctx context.Context, nodes []int, adj [][]int, pairing []int, res *Result) error {
	p := &matchProblem{
		nodes:   nodes,
		pos:     make(map[int]int, len(nodes)),
		nbrs:    make([][]int, len(nodes)),
		matched: make([]bool, len(nodes)),
	}
	for vi, v := range nodes {
		p.pos[v] = vi
	}
	for vi, v := range nodes {
		for _, u := range adj[v] {
			p.nbrs[vi] = append(p.nbrs[vi], p.pos[u])
		}
		sort.Ints(p.nbrs[vi])
	}
	sol := ilp.SolveContext(ctx, p, bnbNodeBudget, 0)
	res.MatchNodes += sol.Nodes
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("fracture: %w", err)
	}
	if sol.Values == nil {
		// Cannot happen — every variable always has the single candidate —
		// but fall back to greedy rather than drop the component.
		res.GreedyComponents++
		matchGreedy(nodes, adj, pairing)
		return nil
	}
	for vi, val := range sol.Values {
		if val >= 0 {
			a, b := nodes[vi], nodes[val]
			pairing[a] = b
			pairing[b] = a
		}
	}
	return nil
}

// matchGreedy is the deterministic fallback for oversized components:
// scan rectangles in index order and take the first available neighbor.
func matchGreedy(nodes []int, adj [][]int, pairing []int) {
	for _, v := range nodes {
		if pairing[v] >= 0 {
			continue
		}
		for _, u := range adj[v] {
			if pairing[u] < 0 {
				pairing[v] = u
				pairing[u] = v
				break
			}
		}
	}
}
