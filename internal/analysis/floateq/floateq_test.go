package floateq_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/floateq"
)

func TestAnalyzer(t *testing.T) {
	analyzertest.Run(t, "../testdata", floateq.Analyzer, "floateq")
}
