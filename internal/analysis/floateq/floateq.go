// Package floateq defines an analyzer that flags == and != on
// floating-point expressions.
//
// Routing costs are accumulated floats (congestion, half-perimeter,
// stitch penalties); two different evaluation orders of the same cost can
// differ in the last ulp, so exact equality silently turns into
// "usually true". Tie-breaks and convergence tests on float costs must
// use an explicit epsilon (the detail router's A* already does:
// re-expansion uses d < dist[i]-1e-12) or compare the integer quantities
// the floats were derived from.
//
// Exempt as deliberately exact: comparisons against literal zero (the
// unset-sentinel idiom), x != x / x == x (the NaN test), comparisons of
// two untyped constants, and comparisons against math.Inf(..) or
// math.MaxFloat64-style sentinels written as constants.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"stitchroute/internal/analysis"
)

// Analyzer flags exact floating-point equality comparisons.
var Analyzer = &analysis.Analyzer{
	Name:    "floateq",
	Version: 1,
	Doc: "flag ==/!= on floating-point expressions\n\n" +
		"Float cost comparisons must use an epsilon or compare the underlying integers; exact equality is evaluation-order-dependent.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	pass.Preorder(func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		if !isFloat(pass.TypeOf(bin.X)) && !isFloat(pass.TypeOf(bin.Y)) {
			return true
		}
		if exempt(pass, bin) {
			return true
		}
		pass.Reportf(bin.Pos(),
			"floating-point %s comparison (%s %s %s); use an epsilon comparison (math.Abs(a-b) <= eps) or compare the integer source quantities",
			bin.Op, types.ExprString(bin.X), bin.Op, types.ExprString(bin.Y))
		return true
	})
	return nil, nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func exempt(pass *analysis.Pass, bin *ast.BinaryExpr) bool {
	xv := constValue(pass, bin.X)
	yv := constValue(pass, bin.Y)
	// Both constant: evaluated at compile time, exact by definition.
	if xv != nil && yv != nil {
		return true
	}
	// Comparison against exact zero: the unset-sentinel idiom. Zero is
	// exactly representable and survives every evaluation order.
	if isZero(xv) || isZero(yv) {
		return true
	}
	// x != x / x == x: the NaN test.
	if types.ExprString(bin.X) == types.ExprString(bin.Y) {
		return true
	}
	// Comparison against an infinity sentinel (math.Inf(±1)): Inf is
	// absorbing, so == is exact.
	if isInfCall(pass, bin.X) || isInfCall(pass, bin.Y) {
		return true
	}
	return false
}

func constValue(pass *analysis.Pass, e ast.Expr) constant.Value {
	if pass.TypesInfo == nil {
		return nil
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Value
	}
	return nil
}

func isZero(v constant.Value) bool {
	if v == nil || v.Kind() == constant.Unknown {
		return false
	}
	return constant.Compare(v, token.EQL, constant.MakeInt64(0))
}

func isInfCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && f.Pkg() != nil && f.Pkg().Path() == "math" && (f.Name() == "Inf" || f.Name() == "NaN")
}
