// Package load turns Go package patterns into parsed, type-checked
// syntax for the stitchvet analyzers.
//
// It deliberately avoids golang.org/x/tools/go/packages (the repo vendors
// nothing): instead it shells out to `go list -export -deps -json`, which
// both enumerates the packages matching the patterns and compiles export
// data for every dependency, then parses the target packages' sources
// itself and type-checks them with the standard library's gc-export-data
// importer. The result is full types.Info at a fraction of the machinery.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one parsed and type-checked package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// TypeErrors collects soft type-checking errors. Analyzers still
	// run on partially checked packages; the driver surfaces these
	// separately so a broken build is not silently linted.
	TypeErrors []error
}

// listedPackage mirrors the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,DepOnly,Standard,Incomplete,Error"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files produced by
// `go list -export`, via the standard gc importer.
type exportImporter struct {
	base    types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	imp := &exportImporter{exports: exports}
	imp.base = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return imp
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	return i.base.Import(path)
}

// Packages loads every package matching the go-list patterns (typically
// "./..."), parsed with comments and fully type-checked. Packages are
// returned sorted by import path so drivers are deterministic.
func Packages(patterns ...string) ([]*Package, error) {
	listed, err := goList("", patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Name == "" {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(a, b int) bool { return targets[a].ImportPath < targets[b].ImportPath })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		files := append(append([]string(nil), t.GoFiles...), t.CgoFiles...)
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Dir loads the single package rooted at dir (every non-test .go file in
// it), resolving its imports through freshly built export data. It exists
// for analyzertest fixtures, which live under testdata/ where go list
// does not reach; fixture imports must be resolvable from the enclosing
// module (in practice: standard library packages).
func Dir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	var asts []*ast.File
	importSet := make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil && path != "unsafe" {
				importSet[path] = true
			}
		}
	}

	exports := make(map[string]string)
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := newExportImporter(fset, exports)
	return checkParsed(fset, imp, filepath.Base(dir), dir, asts)
}

func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, fileNames []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	return checkParsed(fset, imp, pkgPath, dir, asts)
}

func checkParsed(fset *token.FileSet, imp types.Importer, pkgPath, dir string, asts []*ast.File) (*Package, error) {
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   asts,
		TypesInfo: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkgPath, fset, asts, pkg.TypesInfo)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	pkg.Types = tpkg
	if len(asts) > 0 {
		pkg.Name = asts[0].Name.Name
	}
	return pkg, nil
}
