// Package load turns Go package patterns into parsed, type-checked
// syntax for the stitchvet analyzers.
//
// It deliberately avoids golang.org/x/tools/go/packages (the repo vendors
// nothing): instead it shells out to `go list -export -deps -json`, which
// both enumerates the packages matching the patterns and compiles export
// data for every dependency, then parses the target packages' sources
// itself and type-checks them with the standard library's gc-export-data
// importer. The result is full types.Info at a fraction of the machinery.
//
// Loading is split in two so the incremental driver can schedule work:
// List enumerates package metadata (files, first-party imports, export
// data) without touching any source, and a Loader parses + type-checks
// arbitrary subsets of the listed packages — in parallel, since the
// shared token.FileSet and the gc export-data reader are the only shared
// state and both are guarded.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Package is one parsed and type-checked package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// TypeErrors collects soft type-checking errors. Analyzers still
	// run on partially checked packages; the driver surfaces these
	// separately so a broken build is not silently linted.
	TypeErrors []error
}

// Meta is one listed (but not yet loaded) first-party package: enough
// metadata for the driver to hash its inputs and order the import DAG
// without parsing a single source file.
type Meta struct {
	PkgPath string
	Name    string
	Dir     string
	// GoFiles are the package's compiled sources as absolute paths
	// (GoFiles + CgoFiles from go list, in list order).
	GoFiles []string
	// Imports holds the import paths of first-party dependencies only;
	// standard-library imports are covered by the toolchain version.
	Imports []string
}

// listedPackage mirrors the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,Imports,DepOnly,Standard,Incomplete,Error"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files produced by
// `go list -export`, via the standard gc importer. The gc importer keeps
// an internal package map that is not documented concurrency-safe, so
// Import is serialized; type-checking proper still overlaps across
// goroutines.
type exportImporter struct {
	mu      sync.Mutex
	base    types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	imp := &exportImporter{exports: exports}
	imp.base = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return imp
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.base.Import(path)
}

// List enumerates the first-party packages matching the go-list patterns
// without loading them, returning the metas sorted by import path plus
// the export-data map covering every dependency (the input LoadMetas
// needs to resolve imports).
func List(patterns ...string) ([]*Meta, map[string]string, error) {
	listed, err := goList("", patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string)
	firstParty := make(map[string]bool)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			firstParty[p.ImportPath] = true
		}
		if p.DepOnly || p.Name == "" {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(a, b int) bool { return targets[a].ImportPath < targets[b].ImportPath })

	var metas []*Meta
	for _, t := range targets {
		m := &Meta{PkgPath: t.ImportPath, Name: t.Name, Dir: t.Dir}
		for _, f := range append(append([]string(nil), t.GoFiles...), t.CgoFiles...) {
			if !filepath.IsAbs(f) {
				f = filepath.Join(t.Dir, f)
			}
			m.GoFiles = append(m.GoFiles, f)
		}
		for _, imp := range t.Imports {
			if firstParty[imp] {
				m.Imports = append(m.Imports, imp)
			}
		}
		sort.Strings(m.Imports)
		metas = append(metas, m)
	}
	return metas, exports, nil
}

// Loader parses and type-checks listed packages on demand. All packages
// loaded through one Loader share a single FileSet (so positions from any
// of them resolve uniformly) and one export-data importer (so each
// dependency's export data is read once, however many Load calls happen).
type Loader struct {
	fset *token.FileSet
	imp  *exportImporter
}

// NewLoader returns a Loader resolving imports from the export-data map
// produced by List.
func NewLoader(exports map[string]string) *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: newExportImporter(fset, exports)}
}

// Fset returns the FileSet shared by every package this Loader loads.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses and type-checks the given listed packages in parallel
// (bounded by GOMAXPROCS). The result order matches the input order.
func (l *Loader) Load(metas []*Meta) ([]*Package, error) {
	fset, imp := l.fset, l.imp
	out := make([]*Package, len(metas))
	errs := make([]error, len(metas))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(metas) {
		workers = len(metas)
	}
	if workers < 1 {
		workers = 1
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= len(metas) {
					return
				}
				m := metas[i]
				out[i], errs[i] = check(fset, imp, m.PkgPath, m.Dir, m.GoFiles)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Packages loads every package matching the go-list patterns (typically
// "./..."), parsed with comments and fully type-checked. Packages are
// returned sorted by import path so drivers are deterministic.
func Packages(patterns ...string) ([]*Package, error) {
	metas, exports, err := List(patterns...)
	if err != nil {
		return nil, err
	}
	return NewLoader(exports).Load(metas)
}

// Dir loads the single package rooted at dir (every non-test .go file in
// it), resolving its imports through freshly built export data. It exists
// for analyzertest fixtures, which live under testdata/ where go list
// does not reach; fixture imports must be resolvable from the enclosing
// module (in practice: standard library packages).
func Dir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	var asts []*ast.File
	importSet := make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil && path != "unsafe" {
				importSet[path] = true
			}
		}
	}

	exports := make(map[string]string)
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := newExportImporter(fset, exports)
	return checkParsed(fset, imp, filepath.Base(dir), dir, asts)
}

func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, fileNames []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range fileNames {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	return checkParsed(fset, imp, pkgPath, dir, asts)
}

func checkParsed(fset *token.FileSet, imp types.Importer, pkgPath, dir string, asts []*ast.File) (*Package, error) {
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   asts,
		TypesInfo: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkgPath, fset, asts, pkg.TypesInfo)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	pkg.Types = tpkg
	if len(asts) > 0 {
		pkg.Name = asts[0].Name.Name
	}
	return pkg, nil
}
