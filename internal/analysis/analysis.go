// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// that runs over one type-checked package at a time and reports
// position-tagged diagnostics.
//
// The repo vendors no third-party modules (and the build environment is
// offline), so instead of depending on x/tools this package re-creates the
// small slice of its API that the stitchvet analyzers need. Analyzers are
// written exactly as they would be against the real framework — a
// migration to x/tools, should the dependency ever become available, is a
// mechanical import swap.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"stitchroute/internal/analysis/callgraph"
	"stitchroute/internal/analysis/load"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. By convention it is a single
	// lower-case word.
	Name string

	// Doc is the analyzer's documentation: first line is a one-phrase
	// summary, the rest explains the invariant it enforces.
	Doc string

	// Version is bumped whenever the analyzer's behaviour changes in a
	// way that can alter its diagnostics. It feeds the driver's cache
	// fingerprint: a stale on-disk finding set keyed under an old
	// version can never be replayed for a newer analyzer.
	Version int

	// Packages optionally restricts which packages the driver runs
	// this analyzer on (for module analyzers: which packages it
	// *reports* in — summaries are still computed module-wide). Each
	// entry is matched as a full import path or a path suffix
	// (e.g. "internal/server"). Empty means every package. Test
	// harnesses ignore this field and run the analyzer directly.
	Packages []string

	// Run applies the check to one package. Nil for analyzers that are
	// interprocedural only.
	Run func(*Pass) (interface{}, error)

	// RunModule, when non-nil, applies the check once to the whole
	// module with the call graph available. The driver prefers
	// RunModule over Run when both are set, so an analyzer can carry
	// an intra-package fallback for fixture harnesses.
	RunModule func(*ModulePass) error
}

// Matches reports whether the analyzer's package filter admits the given
// import path.
func (a *Analyzer) Matches(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			return true
		}
	}
	return false
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report publishes a diagnostic. The driver wires this to its
	// collector; analyzers should normally call Reportf instead.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position in the package's file set and a
// human-readable message, optionally carrying machine-applicable fixes.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string

	// SuggestedFixes lists concrete edits that resolve the finding.
	// Every fix must be semantics-preserving on its own; the driver's
	// -fix mode applies the first fix of each unsuppressed diagnostic,
	// formats the result, and re-analyzes to verify the finding is
	// gone.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained resolution for a diagnostic.
type SuggestedFix struct {
	// Message describes the fix, e.g. "make the error discard explicit".
	Message string
	// TextEdits are applied together. They must not overlap.
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText. Pos == End
// inserts.
type TextEdit struct {
	Pos, End token.Pos
	NewText  []byte
}

// ModulePass carries the whole loaded module — every first-party package
// plus the static call graph over them — to an interprocedural analyzer.
// All packages share one token.FileSet, so positions from any package
// resolve through Fset.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Packages []*load.Package
	Graph    *callgraph.Graph

	// Filter, when true (the driver sets it), makes Match honor the
	// analyzer's Packages list. Test harnesses leave it false so
	// fixtures under arbitrary paths are still checked.
	Filter bool

	// Report publishes a diagnostic; analyzers should normally call
	// Reportf.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	mp.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Match reports whether diagnostics should be raised in the given
// package (summaries are computed everywhere regardless).
func (mp *ModulePass) Match(pkgPath string) bool {
	return !mp.Filter || mp.Analyzer.Matches(pkgPath)
}

// TypeOf returns the type of expression e, or nil if unknown. It mirrors
// (*types.Info).TypeOf but tolerates a nil info for robustness in tests.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// Preorder walks every file in the pass in depth-first preorder, calling f
// for each node; if f returns false the node's children are skipped.
func (p *Pass) Preorder(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
