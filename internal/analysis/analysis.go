// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// that runs over one type-checked package at a time and reports
// position-tagged diagnostics.
//
// The repo vendors no third-party modules (and the build environment is
// offline), so instead of depending on x/tools this package re-creates the
// small slice of its API that the stitchvet analyzers need. Analyzers are
// written exactly as they would be against the real framework — a
// migration to x/tools, should the dependency ever become available, is a
// mechanical import swap.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. By convention it is a single
	// lower-case word.
	Name string

	// Doc is the analyzer's documentation: first line is a one-phrase
	// summary, the rest explains the invariant it enforces.
	Doc string

	// Packages optionally restricts which packages the driver runs
	// this analyzer on. Each entry is matched as a full import path or
	// a path suffix (e.g. "internal/server"). Empty means every
	// package. Test harnesses ignore this field and run the analyzer
	// directly.
	Packages []string

	// Run applies the check to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report publishes a diagnostic. The driver wires this to its
	// collector; analyzers should normally call Reportf instead.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position in the package's file set and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
}

// TypeOf returns the type of expression e, or nil if unknown. It mirrors
// (*types.Info).TypeOf but tolerates a nil info for robustness in tests.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// Preorder walks every file in the pass in depth-first preorder, calling f
// for each node; if f returns false the node's children are skipped.
func (p *Pass) Preorder(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
