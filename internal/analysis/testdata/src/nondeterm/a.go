// Fixture for the nondeterm analyzer. The headline cases are the ones
// the syntactic analyzers provably miss: a nondeterministic value that
// travels through one or more assignments (or a helper call) before
// reaching routing state. mapiterorder only looks inside the literal
// range body, so seedHeapViaLocal below is invisible to it.
package nondeterm

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

type node struct {
	cost int64
	x, y int
}

type stats struct {
	Elapsed time.Duration
	Pushes  int
}

type intHeap struct{ xs []int }

func (h *intHeap) push(x int) { h.xs = append(h.xs, x) }

// timeChain is the c18208f bug class rewritten as a two-step dataflow
// chain: the wall-clock value passes through two locals before landing in
// a cost field. No syntactic check connects the dots; the taint engine
// must.
func timeChain(n *node) {
	t := time.Now().UnixNano()
	j := t % 8
	n.cost = j // want `run-dependent value reaches field n\.cost`
}

// jitter hides the source behind a package-local helper; the call-summary
// fixpoint must carry the taint to the caller.
func jitter() int64 { return time.Now().UnixNano() }

func helperChain(n *node) {
	n.cost = jitter() // want `run-dependent value reaches field n\.cost`
}

// seedHeapViaLocal is the must-flag case mapiterorder cannot see: the
// map-ordered value is stashed in a local inside the range body, and the
// heap push happens after the loop. Flow-sensitivity or nothing.
func seedHeapViaLocal(sources map[int]int, h *intHeap) {
	last := 0
	for s := range sources {
		last = s
	}
	h.push(last) // want `iteration-order-dependent value reaches heap push argument`
}

// seedHeapSorted is the shipped fix: sorting launders the order taint, so
// neither the loop nor the pushes may be flagged.
func seedHeapSorted(sources map[int]int, h *intHeap) {
	keys := make([]int, 0, len(sources))
	for s := range sources {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	for _, s := range keys {
		h.push(s)
	}
}

// recordTelemetry writes wall-clock values into timing fields, which is
// reporting rather than routing: exempt by field type and name.
func recordTelemetry(st *stats, t0 time.Time) {
	st.Elapsed = time.Since(t0)
	st.Pushes++
}

// strongUpdate kills the taint by overwriting the variable before it
// reaches the sink; a flow-insensitive analysis would still flag this.
func strongUpdate(n *node) {
	t := time.Now().UnixNano()
	t = 0
	n.cost = t
}

// benchSeeded uses a constant seed: the stream is reproducible, so the
// values may flow into routing state.
func benchSeeded(n *node) {
	r := rand.New(rand.NewSource(42))
	n.cost = int64(r.Intn(100))
}

// globalRand draws from the global RNG, seeded nondeterministically at
// startup.
func globalRand(n *node) {
	n.cost = rand.Int63() // want `run-dependent value reaches field n\.cost`
}

// selectOrder: with two ready channels, which case fires is
// scheduling-dependent; the received value must not steer routing.
func selectOrder(a, b chan int, n *node) {
	var got int
	select {
	case v := <-a:
		got = v
	case v := <-b:
		got = v
	}
	n.cost = int64(got) // want `iteration-order-dependent value reaches field n\.cost`
}

// ptrKey formats a pointer: the text changes every run, so using it as a
// map key builds a different map each time.
func ptrKey(n *node, m map[string]int) {
	k := fmt.Sprintf("%p", n)
	m[k] = 1 // want `run-dependent value reaches element of m`
}

// intAccumulate is order-independent: summing integers over a map range
// yields the same total in every order.
func intAccumulate(w map[int]int, n *node) {
	sum := 0
	for _, v := range w {
		sum += v
	}
	n.cost = int64(sum)
}

// floatAccumulate is not: float addition rounds differently in different
// orders, so the result is order-tainted.
func floatAccumulate(w map[int]float64, res []float64) {
	var f float64
	for _, v := range w {
		f += v
	}
	res[0] = f // want `iteration-order-dependent value reaches element of res`
}

// mapCopy builds a map from a map range: same set in, same map out —
// order taint must not flag set-semantics writes.
func mapCopy(src, dst map[int]int) {
	for k, v := range src {
		dst[k] = v
	}
}
