// Fixture for the hotalloc analyzer. It mirrors the shape of
// internal/detail: a routeNet root whose loop body must stay
// allocation-free, arenas (searchCtx) whose growth is sanctioned, and a
// helper that hides an allocation behind a call — the case no syntactic
// analyzer can connect to the search loop.
package hotalloc

type cell struct{ x, y int }

type searchCtx struct {
	nodes []int
	rev   []cell
}

// grow is arena growth: the allocation lands in an arena field, which is
// the sanctioned way to allocate. Must not flag even though grow is
// called from inside the search loop.
func (sc *searchCtx) grow(n int) {
	if len(sc.nodes) < n {
		sc.nodes = make([]int, n)
	}
}

// helperAlloc hides a per-iteration allocation behind a call. The PR 3
// syntactic analyzers never flag this — only call-graph reachability
// connects it to routeNet's loop.
func helperAlloc() []cell {
	return make([]cell, 8) // want `make in helperAlloc, which runs per search-loop iteration`
}

func box(v interface{}) { _ = v }

type router struct{ occ []int }

func (r *router) routeNet(sc *searchCtx, nets []cell) {
	// One-time setup dominated by function entry: allowed.
	buf := make([]cell, 0, len(nets))
	_ = buf
	for i := 0; i < len(nets); i++ {
		sc.grow(i)
		spill := helperAlloc()
		_ = spill
		tmp := make([]cell, 4) // want `make inside the per-net search loop`
		_ = tmp
		// Arena-derived reslice + append reuses arena capacity: allowed.
		rev := sc.rev[:0]
		rev = append(rev, nets[i])
		sc.rev = rev
		// A fresh slice growing per iteration is a heap allocation.
		var out []cell
		out = append(out, nets[i]) // want `append growth of non-arena slice`
		_ = out
		fn := func() int { return i } // want `closure created inside the per-net search loop`
		_ = fn()
		box(i)             // want `interface boxing of int argument`
		lit := []int{1, 2} // want `slice literal inside the per-net search loop`
		_ = lit
	}
	// Entry-created closure: one-time setup, allowed.
	done := func() {}
	done()
}

// coldPath allocates freely: it is not reachable from routeNet, so none
// of this is hot.
func coldPath() [][]int {
	var all [][]int
	for i := 0; i < 4; i++ {
		m := make([]int, i)
		all = append(all, m)
	}
	return all
}
