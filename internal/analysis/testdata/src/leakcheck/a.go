// Fixture for the leakcheck analyzer. It mirrors the repo's real spawn
// shapes: the sched.go fan-out joined by wg.Wait, the server pool's
// WaitGroup-field protocol split across New/worker/Shutdown, the
// meblserved errc+select shape, and ctx-done self-terminating monitors —
// plus the leaks: spawn-and-forget through a helper call, and a receive
// that exists in the function but is CFG-unreachable from the spawn.
package leakcheck

import (
	"context"
	"sync"
	"sync/atomic"
)

func work() {
	for i := 0; i < 1000; i++ {
		_ = i
	}
}

// spawnAndForget leaks through a call: the goroutine body is the
// package-local function work, which never blocks. A syntactic check
// would have to see through the call to know the body has no exit
// condition — this is the two-step case.
func spawnAndForget() {
	go work() // want `goroutine is never joined`
}

// busyLoop leaks in the literal itself.
func busyLoop() {
	go func() { // want `goroutine is never joined`
		for {
			_ = 1
		}
	}()
}

// joinBeforeSpawn has a receive in the function, but on no CFG path
// after the spawn — a textual scan for "go + <-" would pass it.
func joinBeforeSpawn(c chan int) {
	<-c
	go work() // want `goroutine is never joined`
}

// fakeJoin's receive is inside a function literal that is never the
// spawner's own control flow.
func fakeJoin(c chan int) {
	go work() // want `goroutine is never joined`
	cb := func() { <-c }
	_ = cb
}

// localWaitGroup is the sched.go shape: Add, spawn, Wait in one
// function. The Wait after the spawn joins.
func localWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// deferredWait joins at function exit; defers run on every path.
func deferredWait() {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// errcReceive is the meblserved shape: the spawner blocks in a select on
// either the goroutine's error or cancellation.
func errcReceive(ctx context.Context, run func() error) error {
	errc := make(chan error, 1)
	go func() { errc <- run() }()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case err := <-errc:
		return err
	}
}

// monitor self-terminates: its body observes ctx.Done, so cancellation
// reaps it even though the spawner never joins.
func monitor(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

// drain resolves the goroutine body through a static callee: drainChan
// ranges over the channel, so closing it terminates the goroutine.
func drainChan(c chan int) {
	for range c {
	}
}

func drain(c chan int) {
	go drainChan(c)
}

// pool is the server shape: the spawn site (start), the Wait (stop), and
// the Done (worker) live in three different functions, tied together by
// the WaitGroup struct field.
type pool struct {
	wg   sync.WaitGroup
	jobs chan int
}

func (p *pool) worker() {
	defer p.wg.Done()
	for range p.jobs {
	}
}

func (p *pool) start(n int) {
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
}

func (p *pool) stop() {
	close(p.jobs)
	p.wg.Wait()
}

// batch exercises the field protocol with a body that never blocks on a
// channel: only the Add-here/Wait-elsewhere pairing on the same struct
// field makes this safe.
type batch struct {
	wg sync.WaitGroup
}

func (b *batch) run(n int) {
	b.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer b.wg.Done()
			work()
		}()
	}
}

func (b *batch) join() {
	b.wg.Wait()
}

// orphan has a WaitGroup field too, but nothing in the package ever
// Waits on it, so the protocol does not hold.
type orphan struct {
	wg sync.WaitGroup
}

func (o *orphan) start() {
	o.wg.Add(1)
	go work() // want `goroutine is never joined`
}

// arena is per-worker scratch for the speculative-round shape below.
type arena struct{ busy int }

// specRound is the speculative scheduler's round: a per-round WaitGroup,
// parameterized worker literals pulling attempt indices off a shared
// atomic counter (the body's only exit is the counter bound, not a
// channel), joined by wg.Wait before the commit phase — all inside the
// scheduler's outer loop. Must not flag: every round reaps its workers.
func specRound(work []int, arenas []*arena) {
	for len(work) > 0 {
		var next int64
		var wg sync.WaitGroup
		nw := len(arenas)
		if nw > len(work) {
			nw = len(work)
		}
		for w := 0; w < nw; w++ {
			sc := arenas[w]
			wg.Add(1)
			go func(sc *arena) {
				defer wg.Done()
				for {
					k := int(atomic.AddInt64(&next, 1)) - 1
					if k >= len(work) {
						break
					}
					sc.busy += work[k]
				}
			}(sc)
		}
		wg.Wait()
		work = work[:len(work)-1]
	}
}

// specRoundConditional spawns only when there is work this round; the
// Wait sits on the same conditional path as the spawns. Must not flag:
// every CFG path from a spawn reaches the join.
func specRoundConditional(work []int, arenas []*arena) {
	for rounds := 0; rounds < 8; rounds++ {
		if len(work) == 0 {
			continue
		}
		var wg sync.WaitGroup
		for _, sc := range arenas {
			wg.Add(1)
			go func(sc *arena) {
				defer wg.Done()
				sc.busy++
			}(sc)
		}
		wg.Wait()
		work = work[1:]
	}
}
