// Fixture for the mapiterorder analyzer. The first pair of functions
// reproduces the c18208f bug byte-for-byte in miniature: the global A*
// seeded its priority heap straight from a map range (must flag) and the
// shipped fix iterates sorted keys (must not flag).
package mapiterorder

import (
	"container/heap"
	"slices"
	"sort"
)

type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// seedHeapFromMap is the c18208f A* reroute bug: heap seeded in map
// iteration order, so pop order (and every tie-break downstream) differs
// between runs.
func seedHeapFromMap(sources map[int]float64, h *intHeap) {
	for s := range sources {
		heap.Push(h, s) // want `heap push inside range over map`
	}
}

// seedHeapSorted is the shipped fix: keys are collected, sorted, and only
// then pushed. Neither loop may be flagged — the collect loop's append is
// followed by a sort, and the push loop ranges over a slice.
func seedHeapSorted(sources map[int]float64, h *intHeap) {
	keys := make([]int, 0, len(sources))
	for s := range sources {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	for _, s := range keys {
		heap.Push(h, s)
	}
}

type pq struct{ items []int }

func (q *pq) push(x int) { q.items = append(q.items, x) }

// lowercase push methods (the real fHeap in internal/global uses push)
// count as heap pushes too.
func seedCustomHeap(m map[string]int, q *pq) {
	for _, v := range m {
		q.push(v) // want `heap push inside range over map`
	}
}

// appendNoSort accumulates routes in map order and returns them unsorted.
func appendNoSort(byNet map[int][]int) []int {
	var out []int
	for _, segs := range byNet {
		out = append(out, segs...) // want `append to out inside range over map`
	}
	return out
}

// appendThenSort is the canonical deterministic pattern.
func appendThenSort(byNet map[int][]int) []int {
	var out []int
	for _, segs := range byNet {
		out = append(out, segs...)
	}
	sort.Ints(out)
	return out
}

// appendSliceSort is fine via the slices package, too.
func appendSliceSort(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// appendLocal appends to a slice scoped to one iteration: order cannot
// leak out of the loop body.
func appendLocal(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}

// aggregate is commutative accumulation; map order is harmless.
func aggregate(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// emit sends routes in map order: receivers observe a different sequence
// each run.
func emit(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside range over map`
	}
}

// fieldAppend accumulates into a struct field without sorting.
type router struct{ routes []int }

func (r *router) fieldAppend(m map[int]int) {
	for _, v := range m {
		r.routes = append(r.routes, v) // want `append to r.routes inside range over map`
	}
}
