// Fixture for the lockdiscipline analyzer: critical sections must be
// small and non-blocking, and channel send/close coverage under a lock
// must be deliberate.
package lockdiscipline

import (
	"net/http"
	"sync"
	"time"
)

type server struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

func (s *server) sendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `channel send while s.mu is held`
}

func (s *server) sendAfterUnlock(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

func (s *server) closeUnderLock() {
	s.mu.Lock()
	close(s.ch) // want `close of channel while s.mu is held`
	s.mu.Unlock()
}

// nonBlockingSelect: a default case makes the send non-blocking, the
// shape the analyzer deliberately permits.
func (s *server) nonBlockingSelect(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
	default:
	}
}

func (s *server) blockingSelect(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while s.mu is held`
	case s.ch <- v:
	}
}

func (s *server) receiveUnderRLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.ch // want `channel receive while s.rw is held`
}

func (s *server) sleeps() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while s.mu is held`
	s.mu.Unlock()
}

func (s *server) waits() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `WaitGroup.*Wait while s.mu is held`
}

func (s *server) httpWrite(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Write([]byte("x")) // want `HTTP response write while s.mu is held`
}

func (s *server) httpErrorArg(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	http.Error(w, "busy", http.StatusServiceUnavailable) // want `HTTP response write while s.mu is held`
}

// goroutineExempt: the spawned goroutine runs outside the critical
// section; its send is not flagged.
func (s *server) goroutineExempt(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { s.ch <- v }()
}

// earlyExit releases the lock on the branch that performs the send.
func (s *server) earlyExit(v int) {
	s.mu.Lock()
	if v > 0 {
		s.mu.Unlock()
		s.ch <- v
		return
	}
	s.mu.Unlock()
}

// unlocked functions are of no interest at all.
func (s *server) unlocked(v int) {
	s.ch <- v
	close(s.ch)
	time.Sleep(time.Millisecond)
}
