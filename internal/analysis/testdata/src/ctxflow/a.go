// Fixture for the ctxflow analyzer: functions that accept a
// context.Context must thread it, not detach from it.
package ctxflow

import "context"

func helper(ctx context.Context) error { return ctx.Err() }

func run() {}

func runContext(ctx context.Context) error { return ctx.Err() }

// good threads its context.
func good(ctx context.Context) error { return helper(ctx) }

// detaches manufactures a fresh root context despite having one.
func detaches(ctx context.Context) error {
	return helper(context.Background()) // want `calls context.Background`
}

// todo is the same failure spelled differently.
func todo(ctx context.Context) error {
	return helper(context.TODO()) // want `calls context.TODO`
}

// drops calls the ctx-less variant while runContext exists.
func drops(ctx context.Context) error {
	run() // want `drops its context ctx calling run; ctx-aware variant runContext exists`
	return nil
}

// callsVariant uses the ctx-aware sibling: nothing to flag.
func callsVariant(ctx context.Context) error {
	return runContext(ctx)
}

// wrapper is the standard shim pattern: no ctx parameter, so creating the
// root context here is exactly its job.
func wrapper() error { return runContext(context.Background()) }

type tracker struct{}

func (t *tracker) step() {}

func (t *tracker) stepContext(ctx context.Context) error { return ctx.Err() }

// method drops ctx on a method call with a ctx-aware sibling in the
// receiver's method set.
func (t *tracker) method(ctx context.Context) {
	t.step() // want `ctx-aware variant stepContext exists`
}

func (t *tracker) okMethod(ctx context.Context) error {
	return t.stepContext(ctx)
}

// noVariant calls a function without a Context sibling; out of scope.
func plain() {}

func noVariant(ctx context.Context) {
	plain()
}
