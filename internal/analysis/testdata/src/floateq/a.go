// Fixture for the floateq analyzer: exact equality on floating-point
// expressions is evaluation-order-dependent and banned; the sentinel
// idioms (zero, NaN self-compare, infinities, constant folding) stay
// legal.
package floateq

import "math"

type cost float64

func bad(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func badNeq(a, b float64) bool {
	return a != b // want `floating-point != comparison`
}

func badNamed(a, b cost) bool {
	return a == b // want `floating-point == comparison`
}

func badNonzeroConst(a float64) bool {
	return a == 0.3 // want `floating-point == comparison`
}

func badMixed(a float64, b int) bool {
	return a == float64(b) // want `floating-point == comparison`
}

func badFloat32(a, b float32) bool {
	return a == b // want `floating-point == comparison`
}

// zeroSentinel: exact zero is representable and survives any evaluation
// order; it is the unset-value idiom.
func zeroSentinel(a float64) bool { return a == 0 }

// nanCheck: x != x is the NaN test.
func nanCheck(a float64) bool { return a != a }

// infSentinel: infinity is absorbing, comparison is exact.
func infSentinel(a float64) bool { return a == math.Inf(1) }

// ints are exact.
func ints(a, b int) bool { return a == b }

// ordering comparisons are fine; only equality is flagged.
func ordered(a, b float64) bool { return a < b || a >= b }

// both-constant comparisons fold at compile time.
const (
	x  = 1.5
	y  = 3.0 / 2.0
	eq = x == y
)
