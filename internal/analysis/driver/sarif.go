package driver

import (
	"encoding/json"
	"io"

	"stitchroute/internal/analysis"
)

// SARIF 2.1.0 wire types — the minimal subset CI annotation renderers
// consume. Field names follow the spec exactly.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifToolComponent `json:"driver"`
}

type sarifToolComponent struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind string `json:"kind"`
}

// writeSARIF emits the diagnostics as one SARIF 2.1.0 document. Findings
// waived by //lint:ignore are present but carry an inSource suppression,
// so SARIF viewers show them greyed out instead of losing them.
func writeSARIF(out io.Writer, analyzers []*analysis.Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		doc := a.Doc
		if i := indexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: doc}})
	}
	// The driver reports malformed directives under its own name.
	rules = append(rules, sarifRule{ID: "stitchvet", ShortDescription: sarifMessage{Text: "driver-level diagnostics (malformed //lint:ignore directives)"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		r := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: toURI(d.Pos.Filename), URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		}
		if d.Suppressed {
			r.Suppressions = []sarifSuppression{{Kind: "inSource"}}
		}
		results = append(results, r)
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifToolComponent{Name: "stitchvet", Rules: rules}},
			Results: results,
		}},
	})
}

// toURI normalizes a (possibly OS-specific) relative path to the
// forward-slash form SARIF requires.
func toURI(path string) string {
	out := make([]byte, len(path))
	for i := 0; i < len(path); i++ {
		c := path[i]
		if c == '\\' {
			c = '/'
		}
		out[i] = c
	}
	return string(out)
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
