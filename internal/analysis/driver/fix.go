package driver

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"sort"
)

// offsetEdit is one suggested text edit resolved to byte offsets.
type offsetEdit struct {
	start, end int
	newText    []byte
}

// applyFixes applies the first suggested fix of every unsuppressed
// diagnostic, atomically per file (write to a temp file in the same
// directory, then rename), gofmt-ing each result. Fixes whose edits
// overlap an already-accepted edit are skipped — the re-analysis pass
// picks the survivors up on the next run. Returns how many fixes were
// applied and how many files changed.
func applyFixes(res *result) (applied, files int, err error) {
	type fix struct {
		file  string
		edits []offsetEdit
	}
	perFile := map[string][]fix{}
	var names []string

	for _, d := range res.diags {
		if d.Suppressed || len(d.fixes) == 0 {
			continue
		}
		sf := d.fixes[0]
		var f fix
		ok := true
		for _, e := range sf.TextEdits {
			if !e.Pos.IsValid() {
				ok = false
				break
			}
			start := res.fset.Position(e.Pos)
			end := start
			if e.End.IsValid() {
				end = res.fset.Position(e.End)
			}
			if f.file == "" {
				f.file = start.Filename
			}
			if start.Filename != f.file || end.Filename != f.file || end.Offset < start.Offset {
				ok = false // a fix must stay within one file and be well-formed
				break
			}
			f.edits = append(f.edits, offsetEdit{start: start.Offset, end: end.Offset, newText: e.NewText})
		}
		if !ok || f.file == "" {
			continue
		}
		sort.Slice(f.edits, func(i, j int) bool { return f.edits[i].start < f.edits[j].start })
		if _, seen := perFile[f.file]; !seen {
			names = append(names, f.file)
		}
		perFile[f.file] = append(perFile[f.file], f)
	}
	sort.Strings(names)

	for _, name := range names {
		fixes := perFile[name]
		// res.diags is position-sorted, so fixes arrive deterministic;
		// accept greedily, skipping any fix overlapping accepted edits.
		var accepted []offsetEdit
		nApplied := 0
		for _, f := range fixes {
			if overlaps(f.edits, accepted) {
				continue
			}
			accepted = append(accepted, f.edits...)
			nApplied++
		}
		if nApplied == 0 {
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return applied, files, fmt.Errorf("applying fixes: %v", err)
		}
		sort.Slice(accepted, func(i, j int) bool { return accepted[i].start > accepted[j].start })
		for _, e := range accepted {
			if e.end > len(src) {
				return applied, files, fmt.Errorf("fix edit out of range in %s", name)
			}
			src = append(src[:e.start], append(append([]byte(nil), e.newText...), src[e.end:]...)...)
		}
		formatted, err := format.Source(src)
		if err != nil {
			return applied, files, fmt.Errorf("fixed %s does not parse (fix rejected): %v", name, err)
		}
		if err := atomicWrite(name, formatted); err != nil {
			return applied, files, err
		}
		applied += nApplied
		files++
	}
	return applied, files, nil
}

// overlaps reports whether any edit in a intersects any edit in b. Two
// pure insertions at the same point do conflict (order would be
// ambiguous).
func overlaps(a, b []offsetEdit) bool {
	for _, x := range a {
		for _, y := range b {
			xe, ye := x.end, y.end
			if xe == x.start {
				xe++ // treat insertion as covering its point
			}
			if ye == y.start {
				ye++
			}
			if x.start < ye && y.start < xe {
				return true
			}
		}
	}
	return false
}

// atomicWrite replaces path's contents via a same-directory temp file and
// rename, preserving the original mode.
func atomicWrite(path string, data []byte) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".stitchvet-fix-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Chmod(info.Mode()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// FixCount reports how many unsuppressed diagnostics in a run carry at
// least one suggested fix; exposed for the CLI's dry-run summary.
func FixCount(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if !d.Suppressed && len(d.fixes) > 0 {
			n++
		}
	}
	return n
}
