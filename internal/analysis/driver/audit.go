package driver

import (
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// AuditIgnores walks every .go file under root (skipping testdata, .git,
// vendor, and bin directories) and checks each //lint:ignore directive
// for well-formedness: a mandatory reason and, when validNames is
// non-nil, analyzer names drawn from the registered set. Unlike the
// analysis run — which only parses the packages being linted — the audit
// sees every file in the tree, so a reason-less suppression cannot hide
// in a package a particular invocation skipped. Findings are written to
// out; the count is returned.
func AuditIgnores(root string, validNames map[string]bool, out io.Writer) (int, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git", "vendor", "bin":
				// Fixture trees deliberately contain malformed
				// directives; generated/vendored trees are not ours.
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	sort.Strings(files)

	count := 0
	fset := token.NewFileSet()
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			// A file that does not parse fails the build elsewhere; the
			// audit only cares about directives.
			continue
		}
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := c.Text
				if !strings.HasPrefix(text, "//lint:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, "//lint:ignore"))
				if len(fields) < 2 {
					fmt.Fprintf(out, "%s:%d:%d: //lint:ignore directive is missing its mandatory reason\n", pos.Filename, pos.Line, pos.Column)
					count++
					continue
				}
				if validNames == nil || fields[0] == "*" {
					continue
				}
				for _, name := range strings.Split(fields[0], ",") {
					if !validNames[name] {
						fmt.Fprintf(out, "%s:%d:%d: //lint:ignore names unknown analyzer %q\n", pos.Filename, pos.Line, pos.Column, name)
						count++
					}
				}
			}
		}
	}
	return count, nil
}
