// Package driver runs a set of analyzers over packages and reports their
// diagnostics, honoring staticcheck-style suppression directives.
//
// Suppression: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses matching diagnostics on the directive's own line and on the
// line immediately following it (so it works both as an end-of-line
// comment and as a standalone comment above the flagged statement). The
// analyzer list may be "*" to suppress every analyzer. The reason is
// mandatory: a bare directive is itself reported as a diagnostic, so every
// suppression in the tree documents why the invariant is safe to waive.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/load"
)

// Diagnostic is a driver-level finding: an analyzer diagnostic bound to
// its position and analyzer name. Suppressed marks diagnostics waived by
// a //lint:ignore directive; they are retained (and emitted in JSON mode)
// so suppressions stay auditable, but do not count toward the exit code.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
}

// Options configures a Run.
type Options struct {
	// Only, when non-empty, restricts the run to analyzers with these
	// names.
	Only []string
	// Verbose adds a per-package progress line to Out.
	Verbose bool
	// JSON switches output to one JSON object per line (the schema is
	// documented in docs/LINTING.md), including suppressed diagnostics.
	JSON bool
}

// jsonDiagnostic is the wire form of one diagnostic in -json mode.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzers map[string]bool // nil means "*"
	line      int
}

// parseDirectives extracts suppression directives from a file's comments.
// Malformed directives (no reason) are reported through report.
func parseDirectives(fset *token.FileSet, file *ast.File, report func(Diagnostic)) []directive {
	var dirs []directive
	for _, group := range file.Comments {
		for _, c := range group.List {
			text := c.Text
			if !strings.HasPrefix(text, "//lint:ignore") {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(text, "//lint:ignore")
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				report(Diagnostic{
					Analyzer: "stitchvet",
					Pos:      pos,
					Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer>[,<analyzer>] <reason>`",
				})
				continue
			}
			d := directive{line: pos.Line}
			if fields[0] != "*" {
				d.analyzers = make(map[string]bool)
				for _, name := range strings.Split(fields[0], ",") {
					d.analyzers[name] = true
				}
			}
			dirs = append(dirs, d)
		}
	}
	return dirs
}

func (d directive) matches(diag Diagnostic) bool {
	if diag.Pos.Line != d.line && diag.Pos.Line != d.line+1 {
		return false
	}
	return d.analyzers == nil || d.analyzers[diag.Analyzer]
}

// packageMatch reports whether the analyzer's package filter admits the
// given import path.
func packageMatch(a *analysis.Analyzer, pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			return true
		}
	}
	return false
}

// Run loads the packages matching patterns, applies the analyzers, and
// writes file:line:col-prefixed diagnostics to out. It returns the number
// of diagnostics after suppression; the caller turns a nonzero count into
// a nonzero exit.
func Run(analyzers []*analysis.Analyzer, patterns []string, out io.Writer, opts Options) (int, error) {
	if len(opts.Only) > 0 {
		keep := make(map[string]bool)
		for _, name := range opts.Only {
			keep[name] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			var unknown []string
			for name := range keep {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			return 0, fmt.Errorf("unknown analyzer(s): %s", strings.Join(unknown, ", "))
		}
		analyzers = filtered
	}

	pkgs, err := load.Packages(patterns...)
	if err != nil {
		return 0, err
	}

	var diags []Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			// A package that does not type-check cannot be
			// reliably analyzed; surface the build breakage.
			return 0, fmt.Errorf("package %s does not type-check: %v", pkg.PkgPath, pkg.TypeErrors[0])
		}
		var dirs []directive
		for _, f := range pkg.Files {
			dirs = append(dirs, parseDirectives(pkg.Fset, f, func(d Diagnostic) { diags = append(diags, d) })...)
		}
		for _, a := range analyzers {
			if !packageMatch(a, pkg.PkgPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				diag := Diagnostic{
					Analyzer: name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				}
				for _, dir := range dirs {
					if dir.matches(diag) {
						diag.Suppressed = true
						break
					}
				}
				diags = append(diags, diag)
			}
			if _, err := a.Run(pass); err != nil {
				return 0, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
		if opts.Verbose {
			fmt.Fprintf(out, "stitchvet: checked %s\n", pkg.PkgPath)
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	cwd, _ := filepath.Abs(".")
	unsuppressed := 0
	enc := json.NewEncoder(out)
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		if !d.Suppressed {
			unsuppressed++
		}
		if opts.JSON {
			if err := enc.Encode(jsonDiagnostic{
				File:       name,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			}); err != nil {
				return unsuppressed, err
			}
		} else if !d.Suppressed {
			fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	return unsuppressed, nil
}
