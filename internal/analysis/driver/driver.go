// Package driver runs a set of analyzers over packages and reports their
// diagnostics, honoring staticcheck-style suppression directives.
//
// Suppression: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses matching diagnostics on the directive's own line and on the
// line immediately following it (so it works both as an end-of-line
// comment and as a standalone comment above the flagged statement). The
// analyzer list may be "*" to suppress every analyzer. The reason is
// mandatory: a bare directive is itself reported as a diagnostic, so every
// suppression in the tree documents why the invariant is safe to waive.
//
// The driver runs two kinds of analyzers. Per-package analyzers
// (Analyzer.Run) see one type-checked package at a time. Module analyzers
// (Analyzer.RunModule) run once over the whole load with the
// interprocedural call graph (internal/analysis/callgraph) attached, so
// their facts flow across package boundaries; when an analyzer defines
// both, the driver prefers the module form.
//
// # Incremental analysis
//
// With Options.CacheDir set, findings are cached on disk (see cache.go)
// under content-addressed keys, giving three progressively cheaper paths:
//
//   - cold: go list, parse + type-check every package (in parallel,
//     scheduled in import-DAG waves), run everything, populate the cache;
//   - warm: an unchanged tree replays the previous run's diagnostics from
//     a single cache entry keyed by the hash of every buildable source
//     file — no go list, no parsing, no type-checking;
//   - partial: per-package entries serve unchanged packages, only
//     changed ones are re-analyzed; whole-module findings replay as long
//     as no package key moved.
//
// Options.Diff additionally pins "changed" to a git ref: packages with
// edits since the ref are re-analyzed even on a cache hit, everything
// else must come from the cache. Because every key is a content hash,
// findings are byte-identical whichever path produced them; -fix mode
// bypasses the cache entirely (suggested fixes do not survive
// serialization).
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/callgraph"
	"stitchroute/internal/analysis/load"
)

// Diagnostic is a driver-level finding: an analyzer diagnostic bound to
// its position and analyzer name. Suppressed marks diagnostics waived by
// a //lint:ignore directive; they are retained (and emitted in JSON and
// SARIF modes) so suppressions stay auditable, but do not count toward
// the exit code.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool

	fixes []analysis.SuggestedFix
}

// Options configures a Run.
type Options struct {
	// Only, when non-empty, restricts the run to analyzers with these
	// names. Unknown names are an error that lists the valid set.
	Only []string
	// Verbose adds per-package progress and cache-path lines to Out.
	Verbose bool
	// JSON switches output to one JSON object per line (the schema is
	// documented in docs/LINTING.md), including suppressed diagnostics.
	JSON bool
	// SARIF switches output to a single SARIF 2.1.0 document, the
	// interchange format CI renders as inline annotations. Includes
	// suppressed diagnostics, marked with an inSource suppression.
	SARIF bool
	// Fix applies each unsuppressed diagnostic's first suggested fix,
	// formats the touched files, then re-analyzes to verify the
	// findings are gone. The returned count is post-fix. Fix bypasses
	// the cache.
	Fix bool

	// CacheDir enables the on-disk findings cache rooted there
	// (relative paths resolve against the module root). Empty disables
	// caching.
	CacheDir string
	// Diff, when set to a git ref, re-analyzes only the packages with
	// .go changes since that ref and serves every other package from
	// the cache. Requires CacheDir.
	Diff string
	// Jobs bounds per-package analysis parallelism; 0 means GOMAXPROCS.
	Jobs int
	// Stats, when non-nil, is filled with counters describing which
	// path the run took (cache replay, packages analyzed vs. served).
	Stats *Stats
}

// Stats describes how much work one Run actually did; benchjson gates the
// incremental driver's contract on these counters.
type Stats struct {
	// Packages is the number of first-party packages in scope (0 when
	// the whole run was replayed without listing packages).
	Packages int
	// Analyzed counts packages whose per-package analyzers ran fresh.
	Analyzed int
	// CachedPackages counts packages served from per-package entries.
	CachedPackages int
	// ChangedPackages counts packages the -diff ref marked changed.
	ChangedPackages int
	// ModuleFromCache reports whether whole-module findings replayed.
	ModuleFromCache bool
	// RunReplayed reports whether the entire run replayed from one
	// tree-hash entry (warm path: no go list, no type-checking).
	RunReplayed bool
}

// jsonDiagnostic is the wire form of one diagnostic in -json mode.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// directive is one parsed //lint:ignore comment. used flips when any
// diagnostic matches it, which is what the stale-suppression audit keys
// off.
type directive struct {
	analyzers map[string]bool // nil means "*"
	names     string          // the directive's analyzer spec, verbatim
	file      string
	line      int
	col       int
	used      bool
}

// parseDirectives extracts suppression directives from a file's comments.
// Malformed directives (no reason) are reported through report.
func parseDirectives(fset *token.FileSet, file *ast.File, report func(Diagnostic)) []*directive {
	var dirs []*directive
	for _, group := range file.Comments {
		for _, c := range group.List {
			text := c.Text
			if !strings.HasPrefix(text, "//lint:ignore") {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(text, "//lint:ignore")
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				report(Diagnostic{
					Analyzer: "stitchvet",
					Pos:      pos,
					Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer>[,<analyzer>] <reason>`",
				})
				continue
			}
			d := &directive{names: fields[0], file: pos.Filename, line: pos.Line, col: pos.Column}
			if fields[0] != "*" {
				d.analyzers = make(map[string]bool)
				for _, name := range strings.Split(fields[0], ",") {
					d.analyzers[name] = true
				}
			}
			dirs = append(dirs, d)
		}
	}
	return dirs
}

func (d *directive) matches(diag Diagnostic) bool {
	if diag.Pos.Filename != d.file {
		return false
	}
	if diag.Pos.Line != d.line && diag.Pos.Line != d.line+1 {
		return false
	}
	return d.analyzers == nil || d.analyzers[diag.Analyzer]
}

// packageMatch reports whether the analyzer's package filter admits the
// given import path.
func packageMatch(a *analysis.Analyzer, pkgPath string) bool {
	return a.Matches(pkgPath)
}

// selectAnalyzers applies -only filtering. Unknown names produce an
// error that lists the valid analyzer set, so `stitchvet -only=typo`
// exits 2 instead of silently checking nothing.
func selectAnalyzers(analyzers []*analysis.Analyzer, only []string) ([]*analysis.Analyzer, error) {
	if len(only) == 0 {
		return analyzers, nil
	}
	keep := make(map[string]bool)
	for _, name := range only {
		keep[name] = true
	}
	var filtered []*analysis.Analyzer
	for _, a := range analyzers {
		if keep[a.Name] {
			filtered = append(filtered, a)
			delete(keep, a.Name)
		}
	}
	if len(keep) > 0 {
		var unknown []string
		for name := range keep {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		valid := make([]string, len(analyzers))
		for i, a := range analyzers {
			valid[i] = a.Name
		}
		sort.Strings(valid)
		return nil, fmt.Errorf("unknown analyzer(s): %s (valid analyzers: %s)",
			strings.Join(unknown, ", "), strings.Join(valid, ", "))
	}
	return filtered, nil
}

// result is one full analysis pass over the load.
type result struct {
	diags []Diagnostic
	fset  *token.FileSet
	dirs  []*directive // every parsed suppression, with usage marks
}

// topoWaves groups the metas by first-party import depth: wave 0 holds
// packages with no in-scope dependencies, wave n packages whose deepest
// in-scope dependency chain has length n. Packages within a wave are
// independent of each other, so each wave loads and analyzes in parallel
// while still walking the import DAG bottom-up.
func topoWaves(metas []*load.Meta) [][]*load.Meta {
	byPath := make(map[string]*load.Meta, len(metas))
	for _, m := range metas {
		byPath[m.PkgPath] = m
	}
	depth := make(map[string]int, len(metas))
	var depthOf func(m *load.Meta) int
	depthOf = func(m *load.Meta) int {
		if d, ok := depth[m.PkgPath]; ok {
			return d
		}
		depth[m.PkgPath] = 0 // cycle guard; Go forbids import cycles
		d := 0
		for _, imp := range m.Imports {
			if dm, ok := byPath[imp]; ok {
				if dd := depthOf(dm) + 1; dd > d {
					d = dd
				}
			}
		}
		depth[m.PkgPath] = d
		return d
	}
	maxDepth := 0
	for _, m := range metas {
		if d := depthOf(m); d > maxDepth {
			maxDepth = d
		}
	}
	waves := make([][]*load.Meta, maxDepth+1)
	for _, m := range metas {
		d := depth[m.PkgPath]
		waves[d] = append(waves[d], m)
	}
	return waves
}

// analyze loads patterns and applies every analyzer — per-package ones
// package by package (parallel within each import-DAG wave), module ones
// once over the whole load with the call graph built — consulting the
// findings cache when opts.CacheDir is set. trackUsage forces a fully
// fresh run and records which suppression directives matched anything,
// for the stale-suppression audit.
func analyze(analyzers []*analysis.Analyzer, patterns []string, opts Options, out io.Writer, trackUsage bool) (*result, error) {
	stats := opts.Stats
	if stats == nil {
		stats = &Stats{}
	}
	*stats = Stats{}

	var c *cache
	if opts.CacheDir != "" && !opts.Fix && !trackUsage {
		var err error
		if c, err = openCache(opts.CacheDir, analyzers); err != nil {
			fmt.Fprintf(out, "stitchvet: cache disabled: %v\n", err)
			c = nil
		}
	}
	if opts.Diff != "" && c == nil {
		return nil, fmt.Errorf("-diff requires the findings cache (set a cache directory)")
	}

	// Warm path: an unchanged source tree replays the whole previous run
	// from one entry. -diff skips this so its package-level contract
	// (changed packages re-analyze) stays observable.
	var runEntry string
	if c != nil && opts.Diff == "" {
		th, err := c.treeHash()
		if err != nil {
			fmt.Fprintf(out, "stitchvet: cache disabled: %v\n", err)
			c = nil
		} else {
			runEntry = c.runKey(th, patterns)
			if diags, ok := c.get(runEntry); ok {
				stats.RunReplayed = true
				if opts.Verbose {
					fmt.Fprintf(out, "stitchvet: replayed full run from cache (%d diagnostics)\n", len(diags))
				}
				return &result{diags: diags, fset: token.NewFileSet()}, nil
			}
		}
	}

	metas, exports, err := load.List(patterns...)
	if err != nil {
		return nil, err
	}
	if len(metas) == 0 {
		return &result{fset: token.NewFileSet()}, nil
	}
	stats.Packages = len(metas)

	var keys map[string]string
	if c != nil {
		if keys, err = c.pkgKeys(metas); err != nil {
			fmt.Fprintf(out, "stitchvet: cache disabled: %v\n", err)
			c, runEntry = nil, ""
			if opts.Diff != "" {
				return nil, fmt.Errorf("-diff requires the findings cache: %v", err)
			}
		}
	}

	// -diff: packages with .go edits since the ref re-analyze even on a
	// cache hit; everything else is expected to replay.
	var changed map[string]bool
	if opts.Diff != "" {
		files, err := gitDiffFiles(c.root, opts.Diff)
		if err != nil {
			return nil, err
		}
		changed = changedPackages(c.root, files, metas)
		stats.ChangedPackages = len(changed)
		if opts.Verbose {
			fmt.Fprintf(out, "stitchvet: %d package(s) changed since %s\n", len(changed), opts.Diff)
		}
	}

	var perPkgAnalyzers, moduleAnalyzers []*analysis.Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			moduleAnalyzers = append(moduleAnalyzers, a)
		} else if a.Run != nil {
			perPkgAnalyzers = append(perPkgAnalyzers, a)
		}
	}

	// Per-package plan: serve what the cache can, analyze the rest.
	pkgDiags := make(map[string][]Diagnostic, len(metas))
	var needAnalysis []*load.Meta
	for _, m := range metas {
		if c != nil && !changed[m.PkgPath] {
			if diags, ok := c.get(pkgEntry(m.PkgPath, keys[m.PkgPath])); ok {
				pkgDiags[m.PkgPath] = diags
				stats.CachedPackages++
				continue
			}
		}
		needAnalysis = append(needAnalysis, m)
	}
	stats.Analyzed = len(needAnalysis)

	// Whole-module findings replay as long as no package key moved.
	var moduleDiags []Diagnostic
	moduleCached := false
	var modEntry string
	if len(moduleAnalyzers) > 0 && c != nil {
		modEntry = c.moduleEntry(metas, keys)
		if diags, ok := c.get(modEntry); ok {
			moduleDiags, moduleCached = diags, true
			stats.ModuleFromCache = true
		}
	}
	needModule := len(moduleAnalyzers) > 0 && !moduleCached

	// A module miss needs every package loaded (the call graph spans the
	// module); otherwise only the packages being analyzed load.
	toLoad := needAnalysis
	if needModule {
		toLoad = metas
	}
	analyzeSet := make(map[string]bool, len(needAnalysis))
	for _, m := range needAnalysis {
		analyzeSet[m.PkgPath] = true
	}

	loader := load.NewLoader(exports)
	res := &result{fset: loader.Fset()}

	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}

	var (
		mu      sync.Mutex
		allDirs []*directive
		loaded  = make(map[string]*load.Package, len(toLoad))
	)

	// processPkg runs one loaded package's per-package work: directive
	// parsing, the per-package analyzers (when the package is not served
	// from cache), suppression against its own files' directives, and
	// cache population.
	processPkg := func(pkg *load.Package) error {
		if len(pkg.TypeErrors) > 0 {
			// A package that does not type-check cannot be reliably
			// analyzed; surface the build breakage.
			return fmt.Errorf("package %s does not type-check: %v", pkg.PkgPath, pkg.TypeErrors[0])
		}
		fresh := analyzeSet[pkg.PkgPath]
		var local []Diagnostic
		var dirs []*directive
		for _, f := range pkg.Files {
			// Malformed-directive findings belong to the package entry;
			// when the package replays from cache they are already in it.
			report := func(Diagnostic) {}
			if fresh {
				report = func(d Diagnostic) { local = append(local, d) }
			}
			dirs = append(dirs, parseDirectives(pkg.Fset, f, report)...)
		}
		if fresh {
			for _, a := range perPkgAnalyzers {
				if !packageMatch(a, pkg.PkgPath) {
					continue
				}
				pass := &analysis.Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Files,
					Pkg:       pkg.Types,
					TypesInfo: pkg.TypesInfo,
				}
				name := a.Name
				pass.Report = func(d analysis.Diagnostic) {
					local = append(local, Diagnostic{
						Analyzer: name,
						Pos:      pkg.Fset.Position(d.Pos),
						Message:  d.Message,
						fixes:    d.SuggestedFixes,
					})
				}
				if _, err := a.Run(pass); err != nil {
					return fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
				}
			}
			for i := range local {
				for _, dir := range dirs {
					if dir.matches(local[i]) {
						local[i].Suppressed = true
						dir.used = true
					}
				}
			}
			sortDiags(local)
			if c != nil {
				c.put(pkgEntry(pkg.PkgPath, keys[pkg.PkgPath]), local)
			}
		}
		mu.Lock()
		allDirs = append(allDirs, dirs...)
		if fresh {
			pkgDiags[pkg.PkgPath] = local
		}
		loaded[pkg.PkgPath] = pkg
		if opts.Verbose && fresh {
			fmt.Fprintf(out, "stitchvet: checked %s\n", pkg.PkgPath)
		}
		mu.Unlock()
		return nil
	}

	for _, wave := range topoWaves(toLoad) {
		pkgs, err := loader.Load(wave)
		if err != nil {
			return nil, err
		}
		workers := jobs
		if workers > len(pkgs) {
			workers = len(pkgs)
		}
		errs := make([]error, len(pkgs))
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1) - 1)
					if i >= len(pkgs) {
						return
					}
					errs[i] = processPkg(pkgs[i])
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	if needModule {
		// The module pass wants the packages in deterministic order.
		pkgs := make([]*load.Package, 0, len(metas))
		for _, m := range metas {
			if p, ok := loaded[m.PkgPath]; ok {
				pkgs = append(pkgs, p)
			}
		}
		graph := callgraph.Build(pkgs)
		for _, a := range moduleAnalyzers {
			mp := &analysis.ModulePass{
				Analyzer: a,
				Fset:     loader.Fset(),
				Packages: pkgs,
				Graph:    graph,
				Filter:   true,
			}
			name := a.Name
			mp.Report = func(d analysis.Diagnostic) {
				diag := Diagnostic{
					Analyzer: name,
					Pos:      loader.Fset().Position(d.Pos),
					Message:  d.Message,
					fixes:    d.SuggestedFixes,
				}
				for _, dir := range allDirs {
					if dir.matches(diag) {
						diag.Suppressed = true
						dir.used = true
					}
				}
				moduleDiags = append(moduleDiags, diag)
			}
			if err := a.RunModule(mp); err != nil {
				return nil, fmt.Errorf("module analyzer %s: %v", a.Name, err)
			}
		}
		sortDiags(moduleDiags)
		if c != nil && modEntry != "" {
			c.put(modEntry, moduleDiags)
		}
		if opts.Verbose {
			fmt.Fprintf(out, "stitchvet: module analysis over %d packages (%d call-graph nodes)\n", len(pkgs), len(graph.Nodes))
		}
	} else if len(moduleAnalyzers) > 0 && opts.Verbose {
		fmt.Fprintf(out, "stitchvet: module findings replayed from cache\n")
	}

	for _, m := range metas {
		res.diags = append(res.diags, pkgDiags[m.PkgPath]...)
	}
	res.diags = append(res.diags, moduleDiags...)
	sortDiags(res.diags)
	res.dirs = allDirs

	if c != nil && runEntry != "" {
		c.put(runEntry, res.diags)
	}
	if opts.Verbose && c != nil {
		fmt.Fprintf(out, "stitchvet: %d/%d package(s) from cache\n", stats.CachedPackages, stats.Packages)
	}
	return res, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Run loads the packages matching patterns, applies the analyzers, and
// writes file:line:col-prefixed diagnostics to out. It returns the number
// of diagnostics after suppression; the caller turns a nonzero count into
// a nonzero exit. With opts.Fix, suggested fixes are applied first and
// the emitted diagnostics (and count) describe the post-fix state.
func Run(analyzers []*analysis.Analyzer, patterns []string, out io.Writer, opts Options) (int, error) {
	analyzers, err := selectAnalyzers(analyzers, opts.Only)
	if err != nil {
		return 0, err
	}

	res, err := analyze(analyzers, patterns, opts, out, false)
	if err != nil {
		return 0, err
	}

	if opts.Fix {
		edits, files, err := applyFixes(res)
		if err != nil {
			return 0, err
		}
		if edits > 0 {
			fmt.Fprintf(out, "stitchvet: applied %d fix(es) in %d file(s); re-analyzing\n", edits, files)
			// Verification pass: the fixes must leave a clean (or at
			// least strictly reduced) tree, freshly parsed and
			// type-checked.
			reopts := opts
			reopts.Verbose = false
			res, err = analyze(analyzers, patterns, reopts, out, false)
			if err != nil {
				return 0, fmt.Errorf("re-analysis after -fix: %v", err)
			}
		}
	}

	cwd, _ := filepath.Abs(".")
	unsuppressed := 0
	for i := range res.diags {
		d := &res.diags[i]
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		if !d.Suppressed {
			unsuppressed++
		}
	}

	if opts.SARIF {
		if err := writeSARIF(out, analyzers, res.diags); err != nil {
			return unsuppressed, err
		}
		return unsuppressed, nil
	}
	enc := json.NewEncoder(out)
	for _, d := range res.diags {
		if opts.JSON {
			if err := enc.Encode(jsonDiagnostic{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			}); err != nil {
				return unsuppressed, err
			}
		} else if !d.Suppressed {
			fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	return unsuppressed, nil
}

// StaleIgnores runs a fully fresh analysis (the cache is bypassed) and
// reports every //lint:ignore directive that no diagnostic matched: the
// finding it once waived no longer fires, so the directive is dead weight
// that would silently swallow a future, different finding on its line.
// Malformed directives are excluded — they are already findings in their
// own right. The analyzer set should be the full registry; a narrowed set
// would mark other analyzers' directives stale.
func StaleIgnores(analyzers []*analysis.Analyzer, patterns []string, out io.Writer) (int, error) {
	res, err := analyze(analyzers, patterns, Options{}, io.Discard, true)
	if err != nil {
		return 0, err
	}
	var stale []*directive
	for _, d := range res.dirs {
		if !d.used {
			stale = append(stale, d)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.file != b.file {
			return a.file < b.file
		}
		return a.line < b.line
	})
	cwd, _ := filepath.Abs(".")
	for _, d := range stale {
		file := d.file
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Fprintf(out, "%s:%d:%d: stale //lint:ignore %s: no matching finding fires here\n", file, d.line, d.col, d.names)
	}
	return len(stale), nil
}
