// Package driver runs a set of analyzers over packages and reports their
// diagnostics, honoring staticcheck-style suppression directives.
//
// Suppression: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses matching diagnostics on the directive's own line and on the
// line immediately following it (so it works both as an end-of-line
// comment and as a standalone comment above the flagged statement). The
// analyzer list may be "*" to suppress every analyzer. The reason is
// mandatory: a bare directive is itself reported as a diagnostic, so every
// suppression in the tree documents why the invariant is safe to waive.
//
// The driver runs two kinds of analyzers. Per-package analyzers
// (Analyzer.Run) see one type-checked package at a time. Module analyzers
// (Analyzer.RunModule) run once over the whole load with the
// interprocedural call graph (internal/analysis/callgraph) attached, so
// their facts flow across package boundaries; when an analyzer defines
// both, the driver prefers the module form.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/callgraph"
	"stitchroute/internal/analysis/load"
)

// Diagnostic is a driver-level finding: an analyzer diagnostic bound to
// its position and analyzer name. Suppressed marks diagnostics waived by
// a //lint:ignore directive; they are retained (and emitted in JSON and
// SARIF modes) so suppressions stay auditable, but do not count toward
// the exit code.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool

	fixes []analysis.SuggestedFix
}

// Options configures a Run.
type Options struct {
	// Only, when non-empty, restricts the run to analyzers with these
	// names. Unknown names are an error that lists the valid set.
	Only []string
	// Verbose adds a per-package progress line to Out.
	Verbose bool
	// JSON switches output to one JSON object per line (the schema is
	// documented in docs/LINTING.md), including suppressed diagnostics.
	JSON bool
	// SARIF switches output to a single SARIF 2.1.0 document, the
	// interchange format CI renders as inline annotations. Includes
	// suppressed diagnostics, marked with an inSource suppression.
	SARIF bool
	// Fix applies each unsuppressed diagnostic's first suggested fix,
	// formats the touched files, then re-analyzes to verify the
	// findings are gone. The returned count is post-fix.
	Fix bool
}

// jsonDiagnostic is the wire form of one diagnostic in -json mode.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzers map[string]bool // nil means "*"
	file      string
	line      int
}

// parseDirectives extracts suppression directives from a file's comments.
// Malformed directives (no reason) are reported through report.
func parseDirectives(fset *token.FileSet, file *ast.File, report func(Diagnostic)) []directive {
	var dirs []directive
	for _, group := range file.Comments {
		for _, c := range group.List {
			text := c.Text
			if !strings.HasPrefix(text, "//lint:ignore") {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(text, "//lint:ignore")
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				report(Diagnostic{
					Analyzer: "stitchvet",
					Pos:      pos,
					Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer>[,<analyzer>] <reason>`",
				})
				continue
			}
			d := directive{file: pos.Filename, line: pos.Line}
			if fields[0] != "*" {
				d.analyzers = make(map[string]bool)
				for _, name := range strings.Split(fields[0], ",") {
					d.analyzers[name] = true
				}
			}
			dirs = append(dirs, d)
		}
	}
	return dirs
}

func (d directive) matches(diag Diagnostic) bool {
	if diag.Pos.Filename != d.file {
		return false
	}
	if diag.Pos.Line != d.line && diag.Pos.Line != d.line+1 {
		return false
	}
	return d.analyzers == nil || d.analyzers[diag.Analyzer]
}

// packageMatch reports whether the analyzer's package filter admits the
// given import path.
func packageMatch(a *analysis.Analyzer, pkgPath string) bool {
	return a.Matches(pkgPath)
}

// selectAnalyzers applies -only filtering. Unknown names produce an
// error that lists the valid analyzer set, so `stitchvet -only=typo`
// exits 2 instead of silently checking nothing.
func selectAnalyzers(analyzers []*analysis.Analyzer, only []string) ([]*analysis.Analyzer, error) {
	if len(only) == 0 {
		return analyzers, nil
	}
	keep := make(map[string]bool)
	for _, name := range only {
		keep[name] = true
	}
	var filtered []*analysis.Analyzer
	for _, a := range analyzers {
		if keep[a.Name] {
			filtered = append(filtered, a)
			delete(keep, a.Name)
		}
	}
	if len(keep) > 0 {
		var unknown []string
		for name := range keep {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		valid := make([]string, len(analyzers))
		for i, a := range analyzers {
			valid[i] = a.Name
		}
		sort.Strings(valid)
		return nil, fmt.Errorf("unknown analyzer(s): %s (valid analyzers: %s)",
			strings.Join(unknown, ", "), strings.Join(valid, ", "))
	}
	return filtered, nil
}

// result is one full analysis pass over the load.
type result struct {
	diags []Diagnostic
	fset  *token.FileSet
}

// analyze loads patterns and applies every analyzer — per-package ones
// package by package, module ones once over the whole load with the call
// graph built.
func analyze(analyzers []*analysis.Analyzer, patterns []string, verbose bool, out io.Writer) (*result, error) {
	pkgs, err := load.Packages(patterns...)
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return &result{fset: token.NewFileSet()}, nil
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			// A package that does not type-check cannot be reliably
			// analyzed; surface the build breakage.
			return nil, fmt.Errorf("package %s does not type-check: %v", pkg.PkgPath, pkg.TypeErrors[0])
		}
	}
	res := &result{fset: pkgs[0].Fset}

	// Suppression directives are collected once, module-wide; matching
	// is filename-aware so a directive only covers its own file.
	var dirs []directive
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			dirs = append(dirs, parseDirectives(pkg.Fset, f, func(d Diagnostic) { res.diags = append(res.diags, d) })...)
		}
	}
	record := func(name string, fset *token.FileSet, d analysis.Diagnostic) {
		diag := Diagnostic{
			Analyzer: name,
			Pos:      fset.Position(d.Pos),
			Message:  d.Message,
			fixes:    d.SuggestedFixes,
		}
		for _, dir := range dirs {
			if dir.matches(diag) {
				diag.Suppressed = true
				break
			}
		}
		res.diags = append(res.diags, diag)
	}

	var moduleAnalyzers []*analysis.Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			moduleAnalyzers = append(moduleAnalyzers, a)
		}
	}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.RunModule != nil || a.Run == nil {
				continue // module form preferred
			}
			if !packageMatch(a, pkg.PkgPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) { record(name, pkg.Fset, d) }
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
		if verbose {
			fmt.Fprintf(out, "stitchvet: checked %s\n", pkg.PkgPath)
		}
	}

	if len(moduleAnalyzers) > 0 {
		graph := callgraph.Build(pkgs)
		for _, a := range moduleAnalyzers {
			mp := &analysis.ModulePass{
				Analyzer: a,
				Fset:     res.fset,
				Packages: pkgs,
				Graph:    graph,
				Filter:   true,
			}
			name := a.Name
			mp.Report = func(d analysis.Diagnostic) { record(name, res.fset, d) }
			if err := a.RunModule(mp); err != nil {
				return nil, fmt.Errorf("module analyzer %s: %v", a.Name, err)
			}
		}
		if verbose {
			fmt.Fprintf(out, "stitchvet: module analysis over %d packages (%d call-graph nodes)\n", len(pkgs), len(graph.Nodes))
		}
	}

	sortDiags(res.diags)
	return res, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Run loads the packages matching patterns, applies the analyzers, and
// writes file:line:col-prefixed diagnostics to out. It returns the number
// of diagnostics after suppression; the caller turns a nonzero count into
// a nonzero exit. With opts.Fix, suggested fixes are applied first and
// the emitted diagnostics (and count) describe the post-fix state.
func Run(analyzers []*analysis.Analyzer, patterns []string, out io.Writer, opts Options) (int, error) {
	analyzers, err := selectAnalyzers(analyzers, opts.Only)
	if err != nil {
		return 0, err
	}

	res, err := analyze(analyzers, patterns, opts.Verbose, out)
	if err != nil {
		return 0, err
	}

	if opts.Fix {
		edits, files, err := applyFixes(res)
		if err != nil {
			return 0, err
		}
		if edits > 0 {
			fmt.Fprintf(out, "stitchvet: applied %d fix(es) in %d file(s); re-analyzing\n", edits, files)
			// Verification pass: the fixes must leave a clean (or at
			// least strictly reduced) tree, freshly parsed and
			// type-checked.
			res, err = analyze(analyzers, patterns, false, out)
			if err != nil {
				return 0, fmt.Errorf("re-analysis after -fix: %v", err)
			}
		}
	}

	cwd, _ := filepath.Abs(".")
	unsuppressed := 0
	for i := range res.diags {
		d := &res.diags[i]
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		if !d.Suppressed {
			unsuppressed++
		}
	}

	if opts.SARIF {
		if err := writeSARIF(out, analyzers, res.diags); err != nil {
			return unsuppressed, err
		}
		return unsuppressed, nil
	}
	enc := json.NewEncoder(out)
	for _, d := range res.diags {
		if opts.JSON {
			if err := enc.Encode(jsonDiagnostic{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			}); err != nil {
				return unsuppressed, err
			}
		} else if !d.Suppressed {
			fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	return unsuppressed, nil
}
