// Package auditdemo is the fixture for stitchvet -audit: directives in
// every state of disrepair, plus one healthy specimen.
package auditdemo

//lint:ignore floateq
var missingReason = 1

//lint:ignore floateq comparing quantized grid costs is exact here
var justified = 2

//lint:ignore nosuchanalyzer the analyzer name is stale
var unknownName = 3

//lint:ignore
var bare = 4

//lint:ignore * wildcard with a reason is allowed
var wildcard = 5
