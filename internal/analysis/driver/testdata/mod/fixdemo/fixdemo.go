// Package fixdemo exercises stitchvet -fix: every finding in use()
// carries a suggested fix, and applying them must leave the package
// finding-free and gofmt-clean. The test restores this file afterwards.
package fixdemo

import "errors"

func fail() error {
	return errors.New("boom")
}

func pair() (int, error) {
	return 0, errors.New("boom")
}

func use(k int) {
	fail()
	pair()
	if k > 0 {
		fail()
	}
}
