// Fixture for the driver's //lint:ignore handling, exercised through the
// floateq analyzer (chosen because it has no package filter).
package ignoredemo

func flagged(a, b float64) bool {
	return a == b
}

func sameLine(a, b float64) bool {
	return a == b //lint:ignore floateq exercising same-line suppression
}

func precedingLine(a, b float64) bool {
	//lint:ignore floateq exercising preceding-line suppression
	return a == b
}

func wildcard(a, b float64) bool {
	//lint:ignore * exercising wildcard suppression
	return a == b
}

func wrongAnalyzer(a, b float64) bool {
	//lint:ignore mapiterorder directive names another analyzer, so floateq still fires
	return a == b
}

func malformed(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}
