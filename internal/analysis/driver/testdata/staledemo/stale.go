// Package staledemo is the stale-suppression fixture: one //lint:ignore
// whose finding still fires (healthy, stays silent in the audit) and one
// whose finding no longer exists (stale, must be reported).
package staledemo

func Used(a, b float64) bool {
	//lint:ignore floateq fixture: the comparison below keeps this directive alive
	return a == b
}

func Stale(a, b int) bool {
	//lint:ignore floateq fixture: integer comparison never triggers floateq
	return a == b
}
