package driver

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/load"
)

// cacheSchema is baked into every cache key; bump it whenever the wire
// format or the keying discipline changes so stale trees self-invalidate.
const cacheSchema = "stitchvet-cache-v1"

// cache is the driver's on-disk finding store. Every entry is a JSON file
// whose name embeds a content hash of everything that could change the
// findings it holds — the Go toolchain version, the selected analyzers'
// name@version fingerprint, and the source bytes (directly, or
// transitively through per-package keys). A hit can therefore be replayed
// verbatim: there is no invalidation logic, only keys that stop matching.
//
// Three entry kinds exist:
//
//   - run entries ("r-"): the complete sorted diagnostic list of one full
//     invocation, keyed by a hash of the whole source tree. A warm rerun
//     on an unchanged tree replays from here without even invoking go
//     list.
//   - package entries ("p-"): one package's per-package-analyzer
//     diagnostics (malformed-directive findings included, suppression
//     applied), keyed by the package's content plus its first-party
//     dependency keys.
//   - module entries ("m-"): the whole-module interprocedural findings,
//     keyed by every package key at once — module analyses are
//     whole-module by nature, so their findings are too.
//
// File paths inside entries are stored relative to the module root and
// re-absolutized on load, so the cache survives a checkout moving.
type cache struct {
	dir  string
	root string // module root (directory holding go.mod)

	fpAll string // fingerprint over all selected analyzers
	fpPkg string // ... over the per-package subset
	fpMod string // ... over the module subset
}

// fingerprint hashes the selected analyzers' identities and versions
// together with the toolchain and cache schema. Any analyzer behaviour
// change that bumps Version lands in a fresh key space.
func fingerprint(analyzers []*analysis.Analyzer) string {
	ids := make([]string, len(analyzers))
	for i, a := range analyzers {
		ids[i] = fmt.Sprintf("%s@%d", a.Name, a.Version)
	}
	sort.Strings(ids)
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s", cacheSchema, runtime.Version(), strings.Join(ids, ","))
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint exposes the analyzer-set fingerprint for cache keying
// outside the driver (CI keys its actions/cache on it so a new or
// re-versioned analyzer starts cold).
func Fingerprint(analyzers []*analysis.Analyzer) string {
	return fingerprint(analyzers)
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func openCache(dir string, analyzers []*analysis.Analyzer) (*cache, error) {
	root, err := findModuleRoot(".")
	if err != nil {
		return nil, err
	}
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(root, dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var perPkg, module []*analysis.Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			module = append(module, a)
		} else if a.Run != nil {
			perPkg = append(perPkg, a)
		}
	}
	return &cache{
		dir:   dir,
		root:  root,
		fpAll: fingerprint(analyzers),
		fpPkg: fingerprint(perPkg),
		fpMod: fingerprint(module),
	}, nil
}

// storedDiag is the wire form of one cached diagnostic. Suggested fixes
// are deliberately not stored (token positions do not survive a reload),
// which is why -fix mode bypasses the cache entirely.
type storedDiag struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"` // relative to the module root
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// get loads one cache entry, re-absolutizing file paths. Any error — a
// missing file, truncated JSON, a schema drift — reads as a miss.
func (c *cache) get(name string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, name+".json"))
	if err != nil {
		return nil, false
	}
	var stored []storedDiag
	if err := json.Unmarshal(data, &stored); err != nil {
		return nil, false
	}
	diags := make([]Diagnostic, len(stored))
	for i, s := range stored {
		diags[i] = Diagnostic{
			Analyzer:   s.Analyzer,
			Message:    s.Message,
			Suppressed: s.Suppressed,
		}
		diags[i].Pos.Filename = filepath.Join(c.root, filepath.FromSlash(s.File))
		diags[i].Pos.Line = s.Line
		diags[i].Pos.Column = s.Col
	}
	return diags, true
}

// put stores one cache entry atomically (temp file + rename). Failures
// are swallowed: a cache that cannot be written only costs speed.
func (c *cache) put(name string, diags []Diagnostic) {
	stored := make([]storedDiag, len(diags))
	for i, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(c.root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		stored[i] = storedDiag{
			Analyzer:   d.Analyzer,
			File:       file,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}
	}
	data, err := json.Marshal(stored)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, ".entry-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, name+".json")); err != nil {
		os.Remove(tmp.Name())
	}
}

func hashInto(h io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(h, f)
	return err
}

// skipTreeDir lists directory names the tree hash (and go list ./...)
// never descends into.
func skipTreeDir(name string) bool {
	switch name {
	case ".git", "testdata", "vendor", "bin", "node_modules":
		return true
	}
	return strings.HasPrefix(name, ".")
}

// treeHash digests every buildable .go file under the module root (plus
// go.mod), in the deterministic lexical order of WalkDir. It is the run
// entry's key material: any edit, addition, or deletion of a source file
// changes the hash, so a run replay is sound by construction. Test files
// and testdata are excluded because the analysis never loads them.
func (c *cache) treeHash() (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00", cacheSchema)
	if err := hashInto(h, filepath.Join(c.root, "go.mod")); err != nil {
		return "", err
	}
	err := filepath.WalkDir(c.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != c.root && skipTreeDir(d.Name()) {
				return filepath.SkipDir
			}
			if abs, aerr := filepath.Abs(path); aerr == nil && abs == c.dir {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, rerr := filepath.Rel(c.root, path)
		if rerr != nil {
			return rerr
		}
		fmt.Fprintf(h, "\x00%s\x00", filepath.ToSlash(rel))
		return hashInto(h, path)
	})
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// runKey keys a whole-invocation replay entry: tree content, analyzer
// fingerprint, the patterns being linted, and where they are resolved
// from (patterns are cwd-relative).
func (c *cache) runKey(treeHash string, patterns []string) string {
	cwd, _ := filepath.Abs(".")
	rel, err := filepath.Rel(c.root, cwd)
	if err != nil {
		rel = cwd
	}
	h := sha256.New()
	fmt.Fprintf(h, "run\x00%s\x00%s\x00%s\x00%s", c.fpAll, treeHash, filepath.ToSlash(rel), strings.Join(patterns, "\x00"))
	return "r-" + hex.EncodeToString(h.Sum(nil))
}

// pkgKeys computes the content key of every listed package: its own
// source bytes plus — transitively, through the import DAG — the keys of
// its first-party dependencies, so an API change deep in the module
// invalidates every package whose type-checking could see it.
func (c *cache) pkgKeys(metas []*load.Meta) (map[string]string, error) {
	byPath := make(map[string]*load.Meta, len(metas))
	for _, m := range metas {
		byPath[m.PkgPath] = m
	}
	keys := make(map[string]string, len(metas))
	var visit func(m *load.Meta) (string, error)
	visit = func(m *load.Meta) (string, error) {
		if k, ok := keys[m.PkgPath]; ok {
			return k, nil
		}
		keys[m.PkgPath] = "" // cycle guard; go forbids import cycles anyway
		h := sha256.New()
		fmt.Fprintf(h, "pkg\x00%s\x00%s\x00", c.fpPkg, m.PkgPath)
		for _, f := range m.GoFiles {
			fmt.Fprintf(h, "\x00%s\x00", filepath.Base(f))
			if err := hashInto(h, f); err != nil {
				return "", err
			}
		}
		for _, dep := range m.Imports {
			dm, ok := byPath[dep]
			if !ok {
				// A first-party dependency outside the listed set (a
				// narrowed pattern): fold in its name only; the run is
				// conservative because go list rebuilt its export data.
				fmt.Fprintf(h, "\x00dep:%s\x00", dep)
				continue
			}
			dk, err := visit(dm)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(h, "\x00dep:%s=%s\x00", dep, dk)
		}
		k := hex.EncodeToString(h.Sum(nil))
		keys[m.PkgPath] = k
		return k, nil
	}
	for _, m := range metas {
		if _, err := visit(m); err != nil {
			return nil, err
		}
	}
	return keys, nil
}

// pkgEntry names the per-package cache entry; the sanitized import path
// prefix keeps the cache directory human-navigable.
func pkgEntry(pkgPath, key string) string {
	san := strings.NewReplacer("/", "_", ".", "_").Replace(pkgPath)
	return "p-" + san + "-" + key[:24]
}

// moduleEntry names the whole-module findings entry, keyed over every
// package key in the load.
func (c *cache) moduleEntry(metas []*load.Meta, keys map[string]string) string {
	h := sha256.New()
	fmt.Fprintf(h, "mod\x00%s\x00", c.fpMod)
	for _, m := range metas {
		fmt.Fprintf(h, "%s=%s\x00", m.PkgPath, keys[m.PkgPath])
	}
	return "m-" + hex.EncodeToString(h.Sum(nil))[:40]
}
