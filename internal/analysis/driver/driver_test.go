package driver

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/floateq"
)

// TestSuppression runs the real driver (go list + type-check + analyzer +
// directive filtering) over the ignoredemo fixture and checks which
// diagnostics survive //lint:ignore.
func TestSuppression(t *testing.T) {
	var out bytes.Buffer
	n, err := Run([]*analysis.Analyzer{floateq.Analyzer}, []string{"./testdata/ignoredemo"}, &out, Options{})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	got := out.String()

	// Surviving: the bare comparison, the wrong-analyzer one, the one
	// under the malformed directive, and the malformed-directive
	// diagnostic itself.
	if n != 4 {
		t.Errorf("got %d diagnostics, want 4:\n%s", n, got)
	}
	for _, want := range []string{
		"a.go:6:9: floateq:",
		"a.go:25:9: floateq:",
		"a.go:29:2: stitchvet: malformed //lint:ignore directive",
		"a.go:30:9: floateq:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	for _, absent := range []string{"a.go:10", "a.go:15", "a.go:20"} {
		if strings.Contains(got, absent) {
			t.Errorf("output should not contain %q (suppressed):\n%s", absent, got)
		}
	}
}

// TestJSONOutput reruns the same fixture in -json mode: every diagnostic
// — suppressed ones included — comes out as one object per line with the
// documented fields, and the returned count still excludes suppressed
// findings.
func TestJSONOutput(t *testing.T) {
	var out bytes.Buffer
	n, err := Run([]*analysis.Analyzer{floateq.Analyzer}, []string{"./testdata/ignoredemo"}, &out, Options{JSON: true})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	if n != 4 {
		t.Errorf("got %d unsuppressed diagnostics, want 4:\n%s", n, out.String())
	}
	var suppressed, active int
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %q", line)
		}
		if d.Suppressed {
			suppressed++
		} else {
			active++
		}
	}
	// The fixture has three honored directives (same-line, preceding-line,
	// wildcard — suppressed but kept in the JSON stream) and four
	// surviving findings.
	if active != 4 || suppressed != 3 {
		t.Errorf("got %d active + %d suppressed, want 4 + 3:\n%s", active, suppressed, out.String())
	}
}

func TestOnlyUnknownAnalyzer(t *testing.T) {
	var out bytes.Buffer
	_, err := Run([]*analysis.Analyzer{floateq.Analyzer}, []string{"./testdata/ignoredemo"}, &out, Options{Only: []string{"nosuch"}})
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("want unknown-analyzer error, got %v", err)
	}
}

func TestPackageMatch(t *testing.T) {
	a := &analysis.Analyzer{Packages: []string{"internal/global", "internal/track"}}
	cases := []struct {
		path string
		want bool
	}{
		{"stitchroute/internal/global", true},
		{"internal/global", true},
		{"stitchroute/internal/track", true},
		{"stitchroute/internal/globalx", false},
		{"stitchroute/internal/server", false},
	}
	for _, c := range cases {
		if got := packageMatch(a, c.path); got != c.want {
			t.Errorf("packageMatch(%q) = %v, want %v", c.path, got, c.want)
		}
	}
	open := &analysis.Analyzer{}
	if !packageMatch(open, "anything/at/all") {
		t.Error("empty filter must match every package")
	}
}
