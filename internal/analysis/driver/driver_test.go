package driver

import (
	"bytes"
	"encoding/json"
	"go/format"
	"os"
	"strings"
	"testing"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/errflow"
	"stitchroute/internal/analysis/floateq"
	"stitchroute/internal/analysis/racecheck"
)

// TestSuppression runs the real driver (go list + type-check + analyzer +
// directive filtering) over the ignoredemo fixture and checks which
// diagnostics survive //lint:ignore.
func TestSuppression(t *testing.T) {
	var out bytes.Buffer
	n, err := Run([]*analysis.Analyzer{floateq.Analyzer}, []string{"./testdata/ignoredemo"}, &out, Options{})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	got := out.String()

	// Surviving: the bare comparison, the wrong-analyzer one, the one
	// under the malformed directive, and the malformed-directive
	// diagnostic itself.
	if n != 4 {
		t.Errorf("got %d diagnostics, want 4:\n%s", n, got)
	}
	for _, want := range []string{
		"a.go:6:9: floateq:",
		"a.go:25:9: floateq:",
		"a.go:29:2: stitchvet: malformed //lint:ignore directive",
		"a.go:30:9: floateq:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	for _, absent := range []string{"a.go:10", "a.go:15", "a.go:20"} {
		if strings.Contains(got, absent) {
			t.Errorf("output should not contain %q (suppressed):\n%s", absent, got)
		}
	}
}

// TestJSONOutput reruns the same fixture in -json mode: every diagnostic
// — suppressed ones included — comes out as one object per line with the
// documented fields, and the returned count still excludes suppressed
// findings.
func TestJSONOutput(t *testing.T) {
	var out bytes.Buffer
	n, err := Run([]*analysis.Analyzer{floateq.Analyzer}, []string{"./testdata/ignoredemo"}, &out, Options{JSON: true})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	if n != 4 {
		t.Errorf("got %d unsuppressed diagnostics, want 4:\n%s", n, out.String())
	}
	var suppressed, active int
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %q", line)
		}
		if d.Suppressed {
			suppressed++
		} else {
			active++
		}
	}
	// The fixture has three honored directives (same-line, preceding-line,
	// wildcard — suppressed but kept in the JSON stream) and four
	// surviving findings.
	if active != 4 || suppressed != 3 {
		t.Errorf("got %d active + %d suppressed, want 4 + 3:\n%s", active, suppressed, out.String())
	}
}

func TestOnlyUnknownAnalyzer(t *testing.T) {
	var out bytes.Buffer
	_, err := Run([]*analysis.Analyzer{floateq.Analyzer}, []string{"./testdata/ignoredemo"}, &out, Options{Only: []string{"nosuch"}})
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("want unknown-analyzer error, got %v", err)
	}
}

func TestPackageMatch(t *testing.T) {
	a := &analysis.Analyzer{Packages: []string{"internal/global", "internal/track"}}
	cases := []struct {
		path string
		want bool
	}{
		{"stitchroute/internal/global", true},
		{"internal/global", true},
		{"stitchroute/internal/track", true},
		{"stitchroute/internal/globalx", false},
		{"stitchroute/internal/server", false},
	}
	for _, c := range cases {
		if got := packageMatch(a, c.path); got != c.want {
			t.Errorf("packageMatch(%q) = %v, want %v", c.path, got, c.want)
		}
	}
	open := &analysis.Analyzer{}
	if !packageMatch(open, "anything/at/all") {
		t.Error("empty filter must match every package")
	}
}

// TestOnlyListsValidNames: the unknown-analyzer error must teach the
// valid vocabulary, not just reject.
func TestOnlyListsValidNames(t *testing.T) {
	var out bytes.Buffer
	_, err := Run([]*analysis.Analyzer{floateq.Analyzer}, []string{"./testdata/ignoredemo"}, &out, Options{Only: []string{"nosuch"}})
	if err == nil || !strings.Contains(err.Error(), "valid analyzers: floateq") {
		t.Fatalf("error must list the valid analyzer names, got %v", err)
	}
}

// TestFixRoundTrip applies errflow's suggested fixes to the fixdemo
// fixture and checks the three-way contract: the rewritten file matches
// the golden output, is gofmt-clean, and re-analyzes to zero findings.
func TestFixRoundTrip(t *testing.T) {
	const fixture = "testdata/mod/fixdemo/fixdemo.go"
	orig, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.WriteFile(fixture, orig, 0o644); err != nil {
			t.Errorf("restoring fixture: %v", err)
		}
	})

	var out bytes.Buffer
	n, err := Run([]*analysis.Analyzer{errflow.Analyzer}, []string{"./testdata/mod/fixdemo"}, &out, Options{Fix: true})
	if err != nil {
		t.Fatalf("driver.Run -fix: %v", err)
	}
	if n != 0 {
		t.Errorf("want 0 findings after -fix, got %d:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "applied 3 fix(es) in 1 file(s)") {
		t.Errorf("missing apply summary:\n%s", out.String())
	}

	got, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/fixdemo.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Errorf("fixed file does not match golden.\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
	formatted, err := format.Source(got)
	if err != nil {
		t.Fatalf("fixed file does not parse: %v", err)
	}
	if !bytes.Equal(formatted, got) {
		t.Errorf("fixed file is not gofmt-clean.\n--- on disk ---\n%s\n--- gofmt ---\n%s", got, formatted)
	}
}

// TestSARIFOutput checks the CI interchange document: a single SARIF
// 2.1.0 log where suppressed findings survive with an inSource marker.
func TestSARIFOutput(t *testing.T) {
	var out bytes.Buffer
	n, err := Run([]*analysis.Analyzer{floateq.Analyzer}, []string{"./testdata/ignoredemo"}, &out, Options{SARIF: true})
	if err != nil {
		t.Fatalf("driver.Run -sarif: %v", err)
	}
	if n != 4 {
		t.Errorf("got %d unsuppressed diagnostics, want 4", n)
	}
	var log sarifLog
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "stitchvet" {
		t.Errorf("tool name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if !ruleIDs["floateq"] || !ruleIDs["stitchvet"] {
		t.Errorf("rules missing floateq/stitchvet: %v", ruleIDs)
	}
	var active, suppressed int
	for _, r := range run.Results {
		if len(r.Locations) != 1 || r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result without a location: %+v", r)
		}
		if len(r.Suppressions) > 0 {
			suppressed++
		} else {
			active++
		}
	}
	if active != 4 || suppressed != 3 {
		t.Errorf("got %d active + %d suppressed results, want 4 + 3", active, suppressed)
	}
}

// TestAuditIgnores drives the -audit fixture: two directives missing
// their reason, one naming an unknown analyzer, and two healthy ones.
func TestAuditIgnores(t *testing.T) {
	var out bytes.Buffer
	n, err := AuditIgnores("testdata/auditdemo", map[string]bool{"floateq": true}, &out)
	if err != nil {
		t.Fatalf("AuditIgnores: %v", err)
	}
	if n != 3 {
		t.Errorf("got %d findings, want 3:\n%s", n, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"bad.go:5:1: //lint:ignore directive is missing its mandatory reason",
		"bad.go:11:1: //lint:ignore names unknown analyzer \"nosuchanalyzer\"",
		"bad.go:14:1: //lint:ignore directive is missing its mandatory reason",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	for _, absent := range []string{"bad.go:8", "bad.go:17"} {
		if strings.Contains(got, absent) {
			t.Errorf("healthy directive flagged: %q in\n%s", absent, got)
		}
	}
}

// incrAnalyzers is the analyzer set the incremental-driver tests run: one
// per-package analyzer with real findings on the fixtures and one
// whole-module analyzer (no goroutines in the fixtures, so it stays
// silent) to exercise the module cache entry alongside the package ones.
func incrAnalyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{floateq.Analyzer, racecheck.Analyzer}
}

var incrPatterns = []string{"./testdata/ignoredemo", "./testdata/mod/fixdemo"}

// TestCacheWarmReplay is the warm-path contract: a cold run populates the
// cache, and an immediately repeated run replays the whole invocation —
// byte-identical output, same count — without listing a single package.
func TestCacheWarmReplay(t *testing.T) {
	cacheDir := t.TempDir()

	var cold bytes.Buffer
	var coldStats Stats
	nCold, err := Run(incrAnalyzers(), incrPatterns, &cold, Options{CacheDir: cacheDir, Stats: &coldStats})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if coldStats.RunReplayed {
		t.Error("cold run claims replay")
	}
	if coldStats.Packages != 2 || coldStats.Analyzed != 2 || coldStats.CachedPackages != 0 {
		t.Errorf("cold stats = %+v, want 2 packages, 2 analyzed, 0 cached", coldStats)
	}
	if nCold == 0 {
		t.Fatal("fixture produced no findings; the byte-equality check below would be vacuous")
	}

	var warm bytes.Buffer
	var warmStats Stats
	nWarm, err := Run(incrAnalyzers(), incrPatterns, &warm, Options{CacheDir: cacheDir, Stats: &warmStats})
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !warmStats.RunReplayed {
		t.Errorf("warm run did not replay: %+v", warmStats)
	}
	if warmStats.Packages != 0 {
		t.Errorf("warm run listed %d packages; replay must skip go list", warmStats.Packages)
	}
	if nWarm != nCold {
		t.Errorf("warm count %d != cold count %d", nWarm, nCold)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Errorf("warm output differs from cold.\n--- cold ---\n%s\n--- warm ---\n%s", cold.String(), warm.String())
	}
}

// TestDiffOnlyChanged pins the -diff contract: with a synthetic git
// change set touching one fixture package, only that package re-analyzes;
// the other is served from per-package cache entries, the module findings
// replay, and the output stays byte-identical to the cold run.
func TestDiffOnlyChanged(t *testing.T) {
	cacheDir := t.TempDir()

	var cold bytes.Buffer
	nCold, err := Run(incrAnalyzers(), incrPatterns, &cold, Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	orig := gitDiffFiles
	defer func() { gitDiffFiles = orig }()
	gitDiffFiles = func(root, ref string) ([]string, error) {
		if ref != "fakeref" {
			t.Errorf("gitDiffFiles called with ref %q, want fakeref", ref)
		}
		return []string{
			"internal/analysis/driver/testdata/ignoredemo/a.go",
			"docs/LINTING.md", // non-.go changes never force re-analysis
		}, nil
	}

	var diff bytes.Buffer
	var st Stats
	n, err := Run(incrAnalyzers(), incrPatterns, &diff, Options{CacheDir: cacheDir, Diff: "fakeref", Stats: &st})
	if err != nil {
		t.Fatalf("diff run: %v", err)
	}
	if st.RunReplayed {
		t.Error("-diff must not take the whole-run replay path")
	}
	if st.ChangedPackages != 1 {
		t.Errorf("ChangedPackages = %d, want 1", st.ChangedPackages)
	}
	if st.Analyzed != 1 || st.CachedPackages != 1 {
		t.Errorf("stats = %+v, want 1 analyzed + 1 cached", st)
	}
	if !st.ModuleFromCache {
		t.Error("unchanged package keys must replay the module findings")
	}
	if n != nCold || !bytes.Equal(cold.Bytes(), diff.Bytes()) {
		t.Errorf("diff output differs from cold (%d vs %d findings).\n--- cold ---\n%s\n--- diff ---\n%s",
			nCold, n, cold.String(), diff.String())
	}
}

// TestDiffRequiresCache: -diff without a cache directory is a driver
// error, not a silent full run.
func TestDiffRequiresCache(t *testing.T) {
	var out bytes.Buffer
	_, err := Run(incrAnalyzers(), incrPatterns, &out, Options{Diff: "HEAD"})
	if err == nil || !strings.Contains(err.Error(), "-diff requires the findings cache") {
		t.Fatalf("want -diff-requires-cache error, got %v", err)
	}
}

// TestFingerprintInvalidates: bumping an analyzer's Version moves every
// cache key, so behaviour changes start cold by construction.
func TestFingerprintInvalidates(t *testing.T) {
	mk := func(v int) *analysis.Analyzer {
		return &analysis.Analyzer{Name: "probe", Version: v}
	}
	if fingerprint([]*analysis.Analyzer{mk(1)}) == fingerprint([]*analysis.Analyzer{mk(2)}) {
		t.Error("fingerprint ignores Analyzer.Version")
	}
	if fingerprint([]*analysis.Analyzer{mk(1)}) != fingerprint([]*analysis.Analyzer{mk(1)}) {
		t.Error("fingerprint is not deterministic")
	}
}

// TestStaleIgnores drives the staledemo fixture: the directive whose
// finding still fires stays silent; the one waiving a finding that no
// longer exists is reported with its file, line, and analyzer spec.
func TestStaleIgnores(t *testing.T) {
	var out bytes.Buffer
	n, err := StaleIgnores([]*analysis.Analyzer{floateq.Analyzer}, []string{"./testdata/staledemo"}, &out)
	if err != nil {
		t.Fatalf("StaleIgnores: %v", err)
	}
	if n != 1 {
		t.Errorf("got %d stale directives, want 1:\n%s", n, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "stale.go:12:2: stale //lint:ignore floateq: no matching finding fires here") {
		t.Errorf("missing stale report:\n%s", got)
	}
	if strings.Contains(got, "stale.go:7") {
		t.Errorf("healthy directive flagged as stale:\n%s", got)
	}
}
