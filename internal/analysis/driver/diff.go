package driver

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"

	"stitchroute/internal/analysis/load"
)

// gitDiffFiles lists the paths (relative to the repository root) of files
// changed between ref and the worktree. It is a variable so tests can
// substitute a synthetic change set without arranging git history.
var gitDiffFiles = func(root, ref string) ([]string, error) {
	cmd := exec.Command("git", "-C", root, "diff", "--name-only", ref)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("git diff --name-only %s: %v\n%s", ref, err, stderr.String())
	}
	var files []string
	for _, line := range strings.Split(string(out), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			files = append(files, line)
		}
	}
	return files, nil
}

// changedPackages maps a git change set onto the listed packages: a
// package is changed when any changed .go file sits in its directory.
// Files outside every listed package (docs, testdata, tooling) do not
// force re-analysis; content-addressed package keys keep that sound —
// if such a file could have affected findings, the keys would miss.
func changedPackages(root string, files []string, metas []*load.Meta) map[string]bool {
	byDir := make(map[string]string, len(metas))
	for _, m := range metas {
		byDir[filepath.Clean(m.Dir)] = m.PkgPath
	}
	changed := make(map[string]bool)
	for _, f := range files {
		if !strings.HasSuffix(f, ".go") || strings.HasSuffix(f, "_test.go") {
			continue
		}
		dir := filepath.Clean(filepath.Join(root, filepath.FromSlash(filepath.Dir(f))))
		if pkg, ok := byDir[dir]; ok {
			changed[pkg] = true
		}
	}
	return changed
}
