// Package cfg builds per-function control-flow graphs from go/ast for the
// stitchvet flow-sensitive analyzers.
//
// A Graph is a list of basic blocks over one function body. Each block
// holds the AST nodes that execute in it, in execution order: plain
// statements appear whole, while compound statements are decomposed — an
// `if` contributes its init statement and condition expression to the
// current block and fresh blocks for the branches, a `for` gets head,
// body, and post blocks with the loop back edge, a `range` statement
// appears itself as the single node of its head block (one evaluation of
// the range operands plus the per-iteration key/value assignment), and a
// `select` contributes one block per communication clause with the comm
// statement as its first node. `break`, `continue`, `goto` (including
// labeled forms and `fallthrough`) become edges; `return` and `panic`
// edges run to the distinguished Exit block. Deferred calls are collected
// on the graph (their argument evaluation stays in the defer's block);
// they run on every path that reaches Exit.
//
// Function literals are NOT inlined: a FuncLit inside an expression is an
// opaque value in the enclosing graph, and callers build a separate Graph
// for its body. This keeps each graph a faithful model of one activation
// record, which is what the dataflow solver iterates over.
package cfg

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Block is one basic block.
type Block struct {
	Index int    // position in Graph.Blocks, stable across runs
	Kind  string // human-readable role, e.g. "entry", "for.head", "if.then"
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists every defer statement in the function, in source
	// order. Their calls execute, in reverse order, on every path that
	// reaches Exit (including panics).
	Defers []*ast.DeferStmt
}

// New builds the CFG of a function body. It accepts the body directly so
// the same constructor serves *ast.FuncDecl and *ast.FuncLit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: map[string]*labelInfo{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	// Falling off the end of the function returns.
	b.edgeTo(b.g.Exit)
	b.resolveGotos()
	return b.g
}

// FuncBody returns the body of a FuncDecl or FuncLit, or nil.
func FuncBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

// labelInfo tracks a declared label (goto target) and any forward gotos
// waiting for it.
type labelInfo struct {
	block   *Block
	pending []*Block // blocks ending in `goto label` seen before the label
}

type builder struct {
	g      *Graph
	cur    *Block // nil while the current point is unreachable
	frames []frame
	labels map[string]*labelInfo
	// pendingLabel is set between a LabeledStmt and the construct it
	// labels, so `outer: for ...` registers "outer" on the loop's frame.
	pendingLabel string
	// fallTo is the next case-clause block while building a switch body;
	// a `fallthrough` statement becomes an edge to it.
	fallTo *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge adds from→to.
func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// edgeTo links the current block to dst, if reachable.
func (b *builder) edgeTo(dst *Block) {
	if b.cur != nil {
		edge(b.cur, dst)
	}
}

// add appends a node to the current block. Unreachable statements get a
// fresh predecessor-less block so analyzers still see their nodes.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.labeled(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminatingCall(call) {
			b.edgeTo(b.g.Exit)
			b.cur = nil
		}
	default:
		// Assign, Decl, IncDec, Send, Go: straight-line nodes.
		b.add(s)
	}
}

// isTerminatingCall recognizes calls that never return, by name: the
// panic builtin, os.Exit, runtime.Goexit, and log.Fatal*. Name-based
// matching is deliberate — the graph is built before (and independent of)
// type checking.
func isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			switch {
			case pkg.Name == "os" && fun.Sel.Name == "Exit",
				pkg.Name == "runtime" && fun.Sel.Name == "Goexit",
				pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
				return true
			}
		}
	}
	return false
}

func (b *builder) labeled(s *ast.LabeledStmt) {
	name := s.Label.Name
	info := b.labels[name]
	if info == nil {
		info = &labelInfo{}
		b.labels[name] = info
	}
	lab := b.newBlock("label." + name)
	b.edgeTo(lab)
	b.cur = lab
	info.block = lab
	for _, from := range info.pending {
		edge(from, lab)
	}
	info.pending = nil
	b.pendingLabel = name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

func (b *builder) branch(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok.String() {
	case "break":
		if f := b.findFrame(s.Label, false); f != nil {
			b.edgeTo(f.breakTo)
		}
	case "continue":
		if f := b.findFrame(s.Label, true); f != nil {
			b.edgeTo(f.continueTo)
		}
	case "goto":
		name := s.Label.Name
		info := b.labels[name]
		if info == nil {
			info = &labelInfo{}
			b.labels[name] = info
		}
		if info.block != nil {
			b.edgeTo(info.block)
		} else if b.cur != nil {
			info.pending = append(info.pending, b.cur)
		}
	case "fallthrough":
		if b.fallTo != nil {
			b.edgeTo(b.fallTo)
		}
	}
	b.cur = nil
}

// findFrame locates the frame a break/continue targets. wantLoop
// restricts the search to loop frames (continue skips switch/select).
func (b *builder) findFrame(label *ast.Ident, wantLoop bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if wantLoop && f.continueTo == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) pushFrame(label string, breakTo, continueTo *Block) {
	b.frames = append(b.frames, frame{label: label, breakTo: breakTo, continueTo: continueTo})
}

func (b *builder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

func (b *builder) ifStmt(s *ast.IfStmt) {
	label := b.takeLabel()
	_ = label // a label on an if only serves goto; the label block exists
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	after := b.newBlock("if.after")

	then := b.newBlock("if.then")
	if head != nil {
		edge(head, then)
	}
	b.cur = then
	b.stmtList(s.Body.List)
	b.edgeTo(after)

	if s.Else != nil {
		els := b.newBlock("if.else")
		if head != nil {
			edge(head, els)
		}
		b.cur = els
		b.stmt(s.Else)
		b.edgeTo(after)
	} else if head != nil {
		edge(head, after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.edgeTo(head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	edge(head, body)
	if s.Cond != nil {
		// `for {}` has no exit edge from the head: after is reachable
		// only through break.
		edge(head, after)
	}
	continueTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		edge(post, head)
		continueTo = post
	}
	b.pushFrame(label, after, continueTo)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edgeTo(continueTo)
	b.popFrame()
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	b.edgeTo(head)
	// The RangeStmt itself is the head's node: one evaluation of X plus
	// the per-iteration key/value assignment. Analyzers walking a
	// RangeStmt node must not descend into s.Body — those statements live
	// in the body block.
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	edge(head, body)
	edge(head, after)
	b.pushFrame(label, after, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edgeTo(head)
	b.popFrame()
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	after := b.newBlock("switch.after")
	b.pushFrame(label, after, nil)

	clauses := s.Body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		if head != nil {
			edge(head, blocks[i])
		}
	}
	if !hasDefault && head != nil {
		edge(head, after)
	}
	savedFall := b.fallTo
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if i+1 < len(blocks) {
			b.fallTo = blocks[i+1]
		} else {
			b.fallTo = nil
		}
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		b.edgeTo(after)
	}
	b.fallTo = savedFall
	b.popFrame()
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.cur
	after := b.newBlock("switch.after")
	b.pushFrame(label, after, nil)
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blk := b.newBlock(kind)
		if head != nil {
			edge(head, blk)
		}
		b.cur = blk
		b.stmtList(cc.Body)
		b.edgeTo(after)
	}
	if !hasDefault && head != nil {
		edge(head, after)
	}
	b.popFrame()
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	after := b.newBlock("select.after")
	b.pushFrame(label, after, nil)
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			// The comm statement (receive/send) executes when this case
			// is chosen.
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edgeTo(after)
	}
	// An empty select blocks forever; otherwise control always enters
	// exactly one case, so head has no direct edge to after.
	b.popFrame()
	if len(s.Body.List) == 0 {
		b.cur = nil
		_ = after
	} else {
		b.cur = after
	}
}

func (b *builder) resolveGotos() {
	// Forward gotos to labels that never appear (malformed source) are
	// dropped; the type checker reports those programs anyway.
	for _, info := range b.labels {
		info.pending = nil
	}
}

// RevPostorder returns the blocks reachable from Entry in reverse
// postorder — the canonical iteration order for a forward dataflow
// analysis. Unreachable blocks are appended at the end in index order so
// analyzers still visit their nodes.
func (g *Graph) RevPostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(blk *Block) {
		seen[blk.Index] = true
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, blk)
	}
	dfs(g.Entry)
	out := make([]*Block, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, blk := range g.Blocks {
		if !seen[blk.Index] {
			out = append(out, blk)
		}
	}
	return out
}

// InLoop reports, per block index, whether the block lies inside a
// natural loop: for each back edge t→h found by depth-first search, the
// loop body is h plus every block that reaches t without passing through
// h. A block in the body executes arbitrarily many times per function
// call; hotalloc's "one-time setup" allowlist is exactly the complement.
func (g *Graph) InLoop() []bool {
	in := make([]bool, len(g.Blocks))
	// Find back edges with an iterative DFS that tracks the stack.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	type backEdge struct{ tail, head *Block }
	var backs []backEdge
	var dfs func(*Block)
	dfs = func(blk *Block) {
		color[blk.Index] = grey
		for _, s := range blk.Succs {
			switch color[s.Index] {
			case white:
				dfs(s)
			case grey:
				backs = append(backs, backEdge{tail: blk, head: s})
			}
		}
		color[blk.Index] = black
	}
	dfs(g.Entry)

	for _, be := range backs {
		// Flood backwards from the tail, stopping at the head.
		in[be.head.Index] = true
		if be.tail == be.head {
			continue
		}
		stack := []*Block{be.tail}
		for len(stack) > 0 {
			blk := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if in[blk.Index] {
				continue
			}
			in[blk.Index] = true
			for _, p := range blk.Preds {
				if !in[p.Index] {
					stack = append(stack, p)
				}
			}
		}
	}
	return in
}

// DebugString renders the graph as one line per block:
//
//	b0 entry -> b2 b3
//
// in index order, for the hand-written expectations in cfg_test.go.
func (g *Graph) DebugString() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s", blk.Index, blk.Kind)
		if len(blk.Succs) > 0 {
			succs := make([]int, len(blk.Succs))
			for i, s := range blk.Succs {
				succs[i] = s.Index
			}
			sort.Ints(succs)
			sb.WriteString(" ->")
			for _, s := range succs {
				fmt.Fprintf(&sb, " b%d", s)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
