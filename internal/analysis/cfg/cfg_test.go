package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses a function body and constructs its graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// expect compares the graph against a hand-written block/edge list.
func expect(t *testing.T, g *Graph, want string) {
	t.Helper()
	got := strings.TrimSpace(g.DebugString())
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\nx++\nreturn")
	expect(t, g, `
b0 entry -> b1
b1 exit
`)
	if n := len(g.Entry.Nodes); n != 3 {
		t.Errorf("entry nodes = %d, want 3", n)
	}
}

func TestIfElse(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n\tx = 2\n} else {\n\tx = 3\n}\nx++")
	expect(t, g, `
b0 entry -> b3 b4
b1 exit
b2 if.after -> b1
b3 if.then -> b2
b4 if.else -> b2
`)
}

// TestForNoPost is the `for {}` edge case: no condition means no exit
// edge from the head — for.after is reachable only via break, and with no
// break it has no predecessors at all.
func TestForNoPost(t *testing.T) {
	g := build(t, "x := 0\nfor {\n\tx++\n}")
	expect(t, g, `
b0 entry -> b2
b1 exit
b2 for.head -> b3
b3 for.body -> b2
b4 for.after -> b1
`)
	if len(g.Blocks[4].Preds) != 0 {
		t.Errorf("for.after of an infinite loop must have no preds, got %d", len(g.Blocks[4].Preds))
	}
	in := g.InLoop()
	for i, want := range []bool{false, false, true, true, false} {
		if in[i] != want {
			t.Errorf("InLoop[b%d] = %v, want %v", i, in[i], want)
		}
	}
}

func TestForNoPostWithBreak(t *testing.T) {
	g := build(t, "x := 0\nfor {\n\tif x > 3 {\n\t\tbreak\n\t}\n\tx++\n}")
	expect(t, g, `
b0 entry -> b2
b1 exit
b2 for.head -> b3
b3 for.body -> b5 b6
b4 for.after -> b1
b5 if.after -> b2
b6 if.then -> b4
`)
}

func TestForFull(t *testing.T) {
	g := build(t, "for i := 0; i < 3; i++ {\n\t_ = i\n}")
	expect(t, g, `
b0 entry -> b2
b1 exit
b2 for.head -> b3 b4
b3 for.body -> b5
b4 for.after -> b1
b5 for.post -> b2
`)
	in := g.InLoop()
	for i, want := range []bool{false, false, true, true, false, true} {
		if in[i] != want {
			t.Errorf("InLoop[b%d] = %v, want %v", i, in[i], want)
		}
	}
}

// TestSwitchFallthrough: the fallthrough edge runs from the first case
// block straight into the second case's body, never through switch.after.
func TestSwitchFallthrough(t *testing.T) {
	g := build(t, "x := 0\nswitch x {\ncase 0:\n\tx = 1\n\tfallthrough\ncase 1:\n\tx = 2\ndefault:\n\tx = 3\n}")
	expect(t, g, `
b0 entry -> b3 b4 b5
b1 exit
b2 switch.after -> b1
b3 switch.case -> b4
b4 switch.case -> b2
b5 switch.default -> b2
`)
}

// TestSwitchNoDefault: without a default clause the head keeps a direct
// edge to switch.after (no case may match).
func TestSwitchNoDefault(t *testing.T) {
	g := build(t, "x := 0\nswitch x {\ncase 0:\n\tx = 1\n}")
	expect(t, g, `
b0 entry -> b2 b3
b1 exit
b2 switch.after -> b1
b3 switch.case -> b2
`)
}

// TestLabeledBreakContinue: `continue outer` from the inner loop targets
// the outer loop's post block (b6); `break outer` targets the outer
// loop's after block (b5), not the inner one.
func TestLabeledBreakContinue(t *testing.T) {
	g := build(t, `outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
		}
	}`)
	expect(t, g, `
b0 entry -> b2
b1 exit
b2 label.outer -> b3
b3 for.head -> b4 b5
b4 for.body -> b7
b5 for.after -> b1
b6 for.post -> b3
b7 for.head -> b8 b9
b8 for.body -> b11 b12
b9 for.after -> b6
b10 for.post -> b7
b11 if.after -> b13 b14
b12 if.then -> b6
b13 if.after -> b10
b14 if.then -> b5
`)
}

// TestDeferInLoop: the defer statement sits in the loop body block (its
// arguments are evaluated there every iteration) and is collected on
// Graph.Defers exactly once.
func TestDeferInLoop(t *testing.T) {
	g := build(t, "for i := 0; i < 3; i++ {\n\tdefer println(i)\n}")
	expect(t, g, `
b0 entry -> b2
b1 exit
b2 for.head -> b3 b4
b3 for.body -> b5
b4 for.after -> b1
b5 for.post -> b2
`)
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(g.Defers))
	}
	found := false
	for _, n := range g.Blocks[3].Nodes {
		if n == g.Defers[0] {
			found = true
		}
	}
	if !found {
		t.Errorf("defer statement not recorded in the for.body block")
	}
	if !g.InLoop()[3] {
		t.Errorf("defer-in-loop body block must be InLoop")
	}
}

func TestRange(t *testing.T) {
	g := build(t, "s := []int{1}\nfor _, v := range s {\n\t_ = v\n}")
	expect(t, g, `
b0 entry -> b2
b1 exit
b2 range.head -> b3 b4
b3 range.body -> b2
b4 range.after -> b1
`)
	// The RangeStmt itself is the head's only node.
	if n := len(g.Blocks[2].Nodes); n != 1 {
		t.Fatalf("range.head nodes = %d, want 1", n)
	}
	if _, ok := g.Blocks[2].Nodes[0].(*ast.RangeStmt); !ok {
		t.Errorf("range.head node is %T, want *ast.RangeStmt", g.Blocks[2].Nodes[0])
	}
}

// TestGotoBackward: a backward goto forms a loop that InLoop detects even
// though no for statement exists.
func TestGotoBackward(t *testing.T) {
	g := build(t, "x := 0\nloop:\n\tx++\nif x < 3 {\n\tgoto loop\n}")
	expect(t, g, `
b0 entry -> b2
b1 exit
b2 label.loop -> b3 b4
b3 if.after -> b1
b4 if.then -> b2
`)
	in := g.InLoop()
	if !in[2] || !in[4] {
		t.Errorf("goto loop must mark label and branch blocks InLoop, got %v", in)
	}
}

func TestSelect(t *testing.T) {
	g := build(t, "var a, b chan int\nselect {\ncase <-a:\n\t_ = 1\ncase v := <-b:\n\t_ = v\n}")
	expect(t, g, `
b0 entry -> b3 b4
b1 exit
b2 select.after -> b1
b3 select.case -> b2
b4 select.case -> b2
`)
}

func TestReturnMakesUnreachable(t *testing.T) {
	g := build(t, "return\nx := 1\n_ = x")
	expect(t, g, `
b0 entry -> b1
b1 exit
b2 unreachable -> b1
`)
	rpo := g.RevPostorder()
	if rpo[0] != g.Entry {
		t.Errorf("RevPostorder must start at entry")
	}
	// Unreachable blocks come last.
	if rpo[len(rpo)-1].Kind != "unreachable" {
		t.Errorf("unreachable block must sort last in RevPostorder, got %s", rpo[len(rpo)-1].Kind)
	}
}

func TestPanicTerminates(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n\tpanic(\"no\")\n}\n_ = x")
	// The then-block must edge to exit, not to if.after.
	var then *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "if.then" {
			then = blk
		}
	}
	if then == nil {
		t.Fatal("no if.then block")
	}
	if len(then.Succs) != 1 || then.Succs[0] != g.Exit {
		t.Errorf("panic block must edge only to exit, got %v", then.Succs)
	}
}

func TestRevPostorderVisitsLoopHeadFirst(t *testing.T) {
	g := build(t, "for i := 0; i < 3; i++ {\n\t_ = i\n}")
	rpo := g.RevPostorder()
	pos := map[string]int{}
	for i, blk := range rpo {
		if _, ok := pos[blk.Kind]; !ok {
			pos[blk.Kind] = i
		}
	}
	if !(pos["entry"] < pos["for.head"] && pos["for.head"] < pos["for.body"]) {
		t.Errorf("bad reverse postorder: %v", pos)
	}
}

// TestRangeOverInt: Go 1.22 range-over-int builds the same loop shape as
// ranging a slice — head with body/after successors and a back edge —
// and InLoop marks head and body but not after.
func TestRangeOverInt(t *testing.T) {
	g := build(t, "total := 0\nfor i := range 10 {\n\ttotal += i\n}\n_ = total")
	expect(t, g, `
b0 entry -> b2
b1 exit
b2 range.head -> b3 b4
b3 range.body -> b2
b4 range.after -> b1
`)
	in := g.InLoop()
	if !in[2] || !in[3] {
		t.Errorf("range-over-int must mark head and body InLoop, got %v", in)
	}
	if in[4] {
		t.Errorf("range.after must not be InLoop, got %v", in)
	}
}

// TestSelectMixedSendRecv: a send case and a receive case build the same
// shape; a case ending in return bypasses select.after entirely.
func TestSelectMixedSendRecv(t *testing.T) {
	g := build(t, "var a chan int\nvar done chan int\nselect {\ncase a <- 1:\n\tx := 1\n\t_ = x\ncase <-done:\n\treturn\n}\n_ = a")
	expect(t, g, `
b0 entry -> b3 b4
b1 exit
b2 select.after -> b1
b3 select.case -> b2
b4 select.case -> b1
`)
	// The send comm statement belongs to its case block: comm + two body
	// statements.
	if n := len(g.Blocks[3].Nodes); n != 3 {
		t.Errorf("send case nodes = %d, want 3 (comm, assign, use)", n)
	}
}

// TestSelectDefault: the default clause gets its own block kind, and the
// head still has no direct edge to select.after — exactly one arm runs.
func TestSelectDefault(t *testing.T) {
	g := build(t, "var c chan int\nselect {\ncase v := <-c:\n\t_ = v\ndefault:\n\t_ = 0\n}")
	expect(t, g, `
b0 entry -> b3 b4
b1 exit
b2 select.after -> b1
b3 select.case -> b2
b4 select.default -> b2
`)
}

// TestSelectNested: a select inside a case body — the inner after block
// feeds the outer one, and each head branches only to its own arms.
func TestSelectNested(t *testing.T) {
	g := build(t, "var a, b chan int\nselect {\ncase <-a:\n\tselect {\n\tcase <-b:\n\tdefault:\n\t}\ndefault:\n}")
	expect(t, g, `
b0 entry -> b3 b7
b1 exit
b2 select.after -> b1
b3 select.case -> b5 b6
b4 select.after -> b2
b5 select.case -> b4
b6 select.default -> b4
b7 select.default -> b2
`)
}

// TestSelectInLoopLabeledBreak: `break outer` from a select case must
// target the loop's after block, not the select's; the default arm loops
// back through the head.
func TestSelectInLoopLabeledBreak(t *testing.T) {
	g := build(t, "var c chan int\nouter:\nfor {\n\tselect {\n\tcase <-c:\n\t\tbreak outer\n\tdefault:\n\t}\n}\n_ = c")
	expect(t, g, `
b0 entry -> b2
b1 exit
b2 label.outer -> b3
b3 for.head -> b4
b4 for.body -> b7 b8
b5 for.after -> b1
b6 select.after -> b3
b7 select.case -> b5
b8 select.default -> b6
`)
}

// TestSelectEmpty: `select {}` blocks forever, so everything after it is
// unreachable from the entry.
func TestSelectEmpty(t *testing.T) {
	g := build(t, "x := 1\nselect {}\nx = 2\n_ = x")
	got := g.DebugString()
	if !strings.Contains(got, "select.after") {
		t.Fatalf("missing select.after block:\n%s", got)
	}
	// No path from entry may reach the exit: the empty select never
	// proceeds.
	reached := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if reached[b] {
			return
		}
		reached[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	if reached[g.Exit] {
		t.Errorf("exit reachable across an empty select:\n%s", got)
	}
}
