package leakcheck_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/leakcheck"
)

func TestAnalyzer(t *testing.T) {
	analyzertest.Run(t, "../testdata", leakcheck.Analyzer, "leakcheck")
}
