// Package leakcheck defines a flow-sensitive analyzer that flags
// goroutines with no joining path.
//
// The router's worker pools are built on a strict discipline: every
// spawned goroutine is either joined by its spawner (a WaitGroup.Wait, a
// channel receive, or a select observed on some CFG path after the spawn
// — deferred joins count, they run at function exit), terminates itself
// by blocking on a channel (receive, range-over-channel, or a select
// including ctx.Done()), or participates in the WaitGroup-field protocol:
// the spawner Adds to a struct WaitGroup field (or the body defers Done
// on one) and some function in the package Waits on that same field —
// the server's New/worker/Shutdown shape.
//
// A go statement satisfying none of these is a leak: under cancellation
// or server shutdown the goroutine keeps running with no one to reap it.
// The check is CFG-based, so a join that is merely textually nearby but
// unreachable from the spawn does not count.
package leakcheck

import (
	"go/ast"
	"go/types"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/cfg"
)

// Analyzer flags goroutines whose spawner has no joining path and whose
// body never blocks on a channel.
var Analyzer = &analysis.Analyzer{
	Name:    "leakcheck",
	Version: 1,
	Doc: "flag goroutines with no joining path: no spawner-side Wait/receive/select after the spawn, no self-terminating body, no package WaitGroup-field discipline\n\n" +
		"Leaked goroutines outlive cancellation and shutdown; the worker-pool discipline requires every spawn to have a reaper.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Package-wide facts for the WaitGroup-field protocol: the set of
	// WaitGroup-typed struct fields some function Waits on.
	waitedFields := map[types.Object]bool{}
	pass.Preorder(func(n ast.Node) bool {
		if f, ok := waitGroupFieldCall(pass, n, "Wait"); ok {
			waitedFields[f] = true
		}
		return true
	})

	// Bodies of package functions, for resolving `go s.worker()`.
	bodies := map[*types.Func]*ast.BlockStmt{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func); ok {
					bodies[obj] = fd.Body
				}
			}
		}
	}

	check := func(body *ast.BlockStmt) {
		g := cfg.New(body)
		for _, b := range g.Blocks {
			for i, n := range b.Nodes {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					continue
				}
				if spawnerJoins(pass, g, b, i) {
					continue
				}
				if bodySelfTerminates(pass, gs, bodies) {
					continue
				}
				if waitGroupDiscipline(pass, body, gs, bodies, waitedFields) {
					continue
				}
				pass.Reportf(gs.Pos(), "goroutine is never joined: no Wait/receive/select on any path after the spawn, the body never blocks on a channel, and no WaitGroup-field protocol applies; it outlives cancellation")
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			check(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					check(fl.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// spawnerJoins reports whether a join construct (WaitGroup.Wait, channel
// receive, range-over-channel, or select) appears on some CFG path after
// the spawn at node index gi of block b. Deferred statements join too:
// they run at function exit, which every path reaches.
func spawnerJoins(pass *analysis.Pass, g *cfg.Graph, b *cfg.Block, gi int) bool {
	for _, d := range g.Defers {
		if isJoinNode(pass, d) {
			return true
		}
	}
	for _, n := range b.Nodes[gi+1:] {
		if isJoinNode(pass, n) {
			return true
		}
	}
	seen := make([]bool, len(g.Blocks))
	stack := []*cfg.Block{}
	for _, s := range b.Succs {
		if !seen[s.Index] {
			seen[s.Index] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range blk.Nodes {
			if isJoinNode(pass, n) {
				return true
			}
		}
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// isJoinNode reports whether the node blocks the spawner on goroutine
// progress: a WaitGroup.Wait call, a channel receive, or ranging over a
// channel. Receives nested in function literals do not count — they only
// run if that literal does.
func isJoinNode(pass *analysis.Pass, node ast.Node) bool {
	if rng, ok := node.(*ast.RangeStmt); ok {
		if t := pass.TypeOf(rng.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return true
			}
		}
		// Statements of the range body live in other blocks.
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
				return false
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if isWaitGroup(pass.TypeOf(sel.X)) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// bodySelfTerminates reports whether the goroutine's body blocks on a
// channel (receive, range-over-channel, or select — including
// ctx.Done()): such a goroutine has a shutdown signal it observes.
func bodySelfTerminates(pass *analysis.Pass, gs *ast.GoStmt, bodies map[*types.Func]*ast.BlockStmt) bool {
	body := goBody(pass, gs, bodies)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// goBody resolves the statements the goroutine runs: the literal's body
// for `go func(){...}()`, or the package-local callee's body for
// `go s.worker()`.
func goBody(pass *analysis.Pass, gs *ast.GoStmt, bodies map[*types.Func]*ast.BlockStmt) *ast.BlockStmt {
	if fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return fl.Body
	}
	var obj types.Object
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.ObjectOf(fun.Sel)
	}
	if fn, ok := obj.(*types.Func); ok {
		return bodies[fn]
	}
	return nil
}

// waitGroupDiscipline checks the worker-pool protocol: the spawner Adds
// to a WaitGroup struct field (or the body defers Done on one), and some
// function in the package Waits on that same field.
func waitGroupDiscipline(pass *analysis.Pass, spawner *ast.BlockStmt, gs *ast.GoStmt, bodies map[*types.Func]*ast.BlockStmt, waitedFields map[types.Object]bool) bool {
	// Fields Added in the spawning function.
	ok := false
	ast.Inspect(spawner, func(n ast.Node) bool {
		if ok {
			return false
		}
		if f, is := waitGroupFieldCall(pass, n, "Add"); is && waitedFields[f] {
			ok = true
		}
		return true
	})
	if ok {
		return true
	}
	// Fields Done'd in the goroutine body.
	body := goBody(pass, gs, bodies)
	if body == nil {
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		if f, is := waitGroupFieldCall(pass, n, "Done"); is && waitedFields[f] {
			ok = true
		}
		return true
	})
	return ok
}

// waitGroupFieldCall matches `x.f.<method>()` where f is a struct field
// of type sync.WaitGroup, returning the field object.
func waitGroupFieldCall(pass *analysis.Pass, n ast.Node, method string) (types.Object, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	obj := pass.TypesInfo.ObjectOf(field.Sel)
	if obj == nil || !isWaitGroup(obj.Type()) {
		return nil, false
	}
	if v, ok := obj.(*types.Var); !ok || !v.IsField() {
		return nil, false
	}
	return obj, true
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
