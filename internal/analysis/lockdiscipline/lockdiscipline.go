// Package lockdiscipline defines an analyzer that reviews what happens
// while a sync.Mutex or sync.RWMutex is held.
//
// The job server's PR 1 review found two races of the same shape: a
// channel operation performed with inconsistent lock coverage (a
// send-on-closed-channel between submit and Shutdown, and a queue-full
// rollback that corrupted the job index). The rule distilled from that
// review: critical sections must stay small and non-blocking. While a
// mutex is held, the analyzer flags
//
//   - channel sends and receives (they can block forever, and their
//     lock coverage must be deliberate);
//   - close() of a channel (the send/close discipline is exactly where
//     the PR 1 race lived — every close under a lock must explain which
//     sends it is ordered against);
//   - blocking calls: time.Sleep, (*sync.WaitGroup).Wait,
//     (*sync.Cond).Wait, (*sync.Once).Do;
//   - HTTP response writes (an http.ResponseWriter receiver or argument)
//     — a slow client must never extend a critical section.
//
// Channel operations inside a select that has a default case are
// non-blocking and exempt. Sites where the pattern is deliberate (the
// server intentionally sends and closes its queue under s.mu so the two
// can never race) carry a //lint:ignore lockdiscipline directive whose
// reason documents the invariant.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"stitchroute/internal/analysis"
)

// Analyzer flags blocking or channel operations inside mutex critical
// sections.
var Analyzer = &analysis.Analyzer{
	Name:    "lockdiscipline",
	Version: 1,
	Doc: "flag channel operations, blocking calls, and HTTP writes while a sync.Mutex/RWMutex is held\n\n" +
		"Critical sections must be small and non-blocking; channel sends/closes under a lock must be deliberate and documented (the PR 1 submit/Shutdown race class).",
	Run: run,
}

// held tracks which lock expressions (rendered as source, e.g. "s.mu")
// are locked at a program point.
type held map[string]token.Pos

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// any returns an arbitrary-but-deterministic held lock name for
// diagnostics (the lexically smallest).
func (h held) any() string {
	name := ""
	for k := range h {
		if name == "" || k < name {
			name = k
		}
	}
	return name
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					walkStmts(pass, fn.Body.List, make(held))
				}
				return false
			case *ast.FuncLit:
				// Reached only for file-scope literals; function
				// literals inside bodies are walked (with a fresh
				// lock state) from walkStmts.
				walkStmts(pass, fn.Body.List, make(held))
				return false
			}
			return true
		})
	}
	return nil, nil
}

// lockMethod classifies a call as a sync mutex operation on a rendered
// lock expression. ok is false for anything else.
func lockMethod(pass *analysis.Pass, call *ast.CallExpr) (lockExpr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	f, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFunc || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch f.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	sig := f.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return "", "", false
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return types.ExprString(sel.X), f.Name(), true
	}
	return "", "", false
}

// walkStmts interprets a statement list sequentially, threading the held
// set through lock/unlock calls and flagging violations while any lock is
// held. Nested control flow is analyzed with a copy of the state
// (conservative: a branch-local unlock does not clear the lock for the
// fall-through path, matching the usual lock-then-early-exit idiom).
func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, h held) {
	for _, stmt := range stmts {
		walkStmt(pass, stmt, h)
	}
}

func walkStmt(pass *analysis.Pass, stmt ast.Stmt, h held) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if lockExpr, method, ok := lockMethod(pass, call); ok {
				switch method {
				case "Lock", "RLock":
					h[lockExpr] = call.Pos()
				case "Unlock", "RUnlock":
					delete(h, lockExpr)
				}
				return
			}
		}
		checkExpr(pass, s.X, h)

	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held to function end;
		// no state change either way. Other deferred calls run
		// outside the critical section.

	case *ast.GoStmt:
		// The goroutine body runs concurrently, not under this
		// lock; analyze it with a fresh state.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			walkStmts(pass, lit.Body.List, make(held))
		}
		for _, arg := range s.Call.Args {
			checkExpr(pass, arg, h)
		}

	case *ast.SendStmt:
		if len(h) > 0 {
			pass.Reportf(s.Pos(),
				"channel send while %s is held: a blocked receiver extends the critical section indefinitely (review send/close ordering, cf. the PR 1 submit race)",
				h.any())
		}
		checkExpr(pass, s.Value, h)

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			checkExpr(pass, e, h)
		}
		for _, e := range s.Lhs {
			checkExpr(pass, e, h)
		}

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						checkExpr(pass, v, h)
					}
				}
			}
		}

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			checkExpr(pass, e, h)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, h)
		}
		checkExpr(pass, s.Cond, h)
		walkStmts(pass, s.Body.List, h.clone())
		if s.Else != nil {
			walkStmt(pass, s.Else, h.clone())
		}

	case *ast.ForStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, h)
		}
		if s.Cond != nil {
			checkExpr(pass, s.Cond, h)
		}
		walkStmts(pass, s.Body.List, h.clone())

	case *ast.RangeStmt:
		checkExpr(pass, s.X, h)
		walkStmts(pass, s.Body.List, h.clone())

	case *ast.SwitchStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, h)
		}
		if s.Tag != nil {
			checkExpr(pass, s.Tag, h)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, h.clone())
			}
		}

	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, h.clone())
			}
		}

	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(h) > 0 {
			pass.Reportf(s.Pos(),
				"blocking select while %s is held: no default case, so the critical section waits on channel peers",
				h.any())
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				walkStmts(pass, cc.Body, h.clone())
			}
		}

	case *ast.BlockStmt:
		walkStmts(pass, s.List, h)

	case *ast.LabeledStmt:
		walkStmt(pass, s.Stmt, h)
	}
}

// checkExpr flags violating operations inside an expression evaluated
// while locks are held. Function literals are analyzed separately with an
// empty lock state (their execution point is unknown).
func checkExpr(pass *analysis.Pass, expr ast.Expr, h held) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			walkStmts(pass, n.Body.List, make(held))
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(h) > 0 {
				pass.Reportf(n.Pos(),
					"channel receive while %s is held: the critical section blocks until a peer sends", h.any())
			}
		case *ast.CallExpr:
			if len(h) > 0 {
				checkCall(pass, n, h)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, h held) {
	// close(ch) under a lock: exactly the send/close discipline the
	// PR 1 race was about.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
			pass.Reportf(call.Pos(),
				"close of channel while %s is held: document which sends this close is ordered against", h.any())
			return
		}
	}

	if f := calleeFunc(pass, call); f != nil && f.Pkg() != nil {
		switch {
		case f.Pkg().Path() == "time" && f.Name() == "Sleep":
			pass.Reportf(call.Pos(), "time.Sleep while %s is held", h.any())
		case f.Pkg().Path() == "sync" && (f.Name() == "Wait" || f.Name() == "Do"):
			recv := "sync"
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
				recv = types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return p.Name() })
			}
			pass.Reportf(call.Pos(), "blocking call (%s).%s while %s is held", recv, f.Name(), h.any())
		}
	}

	// HTTP response writes: receiver or any argument typed
	// http.ResponseWriter means a slow client controls the critical
	// section.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isResponseWriter(pass.TypeOf(sel.X)) {
		pass.Reportf(call.Pos(), "HTTP response write while %s is held: slow clients extend the critical section", h.any())
		return
	}
	for _, arg := range call.Args {
		if isResponseWriter(pass.TypeOf(arg)) {
			pass.Reportf(call.Pos(), "HTTP response write while %s is held: slow clients extend the critical section", h.any())
			return
		}
	}
}

func isResponseWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}
