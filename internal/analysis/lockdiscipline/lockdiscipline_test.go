package lockdiscipline_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/lockdiscipline"
)

func TestAnalyzer(t *testing.T) {
	analyzertest.Run(t, "../testdata", lockdiscipline.Analyzer, "lockdiscipline")
}
