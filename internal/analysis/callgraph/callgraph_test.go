package callgraph

import (
	"go/types"
	"strings"
	"testing"

	"stitchroute/internal/analysis/load"
)

const fixBase = "stitchroute/internal/analysis/callgraph/testdata/mod/"

func buildFixture(t *testing.T) *Graph {
	t.Helper()
	pkgs, err := load.Packages("./testdata/mod/a", "./testdata/mod/b", "./testdata/mod/c")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("fixture %s does not type-check: %v", p.PkgPath, p.TypeErrors[0])
		}
	}
	return Build(pkgs)
}

// TestCrossPackageEdges checks that a call chain spanning three packages
// — including a method on a named type and a captured function value
// called inside a closure — is fully connected.
func TestCrossPackageEdges(t *testing.T) {
	g := buildFixture(t)

	edges := []struct{ from, to string }{
		// Top() invokes the literal it built.
		{fixBase + "a.Top", fixBase + "a.Top$lit0"},
		// The literal calls the captured f := b.Helper.
		{fixBase + "a.Top$lit0", fixBase + "b.Helper"},
		// Cross-package method resolution on a named type.
		{fixBase + "b.Helper", "(*" + fixBase + "c.T).M"},
		{"(*" + fixBase + "c.T).M", fixBase + "c.Leaf"},
		// Generic instantiation resolves to the origin.
		{fixBase + "a.UseGeneric", fixBase + "a.generic"},
		{fixBase + "a.UseGeneric", fixBase + "b.Helper"},
		// Method value m := s.V; m().
		{fixBase + "a.MethodValue", "(" + fixBase + "a.S).V"},
	}
	for _, e := range edges {
		from := g.Nodes[e.from]
		if from == nil {
			t.Fatalf("no node %q;\n%s", e.from, g.DebugString())
		}
		found := false
		for _, c := range from.Callees {
			if c.ID == e.to {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing edge %s -> %s\ngraph:\n%s", e.from, e.to, g.DebugString())
		}
	}

	// go spawned() must be a spawn, not a call edge.
	top := g.Nodes[fixBase+"a.Top"]
	for _, c := range top.Callees {
		if c.ID == fixBase+"a.spawned" {
			t.Errorf("go-launched callee recorded as a call edge")
		}
	}
	if len(top.Spawns) != 1 || top.Spawns[0].Callee.ID != fixBase+"a.spawned" {
		t.Errorf("Top spawns = %v, want one launch of a.spawned", top.Spawns)
	}
}

// TestFuncIDUnifiesImports checks the core identity property: the
// imported types.Func for b.Helper (seen from package a) and the locally
// checked one (in package b) map to the same node.
func TestFuncIDUnifiesImports(t *testing.T) {
	g := buildFixture(t)
	helper := g.Nodes[fixBase+"b.Helper"]
	if helper == nil {
		t.Fatal("no node for b.Helper")
	}
	// Its callers span package a (two-hop through the closure) —
	// resolution used the imported object; the node came from b's check.
	callerIDs := map[string]bool{}
	for _, c := range helper.Callers {
		callerIDs[c.ID] = true
	}
	if !callerIDs[fixBase+"a.Top$lit0"] || !callerIDs[fixBase+"a.UseGeneric"] {
		t.Errorf("b.Helper callers = %v, want a.Top$lit0 and a.UseGeneric", callerIDs)
	}
	if helper.Func == nil || helper.Func.Pkg().Path() != fixBase+"b" {
		t.Errorf("node object should come from the defining package")
	}
}

// TestSCCOrder checks the condensation: Rec/Rec2 share a component, and
// every callee's component precedes its callers' (bottom-up order).
func TestSCCOrder(t *testing.T) {
	g := buildFixture(t)
	rec, rec2 := g.Nodes[fixBase+"b.Rec"], g.Nodes[fixBase+"b.Rec2"]
	if rec == nil || rec2 == nil {
		t.Fatal("missing Rec nodes")
	}
	if rec.SCC != rec2.SCC {
		t.Errorf("Rec (scc %d) and Rec2 (scc %d) must share a component", rec.SCC, rec2.SCC)
	}
	for _, n := range g.Nodes {
		for _, c := range n.Callees {
			if c.SCC > n.SCC {
				t.Errorf("callee %s (scc %d) ordered after caller %s (scc %d)", c.ID, c.SCC, n.ID, n.SCC)
			}
		}
	}
	// SCCs slice is consistent with the indexes.
	for i, scc := range g.SCCs {
		for _, n := range scc {
			if n.SCC != i {
				t.Errorf("node %s records scc %d but lives in component %d", n.ID, n.SCC, i)
			}
		}
	}
}

// TestFuncIDForms pins the ID grammar for the three declaration shapes.
func TestFuncIDForms(t *testing.T) {
	g := buildFixture(t)
	for _, id := range []string{
		fixBase + "c.Leaf",
		"(*" + fixBase + "c.T).M",
		"(" + fixBase + "a.S).V",
		fixBase + "a.Top$lit0",
	} {
		if g.Nodes[id] == nil {
			t.Errorf("expected node %q\ngraph has:\n%s", id, nodeList(g))
		}
	}
	if got := FuncID((*types.Func)(nil)); got != "" {
		t.Errorf("FuncID(nil) = %q, want \"\"", got)
	}
}

// TestDevirtualization checks bounded interface resolution: a call
// through a single-implementation module interface resolves to the
// concrete method, while a two-implementation interface stays
// unresolved.
func TestDevirtualization(t *testing.T) {
	pkgs, err := load.Packages("./testdata/mod/iface")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("fixture %s does not type-check: %v", p.PkgPath, p.TypeErrors[0])
		}
	}
	g := Build(pkgs)
	const base = "stitchroute/internal/analysis/callgraph/testdata/mod/iface"

	drive := g.Nodes[base+".Drive"]
	if drive == nil {
		t.Fatalf("no node for Drive;\n%s", g.DebugString())
	}
	found := false
	for _, c := range drive.Callees {
		if c.ID == "(*"+base+".onlyImpl).Put" {
			found = true
		}
	}
	if !found {
		t.Errorf("Drive must devirtualize to (*iface.onlyImpl).Put\ngraph:\n%s", g.DebugString())
	}

	multi := g.Nodes[base+".DriveMulti"]
	if multi == nil {
		t.Fatalf("no node for DriveMulti")
	}
	for _, c := range multi.Callees {
		if strings.Contains(c.ID, "impl") {
			t.Errorf("DriveMulti resolved a two-implementation interface call to %s", c.ID)
		}
	}
}

func nodeList(g *Graph) string {
	var ids []string
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	var sb strings.Builder
	for _, id := range ids {
		sb.WriteString(id)
		sb.WriteByte('\n')
	}
	return sb.String()
}
