// Package c is the bottom of the fixture call chain.
package c

// Leaf is the terminal callee.
func Leaf() int { return 1 }

// T carries a method so method resolution crosses a package boundary.
type T struct{}

// M calls Leaf, giving a.Top -> b.Helper -> (c.T).M -> c.Leaf.
func (t *T) M() int { return Leaf() }
