// Package a is the top of the fixture call chain and exercises every
// resolution mode: function values, literals, method values, generics,
// and go-spawns.
package a

import "stitchroute/internal/analysis/callgraph/testdata/mod/b"

// Top assigns an imported function to a local, closes over it in a
// literal, spawns a goroutine, and invokes the literal.
func Top() int {
	f := b.Helper
	lit := func() int { return f() }
	go spawned()
	return lit()
}

func spawned() {}

func generic[T any](v T) T { return v }

// UseGeneric calls an instantiated generic plus a cross-package helper.
func UseGeneric() int { return generic(b.Helper()) }

// S carries a value-receiver method for the method-value case.
type S struct{}

// V is taken as a method value in MethodValue.
func (s S) V() int { return 0 }

// MethodValue binds s.V to a local and calls it.
func MethodValue() int {
	var s S
	m := s.V
	return m()
}
