// Package iface exercises bounded devirtualization: Sink is an interface
// with exactly one concrete implementation in the module, so calls
// through it resolve; Multi has two, so calls through it must not.
package iface

// Sink has exactly one implementation (onlyImpl).
type Sink interface {
	Put(v int) int
}

type onlyImpl struct{ total int }

func (s *onlyImpl) Put(v int) int {
	s.total += v
	return s.total
}

// New returns the unique Sink.
func New() Sink { return &onlyImpl{} }

// Drive calls through the interface; only devirtualization can connect
// Drive -> (*iface.onlyImpl).Put.
func Drive(s Sink) int { return s.Put(7) }

// Multi has two implementations; calls through it stay unresolved.
type Multi interface {
	Val() int
}

type implA struct{}

func (implA) Val() int { return 1 }

type implB struct{}

func (implB) Val() int { return 2 }

// DriveMulti must produce no edge to either implementation.
func DriveMulti(m Multi) int { return m.Val() }

// use keeps both Multi implementations referenced.
func use() (Multi, Multi) { return implA{}, implB{} }
