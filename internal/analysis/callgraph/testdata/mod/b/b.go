// Package b is the middle hop of the fixture call chain.
package b

import "stitchroute/internal/analysis/callgraph/testdata/mod/c"

// Helper reaches c through a method on a named type.
func Helper() int {
	var t c.T
	return t.M()
}

// Rec and Rec2 form a two-node cycle (one SCC).
func Rec(n int) int {
	if n == 0 {
		return 0
	}
	return Rec2(n - 1)
}

// Rec2 closes the cycle.
func Rec2(n int) int { return Rec(n) }
