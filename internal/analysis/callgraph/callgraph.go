// Package callgraph builds a whole-module static call graph over the
// first-party packages loaded for a stitchvet run, and condenses it into
// strongly connected components ordered for bottom-up summary
// computation.
//
// The loader (internal/analysis/load) type-checks each package
// separately, resolving imports through gc export data. A consequence is
// that one function is represented by *different* *types.Func objects in
// its defining package and at cross-package call sites. The graph
// therefore keys every function by a canonical string ID —
// "path/to/pkg.Name" for package functions, "(path/to/pkg.Recv).Name" /
// "(*path/to/pkg.Recv).Name" for methods — which is identical however the
// function is reached. FuncID computes it from any *types.Func, local or
// imported, and generic instantiations collapse to their origin.
//
// Resolution is static and deliberately conservative:
//
//   - direct calls to package-level functions (local or imported
//     first-party) and to methods on named non-interface types resolve to
//     their node;
//   - a *ast.FuncLit gets its own node; an immediately-invoked literal,
//     and calls through a local variable the literal was assigned to,
//     resolve to it;
//   - method values (f := x.M; f()) and function values (f := pkgFunc)
//     tracked through local single-name assignments resolve to the
//     underlying function — if a variable is assigned several callables
//     every one becomes an edge;
//   - interface method calls resolve only through bounded
//     devirtualization: when the interface is declared in the module and
//     exactly one named concrete type in the module implements it (T and
//     *T counting as one), a call through the interface resolves to that
//     type's method. Any other interface call — and calls through
//     parameters, struct fields, channels, or maps — does not resolve (no
//     edge). Analyzers must treat an unresolved call as an unknown
//     callee, not as a no-op.
//
// A `go` statement's callee is NOT an edge: the body runs on another
// goroutine, outside the caller's lock set and error scope. The launched
// function is still a node and is analyzed in its own right; Node.Spawns
// records the launch sites. Deferred calls are ordinary edges (they run
// in the caller's goroutine).
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"stitchroute/internal/analysis/load"
)

// Node is one function in the module: a declared function/method or a
// function literal.
type Node struct {
	// ID is the canonical identity (see FuncID). FuncLit nodes use the
	// enclosing declaration's ID plus a "$litN" suffix in source order.
	ID string

	Pkg  *load.Package
	Func *types.Func   // nil for function literals
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions

	// Sites maps every call expression inside this function's body
	// (excluding nested literal bodies — those belong to the literal's
	// node) to its resolved callee node, when resolution succeeded.
	Sites map[*ast.CallExpr]*Node

	// Spawns lists the nodes this function launches with `go`, with the
	// launch position. They are not Callees: they run concurrently.
	Spawns []Spawn

	// Callees and Callers are deduplicated adjacency lists in
	// deterministic (first-encounter, then ID) order.
	Callees []*Node
	Callers []*Node

	// SCC is the index of this node's component in Graph.SCCs.
	SCC int

	calleeSet map[*Node]bool
}

// Spawn records one `go` launch site.
type Spawn struct {
	Callee *Node
	Pos    token.Pos
	// Stmt is the go statement itself, for analyzers that need to
	// inspect the spawn site (argument expressions, enclosing loop).
	Stmt *ast.GoStmt
}

// Body returns the function's body block.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the function's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// String renders a short human-readable name for diagnostics: the ID
// without the module-path prefix noise.
func (n *Node) String() string { return n.ID }

// Graph is the module call graph.
type Graph struct {
	// Nodes, keyed by ID.
	Nodes map[string]*Node

	// SCCs is the condensation in bottom-up (reverse topological)
	// order: every callee's component appears before its callers'.
	// Summary-based analyses iterate SCCs in slice order and have each
	// callee's summary ready when they reach a caller; within one
	// component they iterate to a local fixpoint.
	SCCs [][]*Node

	byLit map[*ast.FuncLit]*Node

	// devirt maps a module-declared interface method's FuncID
	// ("(pkg.I).M") to the unique in-module concrete method implementing
	// it, when exactly one named type in the module satisfies the
	// interface. See buildDevirt.
	devirt map[string]*Node
}

// FuncID returns the canonical module-wide identity of fn, or "" when fn
// has none (nil, builtins). Imported and locally-checked objects for the
// same function produce the same ID; generic instantiations map to their
// origin.
func FuncID(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			ptr = "*"
		}
		named, isNamed := t.(*types.Named)
		if !isNamed {
			return ""
		}
		return "(" + ptr + fn.Pkg().Path() + "." + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// NodeOf resolves fn — from any package's type info — to its node, or
// nil for functions outside the module.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	return g.Nodes[FuncID(fn)]
}

// NodeOfLit returns the node of a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Build constructs the call graph over pkgs.
func Build(pkgs []*load.Package) *Graph {
	g := &Graph{Nodes: make(map[string]*Node), byLit: make(map[*ast.FuncLit]*Node)}

	// Pass 1: create a node per declared function and per function
	// literal. Literal IDs count per enclosing declaration in source
	// order, so they are stable across runs.
	var order []*Node // creation order: deterministic walk order
	var roots []*Node // top-level walk roots (decls and package-level lits)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					fn, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
					id := FuncID(fn)
					if id == "" || g.Nodes[id] != nil {
						continue
					}
					n := &Node{ID: id, Pkg: pkg, Func: fn, Decl: d, Sites: map[*ast.CallExpr]*Node{}, calleeSet: map[*Node]bool{}}
					g.Nodes[id] = n
					order = append(order, n)
					roots = append(roots, n)
					order = append(order, g.addLits(pkg, id, d.Body)...)
				case *ast.GenDecl:
					// Package-level `var f = func(...) {...}`.
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for vi, v := range vs.Values {
							name := "init"
							if vi < len(vs.Names) {
								name = vs.Names[vi].Name
							}
							lits := g.addLits(pkg, pkg.PkgPath+"."+name, v)
							order = append(order, lits...)
							for _, ln := range lits {
								if _, direct := ast.Unparen(v).(*ast.FuncLit); direct && ln.Lit == ast.Unparen(v) {
									roots = append(roots, ln)
								}
							}
						}
					}
				}
			}
		}
	}

	// Pass 1.5: index single-implementation interfaces so pass 2 can
	// devirtualize calls through them.
	g.buildDevirt(pkgs)

	// Pass 2: resolve call sites and build edges. A declaration and its
	// nested literals are walked as one tree with a shared view of
	// which locals hold which callables, so a closure calling a
	// captured function value still resolves.
	for _, n := range roots {
		resolveTree(g, n)
	}

	g.condense(order)
	return g
}

// addLits creates nodes for every function literal under root (which is
// not itself a literal body), numbered in source order under baseID.
func (g *Graph) addLits(pkg *load.Package, baseID string, root ast.Node) []*Node {
	var created []*Node
	i := 0
	ast.Inspect(root, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		id := fmt.Sprintf("%s$lit%d", baseID, i)
		i++
		n := &Node{ID: id, Pkg: pkg, Lit: lit, Sites: map[*ast.CallExpr]*Node{}, calleeSet: map[*Node]bool{}}
		g.Nodes[id] = n
		g.byLit[lit] = n
		created = append(created, n)
		return true // nested literals get their own nodes too
	})
	return created
}

// pathQualifier renders types with full package paths, making signature
// strings comparable across the loader's per-package type-check
// universes (the same declared type is a different *types.Named object in
// its defining package and at import sites, so types.Implements cannot be
// used directly).
func pathQualifier(p *types.Package) string { return p.Path() }

// buildDevirt performs bounded devirtualization indexing: for every
// interface declared in a first-party package, if exactly one named
// concrete type in the module implements it (T and *T counted once,
// matched structurally by path-qualified method signatures), each
// interface method maps to that type's method node. Calls through
// multi-implementation or externally-declared interfaces stay unresolved
// — external implementers are invisible here, so only module-local
// single-implementation interfaces are safe to connect.
func (g *Graph) buildDevirt(pkgs []*load.Package) {
	g.devirt = make(map[string]*Node)

	type methodSet struct {
		named *types.Named
		sigs  map[string]string // method name -> qualified signature
		funcs map[string]*types.Func
	}
	var ifaces, concretes []*methodSet
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names is sorted: deterministic
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			ms := &methodSet{named: named, sigs: map[string]string{}, funcs: map[string]*types.Func{}}
			if it, isIface := named.Underlying().(*types.Interface); isIface {
				if it.NumMethods() == 0 {
					continue
				}
				for i := 0; i < it.NumMethods(); i++ {
					m := it.Method(i)
					ms.sigs[m.Name()] = types.TypeString(m.Type(), pathQualifier)
					ms.funcs[m.Name()] = m
				}
				ifaces = append(ifaces, ms)
				continue
			}
			// The pointer method set is the superset; a value receiver
			// still satisfies through *T.
			mset := types.NewMethodSet(types.NewPointer(named))
			for i := 0; i < mset.Len(); i++ {
				fn, ok := mset.At(i).Obj().(*types.Func)
				if !ok {
					continue
				}
				ms.sigs[fn.Name()] = types.TypeString(fn.Type(), pathQualifier)
				ms.funcs[fn.Name()] = fn
			}
			if len(ms.sigs) > 0 {
				concretes = append(concretes, ms)
			}
		}
	}

	implements := func(c, i *methodSet) bool {
		for name, sig := range i.sigs {
			if c.sigs[name] != sig {
				return false
			}
		}
		return true
	}
	poisoned := make(map[string]bool)
	for _, i := range ifaces {
		var impl *methodSet
		for _, c := range concretes {
			if !implements(c, i) {
				continue
			}
			if impl != nil {
				impl = nil
				break // second implementation: stay conservative
			}
			impl = c
		}
		if impl == nil {
			continue
		}
		for name, im := range i.funcs {
			id := FuncID(im)
			if id == "" || poisoned[id] {
				continue
			}
			node := g.NodeOf(impl.funcs[name])
			if node == nil {
				continue
			}
			// Two interfaces can share a method object through embedding;
			// if their unique implementations disagree, the method is not
			// devirtualizable.
			if prev, seen := g.devirt[id]; seen && prev != node {
				poisoned[id] = true
				delete(g.devirt, id)
				continue
			}
			g.devirt[id] = node
		}
	}
}

// resolve maps a *types.Func to its node, falling back to the
// devirtualized target for single-implementation interface methods.
func (g *Graph) resolve(fn *types.Func) *Node {
	if n := g.NodeOf(fn); n != nil {
		return n
	}
	return g.devirt[FuncID(fn)]
}

// callTargets tracks, per top-level declaration walk, the callable
// values a local variable was observed to hold. It is shared between a
// declaration and its nested literals so captured function values
// resolve inside closures.
type callTargets map[types.Object][]*Node

// resolveTree walks root's body, attributing each call to the innermost
// enclosing function node (root itself or one of its nested literals).
func resolveTree(g *Graph, root *Node) {
	info := root.Pkg.TypesInfo
	targets := callTargets{}

	var walkFrom func(cur *Node, n ast.Node)
	walkFrom = func(cur *Node, n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				if ln := g.byLit[x]; ln != nil && ln != cur {
					walkFrom(ln, x.Body)
					return false
				}
			case *ast.AssignStmt:
				// f := func() {...} / f := x.M / f := pkgFunc: remember
				// every callable the variable is observed to hold.
				if len(x.Lhs) == len(x.Rhs) {
					for i, lhs := range x.Lhs {
						id, ok := ast.Unparen(lhs).(*ast.Ident)
						if !ok {
							continue
						}
						obj := info.ObjectOf(id)
						if obj == nil {
							continue
						}
						if t := valueTarget(g, info, x.Rhs[i]); t != nil {
							targets[obj] = append(targets[obj], t)
						}
					}
				}
			case *ast.GoStmt:
				if callee := resolveCallee(g, info, targets, x.Call); callee != nil {
					cur.Spawns = append(cur.Spawns, Spawn{Callee: callee, Pos: x.Pos(), Stmt: x})
				}
				// Arguments are evaluated in the caller; the call itself
				// is not an edge. A literal launched directly still gets
				// its body walked as its own node.
				if fl, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
					if ln := g.byLit[fl]; ln != nil {
						walkFrom(ln, fl.Body)
					}
				}
				for _, a := range x.Call.Args {
					walkFrom(cur, a)
				}
				return false
			case *ast.CallExpr:
				if callee := resolveCallee(g, info, targets, x); callee != nil {
					cur.Sites[x] = callee
					cur.addCallee(callee)
				}
			}
			return true
		})
	}

	if body := root.Body(); body != nil {
		walkFrom(root, body)
	}
}

func (n *Node) addCallee(c *Node) {
	if n.calleeSet[c] {
		return
	}
	n.calleeSet[c] = true
	n.Callees = append(n.Callees, c)
	c.Callers = append(c.Callers, n)
}

// valueTarget resolves an expression used as a callable *value* (RHS of
// an assignment): a function literal, a method value x.M, or a reference
// to a declared function.
func valueTarget(g *Graph, info *types.Info, e ast.Expr) *Node {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return g.byLit[e]
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return g.NodeOf(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return g.resolve(fn) // method value or qualified function
		}
	}
	return nil
}

// resolveCallee resolves the static callee of one call expression, or
// nil (unknown callee, type conversion, builtin, interface dispatch).
func resolveCallee(g *Graph, info *types.Info, targets callTargets, call *ast.CallExpr) *Node {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return g.byLit[fun] // immediately invoked
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return g.NodeOf(obj)
		case *types.Var:
			// Call through a tracked local holding a single known
			// callable. Multiple candidates still produce edges (via
			// resolveMulti below) but no unique site resolution.
			if ts := targets[obj]; len(ts) == 1 {
				return ts[0]
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			// resolve falls back to the devirtualized target when fn is
			// a single-implementation interface method.
			return g.resolve(fn)
		}
		// Index expressions (generic instantiation f[T](...)) keep the
		// *types.Func in Uses of the underlying ident.
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return g.NodeOf(fn)
			}
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return g.NodeOf(fn)
			}
		}
	}
	return nil
}

// condense runs Tarjan's algorithm over the nodes. Tarjan emits each
// strongly connected component only after every component reachable from
// it has been emitted, so the emission order is exactly the bottom-up
// (callees-first) summary order the analyzers need.
func (g *Graph) condense(order []*Node) {
	// Deterministic root order: creation order is already deterministic,
	// but sort by ID for insensitivity to file ordering.
	roots := append([]*Node(nil), order...)
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })

	index := make(map[*Node]int, len(roots))
	low := make(map[*Node]int, len(roots))
	onStack := make(map[*Node]bool, len(roots))
	var stack []*Node
	next := 0

	var strongconnect func(v *Node)
	strongconnect = func(v *Node) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range v.Callees {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				w.SCC = len(g.SCCs)
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i].ID < scc[j].ID })
			g.SCCs = append(g.SCCs, scc)
		}
	}
	for _, v := range roots {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
}

// DebugString renders the graph one caller per line with sorted callees,
// for tests:
//
//	pkg.A -> pkg.B (pkg2.C)
//
// Spawned (go-launched) nodes appear in parentheses.
func (g *Graph) DebugString() string {
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var sb strings.Builder
	for _, id := range ids {
		n := g.Nodes[id]
		if len(n.Callees) == 0 && len(n.Spawns) == 0 {
			continue
		}
		sb.WriteString(id)
		sb.WriteString(" ->")
		callees := make([]string, 0, len(n.Callees))
		for _, c := range n.Callees {
			callees = append(callees, c.ID)
		}
		sort.Strings(callees)
		for _, c := range callees {
			sb.WriteByte(' ')
			sb.WriteString(c)
		}
		if len(n.Spawns) > 0 {
			spawned := make([]string, 0, len(n.Spawns))
			for _, s := range n.Spawns {
				spawned = append(spawned, s.Callee.ID)
			}
			sort.Strings(spawned)
			sb.WriteString(" (")
			sb.WriteString(strings.Join(spawned, " "))
			sb.WriteString(")")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
