package callgraph

import (
	"stitchroute/internal/analysis/cfg"
	"stitchroute/internal/analysis/dataflow"
	"stitchroute/internal/analysis/load"
)

// ModuleTaintSummaries computes taint summaries for every declared
// function in the module, iterating the SCC condensation bottom-up so
// each function is summarized with all of its callees' summaries —
// including cross-package ones — already final. Within a recursive
// component the member summaries are iterated to a local fixpoint
// (Kind/FromParams only grow, so convergence is bounded by the
// component size).
//
// confFor builds the package-specific taint configuration (type info,
// source classifiers); its Summaries field is overwritten with the
// shared module-wide set.
func ModuleTaintSummaries(g *Graph, confFor func(*load.Package) dataflow.TaintConfig) *dataflow.Summaries {
	sums := dataflow.NewModuleSummaries(FuncID)
	confs := map[*load.Package]dataflow.TaintConfig{}
	conf := func(pkg *load.Package) dataflow.TaintConfig {
		c, ok := confs[pkg]
		if !ok {
			c = confFor(pkg)
			c.Summaries = sums
			confs[pkg] = c
		}
		return c
	}

	// Devirtualized interface methods alias their unique implementation:
	// a call site looks the summary up under the interface method's ID
	// ("(pkg.I).M"), so the implementation's summary is published under
	// that ID too. The SCC order already accounts for the devirtualized
	// edges, so aliases are final before any caller consults them.
	aliases := map[string][]string{}
	for ifaceID, node := range g.devirt {
		aliases[node.ID] = append(aliases[node.ID], ifaceID)
	}

	summarize := func(n *Node) bool {
		sum := dataflow.Summarize(n.Decl, cfg.New(n.Decl.Body), conf(n.Pkg))
		old := sums.GetID(n.ID)
		if old != nil && *old == *sum {
			return false
		}
		sums.SetID(n.ID, sum)
		for _, id := range aliases[n.ID] {
			sums.SetID(id, sum)
		}
		return true
	}

	for _, scc := range g.SCCs {
		// Non-recursive singleton: one pass suffices, every callee is
		// in an earlier component.
		if len(scc) == 1 && !selfRecursive(scc[0]) {
			if scc[0].Decl != nil && scc[0].Decl.Body != nil {
				summarize(scc[0])
			}
			continue
		}
		for pass := 0; pass <= len(scc); pass++ {
			changed := false
			for _, n := range scc {
				if n.Decl == nil || n.Decl.Body == nil {
					continue
				}
				if summarize(n) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return sums
}

func selfRecursive(n *Node) bool {
	for _, c := range n.Callees {
		if c == n {
			return true
		}
	}
	return false
}
