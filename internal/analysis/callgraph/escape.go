package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EscapeSummary describes, for one function, how its parameters relate
// to shared memory — the facts the concurrency-soundness analyzers
// (confine, racecheck) need about callees.
//
// Parameter indexing: for methods the receiver is index 0 and declared
// parameters follow; for plain functions and literals parameters start
// at 0.
type EscapeSummary struct {
	// Escaping[i] reports that parameter i's reference may reach a
	// shared sink: a package-level variable, a field of another object,
	// a channel send, or a goroutine spawned by the function (directly
	// or through a resolved callee). Flowing into the function's own
	// return value is deliberately NOT an escape — the value stays in
	// the calling goroutine; ToReturn tracks that separately.
	Escaping []bool
	// Mutated[i] reports that the memory parameter i points to may be
	// written through it (field store, element store, pointer store, or
	// a resolved callee doing the same).
	Mutated []bool
	// ToReturn[i] reports that parameter i's reference may alias the
	// function's return value — returned directly, or stored into a
	// local that is returned.
	ToReturn []bool
	// Fresh reports that every return statement yields a freshly
	// allocated value (composite literal, new, make, or a call to
	// another Fresh function): the result's allocation identity is new
	// on every call. Interior fields may still reference arguments —
	// ToReturn tracks that separately.
	Fresh bool
}

// EscapeSummaries computes an EscapeSummary for every node with a body,
// bottom-up over the SCC condensation so callee facts are final (or
// fixpointed within a recursive component) before callers consume them.
func EscapeSummaries(g *Graph) map[string]*EscapeSummary {
	sums := make(map[string]*EscapeSummary)
	for _, scc := range g.SCCs {
		for pass := 0; pass <= len(scc); pass++ {
			changed := false
			for _, n := range scc {
				if n.Body() == nil {
					continue
				}
				s := summarizeEscape(n, sums)
				if !equalEscape(sums[n.ID], s) {
					sums[n.ID] = s
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	// Devirtualized interface methods alias their unique implementation
	// (mirrors ModuleTaintSummaries): most call sites resolve through
	// Sites, but callers indexing by the interface method's ID get the
	// implementation's facts too.
	for ifaceID, node := range g.devirt {
		if s, ok := sums[node.ID]; ok {
			sums[ifaceID] = s
		}
	}
	return sums
}

func equalEscape(a, b *EscapeSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Fresh != b.Fresh {
		return false
	}
	eq := func(x, y []bool) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.Escaping, b.Escaping) && eq(a.Mutated, b.Mutated) && eq(a.ToReturn, b.ToReturn)
}

// ParamObjects returns the node's parameter objects in summary index
// order (receiver first for methods). Nil entries mark unnamed or blank
// parameters.
func ParamObjects(n *Node) []*types.Var {
	info := n.Pkg.TypesInfo
	var out []*types.Var
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range f.Names {
				v, _ := info.Defs[name].(*types.Var)
				out = append(out, v)
			}
		}
	}
	if n.Decl != nil {
		addFields(n.Decl.Recv)
		addFields(n.Decl.Type.Params)
	} else if n.Lit != nil {
		addFields(n.Lit.Type.Params)
	}
	return out
}

// IsRefCarrying reports whether values of type t can carry a reference
// to mutable memory: handing such a value to another goroutine aliases
// state. Strings are immutable and basic types are copies, so both are
// value-like; structs and arrays inherit from their elements.
func IsRefCarrying(t types.Type) bool {
	return isRefCarrying(t, 0)
}

func isRefCarrying(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return true // unknown: assume the worst
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if isRefCarrying(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return isRefCarrying(u.Elem(), depth+1)
	}
	return true
}

// RefTracker resolves by-reference uses of a tracked set of variables
// inside one function, consulting callee escape summaries so that a
// call's result only aliases the arguments the callee actually threads
// to its return value.
type RefTracker struct {
	Node *Node
	Sums map[string]*EscapeSummary
	// Tracked maps each watched variable (and any whole-value alias of
	// it) to a caller-chosen index.
	Tracked map[types.Object]int
}

func (rt *RefTracker) info() *types.Info { return rt.Node.Pkg.TypesInfo }

// IndexOf resolves e to a tracked variable's index when e denotes the
// variable itself (possibly &v, *v, or parenthesized).
func (rt *RefTracker) IndexOf(e ast.Expr) (int, bool) { return rt.indexOf(e) }

func (rt *RefTracker) indexOf(e ast.Expr) (int, bool) {
	if e == nil {
		return 0, false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := rt.info().ObjectOf(e); obj != nil {
			if i, ok := rt.Tracked[obj]; ok {
				return i, true
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return rt.indexOf(e.X)
		}
	case *ast.StarExpr:
		return rt.indexOf(e.X)
	}
	return 0, false
}

// BaseIdent returns the leftmost identifier of a chain of selections,
// indexes, dereferences, and slicings, or nil.
func BaseIdent(e ast.Expr) *ast.Ident { return baseIdent(e) }

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// baseIdentExpr adapts baseIdent to an expression suitable for indexOf.
func baseIdentExpr(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	if id := baseIdent(e); id != nil {
		return id
	}
	return nil
}

// Uses returns the indexes of tracked variables whose references can
// flow out through expr's value. A use is by reference unless
// selection/indexing reaches a value-like type first: p.count is an int
// copy, p.buf still aliases the arena.
func (rt *RefTracker) Uses(expr ast.Expr) []int {
	var out []int
	seen := map[int]bool{}
	add := func(i int) {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	addIfRef := func(e ast.Expr, i int) {
		if t := rt.info().TypeOf(e); t == nil || IsRefCarrying(t) {
			add(i)
		}
	}
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		e = ast.Unparen(e)
		if e == nil {
			return
		}
		if i, ok := rt.indexOf(e); ok {
			addIfRef(e, i)
			return
		}
		switch x := e.(type) {
		case *ast.FuncLit:
			return // its own node; captures are handled at spawn sites
		case *ast.SelectorExpr:
			if i, ok := rt.indexOf(baseIdentExpr(x)); ok {
				addIfRef(x, i)
				return
			}
			visit(x.X)
		case *ast.IndexExpr:
			if i, ok := rt.indexOf(baseIdentExpr(x.X)); ok {
				addIfRef(x, i)
			} else {
				visit(x.X)
			}
			visit(x.Index)
		case *ast.SliceExpr:
			visit(x.X)
		case *ast.CallExpr:
			// A value-typed result is a copy regardless of arguments.
			if t := rt.info().TypeOf(x); t != nil && !IsRefCarrying(t) {
				return
			}
			if callee := rt.Node.Sites[x]; callee != nil {
				if sum := rt.Sums[callee.ID]; sum != nil {
					// The callee says exactly which arguments can alias
					// its result.
					for j, a := range EffectiveArgs(x, callee) {
						if a != nil && j < len(sum.ToReturn) && sum.ToReturn[j] {
							visit(a)
						}
					}
					return
				}
			}
			// Unknown callee (builtins like append included): assume
			// the result may alias any reference argument.
			for _, a := range x.Args {
				visit(a)
			}
			visit(x.Fun)
		case *ast.UnaryExpr:
			visit(x.X)
		case *ast.StarExpr:
			visit(x.X)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					visit(kv.Value)
					continue
				}
				visit(el)
			}
		case *ast.KeyValueExpr:
			visit(x.Value)
		case *ast.BinaryExpr:
			visit(x.X)
			visit(x.Y)
		case *ast.TypeAssertExpr:
			visit(x.X)
		}
	}
	visit(expr)
	return out
}

// EffectiveArgs lays out a call's arguments in summary index order: for
// method calls the receiver expression occupies index 0. Nil entries
// mark slots with no recoverable expression.
func EffectiveArgs(call *ast.CallExpr, callee *Node) []ast.Expr {
	var out []ast.Expr
	if callee != nil && callee.Decl != nil && callee.Decl.Recv != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = append(out, sel.X)
		} else {
			out = append(out, nil)
		}
	}
	for _, a := range call.Args {
		out = append(out, a)
	}
	return out
}

// FreshExpr reports whether e evaluates to a freshly allocated value or
// a pure copy: composite literals, new, make, calls to functions whose
// summary is Fresh, and value-typed expressions.
func (rt *RefTracker) FreshExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if e == nil {
		return false
	}
	info := rt.info()
	switch x := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		if x.Name == "nil" || x.Name == "true" || x.Name == "false" {
			return true
		}
		// A local whose every assignment was fresh would need flow
		// tracking; only value-like locals are accepted.
		if t := info.TypeOf(x); t != nil && !IsRefCarrying(t) {
			return true
		}
		return false
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				return true
			}
		}
		return false
	case *ast.CompositeLit:
		// Freshness is about allocation identity, not deep ownership: a
		// composite literal is a new object even when some field holds
		// a shared reference (that aliasing is what Uses/ToReturn
		// track).
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "new", "make":
				if obj := info.Uses[id]; obj == nil || obj.Parent() == types.Universe {
					return true
				}
			}
		}
		if callee := rt.Node.Sites[x]; callee != nil {
			if sum := rt.Sums[callee.ID]; sum != nil && sum.Fresh {
				return true
			}
		}
		if t := info.TypeOf(x); t != nil && !IsRefCarrying(t) {
			return true // value-typed result: a copy either way
		}
		return false
	case *ast.BinaryExpr:
		return true // arithmetic/comparison: value result
	}
	if t := info.TypeOf(e); t != nil && !IsRefCarrying(t) {
		return true
	}
	return false
}

// escWalker accumulates one function's summary.
type escWalker struct {
	rt  *RefTracker
	out *EscapeSummary
	// carriers maps a local variable to the set of parameter indexes
	// whose references were stored into it (att.sc = sc): returning the
	// local then returns those parameters too.
	carriers map[types.Object]map[int]bool
}

func summarizeEscape(n *Node, sums map[string]*EscapeSummary) *EscapeSummary {
	params := ParamObjects(n)
	rt := &RefTracker{Node: n, Sums: sums, Tracked: make(map[types.Object]int, len(params))}
	for i, p := range params {
		if p != nil && IsRefCarrying(p.Type()) {
			rt.Tracked[p] = i
		}
	}
	w := &escWalker{
		rt: rt,
		out: &EscapeSummary{
			Escaping: make([]bool, len(params)),
			Mutated:  make([]bool, len(params)),
			ToReturn: make([]bool, len(params)),
		},
		carriers: map[types.Object]map[int]bool{},
	}

	// Two passes: the first discovers whole-value aliases (x := p), the
	// second classifies uses with the alias set complete. One alias
	// round covers the x := p; sink(x) idiom the analyzers care about.
	w.collectAliases(n.Body())
	w.classify(n.Body())
	w.out.Fresh = w.freshReturns(n)
	return w.out
}

func (w *escWalker) info() *types.Info { return w.rt.info() }

func (w *escWalker) collectAliases(body *ast.BlockStmt) {
	ast.Inspect(body, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			pi, isParam := w.rt.indexOf(as.Rhs[i])
			if !isParam {
				continue
			}
			if obj := w.info().ObjectOf(id); obj != nil {
				if _, exists := w.rt.Tracked[obj]; !exists {
					w.rt.Tracked[obj] = pi
				}
			}
		}
		return true
	})
}

func (w *escWalker) markEscape(e ast.Expr) {
	for _, i := range w.rt.Uses(e) {
		w.out.Escaping[i] = true
	}
}

func (w *escWalker) classify(body *ast.BlockStmt) {
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.SendStmt:
			w.markEscape(nd.Value)
		case *ast.GoStmt:
			// Everything a spawned call can see escapes this goroutine:
			// arguments, and captures of a directly spawned literal.
			for _, a := range nd.Call.Args {
				w.markEscape(a)
			}
			if lit, ok := ast.Unparen(nd.Call.Fun).(*ast.FuncLit); ok {
				w.markCaptured(lit)
			} else {
				w.markEscape(nd.Call.Fun)
			}
		case *ast.AssignStmt:
			w.classifyAssign(nd)
		case *ast.IncDecStmt:
			if pi, ok := w.rt.indexOf(baseOfStore(nd.X)); ok {
				w.out.Mutated[pi] = true
			}
		case *ast.ReturnStmt:
			for _, r := range nd.Results {
				for _, i := range w.rt.Uses(r) {
					w.out.ToReturn[i] = true
				}
				// A returned local that carries stored params returns
				// them too.
				if id := baseIdent(r); id != nil {
					if set, ok := w.carriers[w.info().ObjectOf(id)]; ok {
						for i := range set {
							w.out.ToReturn[i] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			w.classifyCall(nd)
		}
		return true
	})
}

// BaseOfStore returns the base expression whose memory an lvalue writes
// through, or nil for a plain identifier (which rebinds, not mutates).
func BaseOfStore(lhs ast.Expr) ast.Expr { return baseOfStore(lhs) }

func baseOfStore(lhs ast.Expr) ast.Expr {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return baseIdentExpr(l.(ast.Expr))
	}
	return nil
}

// markCaptured marks every tracked variable the literal captures as
// escaping (used for spawned literals only — a literal running in the
// same goroutine does not publish its captures).
func (w *escWalker) markCaptured(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := w.info().ObjectOf(id); obj != nil {
			if i, tracked := w.rt.Tracked[obj]; tracked {
				w.out.Escaping[i] = true
			}
		}
		return true
	})
}

func (w *escWalker) classifyAssign(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		lhs = ast.Unparen(lhs)

		// Mutation: a store through a tracked variable's memory (plain
		// rebinding of the identifier is not).
		if pi, ok := w.rt.indexOf(baseOfStore(lhs)); ok {
			w.out.Mutated[pi] = true
		}

		if rhs == nil {
			continue
		}
		// Escape: the RHS reference lands somewhere that outlives the
		// frame — a global, or a field/element of memory that is not
		// the tracked variable's own.
		switch l := lhs.(type) {
		case *ast.Ident:
			if obj := w.info().ObjectOf(l); obj != nil {
				if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					w.markEscape(rhs) // package-level variable
				}
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			basePi, baseIsTracked := w.rt.indexOf(baseIdentExpr(l.(ast.Expr)))
			for _, ri := range w.rt.Uses(rhs) {
				if baseIsTracked && basePi == ri {
					continue // p.f = p.buf: self-store, still confined
				}
				base := baseIdent(l.(ast.Expr))
				if base == nil {
					w.out.Escaping[ri] = true
					continue
				}
				obj := w.info().ObjectOf(base)
				v, isVar := obj.(*types.Var)
				if !isVar {
					w.out.Escaping[ri] = true
					continue
				}
				switch {
				case v.Pkg() != nil && v.Parent() == v.Pkg().Scope():
					w.out.Escaping[ri] = true // global's field/element
				case baseIsTracked, v.IsField():
					// Another parameter's memory, or a bare field write
					// (method body, implicit receiver): shared from the
					// caller's perspective.
					w.out.Escaping[ri] = true
				default:
					// A store into a purely local structure stays
					// in-frame — unless the local is later returned.
					set := w.carriers[v]
					if set == nil {
						set = map[int]bool{}
						w.carriers[v] = set
					}
					set[ri] = true
				}
			}
		}
	}
}

func (w *escWalker) classifyCall(call *ast.CallExpr) {
	// Resolve the callee through the graph; unresolved callees are
	// treated as neither escaping nor mutating (documented trade-off:
	// the analyzers prefer silence to a flood of unknown-callee
	// reports).
	callee := w.rt.Node.Sites[call]
	if callee == nil {
		return
	}
	sum := w.rt.Sums[callee.ID]
	if sum == nil {
		return
	}
	for j, a := range EffectiveArgs(call, callee) {
		if a == nil {
			continue
		}
		uses := w.rt.Uses(a)
		if len(uses) == 0 {
			continue
		}
		if j < len(sum.Escaping) && sum.Escaping[j] {
			for _, u := range uses {
				w.out.Escaping[u] = true
			}
		}
		if j < len(sum.Mutated) && sum.Mutated[j] {
			for _, u := range uses {
				w.out.Mutated[u] = true
			}
		}
	}
}

// freshReturns reports whether every return yields freshly allocated
// values.
func (w *escWalker) freshReturns(n *Node) bool {
	var results *ast.FieldList
	if n.Decl != nil {
		results = n.Decl.Type.Results
	} else if n.Lit != nil {
		results = n.Lit.Type.Results
	}
	if results == nil || len(results.List) == 0 {
		return false
	}
	fresh := true
	sawReturn := false
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		if !fresh {
			return false
		}
		if _, isLit := nd.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := nd.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		sawReturn = true
		if len(ret.Results) == 0 {
			fresh = false // named results would need flow tracking
			return true
		}
		for _, r := range ret.Results {
			if !w.rt.FreshExpr(r) {
				fresh = false
			}
		}
		return true
	})
	return fresh && sawReturn
}
