package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Kind classifies what is nondeterministic about a tainted value. The
// distinction matters because the launder operations differ: sorting a
// slice restores determinism when only the *order* of its elements was
// scheduling-dependent, but no amount of sorting fixes a wall-clock or
// random *value*.
type Kind uint8

const (
	// Value taint: the value itself differs between runs (time.Now,
	// math/rand with a nondeterministic seed, pointer formatting).
	Value Kind = 1 << iota
	// Order taint: the value is drawn from a set that is stable between
	// runs, but the order of drawing is not (map iteration, select
	// arrival). Sorting, or accumulating commutatively into an integer,
	// launders it.
	Order
)

// Taint is the per-object fact: which kinds of nondeterminism reach the
// object, where the original source is, and — in summary mode — which
// parameters the taint is conditional on.
type Taint struct {
	Kind Kind
	Why  string    // human description of the source, e.g. "time.Now()"
	Pos  token.Pos // position of the source
	// Params is a bitmask of function parameters whose taint flows here;
	// used while computing call summaries. Zero for absolute taints.
	Params uint64
}

// Zero reports whether the taint is absent.
func (t Taint) Zero() bool { return t.Kind == 0 && t.Params == 0 }

// Merge unions two taints; analyzers use it to combine taint from
// several subexpressions of one sink.
func (t Taint) Merge(o Taint) Taint { return t.merge(o) }

// merge unions two taints, keeping the earliest source position so
// diagnostics are deterministic.
func (t Taint) merge(o Taint) Taint {
	if t.Zero() {
		return o
	}
	if o.Zero() {
		return t
	}
	out := t
	out.Kind |= o.Kind
	out.Params |= o.Params
	if t.Why == "" || (o.Why != "" && o.Pos < t.Pos) {
		out.Why, out.Pos = o.Why, o.Pos
	}
	return out
}

// Fact is the dataflow fact: the set of tainted objects. Facts are
// treated as immutable by the solver; transfer copies on write.
type Fact map[types.Object]Taint

// TaintConfig parameterizes the reusable taint transfer function.
type TaintConfig struct {
	Info *types.Info

	// SourceCall classifies a call as an absolute taint source (e.g.
	// time.Now, math/rand's global functions). Optional.
	SourceCall func(call *ast.CallExpr) (Taint, bool)

	// Summaries resolves intra-package calls; nil disables.
	Summaries *Summaries

	// SelectRecv marks comm statements of selects with two or more
	// communication cases: their received values are order-tainted.
	// Optional.
	SelectRecv map[ast.Stmt]bool

	// ExemptWrite, when non-nil, exempts a field/index/pointer write
	// from weak-updating its root object. Clients use it for sanctioned
	// sinks (telemetry fields holding wall-clock data): without the
	// exemption one Times-field write would poison the whole result
	// struct and every value derived from it. Optional.
	ExemptWrite func(lhs ast.Expr) bool
}

// Lattice plumbing for Problem[Fact].

// BottomFact returns the least element.
func BottomFact() Fact { return nil }

// JoinFacts unions two facts without mutating either.
func JoinFacts(a, b Fact) Fact {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(Fact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = out[k].merge(v)
	}
	return out
}

// EqualFacts reports semantic equality.
func EqualFacts(a, b Fact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (c *TaintConfig) set(f Fact, obj types.Object, t Taint) Fact {
	if obj == nil {
		return f
	}
	if t.Zero() {
		if _, ok := f[obj]; !ok {
			return f
		}
		out := make(Fact, len(f))
		for k, v := range f {
			if k != obj {
				out[k] = v
			}
		}
		return out
	}
	if f[obj] == t {
		return f
	}
	out := make(Fact, len(f)+1)
	for k, v := range f {
		out[k] = v
	}
	out[obj] = t
	return out
}

// weaken merges t into obj's taint without ever clearing it (weak update
// for writes through fields, indexes, and pointers).
func (c *TaintConfig) weaken(f Fact, obj types.Object, t Taint) Fact {
	if obj == nil || t.Zero() {
		return f
	}
	return c.set(f, obj, f[obj].merge(t))
}

// RootObject resolves the base object a chain of selectors, indexes,
// slices, derefs, and parens hangs off: for `r.sc.rev[i]` it returns r's
// object. Returns nil for expressions not rooted in an identifier.
func (c *TaintConfig) RootObject(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return c.Info.ObjectOf(x)
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			// A qualified identifier (pkg.Var) roots at the var itself.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := c.Info.ObjectOf(id).(*types.PkgName); isPkg {
					return c.Info.ObjectOf(x.Sel)
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			// The root of sc.heap.pop() style chains is the receiver.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				e = sel.X
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

// EvalExpr computes the taint of an expression under fact f.
func (c *TaintConfig) EvalExpr(f Fact, e ast.Expr) Taint {
	switch e := e.(type) {
	case nil:
		return Taint{}
	case *ast.Ident:
		obj := c.Info.ObjectOf(e)
		if obj == nil {
			return Taint{}
		}
		// A function referenced as a value carries its summary's Always
		// taint: binding m := helper and calling m() later must not lose
		// the source inside helper. Parameter-conditional taint cannot
		// survive the indirection (arguments are unknown at bind time),
		// so only Always flows.
		if fn, ok := obj.(*types.Func); ok {
			if sum := c.Summaries.Lookup(fn); sum != nil {
				return sum.Always
			}
		}
		return f[obj]
	case *ast.BasicLit, *ast.FuncLit:
		return Taint{}
	case *ast.ParenExpr:
		return c.EvalExpr(f, e.X)
	case *ast.StarExpr:
		return c.EvalExpr(f, e.X)
	case *ast.TypeAssertExpr:
		return c.EvalExpr(f, e.X)
	case *ast.UnaryExpr:
		return c.EvalExpr(f, e.X)
	case *ast.BinaryExpr:
		return c.EvalExpr(f, e.X).merge(c.EvalExpr(f, e.Y))
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := c.Info.ObjectOf(id).(*types.PkgName); isPkg {
				obj := c.Info.ObjectOf(e.Sel)
				if obj == nil {
					return Taint{}
				}
				return f[obj]
			}
		}
		// A method value (m := c.Stamp) closes over the receiver and the
		// method body: it carries the receiver's taint plus the method
		// summary's Always taint.
		if fn, ok := c.Info.ObjectOf(e.Sel).(*types.Func); ok {
			if sum := c.Summaries.Lookup(fn); sum != nil {
				return sum.Always.merge(c.EvalExpr(f, e.X))
			}
		}
		return c.EvalExpr(f, e.X)
	case *ast.IndexExpr:
		return c.EvalExpr(f, e.X).merge(c.EvalExpr(f, e.Index))
	case *ast.SliceExpr:
		t := c.EvalExpr(f, e.X)
		t = t.merge(c.EvalExpr(f, e.Low))
		t = t.merge(c.EvalExpr(f, e.High))
		return t.merge(c.EvalExpr(f, e.Max))
	case *ast.CompositeLit:
		var t Taint
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.merge(c.EvalExpr(f, kv.Value))
				continue
			}
			t = t.merge(c.EvalExpr(f, el))
		}
		return t
	case *ast.CallExpr:
		return c.evalCall(f, e)
	}
	return Taint{}
}

func (c *TaintConfig) evalCall(f Fact, call *ast.CallExpr) Taint {
	// Type conversions propagate the operand's taint.
	if tv, ok := c.Info.Types[call.Fun]; ok && tv.IsType() {
		var t Taint
		for _, a := range call.Args {
			t = t.merge(c.EvalExpr(f, a))
		}
		return t
	}
	if c.SourceCall != nil {
		if t, ok := c.SourceCall(call); ok {
			return t
		}
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap", "make", "new", "clear", "delete", "close", "panic", "print", "println", "recover":
				// Deterministic (len of a map is stable) or valueless.
				return Taint{}
			default: // append, copy, min, max, complex, real, imag, abs
				var t Taint
				for _, a := range call.Args {
					t = t.merge(c.EvalExpr(f, a))
				}
				return t
			}
		}
	}
	// Function summary: intra-package by object identity, module-wide
	// by canonical ID.
	if c.Summaries != nil {
		if fn := c.calleeFunc(call); fn != nil {
			if sum := c.Summaries.Lookup(fn); sum != nil {
				t := sum.Always
				for i, a := range call.Args {
					if i < 64 && sum.FromParams&(1<<uint(i)) != 0 {
						t = t.merge(c.EvalExpr(f, a))
					}
				}
				return t
			}
		}
	}
	// Unknown callee: conservatively propagate argument and receiver
	// taint through the call (math.Abs(t) is as tainted as t). Calling
	// through a function-valued variable also applies the taint the
	// binding carried — the Always taint of a method value or function
	// reference assigned earlier.
	var t Taint
	for _, a := range call.Args {
		t = t.merge(c.EvalExpr(f, a))
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if _, isPkg := c.pkgName(fun.X); !isPkg {
			t = t.merge(c.EvalExpr(f, fun.X))
		}
	case *ast.Ident:
		if _, isVar := c.Info.ObjectOf(fun).(*types.Var); isVar {
			t = t.merge(c.EvalExpr(f, fun))
		}
	}
	return t
}

func (c *TaintConfig) pkgName(e ast.Expr) (*types.PkgName, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := c.Info.ObjectOf(id).(*types.PkgName)
	return pn, ok
}

// calleeFunc resolves the called *types.Func, or nil. Explicit generic
// instantiation (f[T](...) / f[T1, T2](...)) is unwrapped to the generic
// function: go/types records the use against the origin object, which is
// also what summaries are keyed on, so one summary covers every
// instantiation.
func (c *TaintConfig) calleeFunc(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(x.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(x.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := c.Info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.Info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// Transfer is the taint transfer function for one CFG node.
func (c *TaintConfig) Transfer(n ast.Node, in Fact) Fact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		out := c.assign(n, in)
		if c.SelectRecv != nil && c.SelectRecv[ast.Stmt(n)] {
			// Received in a select with several ready cases: the value
			// observed first depends on scheduling.
			t := Taint{Kind: Order, Why: "select arrival order", Pos: n.Pos()}
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					out = c.weaken(out, c.Info.ObjectOf(id), t)
				}
			}
		}
		return out
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return in
		}
		out := in
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := c.Info.ObjectOf(name)
				var t Taint
				switch {
				case len(vs.Values) == len(vs.Names):
					t = c.EvalExpr(out, vs.Values[i])
				case len(vs.Values) == 1:
					t = c.EvalExpr(out, vs.Values[0])
				}
				out = c.set(out, obj, t)
			}
		}
		return out
	case *ast.RangeStmt:
		return c.rangeTransfer(n, in)
	case *ast.ExprStmt:
		// Sorting launders order taint (the set of elements was stable
		// all along; only the draw order wasn't).
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if target := sortedArg(c.Info, call); target != nil {
				obj := c.RootObject(target)
				if obj != nil {
					if t, ok := in[obj]; ok && t.Kind&Order != 0 {
						t.Kind &^= Order
						if t.Zero() {
							return c.set(in, obj, Taint{})
						}
						return c.set(in, obj, t)
					}
				}
			}
		}
		return in
	}
	return in
}

func (c *TaintConfig) assign(n *ast.AssignStmt, in Fact) Fact {
	// Evaluate RHS taints against the pre-state.
	rhs := make([]Taint, len(n.Lhs))
	switch {
	case len(n.Rhs) == len(n.Lhs):
		for i, e := range n.Rhs {
			rhs[i] = c.EvalExpr(in, e)
		}
	case len(n.Rhs) == 1:
		// x, y := f() / v, ok := m[k]: one source taints every target.
		t := c.EvalExpr(in, n.Rhs[0])
		for i := range rhs {
			rhs[i] = t
		}
	}

	out := in
	for i, lhs := range n.Lhs {
		t := rhs[i]
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			// Augmented assignment: x op= v keeps x's taint and may add
			// v's. Commutative accumulation into an integer launders
			// order taint: every iteration order yields the same sum.
			if commutativeOp(n.Tok) && isInteger(c.Info.TypeOf(lhs)) {
				t.Kind &^= Order
				if t.Kind == 0 && t.Params == 0 {
					t = Taint{}
				}
			}
			t = c.EvalExpr(in, lhs).merge(t)
		}
		switch target := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if target.Name == "_" {
				continue
			}
			out = c.set(out, c.Info.ObjectOf(target), t)
		default:
			// Write through a field, index, or pointer: weak update on
			// the root object — the container now carries the taint.
			if c.ExemptWrite != nil && c.ExemptWrite(lhs) {
				continue
			}
			out = c.weaken(out, c.RootObject(lhs), t)
		}
	}
	return out
}

func (c *TaintConfig) rangeTransfer(n *ast.RangeStmt, in Fact) Fact {
	xt := c.EvalExpr(in, n.X)
	var t Taint
	if typ := c.Info.TypeOf(n.X); typ != nil {
		if _, isMap := typ.Underlying().(*types.Map); isMap {
			t = Taint{Kind: Order, Why: "map iteration order", Pos: n.Pos()}
		}
	}
	t = t.merge(xt)
	out := in
	for _, e := range []ast.Expr{n.Key, n.Value} {
		if e == nil {
			continue
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			out = c.set(out, c.Info.ObjectOf(id), t)
		} else {
			out = c.weaken(out, c.RootObject(e), t)
		}
	}
	return out
}

// commutativeOp reports whether x op= v accumulates commutatively (and
// associatively) over integers.
func commutativeOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// IsFloat reports whether t is a floating-point type (float accumulation
// is order-sensitive in the last ulp, so order taint survives it).
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sortedArg returns the expression a sort call orders, or nil: the first
// argument of sort.X(...) / slices.Sort*(...), or the receiver of a
// .Sort() method call.
func sortedArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := info.ObjectOf(id).(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "sort", "slices":
				if len(call.Args) > 0 {
					return call.Args[0]
				}
				return nil
			}
			return nil
		}
	}
	if sel.Sel.Name == "Sort" {
		return sel.X
	}
	return nil
}
