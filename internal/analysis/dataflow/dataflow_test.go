package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"stitchroute/internal/analysis/cfg"
)

// check typechecks a self-contained source file (no imports, so no
// importer is needed) and returns its AST and type info.
func check(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Error: func(error) {}}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return file, info
}

// testConfig hooks calls to functions literally named "now" (a Value
// source) and "pick" (an Order source), standing in for time.Now and
// map-draw helpers without needing imports.
func testConfig(info *types.Info) TaintConfig {
	return TaintConfig{
		Info: info,
		SourceCall: func(call *ast.CallExpr) (Taint, bool) {
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return Taint{}, false
			}
			switch id.Name {
			case "now":
				return Taint{Kind: Value, Why: "now()", Pos: call.Pos()}, true
			case "pick":
				return Taint{Kind: Order, Why: "pick()", Pos: call.Pos()}, true
			}
			return Taint{}, false
		},
	}
}

// funcNamed returns the declaration of the named function.
func funcNamed(t *testing.T, file *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// solveFunc runs the taint analysis over the named function and returns
// the problem, solution, and a lookup from variable name to object.
func solveFunc(t *testing.T, file *ast.File, info *types.Info, conf TaintConfig, name string) (Problem[Fact], *Solution[Fact], func(string) types.Object) {
	t.Helper()
	fd := funcNamed(t, file, name)
	p := Problem[Fact]{
		Graph:    cfg.New(fd.Body),
		Entry:    Fact{},
		Bottom:   BottomFact,
		Join:     JoinFacts,
		Equal:    EqualFacts,
		Transfer: conf.Transfer,
	}
	sol := Solve(p)
	objs := map[string]types.Object{}
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				objs[id.Name] = obj
			}
		}
		return true
	})
	return p, sol, func(s string) types.Object {
		obj := objs[s]
		if obj == nil {
			t.Fatalf("no local %q in %s", s, name)
		}
		return obj
	}
}

// atExit is the fact on the edge into the exit block.
func atExit(p Problem[Fact], sol *Solution[Fact]) Fact {
	f := BottomFact()
	for _, pred := range p.Graph.Exit.Preds {
		f = JoinFacts(f, sol.Out[pred])
	}
	return f
}

const commonSrc = `package p

func now() int64 { return 0 }
func pick() int { return 0 }
`

func TestTwoStepValueChain(t *testing.T) {
	file, info := check(t, commonSrc+`
func f() int64 {
	t := now()
	u := t + 1
	return u
}
`)
	conf := testConfig(info)
	p, sol, obj := solveFunc(t, file, info, conf, "f")
	f := atExit(p, sol)
	if f[obj("u")].Kind&Value == 0 {
		t.Errorf("u must be Value-tainted through the assignment chain, got %+v", f[obj("u")])
	}
	if f[obj("u")].Why != "now()" {
		t.Errorf("taint must remember its source, got %q", f[obj("u")].Why)
	}
}

func TestStrongUpdateKills(t *testing.T) {
	file, info := check(t, commonSrc+`
func f() int64 {
	t := now()
	t = 0
	return t
}
`)
	conf := testConfig(info)
	p, sol, obj := solveFunc(t, file, info, conf, "f")
	f := atExit(p, sol)
	if !f[obj("t")].Zero() {
		t.Errorf("reassignment to a constant must kill the taint, got %+v", f[obj("t")])
	}
}

func TestBranchJoin(t *testing.T) {
	file, info := check(t, commonSrc+`
func f(c bool) int64 {
	var t int64
	if c {
		t = now()
	} else {
		t = 0
	}
	return t
}
`)
	conf := testConfig(info)
	p, sol, obj := solveFunc(t, file, info, conf, "f")
	f := atExit(p, sol)
	if f[obj("t")].Kind&Value == 0 {
		t.Errorf("join of tainted and clean branches must stay tainted, got %+v", f[obj("t")])
	}
}

func TestLoopCarriedTaint(t *testing.T) {
	file, info := check(t, commonSrc+`
func f() int64 {
	var acc int64
	var t int64
	for i := 0; i < 4; i++ {
		acc = acc + t
		t = now()
	}
	return acc
}
`)
	conf := testConfig(info)
	p, sol, obj := solveFunc(t, file, info, conf, "f")
	f := atExit(p, sol)
	// acc only becomes tainted on the second iteration; a single forward
	// pass without the fixpoint would miss it.
	if f[obj("acc")].Kind&Value == 0 {
		t.Errorf("loop-carried taint requires the fixpoint, got %+v", f[obj("acc")])
	}
}

func TestMapRangeOrderTaint(t *testing.T) {
	file, info := check(t, commonSrc+`
func f(m map[int]int) int {
	last := 0
	for k := range m {
		last = k
	}
	return last
}
`)
	conf := testConfig(info)
	p, sol, obj := solveFunc(t, file, info, conf, "f")
	f := atExit(p, sol)
	if f[obj("last")].Kind&Order == 0 {
		t.Errorf("value drawn from map range must be Order-tainted, got %+v", f[obj("last")])
	}
	if f[obj("last")].Kind&Value != 0 {
		t.Errorf("map range is order- not value-nondeterministic, got %+v", f[obj("last")])
	}
}

func TestSortKillsOrderTaint(t *testing.T) {
	file, info := check(t, commonSrc+`
type list []int

func (l list) Sort() {}

func f(m map[int]int) list {
	var keys list
	for k := range m {
		keys = append(keys, k)
	}
	keys.Sort()
	return keys
}
`)
	conf := testConfig(info)
	p, sol, obj := solveFunc(t, file, info, conf, "f")
	f := atExit(p, sol)
	if f[obj("keys")].Kind&Order != 0 {
		t.Errorf("sorting must launder order taint, got %+v", f[obj("keys")])
	}
}

func TestSortDoesNotKillValueTaint(t *testing.T) {
	file, info := check(t, commonSrc+`
type list []int64

func (l list) Sort() {}

func f() list {
	var xs list
	xs = append(xs, now())
	xs.Sort()
	return xs
}
`)
	conf := testConfig(info)
	p, sol, obj := solveFunc(t, file, info, conf, "f")
	f := atExit(p, sol)
	if f[obj("xs")].Kind&Value == 0 {
		t.Errorf("sorting must not launder value taint, got %+v", f[obj("xs")])
	}
}

func TestCommutativeIntAccumulation(t *testing.T) {
	file, info := check(t, commonSrc+`
func f(m map[int]int, w map[int]float64) (int, float64) {
	sum := 0
	var fsum float64
	for k, v := range m {
		sum += k
		_ = v
	}
	for _, x := range w {
		fsum += x
	}
	return sum, fsum
}
`)
	conf := testConfig(info)
	p, sol, obj := solveFunc(t, file, info, conf, "f")
	f := atExit(p, sol)
	if f[obj("sum")].Kind&Order != 0 {
		t.Errorf("integer += over a map range is order-independent, got %+v", f[obj("sum")])
	}
	if f[obj("fsum")].Kind&Order == 0 {
		t.Errorf("float += is order-sensitive in the last ulp, got %+v", f[obj("fsum")])
	}
}

func TestSummaries(t *testing.T) {
	file, info := check(t, commonSrc+`
func wrap() int64 { return now() }

func id(x int64) int64 { return x }

func deep() int64 { return wrap() }

func f() (int64, int64, int64, int64) {
	a := wrap()
	b := id(now())
	c := id(1)
	d := deep()
	return a, b, c, d
}
`)
	conf := testConfig(info)
	conf.Summaries = ComputeSummaries([]*ast.File{file}, conf)
	p, sol, obj := solveFunc(t, file, info, conf, "f")
	f := atExit(p, sol)
	if f[obj("a")].Kind&Value == 0 {
		t.Errorf("a: helper containing a source must taint its result, got %+v", f[obj("a")])
	}
	if f[obj("b")].Kind&Value == 0 {
		t.Errorf("b: identity helper must carry argument taint through, got %+v", f[obj("b")])
	}
	if !f[obj("c")].Zero() {
		t.Errorf("c: clean argument through identity helper must stay clean, got %+v", f[obj("c")])
	}
	if f[obj("d")].Kind&Value == 0 {
		t.Errorf("d: two-level helper chain needs the summary fixpoint, got %+v", f[obj("d")])
	}
}

func TestSelectRecvOrder(t *testing.T) {
	src := commonSrc + `
func f(a, b chan int) int {
	var got int
	select {
	case v := <-a:
		got = v
	case v := <-b:
		got = v
	}
	return got
}
`
	file, info := check(t, src)
	conf := testConfig(info)
	conf.SelectRecv = map[ast.Stmt]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		comm := 0
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				comm++
			}
		}
		if comm >= 2 {
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					conf.SelectRecv[cc.Comm] = true
				}
			}
		}
		return true
	})
	p, sol, obj := solveFunc(t, file, info, conf, "f")
	f := atExit(p, sol)
	if f[obj("got")].Kind&Order == 0 {
		t.Errorf("select over two channels must order-taint the received value, got %+v", f[obj("got")])
	}
	_ = strings.TrimSpace
}

func TestSolverDeterminism(t *testing.T) {
	// Run the same analysis many times; the fact maps must be identical
	// each time (the solver's whole reason to exist).
	src := commonSrc + `
func f(m map[int]int) (int, int64) {
	last := 0
	t := now()
	for k := range m {
		last = k
	}
	u := t + 1
	return last, u
}
`
	var first string
	for i := 0; i < 20; i++ {
		file, info := check(t, src)
		conf := testConfig(info)
		p, sol, _ := solveFunc(t, file, info, conf, "f")
		f := atExit(p, sol)
		var parts []string
		for obj, taint := range f {
			parts = append(parts, obj.Name()+":"+taint.Why)
		}
		// Sort for comparison only; the underlying facts must agree.
		sortStrings(parts)
		s := strings.Join(parts, ",")
		if i == 0 {
			first = s
		} else if s != first {
			t.Fatalf("run %d diverged: %q vs %q", i, s, first)
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestMethodValueTaint: binding a method value (m := c.stamp) must carry
// the method summary's Always taint to the eventual call — the call
// graph resolves method values, and the dataflow side has to keep up.
func TestMethodValueTaint(t *testing.T) {
	file, info := check(t, commonSrc+`
type clock struct{}

func (clock) stamp() int64 { return now() }
func (clock) fixed() int64 { return 7 }

func f() (int64, int64) {
	var c clock
	m := c.stamp
	k := c.fixed
	a := m()
	b := k()
	return a, b
}
`)
	conf := testConfig(info)
	conf.Summaries = ComputeSummaries([]*ast.File{file}, conf)
	p, sol, obj := solveFunc(t, file, info, conf, "f")
	f := atExit(p, sol)
	if f[obj("a")].Kind&Value == 0 {
		t.Errorf("a: method value of a source-calling method must taint the call result, got %+v", f[obj("a")])
	}
	if !f[obj("b")].Zero() {
		t.Errorf("b: method value of a clean method must stay clean, got %+v", f[obj("b")])
	}
	if f[obj("m")].Kind&Value == 0 {
		t.Errorf("m: the binding itself must carry the summary taint, got %+v", f[obj("m")])
	}
}

// TestGenericInstantiation: summaries are keyed on the generic origin
// object, so they must resolve for inferred calls (idg(now())) and
// explicitly instantiated ones (gstamp[int64]()) alike — the latter
// reaches the callee through an *ast.IndexExpr.
func TestGenericInstantiation(t *testing.T) {
	file, info := check(t, commonSrc+`
func idg[T any](x T) T { return x }

func gstamp[T ~int64]() T { return T(now()) }

func f() (int64, int64, int64) {
	a := idg(now())
	b := gstamp[int64]()
	c := idg(int64(1))
	return a, b, c
}
`)
	conf := testConfig(info)
	conf.Summaries = ComputeSummaries([]*ast.File{file}, conf)
	p, sol, obj := solveFunc(t, file, info, conf, "f")
	f := atExit(p, sol)
	if f[obj("a")].Kind&Value == 0 {
		t.Errorf("a: generic identity must carry argument taint through its summary, got %+v", f[obj("a")])
	}
	if f[obj("b")].Kind&Value == 0 {
		t.Errorf("b: explicit instantiation must resolve the generic summary, got %+v", f[obj("b")])
	}
	if !f[obj("c")].Zero() {
		t.Errorf("c: clean argument through a generic must stay clean, got %+v", f[obj("c")])
	}
}
