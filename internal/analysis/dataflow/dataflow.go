// Package dataflow is a generic forward dataflow engine over the CFGs of
// package cfg: a worklist fixpoint solver parameterized by a
// join-semilattice of facts, plus a reusable taint lattice (taint.go) and
// intra-package call summaries (summary.go) so facts propagate through
// helper calls.
//
// The solver is deliberately classical: facts attach to block boundaries,
// In[b] is the join of the predecessors' Out facts, Out[b] is the
// transfer function folded over the block's nodes, and blocks re-enter
// the worklist until nothing changes. Reverse postorder seeding makes the
// common (reducible) case converge in very few passes.
package dataflow

import (
	"go/ast"

	"stitchroute/internal/analysis/cfg"
)

// Problem describes one forward analysis over one function.
type Problem[F any] struct {
	Graph *cfg.Graph

	// Entry is the fact at function entry (e.g. parameter taint).
	Entry F

	// Bottom produces the least element (the fact for a block with no
	// processed predecessors — unreachable code).
	Bottom func() F

	// Join combines two facts; it must not mutate its arguments.
	Join func(a, b F) F

	// Equal decides convergence.
	Equal func(a, b F) bool

	// Transfer applies one CFG node to a fact and returns the fact after
	// it; it must not mutate its argument.
	Transfer func(n ast.Node, in F) F
}

// Solution holds the fixpoint: the fact at entry and exit of each block.
type Solution[F any] struct {
	In, Out map[*cfg.Block]F
}

// Solve runs the worklist to a fixpoint. The iteration order is reverse
// postorder and the worklist is a deterministic FIFO over block indexes,
// so the solver itself can never introduce nondeterminism into analyzer
// output — the same property stitchvet polices in the router.
func Solve[F any](p Problem[F]) *Solution[F] {
	sol := &Solution[F]{
		In:  make(map[*cfg.Block]F, len(p.Graph.Blocks)),
		Out: make(map[*cfg.Block]F, len(p.Graph.Blocks)),
	}
	rpo := p.Graph.RevPostorder()
	order := make(map[*cfg.Block]int, len(rpo))
	for i, b := range rpo {
		order[b] = i
	}
	for _, b := range p.Graph.Blocks {
		sol.In[b] = p.Bottom()
		sol.Out[b] = p.Bottom()
	}
	sol.In[p.Graph.Entry] = p.Entry

	inList := make([]bool, len(p.Graph.Blocks))
	work := make([]*cfg.Block, len(rpo))
	copy(work, rpo)
	for _, b := range work {
		inList[b.Index] = true
	}
	// Safety bound: a finite-height lattice converges long before this;
	// the cap only guards against a Join/Equal pair that fails to form a
	// semilattice.
	budget := (len(p.Graph.Blocks) + 1) * 256
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		inList[b.Index] = false

		in := sol.In[b]
		if b != p.Graph.Entry {
			in = p.Bottom()
			for _, pred := range b.Preds {
				in = p.Join(in, sol.Out[pred])
			}
			sol.In[b] = in
		}
		out := in
		for _, n := range b.Nodes {
			out = p.Transfer(n, out)
		}
		if p.Equal(out, sol.Out[b]) {
			continue
		}
		sol.Out[b] = out
		for _, s := range b.Succs {
			if !inList[s.Index] {
				inList[s.Index] = true
				// Insert keeping the worklist sorted by RPO position:
				// deterministic and loop-friendly.
				pos := len(work)
				for i, w := range work {
					if order[s] < order[w] {
						pos = i
						break
					}
				}
				work = append(work, nil)
				copy(work[pos+1:], work[pos:])
				work[pos] = s
			}
		}
	}
	return sol
}

// ForEachNode replays the transfer function over every block, calling fn
// with each node and the fact in force immediately before it. This is how
// analyzers run their sink checks after Solve converges.
func ForEachNode[F any](p Problem[F], sol *Solution[F], fn func(n ast.Node, before F)) {
	for _, b := range p.Graph.Blocks {
		f := sol.In[b]
		for _, n := range b.Nodes {
			fn(n, f)
			f = p.Transfer(n, f)
		}
	}
}
