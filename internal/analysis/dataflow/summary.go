package dataflow

import (
	"go/ast"
	"go/types"
	"sort"

	"stitchroute/internal/analysis/cfg"
)

// FuncSummary compresses a function's taint behaviour to what a call site
// needs: taint the result always carries, plus the set of parameters
// whose taint flows to the result.
type FuncSummary struct {
	// Always is taint the result carries regardless of arguments (the
	// function contains its own source, e.g. calls time.Now).
	Always Taint
	// FromParams is a bitmask: bit i set means parameter i's taint
	// reaches a returned value.
	FromParams uint64
}

// Summaries resolves functions to their summaries. Two keyings coexist:
// object identity for intra-package summaries (ComputeSummaries), and a
// canonical string ID for module-wide summaries — the loader type-checks
// each package separately, so one function is a different *types.Func at
// home and at cross-package call sites, and only a stable ID unifies
// them (callgraph.FuncID supplies it).
type Summaries struct {
	funcs map[*types.Func]*FuncSummary
	byID  map[string]*FuncSummary
	idOf  func(*types.Func) string
}

// NewModuleSummaries returns an empty ID-keyed summary set; idOf maps
// any *types.Func (local or imported) to its canonical identity.
func NewModuleSummaries(idOf func(*types.Func) string) *Summaries {
	return &Summaries{byID: make(map[string]*FuncSummary), idOf: idOf}
}

// Lookup returns the summary for fn, or nil.
func (s *Summaries) Lookup(fn *types.Func) *FuncSummary {
	if s == nil {
		return nil
	}
	if sum, ok := s.funcs[fn]; ok {
		return sum
	}
	if s.byID != nil && s.idOf != nil {
		if id := s.idOf(fn); id != "" {
			return s.byID[id]
		}
	}
	return nil
}

// SetID records (or replaces) the summary under a canonical function ID.
func (s *Summaries) SetID(id string, sum *FuncSummary) { s.byID[id] = sum }

// GetID returns the summary stored under id, or nil.
func (s *Summaries) GetID(id string) *FuncSummary { return s.byID[id] }

// Summarize computes one function's taint summary against conf (whose
// Summaries field resolves the callees already summarized). It is the
// building block module-wide summary computation iterates in bottom-up
// call-graph order.
func Summarize(decl *ast.FuncDecl, g *cfg.Graph, conf TaintConfig) *FuncSummary {
	return summarizeFunc(decl, g, conf)
}

// ComputeSummaries analyzes every function declaration in files to a
// fixpoint, so taint propagates through chains of intra-package helpers
// (a calls b calls time.Now ⇒ a's summary is Always-tainted too). The
// config's Summaries field is ignored; a fresh set is built and returned.
func ComputeSummaries(files []*ast.File, base TaintConfig) *Summaries {
	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
		g    *cfg.Graph
	}
	var decls []fnDecl
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := base.Info.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, fnDecl{obj, fd, cfg.New(fd.Body)})
		}
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].decl.Pos() < decls[j].decl.Pos() })

	sums := &Summaries{funcs: make(map[*types.Func]*FuncSummary, len(decls))}
	conf := base
	conf.Summaries = sums

	// Kind and FromParams only ever grow, so len(decls)+1 passes suffice;
	// in practice one or two do.
	for pass := 0; pass <= len(decls); pass++ {
		changed := false
		for _, d := range decls {
			sum := summarizeFunc(d.decl, d.g, conf)
			old := sums.funcs[d.obj]
			if old == nil || *old != *sum {
				sums.funcs[d.obj] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// summarizeFunc runs the taint analysis over one function with its
// parameters pre-seeded with placeholder param taints, then merges the
// taint of every returned value.
func summarizeFunc(decl *ast.FuncDecl, g *cfg.Graph, conf TaintConfig) *FuncSummary {
	entry := Fact{}
	var params []*types.Var
	if sig, ok := conf.Info.ObjectOf(decl.Name).Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			params = append(params, sig.Params().At(i))
		}
	}
	for i, p := range params {
		if i < 64 && p.Name() != "" && p.Name() != "_" {
			entry[p] = Taint{Params: 1 << uint(i)}
		}
	}

	p := Problem[Fact]{
		Graph:    g,
		Entry:    entry,
		Bottom:   BottomFact,
		Join:     JoinFacts,
		Equal:    EqualFacts,
		Transfer: conf.Transfer,
	}
	sol := Solve(p)

	var ret Taint
	results := namedResults(conf.Info, decl)
	ForEachNode(p, sol, func(n ast.Node, before Fact) {
		rs, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if len(rs.Results) == 0 {
			// Bare return: named results carry the value out.
			for _, r := range results {
				ret = ret.merge(before[r])
			}
			return
		}
		for _, e := range rs.Results {
			ret = ret.merge(conf.EvalExpr(before, e))
		}
	})

	sum := &FuncSummary{FromParams: ret.Params}
	ret.Params = 0
	if !ret.Zero() {
		sum.Always = ret
	}
	return sum
}

func namedResults(info *types.Info, decl *ast.FuncDecl) []*types.Var {
	sig, ok := info.ObjectOf(decl.Name).Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		if r.Name() != "" {
			out = append(out, r)
		}
	}
	return out
}
