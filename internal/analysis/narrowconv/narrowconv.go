// Package narrowconv defines a module-wide analyzer that flags integer
// conversions which silently drop bits on the way into packed arena
// state. Fabric coordinates are int64 end to end; the packed detail
// grid, fracture trapezoid records, and stencil/raster buffers store
// them in int32/int16/uint8 slots, and an unguarded conversion at that
// boundary wraps instead of failing for a chip larger than the packed
// range.
//
// A conversion T(x) with sizeof(T) < sizeof(type of x) is flagged when
// the source is an explicitly 64-bit integer type (int64/uint64 or a
// named type over them — the coordinate types). Plain int is exempt by
// design: in this codebase an int is a grid index or count already
// bounded by an allocation, and flagging every loop-index pack would
// bury the coordinate truncations this analyzer exists for. A flagged
// conversion is let through when the operand is visibly safe:
//
//   - a constant (the compiler already rejects non-representable
//     constant conversions, so a constant that compiles fits);
//   - guarded: an identifier in the operand was compared (<, <=, >, >=)
//     earlier in the same function — the author established a range;
//   - clamped: the operand is a call to the min/max builtins or a
//     helper whose name says clamp/saturate/bound;
//   - masked: the operand is x & <constant> or x >> <constant>, which
//     bounds the value structurally.
//
// The interprocedural part rides on the whole-module call graph: a
// per-function summary records whether a function's result derives
// from unchecked multiplication or left shift — directly or through
// any chain of callees, across packages. Narrowing such a result is
// reported with the provenance chain ("derives from an unchecked
// product via brg.Area → geom.RawArea"), because the overflow risk is
// invisible at the conversion site: the product lives two hops away.
package narrowconv

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/callgraph"
)

// Analyzer flags unchecked narrowing conversions of fabric coordinates
// into packed state, with cross-package product provenance.
var Analyzer = &analysis.Analyzer{
	Name:    "narrowconv",
	Version: 1,
	Doc: "flag unchecked narrowing integer conversions into packed arena state; track overflow-prone products through the call graph\n\n" +
		"Packed grids and trapezoid records store int64 coordinates in narrow slots; an unguarded conversion wraps silently for large fabrics.",
	Packages: []string{
		"internal/detail", "internal/fracture", "internal/stencil", "internal/raster",
	},
	RunModule: runModule,
}

// wideInfo summarizes a function whose result derives from unchecked
// widening arithmetic (multiplication or left shift).
type wideInfo struct {
	via string // forwarding chain, "" when the product is in this body
}

var clampName = regexp.MustCompile(`(?i)(clamp|saturat|bound|^sat$|cap$)`)

var sizes = types.StdSizes{WordSize: 8, MaxAlign: 8}

func runModule(mp *analysis.ModulePass) error {
	wide := computeWide(mp.Graph)

	ids := make([]string, 0, len(mp.Graph.Nodes))
	for id := range mp.Graph.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := mp.Graph.Nodes[id]
		if n.Body() == nil || !mp.Match(n.Pkg.PkgPath) {
			continue
		}
		checkNode(mp, n, wide)
	}
	return nil
}

// ---- the returns-wide summary ----

// computeWide walks the SCC condensation bottom-up and records, for
// every function, whether a returned value derives from unchecked
// multiplication/left shift — in its own body or through callees.
func computeWide(g *callgraph.Graph) map[string]wideInfo {
	wide := map[string]wideInfo{}
	for _, scc := range g.SCCs {
		for pass := 0; pass <= len(scc); pass++ {
			changed := false
			for _, n := range scc {
				if n.Body() == nil {
					continue
				}
				if _, done := wide[n.ID]; done {
					continue
				}
				if info, isWide := returnsWide(n, wide); isWide {
					wide[n.ID] = info
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return wide
}

func returnsWide(n *callgraph.Node, wide map[string]wideInfo) (wideInfo, bool) {
	info := n.Pkg.TypesInfo
	var out wideInfo
	found := false
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		if found {
			return false
		}
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := nd.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ret.Results {
			ast.Inspect(e, func(x ast.Node) bool {
				if found {
					return false
				}
				switch x := x.(type) {
				case *ast.FuncLit:
					return false
				case *ast.BinaryExpr:
					if (x.Op == token.MUL || x.Op == token.SHL) &&
						isInteger(info.TypeOf(x)) && !isConst(info, x) {
						out = wideInfo{}
						found = true
						return false
					}
				case *ast.CallExpr:
					if callee := n.Sites[x]; callee != nil {
						if w, isWide := wide[callee.ID]; isWide {
							out = wideInfo{via: chain(shortID(callee.ID), w.via)}
							found = true
							return false
						}
					}
				}
				return true
			})
			if found {
				break
			}
		}
		return !found
	})
	return out, found
}

// ---- the conversion check ----

func checkNode(mp *analysis.ModulePass, n *callgraph.Node, wide map[string]wideInfo) {
	info := n.Pkg.TypesInfo
	guards := guardPositions(info, n.Body())
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		dst := info.TypeOf(call)
		operand := ast.Unparen(call.Args[0])
		src := info.TypeOf(operand)
		if !isInteger(dst) || !is64Bit(src) {
			return true
		}
		if sizes.Sizeof(dst.Underlying()) >= sizes.Sizeof(src.Underlying()) {
			return true
		}
		if isConst(info, operand) || clamped(info, operand) || masked(operand) {
			return true
		}
		if guardedOperand(info, operand, call.Pos(), guards) {
			return true
		}
		if inner, isCall := operand.(*ast.CallExpr); isCall {
			if callee := n.Sites[inner]; callee != nil {
				if w, isWide := wide[callee.ID]; isWide {
					mp.Reportf(call.Pos(),
						"narrowing conversion %s → %s of a value that derives from an unchecked product (via %s); clamp or range-check before packing",
						typeName(src), typeName(dst), chain(shortID(callee.ID), w.via))
					return true
				}
			}
		}
		mp.Reportf(call.Pos(),
			"unchecked narrowing conversion %s → %s may silently truncate; guard or clamp the operand before packing",
			typeName(src), typeName(dst))
		return true
	})
}

// guardPositions maps objects that appear as a comparison operand to
// the position of their earliest comparison: a later narrowing of such
// a value is taken as range-checked by the author.
func guardPositions(info *types.Info, body ast.Node) map[types.Object]token.Pos {
	guards := map[types.Object]token.Pos{}
	ast.Inspect(body, func(nd ast.Node) bool {
		be, ok := nd.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			for _, obj := range rootVars(info, side) {
				if old, seen := guards[obj]; !seen || be.Pos() < old {
					guards[obj] = be.Pos()
				}
			}
		}
		return true
	})
	return guards
}

func guardedOperand(info *types.Info, operand ast.Expr, at token.Pos, guards map[types.Object]token.Pos) bool {
	for _, obj := range rootVars(info, operand) {
		if pos, ok := guards[obj]; ok && pos < at {
			return true
		}
	}
	return false
}

// rootVars collects the variables an expression reads.
func rootVars(info *types.Info, e ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(e, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok {
			if v, isVar := info.Uses[id].(*types.Var); isVar {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// clamped reports whether the operand is a call whose very shape bounds
// the result: the min/max builtins or a clamp-named helper.
func clamped(info *types.Info, operand ast.Expr) bool {
	call, ok := operand.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin && (fun.Name == "min" || fun.Name == "max") {
			return true
		}
		return clampName.MatchString(fun.Name)
	case *ast.SelectorExpr:
		return clampName.MatchString(fun.Sel.Name)
	}
	return false
}

// masked reports whether the operand is structurally bounded:
// x & constant or x >> constant.
func masked(operand ast.Expr) bool {
	be, ok := operand.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.AND, token.SHR:
		return true
	}
	return false
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0 && b.Kind() != types.Uintptr
}

// is64Bit recognizes the explicitly 64-bit integer types — the fabric
// coordinate representations. Plain int/uint are exempt by design (see
// the package comment).
func is64Bit(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Int64 || b.Kind() == types.Uint64)
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func typeName(t types.Type) string {
	return shortID(types.TypeString(t, nil))
}

func chain(head, rest string) string {
	if rest == "" {
		return head
	}
	if i := strings.Index(rest, " → "); i >= 0 && strings.Count(rest, " → ") >= 1 {
		rest = rest[:i] + " → …"
	}
	return head + " → " + rest
}

var pathSeg = regexp.MustCompile(`[\w.~-]+/`)

func shortID(id string) string {
	return pathSeg.ReplaceAllString(id, "")
}
