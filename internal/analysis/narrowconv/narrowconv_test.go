package narrowconv_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/narrowconv"
)

// TestModule drives the fixture module where the overflow-prone product
// is two cross-package hops below the narrowing conversion (pack → brg
// → geom): only the call-graph summary connects them.
func TestModule(t *testing.T) {
	analyzertest.RunModule(t, narrowconv.Analyzer,
		"./testdata/mod/geom",
		"./testdata/mod/brg",
		"./testdata/mod/pack",
	)
}
