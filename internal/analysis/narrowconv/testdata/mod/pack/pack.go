// Package pack narrows coordinates into packed slots. The product
// behind brg.Area is two cross-package hops away (pack → brg → geom):
// nothing in this file multiplies, so an intra-package analysis sees an
// innocent conversion.
package pack

import "stitchroute/internal/analysis/narrowconv/testdata/mod/brg"

type cell struct {
	area int32
	x    int16
}

func store(c *cell, w, h int64) {
	c.area = int32(brg.Area(w, h)) // want `narrowing conversion int64 → int32 of a value that derives from an unchecked product \(via brg\.Area → geom\.RawArea\)`
}

func direct(c *cell, x int64) {
	c.x = int16(x) // want `unchecked narrowing conversion int64 → int16 may silently truncate`
}

// guarded: the comparison above the conversion counts as a range check.
func guarded(c *cell, x int64) {
	if x > 32767 || x < -32768 {
		return
	}
	c.x = int16(x)
}

// constant conversions that compile are representable by definition.
func constant(c *cell) {
	c.x = int16(1200)
}

// the min builtin bounds the operand structurally.
func viaMin(c *cell, x int64) {
	c.x = int16(min(x, 32000))
}

// a clamp-named helper is trusted to bound its result.
func viaClamp(c *cell, x int64) {
	c.area = int32(clampCoord(x, -1<<31, 1<<31-1))
}

func clampCoord(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// masking bounds the value structurally.
func masked(c *cell, x int64) {
	c.x = int16(x & 0x7fff)
}

// widening is never a problem.
func widen(x int16) int64 {
	return int64(x)
}

// narrowing a forwarded sum is still narrowing — flagged, but without
// product provenance.
func sum(c *cell, a, b int64) {
	c.area = int32(brg.Width(a, b)) // want `unchecked narrowing conversion int64 → int32 may silently truncate`
}
