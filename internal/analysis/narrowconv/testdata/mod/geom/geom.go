// Package geom holds the raw arithmetic: the unchecked product lives
// here, two packages below the conversion that narrows it.
package geom

// RawArea multiplies two fabric extents without any overflow check.
func RawArea(w, h int64) int64 {
	return w * h
}

// Span is plain addition: not flagged as a product.
func Span(a, b int64) int64 {
	return a + b
}
