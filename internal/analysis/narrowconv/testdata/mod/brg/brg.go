// Package brg forwards geom's results: it contains no arithmetic of
// its own, so only a call-graph summary can see the product behind it.
package brg

import "stitchroute/internal/analysis/narrowconv/testdata/mod/geom"

// Area forwards the unchecked product one more hop.
func Area(w, h int64) int64 {
	return geom.RawArea(w, h)
}

// Width forwards a sum: safe to narrow (well, as safe as any int64).
func Width(a, b int64) int64 {
	return geom.Span(a, b)
}
