// Package registry holds the canonical stitchvet analyzer set, shared by
// cmd/stitchvet and cmd/benchjson so the CLI, the lint benchmark, and the
// cache fingerprint all agree on what "all analyzers" means.
package registry

import (
	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/confine"
	"stitchroute/internal/analysis/ctxflow"
	"stitchroute/internal/analysis/driver"
	"stitchroute/internal/analysis/errflow"
	"stitchroute/internal/analysis/floateq"
	"stitchroute/internal/analysis/hotalloc"
	"stitchroute/internal/analysis/leakcheck"
	"stitchroute/internal/analysis/lockdiscipline"
	"stitchroute/internal/analysis/lockorder"
	"stitchroute/internal/analysis/mapiterorder"
	"stitchroute/internal/analysis/narrowconv"
	"stitchroute/internal/analysis/nondeterm"
	"stitchroute/internal/analysis/racecheck"
)

// All returns the full analyzer set in alphabetical order. The slice is
// freshly allocated; callers may filter it freely.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		confine.Analyzer,
		ctxflow.Analyzer,
		errflow.Analyzer,
		floateq.Analyzer,
		hotalloc.Analyzer,
		leakcheck.Analyzer,
		lockdiscipline.Analyzer,
		lockorder.Analyzer,
		mapiterorder.Analyzer,
		narrowconv.Analyzer,
		nondeterm.Analyzer,
		racecheck.Analyzer,
	}
}

// Fingerprint hashes the full analyzer set's names and versions together
// with the toolchain; CI keys its cross-run findings cache on it so a new
// or re-versioned analyzer starts from a cold cache.
func Fingerprint() string {
	return driver.Fingerprint(All())
}
