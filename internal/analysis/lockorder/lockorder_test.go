package lockorder_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/lockorder"
)

// TestModule drives the fixture module where every deadlock ingredient
// is split across packages: locks declares the mutex owners, ab is the
// middle hop, use assembles the cycles. An intra-package analysis of
// use sees only calls to ab.
func TestModule(t *testing.T) {
	analyzertest.RunModule(t, lockorder.Analyzer,
		"./testdata/mod/locks",
		"./testdata/mod/ab",
		"./testdata/mod/use",
	)
}
