// Package lockorder defines a module-wide analyzer that tracks mutex
// acquisition across function and package boundaries and reports the
// three deadlock shapes an intra-procedural held-set walker
// (lockdiscipline) cannot see:
//
//   - lock-order cycles: somewhere in the module lock A is acquired
//     while B is held and somewhere else B is acquired while A is held;
//     with the acquisitions in different functions — or different
//     packages — no single-function analysis connects them.
//   - re-acquisition through a call chain: a function holding a lock
//     calls (possibly through several hops) a callee that acquires the
//     same lock; sync.Mutex is not reentrant, so if both acquisitions
//     hit the same instance the goroutine deadlocks against itself.
//   - blocking operations reached through callees while a lock is held:
//     lockdiscipline flags a channel send under a lock in the same body;
//     this analyzer flags the call whose transitive callee performs it.
//
// Lock identity is the type+field pair — (pkg.T).mu for a field mutex,
// pkg.mu for a package-level one — because a static analysis cannot name
// instances. The identity is deliberately coarse, and the reporting
// rules compensate:
//
//   - direct double acquisition of the same identity is NOT reported
//     (x.mu.Lock(); y.mu.Lock() is hand-over-hand locking of two
//     instances, not a self-deadlock), and self-edges never enter the
//     order graph;
//   - re-acquisition through a call chain is reported only when the
//     lock is package-level (a unique instance, so the deadlock is
//     certain) or the callee is a method on the very type that owns the
//     held lock (the classic "public method calls private helper that
//     locks again" bug);
//   - each ordered pair of locks contributes one edge to the order
//     graph, keyed on the first site seen in deterministic walk order,
//     so a module-wide inversion is reported once per direction rather
//     than once per call site.
//
// Summaries (locks a function may acquire, blocking operations it may
// perform) are computed bottom-up over the whole-module call graph, so
// facts propagate through any number of cross-package hops. Goroutine
// bodies are excluded — a lock acquired in a spawned goroutine is a
// different goroutine's lock set — and deferred calls other than
// Unlock/RUnlock are skipped (they run after the walked body).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/callgraph"
)

// Analyzer reports module-wide lock-order cycles, call-chain lock
// re-acquisition, and blocking operations reached through callees under
// a held lock.
var Analyzer = &analysis.Analyzer{
	Name:    "lockorder",
	Version: 1,
	Doc: "build the module-wide lock acquisition order graph over the call graph; report order cycles, call-chain re-acquisition, and blocking calls while a lock is held\n\n" +
		"Deadlocks assemble themselves from acquisitions in different packages; only a whole-module view connects them.",
	RunModule: runModule,
}

// acqInfo records one (representative) acquisition of a lock inside a
// function or its transitive callees.
type acqInfo struct {
	disp string // display form of the lock, e.g. (core.Heap).mu
	via  string // call chain, "" when the acquisition is direct
}

// blockInfo records one blocking operation a function may perform.
type blockInfo struct {
	what string // e.g. "channel send", "time.Sleep"
	via  string // call chain, "" when direct
}

// summary is a function's lock-relevant behaviour as seen by callers.
type summary struct {
	acquires map[string]acqInfo // lock ID → representative acquisition
	blocking map[string]blockInfo
}

const maxBlocking = 8 // per-summary cap; one report per call site anyway

func runModule(mp *analysis.ModulePass) error {
	sums := computeSummaries(mp.Graph)
	g := newOrderGraph()

	// Deterministic walk order: node IDs sort the same on every run.
	ids := make([]string, 0, len(mp.Graph.Nodes))
	for id := range mp.Graph.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := mp.Graph.Nodes[id]
		if n.Body() == nil {
			continue
		}
		w := &walker{
			mp:   mp,
			node: n,
			sums: sums,
			g:    g,
		}
		w.stmts(n.Body().List, nil)
	}

	reportCycles(mp, g)
	return nil
}

// ---- summaries ----

// computeSummaries walks the SCC condensation bottom-up so every callee
// summary is final (or, inside a recursive component, iterated to a
// fixpoint) before its callers are summarized.
func computeSummaries(g *callgraph.Graph) map[string]*summary {
	sums := make(map[string]*summary)
	for _, scc := range g.SCCs {
		for pass := 0; pass <= len(scc); pass++ {
			changed := false
			for _, n := range scc {
				if n.Body() == nil {
					continue
				}
				s := summarize(n, sums)
				if !equalSummaries(sums[n.ID], s) {
					sums[n.ID] = s
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return sums
}

func equalSummaries(a, b *summary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.acquires) != len(b.acquires) || len(a.blocking) != len(b.blocking) {
		return false
	}
	for k, v := range a.acquires {
		if b.acquires[k] != v {
			return false
		}
	}
	for k, v := range a.blocking {
		if b.blocking[k] != v {
			return false
		}
	}
	return true
}

// summarize computes one function's summary: direct acquisitions and
// blocking operations plus everything its resolved callees may do.
func summarize(n *callgraph.Node, sums map[string]*summary) *summary {
	info := n.Pkg.TypesInfo
	s := &summary{acquires: map[string]acqInfo{}, blocking: map[string]blockInfo{}}
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false // its own call-graph node
		case *ast.GoStmt, *ast.DeferStmt:
			return false // other goroutine / after-return
		case *ast.SendStmt:
			s.addBlocking("channel send", "")
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW {
				s.addBlocking("channel receive", "")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(nd.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					s.addBlocking("range over channel", "")
				}
			}
		case *ast.SelectStmt:
			if !hasDefault(nd) {
				s.addBlocking("blocking select", "")
			}
		case *ast.CallExpr:
			if op, lockExpr := classify(info, nd); op != "" {
				if op == "acquire" {
					if id, disp := lockIdent(info, lockExpr); id != "" {
						if _, ok := s.acquires[id]; !ok {
							s.acquires[id] = acqInfo{disp: disp}
						}
					}
				}
				return true
			}
			if what, ok := blockingCall(info, nd); ok {
				s.addBlocking(what, "")
				return true
			}
			if callee := n.Sites[nd]; callee != nil {
				s.merge(sums[callee.ID], shortID(callee.ID))
			}
		}
		return true
	})
	return s
}

func (s *summary) addBlocking(what, via string) {
	if len(s.blocking) >= maxBlocking {
		return
	}
	key := what + "|" + via
	if _, ok := s.blocking[key]; !ok {
		s.blocking[key] = blockInfo{what: what, via: via}
	}
}

// merge folds a callee's summary into s, extending the provenance chains
// by one hop (capped at two rendered hops to keep messages readable).
func (s *summary) merge(callee *summary, calleeName string) {
	if callee == nil {
		return
	}
	for id, a := range callee.acquires {
		if _, ok := s.acquires[id]; ok {
			continue
		}
		s.acquires[id] = acqInfo{disp: a.disp, via: chain(calleeName, a.via)}
	}
	for _, b := range callee.blocking {
		s.addBlocking(b.what, chain(calleeName, b.via))
	}
}

func chain(head, rest string) string {
	if rest == "" {
		return head
	}
	if strings.Count(rest, " → ") >= 1 {
		// Two rendered hops already: elide the deeper tail.
		if i := strings.Index(rest, " → "); i >= 0 {
			rest = rest[:i] + " → …"
		}
	}
	return head + " → " + rest
}

// ---- the held-set walk ----

// heldLock is one entry of the walk's ordered held set.
type heldLock struct {
	id   string
	disp string
	pos  token.Pos
}

type walker struct {
	mp   *analysis.ModulePass
	node *callgraph.Node
	sums map[string]*summary
	g    *orderGraph
}

func (w *walker) report(pos token.Pos, format string, args ...interface{}) {
	if w.mp.Match(w.node.Pkg.PkgPath) {
		w.mp.Reportf(pos, format, args...)
	}
}

// stmts interprets a statement list sequentially, threading the held
// set. Nested control flow gets a copy of the state (conservative: a
// branch-local unlock does not clear the lock for the fall-through
// path, matching the lock-then-early-exit idiom).
func (w *walker) stmts(list []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func snapshot(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func (w *walker) stmt(stmt ast.Stmt, held []heldLock) []heldLock {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return w.scan(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.scan(e, held)
		}
		for _, e := range s.Lhs {
			held = w.scan(e, held)
		}
		return held
	case *ast.DeclStmt, *ast.ReturnStmt, *ast.IncDecStmt, *ast.SendStmt:
		// Direct blocking ops under a lock are lockdiscipline's report;
		// here only the calls inside matter.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				held = w.scan(e, held)
				return false
			}
			return true
		})
		return held
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock to function end: no state
		// change. Other deferred calls run after this body; skip them.
		return held
	case *ast.GoStmt:
		// The spawned goroutine has its own lock set; its body is a
		// separate call-graph node walked on its own.
		return held
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		held = w.scan(s.Cond, held)
		w.stmts(s.Body.List, snapshot(held))
		if s.Else != nil {
			w.stmt(s.Else, snapshot(held))
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.scan(s.Cond, held)
		}
		w.stmts(s.Body.List, snapshot(held))
		return held
	case *ast.RangeStmt:
		held = w.scan(s.X, held)
		w.stmts(s.Body.List, snapshot(held))
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.scan(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.stmts(cc.Body, snapshot(held))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.stmts(cc.Body, snapshot(held))
			}
		}
		return held
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				w.stmts(cc.Body, snapshot(held))
			}
		}
		return held
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	}
	return held
}

// scan visits the calls inside one expression in source order, updating
// the held set at lock/unlock calls and applying callee summaries at
// resolved call sites.
func (w *walker) scan(expr ast.Expr, held []heldLock) []heldLock {
	info := w.node.Pkg.TypesInfo
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, lockExpr := classify(info, call); op != "" {
			id, disp := lockIdent(info, lockExpr)
			if id == "" {
				return true
			}
			switch op {
			case "acquire":
				held = w.acquire(held, id, disp, call.Pos(), "")
			case "release":
				held = release(held, id)
			}
			return true
		}
		if callee := w.node.Sites[call]; callee != nil && len(held) > 0 {
			w.applyCallee(held, callee, call.Pos())
		}
		return true
	})
	return held
}

// acquire records order edges from every held lock to id and pushes it.
func (w *walker) acquire(held []heldLock, id, disp string, pos token.Pos, via string) []heldLock {
	for _, h := range held {
		if h.id != id {
			w.g.addEdge(h, id, disp, pos, w.node.Pkg.PkgPath, via)
		}
	}
	return append(held, heldLock{id: id, disp: disp, pos: pos})
}

func release(held []heldLock, id string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].id == id {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// applyCallee folds a resolved callee's summary into the walk at a call
// site where at least one lock is held.
func (w *walker) applyCallee(held []heldLock, callee *callgraph.Node, pos token.Pos) {
	sum := w.sums[callee.ID]
	if sum == nil {
		return
	}
	for _, id := range sortedKeys(sum.acquires) {
		a := sum.acquires[id]
		if h, isHeld := find(held, id); isHeld {
			if definiteReacquire(id, callee) {
				w.report(pos, "%s is already held (since line %d) and is acquired again %s; sync mutexes are not reentrant, so this self-deadlocks",
					h.disp, w.mp.Fset.Position(h.pos).Line, renderVia(chain(shortID(callee.ID), a.via)))
			}
			continue
		}
		for _, h := range held {
			w.g.addEdge(h, id, a.disp, pos, w.node.Pkg.PkgPath, chain(shortID(callee.ID), a.via))
		}
	}
	// One blocking report per call site is enough.
	if b, ok := firstBlocking(sum); ok {
		h := held[0]
		w.report(pos, "%s is held across %s %s; the critical section can stall every other goroutine contending for it",
			h.disp, b.what, renderVia(chain(shortID(callee.ID), b.via)))
	}
}

func find(held []heldLock, id string) (heldLock, bool) {
	for _, h := range held {
		if h.id == id {
			return h, true
		}
	}
	return heldLock{}, false
}

func sortedKeys(m map[string]acqInfo) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func firstBlocking(s *summary) (blockInfo, bool) {
	keys := make([]string, 0, len(s.blocking))
	for k := range s.blocking {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return blockInfo{}, false
	}
	sort.Strings(keys)
	return s.blocking[keys[0]], true
}

// definiteReacquire applies the coarse-identity compensation rule: a
// package-level lock is a unique instance; for a field lock the callee
// must be a method on the owning type for the re-acquisition to be the
// classic self-deadlock rather than a sibling instance.
func definiteReacquire(id string, callee *callgraph.Node) bool {
	owner, isField := strings.CutPrefix(id, "(")
	if !isField {
		return true // package-level: unique instance
	}
	owner, _, _ = strings.Cut(owner, ")")
	if callee.Func == nil {
		return false
	}
	sig, ok := callee.Func.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path()+"."+named.Obj().Name() == owner
}

func renderVia(via string) string {
	if via == "" {
		return "here"
	}
	return "via call to " + via
}

// ---- the order graph ----

type edge struct {
	from, to         string
	fromDisp, toDisp string
	pos              token.Pos
	pkg              string
	via              string
}

type orderGraph struct {
	edges map[[2]string]*edge
	succ  map[string][]string
}

func newOrderGraph() *orderGraph {
	return &orderGraph{edges: map[[2]string]*edge{}, succ: map[string][]string{}}
}

// addEdge records h.id → to; the first site seen (in deterministic walk
// order) is kept as the pair's representative.
func (g *orderGraph) addEdge(h heldLock, to, toDisp string, pos token.Pos, pkg, via string) {
	key := [2]string{h.id, to}
	if _, ok := g.edges[key]; ok {
		return
	}
	g.edges[key] = &edge{from: h.id, to: to, fromDisp: h.disp, toDisp: toDisp, pos: pos, pkg: pkg, via: via}
	g.succ[h.id] = append(g.succ[h.id], to)
}

// reportCycles finds strongly connected components of the lock order
// graph and reports every edge inside one: each such acquisition site
// participates in an inconsistent order that can deadlock.
func reportCycles(mp *analysis.ModulePass, g *orderGraph) {
	sccs := lockSCCs(g)
	inCycle := map[string]int{}
	for i, scc := range sccs {
		if len(scc) >= 2 {
			for _, id := range scc {
				inCycle[id] = i
			}
		}
	}
	keys := make([][2]string, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		e := g.edges[k]
		ci, ok := inCycle[e.from]
		if !ok || inCycle[e.to] != ci {
			continue
		}
		if !mp.Match(e.pkg) {
			continue
		}
		other := ""
		if rev, okRev := g.edges[[2]string{e.to, e.from}]; okRev {
			other = fmt.Sprintf(" (reverse order at %s)", mp.Fset.Position(rev.pos))
		}
		mp.Reportf(e.pos, "lock order cycle: %s is acquired before %s %s, but the opposite order also occurs%s; two goroutines interleaving these paths deadlock",
			e.fromDisp, e.toDisp, renderVia(e.via), other)
	}
}

// lockSCCs is Tarjan over the lock-identity nodes.
func lockSCCs(g *orderGraph) [][]string {
	nodes := make([]string, 0, len(g.succ))
	seen := map[string]bool{}
	add := func(id string) {
		if !seen[id] {
			seen[id] = true
			nodes = append(nodes, id)
		}
	}
	for _, e := range g.edges {
		add(e.from)
		add(e.to)
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		succ := append([]string(nil), g.succ[v]...)
		sort.Strings(succ)
		for _, wId := range succ {
			if _, ok := index[wId]; !ok {
				strongconnect(wId)
				if low[wId] < low[v] {
					low[v] = low[wId]
				}
			} else if onStack[wId] && index[wId] < low[v] {
				low[v] = index[wId]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				wId := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[wId] = false
				scc = append(scc, wId)
				if wId == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return sccs
}

// ---- classification helpers ----

// classify recognizes sync mutex operations. TryLock/TryRLock are
// non-blocking and impose no ordering constraint, so they are ignored.
func classify(info *types.Info, call *ast.CallExpr) (op string, lockExpr ast.Expr) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil
	}
	f, isFunc := info.Uses[sel.Sel].(*types.Func)
	if !isFunc || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", nil
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", nil
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", nil
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", nil
	}
	switch f.Name() {
	case "Lock", "RLock":
		return "acquire", sel.X
	case "Unlock", "RUnlock":
		return "release", sel.X
	}
	return "", nil
}

// lockIdent maps a mutex operand to its module-wide type+field identity
// and a short display form. Locks held in local variables have no
// stable identity and are skipped.
func lockIdent(info *types.Info, expr ast.Expr) (id, disp string) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		v, isVar := info.ObjectOf(e.Sel).(*types.Var)
		if isVar && v.IsField() {
			t := info.TypeOf(e.X)
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			named, isNamed := t.(*types.Named)
			if !isNamed || named.Obj().Pkg() == nil {
				return "", ""
			}
			owner := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			return "(" + owner + ")." + e.Sel.Name, "(" + shortID(owner) + ")." + e.Sel.Name
		}
		// Qualified package-level var: pkg.Mu.
		if isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), shortID(v.Pkg().Path() + "." + v.Name())
		}
	case *ast.Ident:
		v, isVar := info.ObjectOf(e).(*types.Var)
		if isVar && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), shortID(v.Pkg().Path() + "." + v.Name())
		}
	}
	return "", ""
}

// blockingCall recognizes the well-known blocking calls lockdiscipline
// also knows about.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	f, isFunc := info.Uses[sel.Sel].(*types.Func)
	if !isFunc || f.Pkg() == nil {
		return "", false
	}
	if f.Pkg().Path() == "time" && f.Name() == "Sleep" {
		return "time.Sleep", true
	}
	if f.Pkg().Path() != "sync" {
		return "", false
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false
	}
	switch named.Obj().Name() + "." + f.Name() {
	case "WaitGroup.Wait", "Cond.Wait", "Once.Do":
		return "(sync." + named.Obj().Name() + ")." + f.Name(), true
	}
	return "", false
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// pathSeg matches a path prefix up to its last separator: applied
// globally, "(stitchroute/internal/core.Heap).push" becomes
// "(core.Heap).push".
var pathSeg = regexp.MustCompile(`[\w.~-]+/`)

func shortID(id string) string {
	return pathSeg.ReplaceAllString(id, "")
}
