// Package use assembles the deadlocks: every offending acquisition or
// blocking operation is at least one call — and one package — away, so
// an intra-package analysis sees nothing here.
package use

import (
	"stitchroute/internal/analysis/lockorder/testdata/mod/ab"
	"stitchroute/internal/analysis/lockorder/testdata/mod/locks"
)

// Forward acquires A's lock, then B's — two hops down through ab.With.
func Forward(a *locks.A, b *locks.B) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	ab.With(b) // want `lock order cycle: \(locks\.A\)\.Mu is acquired before \(locks\.B\)\.Mu via call to ab\.With`
}

// Backward acquires the same pair in the opposite order.
func Backward(a *locks.A, b *locks.B) {
	b.Mu.Lock()
	a.Mu.Lock() // want `lock order cycle: \(locks\.B\)\.Mu is acquired before \(locks\.A\)\.Mu here`
	a.N++
	b.N++
	a.Mu.Unlock()
	b.Mu.Unlock()
}

// DoubleGlobal re-acquires the unique package-level lock through a
// callee: certain self-deadlock.
func DoubleGlobal() {
	locks.Global.Lock()
	defer locks.Global.Unlock()
	ab.LockGlobal() // want `locks\.Global is already held \(since line \d+\) and is acquired again via call to ab\.LockGlobal`
}

// Holds keeps A's lock across a callee that sends on a channel.
func Holds(a *locks.A, ch chan int) {
	a.Mu.Lock()
	ab.Notify(ch) // want `\(locks\.A\)\.Mu is held across channel send via call to ab\.Notify`
	a.Mu.Unlock()
}

// Sleepy keeps A's lock across a callee that sleeps.
func Sleepy(a *locks.A) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	ab.Nap() // want `\(locks\.A\)\.Mu is held across time\.Sleep via call to ab\.Nap`
}

// Consistent and ConsistentAgain acquire A before C everywhere: a
// consistent order is not a cycle, so neither is flagged.
func Consistent(a *locks.A, c *locks.C) {
	a.Mu.Lock()
	c.Mu.Lock()
	c.Mu.Unlock()
	a.Mu.Unlock()
}

func ConsistentAgain(a *locks.A, c *locks.C) {
	a.Mu.Lock()
	c.Mu.Lock()
	c.N++
	c.Mu.Unlock()
	a.Mu.Unlock()
}

// ReleaseFirst drops the lock before the blocking callee: clean.
func ReleaseFirst(a *locks.A, ch chan int) {
	a.Mu.Lock()
	a.N++
	a.Mu.Unlock()
	ab.Notify(ch)
}

// SameTypeTwo locks two distinct instances of one type: the type+field
// identity collides, but hand-over-hand locking must not be flagged as
// re-acquisition.
func SameTypeTwo(x, y *locks.A) {
	x.Mu.Lock()
	y.Mu.Lock()
	y.N++
	y.Mu.Unlock()
	x.Mu.Unlock()
}

// TouchOther holds A's lock and calls a method on a DIFFERENT type that
// locks its own mutex of the same shape: an order edge, not a
// re-acquisition (and A→B is the majority direction, so no new cycle).
func TouchOther(a *locks.A, b *locks.B) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.DeepLock()
}
