// Package locks declares the lock-owning types; the deadlocks are
// assembled two packages up.
package locks

import "sync"

type A struct {
	Mu sync.Mutex
	N  int
}

type B struct {
	Mu sync.Mutex
	N  int
}

type C struct {
	Mu sync.Mutex
	N  int
}

var Global sync.Mutex

// DeepLock acquires B's lock: the bottom of the two-hop chain.
func (b *B) DeepLock() {
	b.Mu.Lock()
	b.N++
	b.Mu.Unlock()
}

// Touch locks and unlocks its own mutex.
func (a *A) Touch() {
	a.Mu.Lock()
	a.N++
	a.Mu.Unlock()
}
