// Package ab is the middle hop: it never touches a mutex or a channel
// directly in the functions that matter — everything is one call deeper.
package ab

import (
	"time"

	"stitchroute/internal/analysis/lockorder/testdata/mod/locks"
)

// With acquires (locks.B).Mu one more hop down.
func With(b *locks.B) {
	b.DeepLock()
}

// Notify performs a channel send.
func Notify(ch chan int) {
	ch <- 1
}

// Nap sleeps.
func Nap() {
	time.Sleep(time.Millisecond)
}

// LockGlobal acquires the unique package-level lock.
func LockGlobal() {
	locks.Global.Lock()
	defer locks.Global.Unlock()
	lockGlobalN++
}

var lockGlobalN int
