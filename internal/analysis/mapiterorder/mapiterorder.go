// Package mapiterorder defines an analyzer that flags order-sensitive
// accumulation driven by Go map iteration.
//
// Go randomizes map iteration order per run. A loop `for k, v := range m`
// whose body appends to a slice declared outside the loop, pushes into a
// heap, or sends on a channel therefore produces a different sequence on
// every execution — the exact bug class behind commit c18208f, where the
// global A* seeded its priority heap straight from a map and reroutes
// stopped being byte-reproducible. Deterministic output is a hard
// invariant for this router (stitch positions must survive a re-run
// bit-for-bit), so the pattern is banned unless the accumulated slice is
// sorted afterwards: collect-keys-then-sort loops are recognized and left
// alone.
package mapiterorder

import (
	"go/ast"
	"go/types"

	"stitchroute/internal/analysis"
)

// Analyzer flags nondeterministic accumulation from map iteration.
var Analyzer = &analysis.Analyzer{
	Name:    "mapiterorder",
	Version: 1,
	Doc: "flag order-sensitive accumulation (append/heap-push/channel-send) inside range-over-map loops\n\n" +
		"Map iteration order is nondeterministic; accumulating into ordered state from it makes routing output irreproducible unless the result is sorted afterwards.",
	Packages: []string{
		"internal/global", "internal/detail", "internal/core",
		"internal/steiner", "internal/track", "internal/plan",
		"internal/fracture", "internal/stencil", "internal/eco",
	},
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn.Body)
			}
		}
	}
	return nil, nil
}

// checkFunc examines one function body (function literals nested inside
// are visited as part of the same tree: their statements still execute —
// whenever they run — in map order if driven from a surrounding range).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, body, rng)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure defined in the body is only order-sensitive
			// if invoked here; calls to it are seen as CallExprs.
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside range over map %s: map iteration order is nondeterministic, receivers observe a different sequence each run",
				exprString(rng.X))
			return true
		case *ast.AssignStmt:
			checkAppend(pass, funcBody, rng, n)
			return true
		case *ast.CallExpr:
			if name, ok := calleeName(n); ok && (name == "Push" || name == "push") {
				pass.Reportf(n.Pos(),
					"heap push inside range over map %s: the heap is seeded in nondeterministic map order (the c18208f A* reroute bug); iterate sorted keys instead",
					exprString(rng.X))
			}
			return true
		}
		return true
	})
}

// checkAppend flags `x = append(...)` inside the loop when x is declared
// outside the loop and never sorted later in the function.
func checkAppend(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, assign *ast.AssignStmt) {
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(assign.Lhs) {
			continue
		}
		target := assign.Lhs[i]
		obj := rootObject(pass, target)
		if obj == nil {
			continue
		}
		// Targets declared inside the loop body don't outlive an
		// iteration; order cannot leak.
		if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			continue
		}
		if sortedAfter(pass, funcBody, rng, obj) {
			continue
		}
		pass.Reportf(assign.Pos(),
			"append to %s inside range over map %s without a later sort: map iteration order is nondeterministic, so the slice order differs between runs",
			exprString(target), exprString(rng.X))
	}
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort* /
// .Sort() call after the range statement, which restores determinism.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		// The sorted value must involve obj, either as an argument
		// (sort.Slice(x, ...)) or as the receiver (x.Sort()).
		for _, arg := range call.Args {
			if mentions(pass, arg, obj) {
				found = true
				return false
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && mentions(pass, sel.X, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Method form: x.Sort().
	if sel.Sel.Name == "Sort" {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); !ok || !isPackageName(pass, id) {
			return true
		}
	}
	// Package form: sort.X / slices.SortX.
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkgName.Imported().Path() {
	case "sort":
		return true
	case "slices":
		switch sel.Sel.Name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

func isPackageName(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok
}

// mentions reports whether expr references obj anywhere in its tree.
func mentions(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// rootObject resolves the object an assignment target ultimately names:
// the identifier itself, or the field object for selector targets like
// r.routes.
func rootObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(e)
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			return sel.Obj()
		}
		return pass.TypesInfo.ObjectOf(e.Sel)
	case *ast.IndexExpr:
		return rootObject(pass, e.X)
	}
	return nil
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

func exprString(e ast.Expr) string { return types.ExprString(e) }
