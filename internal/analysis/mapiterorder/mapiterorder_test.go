package mapiterorder_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/mapiterorder"
)

func TestAnalyzer(t *testing.T) {
	analyzertest.Run(t, "../testdata", mapiterorder.Analyzer, "mapiterorder")
}
