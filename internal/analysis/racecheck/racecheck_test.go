package racecheck_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/racecheck"
)

// TestModule runs racecheck over both fixture packages in one call
// graph: race holds the must-flag pairs (sibling write/write, two
// overlapping spawns, a one-sided lock, a spawner read before the
// join); syncok holds the idioms that must stay silent (atomic counter
// with partitioned slots, a common lock, channel joins, read-only
// fan-out, per-spawn instances).
func TestModule(t *testing.T) {
	analyzertest.RunModule(t, racecheck.Analyzer,
		"./testdata/mod/race",
		"./testdata/mod/syncok",
	)
}
