// Package racecheck defines a module-wide analyzer that reports static
// data races around goroutine spawn sites: unsynchronized write/write
// and write/read pairs on memory reachable from two goroutines at once.
//
// The analysis is scoped to one spawner function at a time — the
// function (or function literal) that contains the `go` statements —
// because that is where the evidence lives: which values the spawned
// bodies capture, which WaitGroup they signal, which channel they send
// on, and what the spawner touches while they run. Three access pairs
// are examined:
//
//   - sibling instances of one spawn inside a loop (`for … { go f() }`
//     launches many copies of the same body; a write in the body races
//     with the same write in every other instance);
//   - two distinct spawns that overlap (neither is joined before the
//     other starts);
//   - the spawner itself against a live goroutine: an access after the
//     `go` statement but before the matching join.
//
// Happens-before is recovered from the two join idioms the codebase
// uses: `wg.Wait()` joins every live goroutine that calls Done (or
// defers it) on the same WaitGroup object, and a channel receive joins
// every live goroutine that sends on or closes the same channel object.
// Spawner accesses after a join cannot race with the joined goroutines.
//
// Only direct writes in a goroutine's own body count (stores, x++,
// x += …); writes buried in callees are deliberately out of scope — the
// one-level evidence keeps every report explainable by pointing at two
// statements. Five idioms are recognized as synchronization, not races:
//
//   - both accesses hold a common lock (lock identity is the variable
//     object, or object+field for a struct-held mutex — the same
//     instance, not merely the same type; a lock declared inside the
//     spawn's loop or body is per-instance and shares nothing);
//   - both accesses run inside sync.Once.Do callbacks on the same Once
//     instance — Do executes at most once and every return
//     happens-after that execution;
//   - either access goes through sync/atomic;
//   - both are element writes through a goroutine-local index (the
//     `work[k]` partitioning pattern: each instance owns the slots its
//     private counter hands it);
//   - the shared root is declared inside the spawn's enclosing loop, so
//     each iteration hands the goroutine a distinct instance.
//
// Reads pair only against writes, a slice-header read (len, range, the
// base of an index) does not conflict with element writes, and each
// (root, pair-kind) is reported once per spawner with both spawn sites
// cross-referenced.
package racecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/callgraph"
)

// Analyzer reports unsynchronized concurrent accesses around goroutine
// spawn sites.
var Analyzer = &analysis.Analyzer{
	Name:    "racecheck",
	Version: 1,
	Doc: "report static data races: write/write and write/read pairs on memory reachable from two goroutines with no common lock, atomic, or join ordering the accesses\n\n" +
		"Evidence is kept local to one spawner function: the spawn sites, the joins, and the two racing statements are all named in the report.",
	RunModule: runModule,
}

// key names a memory root or a lock instance: a variable object plus an
// optional field selected on it ((s, "mu") for s.mu, (wg, "") for a
// plain variable). Object identity distinguishes instances, which a
// type-based identity cannot.
type key struct {
	obj   types.Object
	field string
}

func (k key) String() string {
	if k.field == "" {
		return k.obj.Name()
	}
	return k.obj.Name() + "." + k.field
}

// access records one touch of a candidate shared root.
type access struct {
	root   key
	write  bool
	atomic bool  // via sync/atomic: exempt from pairing
	elem   bool  // through an index or dereference: element memory, not the header
	part   bool  // element access whose index is goroutine-local (partitioned slots)
	locks  []key // lock instances held at the access
	pos    token.Pos
	live   []int // spawner side only: spawn indices live at this point
}

// spawnInfo is one `go` statement of the spawner under analysis.
type spawnInfo struct {
	idx              int
	stmt             *ast.GoStmt
	loopPos, loopEnd token.Pos    // innermost enclosing loop, NoPos when none
	wgs              map[key]bool // WaitGroups the goroutine calls Done on
	chans            map[key]bool // channels the goroutine sends on or closes
	accesses         []access
	joinedAt         token.Pos // position of the spawner-side join, NoPos if never joined
}

func (s *spawnInfo) inLoop() bool { return s.loopPos.IsValid() }

func runModule(mp *analysis.ModulePass) error {
	ids := make([]string, 0, len(mp.Graph.Nodes))
	for id := range mp.Graph.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := mp.Graph.Nodes[id]
		if n.Body() == nil || len(n.Spawns) == 0 {
			continue
		}
		checkSpawner(mp, n)
	}
	return nil
}

func checkSpawner(mp *analysis.ModulePass, n *callgraph.Node) {
	body := n.Body()
	var spawns []*spawnInfo
	spawnAt := map[*ast.GoStmt]*spawnInfo{}
	for _, sp := range n.Spawns {
		if sp.Stmt == nil || sp.Callee == nil || sp.Callee.Body() == nil {
			continue
		}
		si := &spawnInfo{
			idx:      len(spawns),
			stmt:     sp.Stmt,
			wgs:      map[key]bool{},
			chans:    map[key]bool{},
			joinedAt: token.NoPos,
		}
		si.loopPos, si.loopEnd = enclosingLoop(body, sp.Stmt.Pos())
		collectGoroutine(si, n, sp.Callee)
		spawns = append(spawns, si)
		spawnAt[sp.Stmt] = si
	}
	if len(spawns) == 0 {
		return
	}

	sw := &walker{
		info:    n.Pkg.TypesInfo,
		bodyPos: body.Pos(),
		bodyEnd: body.End(),
		spawnAt: spawnAt,
		live:    map[int]bool{},
		spawns:  spawns,
	}
	sw.stmts(body.List, nil)

	reportRaces(mp, n, spawns, sw.out)
}

// collectGoroutine walks one spawned body, collecting its accesses to
// candidate shared roots plus the WaitGroup/channel signals it emits.
// Parameters passed at the spawn site are mapped back to the spawner's
// variables when the argument is a plain identifier, so `go f(sc)` and a
// captured `sc` describe the same root.
func collectGoroutine(si *spawnInfo, spawner, callee *callgraph.Node) {
	body := callee.Body()
	params := callgraph.ParamObjects(callee)
	args := callgraph.EffectiveArgs(si.stmt.Call, callee)
	paramSet := map[types.Object]bool{}
	paramMap := map[types.Object]key{}
	for j, p := range params {
		if p == nil {
			continue
		}
		paramSet[p] = true
		if j >= len(args) || args[j] == nil {
			continue
		}
		a := ast.Unparen(args[j])
		if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
			a = ast.Unparen(u.X)
		}
		if id, ok := a.(*ast.Ident); ok {
			if v, ok := spawner.Pkg.TypesInfo.ObjectOf(id).(*types.Var); ok && !v.IsField() {
				paramMap[p] = key{obj: v}
			}
		}
	}
	gw := &walker{
		info:      callee.Pkg.TypesInfo,
		bodyPos:   body.Pos(),
		bodyEnd:   body.End(),
		localSpan: true,
		paramSet:  paramSet,
		paramMap:  paramMap,
		si:        si,
	}
	gw.stmts(body.List, nil)
	si.accesses = gw.out
}

// enclosingLoop returns the span of the innermost for/range statement of
// body that contains pos (NoPos when none). Function literal bodies are
// not entered: their statements belong to other call-graph nodes.
func enclosingLoop(body *ast.BlockStmt, pos token.Pos) (token.Pos, token.Pos) {
	lp, le := token.NoPos, token.NoPos
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return nd.Pos() <= pos && pos < nd.End()
		case *ast.ForStmt, *ast.RangeStmt:
			if nd.Pos() <= pos && pos < nd.End() {
				lp, le = nd.Pos(), nd.End() // outer seen first; innermost wins
			}
		}
		return true
	})
	return lp, le
}

// ---- the access walker ----

// walker threads a lockset through one body in source order. In
// goroutine mode (si != nil) it emits the body's accesses and collects
// its Done/send signals; in spawner mode it additionally maintains the
// live-spawn set, records joins, and tags each access with the snapshot
// of live spawns.
type walker struct {
	info             *types.Info
	bodyPos, bodyEnd token.Pos
	localSpan        bool // declarations inside the span are goroutine-local
	paramSet         map[types.Object]bool
	paramMap         map[types.Object]key
	si               *spawnInfo // goroutine mode sink

	// Spawner mode:
	spawnAt map[*ast.GoStmt]*spawnInfo
	live    map[int]bool
	spawns  []*spawnInfo

	out []access
}

func (w *walker) spawnerMode() bool { return w.spawnAt != nil }

func (w *walker) emit(a access) {
	if w.spawnerMode() {
		if len(w.live) == 0 {
			return // nothing to race with yet (or everything joined)
		}
		a.live = make([]int, 0, len(w.live))
		for i := range w.live {
			a.live = append(a.live, i)
		}
		sort.Ints(a.live)
	}
	w.out = append(w.out, a)
}

// join retires every live spawn matching the predicate, recording where.
func (w *walker) join(pos token.Pos, match func(*spawnInfo) bool) {
	if !w.spawnerMode() {
		return
	}
	for i := range w.live {
		if match(w.spawns[i]) {
			w.spawns[i].joinedAt = pos
			delete(w.live, i)
		}
	}
}

func snapshot(held []key) []key { return append([]key(nil), held...) }

func (w *walker) stmts(list []ast.Stmt, held []key) []key {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *walker) stmt(stmt ast.Stmt, held []key) []key {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return w.scan(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.scan(e, held)
		}
		for _, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if r, elem, part, ok := w.rootOf(lhs); ok {
				w.emit(access{root: r, write: true, elem: elem, part: part, locks: snapshot(held), pos: lhs.Pos()})
			}
			// Index/selector sub-expressions of the target are reads.
			switch l := ast.Unparen(lhs).(type) {
			case *ast.IndexExpr:
				held = w.scan(l.Index, held)
			}
		}
		return held
	case *ast.IncDecStmt:
		if r, elem, part, ok := w.rootOf(s.X); ok {
			w.emit(access{root: r, write: true, elem: elem, part: part, locks: snapshot(held), pos: s.X.Pos()})
		}
		return held
	case *ast.SendStmt:
		held = w.scan(s.Value, held)
		if w.si != nil {
			if k, ok := w.syncKeyOf(s.Chan); ok {
				w.si.chans[k] = true
			}
		}
		return held
	case *ast.DeferStmt:
		// Deferred Done/close still signal; deferred Unlock keeps the
		// lock held to function end (conservative: fewer reports).
		if w.si != nil {
			if name, k, ok := w.wgOp(s.Call); ok && name == "Done" {
				w.si.wgs[k] = true
			}
			if k, ok := w.closeTarget(s.Call); ok {
				w.si.chans[k] = true
			}
		}
		for _, a := range s.Call.Args {
			held = w.scan(a, held)
		}
		return held
	case *ast.GoStmt:
		// Spawn-site argument reads happen on the spawner's goroutine,
		// concurrent with every *other* live spawn.
		for _, a := range s.Call.Args {
			held = w.scan(a, held)
		}
		if w.spawnerMode() {
			if si := w.spawnAt[s]; si != nil {
				w.live[si.idx] = true
			}
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.scan(e, held)
		}
		return held
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.scan(v, held)
					}
				}
			}
		}
		return held
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		held = w.scan(s.Cond, held)
		w.stmts(s.Body.List, snapshot(held))
		if s.Else != nil {
			w.stmt(s.Else, snapshot(held))
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.scan(s.Cond, held)
		}
		w.stmts(s.Body.List, snapshot(held))
		if s.Post != nil {
			w.stmt(s.Post, snapshot(held))
		}
		return held
	case *ast.RangeStmt:
		held = w.scan(s.X, held)
		if t := w.info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				// Ranging a channel drains it to close: a join.
				if k, ok := w.syncKeyOf(s.X); ok {
					w.join(s.Pos(), func(si *spawnInfo) bool { return si.chans[k] })
				}
			}
		}
		w.stmts(s.Body.List, snapshot(held))
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.scan(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.stmts(cc.Body, snapshot(held))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.stmts(cc.Body, snapshot(held))
			}
		}
		return held
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				h := snapshot(held)
				if cc.Comm != nil {
					h = w.stmt(cc.Comm, h)
				}
				w.stmts(cc.Body, h)
			}
		}
		return held
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	}
	return held
}

// scan visits one expression, classifying sync operations and emitting
// reads of candidate roots. Function literal bodies are skipped: they
// are other call-graph nodes.
func (w *walker) scan(expr ast.Expr, held []key) []key {
	switch e := ast.Unparen(expr).(type) {
	case nil:
		return held
	case *ast.FuncLit:
		return held
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if r, elem, part, ok := w.rootOf(e); ok {
			w.emit(access{root: r, elem: elem, part: part, locks: snapshot(held), pos: e.Pos()})
		}
		// Sub-expressions that are not covered by the root.
		switch e := e.(type) {
		case *ast.SelectorExpr:
			if _, _, _, ok := w.rootOf(e); !ok {
				held = w.scan(e.X, held)
			}
		case *ast.IndexExpr:
			if _, _, _, ok := w.rootOf(e); !ok {
				held = w.scan(e.X, held)
			}
			held = w.scan(e.Index, held)
		case *ast.StarExpr:
			if _, _, _, ok := w.rootOf(e); !ok {
				held = w.scan(e.X, held)
			}
		}
		return held
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			// A receive joins every live sender on this channel.
			if k, ok := w.syncKeyOf(e.X); ok {
				w.join(e.Pos(), func(si *spawnInfo) bool { return si.chans[k] })
			}
			return held
		}
		if e.Op == token.AND {
			return held // taking an address is not a memory access
		}
		return w.scan(e.X, held)
	case *ast.CallExpr:
		return w.call(e, held)
	case *ast.BinaryExpr:
		held = w.scan(e.X, held)
		return w.scan(e.Y, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				held = w.scan(kv.Value, held)
				continue
			}
			held = w.scan(el, held)
		}
		return held
	case *ast.TypeAssertExpr:
		return w.scan(e.X, held)
	case *ast.SliceExpr:
		held = w.scan(e.X, held)
		for _, ix := range []ast.Expr{e.Low, e.High, e.Max} {
			if ix != nil {
				held = w.scan(ix, held)
			}
		}
		return held
	case *ast.IndexListExpr:
		return w.scan(e.X, held)
	}
	return held
}

func (w *walker) call(call *ast.CallExpr, held []key) []key {
	// Lock discipline.
	if op, k, ok := w.lockOp(call); ok {
		switch op {
		case "acquire":
			return append(snapshot(held), k)
		case "release":
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == k {
					return append(held[:i:i], held[i+1:]...)
				}
			}
		}
		return held
	}
	// WaitGroup protocol.
	if name, k, ok := w.wgOp(call); ok {
		switch {
		case name == "Done" && w.si != nil:
			w.si.wgs[k] = true
		case name == "Wait" && w.spawnerMode():
			w.join(call.Pos(), func(si *spawnInfo) bool { return si.wgs[k] })
		}
		return held
	}
	// close(ch) signals like a send.
	if k, ok := w.closeTarget(call); ok {
		if w.si != nil {
			w.si.chans[k] = true
		}
		return held
	}
	// sync.Once.Do: the callback runs at most once and every Do return
	// happens-after that single execution, so accesses inside the
	// callback are ordered across every goroutine sharing the Once
	// instance. Model the instance as a lock held around the callback.
	if sel, fname, recvType := w.syncMethod(call); sel != nil && recvType == "Once" && fname == "Do" && len(call.Args) == 1 {
		if k, kOK := w.syncKeyOf(sel.X); kOK {
			if lit, isLit := ast.Unparen(call.Args[0]).(*ast.FuncLit); isLit {
				w.stmts(lit.Body.List, append(snapshot(held), k))
				return held
			}
		}
	}
	// sync/atomic: the &addr argument is an atomic access, exempt from
	// pairing.
	if w.isAtomic(call) {
		for _, a := range call.Args {
			if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
				if r, elem, part, okRoot := w.rootOf(u.X); okRoot {
					w.emit(access{root: r, write: true, atomic: true, elem: elem, part: part, locks: snapshot(held), pos: a.Pos()})
				}
				continue
			}
			held = w.scan(a, held)
		}
		return held
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if w.isAtomicRecv(sel) {
			// Methods on atomic.Int64 & co: the receiver is the cell.
			if r, elem, part, okRoot := w.rootOf(sel.X); okRoot {
				w.emit(access{root: r, write: true, atomic: true, elem: elem, part: part, locks: snapshot(held), pos: sel.X.Pos()})
			}
		} else {
			held = w.scan(sel.X, held) // method receiver is read
		}
	} else {
		held = w.scan(call.Fun, held) // func-valued variable is read
	}
	for _, a := range call.Args {
		held = w.scan(a, held)
	}
	return held
}

// ---- root and sync-object identification ----

// rootOf resolves an lvalue/rvalue expression to a candidate shared
// root. In goroutine mode the base must be captured, package-level, or a
// parameter mapped back to a spawner variable; locals stay invisible.
func (w *walker) rootOf(e ast.Expr) (k key, elem, part bool, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return w.rootOfIdent(e)
	case *ast.SelectorExpr:
		k, elem, part, ok = w.rootOf(e.X)
		if !ok {
			return key{}, false, false, false
		}
		if !elem {
			if k.field == "" {
				k.field = e.Sel.Name
			} else {
				k.field += "." + e.Sel.Name
			}
		}
		return k, elem, part, true
	case *ast.IndexExpr:
		k, _, _, ok = w.rootOf(e.X)
		if !ok {
			return key{}, false, false, false
		}
		return k, true, w.indexLocal(e.Index), true
	case *ast.StarExpr:
		k, _, _, ok = w.rootOf(e.X)
		if !ok {
			return key{}, false, false, false
		}
		return k, true, false, true
	}
	return key{}, false, false, false
}

func (w *walker) rootOfIdent(id *ast.Ident) (key, bool, bool, bool) {
	v, isVar := w.info.ObjectOf(id).(*types.Var)
	if !isVar || v.IsField() {
		return key{}, false, false, false
	}
	if w.paramSet[v] {
		mapped, hasMapping := w.paramMap[v]
		if !hasMapping {
			return key{}, false, false, false // unmapped parameter: instance-local
		}
		return mapped, false, false, true
	}
	if w.localSpan && v.Pos() >= w.bodyPos && v.Pos() < w.bodyEnd {
		return key{}, false, false, false // declared inside the goroutine
	}
	return key{obj: v}, false, false, true
}

// indexLocal reports whether an index expression is computed from
// goroutine-local state only (locals, parameters, constants): element
// writes it selects are partitioned between instances.
func (w *walker) indexLocal(e ast.Expr) bool {
	if !w.localSpan {
		return false // spawner side: no partitioning argument applies
	}
	sawIdent := false
	local := true
	ast.Inspect(e, func(nd ast.Node) bool {
		id, isIdent := nd.(*ast.Ident)
		if !isIdent {
			return true
		}
		switch obj := w.info.ObjectOf(id).(type) {
		case *types.Const, *types.TypeName, *types.Builtin, *types.Func, nil:
			return true
		case *types.Var:
			sawIdent = true
			if !w.paramSet[obj] && !(obj.Pos() >= w.bodyPos && obj.Pos() < w.bodyEnd) {
				local = false
			}
		default:
			local = false
		}
		return true
	})
	return sawIdent && local
}

// syncKeyOf names a lock/WaitGroup/channel operand by object identity,
// mapped through goroutine parameters like data roots.
func (w *walker) syncKeyOf(e ast.Expr) (key, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		k, _, _, ok := w.rootOfIdent(e)
		if !ok {
			// Sync objects declared inside the goroutine are still
			// identities (they just cannot match the spawner's).
			if v, isVar := w.info.ObjectOf(e).(*types.Var); isVar && !v.IsField() {
				return key{obj: v}, true
			}
			return key{}, false
		}
		return k, true
	case *ast.SelectorExpr:
		base, ok := w.syncKeyOf(e.X)
		if !ok {
			return key{}, false
		}
		if base.field == "" {
			base.field = e.Sel.Name
		} else {
			base.field += "." + e.Sel.Name
		}
		return base, true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.syncKeyOf(e.X)
		}
	}
	return key{}, false
}

// lockOp recognizes sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock with an
// identifiable operand.
func (w *walker) lockOp(call *ast.CallExpr) (op string, k key, ok bool) {
	sel, name, recvType := w.syncMethod(call)
	if sel == nil {
		return "", key{}, false
	}
	switch recvType {
	case "Mutex", "RWMutex":
	default:
		return "", key{}, false
	}
	k, kOK := w.syncKeyOf(sel.X)
	if !kOK {
		return "", key{}, false
	}
	switch name {
	case "Lock", "RLock":
		return "acquire", k, true
	case "Unlock", "RUnlock":
		return "release", k, true
	}
	return "", key{}, false
}

// wgOp recognizes sync.WaitGroup Add/Done/Wait.
func (w *walker) wgOp(call *ast.CallExpr) (name string, k key, ok bool) {
	sel, fname, recvType := w.syncMethod(call)
	if sel == nil || recvType != "WaitGroup" {
		return "", key{}, false
	}
	k, kOK := w.syncKeyOf(sel.X)
	if !kOK {
		return "", key{}, false
	}
	return fname, k, true
}

// syncMethod unpacks a method call on a sync.* receiver.
func (w *walker) syncMethod(call *ast.CallExpr) (*ast.SelectorExpr, string, string) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", ""
	}
	f, isFunc := w.info.Uses[sel.Sel].(*types.Func)
	if !isFunc || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return nil, "", ""
	}
	sig, isSig := f.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, "", ""
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, "", ""
	}
	return sel, f.Name(), named.Obj().Name()
}

func (w *walker) closeTarget(call *ast.CallExpr) (key, bool) {
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent || len(call.Args) != 1 {
		return key{}, false
	}
	if _, isBuiltin := w.info.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "close" {
		return key{}, false
	}
	return w.syncKeyOf(call.Args[0])
}

// isAtomic reports a call to a sync/atomic package function.
func (w *walker) isAtomic(call *ast.CallExpr) bool {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return false
	}
	f, isFunc := w.info.Uses[sel.Sel].(*types.Func)
	return isFunc && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic" && f.Type().(*types.Signature).Recv() == nil
}

// isAtomicRecv reports a method call on one of the sync/atomic cell
// types (atomic.Int64, atomic.Value, …).
func (w *walker) isAtomicRecv(sel *ast.SelectorExpr) bool {
	f, isFunc := w.info.Uses[sel.Sel].(*types.Func)
	if !isFunc || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, isSig := f.Type().(*types.Signature)
	return isSig && sig.Recv() != nil
}

// ---- pairing and reporting ----

func reportRaces(mp *analysis.ModulePass, n *callgraph.Node, spawns []*spawnInfo, spawnerAcc []access) {
	if !mp.Match(n.Pkg.PkgPath) {
		return
	}
	line := func(p token.Pos) int { return mp.Fset.Position(p).Line }
	seen := map[string]bool{}
	once := func(root key, class string) bool {
		dk := root.String() + "|" + class
		if seen[dk] {
			return false
		}
		seen[dk] = true
		return true
	}

	// Goroutine vs goroutine: sibling instances and overlapping spawns.
	for i := range spawns {
		for j := i; j < len(spawns); j++ {
			if i == j && !spawns[i].inLoop() {
				continue
			}
			if i != j && !overlap(spawns[i], spawns[j]) {
				continue
			}
			for _, a := range spawns[i].accesses {
				for _, b := range spawns[j].accesses {
					if !a.write && !b.write {
						continue
					}
					if i == j && instanceLocal(spawns[i], a.root) {
						continue
					}
					av, bv := a, b
					if i == j {
						// Sibling instances each own a fresh copy of any
						// lock declared inside the spawn's loop or body:
						// holding one orders nothing between instances.
						av.locks = sharedLocks(spawns[i], a.locks)
						bv.locks = sharedLocks(spawns[i], b.locks)
					}
					if !conflict(av, bv) {
						continue
					}
					if i == j {
						if !once(a.root, "sibling") {
							continue
						}
						wa := a
						if !wa.write {
							wa = b
						}
						mp.Reportf(wa.pos, "data race: %s is written concurrently by every instance of the goroutine spawned at line %d: the instances share one variable and hold no common lock",
							wa.root, line(spawns[i].stmt.Pos()))
						continue
					}
					if !once(a.root, "pair") {
						continue
					}
					wa, other := a, b
					verb := "written"
					if !other.write {
						verb = "read"
					}
					if !wa.write {
						wa, other = b, a
						verb = "read"
					}
					mp.Reportf(wa.pos, "data race: %s is written by this goroutine (spawned at line %d) and %s by the goroutine spawned at line %d with no common lock or join ordering the accesses",
						wa.root, line(spawns[i].stmt.Pos()), verb, line(spawns[j].stmt.Pos()))
				}
			}
		}
	}

	// Spawner vs live goroutine.
	for _, sa := range spawnerAcc {
		for _, li := range sa.live {
			si := spawns[li]
			if instanceLocal(si, sa.root) {
				continue // per-iteration instance: each spawn got its own
			}
			for _, ga := range si.accesses {
				if !conflict(sa, ga) {
					continue
				}
				if !once(sa.root, "spawner") {
					continue
				}
				if ga.write {
					verb := "written"
					if !sa.write {
						verb = "read"
					}
					mp.Reportf(sa.pos, "data race: %s is %s here while the goroutine spawned at line %d is still running and writes it: no wg.Wait, channel receive, or common lock orders the accesses",
						sa.root, verb, line(si.stmt.Pos()))
				} else {
					mp.Reportf(sa.pos, "data race: %s is written here while the goroutine spawned at line %d is still running and reads it: no wg.Wait, channel receive, or common lock orders the accesses",
						sa.root, line(si.stmt.Pos()))
				}
			}
		}
	}
}

// overlap reports whether two distinct spawns can run concurrently:
// the earlier one is not joined before the later one starts.
func overlap(a, b *spawnInfo) bool {
	first, second := a, b
	if b.stmt.Pos() < a.stmt.Pos() {
		first, second = b, a
	}
	return !first.joinedAt.IsValid() || first.joinedAt > second.stmt.Pos()
}

// instanceLocal reports whether root is declared inside the spawn's
// enclosing loop: each iteration hands the goroutine a fresh instance,
// so instances of this spawn do not share it.
func instanceLocal(si *spawnInfo, root key) bool {
	return si.inLoop() && root.obj.Pos() >= si.loopPos && root.obj.Pos() < si.loopEnd
}

// sharedLocks filters a lockset down to instances sibling goroutines can
// actually share — locks captured from outside the spawn's loop.
func sharedLocks(si *spawnInfo, locks []key) []key {
	out := locks[:0:0]
	for _, k := range locks {
		if !instanceLocal(si, k) {
			out = append(out, k)
		}
	}
	return out
}

// conflict decides whether two accesses to the same root can race.
func conflict(a, b access) bool {
	if a.atomic || b.atomic {
		return false
	}
	if !a.write && !b.write {
		return false
	}
	if !sameRoot(a, b) {
		return false
	}
	for _, la := range a.locks {
		for _, lb := range b.locks {
			if la == lb {
				return false
			}
		}
	}
	switch {
	case a.elem && b.elem:
		if a.part && b.part {
			return false // both partitioned by instance-local indices
		}
	case a.elem != b.elem:
		// Element access vs whole-variable access: only a whole-variable
		// write (rebinding the slice/pointer) conflicts with element
		// memory; a header read (len, range) does not.
		whole := a
		if a.elem {
			whole = b
		}
		if !whole.write {
			return false
		}
	}
	return true
}

func sameRoot(a, b access) bool {
	if a.root.obj != b.root.obj {
		return false
	}
	if a.root.field == b.root.field {
		return true
	}
	// A whole-variable write (x = …) conflicts with any field of x.
	return (a.write && a.root.field == "" && !a.elem) ||
		(b.write && b.root.field == "" && !b.elem)
}
