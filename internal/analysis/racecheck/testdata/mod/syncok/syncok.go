// Package syncok holds racecheck's must-not-flag fixtures: the
// synchronization idioms the codebase actually uses — atomic work
// counters with partitioned result slots, a common lock on both sides,
// channel joins, read-only fan-out, per-spawn instances, and
// once-guarded lazy initialization.
package syncok

import (
	"sync"
	"sync/atomic"
)

type Task struct{ ID, N int }

// PoolAtomic is the scheduler/driver shape: workers pull indices off an
// atomic counter and write disjoint slots; the spawner reads the slice
// only after wg.Wait.
func PoolAtomic(tasks []Task) []int {
	out := make([]int, len(tasks))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= len(tasks) {
					return
				}
				out[i] = tasks[i].N * 2
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, v := range out {
		total += v
	}
	_ = total
	return out
}

type ledger struct {
	mu sync.Mutex
	n  int
}

// Locked increments under the same mutex instance in both goroutines —
// and in the spawner while they run.
func Locked(l *ledger, done chan struct{}) {
	go func() {
		l.mu.Lock()
		l.n++
		l.mu.Unlock()
		done <- struct{}{}
	}()
	go func() {
		l.mu.Lock()
		l.n++
		l.mu.Unlock()
		done <- struct{}{}
	}()
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
	<-done
	<-done
}

type result struct{ total int }

// ChanJoin reads the goroutine's result only after receiving the done
// signal: the send/receive pair is the happens-before edge.
func ChanJoin(xs []int) int {
	var res result
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			res.total += x
		}
		done <- struct{}{}
	}()
	<-done
	return res.total
}

type config struct{ scale int }

func weigh(c *config, t Task) int { return t.N * c.scale }

// Broadcast shares one config read-only: reads never race with reads.
func Broadcast(tasks []Task, out chan<- int) {
	cfg := &config{scale: 2}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			for _, t := range tasks[lo:] {
				out <- weigh(cfg, t)
			}
		}(w)
	}
	wg.Wait()
}

// PerSpawn hands each goroutine its own buffer allocated inside the
// spawn loop: instances never share it, and the spawner's next-iteration
// allocation is a different instance too.
func PerSpawn(tasks []Task, done chan struct{}) {
	for i := range tasks {
		buf := make([]int, 8)
		go func(b []int, t Task) {
			b[0] = t.N
			buf[1] = t.N
			done <- struct{}{}
		}(buf, tasks[i])
	}
	for range tasks {
		<-done
	}
}

// InitOnce lazily builds a shared table from whichever worker gets
// there first: sync.Once.Do runs the callback at most once and every
// Do return happens-after it, so the writes inside the callback are
// ordered against each other and against the post-join read.
func InitOnce(tasks []Task, done chan struct{}) int {
	var once sync.Once
	var table []int
	for range tasks {
		go func() {
			once.Do(func() {
				table = make([]int, 4)
				table[0] = 1
			})
			done <- struct{}{}
		}()
	}
	for range tasks {
		<-done
	}
	return table[0]
}
