// Package race holds racecheck's must-flag fixtures: every pairing the
// analyzer models — sibling instances of a loop spawn, two overlapping
// spawns, a one-sided lock, and the spawner touching shared state
// before the join.
package race

import "sync"

// Tally spawns four identical workers that all increment the same
// captured counter with no lock: the canonical write/write race.
func Tally(n int) int {
	c := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				c++ // want `data race: c is written concurrently by every instance of the goroutine spawned at line \d+`
			}
		}()
	}
	wg.Wait()
	return c
}

type stats struct{ hits, total int }

// Split runs two distinct goroutines that write the same field of a
// shared struct; neither is joined before the other starts.
func Split(a, b []int, s *stats, done chan struct{}) {
	go func() {
		for range a {
			s.hits++ // want `data race: s.hits is written by this goroutine \(spawned at line \d+\) and written by the goroutine spawned at line \d+`
		}
		done <- struct{}{}
	}()
	go func() {
		for range b {
			s.hits++
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}

type ledger struct {
	mu sync.Mutex
	n  int
}

// Mixed locks the write in one goroutine but not in the other: the lock
// only synchronizes accesses that both hold it.
func Mixed(l *ledger, done chan struct{}) {
	go func() {
		l.mu.Lock()
		l.n++ // want `data race: l.n is written by this goroutine \(spawned at line \d+\) and written by the goroutine spawned at line \d+`
		l.mu.Unlock()
		done <- struct{}{}
	}()
	go func() {
		l.n++
		done <- struct{}{}
	}()
	<-done
	<-done
}

// Peek reads the accumulator before wg.Wait: the goroutine may still be
// writing when the read happens.
func Peek(xs []int) int {
	var sum int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, x := range xs {
			sum += x
		}
	}()
	early := sum // want `data race: sum is read here while the goroutine spawned at line \d+ is still running and writes it`
	wg.Wait()
	return early + sum
}

// LocalOnce declares the Once inside the goroutine body: every instance
// owns a fresh Once, so each callback runs — the Once orders nothing
// between siblings and the captured counter races.
func LocalOnce(tasks []int, done chan struct{}) int {
	var total int
	for range tasks {
		go func() {
			var once sync.Once
			once.Do(func() {
				total++ // want `data race: total is written concurrently by every instance of the goroutine spawned at line \d+`
			})
			done <- struct{}{}
		}()
	}
	for range tasks {
		<-done
	}
	return total
}
