// Package errflow defines a module-wide analyzer for errors that
// vanish. A routing run that swallows an error keeps going with a
// half-written arena or a stale plan, and the failure surfaces later as
// a wrong answer instead of a message.
//
// The interprocedural foundation is a may-return-non-nil-error summary
// per function, computed bottom-up over the whole-module call graph: a
// function mayErr if any return statement puts something other than the
// literal nil in the error slot — where a forwarded first-party call
// contributes its callee's summary (across packages), and a call to
// code outside the module is conservatively assumed fallible. A helper
// that always returns nil is therefore safe to ignore everywhere, even
// through two hops of forwarding.
//
// Findings:
//
//   - silently discarded error: an expression statement calls a
//     first-party function that mayErr. An explicit `_ = f()` is a
//     deliberate, reviewable discard and is not flagged; the bare call
//     is invisible in review. This finding carries a machine-applicable
//     suggested fix that inserts the explicit `_ = ` (or `_, _ = `,
//     matching the result count) — `stitchvet -fix` applies it.
//   - shadowed error variable: an inner `:=` declares an error variable
//     with the same name as one in an enclosing scope, and the OUTER
//     variable is read after the inner scope closes — the classic bug
//     where the inner assignment was meant to reach the outer return.
//   - error dropped at a goroutine boundary: `go f()` where f mayErr;
//     the goroutine has no caller, so nothing can observe the failure.
//
// Deferred calls are exempt from the discard check (`defer f.Close()`
// is idiomatic; flagging it would bury the real findings).
package errflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/callgraph"
)

// Analyzer reports discarded, shadowed, and goroutine-dropped errors,
// with suggested fixes for the discard case.
var Analyzer = &analysis.Analyzer{
	Name:    "errflow",
	Version: 1,
	Doc: "report silently discarded errors, shadowed error variables, and errors dropped at goroutine boundaries, using whole-module may-error summaries\n\n" +
		"A swallowed error turns a failed run into a silently wrong one; the summary-based check knows which helpers can actually fail, across packages.",
	RunModule: runModule,
}

func runModule(mp *analysis.ModulePass) error {
	may := computeMayErr(mp.Graph)

	ids := make([]string, 0, len(mp.Graph.Nodes))
	for id := range mp.Graph.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := mp.Graph.Nodes[id]
		if n.Body() == nil || !mp.Match(n.Pkg.PkgPath) {
			continue
		}
		checkDiscards(mp, n, may)
		checkShadows(mp, n)
	}
	return nil
}

// ---- the may-error summary ----

// computeMayErr records, for every function whose last result is error,
// whether some return can put a non-nil value there.
func computeMayErr(g *callgraph.Graph) map[string]bool {
	may := map[string]bool{}
	for _, scc := range g.SCCs {
		for pass := 0; pass <= len(scc); pass++ {
			changed := false
			for _, n := range scc {
				if n.Body() == nil || !returnsError(n) {
					continue
				}
				if may[n.ID] {
					continue
				}
				if mayReturnNonNil(n, may) {
					may[n.ID] = true
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return may
}

// errorSlot returns the index of the trailing error result, or -1.
func errorSlot(sig *types.Signature) int {
	res := sig.Results()
	if res.Len() == 0 {
		return -1
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return -1
	}
	return res.Len() - 1
}

func signatureOf(n *callgraph.Node) *types.Signature {
	if n.Func == nil {
		return nil
	}
	sig, _ := n.Func.Type().(*types.Signature)
	return sig
}

func returnsError(n *callgraph.Node) bool {
	sig := signatureOf(n)
	return sig != nil && errorSlot(sig) >= 0
}

// mayReturnNonNil inspects every return statement's error slot. Named
// results with a bare `return` are conservatively fallible (the named
// error may have been assigned anywhere above).
func mayReturnNonNil(n *callgraph.Node, may map[string]bool) bool {
	sig := signatureOf(n)
	slot := errorSlot(sig)
	found := false
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		if found {
			return false
		}
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := nd.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			found = true // bare return with named results
			return false
		}
		var e ast.Expr
		if len(ret.Results) == sig.Results().Len() {
			e = ast.Unparen(ret.Results[slot])
		} else if len(ret.Results) == 1 {
			// return f() forwarding a multi-result call.
			e = ast.Unparen(ret.Results[0])
		}
		if e == nil {
			return true
		}
		switch e := e.(type) {
		case *ast.Ident:
			if e.Name == "nil" {
				return true // this return is clean; keep looking
			}
			found = true
		case *ast.CallExpr:
			if callee := n.Sites[e]; callee != nil {
				if returnsError(callee) && !may[callee.ID] {
					return true // forwarded callee is known-clean
				}
				found = true
			} else {
				found = true // external or unresolved: assume fallible
			}
		default:
			found = true
		}
		return !found
	})
	return found
}

// ---- discarded + goroutine-dropped errors ----

func checkDiscards(mp *analysis.ModulePass, n *callgraph.Node, may map[string]bool) {
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.FuncLit:
			return false // its own node
		case *ast.DeferStmt:
			return false // deferred discards are idiomatic
		case *ast.GoStmt:
			// Spawned callees are not call edges; match the launch site.
			for _, sp := range n.Spawns {
				if sp.Pos == s.Pos() && returnsError(sp.Callee) && may[sp.Callee.ID] {
					mp.Reportf(s.Pos(), "error result of %s is dropped at the goroutine boundary; no caller can observe the failure — send it on a channel or log it in the goroutine",
						shortID(sp.Callee.ID))
				}
			}
			return false
		case *ast.ExprStmt:
			call, ok := ast.Unparen(s.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := resolvedFallible(n, may, call)
			if callee == nil {
				return true
			}
			sig := signatureOf(callee)
			mp.Report(analysis.Diagnostic{
				Pos: s.Pos(),
				Message: fmt.Sprintf("error result of %s is silently discarded; handle it or make the discard explicit",
					shortID(callee.ID)),
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: "make the discard explicit",
					TextEdits: []analysis.TextEdit{{
						Pos:     s.Pos(),
						End:     s.Pos(),
						NewText: []byte(discardPrefix(sig)),
					}},
				}},
			})
			return true
		}
		return true
	})
}

// resolvedFallible returns the call's resolved first-party callee when
// that callee may return a non-nil error, else nil.
func resolvedFallible(n *callgraph.Node, may map[string]bool, call *ast.CallExpr) *callgraph.Node {
	callee := n.Sites[call]
	if callee == nil || !returnsError(callee) || !may[callee.ID] {
		return nil
	}
	return callee
}

// discardPrefix renders the blank assignment matching the callee's
// result count: "_ = " or "_, _ = ".
func discardPrefix(sig *types.Signature) string {
	s := "_"
	for i := 1; i < sig.Results().Len(); i++ {
		s += ", _"
	}
	return s + " = "
}

// ---- shadowed error variables ----

// checkShadows reports an inner := redeclaring an error variable whose
// outer namesake is still read after the inner scope ends. The flag is
// deliberately precise about the bug shape — `err :=` where `err =` was
// meant — and exempts the idioms that merely LOOK like shadowing:
//
//   - declarations in if/for/switch init clauses and range/comm clauses
//     (`if err := f(); err != nil` is the canonical handled error);
//   - declarations inside a statement list that ends in a terminating
//     statement (the block leaves the function, so the outer variable's
//     later reads are on a disjoint path);
//   - function-literal bodies (a closure's err has its own lifetime;
//     the literal is its own call-graph node);
//   - later writes to the outer variable do not count as "read again":
//     only a genuine read of the stale outer value makes the shadow a
//     bug.
func checkShadows(mp *analysis.ModulePass, n *callgraph.Node) {
	info := n.Pkg.TypesInfo
	// Every error-typed declaration (function literals excluded) is a
	// potential OUTER victim; only block-level declarations in a
	// non-terminating statement list are eligible as the INNER culprit.
	type decl struct {
		obj *types.Var
		id  *ast.Ident
	}
	var outers []decl
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := nd.(*ast.Ident); ok {
			if v, isVar := info.Defs[id].(*types.Var); isVar && isErrorType(v.Type()) {
				outers = append(outers, decl{v, id})
			}
		}
		return true
	})

	var decls []decl
	collect := func(s ast.Stmt, terminating bool) {
		as, ok := s.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || terminating {
			return
		}
		for _, lhs := range as.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent {
				continue
			}
			if v, isVar := info.Defs[id].(*types.Var); isVar && isErrorType(v.Type()) {
				decls = append(decls, decl{v, id})
			}
		}
	}
	var walk func(list []ast.Stmt)
	walk = func(list []ast.Stmt) {
		terminating := len(list) > 0 && isTerminal(list[len(list)-1])
		for _, s := range list {
			for {
				ls, ok := s.(*ast.LabeledStmt)
				if !ok {
					break
				}
				s = ls.Stmt
			}
			collect(s, terminating)
			switch s := s.(type) {
			case *ast.BlockStmt:
				walk(s.List)
			case *ast.IfStmt:
				// s.Init is the exempt idiom; only the branches count.
				walk(s.Body.List)
				if s.Else != nil {
					walk([]ast.Stmt{s.Else})
				}
			case *ast.ForStmt:
				walk(s.Body.List)
			case *ast.RangeStmt:
				walk(s.Body.List)
			case *ast.SwitchStmt:
				for _, cl := range s.Body.List {
					if cc, ok := cl.(*ast.CaseClause); ok {
						walk(cc.Body)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, cl := range s.Body.List {
					if cc, ok := cl.(*ast.CaseClause); ok {
						walk(cc.Body)
					}
				}
			case *ast.SelectStmt:
				for _, cl := range s.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						walk(cc.Body)
					}
				}
				// Defer/Go statements and expressions (function literals
				// included) cannot contain block-level declarations.
			}
		}
	}
	walk(n.Body().List)

	writes := assignTargets(n.Body())
	for _, inner := range decls {
		innerScope := inner.obj.Parent()
		if innerScope == nil {
			continue
		}
		for _, cand := range outers {
			if cand.obj == inner.obj || cand.obj.Name() != inner.obj.Name() {
				continue
			}
			outerScope := cand.obj.Parent()
			if outerScope == nil || outerScope == innerScope {
				continue
			}
			// cand must enclose inner, textually and scope-wise.
			if cand.obj.Pos() >= inner.obj.Pos() || !outerScope.Contains(inner.obj.Pos()) {
				continue
			}
			if readAfter(info, cand.obj, innerScope.End(), writes) {
				mp.Reportf(inner.id.Pos(),
					"%s shadows the error variable declared at line %d, which is read again after this block; the error assigned here can never reach it",
					inner.obj.Name(), mp.Fset.Position(cand.obj.Pos()).Line)
				break
			}
		}
	}
}

// isTerminal reports whether a statement unconditionally leaves the
// enclosing statement list.
func isTerminal(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// assignTargets collects the identifiers that are assignment targets:
// being (re)written later is not "reading the stale outer value".
func assignTargets(body ast.Node) map[*ast.Ident]bool {
	writes := map[*ast.Ident]bool{}
	ast.Inspect(body, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, isIdent := lhs.(*ast.Ident); isIdent {
				writes[id] = true
			}
		}
		return true
	})
	return writes
}

// readAfter reports whether the FIRST use of obj after the given
// position is a read: if the variable is rewritten before it is next
// read, the stale value from before the shadowing block is never
// observable and the shadow is harmless.
func readAfter(info *types.Info, obj *types.Var, after token.Pos, writes map[*ast.Ident]bool) bool {
	var first *ast.Ident
	for id, used := range info.Uses {
		if used == obj && id.Pos() > after && (first == nil || id.Pos() < first.Pos()) {
			first = id
		}
	}
	return first != nil && !writes[first]
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

var pathSeg = regexp.MustCompile(`[\w.~-]+/`)

func shortID(id string) string {
	return pathSeg.ReplaceAllString(id, "")
}
