// Package wrap forwards inner's errors without creating any of its
// own: whether a wrap function can fail is decided one package down.
package wrap

import "stitchroute/internal/analysis/errflow/testdata/mod/inner"

// Forward may fail — but only because inner.Fail may.
func Forward() error {
	return inner.Fail()
}

// Quiet forwards a function that never fails: discarding its result is
// fine, and only the cross-package summary knows that.
func Quiet() error {
	return inner.OK()
}

// Both forwards a multi-result fallible call.
func Both(k int) (int, error) {
	return inner.Load(k)
}
