// Package app drops errors. Every judgement here needs the two-hop
// summary: whether wrap.Forward or wrap.Quiet can actually fail is
// decided in package inner, two call-graph hops away.
package app

import "stitchroute/internal/analysis/errflow/testdata/mod/wrap"

func discards(k int) {
	wrap.Forward() // want `error result of wrap\.Forward is silently discarded`
	wrap.Quiet()
	_ = wrap.Forward()
	wrap.Both(k) // want `error result of wrap\.Both is silently discarded`
}

func deferred() {
	defer wrap.Forward()
}

func spawned() {
	go wrap.Forward() // want `error result of wrap\.Forward is dropped at the goroutine boundary`
}

// shadowed: the inner := can never reach the outer return.
func shadowed(k int) error {
	err := wrap.Forward()
	if k > 0 {
		err := wrap.Forward() // want `err shadows the error variable declared at line \d+`
		if err != nil {
			k++
		}
	}
	return err
}

// idiom: the if-scoped err shadows nothing that is read later.
func idiom() error {
	if err := wrap.Forward(); err != nil {
		return err
	}
	return nil
}

// lastUse: the outer err is never read after the inner block, so the
// shadowing is harmless.
func lastUse() error {
	err := wrap.Forward()
	if err != nil {
		return err
	}
	{
		err := wrap.Forward()
		if err != nil {
			return err
		}
	}
	return nil
}
