// Package inner is the error origin: the bottom of the two-hop chain.
package inner

import "errors"

// Fail can return a non-nil error.
func Fail() error {
	return errors.New("boom")
}

// OK returns error in its signature but can never produce one.
func OK() error {
	return nil
}

// Load returns a value and may fail.
func Load(k int) (int, error) {
	if k < 0 {
		return 0, errors.New("negative")
	}
	return k, nil
}
