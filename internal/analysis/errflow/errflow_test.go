package errflow_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/errflow"
)

// TestModule drives the fixture module where error origins are two
// cross-package hops below the drop sites (app → wrap → inner): the
// must-NOT-flag cases (wrap.Quiet can never fail) need the summary as
// much as the must-flag ones.
func TestModule(t *testing.T) {
	analyzertest.RunModule(t, errflow.Analyzer,
		"./testdata/mod/inner",
		"./testdata/mod/wrap",
		"./testdata/mod/app",
	)
}
