// Package ctxflow defines an analyzer that keeps cancellation flowing
// through the router call graph.
//
// Context enters this program only through the ctx-taking entry points
// (core.RouteContext, global.RouteAllContext, detail.RunContext, the
// server handlers), so any function with a context.Context parameter is
// on the cancellation graph by construction. Inside such a function two
// patterns silently sever cancellation:
//
//  1. manufacturing a fresh context with context.Background() or
//     context.TODO() instead of threading the parameter, and
//  2. calling Foo(...) when a ctx-aware sibling FooContext(ctx, ...)
//     exists — the classic way a deadline stops propagating after a
//     refactor adds *Context variants.
//
// Both cost the job server its ability to cancel long reroutes, which is
// load-bearing: DELETE /v1/jobs and shutdown drain depend on every
// routing stage honoring ctx.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"stitchroute/internal/analysis"
)

// Analyzer flags severed context propagation in ctx-taking functions.
var Analyzer = &analysis.Analyzer{
	Name:    "ctxflow",
	Version: 1,
	Doc: "flag ctx-taking functions that detach from their context\n\n" +
		"Functions that accept a context.Context must thread it: calling context.Background()/TODO(), or calling Foo when FooContext exists, silently breaks cancellation of long reroutes.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxName := contextParam(pass, fn)
			if ctxName == "" {
				continue
			}
			checkBody(pass, fn, ctxName)
		}
	}
	return nil, nil
}

// contextParam returns the name of fn's first context.Context parameter,
// or "" if it has none.
func contextParam(pass *analysis.Pass, fn *ast.FuncDecl) string {
	if fn.Type.Params == nil {
		return ""
	}
	for _, field := range fn.Type.Params.List {
		if t := pass.TypeOf(field.Type); t != nil && isContextType(t) {
			if len(field.Names) > 0 {
				return field.Names[0].Name
			}
			return "_"
		}
	}
	return ""
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl, ctxName string) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return true
		}
		if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "context" &&
			(callee.Name() == "Background" || callee.Name() == "TODO") {
			pass.Reportf(call.Pos(),
				"%s has a context parameter %s but calls context.%s, detaching this call tree from cancellation",
				fn.Name.Name, ctxName, callee.Name())
			return true
		}
		reportDroppedVariant(pass, fn, ctxName, call, callee)
		return true
	})
}

// reportDroppedVariant flags calls to Foo when a FooContext sibling with a
// leading context.Context parameter exists and the callee itself takes no
// context.
func reportDroppedVariant(pass *analysis.Pass, fn *ast.FuncDecl, ctxName string, call *ast.CallExpr, callee *types.Func) {
	name := callee.Name()
	if strings.HasSuffix(name, "Context") {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || takesContext(sig) {
		return
	}
	variant := lookupVariant(pass, callee, name+"Context")
	if variant == nil {
		return
	}
	vsig, ok := variant.Type().(*types.Signature)
	if !ok || !takesContext(vsig) {
		return
	}
	// Unexported variants in another package are not callable here.
	if !variant.Exported() && variant.Pkg() != pass.Pkg {
		return
	}
	pass.Reportf(call.Pos(),
		"%s drops its context %s calling %s; ctx-aware variant %s exists",
		fn.Name.Name, ctxName, name, variant.Name())
}

// lookupVariant finds a function or method named variantName alongside
// callee: in the method set of callee's receiver for methods, in the
// package scope for package-level functions.
func lookupVariant(pass *analysis.Pass, callee *types.Func, variantName string) *types.Func {
	sig := callee.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, callee.Pkg(), variantName)
		if f, ok := obj.(*types.Func); ok {
			return f
		}
		return nil
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return nil
	}
	if f, ok := pkg.Scope().Lookup(variantName).(*types.Func); ok {
		return f
	}
	return nil
}

func takesContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}
