package ctxflow_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/ctxflow"
)

func TestAnalyzer(t *testing.T) {
	analyzertest.Run(t, "../testdata", ctxflow.Analyzer, "ctxflow")
}
