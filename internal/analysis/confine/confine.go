// Package confine defines a goroutine-confinement escape analyzer.
//
// The router's parallel stages hand each worker goroutine private
// scratch — searchCtx arenas, write overlays, stamped visit tables —
// allocated once per worker and reused across loop iterations. The
// speed of that pattern comes from never publishing the scratch: the
// moment a reference to it flows into a results channel, a shared
// struct field, or a closure captured by a later spawn, some other
// goroutine aliases memory the worker keeps overwriting, and results
// silently decay as iterations proceed.
//
// The analyzer enforces two confinement rules over the call graph's
// Spawns edges, using interprocedural escape summaries (see
// callgraph.EscapeSummaries) so a leak through a callee is caught at
// the call site:
//
// Rule 1 (worker interior): inside a spawned goroutine, a value with a
// fresh per-goroutine allocation (a local built from &T{}/new/make or a
// Fresh callee, or a parameter every spawn site passes a fresh argument
// for) that is mutated by the goroutine must not escape from a loop
// deeper than its allocation: a channel send, a store to shared memory,
// a publishing callee, or capture by a nested spawn inside the loop
// hands out one reference per iteration to scratch that is reused on
// the next.
//
// Rule 2 (spawner side): a fresh local handed to a goroutine that
// mutates it must be per-spawn: allocating it outside the spawn loop
// shares one allocation between all workers; handing it to two spawns,
// or additionally publishing it to shared memory, aliases memory a
// goroutine is writing.
//
// Per-iteration allocations sent exactly once are ownership transfer
// and stay clean, as does handing read-only configuration to many
// goroutines (no mutation, no finding). Unresolved callees are treated
// as non-escaping — the analyzer prefers silence to unknown-callee
// noise; the callgraph's devirtualization keeps single-implementation
// interface calls resolved.
package confine

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/callgraph"
)

// Analyzer flags worker-goroutine scratch escaping its goroutine.
var Analyzer = &analysis.Analyzer{
	Name:    "confine",
	Version: 1,
	Doc: "flag goroutine-confined scratch (arenas, overlays, per-worker buffers) escaping via channels, shared fields, publishing callees, or later spawns\n\n" +
		"A worker's reused allocation that leaks by reference is aliased by other goroutines while the worker keeps overwriting it; per-iteration handoffs and read-only sharing stay clean.",
	RunModule: runModule,
}

func runModule(mp *analysis.ModulePass) error {
	g := mp.Graph
	sums := callgraph.EscapeSummaries(g)

	// Deterministic node order: reports must not depend on map
	// iteration.
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Spawn sites per callee, for parameter candidacy in Rule 1.
	sites := map[*callgraph.Node][]spawnSite{}
	for _, id := range ids {
		n := g.Nodes[id]
		for _, sp := range n.Spawns {
			if sp.Stmt != nil {
				sites[sp.Callee] = append(sites[sp.Callee], spawnSite{spawner: n, stmt: sp.Stmt})
			}
		}
	}

	for _, id := range ids {
		n := g.Nodes[id]
		if n.Body() == nil {
			continue
		}
		if len(sites[n]) > 0 {
			checkWorker(mp, g, sums, n, sites[n])
		}
		if len(n.Spawns) > 0 {
			checkSpawner(mp, g, sums, n)
		}
	}
	return nil
}

type spawnSite struct {
	spawner *callgraph.Node
	stmt    *ast.GoStmt
}

// candidate is one confinement-tracked allocation.
type candidate struct {
	obj     *types.Var
	depth   int // loop depth of the allocation (params: 0)
	pos     token.Pos
	mutated bool
	// reported dedupes Rule 1 findings per escape kind.
	reported map[string]bool
}

// walker carries the per-function state shared by both rules.
type walker struct {
	mp    *analysis.ModulePass
	g     *callgraph.Graph
	rt    *callgraph.RefTracker
	node  *callgraph.Node
	cands []*candidate
	// body span: objects declared outside it are shared with the
	// spawner (captured variables, non-candidate parameters, receiver).
	bodyPos, bodyEnd token.Pos
}

func newWalker(mp *analysis.ModulePass, g *callgraph.Graph, sums map[string]*callgraph.EscapeSummary, n *callgraph.Node) *walker {
	body := n.Body()
	return &walker{
		mp:      mp,
		g:       g,
		rt:      &callgraph.RefTracker{Node: n, Sums: sums, Tracked: map[types.Object]int{}},
		node:    n,
		bodyPos: body.Pos(),
		bodyEnd: body.End(),
	}
}

func (w *walker) addCandidate(obj *types.Var, depth int, pos token.Pos) *candidate {
	c := &candidate{obj: obj, depth: depth, pos: pos, reported: map[string]bool{}}
	w.rt.Tracked[obj] = len(w.cands)
	w.cands = append(w.cands, c)
	return c
}

func (w *walker) line(pos token.Pos) int { return w.mp.Fset.Position(pos).Line }

// collect walks the body once, registering fresh locals as candidates
// and derived locals (path := arena.solve(t), v := arena) as aliases of
// the candidate their value references.
func (w *walker) collect() {
	walkDepth(w.node.Body(), 0, func(nd ast.Node, depth int) {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			// Only definitions introduce candidates or aliases: a plain
			// `=` to an existing variable (lastArena = a) is a store —
			// possibly an escape — not a new name for the value.
			if nd.Tok != token.DEFINE || len(nd.Lhs) != len(nd.Rhs) {
				return
			}
			for i, lhs := range nd.Lhs {
				w.collectDef(lhs, nd.Rhs[i], depth)
			}
		case *ast.DeclStmt:
			gd, ok := nd.Decl.(*ast.GenDecl)
			if !ok {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					w.collectDef(name, vs.Values[i], depth)
				}
			}
		}
	})
}

func (w *walker) collectDef(lhs, rhs ast.Expr, depth int) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj, ok := w.node.Pkg.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || !callgraph.IsRefCarrying(obj.Type()) {
		return
	}
	if _, tracked := w.rt.Tracked[obj]; tracked {
		return
	}
	// Alias before freshness: a fresh composite whose payload
	// references a candidate (res := &Result{Buf: arena.buf}) is still
	// the arena's memory.
	if uses := w.rt.Uses(rhs); len(uses) == 1 {
		w.rt.Tracked[obj] = uses[0]
		return
	}
	if w.rt.FreshExpr(rhs) {
		w.addCandidate(obj, depth, id.Pos())
	}
}

// walkDepth visits every node in the body with its enclosing loop depth
// relative to the body. Nested function literal bodies are NOT entered:
// their statements belong to the literal's own call-graph node (spawn
// sites still see the go statement itself, and capture effects are
// resolved through capturesObj/mutatesCaptured).
func walkDepth(body *ast.BlockStmt, base int, f func(ast.Node, int)) {
	depth := base
	var visit func(ast.Node) bool
	visit = func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.ForStmt:
			f(nd, depth)
			if s.Init != nil {
				ast.Inspect(s.Init, visit)
			}
			if s.Cond != nil {
				ast.Inspect(s.Cond, visit)
			}
			if s.Post != nil {
				ast.Inspect(s.Post, visit)
			}
			depth++
			ast.Inspect(s.Body, visit)
			depth--
			return false
		case *ast.RangeStmt:
			f(nd, depth)
			ast.Inspect(s.X, visit)
			depth++
			ast.Inspect(s.Body, visit)
			depth--
			return false
		case *ast.FuncLit:
			f(nd, depth)
			return false
		case nil:
			return true
		}
		f(nd, depth)
		return true
	}
	ast.Inspect(body, visit)
}

// markMutations records which candidates the function writes through —
// directly or via a callee's Mutated parameter.
func (w *walker) markMutations() {
	sums := w.rt.Sums
	ast.Inspect(w.node.Body(), func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range nd.Lhs {
				if i, ok := w.rt.IndexOf(callgraph.BaseOfStore(lhs)); ok {
					w.cands[i].mutated = true
				}
			}
		case *ast.IncDecStmt:
			if i, ok := w.rt.IndexOf(callgraph.BaseOfStore(nd.X)); ok {
				w.cands[i].mutated = true
			}
		case *ast.CallExpr:
			callee := w.node.Sites[nd]
			if callee == nil {
				return true
			}
			sum := sums[callee.ID]
			if sum == nil {
				return true
			}
			for j, a := range callgraph.EffectiveArgs(nd, callee) {
				if a == nil || j >= len(sum.Mutated) || !sum.Mutated[j] {
					continue
				}
				if id := callgraph.BaseIdent(a); id != nil {
					if i, ok := w.rt.IndexOf(id); ok {
						w.cands[i].mutated = true
					}
				}
			}
		}
		return true
	})
}

// sharedBase reports whether a store through base publishes to memory
// the spawner (or other goroutines) can reach: a package-level
// variable, a struct field, or anything declared outside this
// function's body — captured variables, non-candidate parameters, the
// receiver.
func (w *walker) sharedBase(base *ast.Ident) bool {
	if base == nil {
		return false
	}
	obj := w.node.Pkg.TypesInfo.ObjectOf(base)
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if _, tracked := w.rt.Tracked[obj]; tracked {
		return false // candidate or alias: goroutine-private
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return true
	}
	if v.IsField() {
		return true
	}
	return v.Pos() < w.bodyPos || v.Pos() > w.bodyEnd
}

// escapeRec is one potential Rule 1 violation, resolved after mutation
// facts are complete.
type escapeRec struct {
	cand  int
	depth int
	pos   token.Pos
	kind  string
	via   string
}

// checkWorker applies Rule 1 to a spawned goroutine's body.
func checkWorker(mp *analysis.ModulePass, g *callgraph.Graph, sums map[string]*callgraph.EscapeSummary, n *callgraph.Node, spawnedAt []spawnSite) {
	w := newWalker(mp, g, sums, n)

	// Parameters are per-goroutine scratch when every spawn site passes
	// a freshly allocated argument (the sched-style `go worker(sc)`
	// with sc := newSearchCtx()).
	params := callgraph.ParamObjects(n)
	for j, p := range params {
		if p == nil || !callgraph.IsRefCarrying(p.Type()) {
			continue
		}
		freshEverywhere := true
		for _, site := range spawnedAt {
			args := callgraph.EffectiveArgs(site.stmt.Call, n)
			if j >= len(args) || args[j] == nil || !freshAtSpawner(site.spawner, sums, args[j]) {
				freshEverywhere = false
				break
			}
		}
		if freshEverywhere {
			w.addCandidate(p, 0, p.Pos())
		}
	}

	// A literal that captures a spawner-fresh local allocated at the
	// spawn's own loop depth owns that allocation: the spawner made it
	// for this goroutine (`a := newArena(); go func() { ...a... }()`).
	// A capture allocated OUTSIDE the spawn loop is shared between
	// workers — that is Rule 2's finding, not a confined candidate.
	if n.Lit != nil && len(spawnedAt) == 1 {
		sp := spawnedAt[0]
		for _, v := range capturedVars(n.Lit, n.Pkg.TypesInfo) {
			if _, dup := w.rt.Tracked[v]; dup {
				continue
			}
			if freshLocalObj(sp.spawner, sums, v) && sameDepthAsSpawn(sp.spawner, v, sp.stmt) {
				w.addCandidate(v, 0, v.Pos())
			}
		}
	}

	w.collect()
	w.markMutations()

	var recs []escapeRec
	record := func(uses []int, depth int, pos token.Pos, kind, via string) {
		for _, i := range uses {
			recs = append(recs, escapeRec{cand: i, depth: depth, pos: pos, kind: kind, via: via})
		}
	}

	walkDepth(n.Body(), 0, func(nd ast.Node, depth int) {
		switch nd := nd.(type) {
		case *ast.SendStmt:
			record(w.rt.Uses(nd.Value), depth, nd.Arrow, "send", "")
		case *ast.AssignStmt:
			for i, lhs := range nd.Lhs {
				var rhs ast.Expr
				if len(nd.Rhs) == len(nd.Lhs) {
					rhs = nd.Rhs[i]
				} else if len(nd.Rhs) == 1 {
					rhs = nd.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				base := storeTargetBase(lhs)
				if base == nil || !w.sharedBase(base) {
					continue
				}
				record(w.rt.Uses(rhs), depth, nd.Pos(), "store", base.Name)
			}
		case *ast.CallExpr:
			callee := n.Sites[nd]
			if callee == nil {
				return
			}
			sum := sums[callee.ID]
			if sum == nil {
				return
			}
			for j, a := range callgraph.EffectiveArgs(nd, callee) {
				if a == nil || j >= len(sum.Escaping) || !sum.Escaping[j] {
					continue
				}
				record(w.rt.Uses(a), depth, a.Pos(), "call", shortID(callee.ID))
			}
		case *ast.GoStmt:
			for _, a := range nd.Call.Args {
				record(w.rt.Uses(a), depth, nd.Pos(), "respawn", "")
			}
			if lit, ok := ast.Unparen(nd.Call.Fun).(*ast.FuncLit); ok {
				for i, c := range w.cands {
					if capturesObj(lit, n.Pkg.TypesInfo, c.obj) {
						recs = append(recs, escapeRec{cand: i, depth: depth, pos: nd.Pos(), kind: "respawn"})
					}
				}
			}
		}
	})

	for _, r := range recs {
		c := w.cands[r.cand]
		if !c.mutated || r.depth <= c.depth || c.reported[r.kind] {
			continue
		}
		if !mp.Match(n.Pkg.PkgPath) {
			continue
		}
		c.reported[r.kind] = true
		name := c.obj.Name()
		alloc := w.line(c.pos)
		switch r.kind {
		case "send":
			mp.Reportf(r.pos, "goroutine-confined %s leaks by reference through a channel send inside the worker loop: it is allocated once per goroutine (line %d) and mutated across iterations, so every receiver aliases scratch this goroutine keeps reusing", name, alloc)
		case "store":
			mp.Reportf(r.pos, "goroutine-confined %s escapes into shared memory through %s inside the worker loop: it is allocated once per goroutine (line %d) and mutated across iterations, so other goroutines alias scratch this one keeps reusing", name, r.via, alloc)
		case "call":
			mp.Reportf(r.pos, "goroutine-confined %s escapes through %s, which publishes its argument, inside the worker loop: it is allocated once per goroutine (line %d) and mutated across iterations", name, r.via, alloc)
		case "respawn":
			mp.Reportf(r.pos, "goroutine-confined %s is handed to a goroutine spawned inside the worker loop: it is allocated once (line %d) and mutated across iterations, so successive spawns share live scratch", name, alloc)
		}
	}
}

// checkSpawner applies Rule 2 to a function that launches goroutines.
func checkSpawner(mp *analysis.ModulePass, g *callgraph.Graph, sums map[string]*callgraph.EscapeSummary, n *callgraph.Node) {
	w := newWalker(mp, g, sums, n)
	w.collect()

	spawnByStmt := map[*ast.GoStmt]*callgraph.Node{}
	for _, sp := range n.Spawns {
		if sp.Stmt != nil {
			spawnByStmt[sp.Stmt] = sp.Callee
		}
	}

	type handoff struct {
		stmt    *ast.GoStmt
		depth   int
		mutated bool
	}
	type pub struct {
		pos  token.Pos
		kind string
		via  string
	}
	hand := map[int][]handoff{}
	pubs := map[int][]pub{}
	info := n.Pkg.TypesInfo

	walkDepth(n.Body(), 0, func(nd ast.Node, depth int) {
		switch nd := nd.(type) {
		case *ast.GoStmt:
			callee := spawnByStmt[nd]
			var sum *callgraph.EscapeSummary
			if callee != nil {
				sum = sums[callee.ID]
			}
			for j, a := range callgraph.EffectiveArgs(nd.Call, callee) {
				if a == nil {
					continue
				}
				mut := sum != nil && j < len(sum.Mutated) && sum.Mutated[j]
				for _, i := range w.rt.Uses(a) {
					hand[i] = append(hand[i], handoff{stmt: nd, depth: depth, mutated: mut})
				}
			}
			if lit, ok := ast.Unparen(nd.Call.Fun).(*ast.FuncLit); ok {
				for i, c := range w.cands {
					if !capturesObj(lit, info, c.obj) {
						continue
					}
					hand[i] = append(hand[i], handoff{stmt: nd, depth: depth, mutated: capturedMutated(callee, sums, lit, info, c.obj)})
				}
			}
		case *ast.SendStmt:
			for _, i := range w.rt.Uses(nd.Value) {
				pubs[i] = append(pubs[i], pub{pos: nd.Arrow, kind: "send"})
			}
		case *ast.AssignStmt:
			for i, lhs := range nd.Lhs {
				var rhs ast.Expr
				if len(nd.Rhs) == len(nd.Lhs) {
					rhs = nd.Rhs[i]
				} else if len(nd.Rhs) == 1 {
					rhs = nd.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				base := storeTargetBase(lhs)
				if base == nil || !w.sharedBase(base) {
					continue
				}
				for _, u := range w.rt.Uses(rhs) {
					pubs[u] = append(pubs[u], pub{pos: nd.Pos(), kind: "store", via: base.Name})
				}
			}
		case *ast.CallExpr:
			callee := n.Sites[nd]
			if callee == nil {
				return
			}
			sum := sums[callee.ID]
			if sum == nil {
				return
			}
			for j, a := range callgraph.EffectiveArgs(nd, callee) {
				if a == nil || j >= len(sum.Escaping) || !sum.Escaping[j] {
					continue
				}
				for _, u := range w.rt.Uses(a) {
					pubs[u] = append(pubs[u], pub{pos: a.Pos(), kind: "call", via: shortID(callee.ID)})
				}
			}
		}
	})

	if !mp.Match(n.Pkg.PkgPath) {
		return
	}
	for i, c := range w.cands {
		hs := hand[i]
		if len(hs) == 0 {
			continue
		}
		anyMut := false
		for _, h := range hs {
			if h.mutated {
				anyMut = true
			}
		}
		if !anyMut {
			continue // read-only sharing (configuration) is fine
		}
		name := c.obj.Name()
		// One allocation feeding a loop of spawns: all workers share it.
		// Only when the spawner drops the value after spawning — scratch
		// has no other owner. A value the spawner keeps using (a server
		// handed to its worker pool, a result slice read after the join)
		// is deliberately shared state, synchronized by other means.
		for _, h := range hs {
			if h.depth > c.depth && !usedAfterLoop(n, c.obj, h.stmt) {
				mp.Reportf(h.stmt.Pos(), "per-worker scratch %s is allocated once outside the spawn loop (line %d) but every goroutine spawned here mutates it: workers share one allocation; allocate it per spawn", name, w.line(c.pos))
				break
			}
		}
		// The same allocation handed to two distinct spawns.
		for k := 1; k < len(hs); k++ {
			if hs[k].stmt != hs[0].stmt {
				mp.Reportf(hs[k].stmt.Pos(), "scratch %s is handed to a second goroutine (first spawned at line %d) and mutated: the two goroutines race on one allocation", name, w.line(hs[0].stmt.Pos()))
				break
			}
		}
		// Handed to a goroutine and also published.
		if ps := pubs[i]; len(ps) > 0 {
			p := ps[0]
			switch p.kind {
			case "send":
				mp.Reportf(p.pos, "scratch %s is handed to the goroutine spawned at line %d and also sent on a channel: the receiver aliases memory that goroutine mutates", name, w.line(hs[0].stmt.Pos()))
			case "store":
				mp.Reportf(p.pos, "scratch %s is handed to the goroutine spawned at line %d and also stored into shared memory through %s: other code aliases memory that goroutine mutates", name, w.line(hs[0].stmt.Pos()), p.via)
			case "call":
				mp.Reportf(p.pos, "scratch %s is handed to the goroutine spawned at line %d and also published by %s: other code aliases memory that goroutine mutates", name, w.line(hs[0].stmt.Pos()), p.via)
			}
		}
	}
}

// storeTargetBase returns the base identifier of an lvalue that writes
// through memory (v.f, v[i], *v, chains thereof); plain identifier
// stores return the identifier itself when it rebinds a variable that
// others may reach (package-level), else nil.
func storeTargetBase(lhs ast.Expr) *ast.Ident {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return callgraph.BaseIdent(l.(ast.Expr))
	case *ast.Ident:
		return l
	}
	return nil
}

// capturesObj reports whether the literal's body references obj.
func capturesObj(lit *ast.FuncLit, info *types.Info, obj types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if found {
			return false
		}
		if id, ok := nd.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// mutatesCaptured reports whether the literal writes through a captured
// variable's memory. Element stores indexed by a literal-local variable
// (work[k].att = ...) are the partition-by-index idiom — each goroutine
// owns its slots — and do not count.
func mutatesCaptured(lit *ast.FuncLit, info *types.Info, obj types.Object) bool {
	found := false
	writes := func(lhs ast.Expr) bool {
		if base := callgraph.BaseIdent(callgraph.BaseOfStore(lhs)); base == nil || info.ObjectOf(base) != obj {
			return false
		}
		return !partitionedStore(lhs, info, lit)
	}
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if found {
			return false
		}
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range nd.Lhs {
				if writes(lhs) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if writes(nd.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// capturedMutated reports whether the spawned literal writes through
// the captured variable — directly (non-partitioned stores) or via a
// resolved callee that mutates the corresponding argument.
func capturedMutated(litNode *callgraph.Node, sums map[string]*callgraph.EscapeSummary, lit *ast.FuncLit, info *types.Info, obj types.Object) bool {
	if mutatesCaptured(lit, info, obj) {
		return true
	}
	if litNode == nil {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if found {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := litNode.Sites[call]
		if callee == nil {
			return true
		}
		sum := sums[callee.ID]
		if sum == nil {
			return true
		}
		for j, a := range callgraph.EffectiveArgs(call, callee) {
			if a == nil || j >= len(sum.Mutated) || !sum.Mutated[j] {
				continue
			}
			if id := callgraph.BaseIdent(a); id != nil && info.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// partitionedStore reports whether the lvalue indexes through a
// variable declared inside the literal (a goroutine-local index):
// distinct workers write distinct slots.
func partitionedStore(lhs ast.Expr, info *types.Info, lit *ast.FuncLit) bool {
	part := false
	ast.Inspect(lhs, func(nd ast.Node) bool {
		ix, ok := nd.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(ix.Index).(*ast.Ident); ok {
			// Goroutine-local means declared anywhere in the literal:
			// the body (k := atomic.AddInt64(...)) or its parameter
			// list (go func(i int, …) { results[i] = … }(i, …)).
			if obj := info.ObjectOf(id); obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
				part = true
				return false
			}
		}
		return true
	})
	return part
}

// freshAtSpawner reports whether the spawn-site argument denotes a
// freshly allocated value: a fresh expression, or an identifier whose
// single assignment in the spawner is fresh.
func freshAtSpawner(spawner *callgraph.Node, sums map[string]*callgraph.EscapeSummary, arg ast.Expr) bool {
	rt := &callgraph.RefTracker{Node: spawner, Sums: sums, Tracked: map[types.Object]int{}}
	if rt.FreshExpr(arg) {
		return true
	}
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return false
	}
	return freshLocalObj(spawner, sums, spawner.Pkg.TypesInfo.ObjectOf(id))
}

// freshLocalObj reports whether obj is a local of the spawner whose
// single assignment is a fresh allocation.
func freshLocalObj(spawner *callgraph.Node, sums map[string]*callgraph.EscapeSummary, obj types.Object) bool {
	if obj == nil || spawner.Body() == nil {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return false // package-level: shared by definition
	}
	rt := &callgraph.RefTracker{Node: spawner, Sums: sums, Tracked: map[types.Object]int{}}
	fresh, rebound := false, false
	ast.Inspect(spawner.Body(), func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			if len(nd.Lhs) != len(nd.Rhs) {
				return true
			}
			for i, lhs := range nd.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || spawner.Pkg.TypesInfo.ObjectOf(lid) != obj {
					continue
				}
				if rt.FreshExpr(nd.Rhs[i]) {
					fresh = true
				} else {
					rebound = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range nd.Names {
				if spawner.Pkg.TypesInfo.ObjectOf(name) != obj || i >= len(nd.Values) {
					continue
				}
				if rt.FreshExpr(nd.Values[i]) {
					fresh = true
				} else {
					rebound = true
				}
			}
		}
		return true
	})
	return fresh && !rebound
}

// capturedVars returns the variables the literal references that are
// declared outside its body, in first-occurrence order (deterministic
// report order depends on it). Fields and package-level variables are
// excluded: they are shared by definition and can never be confined.
func capturedVars(lit *ast.FuncLit, info *types.Info) []*types.Var {
	var out []*types.Var
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		v, isVar := obj.(*types.Var)
		if !isVar || seen[obj] || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() >= lit.Body.Pos() && v.Pos() <= lit.Body.End() {
			return true // literal-local
		}
		seen[obj] = true
		out = append(out, v)
		return true
	})
	return out
}

// sameDepthAsSpawn reports whether obj's defining assignment in the
// spawner sits at the same loop depth as the go statement: the
// allocation is made per spawn, not shared across a spawn loop.
func sameDepthAsSpawn(spawner *callgraph.Node, obj types.Object, gs *ast.GoStmt) bool {
	defDepth, spawnDepth := -1, -1
	walkDepth(spawner.Body(), 0, func(nd ast.Node, depth int) {
		switch nd := nd.(type) {
		case *ast.GoStmt:
			if nd == gs {
				spawnDepth = depth
			}
		case *ast.Ident:
			if defDepth < 0 && spawner.Pkg.TypesInfo.Defs[nd] == obj {
				defDepth = depth
			}
		}
	})
	return defDepth >= 0 && defDepth == spawnDepth
}

// shortID strips package path prefixes from a callgraph FuncID for
// message readability, mirroring lockorder's rendering.
func shortID(id string) string {
	out := make([]byte, 0, len(id))
	seg := make([]byte, 0, 32)
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch c {
		case '/':
			seg = seg[:0]
		case '(', ')', '*', '.', '$':
			out = append(out, seg...)
			out = append(out, c)
			seg = seg[:0]
		default:
			seg = append(seg, c)
		}
	}
	return string(append(out, seg...))
}

// usedAfterLoop reports whether obj is referenced in the spawner after
// the spawn loop containing goStmt ends: returned, stored, or passed on,
// i.e. the spawner retains ownership rather than dropping the value once
// the workers have it.
func usedAfterLoop(n *callgraph.Node, obj *types.Var, goStmt *ast.GoStmt) bool {
	body := n.Body()
	loopEnd := token.NoPos
	ast.Inspect(body, func(nd ast.Node) bool {
		switch l := nd.(type) {
		case *ast.FuncLit:
			return l.Pos() <= goStmt.Pos() && goStmt.Pos() < l.End()
		case *ast.ForStmt, *ast.RangeStmt:
			if nd.Pos() <= goStmt.Pos() && goStmt.Pos() < nd.End() {
				loopEnd = nd.End() // outer seen first; innermost wins
			}
		}
		return true
	})
	if !loopEnd.IsValid() {
		return false
	}
	used := false
	info := n.Pkg.TypesInfo
	ast.Inspect(body, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok && id.Pos() >= loopEnd && info.ObjectOf(id) == obj {
			used = true
		}
		return !used
	})
	return used
}
