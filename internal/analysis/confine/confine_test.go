package confine_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/confine"
)

// TestModule runs the confinement analysis over both fixture packages in
// one call graph: worker holds the must-flag escapes (arena leaking by
// reference through a results channel, shared-field stores, spawn-loop
// sharing, double handoff, publish-after-handoff); clean holds the
// idiomatic patterns that must stay silent (the speculative-scheduler
// pool with per-spawn arenas and copied-out results, per-iteration
// ownership transfer, read-only fan-out).
func TestModule(t *testing.T) {
	analyzertest.RunModule(t, confine.Analyzer,
		"./testdata/mod/worker",
		"./testdata/mod/clean",
	)
}
