// Package worker holds confine's must-flag fixtures: worker-goroutine
// scratch escaping by reference through every sink the analyzer models.
package worker

import "sync"

type Task struct{ ID, N int }

type Result struct {
	ID   int
	Path []int
}

// arena is the per-worker scratch shape: a reusable cell buffer plus a
// stamp, exactly the searchCtx pattern.
type arena struct {
	cells []int
	tag   int
}

func newArena() *arena { return &arena{cells: make([]int, 64)} }

// solve reuses the arena's cells and returns a slice aliasing them —
// the interprocedural link (ToReturn on the receiver) the leak rides.
func (a *arena) solve(t Task) []int {
	a.tag++
	for i := range a.cells {
		a.cells[i] = t.N + i
	}
	return a.cells[:t.N&63]
}

// Mine leaks the arena by reference through the results channel: p
// aliases a.cells, so by the time a consumer reads one Result the
// worker has already overwritten the cells for the next task.
func Mine(tasks <-chan Task, results chan<- Result) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := newArena()
			for t := range tasks {
				p := a.solve(t)
				results <- Result{ID: t.ID, Path: p} // want `goroutine-confined a leaks by reference through a channel send`
			}
		}()
	}
	wg.Wait()
}

type hub struct {
	mu   sync.Mutex
	last []int
}

// Drain stores the arena-backed slice into a shared struct field each
// iteration: every reader of h.last aliases live scratch.
func (h *hub) Drain(tasks <-chan Task, done chan<- struct{}) {
	go func() {
		a := newArena()
		for t := range tasks {
			p := a.solve(t)
			h.mu.Lock()
			h.last = p // want `goroutine-confined a escapes into shared memory through h`
			h.mu.Unlock()
		}
		done <- struct{}{}
	}()
}

// SharedScratch allocates one arena outside the spawn loop: all four
// workers mutate the same cells concurrently.
func SharedScratch(tasks []Task) {
	a := newArena()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() { // want `per-worker scratch a is allocated once outside the spawn loop`
			defer wg.Done()
			for _, t := range tasks {
				a.solve(t)
			}
		}()
	}
	wg.Wait()
}

// DoubleHand gives the same arena to two goroutines that both mutate
// it.
func DoubleHand(tasks []Task) {
	a := newArena()
	done := make(chan struct{}, 2)
	go func() {
		a.solve(tasks[0])
		done <- struct{}{}
	}()
	go func() { // want `scratch a is handed to a second goroutine`
		a.solve(tasks[1])
		done <- struct{}{}
	}()
	<-done
	<-done
}

var lastArena *arena

// HandAndPublish hands the arena to a worker and simultaneously parks
// it in a package-level variable.
func HandAndPublish(tasks []Task, done chan struct{}) {
	a := newArena()
	go func() {
		a.solve(tasks[0])
		done <- struct{}{}
	}()
	lastArena = a // want `scratch a is handed to the goroutine spawned at line \d+ and also stored into shared memory`
	<-done
}
