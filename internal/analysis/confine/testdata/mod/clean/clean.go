// Package clean holds confine's must-not-flag fixtures: the idiomatic
// worker-pool patterns the analyzer must stay silent on — per-spawn
// arenas with copied-out results (the speculative scheduler shape),
// per-iteration ownership transfer, and read-only fan-out.
package clean

import (
	"sync"
	"sync/atomic"
)

type Task struct{ ID, N int }

type Result struct {
	ID   int
	Path []int
}

type arena struct {
	cells []int
	tag   int
}

func newArena() *arena { return &arena{cells: make([]int, 64)} }

func (a *arena) solve(t Task) []int {
	a.tag++
	for i := range a.cells {
		a.cells[i] = t.N + i
	}
	return a.cells[:t.N&63]
}

// Pool is the speculative-scheduler shape: a per-spawn arena passed as
// the worker's parameter, an atomic work counter, results copied out of
// the scratch before landing in the shared slice, and slots partitioned
// by a goroutine-local index. Nothing here may be flagged.
func Pool(tasks []Task) []Result {
	work := make([]Result, len(tasks))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		sc := newArena()
		go func(sc *arena) {
			defer wg.Done()
			for {
				k := atomic.AddInt64(&next, 1) - 1
				if int(k) >= len(tasks) {
					return
				}
				p := sc.solve(tasks[k])
				out := make([]int, len(p))
				copy(out, p)
				work[k] = Result{ID: tasks[k].ID, Path: out}
			}
		}(sc)
	}
	wg.Wait()
	return work
}

func fill(r *Result) {
	for i := range r.Path {
		r.Path[i] = i
	}
}

// Stream sends a per-iteration allocation exactly once: ownership
// transfer, not a leak — the worker never touches r again.
func Stream(tasks <-chan Task, results chan<- *Result, done <-chan struct{}) {
	go func() {
		for {
			select {
			case t, ok := <-tasks:
				if !ok {
					return
				}
				r := &Result{ID: t.ID, Path: make([]int, t.N&63)}
				fill(r)
				results <- r
			case <-done:
				return
			}
		}
	}()
}

type config struct {
	scale  int
	limits []int
}

func weigh(c *config, t Task) int { return t.N * c.scale }

// Broadcast hands one config to every worker, but nobody mutates it:
// read-only sharing is fine.
func Broadcast(tasks []Task, out chan<- int) {
	cfg := &config{scale: 2, limits: make([]int, 8)}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			for _, t := range tasks[lo:] {
				out <- weigh(cfg, t)
			}
		}(w)
	}
	wg.Wait()
}
