// Package hotalloc defines a flow-sensitive analyzer that finds heap
// allocations on the detailed router's per-net search hot path.
//
// PR 4 moved every per-search allocation into per-worker searchCtx
// arenas so the steady-state A* loop performs zero heap allocations. That
// invariant is easy to erode: a make hidden behind a helper call, an
// append to a fresh slice, a closure created inside the expansion loop.
// This analyzer rebuilds the per-net call graph from its roots (routeNet
// by default), classifies which functions execute inside the per-net
// search loop, and flags allocations there:
//
//   - make/new calls and slice/map composite literals
//   - append growth of slices that are not arena-backed
//   - closures created inside a loop (closure capture allocates)
//   - interface boxing (concrete values passed to interface parameters
//     or assigned to interface variables)
//
// The allowlist covers one-time setup dominated by function entry: in a
// root function only allocations inside loops are flagged, and
// assignments that grow an arena (a field of an ArenaTypes struct, or a
// local derived from one, like `rev := sc.rev[:0]`) are always allowed —
// that is what the arenas are for. Functions called from inside a search
// loop are per-iteration in their entirety, so every allocation in them
// is flagged, not just the looped ones.
package hotalloc

import (
	"go/ast"
	"go/types"
	"sort"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/cfg"
)

// Roots names the functions whose call trees form the per-net hot path.
var Roots = map[string]bool{"routeNet": true}

// ArenaTypes names the arena struct types: allocations that grow them
// are the sanctioned way to allocate, and slices derived from their
// fields are reusable scratch.
var ArenaTypes = map[string]bool{"searchCtx": true, "cellHeap": true}

// Analyzer flags heap allocations on the per-net search hot path.
var Analyzer = &analysis.Analyzer{
	Name:    "hotalloc",
	Version: 1,
	Doc: "flag make/new/append-growth/closure/boxing allocations reachable inside the per-net search loops\n\n" +
		"The PR 4 arenas make the steady-state search allocation-free; this analyzer walks the call graph from routeNet and keeps it that way.",
	Packages: []string{"internal/detail", "internal/fracture", "internal/stencil", "internal/eco"},
	Run:      run,
}

type funcInfo struct {
	obj   *types.Func
	decl  *ast.FuncDecl
	graph *cfg.Graph
}

func run(pass *analysis.Pass) (interface{}, error) {
	infos := collectFuncs(pass)
	if len(infos) == 0 {
		return nil, nil
	}
	byObj := make(map[*types.Func]*funcInfo, len(infos))
	for _, fi := range infos {
		byObj[fi.obj] = fi
	}

	// Call edges, each tagged with whether the call site sits inside a
	// loop of the caller.
	type edge struct {
		to     *types.Func
		inLoop bool
	}
	edges := make(map[*types.Func][]edge, len(infos))
	for _, fi := range infos {
		inLoop := fi.graph.InLoop()
		for _, b := range fi.graph.Blocks {
			for _, n := range b.Nodes {
				loop := inLoop[b.Index]
				ast.Inspect(n, func(m ast.Node) bool {
					// Calls inside a function literal run whenever the
					// literal does; treat them as loop calls only if the
					// literal is created in a loop. (The conservative
					// per-iteration cost is charged to the literal's own
					// body via loopCalled below.)
					if _, ok := m.(*ast.FuncLit); ok && m != n {
						return false
					}
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := staticCallee(pass, call); callee != nil {
						if _, local := byObj[callee]; local {
							edges[fi.obj] = append(edges[fi.obj], edge{callee, loop})
						}
					}
					return true
				})
			}
		}
	}

	// Hot = reachable from the roots; loopCalled = runs per iteration of
	// some search loop (called from a loop, or called at all from a
	// function that itself runs per iteration).
	hot := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, fi := range infos {
		if Roots[fi.obj.Name()] {
			hot[fi.obj] = true
			queue = append(queue, fi.obj)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, e := range edges[f] {
			if !hot[e.to] {
				hot[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	loopCalled := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for f := range hot {
			for _, e := range edges[f] {
				if (e.inLoop || loopCalled[f]) && !loopCalled[e.to] {
					loopCalled[e.to] = true
					changed = true
				}
			}
		}
	}

	for _, fi := range infos {
		if !hot[fi.obj] {
			continue
		}
		derived := derivedSet(pass, fi.decl)
		checkGraph(pass, fi.graph, loopCalled[fi.obj], derived, fi.obj.Name())
		// Function literals have their own graphs; a literal in a
		// per-iteration function is itself per-iteration.
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkGraph(pass, cfg.New(fl.Body), loopCalled[fi.obj], derived, fi.obj.Name())
			}
			return true
		})
	}
	return nil, nil
}

func collectFuncs(pass *analysis.Pass) []*funcInfo {
	var out []*funcInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			out = append(out, &funcInfo{obj: obj, decl: fd, graph: cfg.New(fd.Body)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// checkGraph flags allocations in one function body (or literal body).
// flagAll marks a function that runs per loop iteration: everything in it
// is hot. Otherwise only blocks inside the function's own loops flag.
func checkGraph(pass *analysis.Pass, g *cfg.Graph, flagAll bool, derived map[types.Object]bool, fname string) {
	inLoop := g.InLoop()
	where := "inside the per-net search loop"
	if flagAll {
		where = "in " + fname + ", which runs per search-loop iteration"
	}
	for _, b := range g.Blocks {
		flagHere := flagAll || inLoop[b.Index]
		for _, n := range b.Nodes {
			checkNode(pass, n, flagHere, inLoop[b.Index], derived, where)
		}
	}
}

func checkNode(pass *analysis.Pass, node ast.Node, flagHere, inLoopBlock bool, derived map[types.Object]bool, where string) {
	// Map allocation calls to their assignment target, so arena growth
	// (sc.nodes = make(...)) can be allowed.
	assignTarget := map[*ast.CallExpr]ast.Expr{}
	var rangeBody *ast.BlockStmt
	if rng, ok := node.(*ast.RangeStmt); ok {
		rangeBody = rng.Body
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil || n == ast.Node(rangeBody) {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, rhs := range as.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					assignTarget[call] = as.Lhs[i]
				}
			}
		}
		return true
	})

	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil || n == ast.Node(rangeBody) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// The closure's captured-variable record is heap-allocated
			// each time the literal is evaluated; creating one per loop
			// iteration defeats the arena. Entry-created closures are
			// one-time setup and fine.
			if inLoopBlock {
				pass.Reportf(n.Pos(), "closure created %s allocates its capture record every iteration; hoist it to function entry", where)
			}
			return false
		case *ast.CompositeLit:
			if !flagHere || pass.TypeOf(n) == nil {
				return true
			}
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "%s literal %s allocates; use the searchCtx arena", litKind(pass, n), where)
			}
			return true
		case *ast.CallExpr:
			if !flagHere {
				return true
			}
			checkCall(pass, n, assignTarget[n], derived, where)
			return true
		}
		return true
	})
}

func litKind(pass *analysis.Pass, n *ast.CompositeLit) string {
	if _, ok := pass.TypeOf(n).Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, target ast.Expr, derived map[types.Object]bool, where string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				// Arena growth is the sanctioned allocation: the result
				// must land in an arena field.
				if target != nil && isArenaExpr(pass, target, nil) {
					return
				}
				pass.Reportf(call.Pos(), "%s %s; route the buffer through the searchCtx arena or hoist it to setup", id.Name, where)
			case "append":
				// Appending to arena-backed storage reuses its capacity;
				// growth is amortized arena growth. Anything else is a
				// fresh heap slice on the hot path.
				if len(call.Args) > 0 && isArenaExpr(pass, call.Args[0], derived) {
					return
				}
				pass.Reportf(call.Pos(), "append growth of non-arena slice %s; use an arena-backed slice (e.g. sc scratch resliced to [:0])", where)
			}
			return
		}
	}
	// Interface boxing: a concrete value passed where an interface is
	// expected is copied to the heap.
	callee := staticCallee(pass, call)
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		pt := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 {
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "interface boxing of %s argument %s; keep hot-path signatures concrete", at.String(), where)
	}
}

// isArenaExpr reports whether the expression is rooted in an arena-typed
// object or in a local derived from one.
func isArenaExpr(pass *analysis.Pass, e ast.Expr, derived map[types.Object]bool) bool {
	obj := rootObject(pass, e)
	if obj == nil {
		return false
	}
	if derived != nil && derived[obj] {
		return true
	}
	return isArenaType(obj.Type())
}

func isArenaType(t types.Type) bool {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Slice:
			t = x.Elem()
		case *types.Named:
			if ArenaTypes[x.Obj().Name()] {
				return true
			}
			return false
		default:
			return false
		}
	}
}

func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(x)
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// derivedSet computes, to a fixpoint, the locals of fn that alias arena
// storage: assigned from an arena-rooted expression (`rev := sc.rev[:0]`,
// `pq := &sc.heap`, `nodes := sc.nodes`) or from an append to something
// already derived.
func derivedSet(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	derived := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil || derived[obj] {
					continue
				}
				src := ast.Unparen(as.Rhs[i])
				if call, ok := src.(*ast.CallExpr); ok {
					// append(derived, ...) keeps the derivation.
					if cid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && cid.Name == "append" && len(call.Args) > 0 {
						src = ast.Unparen(call.Args[0])
					}
				}
				if isArenaExpr(pass, src, derived) {
					derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return derived
}
