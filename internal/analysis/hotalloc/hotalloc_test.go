package hotalloc_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/hotalloc"
)

func TestAnalyzer(t *testing.T) {
	analyzertest.Run(t, "../testdata", hotalloc.Analyzer, "hotalloc")
}
