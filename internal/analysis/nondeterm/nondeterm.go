// Package nondeterm defines a flow-sensitive analyzer that tracks
// nondeterministic values through assignment chains and helper calls and
// flags them when they reach routing state.
//
// The syntactic analyzers from the first stitchvet generation (notably
// mapiterorder) only recognize a source and a sink in the same statement
// or loop body. This analyzer runs a taint analysis over each function's
// control-flow graph instead, so the c18208f bug class is caught even
// when the nondeterministic value travels through any number of local
// assignments or package-local helper calls before it lands in a heap,
// a cost field, or output geometry.
//
// Sources (Value taint — the value itself differs between runs):
//   - time.Now / time.Since / time.Until
//   - math/rand and math/rand/v2 package-level functions (the global,
//     nondeterministically-seeded RNG); rand.NewSource/NewPCG with a
//     non-constant seed. A *rand.Rand built from a constant seed is
//     deterministic and stays clean.
//   - fmt formatting with %p (pointer addresses change between runs)
//
// Sources (Order taint — stable set, unstable draw order):
//   - ranging over a map
//   - values received in a select with two or more communication cases
//
// Sinks: writes into struct fields, slice/array elements, channel sends,
// and heap Push/push arguments. Telemetry is exempt — fields of type
// time.Duration/time.Time or whose name speaks of timing or statistics
// may hold wall-clock values; they are reporting, not routing. Map-index
// writes are exempt from Order taint only (writing a map in iteration
// order still builds the same map). Sorting a value launders Order taint,
// as does commutative integer accumulation (+=, |=, ^=, &=) — both yield
// order-independent results.
package nondeterm

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/callgraph"
	"stitchroute/internal/analysis/cfg"
	"stitchroute/internal/analysis/dataflow"
	"stitchroute/internal/analysis/load"
)

// Analyzer flags nondeterministic values flowing into routing state.
// Under the driver it runs in module mode: taint summaries are computed
// bottom-up over the whole-module call graph, so a wall-clock read two
// cross-package hops away still taints the value at the sink. The
// per-package Run remains as the fixture-harness fallback with
// intra-package summaries only.
var Analyzer = &analysis.Analyzer{
	Name:    "nondeterm",
	Version: 1,
	Doc: "track nondeterministic values (wall clock, global RNG, map order, select order, pointer text) through dataflow into routing state\n\n" +
		"Byte-identical reroutes are a hard invariant; this analyzer follows taint through assignment chains and helper calls — across package boundaries via call-graph summaries — which the syntactic checks cannot.",
	Packages: []string{
		"internal/global", "internal/detail", "internal/core",
		"internal/steiner", "internal/track", "internal/plan",
		"internal/fracture", "internal/stencil", "internal/eco",
	},
	Run:       run,
	RunModule: runModule,
}

// unit bundles what the checks need from either pass flavor.
type unit struct {
	fset    *token.FileSet
	info    *types.Info
	reportf func(token.Pos, string, ...interface{})
}

// telemetryName matches field names that hold timing or statistics:
// legitimate homes for wall-clock values.
var telemetryName = regexp.MustCompile(`(?i)(time|elapsed|duration|seed|stamp|start|wall|bench|stat)`)

// taintConf builds the package-specific taint configuration; the caller
// decides which summary set (intra-package or module-wide) to attach.
func taintConf(info *types.Info, files []*ast.File) dataflow.TaintConfig {
	return dataflow.TaintConfig{
		Info:       info,
		SourceCall: sourceClassifier(info),
		SelectRecv: markMultiSelects(files),
		ExemptWrite: func(lhs ast.Expr) bool {
			// A write into a telemetry field is a sanctioned sink; it
			// must not weak-update the enclosing struct, or one Times
			// write would taint every value later derived from it.
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			return ok && telemetryField(info, sel)
		},
	}
}

func run(pass *analysis.Pass) (interface{}, error) {
	conf := taintConf(pass.TypesInfo, pass.Files)
	conf.Summaries = dataflow.ComputeSummaries(pass.Files, conf)
	u := &unit{fset: pass.Fset, info: pass.TypesInfo, reportf: pass.Reportf}
	checkFiles(u, conf, pass.Files)
	return nil, nil
}

// runModule is the interprocedural mode: one summary per function in the
// whole module, computed bottom-up over the call graph, then the same
// per-function sink checks — now able to see that a value returned by a
// helper two packages away carries wall-clock or RNG taint.
func runModule(mp *analysis.ModulePass) error {
	sums := callgraph.ModuleTaintSummaries(mp.Graph, func(pkg *load.Package) dataflow.TaintConfig {
		return taintConf(pkg.TypesInfo, pkg.Files)
	})
	for _, pkg := range mp.Packages {
		if !mp.Match(pkg.PkgPath) {
			continue
		}
		conf := taintConf(pkg.TypesInfo, pkg.Files)
		conf.Summaries = sums
		u := &unit{fset: mp.Fset, info: pkg.TypesInfo, reportf: mp.Reportf}
		checkFiles(u, conf, pkg.Files)
	}
	return nil
}

// checkFiles runs the per-function taint solve + sink checks over every
// declaration in files.
func checkFiles(u *unit, conf dataflow.TaintConfig, files []*ast.File) {
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(u, conf, fd.Body)
			// Function literals get their own graphs: their bodies are
			// not part of the enclosing CFG. Captured variables start
			// clean (conservatively under-tainted; sources inside the
			// literal are still tracked).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkBody(u, conf, fl.Body)
				}
				return true
			})
		}
	}
}

func checkBody(u *unit, conf dataflow.TaintConfig, body *ast.BlockStmt) {
	p := dataflow.Problem[dataflow.Fact]{
		Graph:    cfg.New(body),
		Entry:    dataflow.Fact{},
		Bottom:   dataflow.BottomFact,
		Join:     dataflow.JoinFacts,
		Equal:    dataflow.EqualFacts,
		Transfer: conf.Transfer,
	}
	sol := dataflow.Solve(p)
	dataflow.ForEachNode(p, sol, func(n ast.Node, before dataflow.Fact) {
		checkNode(u, conf, n, before)
	})
}

// checkNode runs the sink checks on one CFG node. Function-literal and
// range bodies are skipped: their statements live in other blocks (range)
// or other graphs (literals) and must not be double-visited with the
// wrong fact.
func checkNode(u *unit, conf dataflow.TaintConfig, node ast.Node, before dataflow.Fact) {
	var rangeBody *ast.BlockStmt
	if rng, ok := node.(*ast.RangeStmt); ok {
		rangeBody = rng.Body
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == ast.Node(rangeBody) {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssignSinks(u, conf, n, before)
		case *ast.SendStmt:
			if t := conf.EvalExpr(before, n.Value); t.Kind != 0 {
				report(u, n.Pos(), "value sent on channel", t)
			}
		case *ast.CallExpr:
			checkPushSink(u, conf, n, before)
		}
		return true
	})
}

// checkAssignSinks flags tainted values written into persistent state:
// struct fields, slice/array elements, and pointer targets. Plain local
// variables are propagation, not sinks.
func checkAssignSinks(u *unit, conf dataflow.TaintConfig, n *ast.AssignStmt, before dataflow.Fact) {
	rhs := make([]dataflow.Taint, len(n.Lhs))
	switch {
	case len(n.Rhs) == len(n.Lhs):
		for i, e := range n.Rhs {
			rhs[i] = conf.EvalExpr(before, e)
		}
	case len(n.Rhs) == 1:
		t := conf.EvalExpr(before, n.Rhs[0])
		for i := range rhs {
			rhs[i] = t
		}
	}
	for i, lhs := range n.Lhs {
		t := rhs[i]
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			// Mirror the transfer function's laundering: commutative
			// integer accumulation is order-independent.
			if augCommutative(n.Tok) && isIntegerType(conf.Info.TypeOf(lhs)) {
				t.Kind &^= dataflow.Order
			}
		}
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			// A tainted index means the write lands somewhere different
			// each run, which corrupts the result as surely as a tainted
			// value does.
			t = t.Merge(conf.EvalExpr(before, idx.Index))
		}
		if t.Kind == 0 {
			continue
		}
		switch target := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			if xt := conf.Info.TypeOf(target.X); xt != nil {
				if _, isMap := xt.Underlying().(*types.Map); isMap {
					// Building a map in map order is still a set: only
					// Value taint makes the contents differ.
					t.Kind &^= dataflow.Order
					if t.Kind == 0 {
						continue
					}
				}
			}
			report(u, n.Pos(), "element of "+types.ExprString(target.X), t)
		case *ast.SelectorExpr:
			if telemetryField(conf.Info, target) {
				continue
			}
			report(u, n.Pos(), "field "+types.ExprString(target), t)
		case *ast.StarExpr:
			report(u, n.Pos(), "target of "+types.ExprString(target), t)
		}
	}
}

// checkPushSink flags tainted heap-push arguments: the pop order (and
// every tie-break downstream) then differs between runs.
func checkPushSink(u *unit, conf dataflow.TaintConfig, call *ast.CallExpr, before dataflow.Fact) {
	name := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if name != "Push" && name != "push" {
		return
	}
	for _, a := range call.Args {
		if t := conf.EvalExpr(before, a); t.Kind != 0 {
			report(u, call.Pos(), "heap push argument", t)
			return
		}
	}
}

func report(u *unit, pos token.Pos, sink string, t dataflow.Taint) {
	kind := "nondeterministic"
	switch {
	case t.Kind&dataflow.Value != 0:
		kind = "run-dependent"
	case t.Kind&dataflow.Order != 0:
		kind = "iteration-order-dependent"
	}
	src := t.Why
	if src == "" {
		src = "nondeterministic source"
	}
	where := ""
	if t.Pos.IsValid() {
		p := u.fset.Position(t.Pos)
		where = " at line " + itoa(p.Line)
	}
	u.reportf(pos, "%s value reaches %s: tainted by %s%s; reroutes stop being byte-identical", kind, sink, src, where)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// telemetryField reports whether the assigned field may legitimately hold
// wall-clock data: typed as time.Duration/time.Time, or named like a
// timing/statistics field.
func telemetryField(info *types.Info, sel *ast.SelectorExpr) bool {
	if telemetryName.MatchString(sel.Sel.Name) {
		return true
	}
	obj := info.ObjectOf(sel.Sel)
	if obj == nil {
		return false
	}
	return isTimeType(obj.Type())
}

func isTimeType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "time" && (obj.Name() == "Duration" || obj.Name() == "Time")
}

func augCommutative(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sourceClassifier builds the TaintConfig source hook for this package.
func sourceClassifier(info *types.Info) func(*ast.CallExpr) (dataflow.Taint, bool) {
	return func(call *ast.CallExpr) (dataflow.Taint, bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return dataflow.Taint{}, false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return dataflow.Taint{}, false
		}
		pkgName, ok := info.ObjectOf(id).(*types.PkgName)
		if !ok {
			return dataflow.Taint{}, false
		}
		name := sel.Sel.Name
		switch pkgName.Imported().Path() {
		case "time":
			switch name {
			case "Now", "Since", "Until":
				return dataflow.Taint{Kind: dataflow.Value, Why: "time." + name, Pos: call.Pos()}, true
			}
		case "math/rand", "math/rand/v2":
			switch name {
			case "New":
				// rand.New(src): deterministic iff the source is. Let
				// normal argument propagation decide.
				return dataflow.Taint{}, false
			case "NewSource", "NewPCG", "NewChaCha8":
				// Constant seed ⇒ reproducible stream.
				if allConstArgs(info, call) {
					return dataflow.Taint{}, false
				}
				return dataflow.Taint{Kind: dataflow.Value, Why: "rand." + name + " with non-constant seed", Pos: call.Pos()}, true
			default:
				// Package-level functions draw from the global RNG,
				// seeded nondeterministically at startup.
				return dataflow.Taint{Kind: dataflow.Value, Why: "math/rand global " + name, Pos: call.Pos()}, true
			}
		case "fmt":
			if formatsPointer(call) {
				return dataflow.Taint{Kind: dataflow.Value, Why: "pointer formatting (%p)", Pos: call.Pos()}, true
			}
		}
		return dataflow.Taint{}, false
	}
}

// allConstArgs reports whether every argument is a typed or untyped
// constant expression.
func allConstArgs(info *types.Info, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		tv, ok := info.Types[a]
		if !ok || tv.Value == nil || tv.Value.Kind() == constant.Unknown {
			return false
		}
	}
	return len(call.Args) > 0
}

// formatsPointer reports whether any constant string argument of a fmt
// call contains the %p verb.
func formatsPointer(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		lit, ok := ast.Unparen(a).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			continue
		}
		if strings.Contains(lit.Value, "%p") {
			return true
		}
	}
	return false
}

// markMultiSelects marks the communication statements of every select
// with two or more communication cases: when several channels are ready,
// which case fires is scheduling-dependent.
func markMultiSelects(files []*ast.File) map[ast.Stmt]bool {
	out := map[ast.Stmt]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			var comms []ast.Stmt
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comms = append(comms, cc.Comm)
				}
			}
			if len(comms) >= 2 {
				for _, c := range comms {
					out[c] = true
				}
			}
			return true
		})
	}
	return out
}
