package nondeterm_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/nondeterm"
)

func TestAnalyzer(t *testing.T) {
	analyzertest.Run(t, "../testdata", nondeterm.Analyzer, "nondeterm")
}
