package nondeterm_test

import (
	"testing"

	"stitchroute/internal/analysis/analyzertest"
	"stitchroute/internal/analysis/nondeterm"
)

func TestAnalyzer(t *testing.T) {
	analyzertest.Run(t, "../testdata", nondeterm.Analyzer, "nondeterm")
}

// TestModule exercises the interprocedural mode: the wall-clock source
// sits two cross-package hops from the sink (sink → mid → tick), beyond
// what intra-package summaries can reach.
func TestModule(t *testing.T) {
	analyzertest.RunModule(t, nondeterm.Analyzer,
		"./testdata/mod/tick",
		"./testdata/mod/mid",
		"./testdata/mod/sink",
	)
}

// TestModuleDevirtualized: the taint source hides behind an interface
// with a single in-module implementation. The finding exists only
// because the call graph devirtualizes the call — an unresolved
// interface call would sever the chain.
func TestModuleDevirtualized(t *testing.T) {
	analyzertest.RunModule(t, nondeterm.Analyzer, "./testdata/mod/ifacehop")
}
