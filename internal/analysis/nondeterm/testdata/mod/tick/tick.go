// Package tick is the bottom of the two-hop chain: it reads the wall
// clock directly.
package tick

import "time"

// Stamp returns a run-dependent value.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Fixed is deterministic.
func Fixed() int64 {
	return 7
}
