// Package mid forwards values from tick without touching any
// nondeterministic API itself — an intra-package analysis of the sink
// package sees nothing suspicious about calling mid.
package mid

import "stitchroute/internal/analysis/nondeterm/testdata/mod/tick"

// Wrapped forwards the wall-clock read one more hop.
func Wrapped() int64 {
	v := tick.Stamp()
	return v
}

// Clean forwards a deterministic value.
func Clean() int64 {
	return tick.Fixed()
}

// Scaled mixes a parameter with a clock read: tainted regardless of the
// argument.
func Scaled(k int64) int64 {
	return k * tick.Stamp()
}
