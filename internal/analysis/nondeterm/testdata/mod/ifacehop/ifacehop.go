// Package ifacehop hides the taint source behind an interface with a
// single in-module implementation: only callgraph devirtualization can
// connect the sink to the wall-clock read. Without it the call through
// Clock is an unknown callee and the write below would (wrongly) pass.
package ifacehop

import "time"

// Clock has exactly one implementation in the module.
type Clock interface {
	Reading() int64
}

type wallClock struct{}

func (wallClock) Reading() int64 {
	return time.Now().UnixNano()
}

// New returns the unique Clock implementation.
func New() Clock { return wallClock{} }

type route struct {
	cost int64
}

func assignThroughIface(r *route, c Clock) {
	r.cost = c.Reading() // want `run-dependent value reaches field r\.cost`
}
