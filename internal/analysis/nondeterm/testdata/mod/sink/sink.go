// Package sink writes helper results into routing state. The taint
// source is two cross-package hops away (sink → mid → tick), which
// intra-package summaries provably cannot see: every call here is to a
// function whose body lives in another package.
package sink

import "stitchroute/internal/analysis/nondeterm/testdata/mod/mid"

type route struct {
	cost int64
}

func assign(r *route) {
	r.cost = mid.Wrapped() // want `run-dependent value reaches field r\.cost: tainted by time\.Now`
}

func assignClean(r *route) {
	r.cost = mid.Clean()
}

func assignScaled(r *route) {
	r.cost = mid.Scaled(3) // want `run-dependent value reaches field r\.cost`
}

func assignLocal(r *route) {
	v := mid.Wrapped()
	w := v + 1
	r.cost = w // want `run-dependent value reaches field r\.cost`
}
