// Package analyzertest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a comment of the form
//
//	// want `regexp`
//	// want "regexp1" "regexp2"
//
// on the line the diagnostic is expected at. Every diagnostic must match
// an expectation on its line and every expectation must be matched by
// exactly one diagnostic; anything else fails the test with positions.
package analyzertest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"stitchroute/internal/analysis"
	"stitchroute/internal/analysis/callgraph"
	"stitchroute/internal/analysis/load"
)

// expectation is one `want` pattern at a file:line.
type expectation struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

// parseWants extracts the `// want ...` expectations from a package's
// comments.
func parseWants(pkg *load.Package, t *testing.T) []*expectation {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitPatterns(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Errorf("%s: bad want comment: %v", pos, err)
					continue
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, p, err)
						continue
					}
					wants = append(wants, &expectation{pos: pos, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a sequence of Go string literals ("..." or `...`).
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted pattern, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		lit := s[:end+2]
		p, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("cannot unquote %q: %v", lit, err)
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}

// Run loads each fixture package from testdataDir/src/<name>, applies the
// analyzer, and enforces the `want` expectations.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	for _, name := range pkgNames {
		name := name
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(testdataDir, "src", name)
			pkg, err := load.Dir(dir)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", dir, err)
			}
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("fixture %s does not type-check: %v", dir, pkg.TypeErrors[0])
			}
			wants := parseWants(pkg, t)

			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				t.Fatalf("analyzer %s: %v", a.Name, err)
			}
			checkWants(t, pkg.Fset, diags, wants)
		})
	}
}

// RunModule loads the fixture packages named by go-list patterns
// (relative to the test's directory, typically "./testdata/mod/..."
// spelled out per package since wildcards skip testdata), builds the
// whole-module call graph over them, applies the module analyzer with
// package filtering disabled, and enforces the `want` expectations
// gathered from every fixture package. This is the harness for
// interprocedural analyzers: expectations in package a may be triggered
// by facts that flowed out of packages b and c.
func RunModule(t *testing.T, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	if a.RunModule == nil {
		t.Fatalf("analyzer %s has no RunModule", a.Name)
	}
	pkgs, err := load.Packages(patterns...)
	if err != nil {
		t.Fatalf("loading fixture packages %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v", patterns)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("fixture %s does not type-check: %v", pkg.PkgPath, pkg.TypeErrors[0])
		}
		wants = append(wants, parseWants(pkg, t)...)
	}

	var diags []analysis.Diagnostic
	mp := &analysis.ModulePass{
		Analyzer: a,
		Fset:     pkgs[0].Fset,
		Packages: pkgs,
		Graph:    callgraph.Build(pkgs),
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.RunModule(mp); err != nil {
		t.Fatalf("module analyzer %s: %v", a.Name, err)
	}
	checkWants(t, mp.Fset, diags, wants)
}

// checkWants enforces the one-to-one matching between diagnostics and
// expectations.
func checkWants(t *testing.T, fset *token.FileSet, diags []analysis.Diagnostic, wants []*expectation) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.pos.Filename != pos.Filename || w.pos.Line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic matching %q", w.pos, w.re)
		}
	}
}
