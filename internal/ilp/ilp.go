// Package ilp provides a small exact branch-and-bound solver for the
// 0/1 assignment models the router formulates (the multicommodity-flow
// track-assignment ILP of §III-C1). The paper solves that model with
// CPLEX 12.3; this solver is the from-scratch substitute: it explores
// decision variables depth-first in order, pruning any partial assignment
// whose cost already meets the incumbent, and is exact when it terminates
// within its node budget.
package ilp

import (
	"context"
	"math"
	"time"
)

// Candidate is one feasible value for a decision variable together with
// its incremental cost given the current partial assignment.
type Candidate struct {
	Value int
	Cost  float64
}

// Problem describes a sequential decision model. The solver assigns
// variables 0..NumVars-1 in order. Candidates must return only choices
// that are feasible under the current partial assignment; Apply/Undo
// maintain the caller's incremental state.
type Problem interface {
	NumVars() int
	// Candidates appends the feasible candidates for variable v to dst
	// and returns it. The solver sorts them by cost.
	Candidates(v int, dst []Candidate) []Candidate
	Apply(v int, value int)
	Undo(v int, value int)
}

// Result reports the best assignment found.
type Result struct {
	// Values[v] is the chosen candidate value per variable; nil if no
	// complete feasible assignment was found.
	Values []int
	Cost   float64
	// Optimal is true when the search space was exhausted (the solution
	// is a proven optimum), false when the node budget cut it short.
	Optimal bool
	Nodes   int
}

// Solve runs branch and bound. nodeBudget bounds the number of search
// nodes expanded (<= 0 means unlimited).
func Solve(p Problem, nodeBudget int) Result {
	return SolveContext(context.Background(), p, nodeBudget, 0)
}

// SolveDeadline is Solve with an additional wall-clock budget
// (<= 0 means unlimited). The deadline is checked every few thousand
// nodes; exceeding it truncates the search like the node budget does.
func SolveDeadline(p Problem, nodeBudget int, deadline time.Duration) Result {
	return SolveContext(context.Background(), p, nodeBudget, deadline)
}

// SolveContext is SolveDeadline under a context: cancellation is checked
// inside the DFS on the same cadence as the wall-clock deadline, so a
// cancelled caller (a deleted server job, an expired request) gets its
// worker back within a few thousand nodes instead of after the full
// search. A cancelled run returns the best assignment found so far with
// Optimal=false, exactly like a node-budget truncation — the solver's
// incumbent is always a feasible (if not proven optimal) answer.
func SolveContext(ctx context.Context, p Problem, nodeBudget int, deadline time.Duration) Result {
	s := &solver{
		p:       p,
		n:       p.NumVars(),
		budget:  nodeBudget,
		best:    math.Inf(1),
		current: make([]int, p.NumVars()),
	}
	if deadline > 0 {
		s.deadline = time.Now().Add(deadline)
	}
	// The background context can never be cancelled; skip the per-node
	// Done checks entirely for Solve/SolveDeadline callers.
	if ctx != nil && ctx.Done() != nil {
		s.ctx = ctx
	}
	s.dfs(0, 0)
	res := Result{Cost: s.best, Optimal: !s.truncated, Nodes: s.nodes}
	if s.found {
		res.Values = s.bestVals
	} else {
		res.Cost = math.Inf(1)
	}
	return res
}

type solver struct {
	p         Problem
	n         int
	budget    int
	nodes     int
	truncated bool
	deadline  time.Time
	ctx       context.Context

	best     float64
	found    bool
	current  []int
	bestVals []int
	scratch  []Candidate
}

// checkEvery is how often (in expanded nodes) the deadline and context
// are polled; both checks share the cadence so cancellation costs one
// comparison per node in the common case.
const checkEvery = 4096

func (s *solver) dfs(v int, cost float64) {
	if s.truncated {
		return
	}
	if cost >= s.best {
		return
	}
	if v == s.n {
		s.best = cost
		s.found = true
		s.bestVals = append(s.bestVals[:0], s.current...)
		return
	}
	s.nodes++
	if s.budget > 0 && s.nodes > s.budget {
		s.truncated = true
		return
	}
	if s.nodes%checkEvery == 0 {
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.truncated = true
			return
		}
		if s.ctx != nil {
			select {
			case <-s.ctx.Done():
				s.truncated = true
				return
			default:
			}
		}
	}
	cands := s.p.Candidates(v, s.scratch[:0])
	sortCandidates(cands)
	// Keep scratch capacity for reuse, but the recursive calls below also
	// use it, so copy first.
	local := make([]Candidate, len(cands))
	copy(local, cands)
	s.scratch = cands
	for _, c := range local {
		if cost+c.Cost >= s.best {
			break // sorted: no later candidate can be better
		}
		s.current[v] = c.Value
		s.p.Apply(v, c.Value)
		s.dfs(v+1, cost+c.Cost)
		s.p.Undo(v, c.Value)
	}
}

func sortCandidates(cs []Candidate) {
	// Insertion sort: candidate lists are short and often nearly sorted.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Cost < cs[j-1].Cost; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
