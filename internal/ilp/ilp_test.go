package ilp

import (
	"context"
	"math"
	"testing"
)

// permProblem: assign n variables distinct values 0..n-1 minimizing a cost
// matrix — a tiny assignment problem with a known brute-force answer.
type permProblem struct {
	cost [][]float64
	used []bool
}

func (p *permProblem) NumVars() int { return len(p.cost) }

func (p *permProblem) Candidates(v int, dst []Candidate) []Candidate {
	for val := range p.cost[v] {
		if !p.used[val] {
			dst = append(dst, Candidate{Value: val, Cost: p.cost[v][val]})
		}
	}
	return dst
}

func (p *permProblem) Apply(v, val int) { p.used[val] = true }
func (p *permProblem) Undo(v, val int)  { p.used[val] = false }

func TestSolveAssignment(t *testing.T) {
	p := &permProblem{
		cost: [][]float64{
			{4, 1, 3},
			{2, 0, 5},
			{3, 2, 2},
		},
		used: make([]bool, 3),
	}
	res := Solve(p, 0)
	if !res.Optimal {
		t.Fatal("unlimited budget not optimal")
	}
	if res.Cost != 5 { // 1 + 2 + 2
		t.Fatalf("cost = %v, want 5 (values %v)", res.Cost, res.Values)
	}
	seen := map[int]bool{}
	for _, v := range res.Values {
		if seen[v] {
			t.Fatalf("value %d reused: %v", v, res.Values)
		}
		seen[v] = true
	}
}

// infeasibleProblem has a variable with no candidates.
type infeasibleProblem struct{ permProblem }

func (p *infeasibleProblem) Candidates(v int, dst []Candidate) []Candidate {
	if v == 1 {
		return dst
	}
	return p.permProblem.Candidates(v, dst)
}

func TestSolveInfeasible(t *testing.T) {
	p := &infeasibleProblem{permProblem{
		cost: [][]float64{{1, 2}, {1, 2}},
		used: make([]bool, 2),
	}}
	res := Solve(p, 0)
	if res.Values != nil {
		t.Fatalf("infeasible problem returned values %v", res.Values)
	}
	if !math.IsInf(res.Cost, 1) {
		t.Errorf("cost = %v, want +Inf", res.Cost)
	}
	if !res.Optimal {
		t.Error("exhaustive search should report optimal (proven infeasible)")
	}
}

func TestNodeBudgetTruncates(t *testing.T) {
	n := 9
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = float64((i*7 + j*13) % 10)
		}
	}
	p := &permProblem{cost: cost, used: make([]bool, n)}
	res := Solve(p, 5)
	if res.Optimal {
		t.Error("budget-limited search claimed optimality")
	}
	if res.Nodes <= 5 {
		// It should have at least hit the budget.
		t.Errorf("nodes = %d", res.Nodes)
	}
}

func TestPruningStillOptimal(t *testing.T) {
	// Larger instance: compare against brute force.
	cost := [][]float64{
		{9, 2, 7, 8},
		{6, 4, 3, 7},
		{5, 8, 1, 8},
		{7, 6, 9, 4},
	}
	p := &permProblem{cost: cost, used: make([]bool, 4)}
	res := Solve(p, 0)
	want := bruteForce(cost)
	if res.Cost != want {
		t.Errorf("cost = %v, want %v", res.Cost, want)
	}
}

func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(int)
	rec = func(i int) {
		if i == n {
			s := 0.0
			for r, c := range perm {
				s += cost[r][c]
			}
			if s < best {
				best = s
			}
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

func TestZeroVars(t *testing.T) {
	p := &permProblem{}
	res := Solve(p, 0)
	if res.Cost != 0 || len(res.Values) != 0 || !res.Optimal {
		t.Errorf("empty problem: %+v", res)
	}
}

// wideProblem is a large permutation instance whose full search space is
// far beyond any test-sized node budget, so a cancelled context must be
// what stops it.
func wideProblem(n int) *permProblem {
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			// Anti-diagonal costs defeat the sorted-candidate prune so the
			// search actually expands nodes.
			cost[i][j] = float64((i*j)%7) + float64(j%3)
		}
	}
	return &permProblem{cost: cost, used: make([]bool, n)}
}

func TestSolveContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first periodic check must stop the DFS
	res := SolveContext(ctx, wideProblem(12), 0, 0)
	if res.Optimal {
		t.Error("cancelled search reported optimal")
	}
	// The check cadence bounds how long a cancelled search can keep
	// running: a handful of check windows, not the full factorial tree.
	if res.Nodes > 4*checkEvery {
		t.Errorf("cancelled search expanded %d nodes, want <= %d", res.Nodes, 4*checkEvery)
	}
}

func TestSolveContextBackgroundMatchesSolve(t *testing.T) {
	a := Solve(wideProblem(7), 0)
	b := SolveContext(context.Background(), wideProblem(7), 0, 0)
	if a.Cost != b.Cost || !a.Optimal || !b.Optimal || a.Nodes != b.Nodes {
		t.Errorf("Solve %+v and SolveContext(Background) %+v diverge", a, b)
	}
}
