package stencil

import (
	"context"
	"testing"

	"stitchroute/internal/fracture"
	"stitchroute/internal/geom"
	"stitchroute/internal/plan"
)

// repeatedLayout fractures a layout with n copies of the same L-corner
// pattern spaced far apart, so each copy is its own aperture cluster.
func repeatedLayout(t *testing.T, n int) []fracture.Shot {
	t.Helper()
	var wires []geom.Segment
	for i := 0; i < n; i++ {
		x := i * 100
		wires = append(wires,
			geom.HSeg(1, 0, x, x+9),
			geom.VSeg(1, x, 0, 9),
		)
	}
	routes := []plan.NetRoute{{NetID: 1, Routed: true, Wires: wires}}
	return fracture.Fracture(routes, 1, fracture.ModeLShape, fracture.Options{}).Shots
}

func TestRepeatedPatternBecomesCharacter(t *testing.T) {
	shots := repeatedLayout(t, 5)
	p := Build(shots, Options{})
	if p.Candidates != 1 {
		t.Fatalf("candidates = %d, want 1 (one repeated pattern)", p.Candidates)
	}
	if len(p.Placements) != 1 {
		t.Fatalf("placements = %d, want 1", len(p.Placements))
	}
	ch := p.Placements[0].Char
	if ch.Count != 5 || ch.Flashes != 2 {
		t.Fatalf("character = %+v, want count 5, flashes 2", ch)
	}
	// 5 L shots: VSB = 5×2×TVSB = 10; CP = 5×TCP = 7.5 → saving 2.5.
	if p.VSBTime != 10 || p.Saving != 2.5 {
		t.Fatalf("VSBTime=%v Saving=%v, want 10 and 2.5", p.VSBTime, p.Saving)
	}
	if p.CPFlashes != 5 {
		t.Fatalf("CPFlashes = %d, want 5", p.CPFlashes)
	}
	if !p.SelectionOptimal {
		t.Error("tiny selection not proven optimal")
	}
	if p.Reduction() <= 0 {
		t.Errorf("reduction = %v, want > 0", p.Reduction())
	}
}

func TestUniquePatternNotPromoted(t *testing.T) {
	shots := repeatedLayout(t, 1)
	p := Build(shots, Options{})
	if p.Candidates != 0 || len(p.Placements) != 0 {
		t.Fatalf("unique pattern promoted: %+v", p)
	}
	if p.Saving != 0 || p.CPTime != p.VSBTime {
		t.Fatalf("unique pattern changed write time: %+v", p)
	}
}

// TestUnprofitablePatternSkipped: a repeated single-rectangle pattern
// costs 1 VSB flash but TCP > TVSB, so promoting it would slow the write.
func TestUnprofitablePatternSkipped(t *testing.T) {
	var wires []geom.Segment
	for i := 0; i < 4; i++ {
		wires = append(wires, geom.HSeg(1, 0, i*100, i*100+9))
	}
	routes := []plan.NetRoute{{NetID: 1, Routed: true, Wires: wires}}
	shots := fracture.Fracture(routes, 1, fracture.ModeRect, fracture.Options{}).Shots
	p := Build(shots, Options{TVSB: 1, TCP: 1.5})
	if p.Candidates != 0 {
		t.Fatalf("unprofitable pattern kept as candidate: %+v", p)
	}
}

// TestCapacitySelection: with a plate that fits only one character, the
// selection must keep the higher-saving pattern.
func TestCapacitySelection(t *testing.T) {
	var wires []geom.Segment
	// Pattern A: L-corner, 3 copies (saving 3×(2−1.5) = 1.5).
	for i := 0; i < 3; i++ {
		x := i * 100
		wires = append(wires, geom.HSeg(1, 0, x, x+9), geom.VSeg(1, x, 0, 9))
	}
	// Pattern B: taller L-corner, 8 copies (saving 8×(2−1.5) = 4).
	for i := 0; i < 8; i++ {
		x := 1000 + i*100
		wires = append(wires, geom.HSeg(1, 0, x, x+14), geom.VSeg(1, x, 0, 14))
	}
	routes := []plan.NetRoute{{NetID: 1, Routed: true, Wires: wires}}
	shots := fracture.Fracture(routes, 1, fracture.ModeLShape, fracture.Options{}).Shots
	// Plate sized so one 15×15 character (+halo) fits but not both
	// characters together.
	p := Build(shots, Options{StencilW: 20, StencilH: 20, Halo: 2})
	if p.Candidates != 2 {
		t.Fatalf("candidates = %d, want 2", p.Candidates)
	}
	if len(p.Placements) != 1 {
		t.Fatalf("placements = %d, want 1 (capacity for one)", len(p.Placements))
	}
	if got := p.Placements[0].Char.Count; got != 8 {
		t.Fatalf("selected the count-%d pattern, want the count-8 one", got)
	}
	if p.Saving != 4 {
		t.Fatalf("saving = %v, want 4", p.Saving)
	}
}

// TestPackingRespectsPlate: many characters pack within bounds, halos
// are honored between pattern boxes, and no two placements overlap.
func TestPackingRespectsPlate(t *testing.T) {
	var wires []geom.Segment
	// 6 distinct repeated patterns of varying height.
	for k := 0; k < 6; k++ {
		for i := 0; i < 2; i++ {
			x := k*1000 + i*100
			wires = append(wires, geom.HSeg(1, 0, x, x+9), geom.VSeg(1, x, 0, 5+2*k))
		}
	}
	routes := []plan.NetRoute{{NetID: 1, Routed: true, Wires: wires}}
	shots := fracture.Fracture(routes, 1, fracture.ModeLShape, fracture.Options{}).Shots
	opts := Options{StencilW: 30, StencilH: 60, Halo: 2}
	p := Build(shots, opts)
	if p.Selected == 0 {
		t.Fatal("nothing selected")
	}
	if p.Selected != len(p.Placements)+p.Dropped {
		t.Fatalf("selected %d != placed %d + dropped %d", p.Selected, len(p.Placements), p.Dropped)
	}
	for i, pl := range p.Placements {
		if pl.X < opts.Halo || pl.Y < opts.Halo ||
			pl.X+pl.Char.W+opts.Halo > opts.StencilW ||
			pl.Y+pl.Char.H+opts.Halo > opts.StencilH {
			t.Fatalf("placement %d out of plate: %+v", i, pl)
		}
		a := geom.Rect{X0: pl.X, Y0: pl.Y, X1: pl.X + pl.Char.W - 1, Y1: pl.Y + pl.Char.H - 1}
		for j := i + 1; j < len(p.Placements); j++ {
			o := p.Placements[j]
			b := geom.Rect{X0: o.X, Y0: o.Y, X1: o.X + o.Char.W - 1, Y1: o.Y + o.Char.H - 1}
			if a.Overlaps(b) {
				t.Fatalf("placements %d and %d overlap: %+v vs %+v", i, j, pl, o)
			}
		}
	}
	if p.SharedBlank <= 0 {
		t.Errorf("overlapping-aware packing recovered no blank area")
	}
}

func TestPlanDeterministic(t *testing.T) {
	shots := repeatedLayout(t, 6)
	h1, err := PlanHash(Build(shots, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := PlanHash(Build(shots, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("plan hash unstable: %s vs %s", h1[:12], h2[:12])
	}
}

func TestBuildContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, repeatedLayout(t, 3), Options{}); err == nil {
		t.Fatal("cancelled build returned nil error")
	}
}

func TestEmptyShots(t *testing.T) {
	p := Build(nil, Options{})
	if p.Clusters != 0 || p.Candidates != 0 || p.VSBTime != 0 || p.Saving != 0 {
		t.Fatalf("empty input produced %+v", p)
	}
}
