// Package stencil implements the second stage of the MEBL write-prep
// pipeline: overlapping-aware stencil planning for character projection.
//
// A character-projection (CP) writer exposes a whole pre-etched stencil
// character in one flash, while a variable-shaped-beam (VSB) writer needs
// one flash per rectangle (two per L-shape shot). Given the fractured
// shot library, the planner
//
//  1. clusters shots into aperture-sized windows and content-hashes each
//     window's bbox-normalized pattern, so repeated patterns across the
//     layout collapse into character candidates;
//  2. selects the candidate set that maximizes write-time saving under
//     the stencil area capacity, with the branch-and-bound solver
//     (internal/ilp) — each repeated pattern saves
//     count × (flashes × TVSB − TCP) when promoted to a character;
//  3. packs the selected characters onto the stencil with E-BLOW-style
//     overlapping-aware 1D row packing (arXiv 1502.00621): neighboring
//     characters share their blank halos, so a row fits more characters
//     than naive per-character margins would allow. Characters that
//     still miss the stencil are dropped deterministically (lowest
//     saving first) until the plan fits.
//
// Every shot then writes either as its CP character (1 flash per cluster
// occurrence) or as VSB rectangles, and the plan reports both write
// times under a simple per-flash throughput model. Like the router and
// the fracturer, planning is deterministic: byte-identical plans for
// byte-identical shot lists.
package stencil

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"stitchroute/internal/fracture"
	"stitchroute/internal/geom"
)

// Options tunes stencil planning. The zero value of any field selects
// its default.
type Options struct {
	// StencilW, StencilH are the stencil plate dimensions in track units.
	StencilW, StencilH int
	// Aperture is the maximum character window side: a cluster of shots
	// only becomes a character candidate if its bbox fits Aperture².
	Aperture int
	// Halo is the blank margin a character needs around its pattern.
	// Overlapping-aware packing lets neighboring characters share it.
	Halo int
	// TVSB and TCP are the per-flash write times (arbitrary units) of a
	// VSB rectangle flash and a CP character flash.
	TVSB, TCP float64
	// MaxCandidates caps how many candidates (by saving, descending) the
	// exact selection considers; the rest are never profitable enough to
	// matter and are skipped outright.
	MaxCandidates int
}

// Defaults for Options.
const (
	DefaultStencilW      = 400
	DefaultStencilH      = 400
	DefaultAperture      = 40
	DefaultHalo          = 2
	DefaultTVSB          = 1.0
	DefaultTCP           = 1.5
	DefaultMaxCandidates = 64
)

func (o Options) withDefaults() Options {
	if o.StencilW <= 0 {
		o.StencilW = DefaultStencilW
	}
	if o.StencilH <= 0 {
		o.StencilH = DefaultStencilH
	}
	if o.Aperture <= 0 {
		o.Aperture = DefaultAperture
	}
	if o.Halo <= 0 {
		o.Halo = DefaultHalo
	}
	if o.TVSB <= 0 {
		o.TVSB = DefaultTVSB
	}
	if o.TCP <= 0 {
		o.TCP = DefaultTCP
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = DefaultMaxCandidates
	}
	return o
}

// Character is one stencil character candidate: a repeated bbox-
// normalized shot pattern.
type Character struct {
	// Hash identifies the normalized pattern (content address).
	Hash string `json:"hash"`
	// W, H are the pattern bbox dimensions.
	W int `json:"w"`
	H int `json:"h"`
	// Count is how many clusters in the layout print this pattern.
	Count int `json:"count"`
	// Flashes is the VSB flash count of one pattern instance.
	Flashes int `json:"flashes"`
	// Saving is Count × (Flashes × TVSB − TCP): the write-time saved by
	// promoting the pattern to a CP character.
	Saving float64 `json:"saving"`

	shots []fracture.Shot // normalized to the bbox origin, layer 0
}

// Placement is one packed character on the stencil plate.
type Placement struct {
	Char Character `json:"char"`
	X    int       `json:"x"`
	Y    int       `json:"y"`
}

// Plan is the stencil planning result.
type Plan struct {
	// Placements is the packed character set, row-major on the plate.
	Placements []Placement `json:"placements"`
	// Candidates is how many repeated patterns were worth considering;
	// Selected ≤ Candidates were chosen, Dropped of those missed the
	// plate during packing and write as VSB after all.
	Candidates int `json:"candidates"`
	Selected   int `json:"selected"`
	Dropped    int `json:"dropped"`

	// Clusters is the total number of aperture windows; CPFlashes of
	// them print as a stencil character.
	Clusters  int `json:"clusters"`
	CPFlashes int `json:"cpFlashes"`

	// VSBTime is the write time with every shot as VSB flashes; CPTime
	// is the write time under this plan; Saving = VSBTime − CPTime.
	VSBTime float64 `json:"vsbTime"`
	CPTime  float64 `json:"cpTime"`
	Saving  float64 `json:"saving"`

	// SharedBlank is the plate area (track² units) the overlapping-aware
	// packing recovered versus naive per-character halos.
	SharedBlank int `json:"sharedBlank"`
	// SelectionOptimal is false when the branch-and-bound selection hit
	// its node budget and the character set is merely the incumbent.
	SelectionOptimal bool `json:"selectionOptimal"`
}

// Reduction returns the fractional write-time reduction of the plan.
func (p *Plan) Reduction() float64 {
	if p.VSBTime == 0 {
		return 0
	}
	return p.Saving / p.VSBTime
}

// Build plans a stencil for the fractured shot list.
func Build(shots []fracture.Shot, opts Options) *Plan {
	p, err := BuildContext(context.Background(), shots, opts)
	if err != nil {
		panic("stencil: background context cancelled: " + err.Error())
	}
	return p
}

// BuildContext is Build under a context: cancellation is observed
// between stages and inside the selection search.
func BuildContext(ctx context.Context, shots []fracture.Shot, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	clusters := clusterShots(shots, opts.Aperture)
	cands, classOf := characterCandidates(clusters, opts)
	plan := &Plan{
		Candidates:       len(cands),
		Clusters:         len(clusters),
		SelectionOptimal: true,
	}
	for _, s := range shots {
		plan.VSBTime += flashes(s) * opts.TVSB
	}
	plan.CPTime = plan.VSBTime
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("stencil: %w", err)
	}
	if len(cands) > 0 {
		selected, optimal, err := selectCharacters(ctx, cands, opts)
		if err != nil {
			return nil, err
		}
		plan.SelectionOptimal = optimal
		packed, shared := pack(selected, opts)
		plan.Placements = packed
		plan.Selected = len(selected)
		plan.Dropped = len(selected) - len(packed)
		plan.SharedBlank = shared

		onStencil := make(map[string]bool, len(packed))
		for _, pl := range packed {
			onStencil[pl.Char.Hash] = true
			plan.Saving += pl.Char.Saving
		}
		plan.CPTime = plan.VSBTime - plan.Saving
		for _, cl := range classOf {
			if onStencil[cl] {
				plan.CPFlashes++
			}
		}
	}
	return plan, nil
}

// flashes returns the VSB flash count of one shot: an L-shape shot
// exposes as its two rectangles.
func flashes(s fracture.Shot) float64 {
	if s.IsL() {
		return 2
	}
	return 1
}

// cluster is one aperture window: a run of canonically-ordered shots on
// one layer whose combined bbox fits the aperture.
type cluster struct {
	shots []fracture.Shot
	bbox  geom.Rect
}

// clusterShots greedily windows the canonical shot list per layer:
// consecutive shots join the open cluster while the union bbox still
// fits Aperture²; any overflow closes it. Greedy on a canonical order is
// what keeps the clustering — and hence the whole plan — deterministic.
func clusterShots(shots []fracture.Shot, aperture int) []cluster {
	var out []cluster
	var cur *cluster
	for _, s := range shots {
		b := s.A
		if s.IsL() {
			b = b.Union(s.B)
		}
		if cur != nil && s.Layer == cur.shots[0].Layer {
			u := cur.bbox.Union(b)
			if u.W() <= aperture && u.H() <= aperture {
				cur.shots = append(cur.shots, s)
				cur.bbox = u
				continue
			}
		}
		out = append(out, cluster{shots: []fracture.Shot{s}, bbox: b})
		cur = &out[len(out)-1]
	}
	// A pattern that alone exceeds the aperture can never be a character.
	kept := out[:0]
	for _, c := range out {
		if c.bbox.W() <= aperture && c.bbox.H() <= aperture {
			kept = append(kept, c)
		}
	}
	return kept
}

// patternKey serializes the cluster's shots translated to the bbox
// origin, layer-agnostic — clusters printing the same ink in the same
// arrangement collapse to one key regardless of position or layer.
func patternKey(c cluster) string {
	h := sha256.New()
	bw := bufio.NewWriter(h)
	writeNormalized(bw, c)
	bw.Flush()
	return hex.EncodeToString(h.Sum(nil))
}

func writeNormalized(w io.Writer, c cluster) {
	dx, dy := -c.bbox.X0, -c.bbox.Y0
	for _, s := range c.shots {
		a := shiftRect(s.A, dx, dy)
		if s.IsL() {
			b := shiftRect(s.B, dx, dy)
			fmt.Fprintf(w, "L %d %d %d %d %d %d %d %d\n",
				a.X0, a.Y0, a.X1, a.Y1, b.X0, b.Y0, b.X1, b.Y1)
		} else {
			fmt.Fprintf(w, "R %d %d %d %d\n", a.X0, a.Y0, a.X1, a.Y1)
		}
	}
}

func shiftRect(r geom.Rect, dx, dy int) geom.Rect {
	return geom.Rect{X0: r.X0 + dx, Y0: r.Y0 + dy, X1: r.X1 + dx, Y1: r.Y1 + dy}
}

// normalizedShots returns the cluster's shots translated to the bbox
// origin with the layer cleared.
func normalizedShots(c cluster) []fracture.Shot {
	dx, dy := -c.bbox.X0, -c.bbox.Y0
	out := make([]fracture.Shot, len(c.shots))
	for i, s := range c.shots {
		out[i] = fracture.Shot{A: shiftRect(s.A, dx, dy), B: s.B}
		if s.IsL() {
			out[i].B = shiftRect(s.B, dx, dy)
		}
	}
	return out
}

// characterCandidates groups the clusters by pattern key and returns the
// profitable repeated patterns (count ≥ 2, positive saving) sorted by
// saving descending, plus each cluster's pattern key for the flash
// accounting. Map iteration is confined to key collection; every output
// ordering is sorted.
func characterCandidates(clusters []cluster, opts Options) ([]Character, []string) {
	classOf := make([]string, len(clusters))
	byKey := map[string]*Character{}
	for i, c := range clusters {
		key := patternKey(c)
		classOf[i] = key
		ch := byKey[key]
		if ch == nil {
			fl := 0
			for _, s := range c.shots {
				fl += int(flashes(s))
			}
			ch = &Character{
				Hash:    key,
				W:       c.bbox.W(),
				H:       c.bbox.H(),
				Flashes: fl,
				shots:   normalizedShots(c),
			}
			byKey[key] = ch
		}
		ch.Count++
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var cands []Character
	for _, k := range keys {
		ch := *byKey[k]
		ch.Saving = float64(ch.Count) * (float64(ch.Flashes)*opts.TVSB - opts.TCP)
		if ch.Count >= 2 && ch.Saving > 0 {
			cands = append(cands, ch)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Saving > cands[j].Saving {
			return true
		}
		if cands[i].Saving < cands[j].Saving {
			return false
		}
		return cands[i].Hash < cands[j].Hash
	})
	if len(cands) > opts.MaxCandidates {
		cands = cands[:opts.MaxCandidates]
	}
	return cands, classOf
}
