package stencil

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// WritePlan serializes the plan's placements in canonical text form: one
// character per line with its plate position, in packed order.
func WritePlan(w io.Writer, p *Plan) error {
	bw := bufio.NewWriter(w)
	for _, pl := range p.Placements {
		fmt.Fprintf(bw, "%s %d %d %dx%d x%d\n",
			pl.Char.Hash, pl.X, pl.Y, pl.Char.W, pl.Char.H, pl.Char.Count)
	}
	return bw.Flush()
}

// PlanHash returns the SHA-256 of the canonical plan serialization — the
// stencil analog of fracture.ShotsHash, used to assert that planning is
// deterministic.
func PlanHash(p *Plan) (string, error) {
	h := sha256.New()
	if err := WritePlan(h, p); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
