// Character selection and overlapping-aware plate packing.
package stencil

import (
	"context"
	"fmt"

	"stitchroute/internal/ilp"
)

// selectProblem is the branch-and-bound model for character selection:
// one 0/1 variable per candidate, in saving-descending order. Skipping a
// candidate costs its saving (write time not recovered); selecting costs
// nothing but consumes plate capacity. The capacity model matches the
// overlapping-aware packer: a character's footprint is (W+Halo)×(H+Halo)
// — one shared halo per side — against a plate of
// (StencilW−Halo)×(StencilH−Halo) usable area, so selection and packing
// agree except for row fragmentation (which packing resolves by
// deterministic drops).
type selectProblem struct {
	cands []Character
	halo  int
	cap   int
	used  int
}

func (p *selectProblem) footprint(i int) int {
	return (p.cands[i].W + p.halo) * (p.cands[i].H + p.halo)
}

func (p *selectProblem) NumVars() int { return len(p.cands) }

func (p *selectProblem) Candidates(v int, dst []ilp.Candidate) []ilp.Candidate {
	if p.used+p.footprint(v) <= p.cap {
		dst = append(dst, ilp.Candidate{Value: 1, Cost: 0})
	}
	return append(dst, ilp.Candidate{Value: 0, Cost: p.cands[v].Saving})
}

func (p *selectProblem) Apply(v, val int) {
	if val == 1 {
		p.used += p.footprint(v)
	}
}

func (p *selectProblem) Undo(v, val int) {
	if val == 1 {
		p.used -= p.footprint(v)
	}
}

// selectNodeBudget bounds the selection search. MaxCandidates variables
// with two values each stay comfortably under it in practice; hitting it
// degrades the plan to the incumbent (SelectionOptimal=false), never
// breaks it.
const selectNodeBudget = 1 << 18

// selectCharacters picks the character subset maximizing total saving
// under the plate capacity.
func selectCharacters(ctx context.Context, cands []Character, opts Options) ([]Character, bool, error) {
	p := &selectProblem{
		cands: cands,
		halo:  opts.Halo,
		cap:   (opts.StencilW - opts.Halo) * (opts.StencilH - opts.Halo),
	}
	sol := ilp.SolveContext(ctx, p, selectNodeBudget, 0)
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("stencil: %w", err)
	}
	var selected []Character
	if sol.Values == nil {
		// Cannot happen — skipping everything is always feasible — but
		// degrade to an empty stencil rather than fail.
		return nil, false, nil
	}
	for i, v := range sol.Values {
		if v == 1 {
			selected = append(selected, cands[i])
		}
	}
	return selected, sol.Optimal, nil
}

// pack shelf-packs the selected characters onto the plate, sharing halos
// between horizontal neighbors and between rows (E-BLOW's 1D
// overlapping-aware packing, applied per shelf). Characters are placed
// tallest-first; one that fits neither the open row nor a fresh row is
// dropped — selection order is saving-descending, so drops sacrifice the
// least valuable characters first. Returns the placements and the plate
// area recovered versus naive per-character margins.
func pack(selected []Character, opts Options) ([]Placement, int) {
	// Tallest-first keeps shelves dense; ties break by the candidate
	// order (saving descending, then hash), which is already the slice
	// order, so a stable criterion on height alone suffices.
	order := make([]int, len(selected))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && selected[order[j]].H > selected[order[j-1]].H; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	halo := opts.Halo
	var placements []Placement
	x, y, rowH := halo, halo, 0
	shared := 0
	for _, idx := range order {
		ch := selected[idx]
		if x+ch.W+halo > opts.StencilW && rowH > 0 {
			// Close the shelf; the next one shares this one's top halo.
			y += rowH + halo
			x, rowH = halo, 0
		}
		if x+ch.W+halo > opts.StencilW || y+ch.H+halo > opts.StencilH {
			continue // dropped: does not fit even on a fresh shelf
		}
		placements = append(placements, Placement{Char: ch, X: x, Y: y})
		x += ch.W + halo
		if ch.H > rowH {
			rowH = ch.H
		}
		// Versus naive margins every character pays 2×halo per side; the
		// shelf shares one halo with each neighbor.
		shared += (ch.W+2*halo)*(ch.H+2*halo) - (ch.W+halo)*(ch.H+halo)
	}
	return placements, shared
}
