package interval

import (
	"math/rand"
	"testing"
)

// BenchmarkMaxWeightKColorable measures the Carlisle–Lloyd min-cost-flow
// selection on a panel-sized instance.
func BenchmarkMaxWeightKColorable(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := make([]Interval, 60)
	for i := range items {
		lo := rng.Intn(40)
		items[i] = Interval{lo, lo + rng.Intn(20), int64(1 + rng.Intn(50))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeightKColorable(items, 3)
	}
}
