package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxWeightKColorableSimple(t *testing.T) {
	// Three mutually overlapping intervals, k=2: drop the lightest.
	items := []Interval{
		{0, 10, 5},
		{0, 10, 3},
		{0, 10, 9},
	}
	sel := MaxWeightKColorable(items, 2)
	if len(sel) != 2 {
		t.Fatalf("selected %v, want 2 items", sel)
	}
	var w int64
	for _, i := range sel {
		w += items[i].Weight
	}
	if w != 14 {
		t.Errorf("weight %d, want 14", w)
	}
}

func TestMaxWeightKColorableDisjoint(t *testing.T) {
	items := []Interval{{0, 1, 4}, {2, 3, 4}, {4, 5, 4}}
	sel := MaxWeightKColorable(items, 1)
	if len(sel) != 3 {
		t.Errorf("disjoint intervals all selectable with k=1, got %v", sel)
	}
}

func TestMaxWeightKColorableEdgeCases(t *testing.T) {
	if sel := MaxWeightKColorable(nil, 3); sel != nil {
		t.Error("nil input should select nothing")
	}
	if sel := MaxWeightKColorable([]Interval{{0, 5, 3}}, 0); sel != nil {
		t.Error("k=0 should select nothing")
	}
	// Empty and zero-weight intervals are skipped.
	sel := MaxWeightKColorable([]Interval{{5, 2, 100}, {0, 1, 0}, {0, 1, 7}}, 1)
	if len(sel) != 1 || sel[0] != 2 {
		t.Errorf("sel = %v, want [2]", sel)
	}
}

func selectionValid(items []Interval, sel []int, k int) bool {
	sub := make([]Interval, len(sel))
	for i, idx := range sel {
		sub[i] = items[idx]
	}
	return MaxDensity(sub) <= k
}

func TestMaxWeightKColorableAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 60; iter++ {
		n := 1 + rng.Intn(8)
		k := 1 + rng.Intn(3)
		items := make([]Interval, n)
		for i := range items {
			lo := rng.Intn(12)
			items[i] = Interval{lo, lo + rng.Intn(6), int64(1 + rng.Intn(9))}
		}
		sel := MaxWeightKColorable(items, k)
		if !selectionValid(items, sel, k) {
			t.Fatalf("iter %d: selection %v exceeds density %d", iter, sel, k)
		}
		var got int64
		for _, i := range sel {
			got += items[i].Weight
		}
		want := bruteBest(items, k)
		if got != want {
			t.Fatalf("iter %d: flow %d, brute force %d (items %v, k=%d)", iter, got, want, items, k)
		}
	}
}

func bruteBest(items []Interval, k int) int64 {
	var best int64
	n := len(items)
	for mask := 0; mask < 1<<n; mask++ {
		var sub []Interval
		var w int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, items[i])
				w += items[i].Weight
			}
		}
		if MaxDensity(sub) <= k && w > best {
			best = w
		}
	}
	return best
}

func TestGreedyColorValid(t *testing.T) {
	items := []Interval{{0, 4, 1}, {2, 6, 1}, {5, 9, 1}, {7, 12, 1}}
	colors, ok := GreedyColor(items, 2)
	if !ok {
		t.Fatal("2-colorable set rejected")
	}
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			if colors[i] == colors[j] && items[i].Overlaps(items[j]) {
				t.Errorf("items %d and %d overlap with same color %d", i, j, colors[i])
			}
		}
	}
}

func TestGreedyColorInfeasible(t *testing.T) {
	items := []Interval{{0, 9, 1}, {0, 9, 1}, {0, 9, 1}}
	if _, ok := GreedyColor(items, 2); ok {
		t.Error("3 mutually overlapping intervals 2-colored")
	}
}

func TestGreedyColorMatchesDensity(t *testing.T) {
	// Property: a set is k-colorable by the greedy iff its max density <= k
	// (interval graphs are perfect).
	f := func(raw []uint8, kRaw uint8) bool {
		k := 1 + int(kRaw%4)
		n := len(raw) / 2
		if n > 10 {
			n = 10
		}
		items := make([]Interval, n)
		for i := 0; i < n; i++ {
			lo := int(raw[2*i] % 16)
			items[i] = Interval{lo, lo + int(raw[2*i+1]%8), 1}
		}
		_, ok := GreedyColor(items, k)
		return ok == (MaxDensity(items) <= k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxDensity(t *testing.T) {
	cases := []struct {
		items []Interval
		want  int
	}{
		{nil, 0},
		{[]Interval{{0, 5, 1}}, 1},
		{[]Interval{{0, 5, 1}, {5, 9, 1}}, 2}, // touch at 5
		{[]Interval{{0, 4, 1}, {5, 9, 1}}, 1}, // disjoint
		{[]Interval{{0, 9, 1}, {1, 2, 1}, {2, 3, 1}}, 3},
		{[]Interval{{3, 1, 1}}, 0}, // empty interval ignored
	}
	for i, c := range cases {
		if got := MaxDensity(c.items); got != c.want {
			t.Errorf("case %d: MaxDensity = %d, want %d", i, got, c.want)
		}
	}
}

func TestSelectedSubsetIsGreedyColorable(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(14)
		k := 1 + rng.Intn(4)
		items := make([]Interval, n)
		for i := range items {
			lo := rng.Intn(20)
			items[i] = Interval{lo, lo + rng.Intn(8), int64(1 + rng.Intn(5))}
		}
		sel := MaxWeightKColorable(items, k)
		sub := make([]Interval, len(sel))
		for i, idx := range sel {
			sub[i] = items[idx]
		}
		if _, ok := GreedyColor(sub, k); !ok {
			t.Fatalf("iter %d: selected subset not %d-colorable", iter, k)
		}
	}
}
