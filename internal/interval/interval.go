// Package interval implements the interval-graph algorithms behind the
// paper's layer-assignment heuristic (§III-B): the maximum-weight
// k-colorable subset of intervals via min-cost flow (Carlisle & Lloyd,
// "On the k-coloring of intervals", 1995 — reference [2] of the paper) and
// greedy k-coloring of interval sets.
package interval

import (
	"sort"

	"stitchroute/internal/flow"
)

// Interval is a closed integer interval [Lo, Hi] with a selection weight.
// Two intervals conflict iff they share an integer point.
type Interval struct {
	Lo, Hi int
	Weight int64
}

// Overlaps reports whether the two closed intervals conflict.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Lo <= o.Hi && o.Lo <= iv.Hi
}

// MaxWeightKColorable returns the indices of a maximum-total-weight subset
// of items such that no point is covered by more than k of the selected
// intervals — for interval graphs, exactly the maximum-weight k-colorable
// vertex set. Solved exactly with a min-cost flow of value k over the
// coordinate chain (Carlisle–Lloyd).
func MaxWeightKColorable(items []Interval, k int) []int {
	if k <= 0 || len(items) == 0 {
		return nil
	}
	// Coordinate-compress {Lo} ∪ {Hi+1}.
	coords := make([]int, 0, 2*len(items))
	for _, iv := range items {
		if iv.Lo > iv.Hi {
			continue
		}
		coords = append(coords, iv.Lo, iv.Hi+1)
	}
	if len(coords) == 0 {
		return nil
	}
	sort.Ints(coords)
	coords = dedupInts(coords)
	index := make(map[int]int, len(coords))
	for i, c := range coords {
		index[c] = i
	}

	m := len(coords)
	// Vertices: 0..m-1 chain nodes, m = source, m+1 = sink.
	g := flow.NewNetwork(m + 2)
	src, snk := m, m+1
	g.AddArc(src, 0, int64(k), 0)
	g.AddArc(m-1, snk, int64(k), 0)
	for i := 0; i+1 < m; i++ {
		g.AddArc(i, i+1, int64(k), 0)
	}
	arcOf := make(map[int]int, len(items)) // item index -> arc id
	for i, iv := range items {
		if iv.Lo > iv.Hi || iv.Weight <= 0 {
			continue // empty or worthless intervals are never selected
		}
		arcOf[i] = g.AddArc(index[iv.Lo], index[iv.Hi+1], 1, -iv.Weight)
	}
	g.MinCostFlow(src, snk, int64(k), false)

	var selected []int
	for i := range items {
		if id, ok := arcOf[i]; ok && g.Flow(id) > 0 {
			selected = append(selected, i)
		}
	}
	sort.Ints(selected)
	return selected
}

// GreedyColor k-colors the given intervals left to right, returning
// colors[i] in 0..k-1, or ok=false if the set is not k-colorable (some
// point covered by more than k intervals). Deterministic: ties break by
// interval order.
func GreedyColor(items []Interval, k int) (colors []int, ok bool) {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		if ia.Lo != ib.Lo {
			return ia.Lo < ib.Lo
		}
		return ia.Hi < ib.Hi
	})
	colors = make([]int, len(items))
	for i := range colors {
		colors[i] = -1
	}
	lastHi := make([]int, k) // rightmost covered point per color
	for i := range lastHi {
		lastHi[i] = -1 << 60
	}
	for _, idx := range order {
		iv := items[idx]
		assigned := -1
		for c := 0; c < k; c++ {
			if lastHi[c] < iv.Lo {
				assigned = c
				break
			}
		}
		if assigned == -1 {
			return nil, false
		}
		colors[idx] = assigned
		if iv.Hi > lastHi[assigned] {
			lastHi[assigned] = iv.Hi
		}
	}
	return colors, true
}

// MaxDensity returns the maximum number of intervals covering any single
// point (the clique number of the interval graph), 0 for no intervals.
func MaxDensity(items []Interval) int {
	type event struct {
		pos   int
		delta int
	}
	evs := make([]event, 0, 2*len(items))
	for _, iv := range items {
		if iv.Lo > iv.Hi {
			continue
		}
		evs = append(evs, event{iv.Lo, +1}, event{iv.Hi + 1, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].pos != evs[j].pos {
			return evs[i].pos < evs[j].pos
		}
		return evs[i].delta < evs[j].delta
	})
	cur, best := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > best {
			best = cur
		}
	}
	return best
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
