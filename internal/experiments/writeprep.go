package experiments

import (
	"fmt"
	"io"
	"time"

	"stitchroute/internal/core"
	"stitchroute/internal/fracture"
	"stitchroute/internal/stencil"
)

// ---------------------------------------------------------------------
// Table IX (extension): downstream MEBL write-prep — fracturing and
// stencil planning on the stitch-aware router's output.

// Table9Row reports the write-prep pipeline on one circuit: both
// fracturing modes plus the stencil plan built on the L-shape shots.
type Table9Row struct {
	Circuit     string
	RectShots   int           // rectangle-only baseline shot count
	LShapeShots int           // shot count with L-shape pairing
	LShots      int           // how many of those are L-shape shots
	Slivers     int           // sub-SliverLen shots remaining (lshape mode)
	Characters  int           // stencil characters packed onto the plate
	Clusters    int           // aperture windows in the layout
	CPFlashes   int           // clusters printing as a CP character
	WriteSaving float64       // fractional write-time reduction of the plan
	CPU         time.Duration // fracture (both modes) + stencil wall time
}

// ShotReduction is the fractional VSB shot-count reduction of L-shape
// fracturing versus the rectangle baseline.
func (r Table9Row) ShotReduction() float64 {
	return 1 - ratio(float64(r.LShapeShots), float64(r.RectShots))
}

// Table9 routes the named circuits with the stitch-aware flow and runs
// the full write-prep pipeline on the committed routes. Circuits run in
// parallel; each circuit's write-prep stages run serially so the CPU
// column stays meaningful.
func Table9(circuits []string) ([]Table9Row, error) {
	rows := make([]Table9Row, len(circuits))
	err := forEachCircuit(circuits, func(i int, name string) error {
		c, res, err := RouteCircuit(name, core.StitchAware())
		if err != nil {
			return err
		}
		start := time.Now()
		rect := fracture.Fracture(res.Routes, c.Fabric.Layers, fracture.ModeRect, fracture.Options{})
		ls := fracture.Fracture(res.Routes, c.Fabric.Layers, fracture.ModeLShape, fracture.Options{})
		plan := stencil.Build(ls.Shots, stencil.Options{})
		rows[i] = Table9Row{
			Circuit:     name,
			RectShots:   rect.ShotCount,
			LShapeShots: ls.ShotCount,
			LShots:      ls.LShots,
			Slivers:     ls.Slivers,
			Characters:  len(plan.Placements),
			Clusters:    plan.Clusters,
			CPFlashes:   plan.CPFlashes,
			WriteSaving: plan.Reduction(),
			CPU:         time.Since(start),
		}
		return nil
	})
	return rows, err
}

// FprintTable9 renders the write-prep table.
func FprintTable9(w io.Writer, rows []Table9Row) {
	fmt.Fprintf(w, "%-10s | %9s %9s %7s | %6s %8s %9s %8s | %8s\n",
		"Circuit", "RectShots", "L-Shots", "Red%", "#Char", "CP/Clust", "WriteRed%", "Slivers", "CPU(s)")
	var rectTot, lsTot int
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %9d %9d %7.2f | %6d %4d/%-4d %9.2f %8d | %8.2f\n",
			r.Circuit, r.RectShots, r.LShapeShots, 100*r.ShotReduction(),
			r.Characters, r.CPFlashes, r.Clusters, 100*r.WriteSaving,
			r.Slivers, r.CPU.Seconds())
		rectTot += r.RectShots
		lsTot += r.LShapeShots
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-10s | %9d %9d %7.2f |\n",
		"Total", rectTot, lsTot, 100*(1-ratio(float64(lsTot), float64(rectTot))))
}
