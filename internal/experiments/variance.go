package experiments

import (
	"fmt"
	"io"
	"math"

	"stitchroute/internal/bench"
	"stitchroute/internal/core"
)

// VarianceRow is one independently generated instance's result pair.
type VarianceRow struct {
	Seed           int64
	Baseline, Ours RouteSummary
}

// VarianceSummary aggregates the study.
type VarianceSummary struct {
	Rows []VarianceRow
	// SPRatioMean/Std summarize ours.SP / baseline.SP across seeds.
	SPRatioMean, SPRatioStd float64
	// RoutDeltaMean is the mean routability difference (ours - baseline).
	RoutDeltaMean float64
}

// Variance re-generates the named circuit with nSeeds independent seeds
// and routes each with both routers — the robustness check that the
// headline Table III result is not an artifact of one synthetic instance.
func Variance(circuit string, nSeeds int) (VarianceSummary, error) {
	var sum VarianceSummary
	spec, err := bench.ByName(circuit)
	if err != nil {
		return sum, err
	}
	rows := make([]VarianceRow, nSeeds)
	err = forEachCircuit(make([]string, nSeeds), func(i int, _ string) error {
		sp := spec
		sp.SeedOffset = int64(i)
		c := bench.Generate(sp)
		base, err := core.Route(c, core.Baseline())
		if err != nil {
			return err
		}
		c2 := bench.Generate(sp)
		ours, err := core.Route(c2, core.StitchAware())
		if err != nil {
			return err
		}
		rows[i] = VarianceRow{Seed: int64(i), Baseline: summarize(base), Ours: summarize(ours)}
		return nil
	})
	if err != nil {
		return sum, err
	}
	sum.Rows = rows
	var ratios []float64
	for _, r := range rows {
		if r.Baseline.SP > 0 {
			ratios = append(ratios, float64(r.Ours.SP)/float64(r.Baseline.SP))
		}
		sum.RoutDeltaMean += r.Ours.Rout - r.Baseline.Rout
	}
	sum.RoutDeltaMean /= float64(len(rows))
	for _, v := range ratios {
		sum.SPRatioMean += v
	}
	if len(ratios) > 0 {
		sum.SPRatioMean /= float64(len(ratios))
		for _, v := range ratios {
			d := v - sum.SPRatioMean
			sum.SPRatioStd += d * d
		}
		sum.SPRatioStd = math.Sqrt(sum.SPRatioStd / float64(len(ratios)))
	}
	return sum, nil
}

// FprintVariance renders the study.
func FprintVariance(w io.Writer, circuit string, s VarianceSummary) {
	fmt.Fprintf(w, "Seed variance on %s (%d independent instances)\n", circuit, len(s.Rows))
	fmt.Fprintf(w, "%6s | %9s %6s | %9s %6s\n", "seed", "BaseRout%", "#SP", "OursRout%", "#SP")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%6d | %9.2f %6d | %9.2f %6d\n",
			r.Seed, r.Baseline.Rout, r.Baseline.SP, r.Ours.Rout, r.Ours.SP)
	}
	fmt.Fprintf(w, "SP ratio %.4f ± %.4f, routability delta %+.2f%%\n",
		s.SPRatioMean, s.SPRatioStd, s.RoutDeltaMean)
}
