package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"stitchroute/internal/layer"
)

// small-instance parameters for the optimality-gap study
const (
	gapInstances = 25
	gapSegs      = 9
	gapRows      = 14
	gapBudget    = 5_000_000
)

// DefaultTable6Gap runs the gap study with the default parameters.
func DefaultTable6Gap() []Table6GapRow {
	return Table6Gap(2013, gapInstances, gapSegs, gapRows, gapBudget)
}

// Table VI layer counts from the paper.
var tableVILayers = []int{2, 3, 4, 5}

// InstanceSet is the randomized layer-assignment workload of Tables V–VI:
// 50 instances with the same number of intervals and global tiles.
type InstanceSet struct {
	Instances []*layer.Instance
}

// NewInstanceSet generates n random panel instances with nSegs segments
// over nRows tile rows, deterministic for a given seed.
func NewInstanceSet(seed int64, n, nSegs, nRows int) *InstanceSet {
	rng := rand.New(rand.NewSource(seed))
	set := &InstanceSet{}
	for i := 0; i < n; i++ {
		set.Instances = append(set.Instances, layer.RandomInstance(rng, nSegs, nRows))
	}
	return set
}

// DefaultInstanceSet reproduces the Table V workload: 50 instances whose
// density statistics land near the paper's (max segment density ~11.7,
// average ~5.7; max line-end density ~6.1, average ~2.0).
func DefaultInstanceSet() *InstanceSet { return NewInstanceSet(2013, 50, 20, 20) }

// Table5 reports the density statistics of the instance set (Table V).
type Table5Stats struct {
	Instances      int
	SegMax, SegAvg float64
	EndMax, EndAvg float64
}

// Table5 computes the averaged density statistics.
func (s *InstanceSet) Table5() Table5Stats {
	st := Table5Stats{Instances: len(s.Instances)}
	for _, in := range s.Instances {
		sm, sa := in.SegDensity()
		em, ea := in.EndDensity()
		st.SegMax += sm
		st.SegAvg += sa
		st.EndMax += em
		st.EndAvg += ea
	}
	n := float64(len(s.Instances))
	if n > 0 {
		st.SegMax /= n
		st.SegAvg /= n
		st.EndMax /= n
		st.EndAvg /= n
	}
	return st
}

// FprintTable5 renders Table V.
func FprintTable5(w io.Writer, st Table5Stats) {
	fmt.Fprintf(w, "%-10s | %-17s | %-17s\n", "#Instance", "Segment density", "Line end density")
	fmt.Fprintf(w, "%-10s | %8s %8s | %8s %8s\n", "", "Max", "Avg.", "Max", "Avg.")
	fmt.Fprintf(w, "%-10d | %8.2f %8.2f | %8.2f %8.2f\n",
		st.Instances, st.SegMax, st.SegAvg, st.EndMax, st.EndAvg)
}

// Table6Row is the average layer-assignment cost at one layer count.
type Table6Row struct {
	K                  int
	MST, Ours          float64
	ImprovementPercent float64
}

// Table6 runs both layer-assignment heuristics over the instance set for
// k = 2..5 vertical layers and reports average costs (Table VI).
func (s *InstanceSet) Table6() []Table6Row {
	var rows []Table6Row
	for _, k := range tableVILayers {
		var mst, ours float64
		for _, in := range s.Instances {
			mst += float64(in.Cost(layer.Assign(in, k, layer.MaxSpanningTree)))
			ours += float64(in.Cost(layer.Assign(in, k, layer.KColorableSubset)))
		}
		n := float64(len(s.Instances))
		row := Table6Row{K: k, MST: mst / n, Ours: ours / n}
		if row.MST > 0 {
			row.ImprovementPercent = 100 * (1 - row.Ours/row.MST)
		}
		rows = append(rows, row)
	}
	return rows
}

// FprintTable6 renders Table VI.
func FprintTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintf(w, "%-24s", "Heuristic")
	for _, r := range rows {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("k=%d", r.K))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-24s", "Max. Spanning Tree [4]")
	for _, r := range rows {
		fmt.Fprintf(w, " %9.2f", r.MST)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-24s", "Ours")
	for _, r := range rows {
		fmt.Fprintf(w, " %9.2f", r.Ours)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-24s", "Improvement")
	for _, r := range rows {
		fmt.Fprintf(w, " %8.2f%%", r.ImprovementPercent)
	}
	fmt.Fprintln(w)
}

// Table6GapRow reports the heuristics' optimality gap on small instances
// where the exact branch-and-bound completes (an extension beyond the
// paper, which compares only the two heuristics).
type Table6GapRow struct {
	K                int
	Exact, MST, Ours float64
	OursGapPercent   float64 // (ours - exact) / exact
	Completed        int     // instances solved to proven optimality
}

// Table6Gap measures the gap to optimum over a small-instance set.
func Table6Gap(seed int64, n, nSegs, nRows int, budget int) []Table6GapRow {
	set := NewInstanceSet(seed, n, nSegs, nRows)
	var rows []Table6GapRow
	for _, k := range tableVILayers {
		row := Table6GapRow{K: k}
		for _, in := range set.Instances {
			colors, optimal := layer.ExactAssign(in, k, budget)
			if !optimal {
				continue
			}
			row.Completed++
			row.Exact += float64(in.Cost(colors))
			row.MST += float64(in.Cost(layer.Assign(in, k, layer.MaxSpanningTree)))
			row.Ours += float64(in.Cost(layer.Assign(in, k, layer.KColorableSubset)))
		}
		if row.Completed > 0 {
			n := float64(row.Completed)
			row.Exact /= n
			row.MST /= n
			row.Ours /= n
			if row.Exact > 0 {
				row.OursGapPercent = 100 * (row.Ours - row.Exact) / row.Exact
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FprintTable6Gap renders the optimality-gap extension.
func FprintTable6Gap(w io.Writer, rows []Table6GapRow) {
	fmt.Fprintf(w, "%-10s %9s %9s %9s %10s %10s\n", "k", "exact", "MST [4]", "ours", "ours gap", "#solved")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %9.2f %9.2f %9.2f %9.1f%% %10d\n",
			r.K, r.Exact, r.MST, r.Ours, r.OursGapPercent, r.Completed)
	}
}
