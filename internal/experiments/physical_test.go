package experiments

import (
	"strings"
	"testing"
)

func TestPhysicalValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("routing experiment in -short mode")
	}
	base, ours, err := Physical("S9234")
	if err != nil {
		t.Fatal(err)
	}
	if base.Cuts == 0 {
		t.Fatal("no stitch cuts in baseline; simulation vacuous")
	}
	// Stitch-aware routing keeps via-landing stubs away from stitch
	// lines, so the simulated defect mass per cut must not be worse.
	if ours.ViaCuts > base.ViaCuts {
		t.Errorf("stitch-aware has more via cuts: %d vs %d", ours.ViaCuts, base.ViaCuts)
	}
	// The dangerous short-stub regime must collapse, mirroring the #SP
	// reduction.
	if base.ShortStubViaCuts == 0 {
		t.Fatal("baseline produced no SP-regime cuts; vacuous")
	}
	if float64(ours.ShortStubViaCuts) > 0.2*float64(base.ShortStubViaCuts) {
		t.Errorf("SP-regime cuts not collapsed: %d -> %d", base.ShortStubViaCuts, ours.ShortStubViaCuts)
	}
	basePer := base.TotalDefect / float64(base.Cuts)
	oursPer := ours.TotalDefect / float64(maxInt(ours.Cuts, 1))
	if oursPer > basePer*1.05 {
		t.Errorf("stitch-aware per-cut defect %.4f above baseline %.4f", oursPer, basePer)
	}
	var sb strings.Builder
	FprintPhysical(&sb, "S9234", base, ours)
	if !strings.Contains(sb.String(), "defect-mass ratio") {
		t.Error("output missing ratio")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
