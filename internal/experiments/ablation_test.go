package experiments

import (
	"strings"
	"testing"
)

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("routing experiment in -short mode")
	}
	rows, err := Ablations("S9234")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	full := byName["full stitch-aware"]
	base := byName["baseline (everything off)"]
	if full.SP >= base.SP {
		t.Errorf("full framework SP %d not below baseline %d", full.SP, base.SP)
	}
	// β is the dominant short-polygon control: removing it must hurt.
	if noBeta := byName["no via-SUR cost (β=0)"]; noBeta.SP < full.SP {
		t.Errorf("removing β improved SP: %d < %d", noBeta.SP, full.SP)
	}
	// Refinement clears the global vertex overflow.
	if noRef := byName["no global refinement"]; noRef.TVOF < full.TVOF {
		t.Errorf("removing refinement reduced TVOF: %d < %d", noRef.TVOF, full.TVOF)
	}
	// Placement eliminates pin via violations.
	if placed := byName["+ stitch-aware place"]; placed.VV >= full.VV && full.VV > 0 {
		t.Errorf("placement did not reduce VV: %d vs %d", placed.VV, full.VV)
	}
	var sb strings.Builder
	FprintAblations(&sb, "S9234", rows)
	if !strings.Contains(sb.String(), "full stitch-aware") {
		t.Error("ablation output missing variant names")
	}
}

func TestAblationsUnknownCircuit(t *testing.T) {
	if _, err := Ablations("nope"); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestSweepBetaGamma(t *testing.T) {
	if testing.Short() {
		t.Skip("routing experiment in -short mode")
	}
	rows, err := SweepBetaGamma("S9234", []float64{0, 10}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].SP > rows[0].SP {
		t.Errorf("β=10 SP %d above β=0 SP %d", rows[1].SP, rows[0].SP)
	}
	var sb strings.Builder
	FprintSweep(&sb, "S9234", rows)
	if !strings.Contains(sb.String(), "sweep") {
		t.Error("missing header")
	}
}

func TestVarianceRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("routing experiment in -short mode")
	}
	sum, err := Variance("S9234", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 3 {
		t.Fatalf("%d rows", len(sum.Rows))
	}
	// The headline SP reduction must hold on every independent instance.
	for _, r := range sum.Rows {
		if r.Baseline.SP == 0 {
			t.Fatalf("seed %d: baseline produced no SPs", r.Seed)
		}
		if float64(r.Ours.SP) > 0.2*float64(r.Baseline.SP) {
			t.Errorf("seed %d: weak SP reduction %d -> %d", r.Seed, r.Baseline.SP, r.Ours.SP)
		}
	}
	if sum.SPRatioMean > 0.1 {
		t.Errorf("mean SP ratio %.3f too high", sum.SPRatioMean)
	}
	var sb strings.Builder
	FprintVariance(&sb, "S9234", sum)
	if !strings.Contains(sb.String(), "SP ratio") {
		t.Error("missing summary line")
	}
}

func TestVarianceUnknownCircuit(t *testing.T) {
	if _, err := Variance("nope", 2); err == nil {
		t.Error("unknown circuit accepted")
	}
}
