package experiments

import (
	"fmt"
	"io"

	"stitchroute/internal/core"
	"stitchroute/internal/detail"
	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/plan"
	"stitchroute/internal/raster"
)

// PhysicalSummary is the rasterization-level validation of a routing
// solution: every horizontal wire cut by a stitching line is written as
// two misaligned beam halves, dithered, and scored (§II-A). The router's
// #SP metric is a proxy; this measures the simulated damage directly.
type PhysicalSummary struct {
	Cuts    int // stitch-line cuts across all routed wires
	ViaCuts int // cuts whose shorter-side end carries a landing via
	// ShortStubViaCuts counts the dangerous regime: a landing via on a
	// stub within the stitch-unfriendly distance — exactly the short
	// polygons the router minimizes. These carry the extreme defect
	// scores (Fig. 4's left end).
	ShortStubViaCuts int
	TotalDefect      float64 // summed defect score over all cuts
	WorstDefect      float64
}

// overlayMisalign is the beam-to-beam overlay error used by the physical
// simulation, in pixels (one pixel = one track here).
const overlayMisalign = 0.45

// PhysicalDefects rasterizes every stitch-cut horizontal wire of the
// routed solution and accumulates dithering defect scores.
func PhysicalDefects(f *grid.Fabric, routes []plan.NetRoute) PhysicalSummary {
	var sum PhysicalSummary
	for i := range routes {
		if !routes[i].Routed {
			continue
		}
		via := map[[3]int]bool{}
		for _, v := range routes[i].Vias {
			via[[3]int{v.X, v.Y, v.Layer}] = true
			via[[3]int{v.X, v.Y, v.Layer + 1}] = true
		}
		for _, w := range detail.MergedWires(routes[i].Wires) {
			if w.Orient != geom.Horizontal || w.Span.Len() < 2 {
				continue
			}
			for _, s := range f.StitchCols() {
				if !(w.Span.Lo < s && s < w.Span.Hi) {
					continue
				}
				sum.Cuts++
				// Score the shorter side of the cut: its stub length
				// controls the damage (Fig. 4).
				stub := s - w.Span.Lo
				end := w.Span.Lo
				if w.Span.Hi-s < stub {
					stub = w.Span.Hi - s
					end = w.Span.Hi
				}
				length := w.Span.Len() - 1
				score, err := raster.CutWireDefect(length+1, clampInt(stub, 1, length), overlayMisalign)
				if err != nil {
					continue
				}
				if via[[3]int{end, w.Fixed, w.Layer}] {
					sum.ViaCuts++
					if stub <= f.SUREps {
						sum.ShortStubViaCuts++
					}
					// A landing via turns the distortion into a likely
					// open/short (§II-A): count it at full weight. Cuts
					// without a via only risk line-width variation.
					score *= 2
				}
				sum.TotalDefect += score
				if score > sum.WorstDefect {
					sum.WorstDefect = score
				}
			}
		}
	}
	return sum
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Physical runs the physical validation on one circuit for both routers.
func Physical(circuit string) (base, ours PhysicalSummary, err error) {
	cb, resB, err := RouteCircuit(circuit, core.Baseline())
	if err != nil {
		return base, ours, err
	}
	base = PhysicalDefects(cb.Fabric, resB.Routes)
	co, resO, err := RouteCircuit(circuit, core.StitchAware())
	if err != nil {
		return base, ours, err
	}
	ours = PhysicalDefects(co.Fabric, resO.Routes)
	return base, ours, nil
}

// FprintPhysical renders the physical-validation comparison.
func FprintPhysical(w io.Writer, circuit string, base, ours PhysicalSummary) {
	fmt.Fprintf(w, "Physical (rasterization) validation on %s, overlay %.2f px\n", circuit, overlayMisalign)
	fmt.Fprintf(w, "%-14s %8s %9s %10s %13s %12s\n", "Router", "cuts", "via-cuts", "SP-regime", "total defect", "worst defect")
	for _, row := range []struct {
		name string
		s    PhysicalSummary
	}{{"baseline", base}, {"stitch-aware", ours}} {
		fmt.Fprintf(w, "%-14s %8d %9d %10d %13.2f %12.3f\n",
			row.name, row.s.Cuts, row.s.ViaCuts, row.s.ShortStubViaCuts, row.s.TotalDefect, row.s.WorstDefect)
	}
	if base.TotalDefect > 0 {
		fmt.Fprintf(w, "defect-mass ratio: %.3f\n", ours.TotalDefect/base.TotalDefect)
	}
}
