package experiments

import (
	"fmt"
	"io"

	"stitchroute/internal/bench"
	"stitchroute/internal/core"
	"stitchroute/internal/place"
)

// AblationRow is one design-choice variant's result.
type AblationRow struct {
	Variant string
	RouteSummary
	TVOF int
}

// Ablations measures the contribution of each stitch-aware design choice
// DESIGN.md calls out, by disabling them one at a time on the full
// framework:
//
//   - escape cost γ (reserving the tracks nearest a stitching line)
//   - via-in-SUR cost β (the dominant short-polygon penalty)
//   - stitch-aware net ordering (bad-end nets first)
//   - global rip-up/reroute refinement
//
// plus two extensions enabled on top of the full framework: the paper's
// proposed stitch-aware placement (§V) and bounded rip-up negotiation in
// detailed routing.
func Ablations(circuit string) ([]AblationRow, error) {
	spec, err := bench.ByName(circuit)
	if err != nil {
		return nil, err
	}

	type variant struct {
		name  string
		cfg   core.Config
		place bool
	}
	noEscape := core.StitchAware()
	noEscape.Detail.Gamma = 0
	noBeta := core.StitchAware()
	noBeta.Detail.Beta = 0
	noOrder := core.StitchAware()
	noOrder.Detail.OrderByBadEnds = false
	noRefine := core.StitchAware()
	noRefine.RefinePasses = 0
	withNegotiate := core.StitchAware()
	withNegotiate.Detail.Negotiate = true

	variants := []variant{
		{"full stitch-aware", core.StitchAware(), false},
		{"no escape cost (γ=0)", noEscape, false},
		{"no via-SUR cost (β=0)", noBeta, false},
		{"no bad-end net order", noOrder, false},
		{"no global refinement", noRefine, false},
		{"+ stitch-aware place", core.StitchAware(), true},
		{"+ negotiation", withNegotiate, false},
		{"baseline (everything off)", core.Baseline(), false},
	}

	var rows []AblationRow
	for _, v := range variants {
		c := bench.Generate(spec)
		if v.place {
			c, _ = place.Refine(c)
		}
		res, err := core.Route(c, v.cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant:      v.name,
			RouteSummary: summarize(res),
			TVOF:         res.TVOF,
		})
	}
	return rows, nil
}

// FprintAblations renders the ablation table.
func FprintAblations(w io.Writer, circuit string, rows []AblationRow) {
	fmt.Fprintf(w, "Ablations on %s\n", circuit)
	fmt.Fprintf(w, "%-28s %8s %6s %6s %6s %9s %8s\n",
		"Variant", "Rout%", "#VV", "#SP", "TVOF", "WL", "CPU(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %8.2f %6d %6d %6d %9d %8.2f\n",
			r.Variant, r.Rout, r.VV, r.SP, r.TVOF, r.WL, r.CPU.Seconds())
	}
}
