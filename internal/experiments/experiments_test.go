package experiments

import (
	"strings"
	"testing"

	"stitchroute/internal/bench"
)

func TestTable12Formatting(t *testing.T) {
	var sb strings.Builder
	FprintTable12(&sb, bench.MCNC())
	out := sb.String()
	for _, want := range []string{"Struct", "S38584", "#Nets", "42931"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q", want)
		}
	}
	if got := strings.Count(out, "\n"); got != 10 { // header + 9 rows
		t.Errorf("Table I has %d lines, want 10", got)
	}
}

func TestTable5Statistics(t *testing.T) {
	set := DefaultInstanceSet()
	if len(set.Instances) != 50 {
		t.Fatalf("%d instances, want 50", len(set.Instances))
	}
	st := set.Table5()
	// Land in the neighbourhood of the paper's workload (Table V:
	// max 11.68 / avg 5.72 segment density, max 6.06 / avg 2.00 line-end).
	if st.SegMax < 6 || st.SegMax > 20 {
		t.Errorf("seg max density %.2f out of range", st.SegMax)
	}
	if st.SegAvg < 3 || st.SegAvg > 10 {
		t.Errorf("seg avg density %.2f out of range", st.SegAvg)
	}
	if st.EndAvg < 1 || st.EndAvg > 4 {
		t.Errorf("end avg density %.2f out of range", st.EndAvg)
	}
	var sb strings.Builder
	FprintTable5(&sb, st)
	if !strings.Contains(sb.String(), "50") {
		t.Error("Table V output missing instance count")
	}
}

func TestTable6ShapeMatchesPaper(t *testing.T) {
	set := DefaultInstanceSet()
	rows := set.Table6()
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (k=2..5)", len(rows))
	}
	for i, r := range rows {
		if r.K != i+2 {
			t.Errorf("row %d has k=%d", i, r.K)
		}
		if r.Ours > r.MST {
			t.Errorf("k=%d: ours %.2f worse than MST %.2f", r.K, r.Ours, r.MST)
		}
	}
	// Paper's key claim: improvement grows with k (13.9% -> 59.4%).
	if rows[3].ImprovementPercent <= rows[0].ImprovementPercent {
		t.Errorf("improvement not increasing: k=2 %.1f%%, k=5 %.1f%%",
			rows[0].ImprovementPercent, rows[3].ImprovementPercent)
	}
	var sb strings.Builder
	FprintTable6(&sb, rows)
	if !strings.Contains(sb.String(), "Improvement") {
		t.Error("Table VI output missing improvement row")
	}
}

func TestFig4ShortStubsWorse(t *testing.T) {
	rows, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatal("too few Fig. 4 points")
	}
	if rows[0].Score < rows[len(rows)-1].Score {
		t.Errorf("shortest stub score %.4f below longest %.4f — Fig. 4 shape lost",
			rows[0].Score, rows[len(rows)-1].Score)
	}
	var sb strings.Builder
	FprintFig4(&sb, rows)
	if !strings.Contains(sb.String(), "defect") {
		t.Error("Fig. 4 output missing header")
	}
}

func TestTable3SmallCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("routing experiment in -short mode")
	}
	rows, err := Table3([]string{"S9234"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatal("row count")
	}
	r := rows[0]
	if r.Ours.SP >= r.Baseline.SP {
		t.Errorf("stitch-aware SP %d not below baseline %d", r.Ours.SP, r.Baseline.SP)
	}
	if r.Ours.Rout < 95 || r.Baseline.Rout < 95 {
		t.Errorf("routability degraded: base %.2f ours %.2f", r.Baseline.Rout, r.Ours.Rout)
	}
	var sb strings.Builder
	FprintTable3(&sb, rows)
	if !strings.Contains(sb.String(), "Comp.") {
		t.Error("Table III output missing comparison row")
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("routing experiment in -short mode")
	}
	rows, err := Table4([]string{"S13207"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.With.TVOF > r.Without.TVOF {
		t.Errorf("line-end cost increased TVOF: %d -> %d", r.Without.TVOF, r.With.TVOF)
	}
	if r.Without.TVOF == 0 {
		t.Error("hard circuit produced no vertex overflow in the w/o arm; Table IV is vacuous")
	}
	// WL overhead should be small (paper: 1.5%).
	if float64(r.With.WL) > 1.10*float64(r.Without.WL) {
		t.Errorf("WL overhead too large: %d -> %d", r.Without.WL, r.With.WL)
	}
	var sb strings.Builder
	FprintTable4(&sb, rows)
	if !strings.Contains(sb.String(), "TVOF") {
		t.Error("Table IV output missing TVOF")
	}
}

func TestFig16Generates(t *testing.T) {
	if testing.Short() {
		t.Skip("routing experiment in -short mode")
	}
	var a, b strings.Builder
	spWithout, spWith, err := Fig16(&a, &b, "S9234")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.String(), "</svg>") || !strings.Contains(b.String(), "</svg>") {
		t.Error("Fig. 16 SVGs incomplete")
	}
	if spWith >= spWithout {
		t.Errorf("Fig. 16 inversion: with %d >= without %d", spWith, spWithout)
	}
}

func TestCircuitLists(t *testing.T) {
	if len(AllCircuits()) != 14 {
		t.Errorf("AllCircuits = %d, want 14", len(AllCircuits()))
	}
	if len(HardCircuits()) != 6 {
		t.Errorf("HardCircuits = %d, want 6", len(HardCircuits()))
	}
	for _, name := range SmallCircuits() {
		if _, err := bench.ByName(name); err != nil {
			t.Errorf("small circuit %s unknown", name)
		}
	}
	if !ILPSkip()["S38584"] {
		t.Error("S38584 should be ILP-skipped")
	}
}

func TestTable7BadEndContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("routing experiment in -short mode")
	}
	rows, err := Table7([]string{"S9234"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The stitch-aware assignments must leave far fewer bad ends than the
	// conventional one (the paper's >97% reduction, measured at the stage
	// boundary).
	if r.ConvBE == 0 {
		t.Fatal("conventional produced no bad ends; contrast vacuous")
	}
	if r.GraphBE*3 > r.ConvBE {
		t.Errorf("graph bad ends %d not well below conventional %d", r.GraphBE, r.ConvBE)
	}
	if !r.ILPSkipped && r.ILPBE > r.GraphBE {
		t.Errorf("ILP bad ends %d above graph %d", r.ILPBE, r.GraphBE)
	}
	// The exact search must be dramatically slower than the heuristic.
	if !r.ILPSkipped && r.ILP.CPU < 10*r.Graph.CPU {
		t.Errorf("ILP CPU %.1fs not >> graph %.1fs", r.ILP.CPU.Seconds(), r.Graph.CPU.Seconds())
	}
	var sb strings.Builder
	FprintTable7(&sb, rows)
	if !strings.Contains(sb.String(), "#BE") {
		t.Error("Table VII output missing #BE column")
	}
}

func TestTable6GapShape(t *testing.T) {
	rows := Table6Gap(7, 8, 8, 12, 2_000_000)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Completed == 0 {
			t.Fatalf("k=%d: no instances solved to optimality", r.K)
		}
		if r.Ours < r.Exact || r.MST < r.Exact {
			t.Errorf("k=%d: heuristic below optimum (%f, %f vs %f)", r.K, r.Ours, r.MST, r.Exact)
		}
		// The paper's algorithm stays near-optimal; MST drifts.
		if r.OursGapPercent > 25 {
			t.Errorf("k=%d: ours gap %.1f%% too large", r.K, r.OursGapPercent)
		}
	}
	var sb strings.Builder
	FprintTable6Gap(&sb, rows)
	if !strings.Contains(sb.String(), "gap") {
		t.Error("missing header")
	}
}
