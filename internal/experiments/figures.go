package experiments

import (
	"fmt"
	"io"

	"stitchroute/internal/core"
	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/raster"
	"stitchroute/internal/track"
	"stitchroute/internal/viz"
)

// Fig15 routes the named circuit with the stitch-aware framework and
// writes the full-chip SVG (the paper shows S38417).
func Fig15(w io.Writer, circuit string) error {
	c, res, err := RouteCircuit(circuit, core.StitchAware())
	if err != nil {
		return err
	}
	return viz.WriteSVG(w, c.Fabric, res.Routes, viz.Options{
		Scale: 1.4,
		Title: fmt.Sprintf("Fig. 15 - stitch-aware routing of %s (%.2f%% routed, %d short polygons)",
			circuit, res.Report.Routability(), res.Report.ShortPolygons),
	})
}

// Fig16 writes the two local views of Fig. 16: the same circuit routed
// without (a) and with (b) stitch awareness, zoomed on a window where the
// stitch-oblivious flow produced a short polygon. It returns the two
// chip-level short-polygon counts.
func Fig16(wA, wB io.Writer, circuit string) (spWithout, spWith int, err error) {
	baseCfg := core.Baseline()
	baseCfg.TrackAlgo = track.Conventional
	cA, resA, err := RouteCircuit(circuit, baseCfg)
	if err != nil {
		return 0, 0, err
	}
	win := spWindow(cA.Fabric, resA.Report.SPSites)
	if err := viz.WriteSVG(wA, cA.Fabric, resA.Routes, viz.Options{
		Window:  win,
		Scale:   12,
		ShowSUR: true,
		Title: fmt.Sprintf("Fig. 16(a) - without stitch consideration (%d short polygons on chip)",
			resA.Report.ShortPolygons),
	}); err != nil {
		return 0, 0, err
	}

	cB, resB, err := RouteCircuit(circuit, core.StitchAware())
	if err != nil {
		return 0, 0, err
	}
	if err := viz.WriteSVG(wB, cB.Fabric, resB.Routes, viz.Options{
		Window:  win,
		Scale:   12,
		ShowSUR: true,
		Title: fmt.Sprintf("Fig. 16(b) - stitch-aware with doglegs (%d short polygons on chip)",
			resB.Report.ShortPolygons),
	}); err != nil {
		return 0, 0, err
	}
	return resA.Report.ShortPolygons, resB.Report.ShortPolygons, nil
}

// spWindow picks a zoom window around the first recorded short polygon,
// or the chip center when there is none.
func spWindow(f *grid.Fabric, sites []geom.Point) geom.Rect {
	center := geom.Point{X: f.XTracks / 2, Y: f.YTracks / 2}
	if len(sites) > 0 {
		center = sites[0]
	}
	r := geom.Rect{
		X0: center.X - 2*f.StitchPitch, Y0: center.Y - f.StitchPitch,
		X1: center.X + 2*f.StitchPitch, Y1: center.Y + f.StitchPitch,
	}
	return r.Intersect(f.Bounds())
}

// Fig4Row is one point of the rasterization-defect experiment (Fig. 4):
// the dithering defect score of a wire cut at increasing distances from
// its end, under a fixed overlay misalignment.
type Fig4Row struct {
	StubLen int // pixels between the cut and the wire end
	Score   float64
}

// Fig4 computes the defect score as a function of stub length, showing
// the short-polygon failure mode: short stubs distort far more.
func Fig4() ([]Fig4Row, error) {
	const length = 60
	const misalign = 0.45
	var rows []Fig4Row
	for _, stub := range []int{2, 3, 4, 6, 8, 12, 20, 30} {
		score, err := raster.CutWireDefect(length, stub, misalign)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4Row{StubLen: stub, Score: score})
	}
	return rows, nil
}

// FprintFig4 renders the Fig. 4 defect curve as text.
func FprintFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintf(w, "%-10s %-12s\n", "stub(px)", "defect")
	for _, r := range rows {
		bar := ""
		for i := 0.0; i < r.Score*200; i++ {
			bar += "#"
		}
		fmt.Fprintf(w, "%-10d %-12.4f %s\n", r.StubLen, r.Score, bar)
	}
}
