package experiments

import (
	"fmt"
	"io"

	"stitchroute/internal/bench"
	"stitchroute/internal/core"
)

// SweepRow is one point of the β/γ parameter sweep.
type SweepRow struct {
	Beta, Gamma float64
	RouteSummary
}

// SweepBetaGamma maps the eq. (10) cost-weight space on one circuit: for
// each (β, γ) pair the full stitch-aware flow runs and reports #SP,
// wirelength, and routability. The paper fixes β=10, γ=5; the sweep shows
// that plateau (β dominates #SP; γ buys SUR safety for small WL).
func SweepBetaGamma(circuit string, betas, gammas []float64) ([]SweepRow, error) {
	spec, err := bench.ByName(circuit)
	if err != nil {
		return nil, err
	}
	var rows []SweepRow
	for _, b := range betas {
		for _, g := range gammas {
			cfg := core.StitchAware()
			cfg.Detail.Beta = b
			cfg.Detail.Gamma = g
			c := bench.Generate(spec)
			res, err := core.Route(c, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SweepRow{Beta: b, Gamma: g, RouteSummary: summarize(res)})
		}
	}
	return rows, nil
}

// DefaultSweep returns the grid swept by cmd/tablegen -sweep.
func DefaultSweep() (betas, gammas []float64) {
	return []float64{0, 2, 5, 10, 20}, []float64{0, 5}
}

// FprintSweep renders the sweep results.
func FprintSweep(w io.Writer, circuit string, rows []SweepRow) {
	fmt.Fprintf(w, "β/γ sweep on %s (paper: β=10, γ=5)\n", circuit)
	fmt.Fprintf(w, "%6s %6s | %8s %6s %9s %8s\n", "β", "γ", "Rout%", "#SP", "WL", "CPU(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%6.0f %6.0f | %8.2f %6d %9d %8.2f\n",
			r.Beta, r.Gamma, r.Rout, r.SP, r.WL, r.CPU.Seconds())
	}
}
