// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV). Each TableN function runs the corresponding experiment
// and returns typed rows; the Fprint helpers render them in the paper's
// layout. cmd/tablegen and the repository's bench_test.go are thin
// wrappers around this package.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"stitchroute/internal/bench"
	"stitchroute/internal/core"
	"stitchroute/internal/detail"
	"stitchroute/internal/global"
	"stitchroute/internal/netlist"
	"stitchroute/internal/track"
)

// HardCircuits are the six "hard" MCNC benchmarks of Table IV (the ones
// with nonzero vertex overflow in the stitch-oblivious arm).
func HardCircuits() []string {
	return []string{"S5378", "S9234", "S13207", "S15850", "S38417", "S38584"}
}

// AllCircuits returns every benchmark name, Tables I+II order.
func AllCircuits() []string {
	var out []string
	for _, s := range bench.All() {
		out = append(out, s.Name)
	}
	return out
}

// SmallCircuits is a fast subset used by default in cmd/tablegen and the
// Go benchmarks (the full set is minutes of CPU).
func SmallCircuits() []string {
	return []string{"Struct", "Primary1", "S5378", "S9234"}
}

// ---------------------------------------------------------------------
// Tables I and II: benchmark statistics.

// FprintTable12 prints the circuit statistics of Table I (MCNC) or
// Table II (Faraday), including the synthetic grid actually generated.
func FprintTable12(w io.Writer, specs []bench.Spec) {
	fmt.Fprintf(w, "%-10s %14s %8s %7s %7s %12s\n", "Circuit", "Size (um^2)", "#Layers", "#Nets", "#Pins", "Grid (trk)")
	for _, s := range specs {
		x, y := s.GridSize()
		fmt.Fprintf(w, "%-10s %6.1fx%-7.1f %8d %7d %7d %5dx%-6d\n",
			s.Name, s.MicronW, s.MicronH, s.Layers, s.Nets, s.Pins, x, y)
	}
}

// ---------------------------------------------------------------------
// Table III: full framework vs baseline router.

// RouteSummary is one router's result on one circuit.
type RouteSummary struct {
	Rout float64
	VV   int
	SP   int
	WL   int64
	CPU  time.Duration
}

func summarize(res *core.Result) RouteSummary {
	return RouteSummary{
		Rout: res.Report.Routability(),
		VV:   res.Report.ViaViolations,
		SP:   res.Report.ShortPolygons,
		WL:   res.Report.Wirelength,
		CPU:  res.Times.Total(),
	}
}

// Table3Row compares the baseline and stitch-aware routers on one circuit.
type Table3Row struct {
	Circuit        string
	Baseline, Ours RouteSummary
}

// Table3 runs both full flows on the named circuits. Circuits run in
// parallel (each circuit's own two arms run serially, so its CPU column
// stays meaningful).
func Table3(circuits []string) ([]Table3Row, error) {
	rows := make([]Table3Row, len(circuits))
	err := forEachCircuit(circuits, func(i int, name string) error {
		base, err := runOne(name, core.Baseline())
		if err != nil {
			return err
		}
		ours, err := runOne(name, core.StitchAware())
		if err != nil {
			return err
		}
		rows[i] = Table3Row{name, summarize(base), summarize(ours)}
		return nil
	})
	return rows, err
}

// forEachCircuit runs fn over the circuits with bounded parallelism,
// preserving order via the index. The first error wins.
func forEachCircuit(circuits []string, fn func(i int, name string) error) error {
	par := runtime.GOMAXPROCS(0)
	if par > 4 {
		par = 4 // whole-circuit runs are memory-hungry; cap the fan-out
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, name := range circuits {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := fn(i, name); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i, name)
	}
	wg.Wait()
	return firstErr
}

func runOne(name string, cfg core.Config) (*core.Result, error) {
	spec, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return core.Route(bench.Generate(spec), cfg)
}

// FprintTable3 renders Table III with the paper's comparison row.
func FprintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "%-10s | %9s %6s %6s %8s | %9s %6s %6s %8s\n",
		"Circuit", "BaseRout%", "#VV", "#SP", "CPU(s)", "OursRout%", "#VV", "#SP", "CPU(s)")
	var bSP, oSP int
	var bCPU, oCPU time.Duration
	var bR, oR float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %9.2f %6d %6d %8.2f | %9.2f %6d %6d %8.2f\n",
			r.Circuit, r.Baseline.Rout, r.Baseline.VV, r.Baseline.SP, r.Baseline.CPU.Seconds(),
			r.Ours.Rout, r.Ours.VV, r.Ours.SP, r.Ours.CPU.Seconds())
		bSP += r.Baseline.SP
		oSP += r.Ours.SP
		bCPU += r.Baseline.CPU
		oCPU += r.Ours.CPU
		bR += r.Baseline.Rout
		oR += r.Ours.Rout
	}
	n := float64(len(rows))
	if n == 0 {
		return
	}
	spRatio := ratio(float64(oSP), float64(bSP))
	fmt.Fprintf(w, "%-10s | %9.3f %6s %6.3f %8.2f | %9.3f %6s %6.3f %8.2f\n",
		"Comp.", 1.0, "-", 1.0, 1.0,
		oR/bR, "-", spRatio, ratio(oCPU.Seconds(), bCPU.Seconds()))
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ---------------------------------------------------------------------
// Table IV: global routing with and without line-end consideration.

// Table4Row reports one circuit's global-routing quality in both arms.
type Table4Row struct {
	Circuit       string
	Without, With GlobalSummary
}

// GlobalSummary is one global-routing arm's metrics.
type GlobalSummary struct {
	TVOF, MVOF int
	WL         int
	CPU        time.Duration
}

// Table4 runs the stitch-aware global router with and without the
// line-end (vertex) cost on the named circuits. Only the global stage
// runs, as in the paper.
func Table4(circuits []string) ([]Table4Row, error) {
	var rows []Table4Row
	for _, name := range circuits {
		spec, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		row := Table4Row{Circuit: name}
		for i, cfg := range []global.Config{global.EdgeOnly(), global.StitchAware()} {
			c := bench.Generate(spec)
			t0 := time.Now()
			r := global.NewRouter(c.Fabric, cfg)
			plans := r.RouteAll(c)
			r.Refine(c, plans, 4)
			elapsed := time.Since(t0)
			tv, mv := r.Overflow()
			gs := GlobalSummary{TVOF: tv, MVOF: mv, WL: r.Wirelength(), CPU: elapsed}
			if i == 0 {
				row.Without = gs
			} else {
				row.With = gs
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintTable4 renders Table IV.
func FprintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "%-10s | %6s %6s %9s %8s | %6s %6s %9s %8s\n",
		"Circuit", "TVOF", "MVOF", "WL", "CPU(s)", "TVOF", "MVOF", "WL", "CPU(s)")
	fmt.Fprintf(w, "%-10s | %32s | %32s\n", "", "w/o line-end consideration", "w/ line-end consideration")
	var aT, bT, aWL, bWL int
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %6d %6d %9d %8.3f | %6d %6d %9d %8.3f\n",
			r.Circuit, r.Without.TVOF, r.Without.MVOF, r.Without.WL, r.Without.CPU.Seconds(),
			r.With.TVOF, r.With.MVOF, r.With.WL, r.With.CPU.Seconds())
		aT += r.Without.TVOF
		bT += r.With.TVOF
		aWL += r.Without.WL
		bWL += r.With.WL
	}
	fmt.Fprintf(w, "%-10s | TVOF ratio %.3f, WL ratio %.3f\n", "Comp.",
		ratio(float64(bT), float64(aT)), ratio(float64(bWL), float64(aWL)))
}

// ---------------------------------------------------------------------
// Table VII: track assignment algorithm comparison.

// Table7Row compares the three track-assignment algorithms on a circuit.
// The ILP summary is zero-valued (Skipped=true) for circuits where the
// exact search exceeds its budget, mirroring the paper's "NA" entries.
// BadEnds isolates each algorithm's own contribution: the stitch-aware
// detailed router recovers most bad ends downstream (so the #SP contrast
// concentrates in Table III/VIII here), but the bad ends the track stage
// leaves behind are its direct quality measure.
type Table7Row struct {
	Circuit                string
	Conv, ILP, Graph       RouteSummary
	ConvBE, ILPBE, GraphBE int
	ILPSkipped             bool
}

// ILPSkip lists circuits the paper could not finish with CPLEX in 10^5
// seconds; we skip the same ones.
func ILPSkip() map[string]bool {
	return map[string]bool{"S38417": true, "S38584": true}
}

// Table7 runs the full flow with each track-assignment algorithm (other
// stages stitch-aware, as in the paper's controlled comparison). Circuits
// run in parallel.
func Table7(circuits []string) ([]Table7Row, error) {
	skip := ILPSkip()
	rows := make([]Table7Row, len(circuits))
	err := forEachCircuit(circuits, func(i int, name string) error {
		row := Table7Row{Circuit: name}
		for _, algo := range []track.Algo{track.Conventional, track.ILPBased, track.GraphBased} {
			if algo == track.ILPBased && skip[name] {
				row.ILPSkipped = true
				continue
			}
			cfg := core.StitchAware()
			cfg.TrackAlgo = algo
			res, err := runOne(name, cfg)
			if err != nil {
				return err
			}
			s := summarize(res)
			switch algo {
			case track.Conventional:
				row.Conv = s
				row.ConvBE = res.TrackStats.BadEnds
			case track.ILPBased:
				row.ILP = s
				row.ILPBE = res.TrackStats.BadEnds
			default:
				row.Graph = s
				row.GraphBE = res.TrackStats.BadEnds
			}
		}
		rows[i] = row
		return nil
	})
	return rows, err
}

// FprintTable7 renders Table VII. #BE is the bad ends the track stage
// itself leaves (the downstream stitch-aware detailed router then recovers
// most of them, which is why #SP stays low even in the conventional arm).
func FprintTable7(w io.Writer, rows []Table7Row) {
	fmt.Fprintf(w, "%-10s | %27s | %27s | %27s\n", "Circuit",
		"w/o stitch (conv.)", "ILP-based", "graph-based")
	fmt.Fprintf(w, "%-10s | %7s %5s %5s %7s | %7s %5s %5s %7s | %7s %5s %5s %7s\n", "",
		"Rout%", "#BE", "#SP", "CPU(s)", "Rout%", "#BE", "#SP", "CPU(s)", "Rout%", "#BE", "#SP", "CPU(s)")
	for _, r := range rows {
		ilpCell := fmt.Sprintf("%7.2f %5d %5d %7.1f", r.ILP.Rout, r.ILPBE, r.ILP.SP, r.ILP.CPU.Seconds())
		if r.ILPSkipped {
			ilpCell = fmt.Sprintf("%7s %5s %5s %7s", "NA", "NA", "NA", ">budget")
		}
		fmt.Fprintf(w, "%-10s | %7.2f %5d %5d %7.1f | %s | %7.2f %5d %5d %7.1f\n",
			r.Circuit, r.Conv.Rout, r.ConvBE, r.Conv.SP, r.Conv.CPU.Seconds(),
			ilpCell, r.Graph.Rout, r.GraphBE, r.Graph.SP, r.Graph.CPU.Seconds())
	}
}

// ---------------------------------------------------------------------
// Table VIII: detailed routing with and without stitch consideration.

// Table8Row compares conventional vs stitch-aware detailed routing, both
// on graph-based track assignment.
type Table8Row struct {
	Circuit       string
	Without, With RouteSummary
}

// Table8 runs the flow with the stitch-aware front-end (global, layer,
// graph-based track assignment) and toggles only the detailed router.
// Circuits run in parallel.
func Table8(circuits []string) ([]Table8Row, error) {
	rows := make([]Table8Row, len(circuits))
	err := forEachCircuit(circuits, func(i int, name string) error {
		row := Table8Row{Circuit: name}
		for j, aware := range []bool{false, true} {
			cfg := core.StitchAware()
			cfg.Detail = detail.DefaultConfig(aware)
			res, err := runOne(name, cfg)
			if err != nil {
				return err
			}
			if j == 0 {
				row.Without = summarize(res)
			} else {
				row.With = summarize(res)
			}
		}
		rows[i] = row
		return nil
	})
	return rows, err
}

// FprintTable8 renders Table VIII.
func FprintTable8(w io.Writer, rows []Table8Row) {
	fmt.Fprintf(w, "%-10s | %23s | %23s\n", "Circuit", "w/o stitch consideration", "w/ stitch consideration")
	fmt.Fprintf(w, "%-10s | %8s %6s %8s | %8s %6s %8s\n", "",
		"Rout%", "#SP", "CPU(s)", "Rout%", "#SP", "CPU(s)")
	var aSP, bSP int
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %8.2f %6d %8.2f | %8.2f %6d %8.2f\n",
			r.Circuit, r.Without.Rout, r.Without.SP, r.Without.CPU.Seconds(),
			r.With.Rout, r.With.SP, r.With.CPU.Seconds())
		aSP += r.Without.SP
		bSP += r.With.SP
	}
	fmt.Fprintf(w, "%-10s | #SP ratio %.3f\n", "Comp.", ratio(float64(bSP), float64(aSP)))
}

// RouteCircuit is a convenience used by the figure generators and
// examples: generate and route one named circuit.
func RouteCircuit(name string, cfg core.Config) (*netlist.Circuit, *core.Result, error) {
	spec, err := bench.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	c := bench.Generate(spec)
	res, err := core.Route(c, cfg)
	return c, res, err
}
