package core

// Failure-injection tests: the framework must degrade gracefully, not
// panic or mis-report, when circuits are hostile.

import (
	"math/rand"
	"testing"

	"stitchroute/internal/drc"
	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/netlist"
)

func pin(x, y int) netlist.Pin {
	return netlist.Pin{Point: geom.Point{X: x, Y: y}, Layer: 1}
}

func TestOverfullRowStillTerminates(t *testing.T) {
	// More crossing nets than a single-layer row region can hold: some
	// nets must fail, the run must terminate, and reporting must be
	// consistent.
	f := grid.New(45, 30, 1) // one horizontal layer only
	var nets []*netlist.Net
	for i := 0; i < 25; i++ {
		nets = append(nets, &netlist.Net{ID: i, Name: "n", Pins: []netlist.Pin{
			pin(1, i%28), pin(43, (i+3)%28),
		}})
	}
	c := &netlist.Circuit{Name: "overfull", Fabric: f, Nets: nets}
	res, err := Route(c, StitchAware())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.RoutedNets+res.FailedNets != len(nets) {
		t.Errorf("routed %d + failed %d != %d", rep.RoutedNets, res.FailedNets, len(nets))
	}
	if rep.VertRouteViolations != 0 || rep.ViaViolationsOffPin != 0 {
		t.Errorf("hard violations under pressure: %+v", rep)
	}
	// Failed nets must have no geometry.
	for i, rt := range res.Routes {
		if !rt.Routed && (len(rt.Wires) > 0 || len(rt.Vias) > 0) {
			t.Errorf("failed net %d left geometry", i)
		}
	}
}

func TestAllPinsOnStitchColumns(t *testing.T) {
	// Hostile placement: every pin on a stitching line. Routing must
	// succeed using pin vias / horizontal escapes only.
	f := grid.New(90, 90, 3)
	c := &netlist.Circuit{Name: "stitchpins", Fabric: f, Nets: []*netlist.Net{
		{ID: 0, Name: "a", Pins: []netlist.Pin{pin(15, 10), pin(45, 60)}},
		{ID: 1, Name: "b", Pins: []netlist.Pin{pin(30, 20), pin(60, 20)}},
		{ID: 2, Name: "c", Pins: []netlist.Pin{pin(15, 70), pin(75, 5)}},
	}}
	res, err := Route(c, StitchAware())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.RoutedNets != 3 {
		t.Fatalf("routed %d/3", res.Report.RoutedNets)
	}
	if res.Report.VertRouteViolations != 0 || res.Report.ViaViolationsOffPin != 0 {
		t.Errorf("hard violations: %+v", res.Report)
	}
}

func TestMinimalFabric(t *testing.T) {
	// Smallest legal fabric: 2 tiles, a handful of nets.
	f := grid.New(30, 30, 2)
	c := &netlist.Circuit{Name: "tiny", Fabric: f, Nets: []*netlist.Net{
		{ID: 0, Name: "a", Pins: []netlist.Pin{pin(1, 1), pin(28, 28)}},
		{ID: 1, Name: "b", Pins: []netlist.Pin{pin(1, 28), pin(28, 1)}},
	}}
	for _, cfg := range []Config{StitchAware(), Baseline()} {
		res, err := Route(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.RoutedNets != 2 {
			t.Errorf("routed %d/2", res.Report.RoutedNets)
		}
	}
}

func TestManyCoincidentNets(t *testing.T) {
	// Nets stacked between the same two tile regions exhaust the panel's
	// tracks; track assignment must rip, not wedge.
	f := grid.New(45, 90, 3)
	var nets []*netlist.Net
	for i := 0; i < 12; i++ {
		nets = append(nets, &netlist.Net{ID: i, Name: "v", Pins: []netlist.Pin{
			pin(16+i, 3+i%4), pin(16+i, 80-i%4),
		}})
	}
	c := &netlist.Circuit{Name: "stack", Fabric: f, Nets: nets}
	res, err := Route(c, StitchAware())
	if err != nil {
		t.Fatal(err)
	}
	// 12 parallel wires fit the panel's 12 SUR-free tracks exactly.
	if res.Report.Routability() < 90 {
		t.Errorf("routability %.2f%% too low for a feasible stack", res.Report.Routability())
	}
	if res.Report.VertRouteViolations != 0 {
		t.Errorf("vertical violations: %d", res.Report.VertRouteViolations)
	}
}

func TestDuplicateNetPinsHandled(t *testing.T) {
	// Two pins of the same net at one point: valid (trivially connected
	// there) and must not confuse the router.
	f := grid.New(60, 60, 3)
	c := &netlist.Circuit{Name: "dup", Fabric: f, Nets: []*netlist.Net{
		{ID: 0, Name: "a", Pins: []netlist.Pin{pin(5, 5), pin(5, 5), pin(40, 40)}},
	}}
	res, err := Route(c, StitchAware())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.RoutedNets != 1 {
		t.Error("dup-pin net failed")
	}
}

func TestRandomCircuitsFullInvariants(t *testing.T) {
	// Randomized integration: small random circuits through both flows;
	// every routed net must be connected, short-free of hard violations,
	// and no two nets may share a cell.
	rng := rand.New(rand.NewSource(2013))
	for iter := 0; iter < 12; iter++ {
		f := grid.New(90+15*(iter%3), 90, 3)
		nNets := 6 + rng.Intn(10)
		used := map[geom.Point]bool{}
		var nets []*netlist.Net
		for i := 0; i < nNets; i++ {
			deg := 2 + rng.Intn(3)
			n := &netlist.Net{ID: i, Name: "r"}
			for len(n.Pins) < deg {
				p := geom.Point{X: rng.Intn(f.XTracks), Y: rng.Intn(f.YTracks)}
				if used[p] {
					continue
				}
				used[p] = true
				n.Pins = append(n.Pins, netlist.Pin{Point: p, Layer: 1})
			}
			nets = append(nets, n)
		}
		c := &netlist.Circuit{Name: "rand", Fabric: f, Nets: nets}
		for _, cfg := range []Config{StitchAware(), Baseline()} {
			res, err := Route(c, cfg)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if bad := drc.CheckConnectivity(c, res.Routes); bad != 0 {
				t.Fatalf("iter %d: %d disconnected routed nets", iter, bad)
			}
			if n := drc.CheckShorts(res.Routes); n != 0 {
				t.Fatalf("iter %d: %d shorts", iter, n)
			}
			if res.Report.VertRouteViolations != 0 || res.Report.ViaViolationsOffPin != 0 {
				t.Fatalf("iter %d: hard violations %+v", iter, res.Report)
			}
		}
	}
}
