package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRouteContextPreCancelled: a context cancelled before the call
// returns ErrCancelled without doing any routing work.
func TestRouteContextPreCancelled(t *testing.T) {
	c := smallCircuit(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RouteContext(ctx, c, StitchAware())
	if res != nil {
		t.Error("cancelled route returned a result")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want to wrap context.Canceled", err)
	}
}

// TestRouteContextDeadline: an already-expired deadline aborts the run
// promptly and the error distinguishes timeout from plain cancellation.
func TestRouteContextDeadline(t *testing.T) {
	c := smallCircuit(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	_, err := RouteContext(ctx, c, StitchAware())
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want to wrap context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("expired-deadline route took %v, want prompt abort", elapsed)
	}
}

// TestRouteContextMidRouteCancel cancels concurrently with a full run and
// checks the router notices within the cancellation-check latency rather
// than routing to completion.
func TestRouteContextMidRouteCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("full routing in -short mode")
	}
	c := smallCircuit(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err := RouteContext(ctx, c, StitchAware())
	if err == nil {
		// The circuit routed before the cancel landed; nothing to assert.
		t.Skip("routing finished before cancellation")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("err = %v, want ErrCancelled", err)
	}
}

// TestRouteContextBackground: RouteContext with a background context is
// exactly Route.
func TestRouteContextBackground(t *testing.T) {
	if testing.Short() {
		t.Skip("full routing in -short mode")
	}
	c := smallCircuit(t)
	res, err := RouteContext(context.Background(), c, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Routability() <= 0 {
		t.Error("background-context route produced nothing")
	}
}
