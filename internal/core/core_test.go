package core

import (
	"strings"
	"testing"

	"stitchroute/internal/bench"
	"stitchroute/internal/drc"
	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/netlist"
	"stitchroute/internal/nlio"
	"stitchroute/internal/track"
)

func smallCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	spec, err := bench.ByName("S9234")
	if err != nil {
		t.Fatal(err)
	}
	return bench.Generate(spec)
}

func TestStitchAwareEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full routing in -short mode")
	}
	c := smallCircuit(t)
	res, err := Route(c, StitchAware())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Routability() < 90 {
		t.Errorf("routability %.2f%% too low", rep.Routability())
	}
	// Hard constraints: no vertical routing violations, no off-pin vias.
	if rep.VertRouteViolations != 0 {
		t.Errorf("vertical routing violations: %d", rep.VertRouteViolations)
	}
	if rep.ViaViolationsOffPin != 0 {
		t.Errorf("off-pin via violations: %d", rep.ViaViolationsOffPin)
	}
	if rep.Wirelength == 0 {
		t.Error("zero wirelength")
	}
}

func TestStitchAwareBeatsBaselineOnShortPolygons(t *testing.T) {
	if testing.Short() {
		t.Skip("full routing in -short mode")
	}
	c1 := smallCircuit(t)
	base, err := Route(c1, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	c2 := smallCircuit(t)
	ours, err := Route(c2, StitchAware())
	if err != nil {
		t.Fatal(err)
	}
	if base.Report.ShortPolygons == 0 {
		t.Fatal("baseline produced no short polygons; workload too easy to compare")
	}
	if ours.Report.ShortPolygons >= base.Report.ShortPolygons {
		t.Errorf("stitch-aware SP %d not below baseline %d",
			ours.Report.ShortPolygons, base.Report.ShortPolygons)
	}
	// The paper reports a ~97% reduction (Table III comp. 0.023); require
	// at least a strong reduction to catch regressions without being
	// brittle.
	if float64(ours.Report.ShortPolygons) > 0.5*float64(base.Report.ShortPolygons) {
		t.Errorf("SP reduction too weak: %d -> %d", base.Report.ShortPolygons, ours.Report.ShortPolygons)
	}
	// Baseline also satisfies hard constraints (per the paper's setup).
	if base.Report.VertRouteViolations != 0 || base.Report.ViaViolationsOffPin != 0 {
		t.Errorf("baseline hard violations: %+v", base.Report)
	}
}

func TestTinyCircuitAllAlgos(t *testing.T) {
	f := grid.New(90, 90, 3)
	nets := []*netlist.Net{
		{ID: 0, Name: "a", Pins: []netlist.Pin{
			{Point: geom.Point{X: 3, Y: 3}, Layer: 1},
			{Point: geom.Point{X: 70, Y: 50}, Layer: 1},
		}},
		{ID: 1, Name: "b", Pins: []netlist.Pin{
			{Point: geom.Point{X: 20, Y: 70}, Layer: 1},
			{Point: geom.Point{X: 22, Y: 10}, Layer: 1},
			{Point: geom.Point{X: 60, Y: 40}, Layer: 1},
		}},
		{ID: 2, Name: "c", Pins: []netlist.Pin{
			{Point: geom.Point{X: 5, Y: 80}, Layer: 1},
			{Point: geom.Point{X: 80, Y: 80}, Layer: 1},
		}},
	}
	for _, trk := range []track.Algo{track.Conventional, track.GraphBased, track.ILPBased} {
		cfg := StitchAware()
		cfg.TrackAlgo = trk
		c := &netlist.Circuit{Name: "tiny", Fabric: f, Nets: nets}
		res, err := Route(c, cfg)
		if err != nil {
			t.Fatalf("track algo %v: %v", trk, err)
		}
		if res.Report.RoutedNets != 3 {
			t.Errorf("track algo %v: routed %d/3", trk, res.Report.RoutedNets)
		}
		if res.Report.VertRouteViolations != 0 || res.Report.ViaViolationsOffPin != 0 {
			t.Errorf("track algo %v: hard violations %+v", trk, res.Report)
		}
	}
}

func TestInvalidCircuitRejected(t *testing.T) {
	f := grid.New(60, 60, 3)
	c := &netlist.Circuit{Name: "bad", Fabric: f, Nets: []*netlist.Net{
		{ID: 0, Name: "x", Pins: []netlist.Pin{{Point: geom.Point{X: 1, Y: 1}, Layer: 1}}},
	}}
	if _, err := Route(c, StitchAware()); err == nil {
		t.Fatal("1-pin net accepted")
	}
}

func TestStageTimesPopulated(t *testing.T) {
	f := grid.New(60, 60, 3)
	c := &netlist.Circuit{Name: "t", Fabric: f, Nets: []*netlist.Net{
		{ID: 0, Name: "a", Pins: []netlist.Pin{
			{Point: geom.Point{X: 2, Y: 2}, Layer: 1},
			{Point: geom.Point{X: 50, Y: 50}, Layer: 1},
		}},
	}}
	res, err := Route(c, StitchAware())
	if err != nil {
		t.Fatal(err)
	}
	if res.Times.Total() <= 0 {
		t.Error("no stage times recorded")
	}
}

func TestRouteDeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full routing in -short mode")
	}
	run := func() (float64, int, int64) {
		spec, _ := bench.ByName("S5378")
		c := bench.Generate(spec)
		res, err := Route(c, StitchAware())
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.Routability(), res.Report.ShortPolygons, res.Report.Wirelength
	}
	r1, sp1, wl1 := run()
	r2, sp2, wl2 := run()
	if r1 != r2 || sp1 != sp2 || wl1 != wl2 {
		t.Errorf("nondeterministic: (%.4f,%d,%d) vs (%.4f,%d,%d)", r1, sp1, wl1, r2, sp2, wl2)
	}
}

func TestNoCrossNetShorts(t *testing.T) {
	if testing.Short() {
		t.Skip("full routing in -short mode")
	}
	spec, _ := bench.ByName("S5378")
	c := bench.Generate(spec)
	res, err := Route(c, StitchAware())
	if err != nil {
		t.Fatal(err)
	}
	if n := drc.CheckShorts(res.Routes); n != 0 {
		t.Errorf("%d cross-net shorts", n)
	}
}

func TestRoutesSurviveSerialization(t *testing.T) {
	if testing.Short() {
		t.Skip("full routing in -short mode")
	}
	spec, _ := bench.ByName("S9234")
	c := bench.Generate(spec)
	res, err := Route(c, StitchAware())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := nlio.WriteRoutes(&sb, res.Routes); err != nil {
		t.Fatal(err)
	}
	back, err := nlio.ReadRoutes(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	rep1 := res.Report
	rep2 := drc.Check(c, back)
	if rep1.ShortPolygons != rep2.ShortPolygons ||
		rep1.ViaViolations != rep2.ViaViolations ||
		rep1.Wirelength != rep2.Wirelength ||
		rep1.RoutedNets != rep2.RoutedNets {
		t.Errorf("DRC differs after round trip: %+v vs %+v", rep1, rep2)
	}
}

func TestNonDefaultStitchParameters(t *testing.T) {
	// The whole flow must respect non-default stitch pitch / SUR width.
	f := grid.New(80, 80, 3)
	f.StitchPitch = 10
	f.SUREps = 2
	f.EscapeWidth = 3
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	var nets []*netlist.Net
	for i := 0; i < 10; i++ {
		nets = append(nets, &netlist.Net{ID: i, Name: "n", Pins: []netlist.Pin{
			pin(3+7*i%70, 5+3*i), pin(70-6*i%65, 70-2*i),
		}})
	}
	c := &netlist.Circuit{Name: "alt", Fabric: f, Nets: nets}
	res, err := Route(c, StitchAware())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Routability() < 90 {
		t.Errorf("routability %.2f%% on alternate fabric", res.Report.Routability())
	}
	if res.Report.VertRouteViolations != 0 || res.Report.ViaViolationsOffPin != 0 {
		t.Errorf("hard violations on alternate fabric: %+v", res.Report)
	}
}
