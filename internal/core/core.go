// Package core orchestrates the two-pass bottom-up multilevel stitch-aware
// routing framework (Fig. 6 of the paper):
//
//  1. First bottom-up pass — stitch-aware global routing, local nets first
//     (internal/global).
//  2. Intermediate stage — stitch-aware layer assignment (internal/layer)
//     followed by short-polygon-avoiding track assignment (internal/track).
//  3. Second bottom-up pass — stitch-aware detailed routing with failed-net
//     rip-up and rerouting (internal/detail).
//
// Every stage can be switched between its stitch-aware algorithm and the
// conventional baseline, which is how the paper's ablation tables
// (Tables IV, VI, VII, VIII) are produced.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"stitchroute/internal/detail"
	"stitchroute/internal/drc"
	"stitchroute/internal/geom"
	"stitchroute/internal/global"
	"stitchroute/internal/layer"
	"stitchroute/internal/matching"
	"stitchroute/internal/netlist"
	"stitchroute/internal/plan"
	"stitchroute/internal/track"
)

// Config selects the algorithm for every stage.
type Config struct {
	Global    global.Config
	LayerAlgo layer.Algo
	TrackAlgo track.Algo
	Detail    detail.Config
	// RefinePasses is the number of global rip-up/reroute refinement
	// passes after the first bottom-up pass.
	RefinePasses int
}

// StitchAware returns the full stitch-aware framework configuration with
// the paper's parameters (α=1, β=10, γ=5).
func StitchAware() Config {
	return Config{
		Global:       global.StitchAware(),
		LayerAlgo:    layer.KColorableSubset,
		TrackAlgo:    track.GraphBased,
		Detail:       detail.DefaultConfig(true),
		RefinePasses: defaultRefinePasses,
	}
}

// Baseline returns the conventional router: congestion-only global routing
// (the NTUgr stand-in), spanning-tree layer assignment, stitch-oblivious
// track assignment, and conventional detailed routing. Hard constraints
// (no vertical routing or vias on stitching lines) still hold, exactly as
// the paper defines its baseline.
func Baseline() Config {
	return Config{
		Global:       global.Baseline(),
		LayerAlgo:    layer.MaxSpanningTree,
		TrackAlgo:    track.Conventional,
		Detail:       detail.DefaultConfig(false),
		RefinePasses: defaultRefinePasses,
	}
}

// defaultRefinePasses is the default number of rip-up/reroute refinement
// passes after the first bottom-up global pass.
const defaultRefinePasses = 4

// StageTimes records the CPU spent per routing stage.
type StageTimes struct {
	Global, Layer, Track, Detail time.Duration
}

// Total returns the summed stage time.
func (s StageTimes) Total() time.Duration { return s.Global + s.Layer + s.Track + s.Detail }

// Result is the complete routing outcome.
type Result struct {
	Report drc.Report
	Routes []plan.NetRoute
	Plans  []*plan.NetPlan

	// Global routing quality (Table IV).
	TVOF, MVOF   int
	GlobalWL     int
	EdgeOverflow int

	// Track assignment summary (Table VII inputs).
	TrackStats track.Stats
	RowRipped  int

	// Detailed routing summary.
	RippedNets, FailedNets int
	DetailConnects         int
	DetailExpansions       int64
	// DetailSched is the speculative scheduler's telemetry (rounds,
	// speculated/committed/conflicted attempts, replays, per-worker busy
	// time). All-zero for sequential (Workers<=1) runs.
	DetailSched detail.SchedStats

	Times StageTimes

	// ECO is the recording the incremental engine (internal/eco) replays
	// against when this result is used as the parent of a delta reroute.
	// It is attached to every complete run (the recording is
	// observation-only and cheap); nil when the run was cancelled or the
	// global config disables tracing (pattern routing).
	ECO *ECOState
}

// ECOState is the per-run recording consumed by internal/eco: the global
// router's read-set/route trace, the detailed router's per-net activity
// rects and rip-up state, and an echo of the config the run used (an ECO
// reroute must use the same config, or it falls back to a cold run).
type ECOState struct {
	Cfg    Config
	Global *global.Trace
	// Indexed like Routes/Plans (the parent circuit's net slots). The
	// footprints are detail's actTile bucket bitsets.
	Acts      [][]uint64
	WActs     [][]uint64
	Ripped    []bool
	FreedPins [][]detail.Cell
	MatWires  [][]geom.Segment
}

// NormalizeCfg returns cfg with the fields that do not affect routing
// output zeroed, so configs can be compared for ECO compatibility (and
// hashed for caching): Workers only changes scheduling, never routes.
func NormalizeCfg(cfg Config) Config {
	cfg.Detail.Workers = 0
	return cfg
}

// ErrCancelled is wrapped into the error RouteContext returns when the
// run is abandoned because its context was cancelled or its deadline
// expired, so callers can tell cancellation/timeout apart from a routing
// failure with errors.Is. The underlying context error (context.Canceled
// or context.DeadlineExceeded) is wrapped too.
var ErrCancelled = errors.New("routing cancelled")

// cancelErr wraps a context error with ErrCancelled.
func cancelErr(err error) error {
	return fmt.Errorf("core: %w: %w", ErrCancelled, err)
}

// Route runs the full framework on the circuit.
func Route(c *netlist.Circuit, cfg Config) (*Result, error) {
	return RouteContext(context.Background(), c, cfg)
}

// RouteContext runs the full framework on the circuit under a context.
// Cancellation is checked at every stage boundary, between nets inside
// global routing and refinement, and at the top of the detailed-routing
// net loop; a cancelled run returns an error wrapping ErrCancelled (and
// the context's own error) within a few nets' worth of work.
func RouteContext(ctx context.Context, c *netlist.Circuit, cfg Config) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, cancelErr(err)
	}
	f := c.Fabric
	res := &Result{}

	// Stage 1: global routing (first bottom-up pass).
	t0 := time.Now()
	gr := global.NewRouter(f, cfg.Global)
	var err error
	res.Plans, err = gr.RouteAllContext(ctx, c)
	if err != nil {
		return nil, cancelErr(err)
	}
	if err := gr.RefineContext(ctx, c, res.Plans, cfg.RefinePasses); err != nil {
		return nil, cancelErr(err)
	}
	res.TVOF, res.MVOF = gr.Overflow()
	res.GlobalWL = gr.Wirelength()
	res.EdgeOverflow = gr.EdgeOverflow()
	res.Times.Global = time.Since(t0)

	// Stage 2a: layer assignment.
	t0 = time.Now()
	AssignLayers(c, res.Plans, cfg.LayerAlgo)
	res.Times.Layer = time.Since(t0)
	if err := ctx.Err(); err != nil {
		return nil, cancelErr(err)
	}

	// Stage 2b: track assignment.
	t0 = time.Now()
	res.TrackStats, res.RowRipped = AssignTracks(c, res.Plans, cfg.TrackAlgo)
	res.Times.Track = time.Since(t0)
	if err := ctx.Err(); err != nil {
		return nil, cancelErr(err)
	}

	// Stage 3: detailed routing (second bottom-up pass).
	t0 = time.Now()
	dr := detail.NewRouter(f, cfg.Detail)
	// The global router's congestion map partitions speculative rounds:
	// nets over the same congested tiles are not attempted concurrently.
	// Advisory only — routes are byte-identical with or without it.
	dr.SetCongestion(gr.Congestion())
	dres, err := dr.RunContext(ctx, c, res.Plans)
	if err != nil {
		return nil, cancelErr(err)
	}
	res.Routes = dres.Routes
	res.RippedNets = dres.Ripped
	res.FailedNets = dres.Failed
	res.DetailConnects = dres.Connects
	res.DetailExpansions = dres.Expansions
	res.DetailSched = dres.Sched
	res.Times.Detail = time.Since(t0)

	res.Report = drc.Check(c, res.Routes)
	if gt := gr.Trace(); gt != nil {
		res.ECO = &ECOState{
			Cfg:       NormalizeCfg(cfg),
			Global:    gt,
			Acts:      dres.Acts,
			WActs:     dres.WActs,
			Ripped:    dres.NetRipped,
			FreedPins: dres.FreedPins,
			MatWires:  dres.MatWires,
		}
	}
	return res, nil
}

// layersByDir returns the 1-based layer numbers with the given preferred
// direction, ascending. Layer 1 carries the pins and is kept out of the
// horizontal assignment set when other horizontal layers exist: planned
// segments on the pin layer strand pins inside walled pockets, so layer 1
// is left to the detailed router for pin access and short local hops.
func layersByDir(c *netlist.Circuit, dir geom.Orientation) []int {
	var out []int
	for l := 1; l <= c.Fabric.Layers; l++ {
		if c.Fabric.LayerDir(l) == dir {
			out = append(out, l)
		}
	}
	if dir == geom.Horizontal && len(out) > 1 && out[0] == 1 {
		out = out[1:]
	}
	return out
}

// AssignLayers distributes every panel's global segments over the
// same-direction layers (§III-B), writing GSeg.Layer.
func AssignLayers(c *netlist.Circuit, plans []*plan.NetPlan, algo layer.Algo) {
	vLayers := layersByDir(c, geom.Vertical)
	hLayers := layersByDir(c, geom.Horizontal)

	byPanel := map[[2]int][]*plan.GSeg{} // {dirBit, panel}
	var keys [][2]int
	for _, p := range plans {
		if p == nil {
			continue
		}
		for _, s := range p.Segs {
			dirBit := 0
			if s.Dir == geom.Vertical {
				dirBit = 1
			}
			k := [2]int{dirBit, s.Panel}
			if _, ok := byPanel[k]; !ok {
				keys = append(keys, k)
			}
			byPanel[k] = append(byPanel[k], s)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	// Two phases: horizontal panels first, so the vertical phase can map
	// its color groups to layers by via-stack cost against the now-known
	// horizontal layers ([4]'s via-minimizing group-to-layer assignment).
	// Panels within a phase are independent and solved in parallel; each
	// goroutine writes only its own panel's segments.
	runPhase := func(dirBit int, conn *hConnIndex) {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for _, k := range keys {
			if k[0] != dirBit {
				continue
			}
			wg.Add(1)
			go func(k [2]int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if dirBit == 0 {
					assignPanelLayers(byPanel[k], hLayers, algo, nil)
				} else {
					assignPanelLayers(byPanel[k], vLayers, algo, conn)
				}
			}(k)
		}
		wg.Wait()
	}
	runPhase(0, nil)
	runPhase(1, buildHConnIndex(plans))
}

// hConnIndex locates, for a vertical segment end, the horizontal segment
// it connects to, so the via-stack cost of a candidate vertical layer can
// be computed. Read-only during the vertical phase.
type hConnIndex struct {
	// byNet[netID] lists the net's horizontal segments.
	byNet map[int][]*plan.GSeg
}

func buildHConnIndex(plans []*plan.NetPlan) *hConnIndex {
	idx := &hConnIndex{byNet: map[int][]*plan.GSeg{}}
	for _, p := range plans {
		if p == nil {
			continue
		}
		for _, s := range p.Segs {
			if s.Dir == geom.Horizontal {
				idx.byNet[s.NetID] = append(idx.byNet[s.NetID], s)
			}
		}
	}
	return idx
}

// endLayer returns the layer of the horizontal segment that the vertical
// segment's end at (panel, row) connects to, or 1 (the pin layer) when
// the end terminates on a pin.
func (idx *hConnIndex) endLayer(s *plan.GSeg, row int) int {
	for _, h := range idx.byNet[s.NetID] {
		if h.Layer > 0 && h.Panel == row && h.Span.Contains(s.Panel) {
			return h.Layer
		}
	}
	return 1
}

// viaCost estimates the via-stack cost of placing the segment on the
// given vertical layer: the layer distance to each end's connection.
func (idx *hConnIndex) viaCost(s *plan.GSeg, l int) int64 {
	lo := idx.endLayer(s, s.Span.Lo)
	hi := idx.endLayer(s, s.Span.Hi)
	return int64(geom.Abs(l-lo) + geom.Abs(l-hi))
}

// assignPanelLayers colors one panel's segments and maps color groups to
// layers. With a connection index (vertical panels), the group-to-layer
// mapping minimizes the total via-stack cost with a min-cost perfect
// matching, following [4]; without one (horizontal panels), larger groups
// go to higher layers, keeping the pin layer's neighbours light.
func assignPanelLayers(segs []*plan.GSeg, layers []int, algo layer.Algo, conn *hConnIndex) {
	k := len(layers)
	if k == 0 {
		return
	}
	if k == 1 {
		for _, s := range segs {
			s.Layer = layers[0]
		}
		return
	}
	inst := layer.InstanceFromSegs(segs)
	colors := layer.Assign(inst, k, algo)

	colorToLayer := make([]int, k)
	if conn != nil {
		// Via-minimizing mapping: cost[color][rank] = total via-stack cost
		// of putting that color group on layers[rank].
		cost := make([][]int64, k)
		for c := range cost {
			cost[c] = make([]int64, k)
		}
		for i, s := range segs {
			for rank, l := range layers {
				cost[colors[i]][rank] += conn.viaCost(s, l)
			}
		}
		assign, _ := matching.MinCostPerfect(cost)
		for c, rank := range assign {
			colorToLayer[c] = layers[rank]
		}
	} else {
		// Order color groups by total span length, descending; largest to
		// the highest layer.
		totals := make([]int, k)
		for i, s := range segs {
			totals[colors[i]] += s.Span.Len()
		}
		order := make([]int, k)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return totals[order[a]] > totals[order[b]] })
		for rank, color := range order {
			colorToLayer[color] = layers[k-1-rank]
		}
	}
	for i, s := range segs {
		s.Layer = colorToLayer[colors[i]]
	}
}

// AssignTracks runs track assignment for every (panel, layer) group
// (§III-C), writing GSeg.Tracks/BadEnds/Ripped and each plan's BadEnds.
// It returns the aggregated column-panel stats and the number of ripped
// row-panel segments.
func AssignTracks(c *netlist.Circuit, plans []*plan.NetPlan, algo track.Algo) (track.Stats, int) {
	f := c.Fabric
	type key struct {
		dirBit, panel, layer int
	}
	groups := map[key][]*plan.GSeg{}
	var keys []key
	for _, p := range plans {
		if p == nil {
			continue
		}
		for _, s := range p.Segs {
			dirBit := 0
			if s.Dir == geom.Vertical {
				dirBit = 1
			}
			k := key{dirBit, s.Panel, s.Layer}
			if _, ok := groups[k]; !ok {
				keys = append(keys, k)
			}
			groups[k] = append(groups[k], s)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.dirBit != b.dirBit {
			return a.dirBit < b.dirBit
		}
		if a.panel != b.panel {
			return a.panel < b.panel
		}
		return a.layer < b.layer
	})

	// Panels are independent, so they are solved in parallel. Results are
	// written only to each panel's own segments; the stats are merged
	// after the barrier, keeping the outcome deterministic.
	var agg track.Stats
	rowRipped := 0
	type result struct {
		stats track.Stats
		rows  int
	}
	results := make([]result, len(keys))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k key) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			segs := groups[k]
			if k.dirBit == 1 {
				p := &track.Problem{
					Width:          f.TileRect(k.panel, 0).W(),
					HasRightStitch: (k.panel+1)*f.StitchPitch < f.XTracks,
					SUREps:         f.SUREps,
					Segs:           segs,
				}
				results[i].stats = track.Solve(p, algo)
			} else {
				results[i].rows = track.SolveRow(f.TileRect(0, k.panel).H(), segs)
			}
		}(i, k)
	}
	wg.Wait()
	for _, r := range results {
		agg.Ripped += r.stats.Ripped
		agg.BadEnds += r.stats.BadEnds
		agg.Doglegs += r.stats.Doglegs
		agg.ILPNodes += r.stats.ILPNodes
		rowRipped += r.rows
	}
	// Roll bad-end counts up to the nets for detailed-routing ordering.
	for _, p := range plans {
		if p == nil {
			continue
		}
		p.BadEnds = 0
		for _, s := range p.Segs {
			p.BadEnds += s.BadEnds
		}
	}
	return agg, rowRipped
}
