package core

import (
	"testing"

	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/layer"
	"stitchroute/internal/netlist"
	"stitchroute/internal/plan"
	"stitchroute/internal/track"
)

func sixLayerCircuit() *netlist.Circuit {
	return &netlist.Circuit{Name: "t", Fabric: grid.New(90, 90, 6)}
}

func TestAssignLayersMultiLayer(t *testing.T) {
	c := sixLayerCircuit()
	// Six overlapping vertical segments in panel 1 must spread over the
	// three vertical layers (2, 4, 6).
	var plans []*plan.NetPlan
	for i := 0; i < 6; i++ {
		seg := &plan.GSeg{NetID: i, Dir: geom.Vertical, Panel: 1, Span: geom.Interval{Lo: 0, Hi: 4}}
		plans = append(plans, &plan.NetPlan{NetID: i, Segs: []*plan.GSeg{seg}})
	}
	AssignLayers(c, plans, layer.KColorableSubset)
	seen := map[int]int{}
	for _, p := range plans {
		l := p.Segs[0].Layer
		if l != 2 && l != 4 && l != 6 {
			t.Fatalf("vertical segment on layer %d", l)
		}
		seen[l]++
	}
	if len(seen) < 2 {
		t.Errorf("six conflicting segments packed onto %d layer(s): %v", len(seen), seen)
	}
}

func TestAssignLayersHorizontalAvoidsLayer1(t *testing.T) {
	c := sixLayerCircuit()
	var plans []*plan.NetPlan
	for i := 0; i < 4; i++ {
		seg := &plan.GSeg{NetID: i, Dir: geom.Horizontal, Panel: 2, Span: geom.Interval{Lo: 0, Hi: 3}}
		plans = append(plans, &plan.NetPlan{NetID: i, Segs: []*plan.GSeg{seg}})
	}
	AssignLayers(c, plans, layer.MaxSpanningTree)
	for _, p := range plans {
		l := p.Segs[0].Layer
		if l == 1 {
			t.Error("horizontal segment planned on the pin layer")
		}
		if l != 3 && l != 5 {
			t.Errorf("horizontal segment on layer %d", l)
		}
	}
}

func TestAssignLayersSingleLayerDirection(t *testing.T) {
	c := &netlist.Circuit{Name: "t", Fabric: grid.New(90, 90, 3)}
	seg := &plan.GSeg{NetID: 0, Dir: geom.Vertical, Panel: 0, Span: geom.Interval{Lo: 0, Hi: 2}}
	plans := []*plan.NetPlan{{NetID: 0, Segs: []*plan.GSeg{seg}}}
	AssignLayers(c, plans, layer.KColorableSubset)
	if seg.Layer != 2 {
		t.Errorf("only vertical layer is 2, got %d", seg.Layer)
	}
}

func TestAssignTracksRollsUpBadEnds(t *testing.T) {
	c := &netlist.Circuit{Name: "t", Fabric: grid.New(90, 90, 3)}
	// A segment forced into a bad end: crossing left with the panel full
	// except SUR track 1.
	segs := []*plan.GSeg{}
	var plans []*plan.NetPlan
	for i := 0; i < 14; i++ {
		s := &plan.GSeg{NetID: i, Dir: geom.Vertical, Panel: 1, Span: geom.Interval{Lo: 0, Hi: 3}, Layer: 2}
		s.LoCrossL = true
		segs = append(segs, s)
		plans = append(plans, &plan.NetPlan{NetID: i, Segs: []*plan.GSeg{s}})
	}
	stats, _ := AssignTracks(c, plans, track.GraphBased)
	// 14 overlapping crossing segments over 14 usable tracks: at least one
	// must take the SUR track -> bad end, and it must be rolled up to the
	// net plan for detailed-routing priority.
	if stats.BadEnds == 0 && stats.Ripped == 0 {
		t.Fatal("expected pressure to produce bad ends or rips")
	}
	total := 0
	for _, p := range plans {
		total += p.BadEnds
	}
	if total != stats.BadEnds {
		t.Errorf("plan bad ends %d != stats %d", total, stats.BadEnds)
	}
}

func TestHConnIndexEndLayer(t *testing.T) {
	h := &plan.GSeg{NetID: 7, Dir: geom.Horizontal, Panel: 4, Span: geom.Interval{Lo: 1, Hi: 5}, Layer: 3}
	plans := []*plan.NetPlan{{NetID: 7, Segs: []*plan.GSeg{h}}}
	idx := buildHConnIndex(plans)
	v := &plan.GSeg{NetID: 7, Dir: geom.Vertical, Panel: 3, Span: geom.Interval{Lo: 4, Hi: 9}}
	// Low end at row 4: connects to the h-seg (panel 4 covers column 3).
	if got := idx.endLayer(v, 4); got != 3 {
		t.Errorf("endLayer(low) = %d, want 3", got)
	}
	// High end at row 9: no h-seg there -> pin layer 1.
	if got := idx.endLayer(v, 9); got != 1 {
		t.Errorf("endLayer(high) = %d, want 1", got)
	}
	// Via cost on layer 2: |2-3| + |2-1| = 2; on layer 6: |6-3|+|6-1| = 8.
	if c := idx.viaCost(v, 2); c != 2 {
		t.Errorf("viaCost(2) = %d", c)
	}
	if c := idx.viaCost(v, 6); c != 8 {
		t.Errorf("viaCost(6) = %d", c)
	}
	// A different net's h-seg must not match.
	v2 := &plan.GSeg{NetID: 8, Dir: geom.Vertical, Panel: 3, Span: geom.Interval{Lo: 4, Hi: 9}}
	if got := idx.endLayer(v2, 4); got != 1 {
		t.Errorf("cross-net endLayer = %d, want 1", got)
	}
}
