package steiner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stitchroute/internal/geom"
	"stitchroute/internal/graph"
)

func mstLen(pts []geom.Point) int {
	total := 0
	for _, e := range graph.PointMST(pts) {
		total += pts[e[0]].ManhattanDist(pts[e[1]])
	}
	return total
}

func hpwl(pts []geom.Point) int {
	b := geom.BoundingRect(pts)
	return (b.X1 - b.X0) + (b.Y1 - b.Y0)
}

func connected(t *Tree) bool {
	pts := t.Points()
	d := graph.NewDSU(len(pts))
	for _, e := range t.Edges {
		d.Union(e[0], e[1])
	}
	for i := 1; i < len(t.Terminals); i++ {
		if d.Find(i) != d.Find(0) {
			return false
		}
	}
	return true
}

func TestTwoTerminals(t *testing.T) {
	tr := Build([]geom.Point{{X: 0, Y: 0}, {X: 5, Y: 7}})
	if len(tr.Steiner) != 0 || tr.Length() != 12 {
		t.Errorf("tree = %+v len %d", tr, tr.Length())
	}
}

func TestThreeTerminalsOptimal(t *testing.T) {
	// RSMT of 3 terminals always equals the bounding-box half-perimeter.
	f := func(x0, y0, x1, y1, x2, y2 uint8) bool {
		ts := []geom.Point{
			{X: int(x0) % 50, Y: int(y0) % 50},
			{X: int(x1) % 50, Y: int(y1) % 50},
			{X: int(x2) % 50, Y: int(y2) % 50},
		}
		tr := Build(ts)
		return connected(tr) && tr.Length() == hpwl(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFourTerminalsNeverWorseThanMST(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 200; iter++ {
		ts := make([]geom.Point, 4)
		for i := range ts {
			ts[i] = geom.Point{X: rng.Intn(40), Y: rng.Intn(40)}
		}
		tr := Build(ts)
		if !connected(tr) {
			t.Fatalf("iter %d: disconnected tree for %v", iter, ts)
		}
		if tr.Length() > mstLen(ts) {
			t.Fatalf("iter %d: steiner %d > MST %d for %v", iter, tr.Length(), mstLen(ts), ts)
		}
		if tr.Length() < hpwl(ts) {
			t.Fatalf("iter %d: steiner %d below HPWL lower bound %d", iter, tr.Length(), hpwl(ts))
		}
	}
}

func TestFourTerminalCross(t *testing.T) {
	// The classic cross: 4 terminals at the ends of a plus sign. The RSMT
	// uses two Steiner points on the center line (or one center point),
	// total length 3*d vs the MST's 4*d-ish.
	d := 10
	ts := []geom.Point{
		{X: 0, Y: d}, {X: 2 * d, Y: d}, // left, right
		{X: d, Y: 0}, {X: d, Y: 2 * d}, // bottom, top
	}
	tr := Build(ts)
	if tr.Length() != 4*d {
		t.Errorf("cross RSMT length %d, want %d", tr.Length(), 4*d)
	}
	if got := mstLen(ts); tr.Length() >= got {
		t.Errorf("steiner %d not better than MST %d on the cross", tr.Length(), got)
	}
}

func TestIterated1SteinerImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	improved := 0
	for iter := 0; iter < 50; iter++ {
		n := 5 + rng.Intn(6)
		ts := make([]geom.Point, n)
		for i := range ts {
			ts[i] = geom.Point{X: rng.Intn(60), Y: rng.Intn(60)}
		}
		tr := Build(ts)
		if !connected(tr) {
			t.Fatalf("iter %d: disconnected", iter)
		}
		m := mstLen(ts)
		if tr.Length() > m {
			t.Fatalf("iter %d: heuristic worse than MST: %d > %d", iter, tr.Length(), m)
		}
		if tr.Length() < m {
			improved++
		}
	}
	if improved == 0 {
		t.Error("iterated 1-Steiner never improved on the MST over 50 random nets")
	}
}

func TestLargeNetFallsBackToMST(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ts := make([]geom.Point, 20)
	for i := range ts {
		ts[i] = geom.Point{X: rng.Intn(100), Y: rng.Intn(100)}
	}
	tr := Build(ts)
	if len(tr.Steiner) != 0 {
		t.Error("large net should use the plain MST topology")
	}
	if !connected(tr) {
		t.Error("disconnected")
	}
}

func TestMedianCoincidesWithTerminal(t *testing.T) {
	// Collinear terminals: the median IS a terminal; no Steiner point.
	tr := Build([]geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 9, Y: 0}})
	if len(tr.Steiner) != 0 {
		t.Errorf("collinear net got Steiner points: %v", tr.Steiner)
	}
	if tr.Length() != 9 {
		t.Errorf("length = %d, want 9", tr.Length())
	}
}

func TestDuplicateTerminals(t *testing.T) {
	tr := Build([]geom.Point{{X: 3, Y: 3}, {X: 3, Y: 3}, {X: 8, Y: 3}})
	if !connected(tr) {
		t.Error("disconnected with duplicates")
	}
	if tr.Length() != 5 {
		t.Errorf("length = %d, want 5", tr.Length())
	}
}
