// Package steiner builds rectilinear Steiner minimal trees (RSMTs) for
// multipin net decomposition. Routing a multipin net along an RSMT
// topology instead of a spanning tree saves wirelength by sharing trunk
// segments — the decomposition used by production global routers (the
// NTU routers the paper's framework descends from use Steiner topologies).
//
// Exact construction for small nets via Hanan's theorem (an optimal RSMT
// uses only Hanan grid points): 3-terminal nets take the median point;
// 4-terminal nets search all Hanan-point subsets of size ≤ 2. Larger nets
// use the iterated 1-Steiner heuristic, falling back to the plain MST
// topology beyond a size cap.
package steiner

import (
	"sort"

	"stitchroute/internal/geom"
	"stitchroute/internal/graph"
)

// Tree is a Steiner tree over terminal points: the terminals, the added
// Steiner points, and the tree edges as index pairs into
// append(Terminals, Steiner...).
type Tree struct {
	Terminals []geom.Point
	Steiner   []geom.Point
	Edges     [][2]int
}

// Points returns the tree's full point list (terminals then Steiner
// points), matching the Edges indexing.
func (t *Tree) Points() []geom.Point {
	return append(append([]geom.Point(nil), t.Terminals...), t.Steiner...)
}

// Length returns the total rectilinear edge length.
func (t *Tree) Length() int {
	pts := t.Points()
	total := 0
	for _, e := range t.Edges {
		total += pts[e[0]].ManhattanDist(pts[e[1]])
	}
	return total
}

// maxIterated1Steiner caps the heuristic's net size; larger nets get the
// MST topology directly.
const maxIterated1Steiner = 12

// Build returns a Steiner tree for the terminals. Duplicates are allowed.
func Build(terminals []geom.Point) *Tree {
	t := &Tree{Terminals: terminals}
	switch {
	case len(terminals) <= 2:
		t.Edges = graph.PointMST(terminals)
	case len(terminals) == 3:
		t.Steiner, t.Edges = median3(terminals)
	case len(terminals) == 4:
		t.Steiner, t.Edges = exact4(terminals)
	case len(terminals) <= maxIterated1Steiner:
		t.Steiner, t.Edges = iterated1Steiner(terminals)
	default:
		t.Edges = graph.PointMST(terminals)
	}
	return t
}

// median3 is the classic exact 3-terminal RSMT: the median point connects
// all three terminals, and the tree length equals the bounding-box
// half-perimeter.
func median3(ts []geom.Point) ([]geom.Point, [][2]int) {
	xs := []int{ts[0].X, ts[1].X, ts[2].X}
	ys := []int{ts[0].Y, ts[1].Y, ts[2].Y}
	sort.Ints(xs)
	sort.Ints(ys)
	m := geom.Point{X: xs[1], Y: ys[1]}
	for _, t := range ts {
		if t == m {
			// The median coincides with a terminal: a plain MST is optimal
			// and avoids a zero-length Steiner edge.
			return nil, graph.PointMST(ts)
		}
	}
	return []geom.Point{m}, [][2]int{{0, 3}, {1, 3}, {2, 3}}
}

// exact4 searches all Hanan-point subsets of size <= 2 for 4 terminals;
// by Hanan's theorem this contains an optimal RSMT.
func exact4(ts []geom.Point) ([]geom.Point, [][2]int) {
	hanan := hananGrid(ts)
	bestLen := 1 << 60
	var bestSteiner []geom.Point
	var bestEdges [][2]int

	try := func(extra []geom.Point) {
		pts := append(append([]geom.Point(nil), ts...), extra...)
		edges := graph.PointMST(pts)
		// Prune Steiner leaves: a Steiner point of degree <= 1 is useless.
		edges, used := pruneSteinerLeaves(pts, len(ts), edges)
		length := 0
		for _, e := range edges {
			length += pts[e[0]].ManhattanDist(pts[e[1]])
		}
		if length < bestLen {
			bestLen = length
			// Compact the used Steiner points.
			remap := make(map[int]int)
			var st []geom.Point
			for i := len(ts); i < len(pts); i++ {
				if used[i] {
					remap[i] = len(ts) + len(st)
					st = append(st, pts[i])
				}
			}
			ne := make([][2]int, len(edges))
			for i, e := range edges {
				a, b := e[0], e[1]
				if a >= len(ts) {
					a = remap[a]
				}
				if b >= len(ts) {
					b = remap[b]
				}
				ne[i] = [2]int{a, b}
			}
			bestSteiner = st
			bestEdges = ne
		}
	}

	try(nil)
	for i := 0; i < len(hanan); i++ {
		try([]geom.Point{hanan[i]})
		for j := i + 1; j < len(hanan); j++ {
			try([]geom.Point{hanan[i], hanan[j]})
		}
	}
	return bestSteiner, bestEdges
}

// pruneSteinerLeaves removes degree-<=1 Steiner points (index >= nTerm)
// from the edge set, iterating to a fixed point. It reports which points
// remain used.
func pruneSteinerLeaves(pts []geom.Point, nTerm int, edges [][2]int) ([][2]int, []bool) {
	for {
		deg := make([]int, len(pts))
		for _, e := range edges {
			deg[e[0]]++
			deg[e[1]]++
		}
		removed := false
		out := edges[:0:0]
		for _, e := range edges {
			drop := false
			for _, v := range e {
				if v >= nTerm && deg[v] <= 1 {
					drop = true
				}
			}
			if drop {
				removed = true
			} else {
				out = append(out, e)
			}
		}
		edges = out
		if !removed {
			used := make([]bool, len(pts))
			for _, e := range edges {
				used[e[0]] = true
				used[e[1]] = true
			}
			return edges, used
		}
	}
}

// hananGrid returns the Hanan grid points of the terminals, excluding the
// terminals themselves.
func hananGrid(ts []geom.Point) []geom.Point {
	xs := map[int]bool{}
	ys := map[int]bool{}
	onTerm := map[geom.Point]bool{}
	for _, t := range ts {
		xs[t.X] = true
		ys[t.Y] = true
		onTerm[t] = true
	}
	var out []geom.Point
	for x := range xs {
		for y := range ys {
			p := geom.Point{X: x, Y: y}
			if !onTerm[p] {
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// iterated1Steiner repeatedly adds the single Hanan point that reduces
// the MST length most, until no point helps (Kahng–Robins).
func iterated1Steiner(ts []geom.Point) ([]geom.Point, [][2]int) {
	cur := append([]geom.Point(nil), ts...)
	mstLen := func(pts []geom.Point) int {
		total := 0
		for _, e := range graph.PointMST(pts) {
			total += pts[e[0]].ManhattanDist(pts[e[1]])
		}
		return total
	}
	best := mstLen(cur)
	for len(cur)-len(ts) < 4 { // at most n-2 Steiner points matter; cap for speed
		cands := hananGrid(cur)
		improved := false
		var bestPt geom.Point
		bestGain := 0
		for _, p := range cands {
			l := mstLen(append(cur, p))
			if gain := best - l; gain > bestGain {
				bestGain = gain
				bestPt = p
				improved = true
			}
		}
		if !improved {
			break
		}
		cur = append(cur, bestPt)
		best -= bestGain
	}
	edges := graph.PointMST(cur)
	edges, used := pruneSteinerLeaves(cur, len(ts), edges)
	// Compact used Steiner points.
	remap := make(map[int]int)
	var st []geom.Point
	for i := len(ts); i < len(cur); i++ {
		if used[i] {
			remap[i] = len(ts) + len(st)
			st = append(st, cur[i])
		}
	}
	out := make([][2]int, len(edges))
	for i, e := range edges {
		a, b := e[0], e[1]
		if a >= len(ts) {
			a = remap[a]
		}
		if b >= len(ts) {
			b = remap[b]
		}
		out[i] = [2]int{a, b}
	}
	return st, out
}
