package steiner

import (
	"math/rand"
	"testing"

	"stitchroute/internal/geom"
)

// BenchmarkBuild4 measures the exact 4-terminal Hanan search.
func BenchmarkBuild4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nets := make([][]geom.Point, 64)
	for i := range nets {
		nets[i] = []geom.Point{
			{X: rng.Intn(50), Y: rng.Intn(50)}, {X: rng.Intn(50), Y: rng.Intn(50)},
			{X: rng.Intn(50), Y: rng.Intn(50)}, {X: rng.Intn(50), Y: rng.Intn(50)},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(nets[i%len(nets)])
	}
}

// BenchmarkBuild8 measures the iterated 1-Steiner heuristic.
func BenchmarkBuild8(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	nets := make([][]geom.Point, 64)
	for i := range nets {
		pts := make([]geom.Point, 8)
		for j := range pts {
			pts[j] = geom.Point{X: rng.Intn(80), Y: rng.Intn(80)}
		}
		nets[i] = pts
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(nets[i%len(nets)])
	}
}
