// Package gds writes routed geometry as a GDSII stream file — the
// industry interchange format — so results can be inspected in standard
// layout viewers (KLayout, glade, ...). Wires become BOUNDARY rectangles
// on their routing layer; vias become boundaries on a cut layer between
// the two routed layers (layer numbering: metal l -> GDS layer 2l-1, via
// between l and l+1 -> GDS layer 2l).
//
// Only the records needed for polygon data are emitted (HEADER, BGNLIB,
// LIBNAME, UNITS, BGNSTR, STRNAME, BOUNDARY, LAYER, DATATYPE, XY, ENDEL,
// ENDSTR, ENDLIB), which every GDSII consumer understands. A matching
// minimal reader supports round-trip tests.
package gds

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"stitchroute/internal/plan"
)

// GDSII record types used.
const (
	recHeader   = 0x0002
	recBgnLib   = 0x0102
	recLibName  = 0x0206
	recUnits    = 0x0305
	recEndLib   = 0x0400
	recBgnStr   = 0x0502
	recStrName  = 0x0606
	recEndStr   = 0x0700
	recBoundary = 0x0800
	recLayer    = 0x0D02
	recDatatype = 0x0E02
	recXY       = 0x1003
	recEndEl    = 0x1100
)

// Options controls the export.
type Options struct {
	// LibName and CellName default to "STITCHROUTE" and "TOP".
	LibName, CellName string
	// DBUPerTrack is the database units per routing track (default 100,
	// i.e. a 100 nm pitch at 1 nm database units).
	DBUPerTrack int
}

func (o *Options) defaults() {
	if o.LibName == "" {
		o.LibName = "STITCHROUTE"
	}
	if o.CellName == "" {
		o.CellName = "TOP"
	}
	if o.DBUPerTrack <= 0 {
		o.DBUPerTrack = 100
	}
}

// MetalLayer maps routing layer l (1-based) to its GDS layer number.
func MetalLayer(l int) int { return 2*l - 1 }

// ViaLayer maps a via connecting l and l+1 to its GDS layer number.
func ViaLayer(l int) int { return 2 * l }

// Write exports the routed geometry.
func Write(w io.Writer, routes []plan.NetRoute, opt Options) error {
	opt.defaults()
	e := &encoder{w: w}

	e.record(recHeader, u16(600)) // GDSII version 6
	ts := make([]byte, 24)        // zeroed modification timestamps
	e.record(recBgnLib, ts)
	e.record(recLibName, str(opt.LibName))
	e.record(recUnits, unitsPayload())
	e.record(recBgnStr, ts)
	e.record(recStrName, str(opt.CellName))

	dbu := opt.DBUPerTrack
	half := dbu / 2
	for i := range routes {
		if !routes[i].Routed {
			continue
		}
		for _, wire := range routes[i].Wires {
			a, b := wire.Ends()
			e.boundary(MetalLayer(wire.Layer),
				a.X*dbu-half, a.Y*dbu-half, b.X*dbu+half, b.Y*dbu+half)
		}
		for _, v := range routes[i].Vias {
			q := half / 2
			e.boundary(ViaLayer(v.Layer), v.X*dbu-q, v.Y*dbu-q, v.X*dbu+q, v.Y*dbu+q)
		}
	}

	e.record(recEndStr, nil)
	e.record(recEndLib, nil)
	return e.err
}

type encoder struct {
	w   io.Writer
	err error
}

func (e *encoder) record(typ uint16, payload []byte) {
	if e.err != nil {
		return
	}
	if len(payload)%2 == 1 {
		payload = append(payload, 0)
	}
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint16(hdr, uint16(4+len(payload)))
	binary.BigEndian.PutUint16(hdr[2:], typ)
	if _, err := e.w.Write(hdr); err != nil {
		e.err = err
		return
	}
	if len(payload) > 0 {
		if _, err := e.w.Write(payload); err != nil {
			e.err = err
		}
	}
}

// boundary emits a rectangle as a closed 5-point polygon.
func (e *encoder) boundary(layer, x0, y0, x1, y1 int) {
	e.record(recBoundary, nil)
	e.record(recLayer, u16(uint16(layer)))
	e.record(recDatatype, u16(0))
	xy := make([]byte, 0, 40)
	for _, p := range [5][2]int{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}, {x0, y0}} {
		xy = append(xy, i32(p[0])...)
		xy = append(xy, i32(p[1])...)
	}
	e.record(recXY, xy)
	e.record(recEndEl, nil)
}

func u16(v uint16) []byte {
	b := make([]byte, 2)
	binary.BigEndian.PutUint16(b, v)
	return b
}

func i32(v int) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(int32(v)))
	return b
}

func str(s string) []byte { return []byte(s) }

// unitsPayload encodes UNITS as two GDSII 8-byte reals: 0.001 user units
// per DB unit and 1e-9 m per DB unit (1 nm database grid).
func unitsPayload() []byte {
	return append(real8(0.001), real8(1e-9)...)
}

// real8 encodes a float64 as GDSII's excess-64 base-16 8-byte real.
func real8(f float64) []byte {
	b := make([]byte, 8)
	if f == 0 {
		return b
	}
	sign := byte(0)
	if f < 0 {
		sign = 0x80
		f = -f
	}
	exp := 0
	for f >= 1 {
		f /= 16
		exp++
	}
	for f < 1.0/16 {
		f *= 16
		exp--
	}
	b[0] = sign | byte(exp+64)
	mant := uint64(f * math.Pow(2, 56))
	for i := 1; i < 8; i++ {
		b[i] = byte(mant >> uint(8*(7-i)))
	}
	return b
}

// Rect is one polygon read back from a GDS stream (the bounding box of
// its XY record; the writer only emits rectangles).
type Rect struct {
	Layer          int
	X0, Y0, X1, Y1 int
}

// Read parses a GDS stream written by Write and returns its rectangles.
// It is a minimal reader for round-trip verification, not a general GDSII
// parser: unknown records are skipped.
func Read(r io.Reader) ([]Rect, error) {
	var out []Rect
	var cur *Rect
	for {
		hdr := make([]byte, 4)
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		size := int(binary.BigEndian.Uint16(hdr))
		typ := binary.BigEndian.Uint16(hdr[2:])
		if size < 4 {
			return nil, fmt.Errorf("gds: record size %d", size)
		}
		payload := make([]byte, size-4)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("gds: truncated record: %w", err)
		}
		switch typ {
		case recBoundary:
			cur = &Rect{}
		case recLayer:
			if cur != nil && len(payload) >= 2 {
				cur.Layer = int(binary.BigEndian.Uint16(payload))
			}
		case recXY:
			if cur != nil {
				n := len(payload) / 8
				for i := 0; i < n; i++ {
					x := int(int32(binary.BigEndian.Uint32(payload[8*i:])))
					y := int(int32(binary.BigEndian.Uint32(payload[8*i+4:])))
					if i == 0 {
						cur.X0, cur.Y0, cur.X1, cur.Y1 = x, y, x, y
					} else {
						cur.X0 = min(cur.X0, x)
						cur.Y0 = min(cur.Y0, y)
						cur.X1 = max(cur.X1, x)
						cur.Y1 = max(cur.Y1, y)
					}
				}
			}
		case recEndEl:
			if cur != nil {
				out = append(out, *cur)
				cur = nil
			}
		case recEndLib:
			return out, nil
		}
	}
}
