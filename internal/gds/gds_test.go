package gds

import (
	"bytes"
	"math"
	"testing"

	"stitchroute/internal/geom"
	"stitchroute/internal/plan"
)

func sample() []plan.NetRoute {
	return []plan.NetRoute{
		{
			NetID: 0, Routed: true,
			Wires: []geom.Segment{
				geom.HSeg(1, 5, 2, 12),
				geom.VSeg(2, 12, 5, 9),
			},
			Vias: []plan.Via{{X: 12, Y: 5, Layer: 1}},
		},
		{NetID: 1, Routed: false, Wires: []geom.Segment{geom.HSeg(1, 9, 0, 5)}},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample(), Options{}); err != nil {
		t.Fatal(err)
	}
	rects, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 2 wires + 1 via from the routed net; the failed net is skipped.
	if len(rects) != 3 {
		t.Fatalf("%d rects, want 3: %+v", len(rects), rects)
	}
	byLayer := map[int]int{}
	for _, r := range rects {
		byLayer[r.Layer]++
		if r.X0 >= r.X1 || r.Y0 >= r.Y1 {
			t.Errorf("degenerate rect %+v", r)
		}
	}
	if byLayer[MetalLayer(1)] != 1 || byLayer[MetalLayer(2)] != 1 || byLayer[ViaLayer(1)] != 1 {
		t.Errorf("layer distribution %v", byLayer)
	}
}

func TestWireGeometryScaled(t *testing.T) {
	var buf bytes.Buffer
	routes := []plan.NetRoute{{
		NetID: 0, Routed: true,
		Wires: []geom.Segment{geom.HSeg(1, 0, 0, 10)},
	}}
	if err := Write(&buf, routes, Options{DBUPerTrack: 100}); err != nil {
		t.Fatal(err)
	}
	rects, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := rects[0]
	// Track 0..10 at 100 dbu/track with half-pitch width: x in [-50, 1050].
	if r.X0 != -50 || r.X1 != 1050 || r.Y0 != -50 || r.Y1 != 50 {
		t.Errorf("rect = %+v", r)
	}
}

func TestReal8(t *testing.T) {
	// Decode real8 back and compare.
	decode := func(b []byte) float64 {
		sign := 1.0
		if b[0]&0x80 != 0 {
			sign = -1
		}
		exp := int(b[0]&0x7f) - 64
		var mant float64
		for i := 1; i < 8; i++ {
			mant += float64(b[i]) / math.Pow(256, float64(i))
		}
		return sign * mant * math.Pow(16, float64(exp))
	}
	for _, v := range []float64{0.001, 1e-9, 1, 0.5, 1024} {
		got := decode(real8(v))
		if math.Abs(got-v) > 1e-12*math.Max(1, v) {
			t.Errorf("real8(%g) decodes to %g", v, got)
		}
	}
	for _, b := range real8(0) {
		if b != 0 {
			t.Error("real8(0) not all zero")
		}
	}
}

func TestHeaderStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil, Options{LibName: "LIB", CellName: "CELL"}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// First record: HEADER, length 6, version 600.
	if b[0] != 0 || b[1] != 6 || b[2] != 0x00 || b[3] != 0x02 {
		t.Errorf("bad header record: % x", b[:4])
	}
	if int(b[4])<<8|int(b[5]) != 600 {
		t.Error("bad version")
	}
	// Stream must terminate with ENDLIB.
	if b[len(b)-2] != 0x04 || b[len(b)-1] != 0x00 {
		t.Errorf("missing ENDLIB: % x", b[len(b)-4:])
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{0, 2, 0})); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Read(bytes.NewReader([]byte{0, 1, 0x08, 0x00})); err == nil {
		t.Error("undersized record accepted")
	}
}
