package gds

import (
	"bytes"
	"testing"

	"stitchroute/internal/geom"
	"stitchroute/internal/plan"
)

// FuzzGDSRead ensures the GDS reader never panics on arbitrary bytes.
func FuzzGDSRead(f *testing.F) {
	var buf bytes.Buffer
	_ = Write(&buf, []plan.NetRoute{{
		NetID: 0, Routed: true,
		Wires: []geom.Segment{geom.HSeg(1, 5, 2, 12)},
		Vias:  []plan.Via{{X: 12, Y: 5, Layer: 1}},
	}}, Options{})
	f.Add(buf.Bytes())
	f.Add([]byte{0, 6, 0, 2, 2, 88})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rects, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, r := range rects {
			if r.X0 > r.X1 || r.Y0 > r.Y1 {
				t.Fatal("reader produced inverted rect")
			}
		}
	})
}
