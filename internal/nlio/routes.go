package nlio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"stitchroute/internal/geom"
	"stitchroute/internal/plan"
)

// Routed-geometry text format, one stanza per net:
//
//	route NETID routed|failed
//	wire H LAYER Y X0 X1        (horizontal wire)
//	wire V LAYER X Y0 Y1        (vertical wire)
//	via X Y LAYER               (connects LAYER and LAYER+1)
//	end
//
// The format round-trips and is diff-friendly for golden tests.

// WriteRoutes serializes routed geometry.
func WriteRoutes(w io.Writer, routes []plan.NetRoute) error {
	bw := bufio.NewWriter(w)
	for i := range routes {
		rt := &routes[i]
		status := "routed"
		if !rt.Routed {
			status = "failed"
		}
		fmt.Fprintf(bw, "route %d %s\n", rt.NetID, status)
		for _, wire := range rt.Wires {
			fmt.Fprintf(bw, "wire %s %d %d %d %d\n",
				wire.Orient, wire.Layer, wire.Fixed, wire.Span.Lo, wire.Span.Hi)
		}
		for _, v := range rt.Vias {
			fmt.Fprintf(bw, "via %d %d %d\n", v.X, v.Y, v.Layer)
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

// ReadRoutes parses routed geometry written by WriteRoutes.
func ReadRoutes(r io.Reader) ([]plan.NetRoute, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var routes []plan.NetRoute
	var cur *plan.NetRoute
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "route":
			if cur != nil {
				return nil, fmt.Errorf("nlio: line %d: route inside route", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("nlio: line %d: want 'route ID status'", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("nlio: line %d: bad net ID", lineNo)
			}
			routes = append(routes, plan.NetRoute{NetID: id, Routed: fields[2] == "routed"})
			cur = &routes[len(routes)-1]
		case "wire":
			if cur == nil || len(fields) != 6 {
				return nil, fmt.Errorf("nlio: line %d: bad wire", lineNo)
			}
			nums, err := atoiAll(fields[2:])
			if err != nil {
				return nil, fmt.Errorf("nlio: line %d: %w", lineNo, err)
			}
			var seg geom.Segment
			switch fields[1] {
			case "H":
				seg = geom.HSeg(nums[0], nums[1], nums[2], nums[3])
			case "V":
				seg = geom.VSeg(nums[0], nums[1], nums[2], nums[3])
			default:
				return nil, fmt.Errorf("nlio: line %d: bad orientation %q", lineNo, fields[1])
			}
			cur.Wires = append(cur.Wires, seg)
		case "via":
			if cur == nil || len(fields) != 4 {
				return nil, fmt.Errorf("nlio: line %d: bad via", lineNo)
			}
			nums, err := atoiAll(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("nlio: line %d: %w", lineNo, err)
			}
			cur.Vias = append(cur.Vias, plan.Via{X: nums[0], Y: nums[1], Layer: nums[2]})
		case "end":
			if cur == nil {
				return nil, fmt.Errorf("nlio: line %d: end without route", lineNo)
			}
			cur = nil
		default:
			return nil, fmt.Errorf("nlio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("nlio: unterminated route %d", cur.NetID)
	}
	return routes, nil
}

func atoiAll(fields []string) ([]int, error) {
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out[i] = v
	}
	return out, nil
}
