// Package nlio reads and writes circuits in a simple line-oriented text
// format, so the command-line tools can route user designs instead of the
// bundled synthetic benchmarks:
//
//	# comment
//	circuit NAME
//	grid XTRACKS YTRACKS LAYERS [stitch PITCH] [sur EPS] [escape W]
//	net NAME X,Y[,LAYER] X,Y[,LAYER] ...
//
// Pins default to layer 1. The format round-trips: Write(Read(x)) == x up
// to comments and whitespace.
package nlio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/netlist"
)

// Read parses a circuit from r.
func Read(r io.Reader) (*netlist.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	c := &netlist.Circuit{}
	lineNo := 0
	nextID := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if len(fields) != 2 {
				return nil, fmt.Errorf("nlio: line %d: want 'circuit NAME'", lineNo)
			}
			c.Name = fields[1]
		case "grid":
			f, err := parseGrid(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("nlio: line %d: %w", lineNo, err)
			}
			c.Fabric = f
		case "net":
			if c.Fabric == nil {
				return nil, fmt.Errorf("nlio: line %d: net before grid", lineNo)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("nlio: line %d: net needs a name and >=2 pins", lineNo)
			}
			n := &netlist.Net{ID: nextID, Name: fields[1]}
			nextID++
			for _, tok := range fields[2:] {
				p, err := parsePin(tok)
				if err != nil {
					return nil, fmt.Errorf("nlio: line %d: %w", lineNo, err)
				}
				n.Pins = append(n.Pins, p)
			}
			c.Nets = append(c.Nets, n)
		default:
			return nil, fmt.Errorf("nlio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("nlio: %w", err)
	}
	if c.Fabric == nil {
		return nil, fmt.Errorf("nlio: missing grid directive")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseGrid(args []string) (*grid.Fabric, error) {
	if len(args) < 3 {
		return nil, fmt.Errorf("want 'grid X Y LAYERS [stitch P] [sur E] [escape W]'")
	}
	x, err1 := strconv.Atoi(args[0])
	y, err2 := strconv.Atoi(args[1])
	l, err3 := strconv.Atoi(args[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("bad grid dimensions %v", args[:3])
	}
	f := grid.New(x, y, l)
	rest := args[3:]
	for len(rest) >= 2 {
		v, err := strconv.Atoi(rest[1])
		if err != nil {
			return nil, fmt.Errorf("bad %s value %q", rest[0], rest[1])
		}
		switch rest[0] {
		case "stitch":
			f.StitchPitch = v
		case "sur":
			f.SUREps = v
		case "escape":
			f.EscapeWidth = v
		default:
			return nil, fmt.Errorf("unknown grid option %q", rest[0])
		}
		rest = rest[2:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("dangling grid option %q", rest[0])
	}
	return f, f.Validate()
}

func parsePin(tok string) (netlist.Pin, error) {
	parts := strings.Split(tok, ",")
	if len(parts) != 2 && len(parts) != 3 {
		return netlist.Pin{}, fmt.Errorf("bad pin %q (want X,Y or X,Y,LAYER)", tok)
	}
	x, err1 := strconv.Atoi(parts[0])
	y, err2 := strconv.Atoi(parts[1])
	layer := 1
	var err3 error
	if len(parts) == 3 {
		layer, err3 = strconv.Atoi(parts[2])
	}
	if err1 != nil || err2 != nil || err3 != nil {
		return netlist.Pin{}, fmt.Errorf("bad pin %q", tok)
	}
	return netlist.Pin{Point: geom.Point{X: x, Y: y}, Layer: layer}, nil
}

// sanitizeName makes a token safe for the whitespace-separated format.
func sanitizeName(name string) string {
	if name == "" {
		return "unnamed"
	}
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\n', '\r', '#':
			return '_'
		}
		return r
	}, name)
}

// Write serializes the circuit in the nlio format. Names that would not
// survive the line-oriented format (empty, or containing whitespace) are
// sanitized so Write's output always parses back.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", sanitizeName(c.Name))
	f := c.Fabric
	fmt.Fprintf(bw, "grid %d %d %d", f.XTracks, f.YTracks, f.Layers)
	if f.StitchPitch != grid.DefaultStitchPitch {
		fmt.Fprintf(bw, " stitch %d", f.StitchPitch)
	}
	if f.SUREps != grid.DefaultSUREps {
		fmt.Fprintf(bw, " sur %d", f.SUREps)
	}
	if f.EscapeWidth != grid.DefaultEscapeWidth {
		fmt.Fprintf(bw, " escape %d", f.EscapeWidth)
	}
	fmt.Fprintln(bw)
	for _, n := range c.Nets {
		fmt.Fprintf(bw, "net %s", sanitizeName(n.Name))
		for _, p := range n.Pins {
			if p.Layer == 1 {
				fmt.Fprintf(bw, " %d,%d", p.X, p.Y)
			} else {
				fmt.Fprintf(bw, " %d,%d,%d", p.X, p.Y, p.Layer)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
