package nlio

import (
	"math/rand"
	"strings"
	"testing"

	"stitchroute/internal/bench"
	"stitchroute/internal/geom"
	"stitchroute/internal/grid"
	"stitchroute/internal/netlist"
)

const sample = `
# a small test circuit
circuit demo
grid 60 45 3
net a 2,3 20,8
net b 15,3 16,40,2 59,44
`

func TestRead(t *testing.T) {
	c, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" {
		t.Errorf("name = %q", c.Name)
	}
	if c.Fabric.XTracks != 60 || c.Fabric.YTracks != 45 || c.Fabric.Layers != 3 {
		t.Errorf("fabric = %+v", c.Fabric)
	}
	if len(c.Nets) != 2 {
		t.Fatalf("%d nets", len(c.Nets))
	}
	if c.Nets[1].Pins[1] != (netlist.Pin{Point: geom.Point{X: 16, Y: 40}, Layer: 2}) {
		t.Errorf("pin = %+v", c.Nets[1].Pins[1])
	}
	if c.Nets[0].Pins[0].Layer != 1 {
		t.Error("default layer not 1")
	}
	if c.Nets[0].ID != 0 || c.Nets[1].ID != 1 {
		t.Error("IDs not dense")
	}
}

func TestGridOptions(t *testing.T) {
	src := "circuit x\ngrid 60 60 3 stitch 12 sur 2 escape 3\nnet n 1,1 20,20\n"
	c, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	f := c.Fabric
	if f.StitchPitch != 12 || f.SUREps != 2 || f.EscapeWidth != 3 {
		t.Errorf("fabric opts = %+v", f)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no grid":         "circuit x\nnet a 1,1 2,2\n",
		"missing grid":    "circuit x\n",
		"bad pin":         "circuit x\ngrid 60 60 3\nnet a 1 2,2\n",
		"one pin":         "circuit x\ngrid 60 60 3\nnet a 1,1\n",
		"unknown":         "frobnicate\n",
		"bad dims":        "circuit x\ngrid a b c\n",
		"bad option":      "circuit x\ngrid 60 60 3 wibble 4\nnet a 1,1 2,2\n",
		"dangling option": "circuit x\ngrid 60 60 3 stitch\nnet a 1,1 2,2\n",
		"oob pin":         "circuit x\ngrid 60 60 3\nnet a 1,1 99,99\n",
		"bad layer":       "circuit x\ngrid 60 60 3\nnet a 1,1 2,2,9\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, sb.String())
	}
	if c2.Name != c.Name || len(c2.Nets) != len(c.Nets) {
		t.Fatal("round trip changed structure")
	}
	for i := range c.Nets {
		if len(c2.Nets[i].Pins) != len(c.Nets[i].Pins) {
			t.Fatalf("net %d pin count changed", i)
		}
		for j := range c.Nets[i].Pins {
			if c2.Nets[i].Pins[j] != c.Nets[i].Pins[j] {
				t.Errorf("net %d pin %d: %+v != %+v", i, j, c2.Nets[i].Pins[j], c.Nets[i].Pins[j])
			}
		}
	}
}

func TestRoundTripNonDefaultFabric(t *testing.T) {
	f := grid.New(120, 90, 6)
	f.StitchPitch = 12
	f.SUREps = 2
	f.EscapeWidth = 3
	c := &netlist.Circuit{Name: "nd", Fabric: f, Nets: []*netlist.Net{
		{ID: 0, Name: "n", Pins: []netlist.Pin{
			{Point: geom.Point{X: 1, Y: 1}, Layer: 1},
			{Point: geom.Point{X: 100, Y: 80}, Layer: 4},
		}},
	}}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if *c2.Fabric != *f {
		t.Errorf("fabric changed: %+v vs %+v", c2.Fabric, f)
	}
}

func TestRoundTripBenchmark(t *testing.T) {
	spec, _ := bench.ByName("Primary1")
	c := bench.Generate(spec)
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumPins() != c.NumPins() || len(c2.Nets) != len(c.Nets) {
		t.Error("benchmark round trip changed counts")
	}
}

func TestRoundTripRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 40; iter++ {
		f := grid.New(30+15*rng.Intn(4), 30+15*rng.Intn(4), 1+rng.Intn(6))
		used := map[geom.Point]bool{}
		c := &netlist.Circuit{Name: "r", Fabric: f}
		for i := 0; i < 1+rng.Intn(8); i++ {
			n := &netlist.Net{ID: i, Name: "n"}
			for len(n.Pins) < 2+rng.Intn(4) {
				p := geom.Point{X: rng.Intn(f.XTracks), Y: rng.Intn(f.YTracks)}
				if used[p] {
					continue
				}
				used[p] = true
				n.Pins = append(n.Pins, netlist.Pin{Point: p, Layer: 1 + rng.Intn(f.Layers)})
			}
			c.Nets = append(c.Nets, n)
		}
		var sb strings.Builder
		if err := Write(&sb, c); err != nil {
			t.Fatal(err)
		}
		c2, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(c2.Nets) != len(c.Nets) || c2.NumPins() != c.NumPins() {
			t.Fatalf("iter %d: structure changed", iter)
		}
		for i := range c.Nets {
			for j := range c.Nets[i].Pins {
				if c2.Nets[i].Pins[j] != c.Nets[i].Pins[j] {
					t.Fatalf("iter %d: pin %d/%d changed", iter, i, j)
				}
			}
		}
	}
}
