package nlio

import (
	"crypto/sha256"
	"encoding/hex"

	"stitchroute/internal/netlist"
	"stitchroute/internal/plan"
)

// CircuitHash returns the SHA-256 of the circuit's canonical nlio
// serialization. Because Write is deterministic (nets in order, pins in
// order, fixed formatting), the hash identifies a circuit up to the
// nlio-visible state: fabric parameters, net names, and pin geometry.
// It is the content address used by the server's result cache and the
// benchmark generator's determinism contract (same spec + seed ⇒ same
// hash).
func CircuitHash(c *netlist.Circuit) (string, error) {
	h := sha256.New()
	if err := Write(h, c); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// RoutesHash returns the SHA-256 of the routes' canonical serialization
// (WriteRoutes). Two routing runs are byte-identical exactly when their
// hashes match, which is how the correctness harness asserts the router's
// determinism.
func RoutesHash(routes []plan.NetRoute) (string, error) {
	h := sha256.New()
	if err := WriteRoutes(h, routes); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
