package nlio

import (
	"strings"
	"testing"

	"stitchroute/internal/geom"
	"stitchroute/internal/plan"
)

func sampleRoutes() []plan.NetRoute {
	return []plan.NetRoute{
		{
			NetID: 0, Routed: true,
			Wires: []geom.Segment{
				geom.HSeg(1, 5, 2, 12),
				geom.VSeg(2, 12, 5, 9),
			},
			Vias: []plan.Via{{X: 12, Y: 5, Layer: 1}},
		},
		{NetID: 1, Routed: false},
	}
}

func TestRoutesRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteRoutes(&sb, sampleRoutes()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRoutes(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	want := sampleRoutes()
	if len(got) != len(want) {
		t.Fatalf("%d routes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].NetID != want[i].NetID || got[i].Routed != want[i].Routed {
			t.Errorf("route %d header mismatch: %+v", i, got[i])
		}
		if len(got[i].Wires) != len(want[i].Wires) || len(got[i].Vias) != len(want[i].Vias) {
			t.Fatalf("route %d geometry counts differ", i)
		}
		for j := range want[i].Wires {
			if got[i].Wires[j] != want[i].Wires[j] {
				t.Errorf("wire %d/%d: %+v != %+v", i, j, got[i].Wires[j], want[i].Wires[j])
			}
		}
		for j := range want[i].Vias {
			if got[i].Vias[j] != want[i].Vias[j] {
				t.Errorf("via %d/%d mismatch", i, j)
			}
		}
	}
}

func TestRoutesReadErrors(t *testing.T) {
	cases := map[string]string{
		"wire outside": "wire H 1 5 0 3\n",
		"via outside":  "via 1 2 1\n",
		"end outside":  "end\n",
		"nested route": "route 0 routed\nroute 1 routed\n",
		"bad wire":     "route 0 routed\nwire X 1 2 3 4\nend\n",
		"short wire":   "route 0 routed\nwire H 1 2\nend\n",
		"bad number":   "route 0 routed\nvia a b c\nend\n",
		"unterminated": "route 0 routed\n",
		"unknown":      "frob\n",
		"bad net id":   "route x routed\nend\n",
	}
	for name, src := range cases {
		if _, err := ReadRoutes(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRoutesComments(t *testing.T) {
	src := "# header\nroute 3 routed\n# inner\nwire H 1 5 0 3\nend\n"
	routes, err := ReadRoutes(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 || routes[0].NetID != 3 || len(routes[0].Wires) != 1 {
		t.Errorf("routes = %+v", routes)
	}
}
