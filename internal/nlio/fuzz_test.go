package nlio

import (
	"strings"
	"testing"
)

// FuzzRead ensures the circuit parser never panics and that anything it
// accepts round-trips through Write.
func FuzzRead(f *testing.F) {
	f.Add(sample)
	f.Add("circuit x\ngrid 60 60 3\nnet a 1,1 2,2\n")
	f.Add("circuit x\ngrid 60 60 3 stitch 12 sur 2 escape 3\nnet a 1,1,2 2,2,3\n")
	f.Add("# only a comment\n")
	f.Add("grid 0 0 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, c); err != nil {
			t.Fatalf("accepted circuit failed to serialize: %v", err)
		}
		c2, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, sb.String())
		}
		if len(c2.Nets) != len(c.Nets) || c2.NumPins() != c.NumPins() {
			t.Fatal("round trip changed structure")
		}
	})
}

// FuzzReadRoutes ensures the geometry parser never panics.
func FuzzReadRoutes(f *testing.F) {
	f.Add("route 0 routed\nwire H 1 5 0 3\nvia 1 2 1\nend\n")
	f.Add("route 1 failed\nend\n")
	f.Add("wire H 1 5 0 3\n")
	f.Fuzz(func(t *testing.T, src string) {
		routes, err := ReadRoutes(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteRoutes(&sb, routes); err != nil {
			t.Fatalf("accepted routes failed to serialize: %v", err)
		}
	})
}
