package nlio

import (
	"strings"
	"testing"
)

// FuzzRead ensures the circuit parser never panics on untrusted input
// (the HTTP server accepts nlio uploads) and that anything it accepts
// round-trips through Write with full fidelity: same structure, same
// pins, and a byte-identical second serialization (Write∘Read is the
// identity on Write's image).
func FuzzRead(f *testing.F) {
	f.Add(sample)
	f.Add("circuit x\ngrid 60 60 3\nnet a 1,1 2,2\n")
	f.Add("circuit x\ngrid 60 60 3 stitch 12 sur 2 escape 3\nnet a 1,1,2 2,2,3\n")
	f.Add("# only a comment\n")
	f.Add("grid 0 0 0\n")
	f.Add("circuit \t weird\nnet before grid 1,1\n")
	f.Add("circuit x\ngrid 99999999999999999999 1 1\n")
	f.Add("circuit x\ngrid 60 60 3\nnet a -1,-1 2,2\n")
	f.Add("circuit x\ngrid 60 60 3\nnet a 1,1,999 2,2\n")
	f.Add("circuit x\ngrid 60 60 3 stitch -5\nnet a 1,1 2,2\n")
	f.Add("circuit x\ngrid 60 60 3\nnet # 1,1 2,2\nnet # 3,3 4,4\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, c); err != nil {
			t.Fatalf("accepted circuit failed to serialize: %v", err)
		}
		first := sb.String()
		c2, err := Read(strings.NewReader(first))
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, first)
		}
		if len(c2.Nets) != len(c.Nets) || c2.NumPins() != c.NumPins() {
			t.Fatal("round trip changed structure")
		}
		f1, f2 := c.Fabric, c2.Fabric
		if f1.XTracks != f2.XTracks || f1.YTracks != f2.YTracks || f1.Layers != f2.Layers ||
			f1.StitchPitch != f2.StitchPitch || f1.SUREps != f2.SUREps || f1.EscapeWidth != f2.EscapeWidth {
			t.Fatalf("round trip changed fabric: %+v vs %+v", f1, f2)
		}
		for i, n := range c.Nets {
			n2 := c2.Nets[i]
			if len(n.Pins) != len(n2.Pins) {
				t.Fatalf("net %d pin count changed", i)
			}
			for k, p := range n.Pins {
				if p != n2.Pins[k] {
					t.Fatalf("net %d pin %d changed: %v vs %v", i, k, p, n2.Pins[k])
				}
			}
		}
		var sb2 strings.Builder
		if err := Write(&sb2, c2); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		if second := sb2.String(); second != first {
			t.Fatalf("Write is not idempotent over Read:\n--- first ---\n%s--- second ---\n%s", first, second)
		}
	})
}

// FuzzReadRoutes ensures the geometry parser never panics and that
// accepted route sets reparse to the same shape.
func FuzzReadRoutes(f *testing.F) {
	f.Add("route 0 routed\nwire H 1 5 0 3\nvia 1 2 1\nend\n")
	f.Add("route 1 failed\nend\n")
	f.Add("wire H 1 5 0 3\n")
	f.Add("route -1 routed\nwire V 9 -3 5 2\nend\n")
	f.Add("route 0 routed\nwire H 1 5 3 0\nend\n")
	f.Fuzz(func(t *testing.T, src string) {
		routes, err := ReadRoutes(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteRoutes(&sb, routes); err != nil {
			t.Fatalf("accepted routes failed to serialize: %v", err)
		}
		routes2, err := ReadRoutes(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("routes round trip rejected: %v\n%s", err, sb.String())
		}
		if len(routes2) != len(routes) {
			t.Fatalf("routes round trip changed count: %d vs %d", len(routes), len(routes2))
		}
		for i := range routes {
			if len(routes2[i].Wires) != len(routes[i].Wires) || len(routes2[i].Vias) != len(routes[i].Vias) {
				t.Fatalf("route %d changed shape", i)
			}
		}
	})
}
