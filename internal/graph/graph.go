// Package graph provides the generic graph algorithms the router is built
// on: disjoint sets, spanning trees (minimum for net decomposition, maximum
// for the layer-assignment heuristic of [4]), DAG longest paths (track
// constraint graphs, §III-C2), and Dijkstra (reference oracle for the A*
// engines).
package graph

import "sort"

// DSU is a union-find structure with path compression and union by rank.
type DSU struct {
	parent []int
	rank   []int
}

// NewDSU returns a DSU over elements 0..n-1.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int, n), rank: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

// Find returns the representative of x's set.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of a and b and reports whether they were distinct.
func (d *DSU) Union(a, b int) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return true
}

// Edge is a weighted undirected edge between vertex indices.
type Edge struct {
	U, V   int
	Weight int
}

// MaxSpanningForest returns the edges of a maximum-weight spanning forest of
// the graph with n vertices, via Kruskal on descending weights. Ties break
// by (U, V) for determinism.
func MaxSpanningForest(n int, edges []Edge) []Edge {
	es := make([]Edge, len(edges))
	copy(es, edges)
	sort.SliceStable(es, func(i, j int) bool {
		if es[i].Weight != es[j].Weight {
			return es[i].Weight > es[j].Weight
		}
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	dsu := NewDSU(n)
	var forest []Edge
	for _, e := range es {
		if dsu.Union(e.U, e.V) {
			forest = append(forest, e)
		}
	}
	return forest
}

// Adjacency builds an adjacency list for n vertices from undirected edges.
func Adjacency(n int, edges []Edge) [][]Edge {
	adj := make([][]Edge, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], Edge{U: e.V, V: e.U, Weight: e.Weight})
	}
	return adj
}

// TreeDepths returns the BFS depth of every vertex in the forest given by
// edges, rooting each component at its smallest vertex index. Depths are
// used by the maximum-spanning-tree layer-assignment heuristic, which
// colors a vertex by depth mod k (§III-B).
func TreeDepths(n int, edges []Edge) []int {
	adj := Adjacency(n, edges)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	queue := make([]int, 0, n)
	for root := 0; root < n; root++ {
		if depth[root] != -1 {
			continue
		}
		depth[root] = 0
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range adj[u] {
				if depth[e.V] == -1 {
					depth[e.V] = depth[u] + 1
					queue = append(queue, e.V)
				}
			}
		}
	}
	return depth
}

// Arc is a weighted directed edge.
type Arc struct {
	To     int
	Weight int
}

// LongestPathDAG returns, for every vertex of a DAG given as adjacency
// lists, the maximum path weight from any source in sources (each counted
// with initial distance 0). Unreachable vertices get NegInf. It reports
// false if the graph has a cycle.
func LongestPathDAG(adj [][]Arc, sources []int) ([]int, bool) {
	n := len(adj)
	indeg := make([]int, n)
	for _, as := range adj {
		for _, a := range as {
			indeg[a.To]++
		}
	}
	order := make([]int, 0, n)
	for v, d := range indeg {
		if d == 0 {
			order = append(order, v)
		}
	}
	for i := 0; i < len(order); i++ {
		for _, a := range adj[order[i]] {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				order = append(order, a.To)
			}
		}
	}
	if len(order) != n {
		return nil, false // cycle
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = NegInf
	}
	for _, s := range sources {
		dist[s] = 0
	}
	for _, u := range order {
		if dist[u] == NegInf {
			continue
		}
		for _, a := range adj[u] {
			if d := dist[u] + a.Weight; d > dist[a.To] {
				dist[a.To] = d
			}
		}
	}
	return dist, true
}

// NegInf marks unreachable vertices in LongestPathDAG.
const NegInf = -1 << 60

// Inf is a distance larger than any real path cost.
const Inf = 1 << 60

// Dijkstra computes shortest-path distances from src over non-negative arc
// weights. It is the reference oracle used to test the specialized A*
// engines.
func Dijkstra(adj [][]Arc, src int) []int {
	n := len(adj)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	pq := &arcHeap{{src, 0}}
	for pq.Len() > 0 {
		it := pq.pop()
		if it.dist > dist[it.v] {
			continue
		}
		for _, a := range adj[it.v] {
			if d := it.dist + a.Weight; d < dist[a.To] {
				dist[a.To] = d
				pq.push(heapItem{a.To, d})
			}
		}
	}
	return dist
}

type heapItem struct {
	v, dist int
}

type arcHeap []heapItem

func (h arcHeap) Len() int { return len(h) }

func (h *arcHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].dist <= (*h)[i].dist {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *arcHeap) pop() heapItem {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(*h) && (*h)[l].dist < (*h)[small].dist {
			small = l
		}
		if r < len(*h) && (*h)[r].dist < (*h)[small].dist {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}
