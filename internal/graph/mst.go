package graph

import "stitchroute/internal/geom"

// PointMST returns the edges (as index pairs into pts) of a minimum
// spanning tree under Manhattan distance, via Prim's algorithm. Multi-pin
// nets are decomposed into the 2-pin connections of this tree before
// routing. O(n²), which is fine for net degrees.
func PointMST(pts []geom.Point) [][2]int {
	n := len(pts)
	if n <= 1 {
		return nil
	}
	inTree := make([]bool, n)
	best := make([]int, n)
	bestFrom := make([]int, n)
	for i := range best {
		best[i] = Inf
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		best[j] = pts[0].ManhattanDist(pts[j])
		bestFrom[j] = 0
	}
	edges := make([][2]int, 0, n-1)
	for len(edges) < n-1 {
		u, ud := -1, Inf
		for j := 0; j < n; j++ {
			if !inTree[j] && best[j] < ud {
				u, ud = j, best[j]
			}
		}
		if u == -1 {
			break // disconnected cannot happen with Manhattan distance
		}
		inTree[u] = true
		edges = append(edges, [2]int{bestFrom[u], u})
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if d := pts[u].ManhattanDist(pts[j]); d < best[j] {
					best[j] = d
					bestFrom[j] = u
				}
			}
		}
	}
	return edges
}
