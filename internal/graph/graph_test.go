package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stitchroute/internal/geom"
)

func TestDSU(t *testing.T) {
	d := NewDSU(6)
	if !d.Union(0, 1) || !d.Union(2, 3) {
		t.Fatal("fresh unions reported no-op")
	}
	if d.Union(1, 0) {
		t.Error("repeat union reported merge")
	}
	if d.Find(0) != d.Find(1) {
		t.Error("0 and 1 not merged")
	}
	if d.Find(0) == d.Find(2) {
		t.Error("0 and 2 merged spuriously")
	}
	d.Union(1, 3)
	if d.Find(0) != d.Find(2) {
		t.Error("transitive merge failed")
	}
	if d.Find(4) == d.Find(5) {
		t.Error("singletons merged")
	}
}

func TestMaxSpanningForest(t *testing.T) {
	// Triangle with weights 5, 3, 1: max spanning tree keeps 5 and 3.
	edges := []Edge{{0, 1, 5}, {1, 2, 3}, {0, 2, 1}}
	forest := MaxSpanningForest(3, edges)
	if len(forest) != 2 {
		t.Fatalf("forest size %d, want 2", len(forest))
	}
	total := 0
	for _, e := range forest {
		total += e.Weight
	}
	if total != 8 {
		t.Errorf("forest weight %d, want 8", total)
	}
}

func TestMaxSpanningForestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(5)
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) > 0 {
					edges = append(edges, Edge{u, v, rng.Intn(20)})
				}
			}
		}
		forest := MaxSpanningForest(n, edges)
		got := 0
		for _, e := range forest {
			got += e.Weight
		}
		// Brute force: enumerate all subsets of size len(forest) that are forests
		// spanning the same components; check none heavier.
		best := bruteBestForest(n, edges)
		if got != best {
			t.Fatalf("iter %d: kruskal weight %d, brute force %d (edges %v)", iter, got, best, edges)
		}
	}
}

func bruteBestForest(n int, edges []Edge) int {
	best := 0
	m := len(edges)
	for mask := 0; mask < 1<<m; mask++ {
		d := NewDSU(n)
		w, ok := 0, true
		for i := 0; i < m; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			if !d.Union(edges[i].U, edges[i].V) {
				ok = false
				break
			}
			w += edges[i].Weight
		}
		if ok && w > best {
			best = w
		}
	}
	return best
}

func TestTreeDepths(t *testing.T) {
	// Path 0-1-2-3 plus isolated 4.
	edges := []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}
	d := TreeDepths(5, edges)
	want := []int{0, 1, 2, 3, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("depth[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestLongestPathDAG(t *testing.T) {
	// 0 -> 1 (w3), 0 -> 2 (w1), 2 -> 1 (w5), 1 -> 3 (w2)
	adj := [][]Arc{
		{{1, 3}, {2, 1}},
		{{3, 2}},
		{{1, 5}},
		nil,
	}
	dist, ok := LongestPathDAG(adj, []int{0})
	if !ok {
		t.Fatal("DAG reported cyclic")
	}
	want := []int{0, 6, 1, 8}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestLongestPathDAGCycle(t *testing.T) {
	adj := [][]Arc{{{1, 1}}, {{0, 1}}}
	if _, ok := LongestPathDAG(adj, []int{0}); ok {
		t.Error("cycle not detected")
	}
}

func TestLongestPathDAGUnreachable(t *testing.T) {
	adj := [][]Arc{{{1, 2}}, nil, nil}
	dist, ok := LongestPathDAG(adj, []int{0})
	if !ok {
		t.Fatal("not a DAG?")
	}
	if dist[2] != NegInf {
		t.Errorf("unreachable vertex dist = %d", dist[2])
	}
}

func TestDijkstraSmall(t *testing.T) {
	adj := [][]Arc{
		{{1, 4}, {2, 1}},
		{{3, 1}},
		{{1, 2}, {3, 5}},
		nil,
	}
	dist := Dijkstra(adj, 0)
	want := []int{0, 3, 1, 4}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestDijkstraAgainstBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(8)
		adj := make([][]Arc, n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Intn(2) == 0 {
					adj[u] = append(adj[u], Arc{v, rng.Intn(10)})
				}
			}
		}
		got := Dijkstra(adj, 0)
		want := bellmanFord(adj, 0)
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("iter %d vertex %d: dijkstra %d, bellman-ford %d", iter, v, got[v], want[v])
			}
		}
	}
}

func bellmanFord(adj [][]Arc, src int) []int {
	n := len(adj)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	for i := 0; i < n; i++ {
		for u := 0; u < n; u++ {
			if dist[u] == Inf {
				continue
			}
			for _, a := range adj[u] {
				if d := dist[u] + a.Weight; d < dist[a.To] {
					dist[a.To] = d
				}
			}
		}
	}
	return dist
}

func TestPointMST(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 3}, {X: 10, Y: 0}, {X: 11, Y: 1}}
	edges := PointMST(pts)
	if len(edges) != 3 {
		t.Fatalf("MST has %d edges, want 3", len(edges))
	}
	total := 0
	for _, e := range edges {
		total += pts[e[0]].ManhattanDist(pts[e[1]])
	}
	// Optimal: (0,0)-(0,3)=3, (0,0)-(10,0)=10, (10,0)-(11,1)=2 => 15.
	if total != 15 {
		t.Errorf("MST length %d, want 15", total)
	}
}

func TestPointMSTSpansAllPoints(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		pts := make([]geom.Point, len(raw)/2)
		if len(pts) < 2 {
			return true
		}
		for i := range pts {
			pts[i] = geom.Point{X: int(raw[2*i]) % 100, Y: int(raw[2*i+1]) % 100}
		}
		edges := PointMST(pts)
		if len(edges) != len(pts)-1 {
			return false
		}
		d := NewDSU(len(pts))
		for _, e := range edges {
			d.Union(e[0], e[1])
		}
		for i := 1; i < len(pts); i++ {
			if d.Find(i) != d.Find(0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPointMSTTrivial(t *testing.T) {
	if PointMST(nil) != nil {
		t.Error("MST of no points should be nil")
	}
	if PointMST([]geom.Point{{X: 1, Y: 1}}) != nil {
		t.Error("MST of one point should be nil")
	}
}
