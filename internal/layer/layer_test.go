package layer

import (
	"math/rand"
	"testing"

	"stitchroute/internal/geom"
	"stitchroute/internal/plan"
)

func iv(lo, hi int) geom.Interval { return geom.Interval{Lo: lo, Hi: hi} }

func TestBuildInstanceEdges(t *testing.T) {
	spans := []geom.Interval{iv(0, 4), iv(2, 6), iv(8, 9)}
	ends := [][]int{{0, 4}, {2, 6}, {8, 9}}
	in := BuildInstance(spans, ends, false)
	if len(in.Edges) != 1 {
		t.Fatalf("%d edges, want 1 (only 0-1 overlap)", len(in.Edges))
	}
	e := in.Edges[0]
	if e.U != 0 || e.V != 1 {
		t.Fatalf("edge = %+v", e)
	}
	// Overlap rows 2..4 all have density 2.
	if e.Weight != 2 {
		t.Errorf("weight = %d, want 2", e.Weight)
	}
}

func TestEndTermAddsWeight(t *testing.T) {
	// Segments sharing an end row: with ends, weight grows.
	spans := []geom.Interval{iv(0, 4), iv(4, 8)}
	ends := [][]int{{0, 4}, {4, 8}}
	without := BuildInstance(spans, ends, false)
	with := BuildInstance(spans, ends, true)
	if with.Edges[0].Weight <= without.Edges[0].Weight {
		t.Errorf("end term did not increase weight: %d vs %d",
			with.Edges[0].Weight, without.Edges[0].Weight)
	}
}

func TestNoCommonEndRowNoEndTerm(t *testing.T) {
	spans := []geom.Interval{iv(0, 5), iv(3, 8)}
	ends := [][]int{{0, 5}, {3, 8}}
	with := BuildInstance(spans, ends, true)
	without := BuildInstance(spans, ends, false)
	if with.Edges[0].Weight != without.Edges[0].Weight {
		t.Errorf("end term added with no shared end row: %d vs %d",
			with.Edges[0].Weight, without.Edges[0].Weight)
	}
}

func TestCost(t *testing.T) {
	spans := []geom.Interval{iv(0, 4), iv(2, 6), iv(3, 9)}
	ends := [][]int{{0, 4}, {2, 6}, {3, 9}}
	in := BuildInstance(spans, ends, false)
	same := []int{0, 0, 0}
	allDiff := []int{0, 1, 2}
	if in.Cost(allDiff) != 0 {
		t.Errorf("all-different cost = %d, want 0", in.Cost(allDiff))
	}
	var sum int64
	for _, e := range in.Edges {
		sum += int64(e.Weight)
	}
	if in.Cost(same) != sum {
		t.Errorf("monochrome cost = %d, want %d", in.Cost(same), sum)
	}
}

func TestAssignBothValidColors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		in := RandomInstance(rng, 5+rng.Intn(15), 10+rng.Intn(20))
		for _, algo := range []Algo{MaxSpanningTree, KColorableSubset} {
			for k := 2; k <= 5; k++ {
				colors := Assign(in, k, algo)
				if len(colors) != in.N() {
					t.Fatalf("len(colors) = %d, want %d", len(colors), in.N())
				}
				for i, c := range colors {
					if c < 0 || c >= k {
						t.Fatalf("algo %d k %d: color[%d] = %d", algo, k, i, c)
					}
				}
			}
		}
	}
}

func TestPaperExampleShape(t *testing.T) {
	// Mirror of Fig. 9's point: with k=3 our algorithm should beat or match
	// the spanning-tree heuristic on average over random instances.
	rng := rand.New(rand.NewSource(99))
	var mstTotal, oursTotal int64
	for iter := 0; iter < 30; iter++ {
		in := RandomInstance(rng, 12, 20)
		mstTotal += in.Cost(Assign(in, 3, MaxSpanningTree))
		oursTotal += in.Cost(Assign(in, 3, KColorableSubset))
	}
	if oursTotal > mstTotal {
		t.Errorf("paper's algorithm worse on average: ours=%d mst=%d", oursTotal, mstTotal)
	}
}

func TestImprovementGrowsWithK(t *testing.T) {
	// Table VI shape: relative improvement increases with layer count.
	rng := rand.New(rand.NewSource(42))
	instances := make([]*Instance, 40)
	for i := range instances {
		instances[i] = RandomInstance(rng, 14, 24)
	}
	improvement := func(k int) float64 {
		var mst, ours int64
		for _, in := range instances {
			mst += in.Cost(Assign(in, k, MaxSpanningTree))
			ours += in.Cost(Assign(in, k, KColorableSubset))
		}
		if mst == 0 {
			return 0
		}
		return 1 - float64(ours)/float64(mst)
	}
	i2, i5 := improvement(2), improvement(5)
	if i5 <= i2 {
		t.Errorf("improvement at k=5 (%.3f) not above k=2 (%.3f)", i5, i2)
	}
}

func TestInstanceFromSegs(t *testing.T) {
	segs := []*plan.GSeg{
		{NetID: 0, Dir: geom.Vertical, Panel: 3, Span: iv(0, 4)},
		{NetID: 1, Dir: geom.Vertical, Panel: 3, Span: iv(2, 8)},
	}
	in := InstanceFromSegs(segs)
	if in.N() != 2 || len(in.Edges) != 1 {
		t.Fatalf("instance = %+v", in)
	}
	// Vertical segments use the end term.
	maxD, avgD := in.SegDensity()
	if maxD != 2 || avgD <= 0 {
		t.Errorf("seg density = %v/%v", maxD, avgD)
	}
	maxE, avgE := in.EndDensity()
	if maxE < 1 || avgE <= 0 {
		t.Errorf("end density = %v/%v", maxE, avgE)
	}
}

func TestEmptyInstance(t *testing.T) {
	in := BuildInstance(nil, nil, true)
	if in.N() != 0 || len(in.Edges) != 0 {
		t.Fatal("empty instance not empty")
	}
	colors := Assign(in, 3, KColorableSubset)
	if len(colors) != 0 {
		t.Error("colors for empty instance")
	}
	maxD, avgD := in.SegDensity()
	if maxD != 0 || avgD != 0 {
		t.Error("density of empty instance nonzero")
	}
}

func TestSingleSegment(t *testing.T) {
	in := BuildInstance([]geom.Interval{iv(0, 5)}, [][]int{{0, 5}}, true)
	for _, algo := range []Algo{MaxSpanningTree, KColorableSubset} {
		colors := Assign(in, 3, algo)
		if len(colors) != 1 || colors[0] < 0 || colors[0] > 2 {
			t.Errorf("algo %d: colors = %v", algo, colors)
		}
	}
}

func TestRandomInstanceStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := RandomInstance(rng, 20, 30)
	if in.N() != 20 {
		t.Fatalf("N = %d", in.N())
	}
	maxD, avg := in.SegDensity()
	if maxD < 1 || avg <= 0 {
		t.Errorf("degenerate densities %v %v", maxD, avg)
	}
}

func TestExactAssignOptimalOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 15; iter++ {
		in := RandomInstance(rng, 4+rng.Intn(5), 8+rng.Intn(8))
		for k := 2; k <= 3; k++ {
			colors, optimal := ExactAssign(in, k, 0)
			if !optimal {
				t.Fatalf("iter %d: unbounded search not optimal", iter)
			}
			exact := in.Cost(colors)
			// Brute-force oracle.
			want := bruteMinCut(in, k)
			if exact != want {
				t.Fatalf("iter %d k=%d: exact %d, brute %d", iter, k, exact, want)
			}
			// Heuristics can never beat the optimum.
			for _, algo := range []Algo{MaxSpanningTree, KColorableSubset} {
				if h := in.Cost(Assign(in, k, algo)); h < exact {
					t.Fatalf("iter %d: heuristic %d below optimum %d", iter, h, exact)
				}
			}
		}
	}
}

func bruteMinCut(in *Instance, k int) int64 {
	n := in.N()
	colors := make([]int, n)
	best := int64(1) << 60
	var rec func(int)
	rec = func(v int) {
		if v == n {
			if c := in.Cost(colors); c < best {
				best = c
			}
			return
		}
		for c := 0; c < k; c++ {
			colors[v] = c
			rec(v + 1)
		}
	}
	rec(0)
	return best
}

func TestExactAssignBudgetFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := RandomInstance(rng, 30, 30)
	colors, optimal := ExactAssign(in, 4, 10)
	if optimal {
		t.Error("tiny budget claimed optimality on a 30-segment instance")
	}
	if len(colors) != in.N() {
		t.Error("fallback returned wrong size")
	}
	for _, c := range colors {
		if c < 0 || c >= 4 {
			t.Error("fallback color out of range")
		}
	}
}
