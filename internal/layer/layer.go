// Package layer implements stitch-aware layer assignment (§III-B).
//
// For every panel (a column or row of global tiles), the same-direction
// global segments are distributed over the k same-direction routing layers.
// A segment conflict graph is built with edge weights
//
//	w(v_i, v_j) = D_segment(v_i, v_j) + D_end(v_i, v_j)      (eq. 4)
//
// where D_segment is the maximum segment density over the rows where the
// two segments overlap and D_end the maximum line-end density over the rows
// where both have line ends (the line-end term applies to column panels
// only). Distributing segments uniformly is the maximum-cut k-coloring of
// this graph — equivalently, a k-coloring of minimum total monochromatic
// edge weight.
//
// Two heuristics are provided: the maximum-spanning-tree approach of [4]
// (color = tree depth mod k) and the paper's algorithm, which repeatedly
// extracts a maximum-total-vertex-weight k-colorable subset (exact on
// interval graphs via min-cost flow), colors it greedily, and merges the
// color groups into the accumulated groups with a minimum-weight perfect
// bipartite matching.
package layer

import (
	"math/rand"

	"stitchroute/internal/geom"
	"stitchroute/internal/graph"
	"stitchroute/internal/ilp"
	"stitchroute/internal/interval"
	"stitchroute/internal/matching"
	"stitchroute/internal/plan"
)

// Algo selects the layer-assignment heuristic.
type Algo int

const (
	// MaxSpanningTree is the heuristic of [4]: maximum spanning tree,
	// colored by depth mod k.
	MaxSpanningTree Algo = iota
	// KColorableSubset is the paper's algorithm (§III-B).
	KColorableSubset
)

// Instance is one panel's layer-assignment problem: segments as intervals
// over panel rows, their line-end rows, and the conflict edges of eq. (4).
type Instance struct {
	Spans []geom.Interval // per segment: covered rows
	Ends  [][]int         // per segment: rows holding its line ends
	Edges []graph.Edge
}

// N returns the number of segments.
func (in *Instance) N() int { return len(in.Spans) }

// BuildInstance constructs the conflict graph for the given spans and
// line-end rows. withEnds enables the D_end term (column panels).
func BuildInstance(spans []geom.Interval, ends [][]int, withEnds bool) *Instance {
	in := &Instance{Spans: spans, Ends: ends}
	if len(spans) == 0 {
		return in
	}
	lo, hi := spans[0].Lo, spans[0].Hi
	for _, s := range spans {
		if s.Lo < lo {
			lo = s.Lo
		}
		if s.Hi > hi {
			hi = s.Hi
		}
	}
	nRows := hi - lo + 1
	segDen := make([]int, nRows)
	endDen := make([]int, nRows)
	for i, s := range spans {
		for r := s.Lo; r <= s.Hi; r++ {
			segDen[r-lo]++
		}
		for _, r := range ends[i] {
			endDen[r-lo]++
		}
	}
	endSet := make([]map[int]bool, len(spans))
	for i, e := range ends {
		endSet[i] = make(map[int]bool, len(e))
		for _, r := range e {
			endSet[i][r] = true
		}
	}
	for i := 0; i < len(spans); i++ {
		for j := i + 1; j < len(spans); j++ {
			ov := spans[i].Intersect(spans[j])
			if ov.Empty() {
				continue
			}
			w := 0
			for r := ov.Lo; r <= ov.Hi; r++ {
				if segDen[r-lo] > w {
					w = segDen[r-lo]
				}
			}
			if withEnds {
				de := 0
				for r := range endSet[i] {
					if endSet[j][r] && endDen[r-lo] > de {
						de = endDen[r-lo]
					}
				}
				w += de
			}
			in.Edges = append(in.Edges, graph.Edge{U: i, V: j, Weight: w})
		}
	}
	return in
}

// InstanceFromSegs builds the panel instance for a set of same-panel,
// same-direction global segments. Line ends are the span endpoints; the
// D_end term is used only for vertical (column-panel) segments.
func InstanceFromSegs(segs []*plan.GSeg) *Instance {
	spans := make([]geom.Interval, len(segs))
	ends := make([][]int, len(segs))
	withEnds := false
	for i, s := range segs {
		spans[i] = s.Span
		ends[i] = []int{s.Span.Lo, s.Span.Hi}
		if s.Dir == geom.Vertical {
			withEnds = true
		}
	}
	return BuildInstance(spans, ends, withEnds)
}

// Cost returns the total conflict weight of monochromatic edges — the
// layer-assignment cost compared in Table VI (lower is better).
func (in *Instance) Cost(colors []int) int64 {
	var c int64
	for _, e := range in.Edges {
		if colors[e.U] == colors[e.V] {
			c += int64(e.Weight)
		}
	}
	return c
}

// SegDensity returns the maximum and mean segment density over the panel's
// rows (Table V statistics).
func (in *Instance) SegDensity() (max float64, avg float64) {
	return density(in.Spans)
}

// EndDensity returns the maximum and mean line-end density over rows.
func (in *Instance) EndDensity() (max float64, avg float64) {
	var pts []geom.Interval
	for _, ends := range in.Ends {
		for _, r := range ends {
			pts = append(pts, geom.Interval{Lo: r, Hi: r})
		}
	}
	return density(pts)
}

func density(items []geom.Interval) (maxD, avg float64) {
	if len(items) == 0 {
		return 0, 0
	}
	lo, hi := items[0].Lo, items[0].Hi
	for _, s := range items {
		if s.Lo < lo {
			lo = s.Lo
		}
		if s.Hi > hi {
			hi = s.Hi
		}
	}
	den := make([]int, hi-lo+1)
	for _, s := range items {
		for r := s.Lo; r <= s.Hi; r++ {
			den[r-lo]++
		}
	}
	sum := 0
	for _, d := range den {
		if float64(d) > maxD {
			maxD = float64(d)
		}
		sum += d
	}
	return maxD, float64(sum) / float64(len(den))
}

// Assign colors the instance with the selected heuristic, returning a
// color in 0..k-1 per segment.
func Assign(in *Instance, k int, algo Algo) []int {
	if algo == MaxSpanningTree {
		return assignMST(in, k)
	}
	return assignKColorable(in, k)
}

// assignMST is the heuristic of [4]: build a maximum spanning forest on
// the conflict graph and color each vertex by its tree depth mod k, so
// adjacent (heavy) tree edges always cut.
func assignMST(in *Instance, k int) []int {
	forest := graph.MaxSpanningForest(in.N(), in.Edges)
	depths := graph.TreeDepths(in.N(), forest)
	colors := make([]int, in.N())
	for i, d := range depths {
		colors[i] = d % k
	}
	return colors
}

// assignKColorable is the paper's algorithm: extract maximum-vertex-weight
// k-colorable subsets, color each greedily, and merge color groups with a
// minimum-weight perfect matching on the k×k group bipartite graph.
func assignKColorable(in *Instance, k int) []int {
	n := in.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	remaining := make([]bool, n)
	for i := range remaining {
		remaining[i] = true
	}
	// adjacency weights for conflict lookups
	wAdj := make([]map[int]int64, n)
	for i := range wAdj {
		wAdj[i] = make(map[int]int64)
	}
	for _, e := range in.Edges {
		wAdj[e.U][e.V] += int64(e.Weight)
		wAdj[e.V][e.U] += int64(e.Weight)
	}

	groups := make([][]int, k) // accumulated color groups
	first := true
	nRemaining := n
	for nRemaining > 0 {
		// Vertex weight = total incident conflict weight on the remaining
		// graph (isolated remaining vertices get weight 1 so they are
		// still selected).
		items := make([]interval.Interval, 0, nRemaining)
		ids := make([]int, 0, nRemaining)
		for v := 0; v < n; v++ {
			if !remaining[v] {
				continue
			}
			var w int64 = 1
			for u, ew := range wAdj[v] {
				if remaining[u] {
					w += ew
				}
			}
			items = append(items, interval.Interval{Lo: in.Spans[v].Lo, Hi: in.Spans[v].Hi, Weight: w})
			ids = append(ids, v)
		}
		sel := interval.MaxWeightKColorable(items, k)
		if len(sel) == 0 {
			// Cannot happen for k >= 1 with positive weights; guard anyway.
			sel = []int{0}
		}
		sub := make([]interval.Interval, len(sel))
		for i, s := range sel {
			sub[i] = items[s]
		}
		subColors, ok := interval.GreedyColor(sub, k)
		if !ok {
			// The flow guarantees k-colorability; defensive fallback.
			subColors = make([]int, len(sub))
		}
		newGroups := make([][]int, k)
		for i, c := range subColors {
			v := ids[sel[i]]
			newGroups[c] = append(newGroups[c], v)
			remaining[v] = false
			nRemaining--
		}
		if first {
			groups = newGroups
			first = false
			continue
		}
		// Merge: cost[a][b] = conflict weight between accumulated group a
		// and new group b; min-weight perfect matching decides the merge.
		cost := make([][]int64, k)
		for a := 0; a < k; a++ {
			cost[a] = make([]int64, k)
			for b := 0; b < k; b++ {
				var w int64
				for _, u := range groups[a] {
					for _, v := range newGroups[b] {
						w += wAdj[u][v]
					}
				}
				cost[a][b] = w
			}
		}
		assign, _ := matching.MinCostPerfect(cost)
		for a := 0; a < k; a++ {
			groups[a] = append(groups[a], newGroups[assign[a]]...)
		}
	}
	for c, g := range groups {
		for _, v := range g {
			colors[v] = c
		}
	}
	return colors
}

// RandomInstance generates a random panel instance with the given number
// of segments over nRows rows — the experiment workload of Tables V–VI.
func RandomInstance(rng *rand.Rand, nSegs, nRows int) *Instance {
	spans := make([]geom.Interval, nSegs)
	ends := make([][]int, nSegs)
	for i := range spans {
		lo := rng.Intn(nRows)
		length := 1 + rng.Intn(nRows-lo)
		spans[i] = geom.Interval{Lo: lo, Hi: lo + length - 1}
		ends[i] = []int{spans[i].Lo, spans[i].Hi}
	}
	return BuildInstance(spans, ends, true)
}

// ExactAssign solves the max-cut k-coloring exactly by branch and bound
// (color symmetry broken by letting vertex i use at most one more color
// than seen so far). Exponential in the worst case; intended for small
// panels and for measuring the heuristics' optimality gap. It returns the
// coloring and whether the search completed within the node budget.
func ExactAssign(in *Instance, k int, nodeBudget int) ([]int, bool) {
	n := in.N()
	adj := make([][]graph.Edge, n)
	for _, e := range in.Edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], graph.Edge{U: e.V, V: e.U, Weight: e.Weight})
	}
	m := &exactModel{k: k, adj: adj, colors: make([]int, n)}
	for i := range m.colors {
		m.colors[i] = -1
	}
	res := ilp.Solve(m, nodeBudget)
	if res.Values == nil {
		return Assign(in, k, KColorableSubset), false
	}
	return res.Values, res.Optimal
}

type exactModel struct {
	k      int
	adj    [][]graph.Edge
	colors []int
}

func (m *exactModel) NumVars() int { return len(m.colors) }

func (m *exactModel) Candidates(v int, dst []ilp.Candidate) []ilp.Candidate {
	maxUsed := -1
	for i := 0; i < v; i++ {
		if m.colors[i] > maxUsed {
			maxUsed = m.colors[i]
		}
	}
	limit := maxUsed + 1
	if limit >= m.k {
		limit = m.k - 1
	}
	for c := 0; c <= limit; c++ {
		cost := 0.0
		for _, e := range m.adj[v] {
			if e.V < v && m.colors[e.V] == c {
				cost += float64(e.Weight)
			}
		}
		dst = append(dst, ilp.Candidate{Value: c, Cost: cost})
	}
	return dst
}

func (m *exactModel) Apply(v, c int) { m.colors[v] = c }
func (m *exactModel) Undo(v, c int)  { m.colors[v] = -1 }
